// Controlplane: the multi-tenant campaign service end-to-end, in one
// process — a dist coordinator wrapped by internal/controlplane, its
// HTTP/JSON API served next to the obs endpoints, two tenants
// submitting over real HTTP, a quota rejection, fair-share accounting,
// and the two durability guarantees: results survive a full restart
// (recovered through the dist journal with no re-simulation), and the
// control-plane run is bit-identical to a plain in-process LocalRunner.
//
// Run with:
//
//	go run ./examples/controlplane
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"spice/internal/backoff"
	"spice/internal/campaign"
	"spice/internal/controlplane"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/dist/statsfmt"
	"spice/internal/md"
	"spice/internal/obs"
	"spice/internal/trace"
)

// A tiny system so the demo finishes in seconds. EngineWorkers is
// pinned to 1 — the precondition for bit-identical force sums across
// processes and schedules.
func system() core.SystemConfig {
	return core.SystemConfig{Beads: 3, StartZ: 5, EquilSteps: 50, DT: 0.02, Temp: 300, PoreFriction: 1, EngineWorkers: 1}
}

func specFor(tenant string) campaign.Spec {
	switch tenant {
	case "alice":
		return campaign.Spec{Kappas: []float64{100}, Velocities: []float64{800}, Replicas: 2, Distance: 3, Seed: 21}
	default:
		return campaign.Spec{Kappas: []float64{300}, Velocities: []float64{1600}, Replicas: 2, Distance: 3, Seed: 77}
	}
}

// startService boots coordinator + control plane + API server over the
// given state directories and returns the pieces plus the HTTP addr.
func startService(ctx context.Context, coState, cpState string, workers int) (*dist.Coordinator, *controlplane.Server, *obs.Server, error) {
	sysJSON, err := json.Marshal(system())
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	dcfg := dist.Defaults()
	dcfg.StateDir = coState
	co, err := dist.NewCoordinator(ln, sysJSON, dcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	cp, err := controlplane.New(controlplane.Config{
		Coordinator: co,
		StateDir:    cpState,
		MaxActive:   1, // one campaign on the coordinator at a time: the rest queue in policy order
		Quotas: map[string]controlplane.Quota{
			"alice": {MaxQueued: 2, MaxRunning: 2},
			"bob":   {MaxQueued: 1, MaxRunning: 2},
		},
		Aging: 1,
	})
	if err != nil {
		co.Close()
		return nil, nil, nil, err
	}
	for i := 0; i < workers; i++ {
		w, err := dist.NewWorker(fmt.Sprintf("local-%d", i), "", ln.Addr().String(), core.BuildFromJSON, dist.Defaults())
		if err != nil {
			return nil, nil, nil, err
		}
		go w.Run(ctx)
	}
	mux := obs.NewMux(nil, nil, nil, cp.Ready)
	cp.Mount(mux)
	srv, err := obs.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		return nil, nil, nil, err
	}
	cp.Start()
	return co, cp, srv, nil
}

func sampleCount(logs map[campaign.Combo][]*trace.WorkLog) int {
	n := 0
	for _, ls := range logs {
		for _, wl := range ls {
			n += len(wl.Samples)
		}
	}
	return n
}

func identical(a, b map[campaign.Combo][]*trace.WorkLog) bool {
	fa, fb := controlplane.FlattenResult(a), controlplane.FlattenResult(b)
	ja, _ := json.Marshal(fa)
	jb, _ := json.Marshal(fb)
	return string(ja) == string(jb)
}

func main() {
	log.SetFlags(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	coState, err := os.MkdirTemp("", "cp-co-")
	if err != nil {
		log.Fatal(err)
	}
	cpState, err := os.MkdirTemp("", "cp-queue-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(coState)
	defer os.RemoveAll(cpState)

	co, cp, srv, err := startService(ctx, coState, cpState, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control plane up at http://%s/api/v1/campaigns\n\n", srv.Addr())

	// --- Two tenants submit over real HTTP ---
	// Retries are opt-in and narrow: only refusals carrying Retry-After
	// (rate limit, shed load, degraded storage) are retried, and every
	// retry spends from a process-wide budget so a stuck fleet of
	// clients cannot hammer a recovering server.
	retryBudget := backoff.NewBudget(10, 20)
	cl := &controlplane.Client{Base: srv.Addr(), RetryMax: 4, RetryBudget: retryBudget}
	ids := map[string]string{}
	for _, tenant := range []string{"alice", "bob"} {
		id, err := cl.Submit(ctx, specFor(tenant), dist.CampaignTag{Tenant: tenant, Priority: 1})
		if err != nil {
			log.Fatal(err)
		}
		ids[tenant] = id
		fmt.Printf("%-6s submitted %s (%d jobs)\n", tenant, id, len(specFor(tenant).Tasks()))
	}

	// bob's MaxQueued is 1, so a second distinct submission is rejected
	// at admission — HTTP 429, reconstructed client-side as the same
	// sentinel the server uses. Rejections are never journaled: a 429
	// is not an acceptance, so a restart owes it nothing.
	over := specFor("bob")
	over.Seed = 99
	if _, err := cl.Submit(ctx, over, dist.CampaignTag{Tenant: "bob"}); errors.Is(err, controlplane.ErrQuotaExceeded) {
		fmt.Printf("bob    over quota: %v\n\n", err)
	} else {
		log.Fatalf("expected quota rejection, got %v", err)
	}

	// --- Both campaigns run to completion ---
	results := map[string]map[campaign.Combo][]*trace.WorkLog{}
	for tenant, id := range ids {
		c, err := cl.WaitDone(ctx, id, 100*time.Millisecond)
		if err != nil || c.State != controlplane.StateDone {
			log.Fatalf("%s: state %s err %v", tenant, c.State, err)
		}
		if results[tenant], err = cl.Result(ctx, id); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s done: %d/%d jobs, %d samples\n", tenant, c.JobsDone, c.JobsTotal, sampleCount(results[tenant]))
	}

	// --- The unified stats view: queue depths + the dist snapshot ---
	st, err := cl.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-tenant accounting (usage = finished job-hours, the fair-share ledger):\n")
	for _, q := range st.Queue {
		fmt.Printf("  %-6s done=%d usage=%.0f\n", q.Tenant, q.Done, q.Usage)
	}
	fmt.Println()
	statsfmt.Render(os.Stdout, st.Dist, "  dist: ")

	// --- Bit-identity: control plane vs plain LocalRunner ---
	sys := system()
	lr := &campaign.LocalRunner{
		Build:   func(_ campaign.Combo, seed uint64) (*md.Engine, []int, error) { return sys.Build(seed) },
		Workers: 1,
	}
	baseline, err := lr.Run(specFor("alice"))
	if err != nil {
		log.Fatal(err)
	}
	if !identical(results["alice"], baseline) {
		log.Fatal("control-plane result differs from LocalRunner baseline")
	}
	fmt.Printf("\nalice's campaign is bit-identical to an in-process LocalRunner run\n")

	// --- Durability: full restart, result recovered without re-running ---
	srv.Close()
	cp.Close()
	co.Close()
	co2, cp2, srv2, err := startService(ctx, coState, cpState, 0) // zero workers: nothing can simulate
	if err != nil {
		log.Fatal(err)
	}
	defer func() { srv2.Close(); cp2.Close(); co2.Close() }()
	cl2 := &controlplane.Client{Base: srv2.Addr(), RetryMax: 4, RetryBudget: retryBudget}
	recovered, err := cl2.Result(ctx, ids["alice"])
	if err != nil {
		log.Fatal(err)
	}
	if !identical(recovered, baseline) {
		log.Fatal("recovered result differs from baseline")
	}
	fmt.Printf("after a full restart (zero workers attached) the queue journal replays\n")
	fmt.Printf("alice's campaign and her result is recovered byte-identical through the\n")
	fmt.Printf("dist job journal — no simulation re-ran\n")
}
