// Interactive: the paper's steering architecture (Fig. 2) in one process —
// a simulation registers in the steering registry, a visualizer and a
// synthetic haptic device attach over TCP through QoS network shims, the
// operator steers the DNA, and the session statistics show why interactive
// MD demands lightpath-grade networking.
//
// Run with:
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"sync"

	"spice/internal/imd"
	"spice/internal/md"
	"spice/internal/netsim"
	"spice/internal/steering"
)

func main() {
	log.SetFlags(0)

	registry := steering.NewRegistry()
	fmt.Println("SPICE interactive session: simulation + visualizer + haptic device")
	fmt.Println("(network delays are scaled to 5% to keep the demo short)")
	fmt.Println()

	for _, profile := range []netsim.Profile{netsim.Lightpath, netsim.Congested} {
		stats, moved := runSession(registry, profile)
		fmt.Printf("%-12s stall %5.1f%%  slowdown %.2fx  frames %d  forces %d  DNA moved %.1f Å\n",
			profile.Name, 100*stats.StallFraction(), stats.Slowdown(), stats.Frames, stats.ForcesReceived, moved)
	}
	fmt.Println()
	fmt.Println("the same steering work costs far more wall-clock time on the congested path —")
	fmt.Println("the paper's case for co-allocating lightpaths with compute and visualization")

	// The discrete-event model at the paper's production scale.
	fmt.Println()
	fmt.Println("projected to the paper's 300,000-atom system on 256 processors:")
	for _, p := range []netsim.Profile{netsim.LAN, netsim.Lightpath, netsim.SharedWAN, netsim.Congested} {
		m := imd.SimulateSession(imd.ModelConfig{
			ComputePerFrame: imd.PaperComputePerFrame(256, 20),
			RenderTime:      33e6, // 33 ms
			NAtoms:          300000,
			Frames:          100,
			Profile:         p,
			Sync:            true,
			Seed:            3,
		})
		fmt.Printf("  %-12s slowdown %.2fx, %.3f frames/s\n", p.Name, m.Slowdown, m.FPS)
	}
}

func runSession(registry *steering.Registry, profile netsim.Profile) (*imd.Stats, float64) {
	spec := md.DefaultTranslocation(8)
	spec.Seed = 11
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.Register(steering.ServiceInfo{
		Name: "hemolysin-" + profile.Name,
		Kind: steering.KindSimulation,
		Addr: "inproc",
		Meta: map[string]string{"atoms": fmt.Sprint(ts.Engine.Topology().N())},
	}); err != nil {
		log.Fatal(err)
	}

	simConn, devConn := netsim.Pipe(profile, 0.05, 99)
	defer simConn.Close()
	defer devConn.Close()

	startZ := ts.LeadZ()
	var stats *imd.Stats
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, _ = imd.Serve(ts.Engine, simConn, imd.SessionConfig{Stride: 25, Frames: 60, Sync: true})
	}()

	client, err := imd.Connect(devConn)
	if err != nil {
		log.Fatal(err)
	}
	haptic := imd.NewHaptic(ts.DNA[0], startZ-25, 5)
	client.OnFrame = haptic.OnFrame
	_ = client.Run()
	wg.Wait()
	return stats, startZ - ts.LeadZ()
}
