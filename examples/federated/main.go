// Federated: the paper's batch phase end-to-end — the 72-simulation SMD-JE
// campaign is scheduled on the Fig. 5 US-UK federation model at production
// scale (makespan, CPU-hours, per-site distribution), and the same sweep
// is executed for real at coarse-grained scale on a local worker pool,
// ending with the optimal-parameter PMF.
//
// Run with:
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/federation"
	"spice/internal/jarzynski"
)

func main() {
	log.SetFlags(0)

	// --- Paper-scale schedule on the federation model ---
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()
	fed := federation.SPICEFederation()
	if err := campaign.BackgroundLoad(fed, 0.4, 24*14, 1); err != nil {
		log.Fatal(err)
	}
	sched, err := campaign.Simulate(fed, spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production campaign on the federated US-UK grid (Fig. 5):\n")
	fmt.Printf("  %d jobs, %.0f CPU-hours, makespan %.2f days (paper: 72 jobs, ~75,000 CPU-h, < 1 week)\n",
		len(sched.Placements), sched.TotalCPUHours, sched.Days())
	for m, n := range sched.PerSite {
		fmt.Printf("    %-12s %2d jobs\n", m, n)
	}

	single, err := campaign.Simulate(campaign.SingleSite("local-512", 512), spec, cm, true, federation.JobConstraint{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  same campaign on one 512-proc machine: %.2f days (%.1fx slower)\n\n",
		single.Days(), single.MakespanHours/sched.MakespanHours)

	// --- The same sweep executed for real at CG scale ---
	fmt.Println("executing the sweep at coarse-grained scale on the local worker pool...")
	cfg := core.PaperSweep()
	cfg.System.Beads = 6
	cfg.Velocities = []float64{50, 100, 200, 400} // scaled up to keep the demo short
	cfg.RefVelocity = 25
	cfg.Distance = 6
	cfg.Replicas = 2
	res, err := core.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%10s %10s %8s %10s %10s\n", "κ (pN/Å)", "v (Å/ns)", "samples", "σ_stat", "σ_sys")
	for _, p := range res.Points {
		fmt.Printf("%10g %10g %8d %10.4f %10.4f\n", p.KappaPaper, p.VPaper, p.Samples, p.SigmaStat, p.SigmaSys)
	}
	fmt.Printf("\noptimal parameters: κ=%g pN/Å, v=%g Å/ns\n", res.Best.KappaPaper, res.Best.VPaper)

	// SMD-JE vs vanilla accounting (§II's 50-100x claim).
	vanilla := cm.VanillaCPUHours(10)
	factor := jarzynski.ReductionFactor(vanilla, sched.TotalCPUHours*5) // sweep+production+priming margin
	fmt.Printf("\nvanilla 10 µs estimate: %.1e CPU-hours; SMD-JE campaign bundle: %.1e → reduction ~%.0fx\n",
		vanilla, sched.TotalCPUHours*5, factor)
}
