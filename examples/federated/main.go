// Federated: the paper's batch phase end-to-end — the 72-simulation SMD-JE
// campaign is scheduled on the Fig. 5 US-UK federation model at production
// scale (makespan, CPU-hours, per-site distribution), the same sweep is
// executed for real at coarse-grained scale on a local worker pool, and
// then re-executed over the internal/dist coordinator/worker runtime
// (real TCP, leases, checkpoint streaming) to show the distributed run
// is bit-identical to the local one.
//
// Run with:
//
//	go run ./examples/federated
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/dist/statsfmt"
	"spice/internal/federation"
	"spice/internal/jarzynski"
	"spice/internal/obs"
)

func main() {
	log.SetFlags(0)

	// --- Paper-scale schedule on the federation model ---
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()
	fed := federation.SPICEFederation()
	if err := campaign.BackgroundLoad(fed, 0.4, 24*14, 1); err != nil {
		log.Fatal(err)
	}
	sched, err := campaign.Simulate(fed, spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production campaign on the federated US-UK grid (Fig. 5):\n")
	fmt.Printf("  %d jobs, %.0f CPU-hours, makespan %.2f days (paper: 72 jobs, ~75,000 CPU-h, < 1 week)\n",
		len(sched.Placements), sched.TotalCPUHours, sched.Days())
	for m, n := range sched.PerSite {
		fmt.Printf("    %-12s %2d jobs\n", m, n)
	}

	single, err := campaign.Simulate(campaign.SingleSite("local-512", 512), spec, cm, true, federation.JobConstraint{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  same campaign on one 512-proc machine: %.2f days (%.1fx slower)\n\n",
		single.Days(), single.MakespanHours/sched.MakespanHours)

	// --- The same sweep executed for real at CG scale ---
	fmt.Println("executing the sweep at coarse-grained scale on the local worker pool...")
	cfg := core.PaperSweep()
	cfg.System.Beads = 6
	cfg.System.EngineWorkers = 1                  // pin force-sum order so dist can match bit-for-bit
	cfg.Velocities = []float64{50, 100, 200, 400} // scaled up to keep the demo short
	cfg.RefVelocity = 25
	cfg.Distance = 6
	cfg.Replicas = 2
	res, err := core.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%10s %10s %8s %10s %10s\n", "κ (pN/Å)", "v (Å/ns)", "samples", "σ_stat", "σ_sys")
	for _, p := range res.Points {
		fmt.Printf("%10g %10g %8d %10.4f %10.4f\n", p.KappaPaper, p.VPaper, p.Samples, p.SigmaStat, p.SigmaSys)
	}
	fmt.Printf("\noptimal parameters: κ=%g pN/Å, v=%g Å/ns\n", res.Best.KappaPaper, res.Best.VPaper)

	// --- The same sweep again, distributed over the dist runtime ---
	// A coordinator on loopback TCP plus three worker sessions stand in
	// for the grid sites above: jobs are leased out, heartbeats keep the
	// leases alive, and checkpoints stream back so a dead worker's job
	// resumes elsewhere. The merged result must match the local run
	// bit-for-bit. StateDir makes the campaign crash-safe: job state is
	// journaled so a coordinator killed mid-sweep can be restarted over
	// the same directory and resume instead of starting over. Each worker
	// carries a site identity mirroring the federation above, the "uk"
	// site is artificially throttled, and the coordinator's resilience
	// layer — per-site circuit breakers plus straggler hedging — is free
	// to re-execute crawling jobs speculatively on a healthier site;
	// determinism makes the duplicated work invisible in the output.
	fmt.Println("\nre-executing the sweep over the dist coordinator/worker runtime...")
	sysJSON, err := json.Marshal(cfg.System)
	if err != nil {
		log.Fatal(err)
	}
	stateDir, err := os.MkdirTemp("", "spice-federated-state-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// One validated Config, plus the obs layer: metrics generated from
	// the coordinator's snapshot and a live scheduling-event stream. In
	// production the registry is served with obs.Serve (spice -obs-addr);
	// here the demo scrapes it in-process after the run.
	reg := obs.NewRegistry()
	events := obs.NewEventLog(nil, 512)
	dcfg := dist.Defaults()
	dcfg.StateDir = stateDir
	dcfg.HedgeAfter = 200 * time.Millisecond
	dcfg.BeatInterval = 20 * time.Millisecond
	dcfg.CheckpointEvery = 1
	dcfg.Metrics = reg
	dcfg.Events = events
	co, err := dist.NewCoordinator(ln, sysJSON, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i, site := range []string{"us-east", "us-west", "uk"} {
		wcfg := dcfg
		wcfg.Metrics, wcfg.Events = nil, nil
		if i == 2 {
			// The degraded-but-alive site: heartbeats on time, progress
			// at a crawl — the shape that triggers a speculative hedge.
			wcfg.Throttle = 40 * time.Millisecond
		}
		w, err := dist.NewWorker(fmt.Sprintf("%s-0", site), site, ln.Addr().String(), core.BuildFromJSON, wcfg)
		if err != nil {
			log.Fatal(err)
		}
		go w.Run(ctx)
	}
	distCfg := cfg
	distCfg.Runner = co
	distRes, err := core.RunSweep(distCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := co.Close(); err != nil {
		log.Fatal(err)
	}
	identical := len(distRes.Grid) == len(res.Grid)
	for i := range res.Best.PMF {
		if !identical || distRes.Best.PMF[i] != res.Best.PMF[i] {
			identical = false
			break
		}
	}
	// One snapshot feeds the console tables, the Prometheus registry,
	// and any assertion a test wants to make — no drift between views.
	snap := co.StatsSnapshot()
	statsfmt.Render(os.Stdout, snap, "  ")
	fmt.Printf("  distributed PMF bit-identical to local run: %v\n", identical)

	// The same numbers as scraped from /metrics, plus the event stream's
	// view of the scheduling decisions the coordinator made along the way.
	fmt.Printf("\n  obs: %d events recorded", events.Seq())
	if n := events.Count("speculation_launched") + events.Count("lease_granted"); n > 0 {
		fmt.Printf(" (%d lease grants", events.Count("lease_granted"))
		if h := events.Count("straggler_flagged"); h > 0 {
			fmt.Printf(", %d straggler(s) flagged", h)
		}
		fmt.Printf(")")
	}
	fmt.Println()

	// SMD-JE vs vanilla accounting (§II's 50-100x claim).
	vanilla := cm.VanillaCPUHours(10)
	factor := jarzynski.ReductionFactor(vanilla, sched.TotalCPUHours*5) // sweep+production+priming margin
	fmt.Printf("\nvanilla 10 µs estimate: %.1e CPU-hours; SMD-JE campaign bundle: %.1e → reduction ~%.0fx\n",
		vanilla, sched.TotalCPUHours*5, factor)
}
