// Federated: the paper's batch phase end-to-end — the 72-simulation SMD-JE
// campaign is scheduled on the Fig. 5 US-UK federation model at production
// scale (makespan, CPU-hours, per-site distribution), the same sweep is
// executed for real at coarse-grained scale on a local worker pool, and
// then re-executed over the internal/dist coordinator/worker runtime
// (real TCP, leases, checkpoint streaming) to show the distributed run
// is bit-identical to the local one.
//
// Run with:
//
//	go run ./examples/federated
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"time"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/federation"
	"spice/internal/jarzynski"
)

func main() {
	log.SetFlags(0)

	// --- Paper-scale schedule on the federation model ---
	spec := campaign.PaperSpec()
	cm := campaign.PaperCostModel()
	fed := federation.SPICEFederation()
	if err := campaign.BackgroundLoad(fed, 0.4, 24*14, 1); err != nil {
		log.Fatal(err)
	}
	sched, err := campaign.Simulate(fed, spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production campaign on the federated US-UK grid (Fig. 5):\n")
	fmt.Printf("  %d jobs, %.0f CPU-hours, makespan %.2f days (paper: 72 jobs, ~75,000 CPU-h, < 1 week)\n",
		len(sched.Placements), sched.TotalCPUHours, sched.Days())
	for m, n := range sched.PerSite {
		fmt.Printf("    %-12s %2d jobs\n", m, n)
	}

	single, err := campaign.Simulate(campaign.SingleSite("local-512", 512), spec, cm, true, federation.JobConstraint{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  same campaign on one 512-proc machine: %.2f days (%.1fx slower)\n\n",
		single.Days(), single.MakespanHours/sched.MakespanHours)

	// --- The same sweep executed for real at CG scale ---
	fmt.Println("executing the sweep at coarse-grained scale on the local worker pool...")
	cfg := core.PaperSweep()
	cfg.System.Beads = 6
	cfg.System.EngineWorkers = 1                  // pin force-sum order so dist can match bit-for-bit
	cfg.Velocities = []float64{50, 100, 200, 400} // scaled up to keep the demo short
	cfg.RefVelocity = 25
	cfg.Distance = 6
	cfg.Replicas = 2
	res, err := core.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%10s %10s %8s %10s %10s\n", "κ (pN/Å)", "v (Å/ns)", "samples", "σ_stat", "σ_sys")
	for _, p := range res.Points {
		fmt.Printf("%10g %10g %8d %10.4f %10.4f\n", p.KappaPaper, p.VPaper, p.Samples, p.SigmaStat, p.SigmaSys)
	}
	fmt.Printf("\noptimal parameters: κ=%g pN/Å, v=%g Å/ns\n", res.Best.KappaPaper, res.Best.VPaper)

	// --- The same sweep again, distributed over the dist runtime ---
	// A coordinator on loopback TCP plus three worker sessions stand in
	// for the grid sites above: jobs are leased out, heartbeats keep the
	// leases alive, and checkpoints stream back so a dead worker's job
	// resumes elsewhere. The merged result must match the local run
	// bit-for-bit. StateDir makes the campaign crash-safe: job state is
	// journaled so a coordinator killed mid-sweep can be restarted over
	// the same directory and resume instead of starting over. Each worker
	// carries a site identity mirroring the federation above, the "uk"
	// site is artificially throttled, and the coordinator's resilience
	// layer — per-site circuit breakers plus straggler hedging — is free
	// to re-execute crawling jobs speculatively on a healthier site;
	// determinism makes the duplicated work invisible in the output.
	fmt.Println("\nre-executing the sweep over the dist coordinator/worker runtime...")
	sysJSON, err := json.Marshal(cfg.System)
	if err != nil {
		log.Fatal(err)
	}
	stateDir, err := os.MkdirTemp("", "spice-federated-state-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	co := &dist.Coordinator{
		Listener:      ln,
		System:        sysJSON,
		StateDir:      stateDir,
		HedgeFraction: 0.3,
		HedgeAfter:    200 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i, site := range []string{"us-east", "us-west", "uk"} {
		w := &dist.Worker{
			Name:            fmt.Sprintf("%s-0", site),
			Site:            site,
			Addr:            ln.Addr().String(),
			Build:           core.BuildFromJSON,
			BeatInterval:    20 * time.Millisecond,
			CheckpointEvery: 1,
			Reconnect:       true,
		}
		if i == 2 {
			// The degraded-but-alive site: heartbeats on time, progress
			// at a crawl — the shape that triggers a speculative hedge.
			w.Throttle = 40 * time.Millisecond
		}
		go w.Run(ctx)
	}
	distCfg := cfg
	distCfg.Runner = co
	distRes, err := core.RunSweep(distCfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := co.Close(); err != nil {
		log.Fatal(err)
	}
	identical := len(distRes.Grid) == len(res.Grid)
	for i := range res.Best.PMF {
		if !identical || distRes.Best.PMF[i] != res.Best.PMF[i] {
			identical = false
			break
		}
	}
	st := co.Stats()
	fmt.Printf("  %d jobs over %d assignments (%d retries, %d resumes), %d KiB in / %d KiB out\n",
		st.Jobs, st.Assignments, st.Retries, st.Resumes, st.BytesIn/1024, st.BytesOut/1024)
	fmt.Printf("  crash-safety journal: %d restart(s), %d records replayed, %d adoptions, %d duplicates dropped\n",
		st.Restarts, st.ReplayedRecords, st.Adoptions, st.DuplicateResultsDropped)
	fmt.Printf("  resilience: %d straggler(s) flagged, %d speculation(s) launched (%d won, %d wasted), %d breaker trip(s)\n",
		st.StragglersDetected, st.SpeculationsLaunched, st.SpeculationsWon, st.SpeculationsWasted, st.BreakerTrips)
	fmt.Printf("  distributed PMF bit-identical to local run: %v\n", identical)

	// Per-site health, the coordinator's live model of the fleet.
	sites := co.SiteStats()
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\n  %-10s %7s %7s %9s %9s %10s %12s\n",
		"site", "leased", "done", "spec won", "spec lost", "breaker", "rate (st/s)")
	for _, name := range names {
		s := sites[name]
		fmt.Printf("  %-10s %7d %7d %9d %9d %10s %12.0f\n",
			s.Site, s.Assignments, s.Completions, s.SpecWon, s.SpecLost, s.Breaker, s.RateEWMA)
	}

	// SMD-JE vs vanilla accounting (§II's 50-100x claim).
	vanilla := cm.VanillaCPUHours(10)
	factor := jarzynski.ReductionFactor(vanilla, sched.TotalCPUHours*5) // sweep+production+priming margin
	fmt.Printf("\nvanilla 10 µs estimate: %.1e CPU-hours; SMD-JE campaign bundle: %.1e → reduction ~%.0fx\n",
		vanilla, sched.TotalCPUHours*5, factor)
}
