// Freeenergy: the paper's §VI claim in action — the same SPICE
// infrastructure computes the free energy profile of a model binding well
// three ways: SMD + Jarzynski (the paper's method), steered thermodynamic
// integration (the named extension), and umbrella sampling with WHAM.
//
// Run with:
//
//	go run ./examples/freeenergy
package main

import (
	"fmt"
	"log"
	"math"

	"spice/internal/forcefield"
	"spice/internal/jarzynski"
	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/ti"
	"spice/internal/topology"
	"spice/internal/trace"
	"spice/internal/umbrella"
	"spice/internal/units"
	"spice/internal/vec"
)

const (
	wellZ     = 5.0
	wellDepth = 1.5
	wellWidth = 1.5
)

func build(_ int, seed uint64) (*md.Engine, []int, error) {
	top := topology.New()
	top.AddAtom(topology.Atom{Kind: topology.KindDNA, Mass: 325, Radius: 3})
	well := &forcefield.BindingSites{
		Sites: []forcefield.BindingSite{{Z: wellZ, Depth: wellDepth, Width: wellWidth}},
		Atoms: []int{0},
	}
	eng, err := md.New(md.Config{
		Top:   top,
		Init:  []vec.V{{}},
		Terms: []forcefield.Term{well},
		Seed:  seed,
		DT:    0.02,
	})
	return eng, []int{0}, err
}

func truth(z float64) float64 {
	return -wellDepth * math.Exp(-(z-wellZ)*(z-wellZ)/(2*wellWidth*wellWidth))
}

func main() {
	log.SetFlags(0)
	fmt.Println("free energy of a model binding well, three ways on the SPICE stack")
	fmt.Printf("true profile: %.1f kcal/mol Gaussian well at z=%.0f Å\n\n", -wellDepth, wellZ)

	// --- SMD-JE ---
	var logs []*trace.WorkLog
	for r := 0; r < 12; r++ {
		eng, atoms, err := build(0, uint64(300+r))
		if err != nil {
			log.Fatal(err)
		}
		p := smd.PaperProtocol(300, 25, atoms)
		p.Axis = vec.V{Z: 1}
		pl, err := smd.Attach(eng, p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pl.Run(eng, p, uint64(300+r))
		if err != nil {
			log.Fatal(err)
		}
		logs = append(logs, res.Log)
	}
	ens, err := jarzynski.NewEnsemble(300, logs)
	if err != nil {
		log.Fatal(err)
	}
	jePMF, err := ens.PMF(jarzynski.Cumulant2)
	if err != nil {
		log.Fatal(err)
	}

	// --- Thermodynamic integration ---
	tiRes, err := ti.Run(ti.Config{
		Build: build, Kappa: units.SpringFromPaper(300), Axis: vec.V{Z: 1},
		Start: 0, Distance: 10, Windows: 21,
		EquilSteps: 2000, SampleSteps: 12000, SampleEvery: 5,
		Workers: 4, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// --- Umbrella sampling + WHAM ---
	whamRes, err := umbrella.Run(umbrella.Config{
		Build: build, Kappa: units.SpringFromPaper(50), Axis: vec.V{Z: 1},
		Start: 0, Distance: 10, Windows: 11,
		EquilSteps: 2000, SampleSteps: 20000, SampleEvery: 5,
		Temp: 300, Workers: 4, Seed: 17,
	}, 25)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %10s %10s %10s\n", "z (Å)", "true", "SMD-JE", "TI", "WHAM")
	for z := 0.0; z <= 10.0001; z += 1 {
		fmt.Printf("%8.1f %10.3f %10.3f %10.3f %10.3f\n",
			z, centered(truth, z),
			at(ens.Grid, jePMF, z), at(tiRes.Grid, tiRes.PMF, z), at(whamRes.Grid, whamRes.PMF, z))
	}
	fmt.Println("\n(each column is offset-anchored at its own z=0 point; WHAM edge bins are thin)")
}

// centered evaluates truth anchored at z=0 like the estimators anchor.
func centered(f func(float64) float64, z float64) float64 { return f(z) - f(0) }

// at linearly interpolates profile (grid, vals) at z; NaN outside.
func at(grid, vals []float64, z float64) float64 {
	for i := 0; i+1 < len(grid); i++ {
		if z >= grid[i] && z <= grid[i+1] {
			if math.IsInf(vals[i], 1) || math.IsInf(vals[i+1], 1) {
				return math.NaN()
			}
			frac := (z - grid[i]) / (grid[i+1] - grid[i])
			return vals[i] + frac*(vals[i+1]-vals[i])
		}
	}
	return math.NaN()
}
