// Translocation: the paper's Fig. 1 / Fig. 3 scenario — a single-stranded
// DNA steered through the full alpha-hemolysin pore model (explicit wall
// beads, seven-fold corrugation, membrane slab), with snapshot summaries
// showing how the strand stretches as it crosses the constriction, and a
// binary trajectory written for offline visualization.
//
// Run with:
//
//	go run ./examples/translocation
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"spice/internal/md"
	"spice/internal/polymer"
	"spice/internal/smd"
	"spice/internal/trace"
	"spice/internal/vec"
)

func main() {
	log.SetFlags(0)

	spec := md.DefaultTranslocation(10)
	spec.NoWalls = false // explicit seven-fold wall beads, like Fig. 1b
	spec.Seed = 7
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d atoms (%d DNA beads, %d pore-wall beads)\n",
		ts.Engine.Topology().N(), len(ts.DNA), len(ts.Walls))
	fmt.Printf("pore: vestibule %.0f Å → constriction %.1f Å → barrel %.0f Å (seven-fold symmetric)\n\n",
		spec.Pore.VestibuleRadius, spec.Pore.ConstrictionRadius, spec.Pore.BarrelRadius)

	// Equilibrate, then steer the leading bead down the pore axis.
	ts.Engine.Run(2000)
	p := smd.PaperProtocol(100, 400, ts.DNA[:1])
	p.Distance = 40 // mouth → deep barrel, the full Fig. 3 traverse
	pl, err := smd.Attach(ts.Engine, p)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("translocation.sptrj")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tw := trace.NewTrajectoryWriter(f)
	stretch, err := polymer.NewStretchProfile(-40, 40, 8, spec.DNA.BondR0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %12s %12s   %s\n", "λ (Å)", "lead z (Å)", "extension", "work", "strand profile")
	dt := ts.Engine.Timestep()
	stepsPerA := int(1 / (p.Velocity * dt))
	for pulled := 0; pulled <= int(p.Distance); pulled += 4 {
		if err := tw.WriteFrame(ts.Engine.Frame()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f %10.2f %12.2f %12.2f   %s\n",
			pl.Displacement(), ts.LeadZ(), ts.StrandExtension(), pl.Work(), strandBar(ts))
		for s := 0; s < 4*stepsPerA; s++ {
			ts.Engine.Step()
			pl.Advance(dt)
			if s%50 == 0 {
				st := ts.Engine.State()
				conf := make([]vec.V, len(ts.DNA))
				for k, id := range ts.DNA {
					conf[k] = st.Pos[id]
				}
				stretch.Add(conf)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbackbone strain by height (constriction at z=0):")
	for b := stretch.Bins - 1; b >= 0; b-- {
		if s, ok := stretch.Strain(b); ok {
			fmt.Printf("  z %6.1f Å  strain %+6.2f%%\n", stretch.BinCenter(b), 100*s)
		}
	}
	fmt.Println("\ntrajectory written to translocation.sptrj")
	fmt.Println("the strand stretches as it is dragged through the confined pore (Fig. 3)")
}

// strandBar renders the strand's z-span as a crude one-line depth gauge:
// '|' marks the constriction (z=0).
func strandBar(ts *md.TranslocationSystem) string {
	st := ts.Engine.State()
	var b strings.Builder
	for z := 45.0; z >= -50; z -= 5 {
		mark := "."
		if z == 0 {
			mark = "|"
		}
		for _, i := range ts.DNA {
			if st.Pos[i].Z <= z && st.Pos[i].Z > z-5 {
				mark = "o"
				break
			}
		}
		b.WriteString(mark)
	}
	return b.String()
}
