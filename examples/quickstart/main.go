// Quickstart: compute a free energy profile for a short ssDNA strand
// crossing the hemolysin-like pore constriction using the SMD-JE method —
// the smallest end-to-end use of the SPICE public API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spice/internal/core"
	"spice/internal/jarzynski"
)

func main() {
	log.SetFlags(0)

	// A reduced sweep so the example finishes in seconds: two spring
	// constants, two velocities, short 5 Å sub-trajectory.
	cfg := core.PaperSweep()
	cfg.System.Beads = 6
	cfg.Kappas = []float64{100, 1000}
	cfg.Velocities = []float64{50, 100}
	cfg.Replicas = 3
	cfg.Distance = 5
	cfg.RefVelocity = 25
	cfg.Seed = 42

	fmt.Println("SPICE quickstart: SMD-JE free energy of pore translocation")
	fmt.Printf("sweep: κ ∈ %v pN/Å, v ∈ %v Å/ns\n\n", cfg.Kappas, cfg.Velocities)

	res, err := core.RunSweep(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s %10s %10s %10s\n", "κ (pN/Å)", "v (Å/ns)", "σ_stat", "σ_sys")
	for _, p := range res.Points {
		fmt.Printf("%10g %10g %10.4f %10.4f\n", p.KappaPaper, p.VPaper, p.SigmaStat, p.SigmaSys)
	}
	fmt.Printf("\noptimal parameters: κ=%g pN/Å, v=%g Å/ns\n\n", res.Best.KappaPaper, res.Best.VPaper)

	// Production PMF at the optimum with the exact Jarzynski estimator.
	prod, err := core.RunProduction(core.ProductionConfig{
		System:    cfg.System,
		KappaPN:   res.Best.KappaPaper,
		VAns:      res.Best.VPaper,
		Replicas:  8,
		Distance:  cfg.Distance,
		Seed:      43,
		Estimator: jarzynski.Exponential,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("production PMF (displacement of COM → Φ ± σ):")
	for i := range prod.Grid {
		fmt.Printf("  %6.2f Å   %8.4f ± %.4f kcal/mol\n", prod.Grid[i], prod.PMF[i], prod.SigmaStat[i])
	}
}
