// Package vec provides 3-component vector math for the MD engine.
//
// Vectors are small value types; all operations return new values except
// the explicitly in-place Add/Sub/Scale pointer methods used in hot loops.
package vec

import (
	"fmt"
	"math"
)

// V is a 3-vector (x, y, z) in simulation units (Å for positions,
// Å/ps for velocities, kcal/mol/Å for forces).
type V struct{ X, Y, Z float64 }

// New returns the vector (x, y, z).
func New(x, y, z float64) V { return V{x, y, z} }

// Zero is the zero vector.
var Zero = V{}

// Add returns a + b.
func (a V) Add(b V) V { return V{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V) Sub(b V) V { return V{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s·a.
func (a V) Scale(s float64) V { return V{a.X * s, a.Y * s, a.Z * s} }

// Neg returns -a.
func (a V) Neg() V { return V{-a.X, -a.Y, -a.Z} }

// Dot returns a·b.
func (a V) Dot(b V) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns a×b.
func (a V) Cross(b V) V {
	return V{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns |a|.
func (a V) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Norm2 returns |a|².
func (a V) Norm2() float64 { return a.Dot(a) }

// Unit returns a/|a|. It returns the zero vector if |a| == 0.
func (a V) Unit() V {
	n := a.Norm()
	if n == 0 {
		return Zero
	}
	return a.Scale(1 / n)
}

// Dist returns |a-b|.
func Dist(a, b V) float64 { return a.Sub(b).Norm() }

// Dist2 returns |a-b|².
func Dist2(a, b V) float64 { return a.Sub(b).Norm2() }

// Lerp returns a + t·(b-a).
func Lerp(a, b V, t float64) V { return a.Add(b.Sub(a).Scale(t)) }

// AddInPlace sets a += b without allocating.
func (a *V) AddInPlace(b V) { a.X += b.X; a.Y += b.Y; a.Z += b.Z }

// SubInPlace sets a -= b.
func (a *V) SubInPlace(b V) { a.X -= b.X; a.Y -= b.Y; a.Z -= b.Z }

// ScaleInPlace sets a *= s.
func (a *V) ScaleInPlace(s float64) { a.X *= s; a.Y *= s; a.Z *= s }

// AddScaled sets a += s·b. This is the hot-path FMA shape used by the
// integrators and force accumulation.
func (a *V) AddScaled(s float64, b V) {
	a.X += s * b.X
	a.Y += s * b.Y
	a.Z += s * b.Z
}

// IsFinite reports whether all three components are finite numbers.
func (a V) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// String implements fmt.Stringer.
func (a V) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", a.X, a.Y, a.Z) }

// Sum returns the component-wise sum of vs.
func Sum(vs []V) V {
	var s V
	for _, v := range vs {
		s.AddInPlace(v)
	}
	return s
}

// Mean returns the arithmetic mean of vs, or the zero vector for empty input.
func Mean(vs []V) V {
	if len(vs) == 0 {
		return Zero
	}
	return Sum(vs).Scale(1 / float64(len(vs)))
}

// MinImage applies the minimum-image convention to displacement d for an
// orthorhombic box with edge lengths box (zero components mean
// non-periodic in that direction).
func MinImage(d V, box V) V {
	if box.X > 0 {
		d.X -= box.X * math.Round(d.X/box.X)
	}
	if box.Y > 0 {
		d.Y -= box.Y * math.Round(d.Y/box.Y)
	}
	if box.Z > 0 {
		d.Z -= box.Z * math.Round(d.Z/box.Z)
	}
	return d
}

// MinImageWrapped is MinImage for displacements between positions already
// wrapped into the primary cell, i.e. |d| < box componentwise. The single
// compare-and-correct per axis replaces MinImage's math.Round — worth it
// in the per-pair force loop, where the branch is almost never taken.
func MinImageWrapped(d V, box V) V {
	if box.X > 0 {
		if h := 0.5 * box.X; d.X > h {
			d.X -= box.X
		} else if d.X < -h {
			d.X += box.X
		}
	}
	if box.Y > 0 {
		if h := 0.5 * box.Y; d.Y > h {
			d.Y -= box.Y
		} else if d.Y < -h {
			d.Y += box.Y
		}
	}
	if box.Z > 0 {
		if h := 0.5 * box.Z; d.Z > h {
			d.Z -= box.Z
		} else if d.Z < -h {
			d.Z += box.Z
		}
	}
	return d
}

// Wrap maps position p into the primary cell [0, box) for periodic
// directions (box component > 0); non-periodic components pass through.
func Wrap(p V, box V) V {
	if box.X > 0 {
		p.X -= box.X * math.Floor(p.X/box.X)
	}
	if box.Y > 0 {
		p.Y -= box.Y * math.Floor(p.Y/box.Y)
	}
	if box.Z > 0 {
		p.Z -= box.Z * math.Floor(p.Z/box.Z)
	}
	return p
}
