package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApprox(a, b V, tol float64) bool {
	return approx(a.X, b.X, tol) && approx(a.Y, b.Y, tol) && approx(a.Z, b.Z, tol)
}

// genOK filters out pathological float inputs from quick.Check.
func genOK(vs ...V) bool {
	for _, v := range vs {
		if !v.IsFinite() || v.Norm() > 1e100 {
			return false
		}
	}
	return true
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b V) bool {
		if !genOK(a, b) {
			return true
		}
		return vecApprox(a.Add(b).Sub(b), a, 1e-6*math.Max(1, a.Norm()+b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotCommutative(t *testing.T) {
	f := func(a, b V) bool {
		if !genOK(a, b) {
			return true
		}
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(a, b V) bool {
		if !genOK(a, b) || a.Norm() > 1e15 || b.Norm() > 1e15 {
			return true
		}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return c == Zero
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossAnticommutative(t *testing.T) {
	a, b := New(1, 2, 3), New(-4, 5, 0.5)
	if got, want := a.Cross(b), b.Cross(a).Neg(); !vecApprox(got, want, 1e-12) {
		t.Fatalf("a×b = %v, -(b×a) = %v", got, want)
	}
}

func TestUnitNorm(t *testing.T) {
	f := func(a V) bool {
		if !genOK(a) {
			return true
		}
		u := a.Unit()
		if a.Norm() == 0 {
			return u == Zero
		}
		return approx(u.Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := New(1, -1, 2), New(3, 4, -5)
	if !vecApprox(Lerp(a, b, 0), a, 1e-12) || !vecApprox(Lerp(a, b, 1), b, 1e-12) {
		t.Fatal("Lerp endpoints wrong")
	}
	mid := Lerp(a, b, 0.5)
	if !vecApprox(mid, New(2, 1.5, -1.5), 1e-12) {
		t.Fatalf("midpoint = %v", mid)
	}
}

func TestInPlaceOpsMatchValueOps(t *testing.T) {
	a, b := New(1, 2, 3), New(0.5, -0.25, 8)
	c := a
	c.AddInPlace(b)
	if c != a.Add(b) {
		t.Fatal("AddInPlace mismatch")
	}
	c = a
	c.SubInPlace(b)
	if c != a.Sub(b) {
		t.Fatal("SubInPlace mismatch")
	}
	c = a
	c.ScaleInPlace(3)
	if c != a.Scale(3) {
		t.Fatal("ScaleInPlace mismatch")
	}
	c = a
	c.AddScaled(2, b)
	if c != a.Add(b.Scale(2)) {
		t.Fatal("AddScaled mismatch")
	}
}

func TestSumMean(t *testing.T) {
	vs := []V{New(1, 0, 0), New(0, 2, 0), New(0, 0, 3), New(1, 2, 3)}
	if got := Sum(vs); got != New(2, 4, 6) {
		t.Fatalf("Sum = %v", got)
	}
	if got := Mean(vs); got != New(0.5, 1, 1.5) {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != Zero {
		t.Fatal("Mean(nil) should be zero")
	}
}

func TestMinImage(t *testing.T) {
	box := New(10, 10, 0) // periodic in x,y only
	d := MinImage(New(9, -9, 42), box)
	if !vecApprox(d, New(-1, 1, 42), 1e-12) {
		t.Fatalf("MinImage = %v", d)
	}
	// Property: result components lie within [-L/2, L/2] for periodic dims.
	f := func(a V) bool {
		if !genOK(a) || a.Norm() > 1e9 {
			return true
		}
		d := MinImage(a, box)
		return d.X >= -5-1e-9 && d.X <= 5+1e-9 && d.Y >= -5-1e-9 && d.Y <= 5+1e-9 && d.Z == a.Z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrap(t *testing.T) {
	box := New(10, 10, 10)
	f := func(a V) bool {
		if !genOK(a) || a.Norm() > 1e9 {
			return true
		}
		p := Wrap(a, box)
		return p.X >= 0 && p.X < 10+1e-9 && p.Y >= 0 && p.Y < 10+1e-9 && p.Z >= 0 && p.Z < 10+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Non-periodic passthrough.
	if got := Wrap(New(-3, 42, 7), New(0, 0, 10)); got.X != -3 || got.Y != 42 {
		t.Fatalf("non-periodic Wrap = %v", got)
	}
}

func TestDist(t *testing.T) {
	if got := Dist(New(0, 0, 0), New(3, 4, 0)); !approx(got, 5, 1e-12) {
		t.Fatalf("Dist = %v", got)
	}
	if got := Dist2(New(0, 0, 0), New(3, 4, 0)); !approx(got, 25, 1e-12) {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	bad := []V{{math.NaN(), 0, 0}, {0, math.Inf(1), 0}, {0, 0, math.Inf(-1)}}
	for _, v := range bad {
		if v.IsFinite() {
			t.Fatalf("%v reported finite", v)
		}
	}
}
