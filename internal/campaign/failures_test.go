package campaign

import (
	"testing"

	"spice/internal/federation"
)

func TestSimulateWithFailuresZeroRateMatchesBaseline(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	base, err := Simulate(federation.SPICEFederation(), spec, cm, true, federation.JobConstraint{})
	if err != nil {
		t.Fatal(err)
	}
	noFail, err := SimulateWithFailures(federation.SPICEFederation(), spec, cm,
		FailureModel{PFail: 0, Seed: 1}, federation.JobConstraint{})
	if err != nil {
		t.Fatal(err)
	}
	if noFail.Failures != 0 || noFail.WastedCPUHours != 0 {
		t.Fatalf("phantom failures: %+v", noFail)
	}
	if len(noFail.Placements) != len(base.Placements) {
		t.Fatalf("placements %d vs %d", len(noFail.Placements), len(base.Placements))
	}
	// Useful CPU-hours identical (same job set completed).
	if noFail.TotalCPUHours != base.TotalCPUHours {
		t.Fatalf("CPU-hours %v vs %v", noFail.TotalCPUHours, base.TotalCPUHours)
	}
}

func TestSimulateWithFailuresDisrupts(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	clean, err := SimulateWithFailures(federation.SPICEFederation(), spec, cm,
		FailureModel{PFail: 0, Seed: 2}, federation.JobConstraint{})
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := SimulateWithFailures(federation.SPICEFederation(), spec, cm,
		FailureModel{PFail: 0.25, Seed: 2}, federation.JobConstraint{})
	if err != nil {
		t.Fatal(err)
	}
	if flaky.Failures == 0 {
		t.Fatal("25% failure rate produced no failures over 72 jobs")
	}
	if flaky.WastedCPUHours <= 0 {
		t.Fatal("failures wasted no cycles")
	}
	if flaky.MakespanHours <= clean.MakespanHours {
		t.Fatalf("failures should lengthen the campaign: %v vs %v",
			flaky.MakespanHours, clean.MakespanHours)
	}
	// All 72 logical jobs still complete.
	if len(flaky.Placements) != 72 {
		t.Fatalf("completed placements = %d", len(flaky.Placements))
	}
}

func TestSimulateWithFailuresExcludesFlakyMachine(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	res, err := SimulateWithFailures(federation.SPICEFederation(), spec, cm,
		FailureModel{PFail: 0.3, ExcludeFailedMachine: true, Seed: 3}, federation.JobConstraint{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures at 30%")
	}
	// Completion despite exclusions: the federation has enough sites.
	if len(res.Placements) != 72 {
		t.Fatalf("completed = %d", len(res.Placements))
	}
}

func TestSimulateWithFailuresValidation(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	if _, err := SimulateWithFailures(federation.SPICEFederation(), spec, cm,
		FailureModel{PFail: 1.0}, federation.JobConstraint{}); err == nil {
		t.Fatal("PFail=1 accepted (would never terminate)")
	}
	if _, err := SimulateWithFailures(federation.SPICEFederation(), spec, cm,
		FailureModel{PFail: -0.1}, federation.JobConstraint{}); err == nil {
		t.Fatal("negative PFail accepted")
	}
}

func TestSimulateWithFailuresDeterministic(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	run := func() *FailureResult {
		r, err := SimulateWithFailures(federation.SPICEFederation(), spec, cm,
			FailureModel{PFail: 0.2, Seed: 5}, federation.JobConstraint{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Failures != b.Failures || a.MakespanHours != b.MakespanHours || a.WastedCPUHours != b.WastedCPUHours {
		t.Fatal("failure simulation not deterministic")
	}
}
