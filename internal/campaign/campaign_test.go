package campaign

import (
	"math"
	"testing"

	"spice/internal/federation"
	"spice/internal/jarzynski"
	"spice/internal/md"
)

func TestPaperCostModel(t *testing.T) {
	cm := PaperCostModel()
	// §I: 1 ns on 128 procs takes 24 h.
	if got := cm.HoursFor(1, 128); math.Abs(got-24) > 1e-9 {
		t.Fatalf("1 ns on 128 procs = %v h, want ~24", got)
	}
	// 256 procs halves it.
	if got := cm.HoursFor(1, 256); math.Abs(got-12) > 1e-9 {
		t.Fatalf("256-proc hours = %v", got)
	}
	// §I: 10 µs of vanilla MD is ~3×10⁷ CPU-hours (3.072e7 unrounded).
	if got := cm.VanillaCPUHours(10); math.Abs(got-3.072e7) > 1 {
		t.Fatalf("vanilla 10 µs = %v CPU-h", got)
	}
	if cm.HoursFor(1, 0) != cm.HoursFor(1, 128) {
		t.Fatal("default procs should be 128")
	}
}

func TestPaperSpecIs72Jobs(t *testing.T) {
	spec := PaperSpec()
	jobs := spec.Jobs(PaperCostModel())
	if len(jobs) != 72 {
		t.Fatalf("paper campaign = %d jobs, want 72", len(jobs))
	}
	// Total CPU-hours should land near the paper's ~75,000.
	total := 0.0
	for _, j := range jobs {
		total += j.CPUHours()
	}
	if total < 40000 || total > 120000 {
		t.Fatalf("campaign = %v CPU-h, want order 75,000", total)
	}
	// Slower pulls simulate more physical time → longer jobs.
	byCombo := make(map[string]float64)
	for _, j := range jobs {
		byCombo[j.Tags["velocity"]] = j.Hours
	}
	if byCombo["12.5"] <= byCombo["100"] {
		t.Fatalf("v=12.5 job (%v h) should outlast v=100 job (%v h)", byCombo["12.5"], byCombo["100"])
	}
}

func TestSamplesForCostNormalization(t *testing.T) {
	spec := Spec{
		Kappas:     []float64{100},
		Velocities: []float64{12.5, 25, 50, 100},
		Replicas:   2,
		Distance:   10,
	}
	// v=12.5 → 2; v=100 → 16 (8× cheaper per sample).
	if n := spec.SamplesFor(Combo{100, 12.5}); n != 2 {
		t.Fatalf("v=12.5 samples = %d", n)
	}
	if n := spec.SamplesFor(Combo{100, 100}); n != 16 {
		t.Fatalf("v=100 samples = %d", n)
	}
	spec.EqualSamples = true
	if n := spec.SamplesFor(Combo{100, 100}); n != 2 {
		t.Fatalf("equal-samples mode = %d", n)
	}
}

func TestCombosDeterministicOrder(t *testing.T) {
	spec := PaperSpec()
	a := spec.Combos()
	b := spec.Combos()
	if len(a) != 12 {
		t.Fatalf("combos = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("combo order not deterministic")
		}
	}
}

func TestSimulateCampaignFederationVsSingleSite(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	fedResult, err := Simulate(federation.SPICEFederation(), spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Simulate(SingleSite("local", 512), spec, cm, true, federation.JobConstraint{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "72 parallel MD simulations in under a week" on the
	// federation; a single 512-proc machine takes several times longer.
	if fedResult.Days() >= 7 {
		t.Fatalf("federation makespan = %.1f days, want < 7", fedResult.Days())
	}
	if single.MakespanHours <= fedResult.MakespanHours*1.5 {
		t.Fatalf("single site (%.0f h) should be much slower than federation (%.0f h)",
			single.MakespanHours, fedResult.MakespanHours)
	}
	// ~75k CPU-hours either way (same work).
	if math.Abs(fedResult.TotalCPUHours-single.TotalCPUHours) > 1 {
		t.Fatal("CPU-hours should not depend on scheduling")
	}
	// The federation actually used multiple sites.
	if len(fedResult.PerSite) < 3 {
		t.Fatalf("federation used %d machines", len(fedResult.PerSite))
	}
}

func TestBackgroundLoadDelaysCampaign(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	idle, err := Simulate(federation.SPICEFederation(), spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
	if err != nil {
		t.Fatal(err)
	}
	loaded := federation.SPICEFederation()
	if err := BackgroundLoad(loaded, 0.5, 24*7, 1); err != nil {
		t.Fatal(err)
	}
	busy, err := Simulate(loaded, spec, cm, true, federation.JobConstraint{NeedsCrossSite: true})
	if err != nil {
		t.Fatal(err)
	}
	if busy.MakespanHours <= idle.MakespanHours {
		t.Fatalf("background load should delay the campaign: %v vs %v", busy.MakespanHours, idle.MakespanHours)
	}
	if err := BackgroundLoad(loaded, 1.5, 24, 1); err == nil {
		t.Fatal("load fraction > 1 accepted")
	}
}

func TestCompareScenarios(t *testing.T) {
	spec := PaperSpec()
	cm := PaperCostModel()
	feds := map[string]*federation.Federation{
		"federation":  federation.SPICEFederation(),
		"single-site": SingleSite("local", 512),
	}
	results, labels, err := CompareScenarios(feds, spec, cm, federation.JobConstraint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(labels) != 2 {
		t.Fatalf("results = %d labels = %v", len(results), labels)
	}
	if labels[0] != "federation" || labels[1] != "single-site" {
		t.Fatalf("labels not sorted: %v", labels)
	}
}

// smallBuild returns a Build function for a tiny single-bead landscape so
// local campaign tests run in milliseconds.
func smallBuild(c Combo, seed uint64) (*md.Engine, []int, error) {
	spec := md.DefaultTranslocation(3)
	spec.Seed = seed
	spec.DT = 0.02
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		return nil, nil, err
	}
	return ts.Engine, ts.DNA[:1], nil
}

func TestLocalRunnerExecutesSweep(t *testing.T) {
	spec := Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{400, 800},
		Replicas:   2,
		Distance:   4,
		Seed:       7,
	}
	lr := &LocalRunner{Build: smallBuild, Workers: 4}
	logs, err := lr.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 4 {
		t.Fatalf("combos = %d", len(logs))
	}
	// Cost normalization: v=800 gets twice the replicas of v=400.
	if n := len(logs[Combo{100, 400}]); n != 2 {
		t.Fatalf("v=400 replicas = %d", n)
	}
	if n := len(logs[Combo{100, 800}]); n != 4 {
		t.Fatalf("v=800 replicas = %d", n)
	}
	// Logs are analyzable.
	e, err := jarzynski.NewEnsemble(300, logs[Combo{100, 800}])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PMF(jarzynski.Cumulant2); err != nil {
		t.Fatal(err)
	}
}

func TestLocalRunnerDeterministic(t *testing.T) {
	spec := Spec{
		Kappas:     []float64{100},
		Velocities: []float64{800},
		Replicas:   2,
		Distance:   3,
		Seed:       9,
	}
	run := func(workers int) []float64 {
		lr := &LocalRunner{Build: smallBuild, Workers: workers}
		logs, err := lr.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		var final []float64
		for _, wl := range logs[Combo{100, 800}] {
			final = append(final, wl.Samples[len(wl.Samples)-1].Work)
		}
		return final
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatal("replica counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker count changed results: %v vs %v", a, b)
		}
	}
}

// TestLocalRunnerBitIdenticalAcrossWorkerCounts is the determinism
// regression the dist runtime's merge guarantee is anchored on: every
// work sample of every replica, and the PMF derived from them, must be
// bit-identical no matter how many workers executed the sweep.
func TestLocalRunnerBitIdenticalAcrossWorkerCounts(t *testing.T) {
	spec := Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{800},
		Replicas:   2,
		Distance:   3,
		Seed:       13,
	}
	combo := Combo{100, 800}
	type snapshot struct {
		works map[Combo][][]float64
		pmf   []float64
	}
	run := func(workers int) snapshot {
		lr := &LocalRunner{Build: smallBuild, Workers: workers}
		logs, err := lr.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		s := snapshot{works: make(map[Combo][][]float64)}
		for c, wls := range logs {
			for _, wl := range wls {
				ws := make([]float64, len(wl.Samples))
				for i, smp := range wl.Samples {
					ws[i] = smp.Work
				}
				s.works[c] = append(s.works[c], ws)
			}
		}
		e, err := jarzynski.NewEnsemble(300, logs[combo])
		if err != nil {
			t.Fatal(err)
		}
		s.pmf, err = e.PMF(jarzynski.Cumulant2)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := run(1)
	for _, workers := range []int{2, 7} {
		got := run(workers)
		for c, reps := range base.works {
			if len(got.works[c]) != len(reps) {
				t.Fatalf("workers=%d: combo %s has %d replicas, want %d", workers, c, len(got.works[c]), len(reps))
			}
			for r := range reps {
				for i := range reps[r] {
					if got.works[c][r][i] != reps[r][i] {
						t.Fatalf("workers=%d: combo %s replica %d sample %d work %v != %v",
							workers, c, r, i, got.works[c][r][i], reps[r][i])
					}
				}
			}
		}
		for i := range base.pmf {
			if got.pmf[i] != base.pmf[i] {
				t.Fatalf("workers=%d: PMF[%d] = %v, want %v (bit-identical)", workers, i, got.pmf[i], base.pmf[i])
			}
		}
	}
}

func TestLocalRunnerRequiresBuild(t *testing.T) {
	lr := &LocalRunner{}
	if _, err := lr.Run(PaperSpec()); err == nil {
		t.Fatal("nil Build accepted")
	}
}

func TestComboString(t *testing.T) {
	if (Combo{100, 12.5}).String() != "k100-v12.5" {
		t.Fatalf("combo label = %q", Combo{100, 12.5})
	}
}
