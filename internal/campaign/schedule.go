package campaign

import (
	"fmt"
	"sort"
	"strconv"

	"spice/internal/federation"
	"spice/internal/grid"
)

// ScheduleResult summarizes a simulated campaign schedule.
type ScheduleResult struct {
	Placements    []grid.Placement
	MakespanHours float64
	TotalCPUHours float64
	// PerSite counts jobs by hosting machine name.
	PerSite map[string]int
	// MaxWaitHours is the worst queue wait.
	MaxWaitHours float64
}

// Days returns the makespan in days — the paper's headline is "under a
// week".
func (r ScheduleResult) Days() float64 { return r.MakespanHours / 24 }

// Simulate schedules the campaign's job set on the federation (or any
// subset of it) and returns the schedule summary. Constraint applies to
// every job; the production batch needs cross-site steering connectivity
// but not lightpaths.
func Simulate(fed *federation.Federation, spec Spec, cm CostModel, backfill bool, constraint federation.JobConstraint) (*ScheduleResult, error) {
	jobs := spec.Jobs(cm)
	sched := federation.NewScheduler(fed, backfill)
	placements, err := sched.SubmitAll(jobs, constraint)
	if err != nil {
		return nil, err
	}
	res := &ScheduleResult{
		Placements:    placements,
		MakespanHours: grid.Makespan(placements),
		TotalCPUHours: grid.TotalCPUHours(placements),
		PerSite:       make(map[string]int),
	}
	for _, p := range placements {
		res.PerSite[p.Machine.Name]++
		if w := p.WaitTime(); w > res.MaxWaitHours {
			res.MaxWaitHours = w
		}
	}
	return res, nil
}

// SingleSite builds a one-site federation around the given machine —
// the baseline "no federated grid" scenario.
func SingleSite(name string, procs int) *federation.Federation {
	m := grid.NewMachine(name, procs)
	m.Site = name
	return &federation.Federation{Grids: []*federation.Grid{{
		Name:       name,
		Middleware: federation.GT2,
		Sites:      []*federation.Site{{Name: name, Machine: m, Lightpath: true}},
	}}}
}

// BackgroundLoad submits synthetic competing jobs to every machine in the
// federation before the campaign arrives, occupying loadFraction of each
// machine's capacity over the horizon. This models production queues:
// SPICE never had idle machines to itself.
func BackgroundLoad(fed *federation.Federation, loadFraction, horizonHours float64, seed uint64) error {
	if loadFraction <= 0 {
		return nil
	}
	if loadFraction >= 1 {
		return fmt.Errorf("campaign: background load fraction %g too high", loadFraction)
	}
	for si, site := range fed.Sites() {
		m := site.Machine
		q := grid.NewQueue(m, true)
		target := loadFraction * horizonHours * float64(m.Procs)
		booked := 0.0
		// Deterministic pseudo-load: alternating medium jobs spread
		// over the horizon.
		i := 0
		for booked < target {
			procs := m.Procs / 4
			if procs < 1 {
				procs = 1
			}
			hours := 6.0 + float64((si+i)%5)*2
			submit := float64(i%int(horizonHours/4+1)) * 4
			j := &grid.Job{
				ID:     "bg-" + m.Name + "-" + strconv.Itoa(i),
				Procs:  procs,
				Hours:  hours,
				Submit: submit,
			}
			if _, err := q.Submit(j); err != nil {
				return err
			}
			booked += j.CPUHours()
			i++
			if i > 10000 {
				break
			}
		}
	}
	return nil
}

// CompareScenarios runs the same campaign on each federation and returns
// results keyed by label, plus the labels sorted for stable iteration.
func CompareScenarios(feds map[string]*federation.Federation, spec Spec, cm CostModel, constraint federation.JobConstraint) (map[string]*ScheduleResult, []string, error) {
	out := make(map[string]*ScheduleResult, len(feds))
	labels := make([]string, 0, len(feds))
	for label := range feds {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		r, err := Simulate(feds[label], spec, cm, true, constraint)
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: scenario %q: %w", label, err)
		}
		out[label] = r
	}
	return out, labels, nil
}
