// Package campaign orchestrates the SMD-JE production phase: generating
// the parameter-sweep job set (the paper ran 72 parallel simulations of
// 128-256 processors each, ~75,000 CPU-hours, completed in under a week
// only because a federated grid was available), scheduling it on the
// federation model at paper scale, and actually executing the
// coarse-grained equivalent locally across a goroutine worker pool.
package campaign

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"spice/internal/grid"
	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/trace"
	"spice/internal/xrand"
)

// CostModel converts simulated physical time to machine time using the
// paper's in-text calibration.
type CostModel struct {
	// Atoms is the system size the calibration refers to.
	Atoms int
	// CPUHoursPerNs is the cost of 1 ns of dynamics: 24 h × 128 procs =
	// 3072 CPU-hours for the 300,000-atom hemolysin system (§I quotes
	// this rounded to "about 3000 CPU-hours").
	CPUHoursPerNs float64
}

// PaperCostModel is §I's back-of-the-envelope calibration.
func PaperCostModel() CostModel { return CostModel{Atoms: 300000, CPUHoursPerNs: 24 * 128} }

// HoursFor returns wall-clock hours to simulate ns nanoseconds on procs
// processors, assuming the near-linear NAMD scaling the paper relies on.
func (c CostModel) HoursFor(ns float64, procs int) float64 {
	if procs <= 0 {
		procs = 128
	}
	return c.CPUHoursPerNs * ns / float64(procs)
}

// VanillaCPUHours is the cost of the brute-force approach: simulating the
// full translocation timescale directly (§I: 10 µs → 3×10⁷ CPU-hours).
func (c CostModel) VanillaCPUHours(microseconds float64) float64 {
	return c.CPUHoursPerNs * microseconds * 1000
}

// Combo is one (κ, v) parameter combination in paper units.
type Combo struct {
	KappaPN float64 // pN/Å
	VAns    float64 // Å/ns
}

// String implements fmt.Stringer.
func (c Combo) String() string { return fmt.Sprintf("k%g-v%g", c.KappaPN, c.VAns) }

// Spec defines a production campaign.
type Spec struct {
	// Kappas and Velocities span the sweep (paper: κ ∈ {10,100,1000}
	// pN/Å, v ∈ {12.5,25,50,100} Å/ns).
	Kappas     []float64
	Velocities []float64
	// Replicas is the number of samples per combination at the SLOWEST
	// velocity; faster velocities get proportionally more samples at
	// equal cost (the paper's normalization). Set EqualSamples to use
	// Replicas everywhere instead.
	Replicas     int
	EqualSamples bool
	// Distance is the pull length in Å (paper: 10 Å sub-trajectory).
	Distance float64
	// ProcsPerJob is the per-simulation processor count (128 or 256).
	ProcsPerJob int
	// Seed feeds per-job RNG streams.
	Seed uint64
}

// PaperSpec reproduces the production campaign: the Fig. 4 sweep sized to
// 72 simulations total.
func PaperSpec() Spec {
	return Spec{
		Kappas:     []float64{10, 100, 1000},
		Velocities: []float64{12.5, 25, 50, 100},
		// 72 jobs total: replicas at the slowest velocity per κ combo.
		// Σ_v (r·v/12.5) per κ = r·(1+2+4+8) = 15r; 3 κ values → 45r...
		// The paper does not give the per-combo split; we size r so the
		// total is 72 with equal per-combo counts: 72/(3·4) = 6 each.
		Replicas:     6,
		EqualSamples: true,
		Distance:     10,
		ProcsPerJob:  128,
		Seed:         2005,
	}
}

// SamplesFor returns how many replicas combo gets under the spec's
// cost-normalization policy.
func (s Spec) SamplesFor(c Combo) int {
	if s.EqualSamples || len(s.Velocities) == 0 {
		return s.Replicas
	}
	vmin := s.Velocities[0]
	for _, v := range s.Velocities[1:] {
		if v < vmin {
			vmin = v
		}
	}
	n := int(float64(s.Replicas)*c.VAns/vmin + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// Combos enumerates the sweep in deterministic order.
func (s Spec) Combos() []Combo {
	var out []Combo
	for _, k := range s.Kappas {
		for _, v := range s.Velocities {
			out = append(out, Combo{KappaPN: k, VAns: v})
		}
	}
	return out
}

// Jobs expands the spec into grid jobs using the cost model: each pull of
// Distance Å at v Å/ns simulates Distance/v ns of physical time.
func (s Spec) Jobs(cm CostModel) []*grid.Job {
	total := 0
	for _, c := range s.Combos() {
		total += s.SamplesFor(c)
	}
	jobs := make([]*grid.Job, 0, total)
	for _, c := range s.Combos() {
		ns := s.Distance / c.VAns
		hours := cm.HoursFor(ns, s.ProcsPerJob)
		n := s.SamplesFor(c)
		kappa := strconv.FormatFloat(c.KappaPN, 'g', -1, 64)
		vel := strconv.FormatFloat(c.VAns, 'g', -1, 64)
		prefix := "smdje-k" + kappa + "-v" + vel + "-r"
		for r := 0; r < n; r++ {
			jobs = append(jobs, &grid.Job{
				ID:     prefix + strconv.Itoa(r),
				Procs:  s.ProcsPerJob,
				Hours:  hours,
				Submit: 0,
				Tags: map[string]string{
					"kappa":    kappa,
					"velocity": vel,
					"replica":  strconv.Itoa(r),
				},
			})
		}
	}
	return jobs
}

// BuildFunc constructs a fresh simulation for one pull. It receives the
// combo and a unique seed; it must return the engine plus the steered
// atom indices.
type BuildFunc func(c Combo, seed uint64) (*md.Engine, []int, error)

// Runner executes a campaign and returns its work logs grouped by combo,
// ordered by replica index within each combo. Implementations must be
// deterministic functions of the spec: LocalRunner runs in-process, the
// dist coordinator shards the same task set across worker processes and
// merges to bit-identical output.
type Runner interface {
	Run(spec Spec) (map[Combo][]*trace.WorkLog, error)
}

// Task is one schedulable pull: a combo, its replica index, and the seed
// derived from the spec. Exported so alternative Runners shard exactly
// the job set — same order, same seeds — that local execution uses.
type Task struct {
	Combo Combo
	Seed  uint64
	Index int
}

// Tasks enumerates the spec's pulls in deterministic order with their
// derived seeds: the single source of truth shared by LocalRunner and
// any distributed Runner, so results merge bit-identically regardless
// of where each pull actually ran.
func (s Spec) Tasks() []Task {
	root := xrand.New(s.Seed)
	var tasks []Task
	for _, c := range s.Combos() {
		n := s.SamplesFor(c)
		for r := 0; r < n; r++ {
			tasks = append(tasks, Task{Combo: c, Seed: root.Uint64(), Index: r})
		}
	}
	return tasks
}

// Collate assembles per-task logs (indexed parallel to tasks) into the
// Runner result shape. Because the task order is deterministic, the
// grouping is independent of which worker produced each log.
func Collate(tasks []Task, logs []*trace.WorkLog) map[Combo][]*trace.WorkLog {
	out := make(map[Combo][]*trace.WorkLog)
	for i, t := range tasks {
		out[t.Combo] = append(out[t.Combo], logs[i])
	}
	return out
}

// ExecutePull runs one pull end to end on a freshly built engine. This
// is the job execution path shared by LocalRunner and dist workers;
// opts threads through checkpoint/resume plumbing for the latter.
func ExecutePull(spec Spec, t Task, build BuildFunc, opts smd.RunOpts) (*trace.WorkLog, error) {
	eng, atoms, err := build(t.Combo, t.Seed)
	if err != nil {
		return nil, err
	}
	p := smd.PaperProtocol(t.Combo.KappaPN, t.Combo.VAns, atoms)
	p.Distance = spec.Distance
	pl, err := smd.Attach(eng, p)
	if err != nil {
		return nil, err
	}
	res, err := pl.RunWithOpts(eng, p, t.Seed, opts)
	if err != nil {
		return nil, err
	}
	return res.Log, nil
}

// LocalRunner executes the campaign's pulls for real on the CG
// translocation system, one goroutine worker per logical CPU — the
// laptop-scale stand-in for the federated grid's 72 concurrent
// supercomputer allocations.
type LocalRunner struct {
	// Build constructs a fresh simulation per pull.
	Build BuildFunc
	// Workers caps concurrency (default NumCPU).
	Workers int
	// Batch > 1 runs pulls through md.Batch ensembles of at most Batch
	// replicas instead of one goroutine per pull: replicas share the
	// static-substrate neighbor grid and a single step-worker pool (see
	// ExecuteEnsemble). Output is bit-identical either way.
	Batch int
}

var _ Runner = (*LocalRunner)(nil)

// Run executes all pulls of spec and returns the work logs grouped by
// combo. Deterministic: logs are ordered by replica index per combo.
func (lr *LocalRunner) Run(spec Spec) (map[Combo][]*trace.WorkLog, error) {
	if lr.Build == nil {
		return nil, fmt.Errorf("campaign: LocalRunner needs a Build function")
	}
	tasks := spec.Tasks()
	if lr.Batch > 1 {
		logs, err := lr.runBatched(spec, tasks)
		if err != nil {
			return nil, err
		}
		return Collate(tasks, logs), nil
	}
	workers := lr.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	logs := make([]*trace.WorkLog, len(tasks))
	errs := make([]error, len(tasks))
	taskCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range taskCh {
				logs[i], errs[i] = ExecutePull(spec, tasks[i], lr.Build, smd.RunOpts{})
			}
		}()
	}
	for i := range tasks {
		taskCh <- i
	}
	close(taskCh)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: pull %s replica %d: %w", tasks[i].Combo, tasks[i].Index, err)
		}
	}
	return Collate(tasks, logs), nil
}
