package campaign

import (
	"fmt"

	"spice/internal/federation"
	"spice/internal/grid"
	"spice/internal/xrand"
)

// FailureModel injects runtime job failures: each job independently fails
// with probability PFail at a uniform point of its runtime; the partial
// run is wasted and the job is resubmitted. With ExcludeFailedMachine the
// resubmission avoids the machine that killed it (the operators' standard
// response to a flaky node).
//
// This extends the T7 experiment from whole-site outages to the
// job-level "hardware failure ... causes serious disruption" mode of the
// paper's §V.C.4.
type FailureModel struct {
	PFail                float64
	ExcludeFailedMachine bool
	Seed                 uint64
}

// FailureResult extends ScheduleResult with the disruption accounting.
type FailureResult struct {
	ScheduleResult
	Failures       int
	WastedCPUHours float64
}

// SimulateWithFailures schedules the campaign like Simulate, then rolls
// failures: a failed job is resubmitted at its failure time (and its
// wasted partial allocation stays booked — the machine really did burn
// those cycles). Retries may fail again; the loop runs to completion.
func SimulateWithFailures(fed *federation.Federation, spec Spec, cm CostModel, fm FailureModel, constraint federation.JobConstraint) (*FailureResult, error) {
	if fm.PFail < 0 || fm.PFail >= 1 {
		return nil, fmt.Errorf("campaign: failure probability %g out of [0,1)", fm.PFail)
	}
	rng := xrand.New(fm.Seed)
	sched := federation.NewScheduler(fed, true)

	type attempt struct {
		job     *grid.Job
		exclude map[string]bool
	}
	queue := make([]attempt, 0, 128)
	for _, j := range spec.Jobs(cm) {
		queue = append(queue, attempt{job: j})
	}

	res := &FailureResult{}
	res.PerSite = make(map[string]int)
	guard := 0
	for len(queue) > 0 {
		if guard++; guard > 100000 {
			return nil, fmt.Errorf("campaign: failure loop did not terminate")
		}
		at := queue[0]
		queue = queue[1:]

		c := constraint
		p, site, err := submitExcluding(sched, fed, at.job, c, at.exclude)
		if err != nil {
			return nil, err
		}
		if fm.PFail > 0 && rng.Float64() < fm.PFail {
			// Fails at a uniform fraction of its runtime: the booked
			// window stays (wasted cycles), and a fresh attempt is
			// queued from the failure time.
			frac := rng.Float64()
			failAt := p.Start + frac*at.job.Hours
			res.Failures++
			res.WastedCPUHours += frac * at.job.CPUHours()
			retry := &grid.Job{
				ID:     at.job.ID + "+retry",
				Procs:  at.job.Procs,
				Hours:  at.job.Hours,
				Submit: failAt,
				Tags:   at.job.Tags,
			}
			excl := at.exclude
			if fm.ExcludeFailedMachine {
				if excl == nil {
					excl = make(map[string]bool)
				} else {
					// Copy so sibling attempts are unaffected.
					cp := make(map[string]bool, len(excl)+1)
					for k := range excl {
						cp[k] = true
					}
					excl = cp
				}
				excl[site.Name] = true
			}
			queue = append(queue, attempt{job: retry, exclude: excl})
			continue
		}
		res.Placements = append(res.Placements, p)
		res.PerSite[p.Machine.Name]++
		if w := p.WaitTime(); w > res.MaxWaitHours {
			res.MaxWaitHours = w
		}
	}
	res.MakespanHours = grid.Makespan(res.Placements)
	res.TotalCPUHours = grid.TotalCPUHours(res.Placements)
	return res, nil
}

// submitExcluding places a job on the best eligible site not in excl.
func submitExcluding(sched *federation.Scheduler, fed *federation.Federation, j *grid.Job, c federation.JobConstraint, excl map[string]bool) (grid.Placement, *federation.Site, error) {
	if len(excl) == 0 {
		return sched.Submit(j, c)
	}
	// Rebuild eligibility with the exclusion: the scheduler API takes a
	// constraint, so express the exclusion as a site filter by trying
	// the scheduler on a federation view without the excluded sites.
	var best *federation.Site
	bestEnd := 0.0
	for _, site := range fed.Sites() {
		if excl[site.Name] || !c.Eligible(site) {
			continue
		}
		start, err := site.Machine.EarliestStart(j.Submit, j.Hours, j.Procs)
		if err != nil {
			continue
		}
		if end := start + j.Hours; best == nil || end < bestEnd {
			best, bestEnd = site, end
		}
	}
	if best == nil {
		return grid.Placement{}, nil, fmt.Errorf("campaign: no eligible site for %s after exclusions", j.ID)
	}
	start, err := best.Machine.EarliestStart(j.Submit, j.Hours, j.Procs)
	if err != nil {
		return grid.Placement{}, nil, err
	}
	if err := best.Machine.Reserve(start, j.Hours, j.Procs); err != nil {
		return grid.Placement{}, nil, err
	}
	return grid.Placement{Job: j, Machine: best.Machine, Start: start}, best, nil
}
