package campaign

import (
	"testing"

	"spice/internal/md"
	"spice/internal/trace"
	"spice/internal/vec"
)

// walledBuild is smallBuild on the substrate-eligible system: explicit
// pore walls in a fully periodic box, so ensemble batches share one
// static neighbor grid across replicas.
func walledBuild(c Combo, seed uint64) (*md.Engine, []int, error) {
	spec := md.DefaultTranslocation(3)
	spec.Seed = seed
	spec.DT = 0.02
	spec.NoWalls = false
	spec.Workers = 1
	spec.Box = vec.V{X: 100, Y: 100, Z: 170}
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		return nil, nil, err
	}
	return ts.Engine, ts.DNA[:1], nil
}

func requireLogsEqual(t *testing.T, seq, bat map[Combo][]*trace.WorkLog) {
	t.Helper()
	if len(seq) != len(bat) {
		t.Fatalf("combo counts differ: %d vs %d", len(seq), len(bat))
	}
	for combo, sl := range seq {
		bl, ok := bat[combo]
		if !ok || len(bl) != len(sl) {
			t.Fatalf("combo %s: %d sequential logs, %d batched", combo, len(sl), len(bl))
		}
		for r := range sl {
			a, b := sl[r], bl[r]
			if a.Kappa != b.Kappa || a.Velocity != b.Velocity || a.Seed != b.Seed {
				t.Fatalf("combo %s replica %d: header mismatch", combo, r)
			}
			if len(a.Samples) != len(b.Samples) {
				t.Fatalf("combo %s replica %d: %d vs %d samples", combo, r, len(a.Samples), len(b.Samples))
			}
			for k := range a.Samples {
				if a.Samples[k] != b.Samples[k] {
					t.Fatalf("combo %s replica %d sample %d diverged: %+v vs %+v",
						combo, r, k, a.Samples[k], b.Samples[k])
				}
			}
		}
	}
}

// TestBatchedRunnerBitIdentical: the Batch>1 execution path must produce
// work logs bit-identical to the sequential per-task path — the campaign
// analog of the md-layer trajectory identity proof. Batch=3 over 9 tasks
// also exercises multi-chunk grouping.
func TestBatchedRunnerBitIdentical(t *testing.T) {
	spec := Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{400, 800},
		Replicas:   1,
		Distance:   3,
		Seed:       42,
	}
	seq, err := (&LocalRunner{Build: walledBuild, Workers: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{3, 64} {
		bat, err := (&LocalRunner{Build: walledBuild, Batch: batch}).Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		requireLogsEqual(t, seq, bat)
	}
}
