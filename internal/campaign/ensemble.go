package campaign

// Batched ensemble execution: instead of running each pull on its own
// engine sequentially, a group of pulls is adopted into one md.Batch that
// shares the static-substrate neighbor grid and a single worker pool, and
// every replica's per-step SMD bookkeeping (smd.Drive.AfterStep) runs
// behind the batch's step barrier. Each replica still executes the exact
// per-engine step sequence — same RNG streams, same summation order — so
// the work logs are bit-identical to the sequential ExecutePull path; the
// speedup comes from amortizing the static pore/membrane substrate and
// the scheduling, not from changing the dynamics.

import (
	"fmt"

	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/trace"
)

// ExecuteEnsemble runs a group of pulls through one md.Batch and returns
// their work logs indexed parallel to tasks. Every task's engine is built
// up front (the builds share one substrate grid when the system is
// substrate-eligible), all pulls step together, and replicas retire from
// the batch as their pull distance completes. workers <= 0 uses the
// batch default (GOMAXPROCS).
//
// The logs are bit-identical to running ExecutePull on each task in
// sequence: adoption into a batch changes where an engine's arrays live
// and who schedules its steps, never what a step computes.
func ExecuteEnsemble(spec Spec, tasks []Task, build BuildFunc, workers int) ([]*trace.WorkLog, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	engines := make([]*md.Engine, len(tasks))
	atoms := make([][]int, len(tasks))
	for i, t := range tasks {
		eng, a, err := build(t.Combo, t.Seed)
		if err != nil {
			return nil, fmt.Errorf("campaign: building pull %s replica %d: %w", t.Combo, t.Index, err)
		}
		engines[i], atoms[i] = eng, a
	}
	b, err := md.NewBatch(engines, md.BatchConfig{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("campaign: batching %d pulls: %w", len(tasks), err)
	}
	defer b.Close()

	drives := make([]*smd.Drive, len(tasks))
	for r, t := range tasks {
		p := smd.PaperProtocol(t.Combo.KappaPN, t.Combo.VAns, atoms[r])
		p.Distance = spec.Distance
		pl, err := smd.Attach(engines[r], p)
		if err != nil {
			return nil, err
		}
		drives[r], err = pl.StartDrive(engines[r], p, t.Seed, smd.RunOpts{})
		if err != nil {
			return nil, err
		}
	}

	// Per-replica pull bookkeeping runs on the batch's step workers, right
	// after each engine step. Each callback touches only replica-local
	// state (drive r, slot r), so no synchronization beyond the batch's
	// own step barrier is needed.
	stepErrs := make([]error, len(tasks))
	b.SetPostStep(func(r int) {
		stepErrs[r] = drives[r].AfterStep()
	})

	logs := make([]*trace.WorkLog, len(tasks))
	done := make([]bool, len(tasks))
	for {
		// Retire replicas whose pull completed (or errored) before the
		// next barrier: a retired replica takes no further steps, exactly
		// like the sequential loop exiting on its condition.
		remaining := 0
		for r := range drives {
			if done[r] {
				continue
			}
			if stepErrs[r] != nil {
				return nil, fmt.Errorf("campaign: pull %s replica %d: %w", tasks[r].Combo, tasks[r].Index, stepErrs[r])
			}
			if !drives[r].Active() {
				res, err := drives[r].Finish()
				if err != nil {
					return nil, err
				}
				logs[r] = res.Log
				done[r] = true
				b.SetActive(r, false)
				continue
			}
			remaining++
		}
		if remaining == 0 {
			return logs, nil
		}
		b.Step()
	}
}

// runBatched is LocalRunner.Run's execution strategy when Batch > 1:
// tasks are grouped into consecutive chunks of at most Batch pulls and
// each chunk runs as one ensemble. Chunks run one after another — the
// parallelism lives inside the batch's step workers.
func (lr *LocalRunner) runBatched(spec Spec, tasks []Task) ([]*trace.WorkLog, error) {
	logs := make([]*trace.WorkLog, 0, len(tasks))
	for lo := 0; lo < len(tasks); lo += lr.Batch {
		hi := lo + lr.Batch
		if hi > len(tasks) {
			hi = len(tasks)
		}
		chunk, err := ExecuteEnsemble(spec, tasks[lo:hi], lr.Build, lr.Workers)
		if err != nil {
			return nil, err
		}
		logs = append(logs, chunk...)
	}
	return logs, nil
}
