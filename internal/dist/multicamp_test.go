package dist

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/trace"
)

func testSpec2() campaign.Spec {
	return campaign.Spec{
		Kappas:     []float64{300},
		Velocities: []float64{800, 1600},
		Replicas:   2,
		Distance:   3,
		Seed:       77,
	}
}

// TestConcurrentCampaignsBitIdentical runs two tenants' campaigns at
// the same time over one worker fleet and requires each merged result
// to be bit-identical to its own single-process baseline — scheduling
// interleaves placement, never results.
func TestConcurrentCampaignsBitIdentical(t *testing.T) {
	specA, specB := testSpec(), testSpec2()
	wantA, wantB := localBaseline(t, specA), localBaseline(t, specB)

	co := newCoordinator(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 3, nil)

	var (
		wg         sync.WaitGroup
		gotA, gotB map[campaign.Combo][]*trace.WorkLog
		errA, errB error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotA, errA = co.RunTagged(specA, CampaignTag{Tenant: "alice"})
	}()
	go func() {
		defer wg.Done()
		gotB, errB = co.RunTagged(specB, CampaignTag{Tenant: "bob"})
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("RunTagged: alice=%v bob=%v", errA, errB)
	}
	requireBitIdentical(t, wantA, gotA)
	requireBitIdentical(t, wantB, gotB)
}

// TestSchedulerGatesCampaign wires a Scheduler that withholds every
// other campaign until the first has fully drained — the quota/backfill
// primitive — and requires no job of the held campaign to start early.
func TestSchedulerGatesCampaign(t *testing.T) {
	co := newCoordinator(t)
	co.Scheduler = SchedulerFunc(func(now time.Time, camps []CampaignView) []int {
		// Offer only the oldest unfinished campaign (strict FIFO drain).
		best := -1
		for i, v := range camps {
			if v.Done == v.Total {
				continue
			}
			if best == -1 || v.Seq < camps[best].Seq {
				best = i
			}
		}
		if best == -1 {
			return nil
		}
		return []int{best}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, nil)

	var (
		wg     sync.WaitGroup
		doneA  time.Time
		firstB time.Time
		mu     sync.Mutex
	)
	// Campaign A first; give it a head start so its seq is lower.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := co.RunTagged(testSpec(), CampaignTag{Tenant: "a"}); err != nil {
			t.Error(err)
		}
		mu.Lock()
		doneA = time.Now()
		mu.Unlock()
	}()
	time.Sleep(50 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := co.RunTagged(testSpec2(), CampaignTag{Tenant: "b"}); err != nil {
			t.Error(err)
		}
	}()
	// Poll B's view: it must stay fully pending until A completes.
	for {
		time.Sleep(10 * time.Millisecond)
		views := co.Campaigns()
		var a, b *CampaignView
		for i := range views {
			switch views[i].Tenant {
			case "a":
				a = &views[i]
			case "b":
				b = &views[i]
			}
		}
		if b != nil && (b.Leased > 0 || b.Done > 0) {
			mu.Lock()
			started := firstB
			if started.IsZero() {
				firstB = time.Now()
				started = firstB
			}
			mu.Unlock()
			if a != nil && a.Done != a.Total {
				t.Fatalf("gated campaign got work while the first still had %d jobs open",
					a.Total-a.Done)
			}
			_ = started
			break
		}
		if a == nil && b == nil {
			break // both finished between polls
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if !firstB.IsZero() && firstB.Before(doneA) {
		t.Fatalf("campaign b first work at %v, before a finished at %v", firstB, doneA)
	}
}

// TestCancelCampaign submits a campaign with no workers attached and
// cancels it; the blocked RunTagged call must return ErrCampaignCanceled.
func TestCancelCampaign(t *testing.T) {
	co := newCoordinator(t)
	spec := testSpec()
	key, err := SpecKey(spec, CampaignTag{Tenant: "t", Name: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := co.RunTagged(spec, CampaignTag{Tenant: "t", Name: "doomed"})
		errCh <- err
	}()
	// Wait for the campaign to appear, then cancel it by key.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(co.Campaigns()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never installed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !co.CancelCampaign(key) {
		t.Fatal("CancelCampaign found nothing to cancel")
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCampaignCanceled) {
			t.Fatalf("RunTagged returned %v, want ErrCampaignCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunTagged did not return after cancel")
	}
	if co.CancelCampaign(key) {
		t.Fatal("second cancel reported success")
	}
}

// TestRunTaggedDuplicateKeyRejected: the same (spec, tag) submission
// cannot be active twice — the key scopes job IDs and journal replay.
func TestRunTaggedDuplicateKeyRejected(t *testing.T) {
	co := newCoordinator(t)
	spec := testSpec()
	tag := CampaignTag{Tenant: "t"}
	go co.RunTagged(spec, tag) //nolint:errcheck // canceled via Close in cleanup
	deadline := time.Now().Add(5 * time.Second)
	for len(co.Campaigns()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never installed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := co.RunTagged(spec, tag); err == nil {
		t.Fatal("duplicate (spec, tag) accepted")
	}
	key, _ := SpecKey(spec, tag)
	co.CancelCampaign(key)
}

// TestSpecKeyStableAndTagScoped: the key is deterministic, tag-scoped,
// and the zero tag reproduces the legacy untagged key so old journals
// replay under new code.
func TestSpecKeyStableAndTagScoped(t *testing.T) {
	spec := testSpec()
	k1, err := SpecKey(spec, CampaignTag{})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := SpecKey(spec, CampaignTag{})
	if k1 != k2 {
		t.Fatalf("SpecKey not deterministic: %s vs %s", k1, k2)
	}
	specJSON, _ := json.Marshal(spec)
	if legacy := campaignKeyTagged(CampaignTag{}, specJSON); legacy != k1 {
		t.Fatalf("zero-tag key %s != legacy key %s", k1, legacy)
	}
	kt, _ := SpecKey(spec, CampaignTag{Tenant: "alice"})
	if kt == k1 {
		t.Fatal("tagged key identical to untagged key")
	}
	kn, _ := SpecKey(spec, CampaignTag{Tenant: "alice", Name: "second"})
	if kn == kt {
		t.Fatal("Name did not scope the key")
	}
}

// TestJournalInterleavedCampaignsReplay runs two tagged campaigns
// concurrently against one state dir, then replays the journal cold and
// requires both campaigns' records to be attributed to their own key.
func TestJournalInterleavedCampaignsReplay(t *testing.T) {
	dir := t.TempDir()
	co := newCoordinator(t)
	co.StateDir = dir
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, nil)

	specA, specB := testSpec(), testSpec2()
	tagA := CampaignTag{Tenant: "alice", Priority: 2}
	tagB := CampaignTag{Tenant: "bob"}
	var wg sync.WaitGroup
	wg.Add(2)
	var errA, errB error
	go func() { defer wg.Done(); _, errA = co.RunTagged(specA, tagA) }()
	go func() { defer wg.Done(); _, errB = co.RunTagged(specB, tagB) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v / %v", errA, errB)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep, err := openJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	keyA, _ := SpecKey(specA, tagA)
	keyB, _ := SpecKey(specB, tagB)
	ca, cb := rep.campaigns[keyA], rep.campaigns[keyB]
	if ca == nil || cb == nil {
		t.Fatalf("replay missing campaigns: a=%v b=%v (keys %v)", ca != nil, cb != nil, len(rep.campaigns))
	}
	if len(ca.done) != len(specA.Tasks()) {
		t.Fatalf("campaign a replay has %d done jobs, want %d", len(ca.done), len(specA.Tasks()))
	}
	if len(cb.done) != len(specB.Tasks()) {
		t.Fatalf("campaign b replay has %d done jobs, want %d", len(cb.done), len(specB.Tasks()))
	}
	for id := range ca.done {
		if len(id) < len(keyA) || id[:len(keyA)] != keyA {
			t.Fatalf("campaign a done job %q not scoped by its key %s", id, keyA)
		}
	}
}
