package dist_test

// The worker-storm chaos harness: a large in-process worker fleet
// (hundreds of goroutine workers over real loopback TCP) runs a
// campaign while a netsim blackhole severs every connection at once,
// then heals — the thundering-herd shape of a switch reboot or a
// coordinator failover. The overload layer must hold: no accepted job
// may be lost, the merged PMF must stay bit-identical to a local run,
// per-connection send queues must stay inside their bound, the
// reconnect herd must arrive jittered rather than in lockstep, and the
// coordinator must shed the whole episode without leaking goroutines.

import (
	"context"
	"encoding/json"
	"net"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/md"
	"spice/internal/netsim"
	"spice/internal/trace"
)

// stormWorkers is the fleet size. Hundreds of workers on one machine
// is deliberately oversubscribed: the point is the poll/reconnect herd
// at the coordinator, not MD throughput.
const stormWorkers = 500

func stormSpec() campaign.Spec {
	return campaign.Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{800},
		Replicas:   8,
		Distance:   3,
		Seed:       31,
	}
}

func TestChaosWorkerStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a 500-worker fleet")
	}
	sysJSON := json.RawMessage(`{"beads":3}`)
	spec := stormSpec()
	baselineRunner := &campaign.LocalRunner{
		Build: func(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
			return core.BuildFromJSON(sysJSON, c, seed)
		},
		Workers: 1,
	}
	want, err := baselineRunner.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	baselineGoroutines := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := &dist.Coordinator{
		Listener:    ln,
		System:      sysJSON,
		LeaseTTL:    2 * time.Second,
		MaxInflight: 64,
		SendQueue:   32,
	}
	addr := ln.Addr().String()

	// Every worker dials through one gate; successful dial times are
	// recorded so the post-heal herd's spread can be asserted.
	gate := netsim.NewGate()
	var dialMu sync.Mutex
	var dialTimes []time.Time
	gatedDial := gate.Dial(nil)
	recordingDial := func(a string) (net.Conn, error) {
		c, err := gatedDial(a)
		if err == nil {
			dialMu.Lock()
			dialTimes = append(dialTimes, time.Now())
			dialMu.Unlock()
		}
		return c, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < stormWorkers; i++ {
		w := &dist.Worker{
			Name:            workerName(i),
			Addr:            addr,
			Build:           core.BuildFromJSON,
			BeatInterval:    50 * time.Millisecond,
			CheckpointEvery: 1,
			Throttle:        5 * time.Millisecond,
			Reconnect:       true,
			ReconnectWindow: 60 * time.Second,
			Dial:            recordingDial,
		}
		go w.Run(ctx)
	}

	done := make(chan struct{})
	var got map[campaign.Combo][]*trace.WorkLog
	var runErr error
	go func() {
		defer close(done)
		got, runErr = co.Run(spec)
	}()

	// Let the campaign get properly under way, then sever everything:
	// every live connection dies, every re-dial is refused for the
	// window, and on heal the whole fleet arrives back at once.
	deadline := time.Now().Add(120 * time.Second)
	for co.Stats().Assignments < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("campaign never got under way: %+v", co.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	healAt := time.Now().Add(300 * time.Millisecond)
	gate.Blackhole(300 * time.Millisecond)

	select {
	case <-done:
	case <-time.After(180 * time.Second):
		t.Fatalf("campaign wedged after the storm: %+v", co.Stats())
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	// No accepted job lost, nothing recomputed into difference: the
	// merged PMF inputs are bit-identical to the single-process run.
	requireBitIdenticalLogs(t, want, got)

	st := co.Stats()
	if st.Disconnects == 0 {
		t.Fatal("blackhole severed no connections — the storm never happened")
	}
	if st.SendQueuePeak > 32 {
		t.Fatalf("send queue peak %d exceeded the configured bound 32", st.SendQueuePeak)
	}
	if st.InflightRequests < 0 {
		t.Fatalf("in-flight gauge went negative: %d", st.InflightRequests)
	}

	// The reconnect herd must not arrive in lockstep: the decorrelated
	// per-worker jitter has to spread the successful re-dials out. The
	// campaign often finishes before the whole herd is back (it only
	// needs a handful of leases), so give the stragglers — still
	// re-dialing against the live listener — a moment to land.
	var reconnects []time.Time
	deadline = time.Now().Add(30 * time.Second)
	for {
		dialMu.Lock()
		reconnects = reconnects[:0]
		for _, at := range dialTimes {
			if at.After(healAt) {
				reconnects = append(reconnects, at)
			}
		}
		dialMu.Unlock()
		if len(reconnects) >= stormWorkers/2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d post-heal reconnects recorded", len(reconnects))
		}
		time.Sleep(25 * time.Millisecond)
	}
	sort.Slice(reconnects, func(i, j int) bool { return reconnects[i].Before(reconnects[j]) })
	spread := reconnects[len(reconnects)-1].Sub(reconnects[0])
	if spread < 50*time.Millisecond {
		t.Fatalf("reconnect herd landed within %v — retries are synchronized", spread)
	}
	buckets := make(map[int64]bool)
	for _, at := range reconnects {
		buckets[at.UnixNano()/int64(10*time.Millisecond)] = true
	}
	if len(buckets) < 8 {
		t.Fatalf("reconnects clumped into %d 10ms buckets, want >= 8", len(buckets))
	}

	// Tear the fleet down; the coordinator must drain every connection
	// and writer goroutine — bounded memory means nothing lingers.
	cancel()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baselineGoroutines+50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after Close: baseline %d, now %d",
				baselineGoroutines, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func workerName(i int) string {
	const digits = "0123456789"
	return "storm-" + string([]byte{digits[i/100%10], digits[i/10%10], digits[i%10]})
}
