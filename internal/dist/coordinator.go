package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spice/internal/backoff"
	"spice/internal/campaign"
	"spice/internal/faultfs"
	"spice/internal/netutil"
	"spice/internal/obs"
	"spice/internal/trace"
	"spice/internal/wire"
)

// Coordinator shards campaigns across TCP workers. It implements
// campaign.Runner: each Run call shards one campaign.Spec into its
// deterministic task list, leases tasks to whichever workers are
// connected, and merges the work logs in task order — bit-identical to
// campaign.LocalRunner output because tasks, seeds and the per-pull
// dynamics are identical; only the placement differs.
//
// The server is long-lived: it starts lazily on the first Run and keeps
// serving between campaigns (workers idle on wait replies), so a
// pipeline like core.RunSweep can issue several campaigns over one
// worker fleet. Close tells workers to drain and shuts the server down.
//
// Beyond hard worker death (leases + heartbeats), the coordinator
// defends against the paper's §V degraded-but-alive pathologies:
// per-site circuit breakers quarantine sites that keep failing or
// blackholing (site.go), straggler detection hedges crawling jobs with
// a speculative second lease on another site — safe because pulls are
// bit-exact deterministic, so the losing attempt's bytes are identical
// and simply dropped — and every connection carries per-I/O deadlines
// so a half-open TCP peer can never wedge a reader forever.
type Coordinator struct {
	// Listener is where workers connect. Required.
	Listener net.Listener
	// System is an opaque payload forwarded to workers verbatim in the
	// hello reply — typically a JSON-encoded core.SystemConfig. dist
	// itself never interprets it, which keeps the package free of any
	// dependency on the model layers above md/smd/campaign.
	System json.RawMessage
	// LeaseTTL is how long a job survives without a heartbeat before it
	// is revoked and requeued (default 5s).
	LeaseTTL time.Duration
	// RetryBase and RetryMax bound the exponential backoff applied
	// before a revoked or failed job becomes runnable again
	// (defaults 50ms, 2s). The delay carries deterministic per-(job,
	// attempt) jitter so a mass lease-expiry event — every job revoked
	// at once when a coordinator restarts — does not retry in lockstep.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxAttempts caps lease grants per job before the campaign is
	// declared failed (default 8).
	MaxAttempts int
	// WrapConn, if set, wraps every accepted connection — the hook the
	// tests use to route traffic through netsim QoS shims.
	WrapConn func(net.Conn) net.Conn
	// StateDir, if set, makes campaigns crash-safe: job-state transitions
	// are journaled (and completed results fsynced) under this directory,
	// checkpoints are spooled to disk, and a coordinator started over the
	// same directory replays the journal — completed jobs keep their
	// results, in-flight jobs resume from their spooled checkpoints, and
	// the merged output stays bit-identical to an uninterrupted run.
	// Empty means in-memory only (the pre-journal behavior).
	StateDir string
	// CompactBytes triggers journal compaction (fold snapshot + log into
	// a fresh snapshot, truncate the log) once journal.log grows past
	// this size, keeping replay time and disk footprint bounded on
	// long-lived coordinators. 0 defaults to 8 MiB; negative disables.
	CompactBytes int64
	// StorageRetries is how many times a failed journal append is
	// retried (with short capped backoff) before the coordinator enters
	// the degraded storage state. 0 defaults to 2; negative means no
	// retries — degrade on the first failure.
	StorageRetries int
	// FS, if set, routes every journal and spool operation through an
	// injectable filesystem — the disk-fault chaos hook
	// (faultfs.Injector). Nil uses the real OS filesystem.
	FS faultfs.FS

	// BreakerThreshold is the consecutive-failure strike count (explicit
	// fails, lease expiries, disconnects with an active lease, lost
	// speculations with streamed progress) that opens a site's circuit
	// breaker. 0 defaults to 3; negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker quarantines its site
	// before admitting a single half-open probe job (default 2×LeaseTTL).
	BreakerCooldown time.Duration
	// HedgeFraction enables rate-based straggler detection: a job whose
	// checkpoint-derived steps/sec falls below this fraction of the
	// fleet-median site rate gets a speculative second lease on a
	// different site — first finished attempt wins, the loser is dropped
	// through the (job, attempt) idempotency. 0 (the zero value)
	// disables rate hedging; 0.3 is a sensible production setting.
	HedgeFraction float64
	// HedgeStall enables stall-based straggler detection: a lease whose
	// step counter has not advanced for this long (while still
	// heartbeating — alive but stuck, e.g. behind a congested link) is
	// hedged the same way. 0 disables stall hedging.
	HedgeStall time.Duration
	// HedgeAfter is the minimum lease age before either hedge trigger
	// may fire, so short jobs never get duplicated (default LeaseTTL/2).
	HedgeAfter time.Duration
	// IOTimeout arms a fresh read/write deadline before every I/O call
	// on every worker connection (netutil.WithDeadlines): a peer that
	// stops making byte progress for this long is treated as dead
	// instead of wedging its reader. 0 defaults to 30s; negative
	// disables the deadlines.
	IOTimeout time.Duration
	// MaxInflight caps how many worker requests may be in processing at
	// once across all connections. Excess msgNext polls are shed with an
	// immediate jittered msgWait that never touches the scheduler lock;
	// results, fails and heartbeats are never shed (they shrink the
	// backlog). Heartbeat coalescing arms once load passes half the cap.
	// 0 defaults to 256; negative disables shedding and coalescing.
	MaxInflight int
	// SendQueue bounds each connection's outgoing-response queue, drained
	// by a per-connection writer goroutine. A peer that lets the queue
	// fill — a slow consumer pipelining requests without reading replies
	// — is evicted: the connection is closed but its leases survive, so
	// the worker's reconnect re-attaches mid-flight pulls instead of
	// redoing them. 0 defaults to 32; negative disables the queue
	// (synchronous writes, no eviction).
	SendQueue int
	// WireVersion is the newest wire protocol version this coordinator
	// grants on hello: each connection negotiates min(coordinator,
	// worker's offer), so mixed fleets interoperate and a hello offering
	// an unknown (future) version downgrades to 0 with a logged event.
	// Direct struct construction keeps the legacy default of 0 (JSON
	// lines only); Config.Defaults() enables the newest version.
	WireVersion int
	// Compression grants lz block compression on bulk payloads over v1+
	// connections.
	Compression bool
	// DeltaCheckpoints grants delta-encoded progress checkpoints over
	// v1+ connections. Deltas are folded back into complete images
	// before any spool or farthest-wins decision, so journal replay and
	// hedged re-execution always see full resume images.
	DeltaCheckpoints bool
	// Events, if set, receives the structured scheduling event stream:
	// every lease grant/expiry/adoption, breaker transition, speculation
	// settlement and journal replay, carrying the same (job, attempt)
	// keys as the journal so an event trace can be cross-checked against
	// the final Stats. Nil disables (the EventLog type is nil-safe).
	Events *obs.EventLog
	// Scheduler orders the active campaigns each time a worker asks for
	// work (multi-tenant priority/fair-share/quota policies). Nil offers
	// campaigns in install order.
	Scheduler Scheduler

	mu       sync.Mutex
	journal  *journal
	replay   *journalReplay
	doneJobs map[string]bool // every job this process has accepted (or replayed) a result for
	sites    map[string]*siteHealth

	// Degraded storage state: set when a journal append (or spool write)
	// fails past its retries, cleared when a later durable write — an
	// append or the janitor's probe record — succeeds. While degraded,
	// scheduling continues in memory (leases drain, results that fsync
	// are still accepted) but non-critical records are not journaled and
	// results that cannot fsync are answered with msgRetry instead of an
	// ack, so nothing is ever acknowledged without its durability.
	degraded       bool
	degradedSince  time.Time
	lastStorageErr string
	lastProbe      time.Time

	camps       []*campaignRun  // active campaigns, install order
	jobsByID    map[string]*job // every active campaign's jobs, by scoped ID
	campSeq     int
	closed      bool
	started     bool
	stats       Stats
	jobStats    map[string]*JobStats
	bytes       counter
	cancelServe context.CancelFunc
	serveDone   chan error
	closeOnce   sync.Once
	closeErr    error

	// Overload-protection state, kept in atomics so the shed path and
	// the wait-hint scaling never contend on mu — that contention is the
	// very overload they exist to relieve.
	conns     atomic.Int64 // live worker connections
	inflight  atomic.Int64 // requests decoded and not yet answered
	shed      atomic.Int64 // msgNext polls answered without the scheduler
	evictions atomic.Int64 // slow-consumer connections killed
	coalesced atomic.Int64 // heartbeats answered from connection-local state
	queuePeak atomic.Int64 // high-water mark of any send queue

	// Wire-protocol accounting, atomic because negotiation happens on
	// the accept path before any lock and the bench polls them hot.
	wireV0         atomic.Int64 // connections negotiated to JSON-lines
	wireV1         atomic.Int64 // connections negotiated to binary framing
	wireDowngrades atomic.Int64 // hellos offering an unknown (future) version
	polls          atomic.Int64 // msgNext requests received
}

// campaignRun is the job table of one active campaign.
type campaignRun struct {
	key       string // stable identity: campaignKeyTagged(tag, specJSON)
	tag       CampaignTag
	seq       int       // install order this process
	submitted time.Time // install time this process
	spec      campaign.Spec
	specJSON  json.RawMessage
	tasks     []campaign.Task
	jobs      []*job
	remaining int
	journaled bool // the jCampaign record reached the journal
	failErr   error
	canceled  bool
	done      chan struct{}
	doneOnce  sync.Once
}

func (cr *campaignRun) finish(err error) {
	if err != nil && cr.failErr == nil {
		cr.failErr = err
	}
	cr.doneOnce.Do(func() { close(cr.done) })
}

type jobState int

const (
	statePending jobState = iota
	stateLeased
	stateDone
)

// lease is one live grant of a job to a worker connection. A job
// normally has one; a straggling job may briefly carry two — the
// original and a speculative hedge on a different site.
type lease struct {
	owner       *connState
	worker      string
	site        string
	attempt     int
	speculative bool
	granted     time.Time
	lastBeat    time.Time

	// checkpoint-derived progress, for straggler detection
	steps    int       // latest step count streamed by this lease
	stepsAt  time.Time // when steps last advanced (granted until then)
	rate     float64   // EWMA steps/sec
	haveRate bool

	// base is the last complete checkpoint image resolved from this
	// lease — the document its next delta is encoded against. Per-lease,
	// never per-job: a hedged job has two leases streaming independent
	// checkpoint lineages, and folding one worker's delta against the
	// other's base would corrupt silently if the CRC check ever missed.
	base []byte
}

// job is one schedulable pull and its scheduling history.
type job struct {
	id        string
	camp      *campaignRun
	task      campaign.Task
	state     jobState
	leases    []*lease
	notBefore time.Time
	attempts  int // lease grants so far
	straggler bool
	ckpt      json.RawMessage // latest (farthest) checkpoint streamed back
	ckptSteps int             // step count inside ckpt, for farthest-wins
	log       *trace.WorkLog
}

// leaseOf returns the job's lease held by cs, if any.
func (j *job) leaseOf(cs *connState) *lease {
	for _, l := range j.leases {
		if l.owner == cs {
			return l
		}
	}
	return nil
}

// connState tracks one worker connection.
type connState struct {
	name string
	site string
	// Negotiated transport state, written once at hello (before any
	// other request is processed) and read by the grant/heartbeat paths.
	wire  int
	delta bool
	comp  bool
	// evicted marks a slow-consumer eviction: the connection dies but
	// its leases survive for the worker's reconnect to re-attach.
	evicted atomic.Bool
	// waits counts msgWait replies sent to this connection — the jitter
	// key that de-synchronizes an idle fleet. Only the connection's own
	// reader goroutine touches it.
	waits int
}

func (co *Coordinator) leaseTTL() time.Duration {
	if co.LeaseTTL > 0 {
		return co.LeaseTTL
	}
	return 5 * time.Second
}

func (co *Coordinator) retryBase() time.Duration {
	if co.RetryBase > 0 {
		return co.RetryBase
	}
	return 50 * time.Millisecond
}

func (co *Coordinator) retryMax() time.Duration {
	if co.RetryMax > 0 {
		return co.RetryMax
	}
	return 2 * time.Second
}

func (co *Coordinator) maxAttempts() int {
	if co.MaxAttempts > 0 {
		return co.MaxAttempts
	}
	return 8
}

// wireVersion clamps the granted-version ceiling into the known range.
func (co *Coordinator) wireVersion() int {
	if co.WireVersion <= 0 {
		return wire.V0
	}
	if co.WireVersion > wire.MaxVersion {
		return wire.MaxVersion
	}
	return co.WireVersion
}

func (co *Coordinator) breakerThreshold() int {
	switch {
	case co.BreakerThreshold > 0:
		return co.BreakerThreshold
	case co.BreakerThreshold < 0:
		return 0 // disabled: strikes never trip
	default:
		return 3
	}
}

func (co *Coordinator) breakerCooldown() time.Duration {
	if co.BreakerCooldown > 0 {
		return co.BreakerCooldown
	}
	return 2 * co.leaseTTL()
}

func (co *Coordinator) hedgingEnabled() bool {
	return co.HedgeFraction > 0 || co.HedgeStall > 0
}

func (co *Coordinator) hedgeAfter() time.Duration {
	if co.HedgeAfter > 0 {
		return co.HedgeAfter
	}
	return co.leaseTTL() / 2
}

func (co *Coordinator) ioTimeout() time.Duration {
	switch {
	case co.IOTimeout > 0:
		return co.IOTimeout
	case co.IOTimeout < 0:
		return 0
	default:
		return 30 * time.Second
	}
}

func (co *Coordinator) compactBytes() int64 {
	switch {
	case co.CompactBytes > 0:
		return co.CompactBytes
	case co.CompactBytes < 0:
		return 0 // disabled
	default:
		return 8 << 20
	}
}

func (co *Coordinator) storageRetries() int {
	switch {
	case co.StorageRetries > 0:
		return co.StorageRetries
	case co.StorageRetries < 0:
		return 0 // degrade on the first failure
	default:
		return 2
	}
}

func (co *Coordinator) maxInflight() int {
	switch {
	case co.MaxInflight > 0:
		return co.MaxInflight
	case co.MaxInflight < 0:
		return 0 // disabled: never shed, never coalesce
	default:
		return 256
	}
}

func (co *Coordinator) sendQueueLen() int {
	switch {
	case co.SendQueue > 0:
		return co.SendQueue
	case co.SendQueue < 0:
		return 0 // disabled: synchronous writes, no eviction
	default:
		return 32
	}
}

// coalesceWindow is how stale a connection-local heartbeat answer may
// be under load. Kept well under the lease TTL so coalescing can never
// age a lease into expiry, and under the TTL/4 janitor period so a
// coalesced lease still refreshes between janitor scans.
func (co *Coordinator) coalesceWindow() time.Duration {
	return co.leaseTTL() / 8
}

// backoff returns the delay before the next lease of jobID after
// `attempts` grants. The exponential base delay carries deterministic
// jitter in [d/2, d) keyed by (job, attempt): a mass revocation event
// (coordinator restart, site quarantine) spreads its retries across
// half an interval instead of hammering the queue in lockstep, and the
// same schedule replays identically across runs — no shared RNG state,
// no scheduling nondeterminism.
func (co *Coordinator) backoff(jobID string, attempts int) time.Duration {
	return backoff.Policy{Base: co.retryBase(), Max: co.retryMax()}.Keyed(jobID, attempts)
}

// idlePollBudget is the aggregate msgNext polls/sec an idle fleet is
// allowed to cost the coordinator: the wait hint scales with the number
// of connected workers so 500 idle workers back off to multi-second
// polls instead of each polling every LeaseTTL/2 in lockstep.
const idlePollBudget = 200

// waitHint builds a msgWait reply around a base delay: the delay is
// floored by the fleet-size poll budget when the fleet is purely idle
// (scale true), capped at the lease TTL, and carries deterministic
// per-(worker, poll) jitter in [0.5, 1) so a fleet that went idle at
// the same instant de-synchronizes within one wait cycle. Lock-free —
// both the scheduler path and the shed path use it.
func (co *Coordinator) waitHint(cs *connState, base time.Duration, scale bool) response {
	delay := base
	if scale {
		if min := time.Duration(co.conns.Load()) * time.Second / idlePollBudget; min > delay {
			delay = min
		}
	}
	if ttl := co.leaseTTL(); delay > ttl {
		delay = ttl
	}
	cs.waits++
	delay = time.Duration(float64(delay) * backoff.Frac(fmt.Sprintf("%s#%d", cs.name, cs.waits)))
	ms := int(delay / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return response{Type: msgWait, DelayMs: ms}
}

// shedNext answers a msgNext without ever touching the scheduler lock:
// the coordinator is over its in-flight request cap and this poll is
// load it can refuse. The hint scales with fleet size so the herd that
// caused the overload spreads out instead of retrying in lockstep.
func (co *Coordinator) shedNext(cs *connState) response {
	co.shed.Add(1)
	return co.waitHint(cs, co.leaseTTL()/4, true)
}

// startLocked spins up the accept loop and the lease janitor. Caller
// holds mu.
func (co *Coordinator) startLocked() {
	ctx, cancel := context.WithCancel(context.Background())
	co.cancelServe = cancel
	co.serveDone = make(chan error, 1)
	co.jobStats = make(map[string]*JobStats)
	co.started = true
	go co.janitor(ctx)
	go func() {
		err := netutil.Serve(ctx, co.Listener, co.serveConn)
		// The server is gone; whatever campaigns are in flight cannot
		// finish. A clean Close shows up as ErrServerClosed.
		co.mu.Lock()
		co.closed = true
		for _, camp := range co.camps {
			camp.finish(fmt.Errorf("dist: serve: %w", err))
		}
		co.mu.Unlock()
		co.serveDone <- err
	}()
}

// Run implements campaign.Runner. It installs spec as an active
// campaign under the zero tag, waits for every task to complete, and
// returns the merged logs. The server keeps running for the next Run.
func (co *Coordinator) Run(spec campaign.Spec) (map[campaign.Combo][]*trace.WorkLog, error) {
	return co.RunTagged(spec, CampaignTag{})
}

// RunTagged installs spec as an active campaign carrying tag — the
// tenant/priority identity the Scheduler and the control plane's quota
// policy read — and blocks until it completes. Any number of campaigns
// may be active concurrently over one worker fleet; each Run/RunTagged
// call owns one of them. Job IDs are scoped by the campaign key, so
// concurrent campaigns (even over overlapping parameter combos) never
// collide in the journal, the checkpoint spool, or the idempotency
// tables. The merged output of each campaign is byte-identical to a
// solo run of the same spec: scheduling decides placement and order,
// never results.
func (co *Coordinator) RunTagged(spec campaign.Spec, tag CampaignTag) (map[campaign.Combo][]*trace.WorkLog, error) {
	if co.Listener == nil {
		return nil, errors.New("dist: coordinator needs a listener")
	}
	tasks := spec.Tasks()
	if len(tasks) == 0 {
		return map[campaign.Combo][]*trace.WorkLog{}, nil
	}
	// The (tag, spec JSON) pair keys journal replay, so a restarted
	// coordinator re-running the same submissions (possibly in a
	// different order) matches each Run to its recovered state.
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding spec: %w", err)
	}
	key := campaignKeyTagged(tag, specJSON)

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil, errors.New("dist: coordinator is closed")
	}
	for _, c := range co.camps {
		if c.key == key {
			co.mu.Unlock()
			return nil, fmt.Errorf("dist: campaign %s is already running", key)
		}
	}
	if co.doneJobs == nil {
		co.doneJobs = make(map[string]bool)
	}
	if co.jobsByID == nil {
		co.jobsByID = make(map[string]*job)
	}
	if co.StateDir != "" && co.journal == nil {
		jn, rep, err := openJournal(co.FS, co.StateDir)
		if err != nil {
			co.mu.Unlock()
			return nil, err
		}
		jn.compactBytes = co.compactBytes()
		jn.retries = co.storageRetries()
		co.journal = jn
		co.replay = rep
		// Seed the completed-jobs set from the whole journal so a result
		// retransmitted for a job finished before the crash is recognized
		// as a duplicate even if its campaign has not been re-Run yet.
		for _, c := range rep.campaigns {
			for id := range c.done {
				co.doneJobs[id] = true
			}
		}
		co.stats.ReplayedRecords += rep.records
		co.stats.TruncatedTailBytes += rep.tornBytes
		if rep.tornErr != nil {
			co.stats.TornTail = TailTorn
			if errors.Is(rep.tornErr, trace.ErrFormat) {
				co.stats.TornTail = TailCorrupt
			}
			co.stats.TornTailMsg = rep.tornErr.Error()
		}
		if rep.records > 0 {
			co.stats.Restarts++
			co.Events.Emit(obs.Event{Name: "journal_replayed", Fields: map[string]any{
				"records":    rep.records,
				"torn_bytes": rep.tornBytes,
				"tail":       co.stats.TornTail.String(),
			}})
		}
	}
	if !co.started {
		co.startLocked()
	}
	camp := &campaignRun{
		key:       key,
		tag:       tag,
		seq:       co.campSeq,
		submitted: time.Now(),
		spec:      spec,
		specJSON:  specJSON,
		tasks:     tasks,
		jobs:      make([]*job, len(tasks)),
		remaining: len(tasks),
		done:      make(chan struct{}),
	}
	co.campSeq++
	var rc *replayCampaign
	if co.journal != nil {
		if c := co.replay.campaigns[key]; c != nil && !c.applied {
			rc = c
			// Replayed state is consumed once; if the same submission runs
			// again in this process it starts fresh (and journals fresh
			// records).
			c.applied = true
		}
	}
	for i, t := range tasks {
		// The campaign key scopes the job ID: concurrent campaigns over
		// overlapping combos stay distinct in every per-job table, the
		// journal, and the spool filenames.
		j := &job{id: fmt.Sprintf("%s.smdje-%s-r%d", key, t.Combo, t.Index), camp: camp, task: t}
		camp.jobs[i] = j
		co.jobsByID[j.id] = j
		if co.jobStats[j.id] == nil {
			co.jobStats[j.id] = &JobStats{ID: j.id}
		}
		if rc == nil {
			continue
		}
		js := co.jobStats[j.id]
		// Per-job lease history from before the restart; the live global
		// counters are deliberately not inflated (see Stats doc).
		if hist := rc.workers[j.id]; len(hist) > 0 {
			js.Assignments += len(hist)
			js.Retries += len(hist) - 1
			js.Workers = append(js.Workers, hist...)
		}
		if wl, ok := rc.done[j.id]; ok {
			j.state = stateDone
			j.log = wl
			camp.remaining--
			co.journal.removeSpool(j.id)
			continue
		}
		if a := rc.attempts[j.id]; a > j.attempts {
			j.attempts = a
		}
		if ck := co.journal.loadSpool(j.id); ck != nil {
			j.ckpt = ck
			j.ckptSteps = ckptSteps(ck)
		}
	}
	co.camps = append(co.camps, camp)
	co.stats.Jobs += len(tasks)
	co.Events.Emit(obs.Event{Name: "campaign_start", Campaign: key, Fields: map[string]any{
		"jobs": len(tasks), "recovered_done": len(tasks) - camp.remaining,
		"tenant": tag.Tenant, "priority": tag.Priority,
	}})
	// A failed campaign record no longer kills the campaign: the
	// coordinator degrades to in-memory scheduling and journalLocked
	// re-journals the campaign record before the first durable (fsynced)
	// record that needs it, so the journal never holds orphan records.
	co.journalLocked(camp, &jrec{T: jCampaign, Camp: key, Spec: specJSON, Tag: &tag}, true)
	if camp.remaining == 0 && camp.failErr == nil {
		// Every job was recovered done — nothing left to schedule.
		camp.finish(nil)
	}
	co.mu.Unlock()

	<-camp.done

	co.mu.Lock()
	co.removeCampLocked(camp)
	err = camp.failErr
	in, out := co.bytes.snapshot()
	co.stats.BytesIn, co.stats.BytesOut = in, out
	done := obs.Event{Name: "campaign_done", Campaign: key}
	if err != nil {
		done.Fields = map[string]any{"error": err.Error()}
	}
	co.Events.Emit(done)
	co.mu.Unlock()
	if err != nil {
		return nil, err
	}
	logs := make([]*trace.WorkLog, len(camp.jobs))
	for i, j := range camp.jobs {
		logs[i] = j.log
	}
	return campaign.Collate(tasks, logs), nil
}

// removeCampLocked retires a finished campaign: out of the active set
// and its jobs out of the dispatch table. Caller holds mu.
func (co *Coordinator) removeCampLocked(camp *campaignRun) {
	keep := co.camps[:0]
	for _, c := range co.camps {
		if c != camp {
			keep = append(keep, c)
		}
	}
	co.camps = keep
	for _, j := range camp.jobs {
		if co.jobsByID[j.id] == j {
			delete(co.jobsByID, j.id)
		}
	}
}

// ErrCampaignCanceled is the failure error of a campaign killed by
// CancelCampaign; the blocked Run/RunTagged call returns it.
var ErrCampaignCanceled = errors.New("dist: campaign canceled")

// CancelCampaign aborts the active campaign with the given key (see
// SpecKey). The owning Run/RunTagged call returns ErrCampaignCanceled;
// in-flight leases are abandoned on their next heartbeat. It reports
// whether a campaign was actually canceled.
func (co *Coordinator) CancelCampaign(key string) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, c := range co.camps {
		if c.key == key && c.failErr == nil {
			c.canceled = true
			c.finish(ErrCampaignCanceled)
			co.Events.Emit(obs.Event{Name: "campaign_canceled", Campaign: key})
			return true
		}
	}
	return false
}

// Campaigns returns the scheduling view of every active campaign, in
// install order — the same views the Scheduler is offered.
func (co *Coordinator) Campaigns() []CampaignView {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.campaignViewsLocked()
}

func (co *Coordinator) campaignViewsLocked() []CampaignView {
	views := make([]CampaignView, len(co.camps))
	for i, c := range co.camps {
		v := CampaignView{
			Key:       c.key,
			Tenant:    c.tag.Tenant,
			Priority:  c.tag.Priority,
			Seq:       c.seq,
			Submitted: c.submitted,
			Total:     len(c.jobs),
		}
		for _, j := range c.jobs {
			switch j.state {
			case statePending:
				v.Pending++
			case stateLeased:
				v.Leased++
			case stateDone:
				v.Done++
			}
		}
		views[i] = v
	}
	return views
}

// offerOrderLocked resolves the Scheduler's decision into the list of
// campaigns to scan for work, in offer order. Campaigns the policy
// omits (quota-blocked tenants, held-back backfill candidates) are not
// scanned this round. Caller holds mu.
func (co *Coordinator) offerOrderLocked(now time.Time) []*campaignRun {
	if co.Scheduler == nil {
		return co.camps
	}
	views := co.campaignViewsLocked()
	order := co.Scheduler.Offer(now, views)
	out := make([]*campaignRun, 0, len(order))
	seen := make(map[int]bool, len(order))
	for _, i := range order {
		if i < 0 || i >= len(co.camps) || seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, co.camps[i])
	}
	return out
}

// Close drains connected workers (their next request is answered with
// drained), then shuts the server down and waits for it. Safe to call
// more than once.
func (co *Coordinator) Close() error {
	co.closeOnce.Do(func() { co.closeErr = co.doClose() })
	return co.closeErr
}

func (co *Coordinator) doClose() error {
	co.mu.Lock()
	if !co.started {
		co.closed = true
		jn := co.journal
		co.journal = nil
		co.mu.Unlock()
		return jn.close()
	}
	co.closed = true
	co.mu.Unlock()
	// Grace period: let connected workers observe drained and hang up
	// on their own before the listener shutdown cuts them off.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if co.conns.Load() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	co.cancelServe()
	err := <-co.serveDone
	co.mu.Lock()
	jn := co.journal
	co.journal = nil
	co.mu.Unlock()
	if jerr := jn.close(); jerr != nil && err == nil {
		err = jerr
	}
	if errors.Is(err, netutil.ErrServerClosed) {
		return nil
	}
	return err
}

// janitor periodically revokes leases that missed their heartbeat TTL
// and scans for straggling leases to hedge. The period tracks the
// finer of the lease TTL and the hedge windows so both state machines
// advance promptly.
func (co *Coordinator) janitor(ctx context.Context) {
	period := co.leaseTTL() / 4
	if co.hedgingEnabled() {
		if p := co.hedgeAfter() / 2; p < period {
			period = p
		}
		if s := co.HedgeStall; s > 0 && s/4 < period {
			period = s / 4
		}
	}
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			co.mu.Lock()
			for _, camp := range co.camps {
				if camp.failErr != nil {
					continue
				}
				for _, j := range camp.jobs {
					if j.state != stateLeased {
						continue
					}
					keep := j.leases[:0]
					for _, l := range j.leases {
						if now.Sub(l.lastBeat) > co.leaseTTL() {
							co.stats.LeaseExpiries++
							co.jobStats[j.id].LeaseExpiries++
							co.Events.Emit(obs.Event{Name: "lease_expired", Job: j.id,
								Attempt: l.attempt, Site: l.site, Worker: l.worker})
							co.siteStrikeLocked(l.site, j.id, now, func(sh *siteHealth) { sh.leaseExpiries++ })
							continue
						}
						keep = append(keep, l)
					}
					j.leases = keep
					if len(j.leases) == 0 {
						co.requeueLocked(camp, j)
					}
				}
				co.stragglerScanLocked(camp, now)
			}
			co.storageProbeLocked(now)
			co.mu.Unlock()
		}
	}
}

// storageProbeLocked checks whether a degraded disk has come back by
// appending (and fsyncing) a no-op record. Success flips the
// coordinator back to healthy; failure leaves it degraded until the
// next probe window. Caller holds mu.
func (co *Coordinator) storageProbeLocked(now time.Time) {
	if !co.degraded || co.journal == nil {
		return
	}
	if now.Sub(co.lastProbe) < co.leaseTTL()/2 {
		return
	}
	co.lastProbe = now
	if err := co.journal.probe(); err != nil {
		co.lastStorageErr = err.Error()
		return
	}
	co.storageRecoveredLocked()
}

// siteStrikeLocked records one failure signal against a site, updating
// a per-category counter and the breaker. Caller holds mu.
func (co *Coordinator) siteStrikeLocked(site, jobID string, now time.Time, count func(*siteHealth)) {
	sh := co.siteLocked(site)
	if count != nil {
		count(sh)
	}
	sh.clearProbe(jobID)
	if sh.strike(now, co.breakerThreshold()) {
		co.stats.BreakerTrips++
		co.Events.Emit(obs.Event{Name: "breaker_open", Job: jobID, Site: site,
			Fields: map[string]any{"strikes": sh.strikes}})
	}
}

// stragglerScanLocked flags single-leased jobs whose checkpoint-derived
// progress crawls — either in absolute terms (steps stalled for
// HedgeStall while the lease still heartbeats) or relative to the fleet
// (rate below HedgeFraction of the median site rate). Flagged jobs
// become hedge candidates: assign grants them a speculative second
// lease on a different site. Caller holds mu.
func (co *Coordinator) stragglerScanLocked(camp *campaignRun, now time.Time) {
	if !co.hedgingEnabled() {
		return
	}
	median, haveMedian := co.fleetMedianRate()
	for _, j := range camp.jobs {
		if j.state != stateLeased || j.straggler || len(j.leases) != 1 {
			continue
		}
		l := j.leases[0]
		if now.Sub(l.granted) < co.hedgeAfter() {
			continue
		}
		slow := co.HedgeFraction > 0 && haveMedian && l.haveRate && l.rate < co.HedgeFraction*median
		stalled := co.HedgeStall > 0 && now.Sub(l.stepsAt) > co.HedgeStall
		if slow || stalled {
			j.straggler = true
			co.stats.StragglersDetected++
			co.Events.Emit(obs.Event{Name: "straggler_flagged", Job: j.id,
				Attempt: l.attempt, Site: l.site, Worker: l.worker,
				Fields: map[string]any{"slow": slow, "stalled": stalled, "rate": l.rate}})
		}
	}
}

// journalLocked appends one record (fsyncing if sync) and reports
// success. A failed append — after the journal's own retries — moves
// the coordinator into the degraded storage state instead of killing
// the campaign: scheduling continues in memory, and the callers of the
// one record class whose durability is load-bearing (fsynced done
// records) check the return value and refuse to acknowledge. While
// degraded, non-critical records are skipped outright (the disk is
// known sick; hammering it from under the mutex helps nobody) until a
// successful durable write clears the state. Caller holds mu.
func (co *Coordinator) journalLocked(camp *campaignRun, r *jrec, sync bool) bool {
	if co.journal == nil {
		return true
	}
	if co.degraded && !sync {
		return false
	}
	if camp != nil && !camp.journaled && r.T != jCampaign {
		// The campaign record was lost to a degraded spell; nothing about
		// the campaign may land before it or replay drops the records.
		if !sync {
			return false
		}
		rec := &jrec{T: jCampaign, Camp: camp.key, Spec: camp.specJSON, Tag: &camp.tag}
		if err := co.journal.append(rec, false); err != nil {
			co.storageFaultLocked("journal append", err)
			return false
		}
		camp.journaled = true
	}
	if err := co.journal.append(r, sync); err != nil {
		co.storageFaultLocked("journal append", err)
		return false
	}
	if r.T == jCampaign && camp != nil {
		camp.journaled = true
	}
	co.storageRecoveredLocked()
	return true
}

// storageFaultLocked records a storage failure and enters (or extends)
// the degraded storage state. Caller holds mu.
func (co *Coordinator) storageFaultLocked(op string, err error) {
	co.lastStorageErr = err.Error()
	if co.degraded {
		return
	}
	co.degraded = true
	co.degradedSince = time.Now()
	co.stats.StorageDegradations++
	co.Events.Emit(obs.Event{Name: "storage_degraded", Fields: map[string]any{
		"op": op, "error": err.Error(),
	}})
}

// storageRecoveredLocked leaves the degraded storage state after a
// successful durable write. Caller holds mu.
func (co *Coordinator) storageRecoveredLocked() {
	if !co.degraded {
		return
	}
	co.degraded = false
	co.stats.StorageRecoveries++
	co.Events.Emit(obs.Event{Name: "storage_recovered", Fields: map[string]any{
		"degraded_for": time.Since(co.degradedSince).String(),
	}})
}

// CompactJournal triggers a journal compaction immediately, regardless
// of the size threshold — the explicit operator trigger. A no-op
// without a journal.
func (co *Coordinator) CompactJournal() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.journal == nil {
		return nil
	}
	if err := co.journal.compact(); err != nil {
		co.journal.storageErrors++
		co.storageFaultLocked("journal compact", err)
		return err
	}
	return nil
}

// requeueLocked returns a job with no remaining leases to the pending
// queue with jittered backoff, or fails the campaign if the job is out
// of attempts. Caller holds mu.
func (co *Coordinator) requeueLocked(camp *campaignRun, j *job) {
	j.state = statePending
	j.leases = nil
	j.straggler = false
	j.notBefore = time.Now().Add(co.backoff(j.id, j.attempts))
	co.Events.Emit(obs.Event{Name: "job_requeued", Job: j.id, Attempt: j.attempts,
		Fields: map[string]any{"not_before": j.notBefore.UTC().Format(time.RFC3339Nano)}})
	if j.attempts >= co.maxAttempts() {
		camp.finish(fmt.Errorf("dist: job %s exhausted %d attempts", j.id, j.attempts))
	}
}

// serveConn handles one worker connection. hello must come first.
func (co *Coordinator) serveConn(conn net.Conn) {
	// Deadlines wrap the raw transport, inside any WrapConn shims, so
	// injected test delays model the network without eating the
	// watchdog budget of the real socket.
	if to := co.ioTimeout(); to > 0 {
		conn = netutil.WithDeadlines(conn, to, to)
	}
	if co.WrapConn != nil {
		conn = co.WrapConn(conn)
	}
	cc := &countConn{Conn: conn, c: &co.bytes}
	br := bufio.NewReader(cc)
	cs := &connState{}
	co.conns.Add(1)
	defer co.dropConn(cs)

	// The hello exchange always travels as one JSON line per direction —
	// version discovery cannot require already knowing the version, and
	// old workers only speak JSON lines. A raw line read (not a
	// json.Decoder, which buffers bytes past the value) leaves br
	// positioned exactly at the first post-negotiation message, which
	// belongs to whichever codec the grant names.
	sendHelloErr := func(msg string) {
		b, _ := json.Marshal(&response{Type: msgOK, Err: msg})
		_, _ = cc.Write(append(b, '\n'))
	}
	line, err := br.ReadBytes('\n')
	if err != nil {
		return
	}
	var hello request
	if err := json.Unmarshal(line, &hello); err != nil || hello.Type != msgHello {
		sendHelloErr("dist: expected hello")
		return
	}
	cs.name = hello.Name
	cs.site = hello.Site
	if cs.site == "" {
		// Unconfigured workers are their own one-machine site.
		cs.site = hello.Name
	}
	ver, downgraded := wire.Negotiate(co.wireVersion(), hello.Wire)
	if downgraded {
		// Never silent: a future-versioned worker still gets served (on
		// v0, the one version everything speaks) but the mismatch is on
		// the record for the operator.
		co.wireDowngrades.Add(1)
		co.Events.Emit(obs.Event{Name: "wire_downgraded", Site: cs.site, Worker: cs.name,
			Fields: map[string]any{"offered": hello.Wire, "granted": ver}})
	}
	cs.wire = ver
	cs.delta = ver >= wire.V1 && co.DeltaCheckpoints && !hello.NoDelta
	cs.comp = ver >= wire.V1 && co.Compression && !hello.NoComp
	if ver >= wire.V1 {
		co.wireV1.Add(1)
	} else {
		co.wireV0.Add(1)
	}
	co.Events.Emit(obs.Event{Name: "worker_connected", Site: cs.site, Worker: cs.name,
		Fields: map[string]any{"wire": ver, "delta": cs.delta, "compression": cs.comp}})
	grant := &response{Type: msgOK, System: wire.JSONPayload(co.System),
		Wire: ver, Delta: cs.delta, Comp: cs.comp}
	reply, err := json.Marshal(grant)
	if err != nil {
		return
	}
	if _, err := cc.Write(append(reply, '\n')); err != nil {
		return
	}
	codec := wire.NewCodec(ver, br, cc, cs.comp)

	// Responses flow through a bounded per-connection send queue drained
	// by a writer goroutine, so a peer that stops reading can never wedge
	// this reader or hold response memory unboundedly: when the queue
	// fills, the slow consumer is evicted. Eviction kills the connection
	// but keeps its leases (dropConn skips the revocation) so the
	// worker's reconnect re-attaches mid-flight pulls instead of
	// redoing them from the last checkpoint.
	var (
		sendQ      chan response
		writerDone chan struct{}
	)
	if q := co.sendQueueLen(); q > 0 {
		sendQ = make(chan response, q)
		writerDone = make(chan struct{})
		go func() {
			defer close(writerDone)
			for resp := range sendQ {
				if codec.Encode(&resp) != nil {
					// Dead transport: keep draining so the reader, which may
					// be about to close the channel, never blocks on it.
					for range sendQ {
					}
					return
				}
			}
		}()
		defer func() { close(sendQ); <-writerDone }()
	}
	send := func(resp response) bool {
		if sendQ == nil {
			return codec.Encode(&resp) == nil
		}
		select {
		case sendQ <- resp:
			if d := int64(len(sendQ)); d > co.queuePeak.Load() {
				co.queuePeak.Store(d)
			}
			return true
		default:
			cs.evicted.Store(true)
			co.evictions.Add(1)
			co.Events.Emit(obs.Event{Name: "slow_consumer_evicted", Site: cs.site, Worker: cs.name,
				Fields: map[string]any{"queued": len(sendQ)}})
			_ = conn.Close()
			return false
		}
	}

	// Heartbeat-coalescing state, local to this reader goroutine: the
	// last plain beat per job that the normal path answered with a clean
	// msgOK. Under load, a twin of such a beat inside the coalesce
	// window is answered from here without taking the scheduler lock.
	type beatMark struct {
		attempt int
		at      time.Time
	}
	marks := make(map[string]beatMark)
	window := co.coalesceWindow()

	for {
		var req request
		if err := codec.Decode(&req); err != nil {
			return
		}
		var resp response
		n := co.inflight.Add(1)
		limit := int64(co.maxInflight())
		switch req.Type {
		case msgNext:
			co.polls.Add(1)
			if limit > 0 && n > limit {
				// Over the in-flight cap: shed the poll. Results, fails and
				// heartbeats are never shed — they shrink the backlog.
				resp = co.shedNext(cs)
			} else {
				resp = co.assign(cs)
			}
		case msgBeat:
			if m, ok := marks[req.JobID]; ok && window > 0 && limit > 0 && 2*n >= limit &&
				m.attempt == req.Attempt && time.Since(m.at) < window {
				co.coalesced.Add(1)
				resp = response{Type: msgOK}
			} else {
				resp = co.heartbeat(cs, &req)
				if resp.Type == msgOK && resp.Err == "" {
					marks[req.JobID] = beatMark{attempt: req.Attempt, at: time.Now()}
				} else {
					delete(marks, req.JobID)
				}
			}
		case msgProgress:
			resp = co.heartbeat(cs, &req)
		case msgResult:
			resp = co.finish(cs, &req)
		case msgFail:
			resp = co.fail(cs, &req)
		default:
			resp = response{Type: msgOK, Err: fmt.Sprintf("dist: unknown message %q", req.Type)}
		}
		co.inflight.Add(-1)
		if !send(resp) {
			return
		}
		if resp.Type == msgDrained {
			return
		}
	}
}

// dropConn revokes every lease held by a dying connection so its jobs
// requeue immediately instead of waiting out the TTL. A slow-consumer
// eviction is the exception: the lease survives the conn, because the
// worker behind it is presumed alive and mid-pull — its reconnect
// re-attaches the lease (heartbeat), and the janitor TTL-expires it if
// the worker really died.
func (co *Coordinator) dropConn(cs *connState) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.conns.Add(-1)
	if cs.evicted.Load() {
		return
	}
	now := time.Now()
	for _, camp := range co.camps {
		for _, j := range camp.jobs {
			if j.state != stateLeased {
				continue
			}
			keep := j.leases[:0]
			for _, l := range j.leases {
				if l.owner == cs {
					co.stats.Disconnects++
					co.Events.Emit(obs.Event{Name: "worker_disconnected", Job: j.id,
						Attempt: l.attempt, Site: l.site, Worker: l.worker})
					co.siteStrikeLocked(l.site, j.id, now, func(sh *siteHealth) { sh.disconnects++ })
					continue
				}
				keep = append(keep, l)
			}
			j.leases = keep
			if len(j.leases) == 0 {
				co.requeueLocked(camp, j)
			}
		}
	}
}

// grantLocked creates a lease of j for cs and builds the assign reply.
// speculative marks a hedge — a second concurrent lease racing a
// straggler on another site. Caller holds mu.
func (co *Coordinator) grantLocked(camp *campaignRun, j *job, cs *connState, now time.Time, speculative bool) response {
	j.state = stateLeased
	j.attempts++
	l := &lease{
		owner:       cs,
		worker:      cs.name,
		site:        cs.site,
		attempt:     j.attempts,
		speculative: speculative,
		granted:     now,
		lastBeat:    now,
		stepsAt:     now,
		steps:       j.ckptSteps,
		// The resume image seeds the delta base on both sides: the worker
		// keeps the bytes it was handed, so its first progress after a
		// resume can already travel as a delta.
		base: j.ckpt,
	}
	j.leases = append(j.leases, l)
	sh := co.siteLocked(cs.site)
	if sh.state == breakerOpen {
		// Cooldown elapsed (admissibleSiteLocked gated on it): this
		// grant is the half-open probe.
		sh.state = breakerHalfOpen
		co.stats.BreakerProbes++
		co.Events.Emit(obs.Event{Name: "breaker_probe", Job: j.id, Site: cs.site, Worker: cs.name})
	}
	if sh.state == breakerHalfOpen && sh.probeJob == "" {
		sh.probeJob = j.id
	}
	sh.assignments++
	co.stats.Assignments++
	js := co.jobStats[j.id]
	js.Assignments++
	js.Workers = append(js.Workers, cs.name)
	if speculative {
		co.stats.SpeculationsLaunched++
		js.Speculations++
	} else if j.attempts > 1 {
		co.stats.Retries++
		js.Retries++
	}
	resp := response{Type: msgAssign, Spec: &camp.spec, Job: &wireJob{
		ID:      j.id,
		Combo:   j.task.Combo,
		Seed:    j.task.Seed,
		Index:   j.task.Index,
		Attempt: j.attempts,
	}}
	resumed := len(j.ckpt) > 0
	if resumed {
		// Always a complete image (deltas are folded on receipt),
		// compressed when this connection negotiated it.
		if cs.comp {
			resp.Resume = wire.Compress(j.ckpt)
		} else {
			resp.Resume = wire.JSONPayload(j.ckpt)
		}
		co.stats.Resumes++
		js.Resumes++
	}
	co.Events.Emit(obs.Event{Name: "lease_granted", Job: j.id, Attempt: j.attempts,
		Site: cs.site, Worker: cs.name,
		Fields: map[string]any{"hedge": speculative, "resumed": resumed}})
	co.journalLocked(camp, &jrec{
		T: jLease, Camp: camp.key, Job: j.id, Worker: cs.name, Site: cs.site,
		Attempt: j.attempts, Resumed: resumed, Hedge: speculative,
	}, false)
	return resp
}

// assign leases the first runnable job to the requesting worker. The
// Scheduler picks the campaign order (priority, fair share, quotas);
// within each offered campaign pending jobs go first in task order,
// then — if the worker's site differs from the holder's — a
// speculative hedge on a flagged straggler.
func (co *Coordinator) assign(cs *connState) response {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return response{Type: msgDrained}
	}
	now := time.Now()
	if !co.siteLocked(cs.site).admissible(now, co.breakerCooldown()) {
		// Quarantined site (or a probe already in flight): no work until
		// the breaker relents. The paper's §V.C.4 outage as a scheduling
		// decision rather than an operator post-mortem. The adaptive hint
		// spreads a whole quarantined site's workers apart instead of
		// having them re-poll in the lockstep the fixed TTL/2 hint caused.
		return co.waitHint(cs, co.leaseTTL()/2, true)
	}
	offered := co.offerOrderLocked(now)
	var soonest time.Duration
	for _, camp := range offered {
		if camp.remaining == 0 || camp.failErr != nil {
			continue
		}
		for _, j := range camp.jobs {
			if j.state != statePending {
				continue
			}
			if wait := j.notBefore.Sub(now); wait > 0 {
				if soonest == 0 || wait < soonest {
					soonest = wait
				}
				continue
			}
			return co.grantLocked(camp, j, cs, now, false)
		}
	}
	if co.hedgingEnabled() {
		for _, camp := range offered {
			if camp.remaining == 0 || camp.failErr != nil {
				continue
			}
			for _, j := range camp.jobs {
				if j.state != stateLeased || !j.straggler || len(j.leases) != 1 {
					continue
				}
				if j.leases[0].site == cs.site {
					// Hedging onto the straggling site itself would inherit
					// whatever is wrong with it.
					continue
				}
				return co.grantLocked(camp, j, cs, now, true)
			}
		}
	}
	// Nothing runnable: leased jobs in flight, or pending ones backing
	// off. A pending job's backoff expiry keeps the hint short so the
	// job is picked up promptly; a purely idle fleet (nothing pending at
	// all) scales its poll interval with its own size.
	delay := soonest
	scale := false
	if delay <= 0 || delay > co.leaseTTL() {
		delay = co.leaseTTL() / 2
		scale = soonest == 0
	}
	if co.hedgingEnabled() {
		// Idle workers are the hedge pool: they must poll fast enough to
		// pick up a straggler flag soon after the janitor raises it, not
		// half a lease TTL later when the crawling job may have limped
		// home — so fleet scaling never applies to a hedging fleet.
		scale = false
		if lim := co.hedgeAfter() / 2; lim > 0 && delay > lim {
			delay = lim
		}
	}
	return co.waitHint(cs, delay, scale)
}

// ckptSteps extracts the engine step counter from an opaque checkpoint
// payload (smd.PullCheckpoint's Steps field). 0 if absent.
func ckptSteps(ckpt json.RawMessage) int {
	var prog struct {
		Steps int `json:"Steps"`
	}
	_ = json.Unmarshal(ckpt, &prog)
	return prog.Steps
}

// heartbeat refreshes a lease and stores any checkpoint that came with
// it. A worker beating for a *pending* job is adopted: after a
// coordinator restart (or a lease revocation that was never reacted
// on), the worker is still mid-pull and its checkpoint lineage is
// bit-exact, so re-leasing the job to it beats redoing the work. A
// worker beating for a job leased elsewhere is told to abandon — which
// is also how the losing side of a speculation race learns it lost:
// the job is done, the beat gets abandon, the pull is dropped.
func (co *Coordinator) heartbeat(cs *connState, req *request) response {
	co.mu.Lock()
	defer co.mu.Unlock()
	j := co.jobsByID[req.JobID]
	if j == nil || j.state == stateDone || j.camp.failErr != nil {
		// Unknown, finished, or the campaign is dead (failed or canceled):
		// the worker should drop the pull.
		return response{Type: msgAbandon}
	}
	camp := j.camp
	now := time.Now()
	l := j.leaseOf(cs)
	switch {
	case l != nil:
		// A live lease holder (original or hedge); nothing to adjust.
	case j.state == statePending:
		j.state = stateLeased
		if req.Attempt > 0 {
			// The adopted worker's lease attempt becomes the current one,
			// so its eventual result line passes the (job, attempt) check.
			j.attempts = req.Attempt
		}
		l = &lease{
			owner:    cs,
			worker:   cs.name,
			site:     cs.site,
			attempt:  j.attempts,
			granted:  now,
			lastBeat: now,
			stepsAt:  now,
			steps:    j.ckptSteps,
			// The adopted worker's delta base is whatever its last acked
			// checkpoint was — unknowable here. Seed the farthest image we
			// hold: if the worker's base differs, its next delta fails the
			// CRC check and NeedFull heals the pair in one round trip.
			base: j.ckpt,
		}
		j.leases = append(j.leases, l)
		co.siteLocked(cs.site).assignments++
		co.stats.Adoptions++
		co.Events.Emit(obs.Event{Name: "lease_adopted", Job: j.id, Attempt: j.attempts,
			Site: cs.site, Worker: cs.name})
		js := co.jobStats[j.id]
		js.Adoptions++
		js.Assignments++
		js.Workers = append(js.Workers, cs.name)
		co.journalLocked(camp, &jrec{
			T: jLease, Camp: camp.key, Job: j.id, Worker: cs.name, Site: cs.site,
			Attempt: j.attempts, Resumed: len(j.ckpt) > 0,
		}, false)
	default:
		// Leased to someone else — unless "someone else" is this worker's
		// own evicted previous connection. A slow-consumer eviction kills
		// the conn but keeps the lease precisely so this beat can
		// re-attach it: same worker, same attempt, new pipe, no requeue.
		for _, prev := range j.leases {
			if prev.worker == cs.name && prev.owner != cs && prev.owner.evicted.Load() &&
				(req.Attempt == 0 || req.Attempt == prev.attempt) {
				prev.owner = cs
				prev.site = cs.site
				l = prev
				co.stats.Adoptions++
				co.jobStats[j.id].Adoptions++
				co.Events.Emit(obs.Event{Name: "lease_reattached", Job: j.id,
					Attempt: prev.attempt, Site: cs.site, Worker: cs.name})
				break
			}
		}
		if l == nil {
			// The beating worker genuinely lost the job.
			return response{Type: msgAbandon}
		}
	}
	l.lastBeat = now
	if req.Type == msgProgress && req.Ckpt != nil {
		// Fold before anything else: every consumer downstream of this
		// point — farthest-wins, the spool, journal replay, a hedge's
		// resume — sees only complete images. A delta that cannot be
		// resolved right here is never stored; the worker is asked for a
		// full image instead, so a crash between receipt and fold can at
		// worst lose one checkpoint generation, never corrupt one.
		raw, err := req.Ckpt.Resolve(l.base)
		if err != nil {
			// Base mismatch (coordinator restart, lost ack, adoption) or a
			// corrupt payload that survived the frame CRC: either way the
			// incremental lineage is broken. NeedFull restarts it.
			if errors.Is(err, wire.ErrBaseMismatch) {
				co.stats.DeltaBaseMisses++
			} else {
				co.stats.CheckpointsRejected++
			}
			l.base = nil
			co.Events.Emit(obs.Event{Name: "checkpoint_need_full", Job: j.id, Attempt: l.attempt,
				Site: l.site, Worker: l.worker, Fields: map[string]any{"error": err.Error()}})
			return response{Type: msgOK, NeedFull: true}
		}
		co.stats.Checkpoints++
		if req.Ckpt.IsDelta() {
			co.stats.DeltasFolded++
		}
		l.base = raw
		steps := ckptSteps(raw)
		if steps > l.steps {
			if dt := now.Sub(l.stepsAt); dt > 0 {
				r := float64(steps-l.steps) / dt.Seconds()
				if l.haveRate {
					l.rate = (1-ewmaAlpha)*l.rate + ewmaAlpha*r
				} else {
					l.rate, l.haveRate = r, true
				}
				co.siteLocked(l.site).observeRate(r)
			}
			l.steps = steps
			l.stepsAt = now
		}
		co.Events.Emit(obs.Event{Name: "checkpoint", Job: j.id, Attempt: l.attempt,
			Site: l.site, Worker: l.worker,
			Fields: map[string]any{"steps": steps, "bytes": req.Ckpt.WireLen(), "raw_bytes": len(raw)}})
		if steps >= j.ckptSteps {
			// Farthest-wins: with two concurrent leases on the same
			// bit-exact trajectory, the checkpoint farther along strictly
			// dominates — any future resume hands it out.
			j.ckpt = raw
			j.ckptSteps = steps
			if co.journal != nil && !co.degraded {
				// A checkpoint that cannot reach the spool costs recovery
				// progress, never correctness: the in-memory copy above keeps
				// serving resumes, so a sick disk degrades the coordinator
				// instead of failing the campaign.
				if err := co.journal.spoolCheckpoint(j.id, raw); err != nil {
					co.journal.storageErrors++
					co.storageFaultLocked("checkpoint spool", err)
				} else {
					co.journalLocked(camp, &jrec{T: jCkpt, Camp: camp.key, Job: j.id, Attempt: l.attempt}, false)
				}
			}
		}
	}
	return response{Type: msgOK}
}

// finish records a completed job. Results are idempotent by (job,
// attempt): checkpointed resumption is bit-exact, so a retransmitted
// or late result from a retired lease is byte-identical to the one the
// current lease will produce — it is acknowledged (so the worker stops
// retrying) and dropped, never merged twice. The same rule settles
// speculation races: the first attempt to deliver wins, and the other
// lease's eventual result is just another duplicate.
func (co *Coordinator) finish(cs *connState, req *request) response {
	co.mu.Lock()
	defer co.mu.Unlock()
	j := co.jobsByID[req.JobID]
	if j == nil {
		if co.doneJobs[req.JobID] {
			// Completed in an earlier campaign this process (or the journal)
			// knows about; ack so the sender clears its outbox.
			co.stats.DuplicateResultsDropped++
			return response{Type: msgOK}
		}
		return response{Type: msgOK, Err: "dist: unknown job " + req.JobID}
	}
	camp := j.camp
	if camp.failErr != nil {
		// The campaign died (failed or canceled) while this pull was in
		// flight: ack so the worker drops it, merge nothing.
		return response{Type: msgOK}
	}
	if j.state == stateDone {
		// Retransmit of a result already recorded (or raced by another
		// lease's identical result): ack so the sender clears its outbox.
		co.stats.DuplicateResultsDropped++
		return response{Type: msgOK}
	}
	var winner *lease
	if l := j.leaseOf(cs); l != nil && (req.Attempt == 0 || req.Attempt == l.attempt) {
		winner = l
	}
	if j.state == stateLeased && winner == nil {
		// The sender's lease was revoked and the job reassigned (or it
		// lost a speculation race); the surviving lease will deliver the
		// same bytes.
		co.stats.DuplicateResultsDropped++
		return response{Type: msgOK}
	}
	if req.Log == nil {
		return response{Type: msgOK, Err: "dist: result without log"}
	}
	// A pending job is accepted too: its lease expired during coordinator
	// downtime but the worker finished anyway — the result is just as
	// bit-identical. Journal (fsynced — the log is the campaign's
	// irreplaceable output) before the in-memory commit and the ack.
	attempt := j.attempts
	if winner != nil {
		attempt = winner.attempt
	}
	if !co.journalLocked(camp, &jrec{T: jDone, Camp: camp.key, Job: j.id, Attempt: attempt, Log: req.Log}, true) {
		// The result cannot be made durable right now. Acking would break
		// the promise the fsync exists for; failing the campaign would
		// throw away a computed result over a possibly transient disk
		// fault. msgRetry does neither: the worker keeps the line in its
		// outbox and retransmits once the storage probe clears the state.
		return response{Type: msgRetry, DelayMs: int(co.leaseTTL() / 2 / time.Millisecond)}
	}
	now := time.Now()
	sh := co.siteLocked(cs.site)
	sh.completions++
	if winner != nil {
		sh.observeLatency(now.Sub(winner.granted))
	}
	if sh.success() {
		co.stats.BreakerCloses++
		co.Events.Emit(obs.Event{Name: "breaker_closed", Job: j.id, Site: cs.site})
	}
	// Settle the speculation race: every other concurrent lease lost.
	for _, l := range j.leases {
		if l == winner {
			continue
		}
		co.stats.SpeculationsWasted++
		co.Events.Emit(obs.Event{Name: "speculation_lost", Job: j.id, Attempt: l.attempt,
			Site: l.site, Worker: l.worker})
		loser := co.siteLocked(l.site)
		loser.specLost++
		loser.clearProbe(j.id)
		if !l.speculative && l.steps > 0 {
			// The original lease demonstrably crawled and lost to its
			// hedge: that is a health verdict on its site, the same kind
			// of strike a failure would be.
			co.siteStrikeLocked(l.site, j.id, now, nil)
		}
	}
	if winner != nil && winner.speculative {
		co.stats.SpeculationsWon++
		sh.specWon++
	}
	co.doneJobs[j.id] = true
	j.state = stateDone
	j.leases = nil
	j.straggler = false
	j.log = req.Log
	camp.remaining--
	co.Events.Emit(obs.Event{Name: "result_accepted", Job: j.id, Attempt: attempt,
		Site: cs.site, Worker: cs.name,
		Fields: map[string]any{"remaining": camp.remaining}})
	if co.journal != nil {
		co.journal.removeSpool(j.id)
	}
	if camp.remaining == 0 {
		camp.finish(nil)
	}
	return response{Type: msgOK}
}

// fail requeues a job its worker could not complete. Like finish, it is
// idempotent by (job, attempt): a fail line from a retired lease — the
// job finished elsewhere or was reassigned — is acked and dropped.
func (co *Coordinator) fail(cs *connState, req *request) response {
	co.mu.Lock()
	defer co.mu.Unlock()
	j := co.jobsByID[req.JobID]
	if j == nil {
		if co.doneJobs[req.JobID] {
			co.stats.DuplicateResultsDropped++
			return response{Type: msgOK}
		}
		return response{Type: msgOK, Err: "dist: unknown job " + req.JobID}
	}
	camp := j.camp
	if camp.failErr != nil {
		return response{Type: msgOK}
	}
	l := j.leaseOf(cs)
	if j.state == stateLeased && l != nil && (req.Attempt == 0 || req.Attempt == l.attempt) {
		co.stats.Failures++
		co.Events.Emit(obs.Event{Name: "job_failed", Job: j.id, Attempt: l.attempt,
			Site: l.site, Worker: l.worker, Fields: map[string]any{"error": req.Err}})
		co.journalLocked(camp, &jrec{T: jFail, Camp: camp.key, Job: j.id, Attempt: l.attempt, Err: req.Err}, false)
		co.siteStrikeLocked(l.site, j.id, time.Now(), func(sh *siteHealth) { sh.failures++ })
		keep := j.leases[:0]
		for _, other := range j.leases {
			if other != l {
				keep = append(keep, other)
			}
		}
		j.leases = keep
		if len(j.leases) == 0 {
			co.requeueLocked(camp, j)
		}
	} else if j.state == stateDone || j.state == stateLeased {
		co.stats.DuplicateResultsDropped++
	}
	return response{Type: msgOK}
}

// Stats returns the campaign counters. Counters aggregate over every
// campaign the coordinator has run.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.statsLocked()
}

func (co *Coordinator) statsLocked() Stats {
	s := co.stats
	s.BytesIn, s.BytesOut = co.bytes.snapshot()
	if co.journal != nil {
		s.Compactions = co.journal.compactions
		s.StorageErrors = co.journal.storageErrors
		s.StorageRetries = co.journal.storageRetries
		s.JournalBytes = co.journal.goodLen
	}
	s.StorageDegraded = co.degraded
	s.LastStorageErr = co.lastStorageErr
	s.RequestsShed = int(co.shed.Load())
	s.SlowConsumerEvictions = int(co.evictions.Load())
	s.HeartbeatsCoalesced = int(co.coalesced.Load())
	s.InflightRequests = int(co.inflight.Load())
	s.ConnectedWorkers = int(co.conns.Load())
	s.SendQueuePeak = int(co.queuePeak.Load())
	s.WireV0Conns = int(co.wireV0.Load())
	s.WireV1Conns = int(co.wireV1.Load())
	s.WireDowngrades = int(co.wireDowngrades.Load())
	s.WorkPolls = co.polls.Load()
	return s
}

// JobStats returns the per-job counters keyed by job ID.
func (co *Coordinator) JobStats() map[string]JobStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.jobStatsLocked()
}

func (co *Coordinator) jobStatsLocked() map[string]JobStats {
	out := make(map[string]JobStats, len(co.jobStats))
	for id, js := range co.jobStats {
		cp := *js
		cp.Workers = append([]string(nil), js.Workers...)
		out[id] = cp
	}
	return out
}

// StatsSnapshot implements StatsSource: the campaign counters, per-job
// lease histories and per-site health table captured under one lock
// acquisition, so the three views are mutually coherent — the snapshot
// the statsfmt tables print and the obs /metrics collector scrapes.
func (co *Coordinator) StatsSnapshot() Snapshot {
	co.mu.Lock()
	defer co.mu.Unlock()
	return Snapshot{
		Stats: co.statsLocked(),
		Jobs:  co.jobStatsLocked(),
		Sites: co.siteStatsLocked(),
	}
}

// countConn counts bytes crossing a connection.
type countConn struct {
	net.Conn
	c *counter
}

func (cc *countConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.c.addIn(n)
	return n, err
}

func (cc *countConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.c.addOut(n)
	return n, err
}
