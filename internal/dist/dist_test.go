package dist

import (
	"context"
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/md"
	"spice/internal/netsim"
	"spice/internal/trace"
	"spice/internal/vec"
)

// testSystem is the opaque payload shipped to workers; decoding it in
// the BuildFunc exercises the full plumb-through.
type testSystem struct {
	Beads int `json:"beads"`
	// Walled asks for explicit pore walls in a fully periodic box — the
	// substrate-eligible layout the worker's grid sharing kicks in on.
	Walled bool `json:"walled,omitempty"`
}

func testBuild(system json.RawMessage, c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
	var sys testSystem
	if err := json.Unmarshal(system, &sys); err != nil {
		return nil, nil, err
	}
	spec := md.DefaultTranslocation(sys.Beads)
	spec.Seed = seed
	spec.DT = 0.02
	spec.Workers = 1
	if sys.Walled {
		spec.NoWalls = false
		spec.Box = vec.V{X: 100, Y: 100, Z: 170}
	}
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		return nil, nil, err
	}
	return ts.Engine, ts.DNA[:1], nil
}

// localBuild is the same system built directly, for the LocalRunner
// baseline the dist results must match bit for bit.
func localBuild(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
	return testBuild(json.RawMessage(`{"beads":3}`), c, seed)
}

func testSpec() campaign.Spec {
	return campaign.Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{800},
		Replicas:   2,
		Distance:   3,
		Seed:       21,
	}
}

// flattenWorks extracts every work sample grouped deterministically.
func flattenWorks(t *testing.T, logs map[campaign.Combo][]*trace.WorkLog) map[campaign.Combo][][]float64 {
	t.Helper()
	out := make(map[campaign.Combo][][]float64)
	for c, wls := range logs {
		for _, wl := range wls {
			ws := make([]float64, len(wl.Samples))
			for i, s := range wl.Samples {
				ws[i] = s.Work
			}
			out[c] = append(out[c], ws)
		}
	}
	return out
}

func requireBitIdentical(t *testing.T, want, got map[campaign.Combo][]*trace.WorkLog) {
	t.Helper()
	w, g := flattenWorks(t, want), flattenWorks(t, got)
	if len(w) != len(g) {
		t.Fatalf("combo counts differ: %d vs %d", len(w), len(g))
	}
	for c, reps := range w {
		if len(g[c]) != len(reps) {
			t.Fatalf("combo %s: %d replicas, want %d", c, len(g[c]), len(reps))
		}
		for r := range reps {
			if len(g[c][r]) != len(reps[r]) {
				t.Fatalf("combo %s replica %d: %d samples, want %d", c, r, len(g[c][r]), len(reps[r]))
			}
			for i := range reps[r] {
				if g[c][r][i] != reps[r][i] {
					t.Fatalf("combo %s replica %d sample %d: %v != %v (not bit-identical)",
						c, r, i, g[c][r][i], reps[r][i])
				}
			}
		}
	}
}

func localBaseline(t *testing.T, spec campaign.Spec) map[campaign.Combo][]*trace.WorkLog {
	t.Helper()
	lr := &campaign.LocalRunner{Build: localBuild, Workers: 1}
	logs, err := lr.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return logs
}

func newCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{
		Listener: ln,
		System:   json.RawMessage(`{"beads":3}`),
		LeaseTTL: 2 * time.Second,
	}
	// Cleanups run after the test's defers, i.e. after worker contexts
	// are cancelled, so Close sees the connections drain quickly.
	t.Cleanup(func() { _ = co.Close() })
	return co
}

func startWorkers(ctx context.Context, co *Coordinator, n int, mutate func(i int, w *Worker)) {
	for i := 0; i < n; i++ {
		w := &Worker{
			Name:            "w",
			Addr:            co.Listener.Addr().String(),
			Build:           testBuild,
			BeatInterval:    20 * time.Millisecond,
			CheckpointEvery: 2,
		}
		if mutate != nil {
			mutate(i, w)
		}
		go w.Run(ctx)
	}
}

// TestCoordinatorMatchesLocalRunner is the core guarantee: a sweep
// executed across worker processes merges to output bit-identical to a
// single-process run.
func TestCoordinatorMatchesLocalRunner(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 3, nil)

	got, err := co.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	st := co.Stats()
	if st.Jobs != len(spec.Tasks()) {
		t.Fatalf("stats.Jobs = %d, want %d", st.Jobs, len(spec.Tasks()))
	}
	if st.Assignments < st.Jobs {
		t.Fatalf("stats.Assignments = %d < %d jobs", st.Assignments, st.Jobs)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters not moving: %+v", st)
	}
	js := co.JobStats()
	if len(js) != st.Jobs {
		t.Fatalf("per-job stats = %d entries, want %d", len(js), st.Jobs)
	}
	for id, j := range js {
		if j.Assignments < 1 || len(j.Workers) != j.Assignments {
			t.Fatalf("job %s stats inconsistent: %+v", id, j)
		}
	}
}

// TestWorkerSubstrateShareMatchesLocal runs a campaign on the walled
// periodic (substrate-eligible) system: the worker's jobs must share one
// static neighbor grid across builds, and the merged results must still
// be bit-identical to an unshared LocalRunner baseline.
func TestWorkerSubstrateShareMatchesLocal(t *testing.T) {
	spec := testSpec()
	payload := json.RawMessage(`{"beads":3,"walled":true}`)
	lr := &campaign.LocalRunner{Build: func(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
		return testBuild(payload, c, seed)
	}, Workers: 1}
	want, err := lr.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	co := newCoordinator(t)
	co.System = payload
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var captured *Worker
	startWorkers(ctx, co, 1, func(i int, w *Worker) { captured = w })

	got, err := co.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)
	if !captured.substrates.Shared(string(payload)) {
		t.Fatal("worker never shared a substrate grid for the walled system")
	}
}

// TestLeaseExpiryReassigns takes a job with a hand-rolled client that
// never heartbeats; the janitor must revoke the lease and a real worker
// must finish the campaign with identical results.
func TestLeaseExpiryReassigns(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	co.LeaseTTL = 100 * time.Millisecond
	co.RetryBase = 10 * time.Millisecond

	done := make(chan struct{})
	resCh := make(chan map[campaign.Combo][]*trace.WorkLog, 1)
	errCh := make(chan error, 1)
	go func() {
		defer close(done)
		logs, err := co.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- logs
	}()

	// The silent client: hello, grab a job, never beat.
	conn, err := net.Dial("tcp", co.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(&request{Type: msgHello, Name: "silent"}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&request{Type: msgNext}); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != msgAssign {
		t.Fatalf("silent client got %q, want assign", resp.Type)
	}

	// Wait for the janitor to revoke the silent lease before starting
	// honest workers, so the reassignment path is actually exercised.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := co.Stats(); st.LeaseExpiries > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, nil)

	select {
	case logs := <-resCh:
		requireBitIdentical(t, want, logs)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish after lease expiry")
	}
	st := co.Stats()
	if st.LeaseExpiries < 1 {
		t.Fatalf("expected a lease expiry, stats = %+v", st)
	}
	if st.Retries < 1 {
		t.Fatalf("expected a retry after expiry, stats = %+v", st)
	}
}

// TestCheckpointResumeOnWorkerLoss kills a throttled worker once its
// first checkpoints have streamed back, then lets fresh workers finish.
// The resumed jobs must still be bit-identical to the local baseline —
// the end-to-end proof that checkpointed migration is exact.
func TestCheckpointResumeOnWorkerLoss(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	co.LeaseTTL = 2 * time.Second
	co.RetryBase = 5 * time.Millisecond

	resCh := make(chan map[campaign.Combo][]*trace.WorkLog, 1)
	errCh := make(chan error, 1)
	go func() {
		logs, err := co.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- logs
	}()

	// A slow worker: checkpoints at every sample and naps on each, so it
	// is guaranteed to be mid-job when we cut it down.
	slowCtx, killSlow := context.WithCancel(context.Background())
	defer killSlow()
	startWorkers(slowCtx, co, 1, func(i int, w *Worker) {
		w.Name = "doomed"
		w.CheckpointEvery = 1
		w.Throttle = 30 * time.Millisecond
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := co.Stats(); st.Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint ever streamed back")
		}
		time.Sleep(5 * time.Millisecond)
	}
	killSlow() // the worker abandons; its conn drop requeues the job

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, nil)

	select {
	case logs := <-resCh:
		requireBitIdentical(t, want, logs)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish after worker loss")
	}
	st := co.Stats()
	if st.Resumes < 1 {
		t.Fatalf("expected a checkpoint resume, stats = %+v", st)
	}
	if st.Checkpoints < 1 {
		t.Fatalf("expected streamed checkpoints, stats = %+v", st)
	}
}

// TestQoSShimTransport routes every connection through netsim WAN
// shims on both sides; the campaign must still complete identically.
func TestQoSShimTransport(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	var shimSeed atomic.Uint64
	co.WrapConn = func(c net.Conn) net.Conn {
		return netsim.NewShim(c, netsim.SharedWAN, 0.01, shimSeed.Add(1))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, func(i int, w *Worker) {
		w.Dial = func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return netsim.NewShim(c, netsim.SharedWAN, 0.01, uint64(100+i)), nil
		}
	})

	got, err := co.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)
}

// TestCoordinatorEmptySpec drains immediately.
func TestCoordinatorEmptySpec(t *testing.T) {
	co := newCoordinator(t)
	logs, err := co.Run(campaign.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) != 0 {
		t.Fatalf("empty spec produced %d combos", len(logs))
	}
	co.Listener.Close()
}

// TestCoordinatorRunsConsecutiveCampaigns exercises the long-lived
// server path core.RunSweep depends on: the same coordinator and the
// same worker fleet execute two campaigns back to back, and workers
// drain cleanly on Close.
func TestCoordinatorRunsConsecutiveCampaigns(t *testing.T) {
	specA := testSpec()
	specB := testSpec()
	specB.Seed = 77
	wantA := localBaseline(t, specA)
	wantB := localBaseline(t, specB)

	co := newCoordinator(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, nil)

	gotA, err := co.Run(specA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := co.Run(specB)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, wantA, gotA)
	requireBitIdentical(t, wantB, gotB)

	if err := co.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := co.Run(specA); err == nil {
		t.Fatal("Run after Close should fail")
	}
}
