package dist_test

// Shared observability helpers for the e2e/chaos tests: a tiny
// Prometheus text-format scraper and an HTTP smoke-check, so the chaos
// scenarios can assert that the scraped /metrics counters equal the
// final Stats snapshot field for field.

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// httpGet fetches url with a short timeout and returns the body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// scrapeProm GETs a /metrics endpoint and parses the exposition into a
// map keyed by the full sample name including labels, e.g.
// "spice_dist_assignments_total" or `spice_dist_site_spec_won{site="quick"}`.
func scrapeProm(t *testing.T, url string) map[string]float64 {
	t.Helper()
	code, body := httpGet(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, code)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// requireMetric asserts a scraped sample exists and equals want.
func requireMetric(t *testing.T, m map[string]float64, name string, want float64) {
	t.Helper()
	got, ok := m[name]
	if !ok {
		t.Fatalf("metric %s missing from scrape", name)
	}
	if got != want {
		t.Fatalf("metric %s = %v, want %v (scrape drifted from Stats)", name, got, want)
	}
}

// requireHealthy asserts /healthz returns 200 ok.
func requireHealthy(t *testing.T, base string) {
	t.Helper()
	code, body := httpGet(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
}
