package dist

// Bridges from the dist stats surface to the obs registry. The
// coordinator's /metrics families are generated at scrape time from the
// same Snapshot the statsfmt tables print and the tests assert on —
// there is no second set of counters to drift, so a scrape taken after
// a campaign finishes equals the final Stats exactly, field for field.

import (
	"sort"
	"strconv"
	"time"

	"spice/internal/md"
	"spice/internal/obs"
)

// RegisterMetrics registers a scrape-time collector on reg that renders
// src's full Snapshot: every campaign counter as spice_dist_*, and the
// per-site health table as spice_dist_site_* gauges labeled by site.
// Per-job stats are deliberately not exported (unbounded label
// cardinality); scrape /debug/events or call JobStats for those.
func RegisterMetrics(reg *obs.Registry, src StatsSource) {
	reg.RegisterCollector(func(e *obs.Emitter) {
		snap := src.StatsSnapshot()
		s := snap.Stats
		e.Counter("spice_dist_jobs_total", "Jobs accepted into campaigns.", float64(s.Jobs))
		e.Counter("spice_dist_assignments_total", "Leases granted (first attempts + retries).", float64(s.Assignments))
		e.Counter("spice_dist_retries_total", "Reassignments after failure, expiry or disconnect.", float64(s.Retries))
		e.Counter("spice_dist_resumes_total", "Assignments that carried a resume checkpoint.", float64(s.Resumes))
		e.Counter("spice_dist_lease_expiries_total", "Leases revoked for missed heartbeats.", float64(s.LeaseExpiries))
		e.Counter("spice_dist_disconnects_total", "Leases revoked because the worker connection died.", float64(s.Disconnects))
		e.Counter("spice_dist_failures_total", "Explicit fail messages from workers.", float64(s.Failures))
		e.Counter("spice_dist_checkpoints_total", "Progress messages that carried a checkpoint.", float64(s.Checkpoints))
		e.Counter("spice_dist_bytes_in_total", "Bytes received from workers.", float64(s.BytesIn))
		e.Counter("spice_dist_bytes_out_total", "Bytes sent to workers.", float64(s.BytesOut))
		e.Counter("spice_dist_restarts_total", "Journal opens that replayed prior state.", float64(s.Restarts))
		e.Counter("spice_dist_replayed_records_total", "Journal records replayed at open.", float64(s.ReplayedRecords))
		e.Counter("spice_dist_truncated_tail_bytes_total", "Torn journal tail bytes dropped at open.", float64(s.TruncatedTailBytes))
		e.Counter("spice_dist_duplicate_results_dropped_total", "Retransmitted result/fail lines acked and dropped.", float64(s.DuplicateResultsDropped))
		e.Counter("spice_dist_adoptions_total", "In-flight jobs re-leased to their live worker.", float64(s.Adoptions))
		e.Gauge("spice_dist_journal_tail_condition", "Journal tail at last recovery: 0 clean, 1 torn, 2 corrupt.", float64(s.TornTail))
		// The spice_storage_* family is shared with the control plane's
		// queue journal; the journal label keeps the two apart.
		jl := obs.Label{Name: "journal", Value: "dist"}
		e.Counter("spice_storage_errors_total", "Failed journal/spool operations.", float64(s.StorageErrors), jl)
		e.Counter("spice_storage_retries_total", "Journal appends retried after a transient fault.", float64(s.StorageRetries), jl)
		e.Counter("spice_storage_compactions_total", "Journal compactions completed.", float64(s.Compactions), jl)
		e.Counter("spice_storage_degradations_total", "Transitions into the degraded storage state.", float64(s.StorageDegradations), jl)
		e.Counter("spice_storage_recoveries_total", "Transitions back to healthy storage.", float64(s.StorageRecoveries), jl)
		e.Gauge("spice_storage_degraded", "1 while the journal is refusing durability promises.", boolGauge(s.StorageDegraded), jl)
		e.Gauge("spice_storage_journal_bytes", "Current clean length of the journal log.", float64(s.JournalBytes), jl)
		e.Counter("spice_dist_stragglers_detected_total", "Leases flagged as stragglers (rate or stall).", float64(s.StragglersDetected))
		e.Counter("spice_dist_speculations_launched_total", "Hedge leases granted on a second site.", float64(s.SpeculationsLaunched))
		e.Counter("spice_dist_speculations_won_total", "Jobs whose accepted result came from a hedge lease.", float64(s.SpeculationsWon))
		e.Counter("spice_dist_speculations_wasted_total", "Concurrent leases dropped when the other attempt won.", float64(s.SpeculationsWasted))
		e.Counter("spice_dist_breaker_trips_total", "Site breakers opened (quarantine events).", float64(s.BreakerTrips))
		e.Counter("spice_dist_breaker_probes_total", "Half-open probe jobs dispatched.", float64(s.BreakerProbes))
		e.Counter("spice_dist_breaker_closes_total", "Breakers closed again by a successful result.", float64(s.BreakerCloses))
		e.Counter("spice_overload_requests_shed_total", "Work polls answered with a shed wait over the in-flight cap.", float64(s.RequestsShed))
		e.Counter("spice_overload_slow_consumer_evictions_total", "Connections killed for a full send queue (leases survived).", float64(s.SlowConsumerEvictions))
		e.Counter("spice_overload_heartbeats_coalesced_total", "Heartbeats answered from connection-local state under load.", float64(s.HeartbeatsCoalesced))
		e.Gauge("spice_overload_inflight", "Requests decoded and not yet answered.", float64(s.InflightRequests))
		e.Gauge("spice_overload_connected_workers", "Live worker connections.", float64(s.ConnectedWorkers))
		e.Gauge("spice_overload_send_queue_peak", "High-water mark of any connection's send queue.", float64(s.SendQueuePeak))
		e.Counter("spice_wire_v0_conns_total", "Connections negotiated to the legacy JSON-lines transport.", float64(s.WireV0Conns))
		e.Counter("spice_wire_v1_conns_total", "Connections negotiated to binary framing.", float64(s.WireV1Conns))
		e.Counter("spice_wire_downgrades_total", "Hellos offering an unknown version, served on v0.", float64(s.WireDowngrades))
		e.Counter("spice_wire_work_polls_total", "Work-poll requests received (shed or served).", float64(s.WorkPolls))
		e.Counter("spice_dist_deltas_folded_total", "Delta checkpoints folded into complete images.", float64(s.DeltasFolded))
		e.Counter("spice_dist_delta_base_misses_total", "Deltas rejected for an unknown base (answered NeedFull).", float64(s.DeltaBaseMisses))
		e.Counter("spice_dist_checkpoints_rejected_total", "Checkpoint payloads that failed to decode.", float64(s.CheckpointsRejected))

		names := make([]string, 0, len(snap.Sites))
		for name := range snap.Sites {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := snap.Sites[name]
			site := obs.Label{Name: "site", Value: name}
			e.Gauge("spice_dist_site_assignments", "Leases granted to this site.", float64(st.Assignments), site)
			e.Gauge("spice_dist_site_completions", "Accepted results from this site.", float64(st.Completions), site)
			e.Gauge("spice_dist_site_failures", "Explicit fail messages from this site.", float64(st.Failures), site)
			e.Gauge("spice_dist_site_lease_expiries", "Lease expiries charged to this site.", float64(st.LeaseExpiries), site)
			e.Gauge("spice_dist_site_disconnects", "Disconnects with an active lease.", float64(st.Disconnects), site)
			e.Gauge("spice_dist_site_spec_won", "Speculation races this site won.", float64(st.SpecWon), site)
			e.Gauge("spice_dist_site_spec_lost", "Leases this site lost to a hedge elsewhere.", float64(st.SpecLost), site)
			e.Gauge("spice_dist_site_breaker_trips", "Quarantine events for this site.", float64(st.BreakerTrips), site)
			e.Gauge("spice_dist_site_strikes", "Current consecutive-failure strikes.", float64(st.Strikes), site)
			e.Gauge("spice_dist_site_breaker_state", "Current breaker state, 1 on the active state.", 1,
				site, obs.Label{Name: "state", Value: st.Breaker})
			e.Gauge("spice_dist_site_rate_steps_per_second", "Smoothed checkpoint-derived progress rate.", st.RateEWMA, site)
			e.Gauge("spice_dist_site_latency_seconds", "Smoothed lease-grant to result latency.", st.LatencyEWMA.Seconds(), site)
		}
	})
}

// WorkerStats is the snapshot of one Worker's execution counters.
type WorkerStats struct {
	JobsStarted   int64
	JobsDone      int64
	JobsFailed    int64
	JobsAbandoned int64 // leases revoked under the worker (lost races, drains)
	// CheckpointsSent counts checkpoints actually put on the wire;
	// CheckpointBytes is the bytes that traveled (post-compression,
	// post-delta) while CheckpointRawBytes is the serialized documents
	// they reconstruct to — raw/wire is the transport win.
	CheckpointsSent    int64
	CheckpointBytes    int64
	CheckpointRawBytes int64
	CheckpointDeltas   int64 // checkpoints that traveled as deltas
	Steps              int64 // MD steps advanced across all jobs (checkpoint deltas)
	Reconnects         int64 // successful re-dials after a transport failure
	BudgetStretches    int64 // re-dials stretched to max backoff by an empty retry budget
}

// RegisterMetrics registers a scrape-time collector on reg rendering
// the worker's execution counters as spice_worker_* metrics labeled by
// worker name. Steps/sec is the derivative of spice_worker_steps_total
// — scrapers compute it with rate(), so the worker exports only the
// monotone counter.
func (w *Worker) RegisterMetrics(reg *obs.Registry) {
	w.reg = reg
	reg.RegisterCollector(func(e *obs.Emitter) {
		st := w.WorkerStats()
		wl := obs.Label{Name: "worker", Value: w.Name}
		e.Counter("spice_worker_jobs_started_total", "Job leases this worker began executing.", float64(st.JobsStarted), wl)
		e.Counter("spice_worker_jobs_done_total", "Jobs completed and reported.", float64(st.JobsDone), wl)
		e.Counter("spice_worker_jobs_failed_total", "Jobs that failed locally.", float64(st.JobsFailed), wl)
		e.Counter("spice_worker_jobs_abandoned_total", "Leases revoked mid-pull (lost races, drains).", float64(st.JobsAbandoned), wl)
		e.Counter("spice_worker_checkpoints_sent_total", "Checkpoints streamed to the coordinator.", float64(st.CheckpointsSent), wl)
		e.Counter("spice_worker_checkpoint_bytes_total", "Checkpoint bytes as they traveled on the wire (post-compression, post-delta).", float64(st.CheckpointBytes), wl)
		e.Counter("spice_worker_checkpoint_raw_bytes_total", "Serialized checkpoint document bytes before compression/delta.", float64(st.CheckpointRawBytes), wl)
		e.Counter("spice_worker_checkpoint_deltas_total", "Checkpoints that traveled as deltas against an acknowledged base.", float64(st.CheckpointDeltas), wl)
		e.Counter("spice_worker_steps_total", "MD steps advanced across all jobs.", float64(st.Steps), wl)
		e.Counter("spice_worker_reconnects_total", "Successful re-dials after a transport failure.", float64(st.Reconnects), wl)
		e.Counter("spice_worker_budget_stretches_total", "Re-dials stretched to max backoff by an empty retry budget.", float64(st.BudgetStretches), wl)
		e.Gauge("spice_worker_slots", "Configured concurrent job slots.", float64(maxInt(w.Slots, 1)), wl)
	})
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mdStepSampleEvery is the step-latency sampling stride: 1 in 64 steps
// is timed. Dense enough that a few seconds of simulation fills the
// histogram, sparse enough that two clock reads per sample vanish next
// to a force evaluation.
const mdStepSampleEvery = 64

// InstrumentEngine installs the sampled md-layer observers on eng:
// every 64th Step is timed into the spice_md_step_seconds histogram,
// and neighbor-list rebuilds feed spice_md_neighbor_rebuilds_total and
// the spice_md_neighbor_pairs gauge. All observer work is atomics-only,
// so the force loop stays allocation-free; engines are transient (one
// per job), so the instruments aggregate across every engine wired to
// the same registry. nil reg or eng is a no-op.
func InstrumentEngine(reg *obs.Registry, eng *md.Engine) {
	if reg == nil || eng == nil {
		return
	}
	// 1 µs … ~4 s in ×4 decades: CG demo systems step in the tens of
	// microseconds, production-scale ones in the tens of milliseconds.
	hist := reg.Histogram("spice_md_step_seconds",
		"Sampled MD step wall-clock latency (1-in-64 steps).",
		obs.ExpBuckets(1e-6, 4, 12))
	rebuilds := reg.Counter("spice_md_neighbor_rebuilds_total",
		"Neighbor-list rebuilds across all engines on this process.")
	pairs := reg.Gauge("spice_md_neighbor_pairs",
		"Pair count emitted by the most recent neighbor-list rebuild.")
	eng.SetStepObserver(mdStepSampleEvery, func(d time.Duration) { hist.Observe(d.Seconds()) })
	eng.SetNeighborObserver(func(n int) {
		rebuilds.Inc()
		pairs.Set(float64(n))
	})
}

// InstrumentBatch installs the md-layer observers on every replica of an
// ensemble batch, labeling the per-replica series with a "replica" label
// so obs coverage matches the per-engine path: sampled step latencies
// share the spice_md_step_seconds histogram, while rebuild counts and
// pair gauges fan out per replica through vecs. nil reg or b is a no-op.
func InstrumentBatch(reg *obs.Registry, b *md.Batch) {
	if reg == nil || b == nil {
		return
	}
	hist := reg.Histogram("spice_md_step_seconds",
		"Sampled MD step wall-clock latency (1-in-64 steps).",
		obs.ExpBuckets(1e-6, 4, 12))
	rebuilds := reg.CounterVec("spice_md_batch_neighbor_rebuilds_total",
		"Neighbor-list rebuilds per batch replica.", "replica")
	pairs := reg.GaugeVec("spice_md_batch_neighbor_pairs",
		"Pair count from the most recent rebuild, per batch replica.", "replica")
	// Resolve the labeled instruments up front: observer callbacks then
	// touch only atomics, keeping the batch step loop allocation-free.
	rc := make([]*obs.Counter, b.Len())
	pg := make([]*obs.Gauge, b.Len())
	for r := 0; r < b.Len(); r++ {
		lbl := strconv.Itoa(r)
		rc[r] = rebuilds.With(lbl)
		pg[r] = pairs.With(lbl)
	}
	b.SetStepObserver(mdStepSampleEvery, func(_ int, d time.Duration) { hist.Observe(d.Seconds()) })
	b.SetNeighborObserver(func(r, n int) {
		rc[r].Inc()
		pg[r].Set(float64(n))
	})
}
