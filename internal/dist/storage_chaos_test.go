package dist

// Disk-fault chaos tests for the journal's durable-storage hardening:
// the compaction kill-point sweep (a fault injected at every mutating
// operation inside compact() must leave replay state-identical), the
// snapshot+log replay edge cases, the bounded-log guarantee under a
// live campaign, and the degraded-storage end-to-end drill (persistent
// ENOSPC mid-campaign, msgRetry to the workers, recovery when the
// faults clear, bit-identical results throughout).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/faultfs"
	"spice/internal/trace"
)

// chaosWorkLog fabricates a small deterministic work log.
func chaosWorkLog(seed uint64) *trace.WorkLog {
	wl := &trace.WorkLog{Kappa: 100, Velocity: 800, Seed: seed}
	for i := 0; i < 4; i++ {
		wl.Samples = append(wl.Samples, trace.WorkSample{
			Lambda: float64(i), Z: float64(i) + 0.5, Work: float64(seed) + float64(i)*0.25,
		})
	}
	return wl
}

// seedChaosJournal builds a journal dir with realistic shape: a first
// batch of records, one compaction (so the sweep exercises the
// rename-over-existing-snapshot path), then a second batch left in the
// log. Both campaigns carry leases, done logs and fails.
func seedChaosJournal(t *testing.T, dir string) {
	t.Helper()
	jn, _, err := openJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	specA := json.RawMessage(`{"kappas":[100],"velocities":[800],"replicas":2}`)
	specB := json.RawMessage(`{"kappas":[300],"velocities":[1600],"replicas":1}`)
	batch1 := []*jrec{
		{T: jCampaign, Camp: "campA", Spec: specA, Tag: &CampaignTag{Tenant: "alice", Priority: 2, Name: "a"}},
		{T: jLease, Camp: "campA", Job: "j1", Worker: "w0", Site: "s0", Attempt: 1},
		{T: jCkpt, Camp: "campA", Job: "j1", Attempt: 1},
		{T: jDone, Camp: "campA", Job: "j1", Log: chaosWorkLog(7)},
		{T: jLease, Camp: "campA", Job: "j2", Worker: "w1", Site: "s1", Attempt: 1},
		{T: jFail, Camp: "campA", Job: "j2", Err: "boom"},
	}
	batch2 := []*jrec{
		{T: jLease, Camp: "campA", Job: "j2", Worker: "w0", Attempt: 2},
		{T: jCampaign, Camp: "campB", Spec: specB},
		{T: jLease, Camp: "campB", Job: "j1", Worker: "w1", Attempt: 1},
		{T: jFail, Camp: "campB", Job: "j1", Err: "flaky"},
		{T: jFail, Camp: "campB", Job: "j1", Err: "flaky again"},
		{T: jDone, Camp: "campB", Job: "j1", Log: chaosWorkLog(9)},
	}
	for i, r := range batch1 {
		if err := jn.append(r, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.compact(); err != nil {
		t.Fatal(err)
	}
	for _, r := range batch2 {
		if err := jn.append(r, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}
}

// foldFingerprint replays snapshot + log and serializes the folded
// campaign state deterministically (JSON maps marshal with sorted
// keys), so two dirs with identical logical state compare equal.
func foldFingerprint(t *testing.T, dir string) string {
	t.Helper()
	rep, err := replayJournalState(faultfs.OS, dir)
	if err != nil {
		t.Fatalf("replay of %s: %v", dir, err)
	}
	out := make(map[string]any, len(rep.campaigns))
	for key, c := range rep.campaigns {
		out[key] = map[string]any{
			"spec":     string(c.specJSON),
			"tag":      c.tag,
			"done":     c.done,
			"attempts": c.attempts,
			"workers":  c.workers,
			"fails":    c.fails,
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// copyJournalDir clones the flat files of a journal state dir.
func copyJournalDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactionKillPointSweep injects a fault at EVERY mutating
// filesystem operation inside compact() in turn and proves that no
// kill point can corrupt the journal: the replayed state after the
// failed compaction is bit-identical to the pre-compaction state, and
// the journal reopens and accepts appends.
func TestCompactionKillPointSweep(t *testing.T) {
	ref := t.TempDir()
	seedChaosJournal(t, ref)
	want := foldFingerprint(t, ref)

	// Dry run: count the mutating ops a fault-free compaction performs,
	// and confirm it is itself state-preserving.
	probe := t.TempDir()
	copyJournalDir(t, ref, probe)
	inj := faultfs.NewInjector(nil)
	jn, _, err := openJournal(inj, probe)
	if err != nil {
		t.Fatal(err)
	}
	before := inj.Ops()
	if err := jn.compact(); err != nil {
		t.Fatal(err)
	}
	steps := inj.Ops() - before
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}
	if got := foldFingerprint(t, probe); got != want {
		t.Fatal("fault-free compaction changed the folded state")
	}
	if steps < 5 {
		t.Fatalf("compaction took only %d mutating ops; sweep would prove nothing", steps)
	}

	for k := int64(1); k <= steps; k++ {
		dir := t.TempDir()
		copyJournalDir(t, ref, dir)
		inj := faultfs.NewInjector(nil)
		jn, _, err := openJournal(inj, dir)
		if err != nil {
			t.Fatalf("kill point %d: open: %v", k, err)
		}
		inj.FailAt(k, faultfs.EIO)
		cerr := jn.compact()
		_ = jn.close()
		if inj.Faults() != 1 {
			t.Fatalf("kill point %d: delivered %d faults, want 1", k, inj.Faults())
		}
		if got := foldFingerprint(t, dir); got != want {
			t.Fatalf("kill point %d (compact err %v): replayed state diverged", k, cerr)
		}
		// The survivor must reopen cleanly and take new appends.
		jn2, _, err := openJournal(nil, dir)
		if err != nil {
			t.Fatalf("kill point %d: reopen: %v", k, err)
		}
		if err := jn2.append(&jrec{T: jNoop}, true); err != nil {
			t.Fatalf("kill point %d: append after recovery: %v", k, err)
		}
		if err := jn2.close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalReplaySnapshotEmptyLog pins the post-compaction steady
// state: all state in the snapshot, a zero-length (truncated) log, and
// replay recovering everything.
func TestJournalReplaySnapshotEmptyLog(t *testing.T) {
	dir := t.TempDir()
	seedChaosJournal(t, dir)
	want := foldFingerprint(t, dir)

	jn, _, err := openJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.compact(); err != nil {
		t.Fatal(err)
	}
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("log not truncated after compaction: %d bytes", fi.Size())
	}
	if got := foldFingerprint(t, dir); got != want {
		t.Fatal("snapshot + empty log replayed differently from snapshot + log")
	}
	jn2, rep, err := openJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.close()
	if rep.tornErr != nil || len(rep.campaigns) != 2 {
		t.Fatalf("reopen over empty log: torn=%v campaigns=%d", rep.tornErr, len(rep.campaigns))
	}
}

// TestJournalReplaySnapshotTornLog tears the log's final record behind
// an intact snapshot: replay must fold snapshot + the clean log prefix
// and report the torn tail, exactly as if the snapshot were absent.
func TestJournalReplaySnapshotTornLog(t *testing.T) {
	dir := t.TempDir()
	seedChaosJournal(t, dir)

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	scan, err := trace.ScanRecords(bytes.NewReader(data))
	if err != nil || scan.TailErr != nil {
		t.Fatalf("reference log unreadable: %v / %v", err, scan.TailErr)
	}
	if len(scan.Records) < 2 {
		t.Fatalf("log has only %d records", len(scan.Records))
	}
	lastStart := int64(len(data)) - trace.FramedLen(len(scan.Records[len(scan.Records)-1]))

	// Reference: the same dir with the last record cleanly absent.
	refDir := t.TempDir()
	copyJournalDir(t, dir, refDir)
	if err := os.Truncate(journalPath(refDir), lastStart); err != nil {
		t.Fatal(err)
	}
	want := foldFingerprint(t, refDir)

	// Tear mid-record (3 bytes into the final frame) and recover.
	if err := os.Truncate(journalPath(dir), lastStart+3); err != nil {
		t.Fatal(err)
	}
	jn, rep, err := openJournal(nil, dir)
	if err != nil {
		t.Fatalf("recovery over snapshot+torn log: %v", err)
	}
	if !errors.Is(rep.tornErr, trace.ErrTruncated) {
		t.Fatalf("tornErr = %v, want ErrTruncated", rep.tornErr)
	}
	if rep.tornBytes != 3 {
		t.Fatalf("tornBytes = %d, want 3", rep.tornBytes)
	}
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}
	if got := foldFingerprint(t, dir); got != want {
		t.Fatal("snapshot + torn log did not replay to snapshot + clean prefix")
	}
}

// TestCoordinatorCompactionBoundedLiveCampaign runs a real campaign
// with an aggressively small compaction threshold: the journal — which
// grew monotonically before compaction existed — must stay bounded,
// the results must stay bit-identical to a local run, and a restarted
// coordinator must replay the compacted state (snapshot + log) to
// instant completion.
func TestCoordinatorCompactionBoundedLiveCampaign(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)
	stateDir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 2048
	co := &Coordinator{
		Listener:     ln,
		System:       json.RawMessage(`{"beads":3}`),
		LeaseTTL:     2 * time.Second,
		StateDir:     stateDir,
		CompactBytes: threshold,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, func(i int, w *Worker) { w.CheckpointEvery = 1 })

	got, err := co.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	st := co.Stats()
	if st.Compactions < 1 {
		t.Fatalf("stats.Compactions = %d, want >= 1", st.Compactions)
	}
	// Bounded: the log can exceed the threshold by at most the records
	// appended since the last compaction check — one oversized done
	// record plus change, never the whole campaign history.
	if st.JournalBytes > threshold+16384 {
		t.Fatalf("journal.log = %d bytes, not bounded near the %d threshold", st.JournalBytes, threshold)
	}
	cancel()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the compacted state: every job replays done, the
	// campaign completes with no workers at all, bit-identically.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co2 := &Coordinator{
		Listener: ln2,
		System:   json.RawMessage(`{"beads":3}`),
		LeaseTTL: 2 * time.Second,
		StateDir: stateDir,
	}
	t.Cleanup(func() { _ = co2.Close() })
	got2, err := co2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got2)
	if st2 := co2.Stats(); st2.Restarts != 1 || st2.ReplayedRecords == 0 {
		t.Fatalf("restart did not replay compacted state: %+v", st2)
	}
}

// TestStorageDegradedRecovery is the end-to-end degradation drill: the
// coordinator's disk dies mid-campaign (persistent ENOSPC on every
// journal and spool operation), the coordinator degrades instead of
// crashing, workers with finished results are told msgRetry (never
// acked-and-dropped), and when the disk comes back the janitor's probe
// restores service and the campaign completes bit-identically.
func TestStorageDegradedRecovery(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	inj := faultfs.NewInjector(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{
		Listener:       ln,
		System:         json.RawMessage(`{"beads":3}`),
		LeaseTTL:       time.Second,
		RetryBase:      10 * time.Millisecond,
		StateDir:       t.TempDir(),
		FS:             inj,
		StorageRetries: -1, // degrade on the first failure; no in-line retries
	}
	t.Cleanup(func() { _ = co.Close() })

	type runResult struct {
		logs map[campaign.Combo][]*trace.WorkLog
		err  error
	}
	resultCh := make(chan runResult, 1)
	go func() {
		logs, err := co.Run(spec)
		resultCh <- runResult{logs: logs, err: err}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 1, func(i int, w *Worker) {
		w.CheckpointEvery = 1
		w.Throttle = 10 * time.Millisecond
	})

	// Let the campaign make real progress, then kill the disk.
	deadline := time.Now().Add(30 * time.Second)
	for co.Stats().Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	inj.SetStuck(faultfs.ENOSPC)
	for !co.Stats().StorageDegraded {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never entered the degraded storage state")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hold the fault long enough that at least one finished result hits
	// the msgRetry path, then clear it and wait for the probe.
	time.Sleep(300 * time.Millisecond)
	inj.Clear()
	for co.Stats().StorageDegraded {
		if time.Now().After(deadline) {
			t.Fatal("coordinator never recovered after faults cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case r := <-resultCh:
		if r.err != nil {
			t.Fatalf("campaign failed across the degraded spell: %v", r.err)
		}
		requireBitIdentical(t, want, r.logs)
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish after storage recovery")
	}

	st := co.Stats()
	if st.StorageDegradations < 1 || st.StorageRecoveries < 1 {
		t.Fatalf("degradation cycle not recorded: %+v", st)
	}
	if st.StorageErrors < 1 {
		t.Fatalf("stats.StorageErrors = %d, want >= 1", st.StorageErrors)
	}
}
