package dist

// Unit tests for the coordinator's overload-protection layer: bounded
// send queues with slow-consumer eviction (and the lease-reattach
// recovery path), the global in-flight request cap with msgNext
// shedding, heartbeat coalescing under load, and the adaptive wait
// hints that scale an idle fleet's poll interval with its own size.

import (
	"context"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/trace"
)

func singleJobSpec() campaign.Spec {
	return campaign.Spec{
		Kappas:     []float64{100},
		Velocities: []float64{800},
		Replicas:   1,
		Distance:   3,
		Seed:       21,
	}
}

// blockWrites is a WrapConn shim that parks coordinator→worker writes
// while blocked is set, releasing them when release is closed — the
// deterministic stand-in for a worker whose receive path stopped
// draining (full socket buffers, wedged process) while its send path
// still delivers requests.
type blockWrites struct {
	net.Conn
	blocked *atomic.Bool
	release chan struct{}
}

func (b *blockWrites) Write(p []byte) (int, error) {
	if b.blocked.Load() {
		<-b.release
	}
	return b.Conn.Write(p)
}

// TestSlowConsumerEvictionAndLeaseReattach pins the eviction contract
// end to end: a connection that stops draining responses is evicted
// once its bounded send queue fills, its lease survives, the worker's
// next connection re-attaches the lease with a heartbeat (an adoption,
// not a retry), and the campaign completes bit-identically — the
// eviction is invisible in the science.
func TestSlowConsumerEvictionAndLeaseReattach(t *testing.T) {
	spec := singleJobSpec()
	want := localBaseline(t, spec)

	var blocked atomic.Bool
	release := make(chan struct{})
	co := newCoordinator(t)
	co.SendQueue = 1
	co.WrapConn = func(c net.Conn) net.Conn {
		return &blockWrites{Conn: c, blocked: &blocked, release: release}
	}

	done := make(chan struct{})
	var logs map[campaign.Combo][]*trace.WorkLog
	var runErr error
	go func() {
		defer close(done)
		logs, runErr = co.Run(spec)
	}()

	addr := co.Listener.Addr().String()
	c1 := dialTestClient(t, addr, "storm-w")
	var assign *response
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := c1.rt(&request{Type: msgNext})
		if resp.Type == msgAssign {
			assign = resp
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never assigned the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	jobID, attempt := assign.Job.ID, assign.Job.Attempt

	// Stop draining responses and pipeline three beats: the first's
	// reply parks the writer, the second fills the queue of one, the
	// third finds it full — eviction, not blocking.
	blocked.Store(true)
	for i := 0; i < 3; i++ {
		if err := c1.enc.Encode(&request{Type: msgBeat, JobID: jobID, Attempt: attempt}); err != nil {
			t.Fatalf("beat %d: %v", i, err)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for co.Stats().SlowConsumerEvictions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	blocked.Store(false)
	close(release) // let the parked writer run into the closed conn and exit

	st := co.Stats()
	if st.SlowConsumerEvictions != 1 {
		t.Fatalf("SlowConsumerEvictions = %d, want 1", st.SlowConsumerEvictions)
	}
	if st.Disconnects != 0 {
		t.Fatalf("eviction revoked the lease: Disconnects = %d, want 0", st.Disconnects)
	}

	// The same worker reconnects and beats: the surviving lease must
	// re-attach (no abandon, no requeue), and the pull finishes on the
	// new pipe.
	c2 := dialTestClient(t, addr, "storm-w")
	if resp := c2.rt(&request{Type: msgBeat, JobID: jobID, Attempt: attempt}); resp.Type != msgOK || resp.Err != "" {
		t.Fatalf("reattach beat answered %q (err %q), want clean ok", resp.Type, resp.Err)
	}
	if got := co.Stats().Adoptions; got < 1 {
		t.Fatalf("Adoptions = %d after reattach, want >= 1", got)
	}
	log := pullLog(t, assign)
	if resp := c2.rt(&request{Type: msgResult, JobID: jobID, Attempt: attempt, Log: log}); resp.Type != msgOK || resp.Err != "" {
		t.Fatalf("result answered %q (err %q)", resp.Type, resp.Err)
	}

	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	requireBitIdentical(t, want, logs)
	if retries := co.Stats().Retries; retries != 0 {
		t.Fatalf("eviction caused %d retries, want 0 (lease survived)", retries)
	}
}

// TestInflightShedOverLimit pins the in-flight cap AND the property
// that makes it an overload valve: shedding never touches the
// scheduler lock. The test holds co.mu so two polls park inside
// assign, then proves a third poll is answered (shed, jittered hint)
// while the lock is still held.
func TestInflightShedOverLimit(t *testing.T) {
	co := newCoordinator(t)
	co.MaxInflight = 2
	co.mu.Lock()
	co.startLocked()
	co.mu.Unlock()
	addr := co.Listener.Addr().String()

	a := dialTestClient(t, addr, "pa")
	b := dialTestClient(t, addr, "pb")
	c := dialTestClient(t, addr, "pc")

	// Stall the scheduler: the first two polls enter assign and block
	// on the mutex, pinning the in-flight gauge at the cap.
	co.mu.Lock()
	if err := a.enc.Encode(&request{Type: msgNext}); err != nil {
		t.Fatal(err)
	}
	if err := b.enc.Encode(&request{Type: msgNext}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for co.inflight.Load() < 2 {
		if time.Now().After(deadline) {
			co.mu.Unlock()
			t.Fatalf("in-flight gauge stuck at %d", co.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// The third poll is over the cap: it must come back shed — while
	// the scheduler lock is still held, which is only possible if the
	// shed path never takes it.
	shed := c.rt(&request{Type: msgNext})
	if shed.Type != msgWait || shed.DelayMs < 1 {
		t.Fatalf("over-cap poll answered %+v, want jittered wait", shed)
	}
	if got := co.shed.Load(); got != 1 {
		co.mu.Unlock()
		t.Fatalf("shed counter = %d, want 1", got)
	}
	co.mu.Unlock()

	// The parked polls drain normally once the scheduler frees up.
	for _, cl := range []*testClient{a, b} {
		var resp response
		if err := cl.dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Type != msgWait || resp.DelayMs < 1 {
			t.Fatalf("parked poll answered %+v, want wait", resp)
		}
	}
	if st := co.Stats(); st.RequestsShed != 1 || st.InflightRequests != 0 {
		t.Fatalf("final stats: shed %d inflight %d, want 1 and 0", st.RequestsShed, st.InflightRequests)
	}
}

// TestHeartbeatCoalescingUnderLoad pins the coalescing fast path: with
// the coordinator at half its in-flight cap, a repeat heartbeat inside
// the coalesce window is answered from connection-local state, and the
// campaign still completes bit-identically.
func TestHeartbeatCoalescingUnderLoad(t *testing.T) {
	spec := singleJobSpec()
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	co.MaxInflight = 2 // one in-flight request counts as "half loaded"

	done := make(chan struct{})
	var logs map[campaign.Combo][]*trace.WorkLog
	var runErr error
	go func() {
		defer close(done)
		logs, runErr = co.Run(spec)
	}()

	c := dialTestClient(t, co.Listener.Addr().String(), "beater")
	var assign *response
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := c.rt(&request{Type: msgNext})
		if resp.Type == msgAssign {
			assign = resp
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never assigned the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	jobID, attempt := assign.Job.ID, assign.Job.Attempt

	// First beat goes through the scheduler and records the mark; the
	// immediate twin must be coalesced.
	if resp := c.rt(&request{Type: msgBeat, JobID: jobID, Attempt: attempt}); resp.Type != msgOK {
		t.Fatalf("first beat answered %q", resp.Type)
	}
	if resp := c.rt(&request{Type: msgBeat, JobID: jobID, Attempt: attempt}); resp.Type != msgOK {
		t.Fatalf("second beat answered %q", resp.Type)
	}
	if got := co.Stats().HeartbeatsCoalesced; got < 1 {
		t.Fatalf("HeartbeatsCoalesced = %d, want >= 1", got)
	}

	log := pullLog(t, assign)
	if resp := c.rt(&request{Type: msgResult, JobID: jobID, Attempt: attempt, Log: log}); resp.Type != msgOK || resp.Err != "" {
		t.Fatalf("result answered %q (err %q)", resp.Type, resp.Err)
	}
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	requireBitIdentical(t, want, logs)
}

// TestAdaptiveWaitHintScalesWithFleet pins the idle-poll budget: a
// lone idle worker waits about half a lease TTL, a 60-strong idle
// fleet is told to back off further (up to the TTL cap), and
// successive hints to one connection are jittered apart.
func TestAdaptiveWaitHintScalesWithFleet(t *testing.T) {
	co := newCoordinator(t)
	co.LeaseTTL = 200 * time.Millisecond
	co.mu.Lock()
	co.startLocked()
	co.mu.Unlock()
	addr := co.Listener.Addr().String()

	probe := dialTestClient(t, addr, "probe")
	solo := probe.rt(&request{Type: msgNext})
	if solo.Type != msgWait || solo.DelayMs < 1 {
		t.Fatalf("solo idle poll answered %+v", solo)
	}
	// Base leaseTTL/2 = 100ms, jitter [0.5, 1): strictly under 100ms.
	if solo.DelayMs >= 100 {
		t.Fatalf("solo DelayMs = %d, want < 100 (no fleet to scale for)", solo.DelayMs)
	}

	for i := 0; i < 60; i++ {
		dialTestClient(t, addr, "idle")
	}
	deadline := time.Now().Add(5 * time.Second)
	for co.conns.Load() < 61 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d conns registered", co.conns.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// 61 conns × 1s / 200 polls/s = 305ms, capped at the 200ms TTL,
	// jittered down to no less than half: at least 100ms — strictly
	// above anything the solo fleet was told.
	fleet := probe.rt(&request{Type: msgNext})
	if fleet.Type != msgWait {
		t.Fatalf("fleet idle poll answered %q", fleet.Type)
	}
	if fleet.DelayMs < 100 {
		t.Fatalf("fleet DelayMs = %d, want >= 100 (scaled above the solo hint)", fleet.DelayMs)
	}
	if fleet.DelayMs <= solo.DelayMs {
		t.Fatalf("fleet hint %dms not above solo hint %dms", fleet.DelayMs, solo.DelayMs)
	}

	// Jitter: successive hints to the same connection must not repeat
	// into lockstep.
	seen := map[int]bool{fleet.DelayMs: true}
	for i := 0; i < 4; i++ {
		seen[probe.rt(&request{Type: msgNext}).DelayMs] = true
	}
	if len(seen) < 2 {
		t.Fatalf("5 successive wait hints identical: %v", seen)
	}
}

// TestCoordinatorCloseMidCheckpointStream is the shutdown regression:
// Close while a worker is mid-checkpoint-stream must drain cleanly —
// no panic, no wedged writer goroutines — and the process goroutine
// count returns to its baseline once the workers give up.
func TestCoordinatorCloseMidCheckpointStream(t *testing.T) {
	baseline := runtime.NumGoroutine()

	co := newCoordinator(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, func(i int, w *Worker) {
		w.CheckpointEvery = 1
		w.Throttle = 20 * time.Millisecond
	})

	done := make(chan error, 1)
	go func() {
		_, err := co.Run(testSpec())
		done <- err
	}()

	deadline := time.Now().Add(30 * time.Second)
	for co.Stats().Checkpoints < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint ever streamed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := co.Close(); err != nil {
		t.Fatalf("Close mid-checkpoint: %v", err)
	}
	if err := <-done; err == nil {
		t.Fatal("Run returned nil after Close cut the campaign short")
	}
	cancel() // release the workers

	deadline = time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after Close: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
