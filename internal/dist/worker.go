package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spice/internal/backoff"
	"spice/internal/campaign"
	"spice/internal/md"
	"spice/internal/netutil"
	"spice/internal/obs"
	"spice/internal/smd"
	"spice/internal/trace"
	"spice/internal/wire"
)

// BuildFunc constructs the simulation for one job. The system payload
// is the opaque JSON the coordinator was configured with (typically a
// core.SystemConfig); decoding it is the caller's business, which keeps
// dist ignorant of the model layers above md.
type BuildFunc func(system json.RawMessage, c campaign.Combo, seed uint64) (*md.Engine, []int, error)

// errAbandoned aborts a pull whose lease the coordinator revoked.
var errAbandoned = errors.New("dist: lease abandoned")

// fatalError marks a coordinator reply that reconnecting cannot fix
// (e.g. a rejected hello); the transport surfaces it without retrying.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

// Worker executes jobs for a coordinator. Each of its Slots runs an
// independent connection: request a job, pull it with periodic
// checkpoint-carrying heartbeats, report the result, repeat until the
// coordinator drains.
type Worker struct {
	// Name identifies the worker in coordinator stats.
	Name string
	// Site is the federation site this worker belongs to (spiced -site).
	// The coordinator tracks health, runs circuit breakers, and places
	// speculative hedges at site granularity, so every worker on one
	// machine/cluster should share a Site. Empty defaults to Name — an
	// unconfigured worker is its own one-machine site.
	Site string
	// Addr is the coordinator's TCP address.
	Addr string
	// Slots is the number of jobs run concurrently (default 1).
	Slots int
	// Build constructs each job's simulation. Required.
	Build BuildFunc
	// BeatInterval is the heartbeat period (default 200ms). Keep it
	// well under the coordinator's LeaseTTL.
	BeatInterval time.Duration
	// CheckpointEvery is the number of recorded samples between
	// checkpoints streamed to the coordinator (default 8).
	CheckpointEvery int
	// Throttle, if set, sleeps this long at every checkpoint — a test
	// and demo hook that makes jobs slow enough to observe mid-flight.
	Throttle time.Duration
	// Reconnect makes the transport self-healing — daemon semantics.
	// Every request (including an unacknowledged result held in the
	// session's outbox) is retried across re-dials with exponential
	// backoff; the coordinator's (job, attempt) idempotency makes the
	// retransmits safe. A session gives up once it has been failing for
	// longer than ReconnectWindow without a successful hello, so workers
	// don't spin forever after their coordinator is gone for good. Off,
	// the first transport error ends the session with that error.
	Reconnect bool
	// ReconnectWindow bounds consecutive reconnect failures
	// (default 10s).
	ReconnectWindow time.Duration
	// ReconnectBackoffMax caps the exponential re-dial backoff
	// (default 1s; the first retry waits half a BeatInterval).
	ReconnectBackoffMax time.Duration
	// RetryBudget, if set, bounds the aggregate reconnect rate of every
	// session sharing it (fleet safety): each re-dial spends one token,
	// and a session that finds the bucket empty stretches to
	// ReconnectBackoffMax instead of joining the reconnect wave. Nil
	// means unlimited.
	RetryBudget *backoff.Budget
	// Dial overrides the transport (tests wrap QoS shims here).
	// Default: net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// WireVersion is the newest wire protocol version offered on hello:
	// 0 pins the legacy JSON-lines transport, 1 offers binary framing.
	// The coordinator grants min(its own, offered), so any worker talks
	// to any coordinator. Direct struct construction defaults to 0
	// (legacy behavior); Config.Defaults() enables the newest version.
	WireVersion int
	// Compression asks for lz block compression on bulk payloads over
	// v1+ connections.
	Compression bool
	// DeltaCheckpoints sends each progress checkpoint as a delta against
	// the last acknowledged one over v1+ connections; the coordinator
	// folds them back into complete images before spooling.
	DeltaCheckpoints bool
	// IOTimeout arms a fresh read/write deadline before every I/O call on
	// the coordinator connection (netutil.WithDeadlines), so a half-open
	// peer surfaces as a timeout the Reconnect machinery can heal instead
	// of a read blocked forever. 0 defaults to 30s; negative disables.
	IOTimeout time.Duration
	// Events, if set, receives the worker-side structured event stream
	// (job starts/results, reconnects). Nil disables.
	Events *obs.EventLog

	// Execution counters, always maintained (atomic, negligible cost);
	// snapshot with WorkerStats, scrape via RegisterMetrics.
	m workerMetrics
	// substrates caches one static-substrate neighbor grid per system
	// payload: when a worker leases many jobs of the same campaign (the
	// common case — one coordinator, one system), every engine it builds
	// shares the grid instead of re-binning the fixed pore/membrane beads
	// per job. Ineligible systems (open boundaries, no fixed atoms) are
	// negative-cached. Attachment never changes a trajectory, so results
	// stay bit-identical to unshared execution.
	substrates md.SubstrateShare
	// reg is the registry handed to RegisterMetrics; when set, every
	// engine this worker builds gets the sampled md-layer observers.
	reg *obs.Registry
}

// workerMetrics is the worker's always-on atomic counter set.
type workerMetrics struct {
	jobsStarted   atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsAbandoned atomic.Int64
	// checkpointsSent counts checkpoints actually put on the wire (the
	// newest-wins buffer may drop marshaled ones that were superseded
	// before a heartbeat fired); checkpointBytes counts the bytes that
	// traveled — post-compression, post-delta — while checkpointRawBytes
	// counts the serialized documents they reconstruct to. The ratio is
	// the wire win. checkpointDeltas counts how many went as deltas.
	checkpointsSent    atomic.Int64
	checkpointBytes    atomic.Int64
	checkpointRawBytes atomic.Int64
	checkpointDeltas   atomic.Int64
	steps              atomic.Int64
	reconnects         atomic.Int64
	budgetStretches    atomic.Int64
}

// WorkerStats snapshots the worker's execution counters.
func (w *Worker) WorkerStats() WorkerStats {
	return WorkerStats{
		JobsStarted:        w.m.jobsStarted.Load(),
		JobsDone:           w.m.jobsDone.Load(),
		JobsFailed:         w.m.jobsFailed.Load(),
		JobsAbandoned:      w.m.jobsAbandoned.Load(),
		CheckpointsSent:    w.m.checkpointsSent.Load(),
		CheckpointBytes:    w.m.checkpointBytes.Load(),
		CheckpointRawBytes: w.m.checkpointRawBytes.Load(),
		CheckpointDeltas:   w.m.checkpointDeltas.Load(),
		Steps:              w.m.steps.Load(),
		Reconnects:         w.m.reconnects.Load(),
		BudgetStretches:    w.m.budgetStretches.Load(),
	}
}

// wireVersion clamps the offered version into the known range.
func (w *Worker) wireVersion() int {
	if w.WireVersion <= 0 {
		return wire.V0
	}
	if w.WireVersion > wire.MaxVersion {
		return wire.MaxVersion
	}
	return w.WireVersion
}

func (w *Worker) beatInterval() time.Duration {
	if w.BeatInterval > 0 {
		return w.BeatInterval
	}
	return 200 * time.Millisecond
}

func (w *Worker) checkpointEvery() int {
	if w.CheckpointEvery > 0 {
		return w.CheckpointEvery
	}
	return 8
}

func (w *Worker) reconnectWindow() time.Duration {
	if w.ReconnectWindow > 0 {
		return w.ReconnectWindow
	}
	return 10 * time.Second
}

func (w *Worker) reconnectBackoffMax() time.Duration {
	if w.ReconnectBackoffMax > 0 {
		return w.ReconnectBackoffMax
	}
	return time.Second
}

func (w *Worker) site() string {
	if w.Site != "" {
		return w.Site
	}
	return w.Name
}

func (w *Worker) ioTimeout() time.Duration {
	switch {
	case w.IOTimeout > 0:
		return w.IOTimeout
	case w.IOTimeout < 0:
		return 0
	default:
		return 30 * time.Second
	}
}

func (w *Worker) dial() (net.Conn, error) {
	var (
		c   net.Conn
		err error
	)
	if w.Dial != nil {
		c, err = w.Dial(w.Addr)
	} else {
		c, err = net.Dial("tcp", w.Addr)
	}
	if err != nil {
		return nil, err
	}
	// Deadlines wrap outermost — any Dial shim (netsim gates in tests)
	// sits inside, so injected latency counts against the watchdog
	// exactly like real network stalls would.
	if to := w.ioTimeout(); to > 0 {
		c = netutil.WithDeadlines(c, to, to)
	}
	return c, nil
}

// Run works the coordinator's queue until it drains or ctx is
// cancelled. It returns nil on a clean drain.
func (w *Worker) Run(ctx context.Context) error {
	if w.Build == nil {
		return errors.New("dist: worker needs a Build function")
	}
	slots := w.Slots
	if slots < 1 {
		slots = 1
	}
	errs := make([]error, slots)
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.runSession(ctx, fmt.Sprintf("%s/%d", w.Name, i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rtConn is one session's transport: a negotiated connection that
// (with Reconnect) transparently re-dials and re-hellos after failures.
// Retrying a request across a reconnect may deliver it twice — once on
// the dying conn, once on the fresh one — which is exactly the
// duplicate-delivery case the coordinator's idempotency rules absorb.
// Each hello renegotiates the wire version, so a reconnect may land on
// a different (older) coordinator and downgrade the codec mid-session.
type rtConn struct {
	w    *Worker
	name string
	bo   *backoff.Decorrelated // re-dial delays: decorrelated jitter, per-session seed

	conn     net.Conn
	codec    wire.Codec
	wire     int           // negotiated version of the current conn
	delta    bool          // coordinator granted delta checkpoints
	comp     bool          // coordinator granted payload compression
	connDone chan struct{} // stops the ctx watcher for the current conn

	system       json.RawMessage // coordinator's payload from the last hello
	failingSince time.Time       // first failure of the current outage; zero when healthy
	connected    bool            // a hello has succeeded before (re-dials count as reconnects)
}

// sessionSeq salts each session's backoff seed so sessions sharing a
// name (common in tests and clone fleets) still jitter independently.
var sessionSeq atomic.Uint64

func newRTConn(w *Worker, name string) *rtConn {
	base := w.beatInterval() / 2
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	seed := backoff.Seed(name) + sessionSeq.Add(1)*0x9e3779b97f4a7c15
	return &rtConn{
		w:    w,
		name: name,
		bo:   backoff.Policy{Base: base, Max: w.reconnectBackoffMax()}.Decorrelated(seed),
	}
}

// connect dials and performs the hello handshake, installing a watcher
// that closes the conn when ctx is cancelled (unparking blocked I/O).
//
// The hello exchange always travels as one JSON line per direction —
// version discovery cannot require already knowing the version, and an
// old coordinator only speaks JSON lines. The reply is read with a raw
// line read (a json.Decoder would buffer bytes past the value that
// belong to the negotiated codec); both sides then switch codecs at the
// exact byte position after the reply's newline.
func (c *rtConn) connect(ctx context.Context) error {
	conn, err := c.w.dial()
	if err != nil {
		return fmt.Errorf("dist: dial %s: %w", c.w.Addr, err)
	}
	offer := &request{Type: msgHello, Name: c.name, Site: c.w.site(),
		Wire: c.w.wireVersion(), NoDelta: !c.w.DeltaCheckpoints, NoComp: !c.w.Compression}
	line, err := json.Marshal(offer)
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello: %w", err)
	}
	if _, err := conn.Write(append(line, '\n')); err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello: %w", err)
	}
	br := bufio.NewReader(conn)
	reply, err := br.ReadBytes('\n')
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello: %w", err)
	}
	var hello response
	if err := json.Unmarshal(reply, &hello); err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello: %w", err)
	}
	if hello.Err != "" {
		conn.Close()
		return fatalError{errors.New(hello.Err)}
	}
	ver := hello.Wire
	if ver > offer.Wire || ver > wire.MaxVersion || ver < 0 {
		// A grant we never offered or cannot speak: fall back to the one
		// version everything speaks rather than fail the fleet.
		ver = wire.V0
	}
	system, err := hello.System.Resolve(nil)
	if err != nil {
		conn.Close()
		return fmt.Errorf("dist: hello system payload: %w", err)
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()
	c.conn, c.connDone = conn, done
	c.codec = wire.NewCodec(ver, br, conn, hello.Comp)
	c.wire, c.delta, c.comp = ver, hello.Delta && ver >= wire.V1, hello.Comp && ver >= wire.V1
	c.system = system
	c.failingSince = time.Time{}
	c.bo.Reset()
	if c.connected {
		c.w.m.reconnects.Add(1)
		c.w.Events.Emit(obs.Event{Name: "worker_reconnected", Worker: c.name, Site: c.w.site()})
	}
	c.connected = true
	return nil
}

// drop discards the current connection (if any).
func (c *rtConn) drop() {
	if c.conn == nil {
		return
	}
	close(c.connDone)
	c.conn.Close()
	c.conn = nil
}

// retry reports whether the transport should keep trying, sleeping the
// shared decorrelated-jitter backoff if so. Each session jitters on its
// own seed, so a fleet severed by one event re-dials spread out instead
// of in lockstep; a session that finds the shared RetryBudget empty
// stretches to the maximum backoff instead of joining the wave.
func (c *rtConn) retry(ctx context.Context) bool {
	if !c.w.Reconnect || ctx.Err() != nil {
		return false
	}
	if c.failingSince.IsZero() {
		c.failingSince = time.Now()
	} else if time.Since(c.failingSince) > c.w.reconnectWindow() {
		return false
	}
	d := c.bo.Next()
	if !c.w.RetryBudget.Spend() {
		d = c.bo.Max()
		c.w.m.budgetStretches.Add(1)
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
	}
	return true
}

// roundTrip sends one request and reads its reply, reconnecting and
// retransmitting as allowed by the worker's Reconnect policy.
func (c *rtConn) roundTrip(ctx context.Context, req *request) (*response, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.conn == nil {
			if err := c.connect(ctx); err != nil {
				var fe fatalError
				if errors.As(err, &fe) {
					return nil, fe.err
				}
				if !c.retry(ctx) {
					return nil, err
				}
				continue
			}
		}
		// A reconnect may have renegotiated down to a connection that
		// cannot carry the checkpoint payload this request was built with
		// (a v0 JSON line cannot frame a delta or compressed block).
		// Degrade the progress to a plain beat — the checkpoint is an
		// optimization, the heartbeat is the contract — and let the caller
		// see the conversion via req.Type so it does not advance its base.
		if req.Type == msgProgress && req.Ckpt != nil && req.Ckpt.Flags != 0 {
			if c.wire < wire.V1 || (req.Ckpt.IsDelta() && !c.delta) {
				req.Type = msgBeat
				req.Ckpt = nil
			}
		}
		if err := c.codec.Encode(req); err != nil {
			c.drop()
			if !c.retry(ctx) {
				return nil, err
			}
			continue
		}
		var resp response
		if err := c.codec.Decode(&resp); err != nil {
			// The request may or may not have been applied; the retry
			// after reconnecting retransmits it and the coordinator
			// dedups by (job, attempt).
			c.drop()
			if !c.retry(ctx) {
				return nil, err
			}
			continue
		}
		return &resp, nil
	}
}

// runSession is one slot's lifetime: keep a transport alive, retransmit
// anything unacknowledged, and work the queue until drained.
func (w *Worker) runSession(ctx context.Context, name string) error {
	c := newRTConn(w, name)
	defer c.drop()
	// outbox holds result/fail lines the coordinator has not yet
	// acknowledged. Any reply (ok, even ok-with-err) acknowledges the
	// line — except retry, the coordinator's degraded-storage answer,
	// which keeps the line queued and backs off; transport errors keep
	// it queued across reconnects.
	var outbox []*request
	for ctx.Err() == nil {
		for len(outbox) > 0 {
			resp, err := c.roundTrip(ctx, outbox[0])
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("dist: reporting %s: %w", outbox[0].JobID, err)
			}
			if resp.Type == msgRetry {
				delay := time.Duration(resp.DelayMs) * time.Millisecond
				if delay <= 0 {
					delay = 50 * time.Millisecond
				}
				select {
				case <-ctx.Done():
					return nil
				case <-time.After(delay):
				}
				continue
			}
			outbox = outbox[1:]
		}
		resp, err := c.roundTrip(ctx, &request{Type: msgNext})
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("dist: next: %w", err)
		}
		switch resp.Type {
		case msgDrained:
			return nil
		case msgWait:
			delay := time.Duration(resp.DelayMs) * time.Millisecond
			if delay <= 0 {
				delay = 10 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(delay):
			}
		case msgAssign:
			if resp.Spec == nil {
				return errors.New("dist: assign without campaign spec")
			}
			unacked, err := w.runJob(ctx, *resp.Spec, c, resp)
			if unacked != nil {
				outbox = append(outbox, unacked)
			}
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
		default:
			return fmt.Errorf("dist: unexpected reply %q to next", resp.Type)
		}
	}
	return nil
}

// ckptPayload chooses a checkpoint's wire form for the connection as
// negotiated right now: delta against the last acknowledged base when
// granted and a base exists, else compressed, else plain JSON.
func (w *Worker) ckptPayload(c *rtConn, base, raw []byte) *wire.Payload {
	if c.wire >= wire.V1 {
		if c.delta && len(base) > 0 {
			return wire.Delta(base, raw)
		}
		if c.comp {
			return wire.Compress(raw)
		}
	}
	return wire.JSONPayload(raw)
}

// runJob executes one assignment, heartbeating while the pull runs in a
// separate goroutine. The connection is only ever touched from this
// goroutine, preserving the strict one-request-one-response framing.
// The finished job's result (or fail) line is returned as unacked for
// the session's outbox rather than sent here, so a coordinator outage
// at the worst moment — result computed, ack never seen — is retried
// until some coordinator acknowledges it.
func (w *Worker) runJob(ctx context.Context, spec campaign.Spec, c *rtConn, assign *response) (unacked *request, _ error) {
	jb := assign.Job
	if jb == nil {
		return nil, errors.New("dist: assign without job")
	}
	task := campaign.Task{Combo: jb.Combo, Seed: jb.Seed, Index: jb.Index}
	system := c.system

	opts := smd.RunOpts{CheckpointEvery: w.checkpointEvery()}
	prevSteps := 0
	// ckptBase is the last checkpoint image the coordinator acknowledged
	// — the delta base. A resume image seeds it: the coordinator seeds
	// its side of the pair from the same spooled bytes on grant, so the
	// first progress after a resume can already travel as a delta.
	var ckptBase []byte
	resume, err := assign.Resume.Resolve(nil)
	if err != nil {
		return nil, fmt.Errorf("dist: resume payload for %s: %w", jb.ID, err)
	}
	if len(resume) > 0 {
		var ck smd.PullCheckpoint
		if err := json.Unmarshal(resume, &ck); err != nil {
			return nil, fmt.Errorf("dist: decoding resume checkpoint for %s: %w", jb.ID, err)
		}
		opts.Resume = &ck
		prevSteps = ck.Steps
		ckptBase = resume
	}
	w.m.jobsStarted.Add(1)
	jobEvents := w.Events.Scope(obs.Event{Job: jb.ID, Attempt: jb.Attempt,
		Site: w.site(), Worker: w.Name})
	jobEvents.Emit(obs.Event{Name: "job_started",
		Fields: map[string]any{"resumed": opts.Resume != nil}})

	var abandoned atomic.Bool
	ckptCh := make(chan json.RawMessage, 1)
	opts.OnCheckpoint = func(pc *smd.PullCheckpoint) error {
		if abandoned.Load() || ctx.Err() != nil {
			return errAbandoned
		}
		if w.Throttle > 0 {
			time.Sleep(w.Throttle)
		}
		b, err := json.Marshal(pc)
		if err != nil {
			return err
		}
		if d := pc.Steps - prevSteps; d > 0 {
			// OnCheckpoint runs serially inside one pull, so plain reads
			// of prevSteps are safe; only the shared counters are atomic.
			w.m.steps.Add(int64(d))
			prevSteps = pc.Steps
		}
		// Keep only the newest checkpoint if the heartbeat loop is behind.
		for {
			select {
			case ckptCh <- b:
				return nil
			default:
				select {
				case <-ckptCh:
				default:
				}
			}
		}
	}

	type pullResult struct {
		log *trace.WorkLog
		err error
	}
	resCh := make(chan pullResult, 1)
	go func() {
		log, err := campaign.ExecutePull(spec, task, func(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
			eng, sel, err := w.Build(system, c, seed)
			if err == nil {
				w.substrates.Attach(string(system), eng)
				InstrumentEngine(w.reg, eng)
			}
			return eng, sel, err
		}, opts)
		resCh <- pullResult{log: log, err: err}
	}()

	beat := time.NewTicker(w.beatInterval())
	defer beat.Stop()
	for {
		select {
		case res := <-resCh:
			if errors.Is(res.err, errAbandoned) {
				w.m.jobsAbandoned.Add(1)
				jobEvents.Emit(obs.Event{Name: "job_abandoned"})
				return nil, nil
			}
			req := &request{Type: msgResult, JobID: jb.ID, Attempt: jb.Attempt, Log: res.log}
			if res.err != nil {
				req = &request{Type: msgFail, JobID: jb.ID, Attempt: jb.Attempt, Err: res.err.Error()}
				w.m.jobsFailed.Add(1)
				jobEvents.Emit(obs.Event{Name: "job_failed", Fields: map[string]any{"error": res.err.Error()}})
			} else {
				w.m.jobsDone.Add(1)
				jobEvents.Emit(obs.Event{Name: "job_done"})
			}
			return req, nil
		case <-beat.C:
			req := &request{Type: msgBeat, JobID: jb.ID, Attempt: jb.Attempt}
			var raw []byte
			select {
			case b := <-ckptCh:
				raw = b
				req = &request{Type: msgProgress, JobID: jb.ID, Attempt: jb.Attempt,
					Ckpt: w.ckptPayload(c, ckptBase, b)}
			default:
			}
			// With Reconnect on, this round-trip rides out coordinator
			// downtime internally (re-dial + retransmit) while the pull
			// keeps computing; a restarted coordinator adopts the lease
			// when the beat lands.
			resp, err := c.roundTrip(ctx, req)
			if err != nil {
				// Transport gone for good: stop the pull before
				// surfacing the error so the goroutine doesn't linger.
				abandoned.Store(true)
				<-resCh
				if ctx.Err() != nil {
					return nil, nil
				}
				return nil, fmt.Errorf("dist: heartbeat %s: %w", jb.ID, err)
			}
			// Advance the delta base only for a checkpoint that actually
			// traveled (roundTrip degrades a progress built for a richer
			// connection back to a beat after a downgrading reconnect) and
			// was cleanly accepted. NeedFull means the coordinator lost our
			// base (restart, adoption, lost ack): the next one goes full.
			if req.Type == msgProgress && raw != nil {
				w.m.checkpointsSent.Add(1)
				w.m.checkpointRawBytes.Add(int64(len(raw)))
				w.m.checkpointBytes.Add(int64(req.Ckpt.WireLen()))
				if req.Ckpt.IsDelta() {
					w.m.checkpointDeltas.Add(1)
				}
				if resp.NeedFull {
					ckptBase = nil
				} else if resp.Type == msgOK && resp.Err == "" {
					ckptBase = raw
				}
			}
			if resp.Type == msgAbandon {
				abandoned.Store(true)
				<-resCh
				w.m.jobsAbandoned.Add(1)
				jobEvents.Emit(obs.Event{Name: "job_abandoned",
					Fields: map[string]any{"reason": "coordinator"}})
				return nil, nil
			}
		case <-ctx.Done():
			abandoned.Store(true)
			<-resCh
			return nil, nil
		}
	}
}
