package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spice/internal/campaign"
	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/trace"
)

// BuildFunc constructs the simulation for one job. The system payload
// is the opaque JSON the coordinator was configured with (typically a
// core.SystemConfig); decoding it is the caller's business, which keeps
// dist ignorant of the model layers above md.
type BuildFunc func(system json.RawMessage, c campaign.Combo, seed uint64) (*md.Engine, []int, error)

// errAbandoned aborts a pull whose lease the coordinator revoked.
var errAbandoned = errors.New("dist: lease abandoned")

// Worker executes jobs for a coordinator. Each of its Slots runs an
// independent connection: request a job, pull it with periodic
// checkpoint-carrying heartbeats, report the result, repeat until the
// coordinator drains.
type Worker struct {
	// Name identifies the worker in coordinator stats.
	Name string
	// Addr is the coordinator's TCP address.
	Addr string
	// Slots is the number of jobs run concurrently (default 1).
	Slots int
	// Build constructs each job's simulation. Required.
	Build BuildFunc
	// BeatInterval is the heartbeat period (default 200ms). Keep it
	// well under the coordinator's LeaseTTL.
	BeatInterval time.Duration
	// CheckpointEvery is the number of recorded samples between
	// checkpoints streamed to the coordinator (default 8).
	CheckpointEvery int
	// Throttle, if set, sleeps this long at every checkpoint — a test
	// and demo hook that makes jobs slow enough to observe mid-flight.
	Throttle time.Duration
	// Reconnect makes sessions re-dial after transport errors — daemon
	// semantics. A session gives up once it has been failing for longer
	// than ReconnectWindow without a successful hello, so workers don't
	// spin forever after their coordinator is gone for good. Off, the
	// first transport error ends the session with that error.
	Reconnect bool
	// ReconnectWindow bounds consecutive reconnect failures
	// (default 10s).
	ReconnectWindow time.Duration
	// Dial overrides the transport (tests wrap QoS shims here).
	// Default: net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
}

func (w *Worker) beatInterval() time.Duration {
	if w.BeatInterval > 0 {
		return w.BeatInterval
	}
	return 200 * time.Millisecond
}

func (w *Worker) checkpointEvery() int {
	if w.CheckpointEvery > 0 {
		return w.CheckpointEvery
	}
	return 8
}

func (w *Worker) dial() (net.Conn, error) {
	if w.Dial != nil {
		return w.Dial(w.Addr)
	}
	return net.Dial("tcp", w.Addr)
}

// Run works the coordinator's queue until it drains or ctx is
// cancelled. It returns nil on a clean drain.
func (w *Worker) Run(ctx context.Context) error {
	if w.Build == nil {
		return errors.New("dist: worker needs a Build function")
	}
	slots := w.Slots
	if slots < 1 {
		slots = 1
	}
	errs := make([]error, slots)
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.runSession(ctx, fmt.Sprintf("%s/%d", w.Name, i))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (w *Worker) reconnectWindow() time.Duration {
	if w.ReconnectWindow > 0 {
		return w.ReconnectWindow
	}
	return 10 * time.Second
}

// runSession is one connection's lifetime: dial, hello, work the queue,
// and (with Reconnect) re-dial after transport hiccups.
func (w *Worker) runSession(ctx context.Context, name string) error {
	var failingSince time.Time
	for {
		connected, err := w.workOnce(ctx, name)
		if err == nil || ctx.Err() != nil {
			return nil
		}
		if !w.Reconnect {
			return err
		}
		if connected {
			failingSince = time.Time{}
		}
		if failingSince.IsZero() {
			failingSince = time.Now()
		} else if time.Since(failingSince) > w.reconnectWindow() {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(w.beatInterval()):
		}
	}
}

// workOnce runs a single connection until drain (nil) or failure. The
// connected result reports whether the hello round-trip succeeded, so
// the reconnect loop can distinguish a live-then-dropped coordinator
// from one that was never there.
func (w *Worker) workOnce(ctx context.Context, name string) (connected bool, _ error) {
	conn, err := w.dial()
	if err != nil {
		return false, fmt.Errorf("dist: dial %s: %w", w.Addr, err)
	}
	defer conn.Close()
	// Unblock any pending read/write when the context is cancelled.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	roundTrip := func(req *request) (*response, error) {
		if err := enc.Encode(req); err != nil {
			return nil, err
		}
		var resp response
		if err := dec.Decode(&resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}

	hello, err := roundTrip(&request{Type: msgHello, Name: name})
	if err != nil {
		return false, fmt.Errorf("dist: hello: %w", err)
	}
	if hello.Err != "" {
		return true, errors.New(hello.Err)
	}
	system := hello.System

	for ctx.Err() == nil {
		resp, err := roundTrip(&request{Type: msgNext})
		if err != nil {
			return true, fmt.Errorf("dist: next: %w", err)
		}
		switch resp.Type {
		case msgDrained:
			return true, nil
		case msgWait:
			delay := time.Duration(resp.DelayMs) * time.Millisecond
			if delay <= 0 {
				delay = 10 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return true, nil
			case <-time.After(delay):
			}
		case msgAssign:
			if resp.Spec == nil {
				return true, errors.New("dist: assign without campaign spec")
			}
			if err := w.runJob(ctx, *resp.Spec, system, resp, roundTrip); err != nil {
				return true, err
			}
		default:
			return true, fmt.Errorf("dist: unexpected reply %q to next", resp.Type)
		}
	}
	return true, nil
}

// runJob executes one assignment, heartbeating while the pull runs in a
// separate goroutine. The connection is only ever touched from this
// goroutine, preserving the strict one-request-one-response framing.
func (w *Worker) runJob(ctx context.Context, spec campaign.Spec, system json.RawMessage, assign *response, roundTrip func(*request) (*response, error)) error {
	jb := assign.Job
	if jb == nil {
		return errors.New("dist: assign without job")
	}
	task := campaign.Task{Combo: jb.Combo, Seed: jb.Seed, Index: jb.Index}

	opts := smd.RunOpts{CheckpointEvery: w.checkpointEvery()}
	if len(assign.Resume) > 0 {
		var ck smd.PullCheckpoint
		if err := json.Unmarshal(assign.Resume, &ck); err != nil {
			return fmt.Errorf("dist: decoding resume checkpoint for %s: %w", jb.ID, err)
		}
		opts.Resume = &ck
	}

	var abandoned atomic.Bool
	ckptCh := make(chan json.RawMessage, 1)
	opts.OnCheckpoint = func(pc *smd.PullCheckpoint) error {
		if abandoned.Load() || ctx.Err() != nil {
			return errAbandoned
		}
		if w.Throttle > 0 {
			time.Sleep(w.Throttle)
		}
		b, err := json.Marshal(pc)
		if err != nil {
			return err
		}
		// Keep only the newest checkpoint if the heartbeat loop is behind.
		for {
			select {
			case ckptCh <- b:
				return nil
			default:
				select {
				case <-ckptCh:
				default:
				}
			}
		}
	}

	type pullResult struct {
		log *trace.WorkLog
		err error
	}
	resCh := make(chan pullResult, 1)
	go func() {
		log, err := campaign.ExecutePull(spec, task, func(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
			return w.Build(system, c, seed)
		}, opts)
		resCh <- pullResult{log: log, err: err}
	}()

	beat := time.NewTicker(w.beatInterval())
	defer beat.Stop()
	for {
		select {
		case res := <-resCh:
			if errors.Is(res.err, errAbandoned) {
				return nil
			}
			req := &request{Type: msgResult, JobID: jb.ID, Log: res.log}
			if res.err != nil {
				req = &request{Type: msgFail, JobID: jb.ID, Err: res.err.Error()}
			}
			if _, err := roundTrip(req); err != nil {
				return fmt.Errorf("dist: reporting %s: %w", jb.ID, err)
			}
			return nil
		case <-beat.C:
			req := &request{Type: msgBeat, JobID: jb.ID}
			select {
			case b := <-ckptCh:
				req = &request{Type: msgProgress, JobID: jb.ID, Ckpt: b}
			default:
			}
			resp, err := roundTrip(req)
			if err != nil {
				// Transport gone: stop the pull before surfacing the
				// error so the goroutine doesn't linger.
				abandoned.Store(true)
				<-resCh
				return fmt.Errorf("dist: heartbeat %s: %w", jb.ID, err)
			}
			if resp.Type == msgAbandon {
				abandoned.Store(true)
				<-resCh
				return nil
			}
		case <-ctx.Done():
			abandoned.Store(true)
			<-resCh
			return nil
		}
	}
}
