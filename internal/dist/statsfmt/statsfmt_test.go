package statsfmt

import (
	"strings"
	"testing"
	"time"

	"spice/internal/dist"
)

func TestSummaryLines(t *testing.T) {
	var sb strings.Builder
	Summary(&sb, dist.Stats{Jobs: 4, Assignments: 6, Retries: 2, BytesIn: 2048}, "dist: ")
	out := sb.String()
	if !strings.Contains(out, "dist: 4 jobs, 6 assignments (2 retries, 0 resumes)") {
		t.Fatalf("totals line malformed:\n%s", out)
	}
	if strings.Contains(out, "recovery:") || strings.Contains(out, "resilience:") {
		t.Fatalf("quiet campaign printed recovery/resilience lines:\n%s", out)
	}

	sb.Reset()
	Summary(&sb, dist.Stats{
		Restarts: 1, ReplayedRecords: 7,
		TornTail: dist.TailTorn, TornTailMsg: "journal tail: torn record", TruncatedTailBytes: 13,
		StragglersDetected: 1, SpeculationsLaunched: 1, SpeculationsWon: 1,
	}, "")
	out = sb.String()
	for _, want := range []string{
		"recovery: 1 restart(s), 7 journal records replayed",
		"dropped 13-byte torn journal tail (journal tail: torn record)",
		"resilience: 1 straggler(s), 1 speculation(s) (1 won, 0 wasted)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSitesSkipsSingleSite(t *testing.T) {
	var sb strings.Builder
	Sites(&sb, map[string]dist.SiteStats{"only": {Site: "only"}}, "")
	if sb.Len() != 0 {
		t.Fatalf("single-site table should print nothing, got:\n%s", sb.String())
	}
	Sites(&sb, map[string]dist.SiteStats{
		"b-site": {Site: "b-site", Assignments: 2, Completions: 2, Breaker: "closed"},
		"a-site": {Site: "a-site", Assignments: 3, Completions: 1, Breaker: "open"},
	}, "")
	out := sb.String()
	if !strings.Contains(out, "a-site") || !strings.Contains(out, "b-site") {
		t.Fatalf("two-site table missing rows:\n%s", out)
	}
	if strings.Index(out, "a-site") > strings.Index(out, "b-site") {
		t.Fatalf("sites not sorted by name:\n%s", out)
	}
}

func TestJobsOnlyContested(t *testing.T) {
	var sb strings.Builder
	jobs := map[string]dist.JobStats{
		"smdje-clean-r0": {ID: "smdje-clean-r0", Assignments: 1, Workers: []string{"w0"}},
	}
	Jobs(&sb, jobs, "")
	if sb.Len() != 0 {
		t.Fatalf("clean campaign should print no job table, got:\n%s", sb.String())
	}
	jobs["smdje-hot-r1"] = dist.JobStats{
		ID: "smdje-hot-r1", Assignments: 2, Retries: 1, Workers: []string{"w0", "w1"},
	}
	Jobs(&sb, jobs, "")
	out := sb.String()
	if !strings.Contains(out, "smdje-hot-r1") || !strings.Contains(out, "w0,w1") {
		t.Fatalf("contested job missing:\n%s", out)
	}
	if strings.Contains(out, "smdje-clean-r0") {
		t.Fatalf("uncontested job listed:\n%s", out)
	}
}

func TestRenderComposes(t *testing.T) {
	snap := dist.Snapshot{
		Stats: dist.Stats{Jobs: 1, Assignments: 1},
		Sites: map[string]dist.SiteStats{
			"x": {Site: "x", Breaker: "closed", LatencyEWMA: time.Second},
			"y": {Site: "y", Breaker: "closed"},
		},
	}
	var sb strings.Builder
	Render(&sb, snap, "  ")
	out := sb.String()
	if !strings.Contains(out, "1 jobs") || !strings.Contains(out, "breaker") {
		t.Fatalf("Render missing sections:\n%s", out)
	}
}
