// Package statsfmt renders dist stats snapshots as human-readable
// tables. It replaces the three hand-rolled printers that had grown in
// cmd/spice and examples/federated — one renderer over the one
// Snapshot struct, so the console view, the /metrics view and test
// assertions all read the same numbers.
package statsfmt

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"spice/internal/dist"
)

// Summary writes the campaign counter lines: the scheduling totals
// always, the recovery and resilience lines only when they have
// something to say. prefix is prepended to every line (callers indent
// with "  " or tag with "dist ").
func Summary(w io.Writer, s dist.Stats, prefix string) {
	fmt.Fprintf(w, "%s%d jobs, %d assignments (%d retries, %d resumes), %d lease expiries, %d KiB in / %d KiB out\n",
		prefix, s.Jobs, s.Assignments, s.Retries, s.Resumes, s.LeaseExpiries, s.BytesIn/1024, s.BytesOut/1024)
	if s.Restarts > 0 || s.DuplicateResultsDropped > 0 || s.Adoptions > 0 {
		fmt.Fprintf(w, "%srecovery: %d restart(s), %d journal records replayed, %d adoptions, %d duplicate results dropped\n",
			prefix, s.Restarts, s.ReplayedRecords, s.Adoptions, s.DuplicateResultsDropped)
	}
	if s.TornTail != dist.TailClean {
		fmt.Fprintf(w, "%srecovery: dropped %d-byte %s journal tail (%s)\n",
			prefix, s.TruncatedTailBytes, s.TornTail, s.TornTailMsg)
	}
	if s.StragglersDetected > 0 || s.SpeculationsLaunched > 0 || s.BreakerTrips > 0 {
		fmt.Fprintf(w, "%sresilience: %d straggler(s), %d speculation(s) (%d won, %d wasted), %d breaker trip(s) / %d probe(s) / %d close(s)\n",
			prefix, s.StragglersDetected, s.SpeculationsLaunched, s.SpeculationsWon, s.SpeculationsWasted,
			s.BreakerTrips, s.BreakerProbes, s.BreakerCloses)
	}
	if s.RequestsShed > 0 || s.SlowConsumerEvictions > 0 || s.HeartbeatsCoalesced > 0 {
		fmt.Fprintf(w, "%soverload: %d poll(s) shed, %d slow consumer(s) evicted, %d heartbeat(s) coalesced, send-queue peak %d\n",
			prefix, s.RequestsShed, s.SlowConsumerEvictions, s.HeartbeatsCoalesced, s.SendQueuePeak)
	}
	// The wire line only appears once something beyond a pure-v0 fleet
	// happened: a binary connection, a downgrade, or delta traffic.
	if s.WireV1Conns > 0 || s.WireDowngrades > 0 || s.DeltasFolded > 0 || s.DeltaBaseMisses > 0 {
		fmt.Fprintf(w, "%swire: %d v1 / %d v0 conn(s), %d downgrade(s), %d delta(s) folded, %d base miss(es)\n",
			prefix, s.WireV1Conns, s.WireV0Conns, s.WireDowngrades, s.DeltasFolded, s.DeltaBaseMisses)
	}
}

// Sites writes the per-site health table, one row per federation site,
// sorted by name. Nothing is written for fewer than two sites — a
// single-site table restates the Summary line. prefix indents each row.
func Sites(w io.Writer, sites map[string]dist.SiteStats, prefix string) {
	if len(sites) < 2 {
		return
	}
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%s%-16s %7s %7s %7s %8s %9s %9s %10s %12s\n", prefix,
		"site", "leased", "done", "failed", "expired", "spec won", "spec lost", "breaker", "rate (st/s)")
	for _, name := range names {
		s := sites[name]
		fmt.Fprintf(w, "%s%-16s %7d %7d %7d %8d %9d %9d %10s %12.0f\n", prefix,
			s.Site, s.Assignments, s.Completions, s.Failures, s.LeaseExpiries,
			s.SpecWon, s.SpecLost, s.Breaker, s.RateEWMA)
	}
}

// Jobs writes the per-job lease history table, sorted by job ID —
// mostly a debugging view, so it only lists jobs that needed more than
// one lease (retries, hedges, adoptions); a clean campaign prints
// nothing. prefix indents each row.
func Jobs(w io.Writer, jobs map[string]dist.JobStats, prefix string) {
	ids := make([]string, 0, len(jobs))
	for id, js := range jobs {
		if js.Assignments > 1 {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "\n%s%-28s %7s %7s %7s %6s %9s  %s\n", prefix,
		"job", "leases", "retries", "resumes", "adopt", "hedges", "workers")
	for _, id := range ids {
		js := jobs[id]
		fmt.Fprintf(w, "%s%-28s %7d %7d %7d %6d %9d  %s\n", prefix,
			js.ID, js.Assignments, js.Retries, js.Resumes, js.Adoptions,
			js.Speculations, strings.Join(js.Workers, ","))
	}
}

// Render writes the full snapshot: summary, contested-jobs table, and
// the per-site health table.
func Render(w io.Writer, snap dist.Snapshot, prefix string) {
	Summary(w, snap.Stats, prefix)
	Jobs(w, snap.Jobs, prefix)
	Sites(w, snap.Sites, prefix)
}
