package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/md"
	"spice/internal/netsim"
	"spice/internal/smd"
	"spice/internal/trace"
)

// spooledCheckpoints lists the job IDs with a checkpoint file on disk.
func spooledCheckpoints(t *testing.T, stateDir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(stateDir, "spool", "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, strings.TrimSuffix(filepath.Base(m), ".ckpt"))
	}
	return ids
}

// TestJournalRecoveryResumesCampaign is the tentpole in-process drill:
// a journaling coordinator is killed ungracefully mid-campaign (listener
// closed, every connection severed, no shutdown path runs) while its
// workers stay alive, and a fresh coordinator over the same state
// directory finishes the campaign bit-identically — adopting the
// workers still mid-pull rather than restarting their jobs.
func TestJournalRecoveryResumesCampaign(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)
	stateDir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	gate := netsim.NewGate()
	co1 := &Coordinator{
		Listener: ln,
		System:   json.RawMessage(`{"beads":3}`),
		LeaseTTL: 2 * time.Second,
		StateDir: stateDir,
		WrapConn: gate.Wrap,
	}
	go func() {
		// This Run dies with the simulated crash; only the journal it
		// leaves behind matters.
		_, _ = co1.Run(spec)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := &Worker{
			Name:            fmt.Sprintf("survivor-%d", i),
			Addr:            addr,
			Build:           testBuild,
			BeatInterval:    20 * time.Millisecond,
			CheckpointEvery: 1,
			Throttle:        20 * time.Millisecond,
			Reconnect:       true,
			ReconnectWindow: 30 * time.Second,
		}
		go w.Run(ctx)
	}

	// Wait until both workers are mid-job with checkpoints spooled.
	deadline := time.Now().Add(20 * time.Second)
	for len(spooledCheckpoints(t, stateDir)) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoints never reached the spool")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Crash: stop accepting and cut every live connection at once. No
	// drain, no close — exactly what SIGKILL leaves behind.
	ln.Close()
	gate.Blackhole(0)
	spooled := spooledCheckpoints(t, stateDir)
	if len(spooled) == 0 {
		t.Fatal("no spooled checkpoints at crash time")
	}

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	co2 := &Coordinator{
		Listener:  ln2,
		System:    json.RawMessage(`{"beads":3}`),
		LeaseTTL:  2 * time.Second,
		RetryBase: 10 * time.Millisecond,
		StateDir:  stateDir,
	}
	t.Cleanup(func() { _ = co2.Close() })

	got, err := co2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	st := co2.Stats()
	if st.Restarts != 1 {
		t.Fatalf("stats.Restarts = %d, want 1", st.Restarts)
	}
	if st.ReplayedRecords == 0 {
		t.Fatal("restart replayed no journal records")
	}
	if st.Adoptions < 1 {
		t.Fatalf("no surviving worker was adopted, stats = %+v", st)
	}
	js := co2.JobStats()
	for _, id := range spooled {
		s, ok := js[id]
		if !ok {
			t.Fatalf("spooled job %s missing from job stats", id)
		}
		if s.Resumes+s.Adoptions < 1 {
			t.Fatalf("job %s had a spooled checkpoint but restarted from step 0: %+v", id, s)
		}
	}
}

// completedJournal runs a one-job campaign to completion under a state
// dir and returns the resulting journal bytes.
func completedJournal(t *testing.T, spec campaign.Spec) (string, []byte) {
	t.Helper()
	stateDir := t.TempDir()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{
		Listener: ln,
		System:   json.RawMessage(`{"beads":3}`),
		LeaseTTL: 2 * time.Second,
		StateDir: stateDir,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 1, nil)
	if _, err := co.Run(spec); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(stateDir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	return stateDir, data
}

// TestJournalTornTailAtEveryOffset mirrors the trace checkpoint
// truncation test at the journal level: a journal cut at any byte
// inside its final record must recover — the tail dropped, every prior
// record intact, and the file truncated back to a record boundary.
func TestJournalTornTailAtEveryOffset(t *testing.T) {
	spec := campaign.Spec{
		Kappas:     []float64{100},
		Velocities: []float64{800},
		Replicas:   1,
		Distance:   3,
		Seed:       21,
	}
	_, data := completedJournal(t, spec)

	scan, err := trace.ScanRecords(bytes.NewReader(data))
	if err != nil || scan.TailErr != nil {
		t.Fatalf("reference journal unreadable: %v / %v", err, scan.TailErr)
	}
	if len(scan.Records) < 2 {
		t.Fatalf("reference journal has only %d records", len(scan.Records))
	}
	last := scan.Records[len(scan.Records)-1]
	lastStart := len(data) - 8 - len(last)

	dir := t.TempDir()
	path := filepath.Join(dir, "journal.log")
	for cut := lastStart + 1; cut < len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jn, rep, err := openJournal(nil, dir)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if !errors.Is(rep.tornErr, trace.ErrTruncated) {
			t.Fatalf("cut %d: torn tail error = %v, want ErrTruncated", cut, rep.tornErr)
		}
		if rep.tornBytes != int64(cut-lastStart) {
			t.Fatalf("cut %d: tornBytes = %d, want %d", cut, rep.tornBytes, cut-lastStart)
		}
		if rep.records != len(scan.Records)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, rep.records, len(scan.Records)-1)
		}
		if err := jn.close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(lastStart) {
			t.Fatalf("cut %d: file not truncated to boundary: %d != %d", cut, fi.Size(), lastStart)
		}
	}
}

// TestJournalTornTailSurfacedInStats drives the same recovery through
// the coordinator: the campaign whose final done record was torn off
// re-runs that job, the output stays bit-identical, and Stats carries
// the typed tail error.
func TestJournalTornTailSurfacedInStats(t *testing.T) {
	spec := campaign.Spec{
		Kappas:     []float64{100},
		Velocities: []float64{800},
		Replicas:   1,
		Distance:   3,
		Seed:       21,
	}
	want := localBaseline(t, spec)
	stateDir, data := completedJournal(t, spec)

	// Tear three bytes into the final record — mid-header, the classic
	// crash cut.
	const torn = 3
	scan, err := trace.ScanRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(data) - 8 - len(scan.Records[len(scan.Records)-1])
	path := filepath.Join(stateDir, "journal.log")
	if err := os.WriteFile(path, data[:lastStart+torn], 0o644); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := &Coordinator{
		Listener: ln,
		System:   json.RawMessage(`{"beads":3}`),
		LeaseTTL: 2 * time.Second,
		StateDir: stateDir,
	}
	t.Cleanup(func() { _ = co.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 1, nil)

	got, err := co.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	st := co.Stats()
	if st.TornTail != TailTorn {
		t.Fatalf("stats.TornTail = %v, want TailTorn", st.TornTail)
	}
	if !errors.Is(st.TornTailErr(), trace.ErrTruncated) {
		t.Fatalf("stats.TornTailErr() = %v, want ErrTruncated", st.TornTailErr())
	}
	if st.TruncatedTailBytes != torn {
		t.Fatalf("stats.TruncatedTailBytes = %d, want %d", st.TruncatedTailBytes, torn)
	}
	if st.Restarts != 1 {
		t.Fatalf("stats.Restarts = %d, want 1", st.Restarts)
	}
}

// testClient is a hand-rolled wire client for poking at the protocol.
type testClient struct {
	t    *testing.T
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialTestClient(t *testing.T, addr, name string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &testClient{t: t, conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
	if resp := c.rt(&request{Type: msgHello, Name: name}); resp.Err != "" {
		t.Fatalf("hello rejected: %s", resp.Err)
	}
	return c
}

func (c *testClient) rt(req *request) *response {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatal(err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.t.Fatal(err)
	}
	return &resp
}

// next polls until the coordinator hands this client a job.
func (c *testClient) next() *response {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := c.rt(&request{Type: msgNext})
		if resp.Type == msgAssign {
			return resp
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("never assigned a job (last reply %q)", resp.Type)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetransmittedResultsDropped pins the idempotency rules with
// hand-rolled clients: a duplicate of an already-recorded result is
// acked and dropped, and result/fail lines from a lease that was
// revoked and reassigned are acked and dropped — never double-merged
// into the campaign output, never double-counted in the job stats.
func TestRetransmittedResultsDropped(t *testing.T) {
	spec := campaign.Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{800},
		Replicas:   1,
		Distance:   3,
		Seed:       21,
	}
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	co.LeaseTTL = 150 * time.Millisecond
	co.RetryBase = 10 * time.Millisecond
	resCh := make(chan map[campaign.Combo][]*trace.WorkLog, 1)
	errCh := make(chan error, 1)
	go func() {
		logs, err := co.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- logs
	}()
	addr := co.Listener.Addr().String()

	// Phase 1: an honest but chatty client completes its job and then
	// retransmits the identical result — as the outbox does after a
	// lost ack.
	honest := dialTestClient(t, addr, "honest")
	assign := honest.next()
	j1, attempt1 := assign.Job.ID, assign.Job.Attempt
	task := campaign.Task{Combo: assign.Job.Combo, Seed: assign.Job.Seed, Index: assign.Job.Index}
	log1, err := campaign.ExecutePull(*assign.Spec, task, func(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
		return localBuild(c, seed)
	}, smd.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if resp := honest.rt(&request{Type: msgResult, JobID: j1, Attempt: attempt1, Log: log1}); resp.Type != msgOK || resp.Err != "" {
		t.Fatalf("first result rejected: %+v", resp)
	}
	if resp := honest.rt(&request{Type: msgResult, JobID: j1, Attempt: attempt1, Log: log1}); resp.Type != msgOK {
		t.Fatalf("duplicate result not acked: %+v", resp)
	}
	if st := co.Stats(); st.DuplicateResultsDropped != 1 {
		t.Fatalf("stats.DuplicateResultsDropped = %d, want 1", st.DuplicateResultsDropped)
	}

	// Phase 2: a silent client takes the second job and never beats; the
	// janitor revokes its lease and a real (slow) worker takes over.
	silent := dialTestClient(t, addr, "silent")
	assign2 := silent.next()
	j2, attempt2 := assign2.Job.ID, assign2.Job.Attempt
	if j2 == j1 {
		t.Fatalf("silent client got the completed job %s", j1)
	}
	deadline := time.Now().Add(10 * time.Second)
	for co.Stats().LeaseExpiries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 1, func(i int, w *Worker) {
		w.CheckpointEvery = 1
		w.Throttle = 20 * time.Millisecond
	})
	for co.JobStats()[j2].Assignments < 2 {
		if time.Now().After(deadline) {
			t.Fatal("revoked job never reassigned")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The zombie now reports on its revoked lease: a fail, then a stale
	// result carrying the WRONG job's log. Both must be acked, dropped,
	// and must not requeue the job or poison the merge.
	if resp := silent.rt(&request{Type: msgFail, JobID: j2, Attempt: attempt2, Err: "zombie says no"}); resp.Type != msgOK {
		t.Fatalf("stale fail not acked: %+v", resp)
	}
	if resp := silent.rt(&request{Type: msgResult, JobID: j2, Attempt: attempt2, Log: log1}); resp.Type != msgOK {
		t.Fatalf("stale result not acked: %+v", resp)
	}

	select {
	case logs := <-resCh:
		requireBitIdentical(t, want, logs)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish")
	}

	st := co.Stats()
	if st.DuplicateResultsDropped != 3 {
		t.Fatalf("stats.DuplicateResultsDropped = %d, want 3", st.DuplicateResultsDropped)
	}
	if st.Failures != 0 {
		t.Fatalf("stale fail was counted as a failure: %+v", st)
	}
	js := co.JobStats()
	if js[j2].Assignments != 2 {
		t.Fatalf("job %s assignments = %d, want 2 (stale lines must not reassign)", j2, js[j2].Assignments)
	}
}
