package dist_test

// The end-to-end test: a coordinator in this process, real spiced
// worker processes over loopback TCP. One worker is frozen (SIGSTOP)
// mid-job so its lease expires and the job migrates — resuming from the
// streamed checkpoint on another process — and the final merged
// campaign must still be bit-identical to a single-process run.

import (
	"bufio"
	"encoding/json"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/md"
	"spice/internal/obs"
	"spice/internal/trace"
)

// e2eSystem is the model system shipped to the worker processes.
// EngineWorkers is pinned: force sums are chunk-order sensitive, so
// every process must use the same intra-engine parallelism.
func e2eSystem() core.SystemConfig {
	return core.SystemConfig{
		Beads:         3,
		StartZ:        5,
		EquilSteps:    50,
		DT:            0.02,
		Temp:          300,
		PoreFriction:  1,
		EngineWorkers: 1,
	}
}

func e2eSpec() campaign.Spec {
	return campaign.Spec{
		Kappas:     []float64{100, 1000},
		Velocities: []float64{800},
		Replicas:   2,
		Distance:   3,
		Seed:       31,
	}
}

func buildSpiced(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spiced")
	cmd := exec.Command("go", "build", "-o", bin, "spice/cmd/spiced")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spiced: %v\n%s", err, out)
	}
	return bin
}

func spawnSpiced(t *testing.T, bin, addr, name string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{
		"-coordinator", addr,
		"-name", name,
		"-beat", "20ms",
	}, extra...)
	cmd := exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return cmd
}

// spawnSpicedObs is spawnSpiced with -obs-addr 127.0.0.1:0; it parses
// the daemon's "observability: http://..." banner off stdout and
// returns the debug server's base URL alongside the process.
func spawnSpicedObs(t *testing.T, bin, addr, name string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-coordinator", addr,
		"-name", name,
		"-beat", "20ms",
		"-obs-addr", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "observability: http://"); ok {
				urlCh <- "http://" + strings.TrimSuffix(strings.Fields(rest)[0], "/metrics")
			}
		}
	}()
	select {
	case base := <-urlCh:
		return cmd, base
	case <-time.After(10 * time.Second):
		t.Fatalf("%s never printed its observability banner", name)
		return nil, ""
	}
}

func TestEndToEndWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs worker processes")
	}
	sys := e2eSystem()
	sysJSON, err := json.Marshal(sys)
	if err != nil {
		t.Fatal(err)
	}
	spec := e2eSpec()

	// Single-process baseline through the exact same build path the
	// worker daemons use.
	lr := &campaign.LocalRunner{
		Build: func(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
			return core.BuildFromJSON(sysJSON, c, seed)
		},
		Workers: 1,
	}
	want, err := lr.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	bin := buildSpiced(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	events := obs.NewEventLog(nil, 2048)
	co := &dist.Coordinator{
		Listener:  ln,
		System:    sysJSON,
		LeaseTTL:  500 * time.Millisecond,
		RetryBase: 10 * time.Millisecond,
		Events:    events,
	}
	t.Cleanup(func() { _ = co.Close() })
	dist.RegisterMetrics(reg, co)
	srv, err := obs.Serve("127.0.0.1:0", reg, events, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	resCh := make(chan map[campaign.Combo][]*trace.WorkLog, 1)
	errCh := make(chan error, 1)
	go func() {
		logs, err := co.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- logs
	}()

	addr := ln.Addr().String()
	// The doomed worker: checkpoints at every sample with an artificial
	// nap, so it is guaranteed to be mid-job when frozen.
	doomed := spawnSpiced(t, bin, addr, "doomed", "-ckpt-every", "1", "-throttle", "30ms")

	deadline := time.Now().Add(30 * time.Second)
	for co.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never streamed a checkpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Freeze it: the TCP connection stays open but heartbeats stop, so
	// only the lease-expiry path can recover the job.
	if err := doomed.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}

	// Two healthy worker processes finish the campaign. Alpha carries
	// the full observability surface; smoke-check every endpoint while
	// it runs (the daemon exits when the coordinator drains, taking its
	// debug server with it, so this is the moment they are reachable).
	_, alphaBase := spawnSpicedObs(t, bin, addr, "alpha")
	spawnSpiced(t, bin, addr, "beta")

	requireHealthy(t, alphaBase)
	// The worker families materialize once alpha's metrics registration
	// runs, which races this scrape right after spawn — poll instead of
	// asserting on the first response.
	scrapeDeadline := time.Now().Add(10 * time.Second)
	for {
		wm := scrapeProm(t, alphaBase+"/metrics")
		if _, ok := wm[`spice_worker_jobs_started_total{worker="alpha"}`]; ok {
			break
		}
		if time.Now().After(scrapeDeadline) {
			t.Fatalf("worker scrape missing spice_worker_jobs_started_total: %v", wm)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := httpGet(t, alphaBase+"/debug/pprof/"); code != 200 {
		t.Fatalf("worker /debug/pprof/ = %d, want 200", code)
	}

	var got map[campaign.Combo][]*trace.WorkLog
	select {
	case got = <-resCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(120 * time.Second):
		t.Fatal("distributed campaign did not finish")
	}
	_ = doomed.Process.Kill()

	requireBitIdenticalLogs(t, want, got)

	st := co.Stats()
	if st.LeaseExpiries < 1 {
		t.Fatalf("expected a lease expiry from the frozen worker, stats = %+v", st)
	}
	if st.Resumes < 1 {
		t.Fatalf("expected a checkpoint resume on another process, stats = %+v", st)
	}
	if st.Retries < 1 {
		t.Fatalf("expected the frozen job to be retried, stats = %+v", st)
	}

	// At least two distinct processes must have completed work: the
	// frozen job's history alone names two workers.
	names := map[string]bool{}
	for _, js := range co.JobStats() {
		for _, w := range js.Workers {
			names[w] = true
		}
	}
	if len(names) < 2 {
		t.Fatalf("expected >= 2 worker processes to participate, saw %v", names)
	}

	// Coordinator-side obs smoke: /healthz, /debug/pprof/, and the
	// scraped counters for the recovery story must equal the Stats the
	// assertions above just read — same snapshot, no drift. These
	// counters are settled once the campaign is over (worker processes
	// hanging up can only move Disconnects, which we leave out).
	base := "http://" + srv.Addr()
	requireHealthy(t, base)
	if code, _ := httpGet(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("coordinator /debug/pprof/ = %d, want 200", code)
	}
	m := scrapeProm(t, base+"/metrics")
	st = co.Stats()
	requireMetric(t, m, "spice_dist_jobs_total", float64(st.Jobs))
	requireMetric(t, m, "spice_dist_assignments_total", float64(st.Assignments))
	requireMetric(t, m, "spice_dist_retries_total", float64(st.Retries))
	requireMetric(t, m, "spice_dist_resumes_total", float64(st.Resumes))
	requireMetric(t, m, "spice_dist_lease_expiries_total", float64(st.LeaseExpiries))
	if n := events.Count("lease_expired"); n != int64(st.LeaseExpiries) {
		t.Fatalf("event log saw %d lease_expired, stats say %d", n, st.LeaseExpiries)
	}
}

// requireBitIdenticalLogs compares every sample of every replica.
func requireBitIdenticalLogs(t *testing.T, want, got map[campaign.Combo][]*trace.WorkLog) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("combo counts differ: %d vs %d", len(want), len(got))
	}
	for c, wls := range want {
		gls := got[c]
		if len(gls) != len(wls) {
			t.Fatalf("combo %s: %d replicas, want %d", c, len(gls), len(wls))
		}
		for r := range wls {
			if len(gls[r].Samples) != len(wls[r].Samples) {
				t.Fatalf("combo %s replica %d: %d samples, want %d", c, r, len(gls[r].Samples), len(wls[r].Samples))
			}
			for i := range wls[r].Samples {
				if gls[r].Samples[i] != wls[r].Samples[i] {
					t.Fatalf("combo %s replica %d sample %d: %+v != %+v (not bit-identical)",
						c, r, i, gls[r].Samples[i], wls[r].Samples[i])
				}
			}
		}
	}
}
