package dist

import "sync"

// Stats aggregates the coordinator's scheduling counters, in the same
// value-struct style as neighbor.Stats: a snapshot you can print or
// assert on, not a live view.
type Stats struct {
	Jobs          int // total jobs in the campaign
	Assignments   int // leases granted (first attempts + retries)
	Retries       int // reassignments after failure, expiry or disconnect
	Resumes       int // assignments that carried a checkpoint to resume from
	LeaseExpiries int // leases revoked for missed heartbeats
	Disconnects   int // leases revoked because the worker connection died
	Failures      int // explicit fail messages from workers
	Checkpoints   int // progress messages that carried a checkpoint
	BytesIn       int64
	BytesOut      int64
}

// JobStats is the per-job slice of the same counters.
type JobStats struct {
	ID            string
	Assignments   int
	Retries       int
	Resumes       int
	LeaseExpiries int
	Workers       []string // every worker the job was leased to, in order
}

// StatsSource is implemented by anything that can report dist counters;
// the coordinator is the canonical implementation.
type StatsSource interface {
	Stats() Stats
}

// countingConn tallies bytes crossing a net.Conn into shared counters.
type counter struct {
	mu  sync.Mutex
	in  int64
	out int64
}

func (c *counter) addIn(n int)  { c.mu.Lock(); c.in += int64(n); c.mu.Unlock() }
func (c *counter) addOut(n int) { c.mu.Lock(); c.out += int64(n); c.mu.Unlock() }

func (c *counter) snapshot() (in, out int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.in, c.out
}
