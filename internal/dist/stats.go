package dist

import "sync"

// Stats aggregates the coordinator's scheduling counters, in the same
// value-struct style as neighbor.Stats: a snapshot you can print or
// assert on, not a live view.
type Stats struct {
	Jobs          int // total jobs in the campaign
	Assignments   int // leases granted (first attempts + retries)
	Retries       int // reassignments after failure, expiry or disconnect
	Resumes       int // assignments that carried a checkpoint to resume from
	LeaseExpiries int // leases revoked for missed heartbeats
	Disconnects   int // leases revoked because the worker connection died
	Failures      int // explicit fail messages from workers
	Checkpoints   int // progress messages that carried a checkpoint
	BytesIn       int64
	BytesOut      int64

	// Crash-safety counters. All are live events observed by *this*
	// coordinator process; the journal replay restores job state and
	// per-job lease history but never inflates the live counters, so
	// after a restart Resumes/Adoptions measure exactly the recovery
	// work this process did.
	Restarts                int   // journal opens that replayed prior state
	ReplayedRecords         int   // journal records replayed at open
	TruncatedTailBytes      int64 // torn journal tail dropped at open
	DuplicateResultsDropped int   // retransmitted result/fail lines acked and dropped
	Adoptions               int   // in-flight jobs re-leased to their live worker after restart/revocation
	// TornTail is the typed error describing the journal tail dropped at
	// the last recovery (errors.Is: trace.ErrTruncated for a crash cut,
	// trace.ErrFormat for a corrupted record); nil if the tail was clean.
	TornTail error

	// Federation-resilience counters: straggler hedging and per-site
	// circuit breakers (the per-site breakdown is in SiteStats).
	StragglersDetected   int // leases flagged as stragglers (rate or stall)
	SpeculationsLaunched int // hedge leases granted on a second site
	SpeculationsWon      int // jobs whose accepted result came from a hedge lease
	SpeculationsWasted   int // concurrent leases dropped when the other attempt won
	BreakerTrips         int // site breakers opened (quarantine events)
	BreakerProbes        int // half-open probe jobs dispatched
	BreakerCloses        int // breakers closed again by a successful result
}

// JobStats is the per-job slice of the same counters. After a journal
// recovery, Assignments/Retries/Workers include the replayed lease
// history; Resumes and Adoptions count live events only.
type JobStats struct {
	ID            string
	Assignments   int
	Retries       int
	Resumes       int
	Adoptions     int
	LeaseExpiries int
	Speculations  int      // hedge leases granted for this job
	Workers       []string // every worker the job was leased to, in order
}

// StatsSource is implemented by anything that can report dist counters;
// the coordinator is the canonical implementation.
type StatsSource interface {
	Stats() Stats
}

// countingConn tallies bytes crossing a net.Conn into shared counters.
type counter struct {
	mu  sync.Mutex
	in  int64
	out int64
}

func (c *counter) addIn(n int)  { c.mu.Lock(); c.in += int64(n); c.mu.Unlock() }
func (c *counter) addOut(n int) { c.mu.Lock(); c.out += int64(n); c.mu.Unlock() }

func (c *counter) snapshot() (in, out int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.in, c.out
}
