package dist

import (
	"fmt"
	"sync"

	"spice/internal/trace"
)

// TailCondition classifies the journal tail found at the last recovery.
// A plain enum plus a message string serializes and compares cleanly
// (Stats is a value snapshot); TornTailErr restores the errors.Is
// semantics callers matching trace.ErrTruncated/ErrFormat rely on.
type TailCondition int

const (
	// TailClean: the journal ended on a record boundary (or there was no
	// journal). The zero value, so a fresh Stats means "clean".
	TailClean TailCondition = iota
	// TailTorn: the tail was cut mid-record — the signature of a crash
	// during an append. The torn bytes were dropped; errors.Is matches
	// trace.ErrTruncated.
	TailTorn
	// TailCorrupt: a record failed its checksum or framing — bit rot or
	// outside interference, not a crash. errors.Is matches
	// trace.ErrFormat.
	TailCorrupt
)

func (c TailCondition) String() string {
	switch c {
	case TailTorn:
		return "torn"
	case TailCorrupt:
		return "corrupt"
	default:
		return "clean"
	}
}

// Stats aggregates the coordinator's scheduling counters, in the same
// value-struct style as neighbor.Stats: a snapshot you can print or
// assert on, not a live view.
type Stats struct {
	Jobs          int // total jobs in the campaign
	Assignments   int // leases granted (first attempts + retries)
	Retries       int // reassignments after failure, expiry or disconnect
	Resumes       int // assignments that carried a checkpoint to resume from
	LeaseExpiries int // leases revoked for missed heartbeats
	Disconnects   int // leases revoked because the worker connection died
	Failures      int // explicit fail messages from workers
	Checkpoints   int // progress messages that carried a checkpoint
	BytesIn       int64
	BytesOut      int64

	// Crash-safety counters. All are live events observed by *this*
	// coordinator process; the journal replay restores job state and
	// per-job lease history but never inflates the live counters, so
	// after a restart Resumes/Adoptions measure exactly the recovery
	// work this process did.
	Restarts                int   // journal opens that replayed prior state
	ReplayedRecords         int   // journal records replayed at open
	TruncatedTailBytes      int64 // torn journal tail dropped at open
	DuplicateResultsDropped int   // retransmitted result/fail lines acked and dropped
	Adoptions               int   // in-flight jobs re-leased to their live worker after restart/revocation
	// TornTail classifies the journal tail dropped at the last recovery
	// (TailClean if none); TornTailMsg carries the detail text. Use
	// TornTailErr for errors.Is matching.
	TornTail    TailCondition
	TornTailMsg string

	// Durable-storage health. The counters come from the journal (every
	// append, retry and compaction runs under the coordinator mutex);
	// the degradation transitions are coordinator-level state changes.
	Compactions         int    // journal compactions completed (log folded into snapshot)
	StorageErrors       int    // failed journal/spool operations (each attempt counts)
	StorageRetries      int    // append attempts retried after a transient fault
	StorageDegradations int    // transitions into the degraded storage state
	StorageRecoveries   int    // transitions back to healthy storage
	StorageDegraded     bool   // currently refusing durability promises
	JournalBytes        int64  // current clean length of journal.log
	LastStorageErr      string // most recent storage error text, if any

	// Federation-resilience counters: straggler hedging and per-site
	// circuit breakers (the per-site breakdown is in SiteStats).
	StragglersDetected   int // leases flagged as stragglers (rate or stall)
	SpeculationsLaunched int // hedge leases granted on a second site
	SpeculationsWon      int // jobs whose accepted result came from a hedge lease
	SpeculationsWasted   int // concurrent leases dropped when the other attempt won
	BreakerTrips         int // site breakers opened (quarantine events)
	BreakerProbes        int // half-open probe jobs dispatched
	BreakerCloses        int // breakers closed again by a successful result

	// Overload-protection counters and gauges (the spice_overload_*
	// metric family). The counters are cumulative; the last three are
	// point-in-time gauges sampled when the snapshot was taken.
	RequestsShed          int // msgNext polls answered with a shed msgWait over the in-flight cap
	SlowConsumerEvictions int // connections killed for a full send queue (their leases survived)
	HeartbeatsCoalesced   int // heartbeats answered from connection-local state under load
	InflightRequests      int // gauge: requests decoded and not yet answered
	ConnectedWorkers      int // gauge: live worker connections
	SendQueuePeak         int // gauge: high-water mark of any connection's send queue

	// Wire-protocol counters (the spice_wire_* metric family).
	WireV0Conns         int   // connections negotiated to the legacy JSON-lines transport
	WireV1Conns         int   // connections negotiated to binary framing
	WireDowngrades      int   // hellos offering an unknown (future) version, served on v0
	DeltasFolded        int   // delta checkpoints folded into complete images
	DeltaBaseMisses     int   // deltas rejected for a base this coordinator no longer holds
	CheckpointsRejected int   // checkpoint payloads that failed to decode (answered NeedFull)
	WorkPolls           int64 // msgNext requests received (shed or served)
}

// TornTailErr reconstructs the typed error for the recorded tail
// condition: errors.Is(err, trace.ErrTruncated) for a torn tail,
// errors.Is(err, trace.ErrFormat) for a corrupted record, nil when
// clean.
func (s Stats) TornTailErr() error {
	switch s.TornTail {
	case TailTorn:
		return fmt.Errorf("%s: %w", s.TornTailMsg, trace.ErrTruncated)
	case TailCorrupt:
		return fmt.Errorf("%s: %w", s.TornTailMsg, trace.ErrFormat)
	default:
		return nil
	}
}

// JobStats is the per-job slice of the same counters. After a journal
// recovery, Assignments/Retries/Workers include the replayed lease
// history; Resumes and Adoptions count live events only.
type JobStats struct {
	ID            string
	Assignments   int
	Retries       int
	Resumes       int
	Adoptions     int
	LeaseExpiries int
	Speculations  int      // hedge leases granted for this job
	Workers       []string // every worker the job was leased to, in order
}

// Snapshot is the unified stats surface: one coherent point-in-time
// capture of the campaign counters, the per-job lease histories, and
// the per-site health table. Every consumer — the statsfmt table
// renderer, the obs /metrics collector, test assertions — reads this
// one struct, so the printed, scraped and asserted views cannot drift.
type Snapshot struct {
	Stats Stats
	Jobs  map[string]JobStats
	Sites map[string]SiteStats
}

// StatsSource is anything that can produce a coherent stats snapshot:
// the Coordinator (live campaign counters under one lock acquisition)
// and LocalRunner (the single-process equivalent).
type StatsSource interface {
	StatsSnapshot() Snapshot
}

// countingConn tallies bytes crossing a net.Conn into shared counters.
type counter struct {
	mu  sync.Mutex
	in  int64
	out int64
}

func (c *counter) addIn(n int)  { c.mu.Lock(); c.in += int64(n); c.mu.Unlock() }
func (c *counter) addOut(n int) { c.mu.Lock(); c.out += int64(n); c.mu.Unlock() }

func (c *counter) snapshot() (in, out int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.in, c.out
}
