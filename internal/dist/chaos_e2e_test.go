package dist_test

// The chaos end-to-end test: a spice -coordinator -state process drives
// a full priming sweep over two live in-test workers, gets SIGKILLed
// mid-campaign, and an in-process coordinator restarted over the same
// state directory finishes the sweep. While it recovers, one worker is
// network-partitioned (netsim.Gate) and the other has a result ack cut
// off so its outbox retransmits an already-delivered result. The final
// PMF must be bit-identical to a single-process run, no spooled job may
// restart from step 0, and the duplicate delivery must be dropped.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/netsim"
	"spice/internal/trace"
)

func buildSpice(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spice")
	cmd := exec.Command("go", "build", "-o", bin, "spice/cmd/spice")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spice: %v\n%s", err, out)
	}
	return bin
}

// chaosSweepConfig mirrors the flags the test passes to the spice
// subprocess, so the local baseline and the restarted coordinator run
// the exact same pipeline — the campaign spec JSON doubles as the
// journal's replay key, so it must match byte for byte.
func chaosSweepConfig() core.SweepConfig {
	cfg := core.PaperSweep()
	cfg.System.Beads = 3
	cfg.System.EngineWorkers = 1 // spice -coordinator pins this
	cfg.Kappas = []float64{100, 1000}
	cfg.Velocities = []float64{800}
	cfg.Replicas = 2
	cfg.Distance = 3
	cfg.Seed = 31
	return cfg
}

// spoolIDs lists job IDs with a spooled checkpoint under stateDir.
func spoolIDs(t *testing.T, stateDir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(stateDir, "spool", "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		ids = append(ids, strings.TrimSuffix(filepath.Base(m), ".ckpt"))
	}
	return ids
}

// journalDoneJobs reads the (possibly still-growing) journal and
// returns the IDs with a durable done record.
func journalDoneJobs(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	scan, err := trace.ScanRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("journal unreadable: %v", err)
	}
	done := make(map[string]bool)
	for _, rec := range scan.Records {
		var r struct {
			T   string `json:"t"`
			Job string `json:"job"`
		}
		if json.Unmarshal(rec, &r) == nil && r.T == "done" {
			done[r.Job] = true
		}
	}
	return done
}

// dupConn injects a duplicate result delivery: while armed, after a
// result line is written it waits for the coordinator's ack — proof
// the result was applied — swallows it, and kills the connection. The
// worker never sees the ack, so its outbox retransmits a result the
// coordinator has already merged. (Closing before the ack arrives
// would risk an RST discarding the un-read result on the coordinator
// side, making the retransmit a first delivery instead of a
// duplicate.) Exactly one duplicate is injected per arming.
type dupConn struct {
	net.Conn
	armed   *atomic.Bool
	swallow bool // set by Write, consumed by Read; same goroutine
}

func (d *dupConn) Write(p []byte) (int, error) {
	n, err := d.Conn.Write(p)
	if err == nil && bytes.Contains(p, []byte(`"type":"result"`)) && d.armed.CompareAndSwap(true, false) {
		d.swallow = true
	}
	return n, err
}

func (d *dupConn) Read(p []byte) (int, error) {
	if d.swallow {
		n, err := d.Conn.Read(p)
		if err == nil && n > 0 {
			d.swallow = false
			d.Conn.Close()
			return 0, errors.New("chaos: result ack swallowed")
		}
		return n, err
	}
	return d.Conn.Read(p)
}

func TestChaosCoordinatorKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the spice binary and kills processes")
	}
	cfg := chaosSweepConfig()
	sysJSON, err := json.Marshal(cfg.System)
	if err != nil {
		t.Fatal(err)
	}

	// Single-process baseline of the full sweep.
	localCfg := cfg
	localCfg.Workers = 1
	want, err := core.RunSweep(localCfg)
	if err != nil {
		t.Fatal(err)
	}

	bin := buildSpice(t)
	// Pre-pick the port so the restarted coordinator can rebind the
	// address the workers keep dialing.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln0.Addr().String()
	ln0.Close()

	stateDir := t.TempDir()
	logPath := filepath.Join(t.TempDir(), "spice.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()
	cmd := exec.Command(bin,
		"-coordinator", addr,
		"-state", stateDir,
		"-workers", "0",
		"-beads", "3",
		"-kappas", "100,1000",
		"-velocities", "800",
		"-replicas", "2",
		"-distance", "3",
		"-seed", "31",
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})

	// Two live workers that outlive the coordinator. Both are slow
	// enough (checkpoint every sample, throttled) to be mid-job when the
	// kill lands; one dials through a partition gate, the other through
	// the duplicate injector.
	gate := netsim.NewGate()
	var armDup atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startChaosWorker := func(name string, dial func(string) (net.Conn, error)) {
		w := &dist.Worker{
			Name:            name,
			Addr:            addr,
			Build:           core.BuildFromJSON,
			BeatInterval:    20 * time.Millisecond,
			CheckpointEvery: 1,
			Throttle:        20 * time.Millisecond,
			Reconnect:       true,
			ReconnectWindow: 60 * time.Second,
			Dial:            dial,
		}
		go w.Run(ctx)
	}
	startChaosWorker("gated", gate.Dial(nil))
	startChaosWorker("duplicator", func(a string) (net.Conn, error) {
		c, err := net.Dial("tcp", a)
		if err != nil {
			return nil, err
		}
		return &dupConn{Conn: c, armed: &armDup}, nil
	})

	// Kill point: both workers mid-job with spooled checkpoints AND at
	// least one job durably completed, so the recovery exercises both
	// the restored-result and the resumed-checkpoint paths.
	journalPath := filepath.Join(stateDir, "journal.log")
	deadline := time.Now().Add(120 * time.Second)
	for len(spoolIDs(t, stateDir)) < 2 || len(journalDoneJobs(t, journalPath)) < 1 {
		if time.Now().After(deadline) {
			out, _ := os.ReadFile(logPath)
			t.Fatalf("campaign never reached the kill point; spice output:\n%s", out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGKILL: no drain, no journal close, no goodbyes.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	doneAtKill := journalDoneJobs(t, journalPath)
	var spooledAtKill []string
	for _, id := range spoolIDs(t, stateDir) {
		if !doneAtKill[id] {
			spooledAtKill = append(spooledAtKill, id)
		}
	}
	if len(spooledAtKill) == 0 {
		t.Fatal("no in-flight spooled jobs at kill time")
	}

	// Partition one worker across the restart window (it heals and
	// rejoins mid-campaign) and arm the duplicate injection on the other.
	gate.Blackhole(600 * time.Millisecond)
	armDup.Store(true)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	co := &dist.Coordinator{
		Listener:  ln,
		System:    sysJSON,
		LeaseTTL:  2 * time.Second,
		RetryBase: 10 * time.Millisecond,
		StateDir:  stateDir,
	}
	t.Cleanup(func() { _ = co.Close() })
	restartCfg := cfg
	restartCfg.Runner = co
	got, err := core.RunSweep(restartCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The recovered sweep must be indistinguishable from the
	// uninterrupted single-process one, down to the last bit.
	requireBitIdenticalLogs(t, want.Logs, got.Logs)
	if len(got.Reference) != len(want.Reference) || len(got.Best.PMF) != len(want.Best.PMF) {
		t.Fatalf("grid sizes diverge: ref %d/%d, pmf %d/%d",
			len(got.Reference), len(want.Reference), len(got.Best.PMF), len(want.Best.PMF))
	}
	for i := range want.Reference {
		if got.Reference[i] != want.Reference[i] {
			t.Fatalf("reference PMF diverges at %d: %v != %v", i, got.Reference[i], want.Reference[i])
		}
	}
	for i := range want.Best.PMF {
		if got.Best.PMF[i] != want.Best.PMF[i] {
			t.Fatalf("merged PMF diverges at %d: %v != %v", i, got.Best.PMF[i], want.Best.PMF[i])
		}
	}

	st := co.Stats()
	if st.Restarts != 1 {
		t.Fatalf("stats.Restarts = %d, want 1", st.Restarts)
	}
	if st.ReplayedRecords == 0 {
		t.Fatal("restart replayed no journal records")
	}
	if st.DuplicateResultsDropped < 1 {
		t.Fatalf("injected duplicate result was not dropped: %+v", st)
	}
	if st.Adoptions < 1 {
		t.Fatalf("no mid-pull worker was adopted across the restart: %+v", st)
	}
	js := co.JobStats()
	for _, id := range spooledAtKill {
		s, ok := js[id]
		if !ok {
			t.Fatalf("spooled job %s missing from job stats", id)
		}
		if s.Resumes+s.Adoptions < 1 {
			t.Fatalf("job %s had a spooled checkpoint but restarted from step 0: %+v", id, s)
		}
	}
}
