package dist

// The coordinator's durable state: a write-ahead journal of job-state
// transitions plus a checkpoint spool, both living under one state
// directory. Between them a campaign survives the death of *any*
// process, coordinator included — the paper's §V lessons (a security
// quarantine took a site's middleware down for weeks mid-campaign) but
// applied to the scheduler itself instead of a worker site.
//
// Layout:
//
//	<state>/journal.log     append-only record stream (trace framing):
//	                        campaign / lease / ckpt / done / fail
//	                        transitions, JSON payloads, CRC per record
//	<state>/spool/<job>.ckpt latest streamed checkpoint per in-flight
//	                        job, written via tmp+rename so the file is
//	                        always a complete, CRC-framed snapshot
//
// Durability policy: `done` records (which carry the full work log —
// the campaign's irreplaceable output) are fsynced before the worker's
// result is acknowledged; everything else is flushed but not synced,
// because every other transition is reconstructible from retries. A
// torn tail — the crash signature of an append-only file — is detected
// by the record CRCs, truncated away on reopen, and surfaced as a typed
// error plus byte count in Stats.
import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"spice/internal/trace"
)

// journal record types, in the order a job moves through them.
const (
	jCampaign = "campaign" // a campaign spec was installed
	jLease    = "lease"    // a job was leased (or adopted) by a worker
	jCkpt     = "ckpt"     // a checkpoint was spooled for a job
	jDone     = "done"     // a job finished; record carries the log
	jFail     = "fail"     // a worker reported failure; job requeued
)

// jrec is one journal record. The JSON payload rides inside the CRC'd
// trace record framing, so a torn or corrupted tail never parses.
type jrec struct {
	T       string          `json:"t"`
	Camp    string          `json:"camp,omitempty"`    // campaign key (SpecKey) the record belongs to
	Spec    json.RawMessage `json:"spec,omitempty"`    // campaign: spec JSON
	Tag     *CampaignTag    `json:"tag,omitempty"`     // campaign: submission tag
	Job     string          `json:"job,omitempty"`     // lease/ckpt/done/fail
	Worker  string          `json:"worker,omitempty"`  // lease
	Site    string          `json:"site,omitempty"`    // lease: worker's site identity
	Attempt int             `json:"attempt,omitempty"` // lease/ckpt/fail
	Resumed bool            `json:"resumed,omitempty"` // lease: assignment carried a checkpoint
	Hedge   bool            `json:"hedge,omitempty"`   // lease: speculative second lease on a straggling job
	Log     *trace.WorkLog  `json:"log,omitempty"`     // done
	Err     string          `json:"err,omitempty"`     // fail reason
}

// journal is the open write side plus the replayed read side.
type journal struct {
	dir string
	f   *os.File
	rw  *trace.RecordWriter
}

// journalReplay is everything recovered from an existing journal.
type journalReplay struct {
	records   int
	tornBytes int64
	tornErr   error
	// campaigns keys replayed state by the campaign key (SpecKey of the
	// tag + spec JSON), so a restarted coordinator resumes whichever
	// campaigns it re-runs in whatever order — including campaigns from
	// several tenants interleaved in one journal.
	campaigns map[string]*replayCampaign
}

// replayCampaign is the recovered job table of one campaign.
type replayCampaign struct {
	done     map[string]*trace.WorkLog
	attempts map[string]int      // highest lease attempt per job
	workers  map[string][]string // lease history per job, in order
	fails    map[string]int
	applied  bool // replayed state consumed by a Run already
}

func newReplayCampaign() *replayCampaign {
	return &replayCampaign{
		done:     make(map[string]*trace.WorkLog),
		attempts: make(map[string]int),
		workers:  make(map[string][]string),
		fails:    make(map[string]int),
	}
}

// openJournal opens (creating if needed) the journal under dir,
// replays its records, truncates a torn tail, and positions the writer
// for appending.
func openJournal(dir string) (*journal, *journalReplay, error) {
	if err := os.MkdirAll(filepath.Join(dir, "spool"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("dist: state dir: %w", err)
	}
	path := filepath.Join(dir, "journal.log")
	rep := &journalReplay{campaigns: make(map[string]*replayCampaign)}

	scan, err := trace.ScanFile(path)
	if err != nil {
		// Foreign magic (or an unreadable file): refuse to touch it.
		return nil, nil, fmt.Errorf("dist: %s: %w", path, err)
	}
	rep.tornErr = scan.TailErr
	rep.tornBytes = scan.TornBytes

	var cur *replayCampaign
	// at resolves a record's campaign: by its Camp key when stamped
	// (concurrent campaigns interleave freely in the journal), falling
	// back to the most recent jCampaign for records written before keys
	// were stamped (strictly sequential campaigns, so the fallback is
	// exact for them).
	at := func(r *jrec) *replayCampaign {
		if r.Camp != "" {
			return rep.campaigns[r.Camp]
		}
		return cur
	}
	for _, raw := range scan.Records {
		var r jrec
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, nil, fmt.Errorf("dist: undecodable journal record (CRC valid): %w", err)
		}
		rep.records++
		switch r.T {
		case jCampaign:
			key := r.Camp
			if key == "" {
				var tag CampaignTag
				if r.Tag != nil {
					tag = *r.Tag
				}
				key = campaignKeyTagged(tag, r.Spec)
			}
			if rep.campaigns[key] == nil {
				rep.campaigns[key] = newReplayCampaign()
			}
			cur = rep.campaigns[key]
		case jLease:
			cur := at(&r)
			if cur == nil {
				continue
			}
			// A speculative (hedged) lease replays like any other: the
			// highest attempt wins the idempotency key and the full lease
			// history is preserved, so an in-flight hedge pair collapses to
			// one pending job that any post-restart result — from either
			// attempt, both bit-identical — can complete. Site health is
			// deliberately NOT replayed: breakers and EWMAs restart fresh,
			// because pre-crash weather says little about post-crash sites.
			if r.Attempt > cur.attempts[r.Job] {
				cur.attempts[r.Job] = r.Attempt
			}
			cur.workers[r.Job] = append(cur.workers[r.Job], r.Worker)
		case jCkpt:
			// The spool file is the source of truth for checkpoint data;
			// the record only documents the transition.
		case jDone:
			cur := at(&r)
			if cur == nil || r.Log == nil {
				continue
			}
			cur.done[r.Job] = r.Log
		case jFail:
			cur := at(&r)
			if cur == nil {
				continue
			}
			cur.fails[r.Job]++
		default:
			// Unknown record types from a newer writer are tolerated.
		}
	}

	if scan.TailErr != nil {
		// Drop the torn tail so the append point is a record boundary.
		if err := os.Truncate(path, scan.CleanLen); err != nil {
			return nil, nil, fmt.Errorf("dist: truncating torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: opening journal: %w", err)
	}
	j := &journal{
		dir: dir,
		f:   f,
		rw:  trace.NewRecordWriter(f, scan.CleanLen > 0),
	}
	return j, rep, nil
}

// append frames, writes and flushes one record; sync additionally
// forces it to stable storage (the done-record policy). Callers
// serialize through the coordinator's mutex.
func (j *journal) append(r *jrec, sync bool) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := j.rw.Append(payload); err != nil {
		return err
	}
	if err := j.rw.Flush(); err != nil {
		return err
	}
	if sync {
		return j.f.Sync()
	}
	return nil
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	if err := j.rw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

func (j *journal) spoolPath(jobID string) string {
	return filepath.Join(j.dir, "spool", jobID+".ckpt")
}

// spoolCheckpoint atomically replaces the job's spooled checkpoint:
// the new snapshot is written CRC-framed to a temp file and renamed
// over the old one, so the spool always holds a complete checkpoint —
// at worst one generation stale, never torn.
func (j *journal) spoolCheckpoint(jobID string, ckpt []byte) error {
	final := j.spoolPath(jobID)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	rw := trace.NewRecordWriter(f, false)
	if err := rw.Append(ckpt); err == nil {
		err = rw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, final)
}

// loadSpool returns the job's spooled checkpoint, or nil if there is
// none (or the file is unreadable/torn — the job then restarts from
// its last journaled state instead, losing progress but not safety).
func (j *journal) loadSpool(jobID string) []byte {
	data, err := os.ReadFile(j.spoolPath(jobID))
	if err != nil {
		return nil
	}
	scan, err := trace.ScanRecords(bytes.NewReader(data))
	if err != nil || scan.TailErr != nil || len(scan.Records) == 0 {
		return nil
	}
	return scan.Records[len(scan.Records)-1]
}

func (j *journal) removeSpool(jobID string) {
	_ = os.Remove(j.spoolPath(jobID))
}

// spooledJobs lists job IDs with a spooled checkpoint on disk.
func (j *journal) spooledJobs() []string {
	ents, err := os.ReadDir(filepath.Join(j.dir, "spool"))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".ckpt" {
			out = append(out, name[:len(name)-len(".ckpt")])
		}
	}
	return out
}
