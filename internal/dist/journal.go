package dist

// The coordinator's durable state: a write-ahead journal of job-state
// transitions plus a checkpoint spool, both living under one state
// directory. Between them a campaign survives the death of *any*
// process, coordinator included — the paper's §V lessons (a security
// quarantine took a site's middleware down for weeks mid-campaign) but
// applied to the scheduler itself instead of a worker site.
//
// Layout:
//
//	<state>/journal.log     append-only record stream (trace framing):
//	                        campaign / lease / ckpt / done / fail
//	                        transitions, JSON payloads, CRC per record
//	<state>/snapshot        compacted journal prefix: the folded state
//	                        of every record up to its meta sequence
//	                        number, in the same record framing
//	<state>/spool/<job>.ckpt latest streamed checkpoint per in-flight
//	                        job, written via tmp+rename so the file is
//	                        always a complete, CRC-framed snapshot
//
// Durability policy: `done` records (which carry the full work log —
// the campaign's irreplaceable output) are fsynced before the worker's
// result is acknowledged; everything else is flushed but not synced,
// because every other transition is reconstructible from retries. A
// torn tail — the crash signature of an append-only file — is detected
// by the record CRCs, truncated away on reopen, and surfaced as a typed
// error plus byte count in Stats.
//
// Compaction keeps replay time bounded: when the log passes its size
// threshold the on-disk state (snapshot + log) is folded into a fresh
// snapshot — written to snapshot.tmp, fsynced, renamed over snapshot,
// parent directory fsynced — and the log truncated. Every record
// carries a monotone sequence number and the snapshot records the
// highest one it folded, so a crash *between* the rename and the
// truncate replays each transition exactly once: log records at or
// below the snapshot's sequence are skipped. A failed append is
// repaired by truncating back to the last clean record boundary before
// anything else is written, so one torn record can never shadow the
// records appended after it.
import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spice/internal/backoff"
	"spice/internal/faultfs"
	"spice/internal/trace"
)

// journal record types, in the order a job moves through them.
const (
	jCampaign = "campaign" // a campaign spec was installed
	jLease    = "lease"    // a job was leased (or adopted) by a worker
	jCkpt     = "ckpt"     // a checkpoint was spooled for a job
	jDone     = "done"     // a job finished; record carries the log
	jFail     = "fail"     // a worker reported failure; job requeued
	jSnap     = "snap"     // snapshot meta record: highest folded seq
	jNoop     = "noop"     // storage probe; carries no state
)

// jrec is one journal record. The JSON payload rides inside the CRC'd
// trace record framing, so a torn or corrupted tail never parses.
type jrec struct {
	T       string          `json:"t"`
	Seq     uint64          `json:"seq,omitempty"`     // monotone append sequence (snap: highest folded)
	Camp    string          `json:"camp,omitempty"`    // campaign key (SpecKey) the record belongs to
	Spec    json.RawMessage `json:"spec,omitempty"`    // campaign: spec JSON
	Tag     *CampaignTag    `json:"tag,omitempty"`     // campaign: submission tag
	Job     string          `json:"job,omitempty"`     // lease/ckpt/done/fail
	Worker  string          `json:"worker,omitempty"`  // lease
	Site    string          `json:"site,omitempty"`    // lease: worker's site identity
	Attempt int             `json:"attempt,omitempty"` // lease/ckpt/fail
	Resumed bool            `json:"resumed,omitempty"` // lease: assignment carried a checkpoint
	Hedge   bool            `json:"hedge,omitempty"`   // lease: speculative second lease on a straggling job
	Log     *trace.WorkLog  `json:"log,omitempty"`     // done
	Err     string          `json:"err,omitempty"`     // fail reason
	N       int             `json:"n,omitempty"`       // fail (snapshot): condensed repeat count
}

// journal is the open write side plus the replayed read side.
type journal struct {
	dir string
	fs  faultfs.FS
	f   faultfs.File
	rw  *trace.RecordWriter

	goodLen       int64  // last known clean length of journal.log (incl. magic)
	nextSeq       uint64 // last sequence number successfully appended
	pendingRepair bool   // a failed append left bytes past goodLen

	// compactBytes triggers compaction when the log grows past it
	// (0 disables). retries is how many times a failed append is retried
	// (with short backoff) before the error is surfaced.
	compactBytes   int64
	retries        int
	compactRetryAt int64 // after a failed compaction, wait for this size

	// storage health counters, surfaced through Stats.
	compactions    int
	storageErrors  int
	storageRetries int
}

// journalReplay is everything recovered from an existing journal.
type journalReplay struct {
	records   int
	tornBytes int64
	tornErr   error
	cleanLen  int64  // clean length of journal.log
	maxSeq    uint64 // highest sequence number seen (snapshot + log)
	snapSeq   uint64 // highest sequence folded into the snapshot
	// campaigns keys replayed state by the campaign key (SpecKey of the
	// tag + spec JSON), so a restarted coordinator resumes whichever
	// campaigns it re-runs in whatever order — including campaigns from
	// several tenants interleaved in one journal.
	campaigns map[string]*replayCampaign
}

// replayCampaign is the recovered job table of one campaign.
type replayCampaign struct {
	specJSON json.RawMessage // campaign spec, kept for re-serialization
	tag      *CampaignTag
	done     map[string]*trace.WorkLog
	attempts map[string]int      // highest lease attempt per job
	workers  map[string][]string // lease history per job, in order
	fails    map[string]int
	applied  bool // replayed state consumed by a Run already
}

func newReplayCampaign() *replayCampaign {
	return &replayCampaign{
		done:     make(map[string]*trace.WorkLog),
		attempts: make(map[string]int),
		workers:  make(map[string][]string),
		fails:    make(map[string]int),
	}
}

func journalPath(dir string) string  { return filepath.Join(dir, "journal.log") }
func snapshotPath(dir string) string { return filepath.Join(dir, "snapshot") }

// applyRecord folds one record into rep. cur tracks the most recent
// jCampaign for legacy records written before Camp keys were stamped.
func (rep *journalReplay) applyRecord(r *jrec, cur **replayCampaign) {
	if r.Seq > rep.maxSeq {
		rep.maxSeq = r.Seq
	}
	at := func() *replayCampaign {
		if r.Camp != "" {
			return rep.campaigns[r.Camp]
		}
		return *cur
	}
	switch r.T {
	case jCampaign:
		key := r.Camp
		if key == "" {
			var tag CampaignTag
			if r.Tag != nil {
				tag = *r.Tag
			}
			key = campaignKeyTagged(tag, r.Spec)
		}
		if rep.campaigns[key] == nil {
			rep.campaigns[key] = newReplayCampaign()
		}
		c := rep.campaigns[key]
		if len(r.Spec) > 0 {
			c.specJSON = r.Spec
		}
		if r.Tag != nil {
			c.tag = r.Tag
		}
		*cur = c
		rep.records++
	case jLease:
		c := at()
		if c == nil {
			return
		}
		// A speculative (hedged) lease replays like any other: the
		// highest attempt wins the idempotency key and the full lease
		// history is preserved, so an in-flight hedge pair collapses to
		// one pending job that any post-restart result — from either
		// attempt, both bit-identical — can complete. Site health is
		// deliberately NOT replayed: breakers and EWMAs restart fresh,
		// because pre-crash weather says little about post-crash sites.
		if r.Attempt > c.attempts[r.Job] {
			c.attempts[r.Job] = r.Attempt
		}
		c.workers[r.Job] = append(c.workers[r.Job], r.Worker)
		rep.records++
	case jCkpt:
		// The spool file is the source of truth for checkpoint data;
		// the record only documents the transition.
		rep.records++
	case jDone:
		c := at()
		if c == nil || r.Log == nil {
			return
		}
		c.done[r.Job] = r.Log
		rep.records++
	case jFail:
		c := at()
		if c == nil {
			return
		}
		n := r.N
		if n < 1 {
			n = 1
		}
		c.fails[r.Job] += n
		rep.records++
	case jSnap, jNoop:
		// snap carries only its Seq (already folded above); noop is a
		// storage probe.
	default:
		// Unknown record types from a newer writer are tolerated.
	}
}

// replayJournalState reads snapshot + journal.log under dir and folds
// them into a journalReplay. Log records whose sequence the snapshot
// already folded are skipped, so the pair replays every transition
// exactly once no matter where between compaction steps a crash hit.
func replayJournalState(fsys faultfs.FS, dir string) (*journalReplay, error) {
	fsys = faultfs.Or(fsys)
	rep := &journalReplay{campaigns: make(map[string]*replayCampaign)}
	var cur *replayCampaign

	snapScan, err := trace.ScanFileFS(fsys, snapshotPath(dir))
	if err != nil {
		return nil, fmt.Errorf("dist: %s: %w", snapshotPath(dir), err)
	}
	if snapScan.TailErr != nil {
		// The snapshot is fsynced before it is renamed into place, so a
		// torn one means bit rot or outside interference — refuse to
		// guess at partial state.
		return nil, fmt.Errorf("dist: %s: damaged snapshot: %w", snapshotPath(dir), snapScan.TailErr)
	}
	for _, raw := range snapScan.Records {
		var r jrec
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("dist: undecodable snapshot record (CRC valid): %w", err)
		}
		if r.T == jSnap && r.Seq > rep.snapSeq {
			rep.snapSeq = r.Seq
		}
		rep.applyRecord(&r, &cur)
	}

	logScan, err := trace.ScanFileFS(fsys, journalPath(dir))
	if err != nil {
		// Foreign magic (or an unreadable file): refuse to touch it.
		return nil, fmt.Errorf("dist: %s: %w", journalPath(dir), err)
	}
	rep.tornErr = logScan.TailErr
	rep.tornBytes = logScan.TornBytes
	rep.cleanLen = logScan.CleanLen
	cur = nil
	for _, raw := range logScan.Records {
		var r jrec
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("dist: undecodable journal record (CRC valid): %w", err)
		}
		if r.Seq != 0 && r.Seq <= rep.snapSeq {
			// Already folded into the snapshot: the crash hit between the
			// snapshot rename and the log truncation.
			if r.Seq > rep.maxSeq {
				rep.maxSeq = r.Seq
			}
			continue
		}
		rep.applyRecord(&r, &cur)
	}
	if rep.snapSeq > rep.maxSeq {
		rep.maxSeq = rep.snapSeq
	}
	return rep, nil
}

// openJournal opens (creating if needed) the journal under dir,
// replays snapshot + log, truncates a torn log tail, and positions the
// writer for appending.
func openJournal(fsys faultfs.FS, dir string) (*journal, *journalReplay, error) {
	fsys = faultfs.Or(fsys)
	if err := fsys.MkdirAll(filepath.Join(dir, "spool"), 0o755); err != nil {
		return nil, nil, fmt.Errorf("dist: state dir: %w", err)
	}
	rep, err := replayJournalState(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	path := journalPath(dir)
	if rep.tornErr != nil {
		// Drop the torn tail so the append point is a record boundary.
		if err := fsys.Truncate(path, rep.cleanLen); err != nil {
			return nil, nil, fmt.Errorf("dist: truncating torn journal tail: %w", err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: opening journal: %w", err)
	}
	j := &journal{
		dir:     dir,
		fs:      fsys,
		f:       f,
		rw:      trace.NewRecordWriter(f, rep.cleanLen > 0),
		goodLen: rep.cleanLen,
		nextSeq: rep.maxSeq,
	}
	return j, rep, nil
}

// append frames, writes and flushes one record; sync additionally
// forces it to stable storage (the done-record policy). A failed write
// is repaired (truncate back to the last clean boundary) and retried
// up to j.retries times with short backoff before the error is
// surfaced — and even then the log is left at a clean boundary, so
// later appends stay replayable. Callers serialize through the
// coordinator's mutex.
// journalRepairBackoff paces append retries after a repair: 2ms
// doubling to a 50ms cap — the same shared policy the worker reconnect
// loop and the control-plane client use, minus the jitter (appends are
// serialized under the coordinator mutex, so there is no herd to
// spread).
var journalRepairBackoff = backoff.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}

func (j *journal) append(r *jrec, sync bool) error {
	r.Seq = j.nextSeq + 1
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		err = j.tryAppend(payload, sync)
		if err == nil {
			j.nextSeq++
			j.maybeCompact()
			return nil
		}
		j.storageErrors++
		j.pendingRepair = true
		if attempt >= j.retries {
			return err
		}
		j.storageRetries++
		// Capped backoff. Short on purpose: this runs under the
		// coordinator's mutex, and a transient fault (one full stripe,
		// one interrupted syscall) clears quickly or not at all.
		time.Sleep(journalRepairBackoff.Exp(attempt + 1))
	}
}

// tryAppend is one append attempt, repairing any earlier torn append
// first so a partial record never shadows what follows it.
func (j *journal) tryAppend(payload []byte, sync bool) error {
	if j.pendingRepair {
		if err := j.f.Truncate(j.goodLen); err != nil {
			return err
		}
		j.rw.Reset(j.f, j.goodLen > 0)
		j.pendingRepair = false
	}
	n := trace.FramedLen(len(payload))
	if j.goodLen == 0 {
		n += trace.MagicLen
	}
	if err := j.rw.Append(payload); err != nil {
		return err
	}
	if err := j.rw.Flush(); err != nil {
		return err
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	j.goodLen += n
	return nil
}

// probe appends (and fsyncs) a no-op record — the storage health check
// the coordinator runs while degraded. Success means the disk takes
// writes again.
func (j *journal) probe() error {
	return j.append(&jrec{T: jNoop}, true)
}

// maybeCompact compacts when the log has outgrown its threshold. A
// failed compaction backs off until the log doubles again, so a sick
// disk is not hammered with snapshot rewrites on every append.
func (j *journal) maybeCompact() {
	if j.compactBytes <= 0 || j.goodLen < j.compactBytes || j.pendingRepair {
		return
	}
	if j.compactRetryAt > 0 && j.goodLen < j.compactRetryAt {
		return
	}
	if err := j.compact(); err != nil {
		j.storageErrors++
		j.compactRetryAt = j.goodLen * 2
		return
	}
	j.compactRetryAt = 0
}

// compact folds snapshot + log into a fresh snapshot and truncates the
// log: write snapshot.tmp, fsync it, rename over snapshot, fsync the
// parent directory, truncate the log. Any step may fail (or the
// process may die) and replay stays exact: before the rename the old
// snapshot+log pair is untouched; after it, log records the new
// snapshot already folded are skipped by sequence number.
func (j *journal) compact() error {
	if err := j.rw.Flush(); err != nil {
		j.pendingRepair = true
		return err
	}
	rep, err := replayJournalState(j.fs, j.dir)
	if err != nil {
		return err
	}
	if err := writeSnapshot(j.fs, j.dir, rep); err != nil {
		return err
	}
	// The snapshot is durable and supersedes the log by sequence
	// number; truncating the log is now safe (and, if it fails, merely
	// deferred — replay skips the superseded records either way).
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	j.rw.Reset(j.f, false)
	j.goodLen = 0
	j.compactions++
	return nil
}

// writeSnapshot serializes rep as a compacted record stream via the
// tmp+fsync+rename+dir-fsync protocol. The stream opens with a jSnap
// meta record carrying the highest folded sequence; the rest is a
// minimal record sequence that replays to exactly rep: one campaign
// record each, the condensed lease history, done logs, and fail counts.
func writeSnapshot(fsys faultfs.FS, dir string, rep *journalReplay) (err error) {
	tmp := snapshotPath(dir) + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			_ = fsys.Remove(tmp)
		}
	}()
	rw := trace.NewRecordWriter(f, false)
	emit := func(r *jrec) {
		if err != nil {
			return
		}
		var payload []byte
		if payload, err = json.Marshal(r); err == nil {
			err = rw.Append(payload)
		}
	}
	emit(&jrec{T: jSnap, Seq: rep.maxSeq})
	keys := make([]string, 0, len(rep.campaigns))
	for k := range rep.campaigns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		c := rep.campaigns[key]
		emit(&jrec{T: jCampaign, Camp: key, Spec: c.specJSON, Tag: c.tag})
		jobs := make(map[string]bool)
		for id := range c.done {
			jobs[id] = true
		}
		for id := range c.attempts {
			jobs[id] = true
		}
		for id := range c.workers {
			jobs[id] = true
		}
		for id := range c.fails {
			jobs[id] = true
		}
		ids := make([]string, 0, len(jobs))
		for id := range jobs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			hist := c.workers[id]
			for i, w := range hist {
				attempt := 0
				if i == len(hist)-1 {
					attempt = c.attempts[id]
				}
				emit(&jrec{T: jLease, Camp: key, Job: id, Worker: w, Attempt: attempt})
			}
			if len(hist) == 0 && c.attempts[id] > 0 {
				emit(&jrec{T: jLease, Camp: key, Job: id, Attempt: c.attempts[id]})
			}
			if wl, ok := c.done[id]; ok {
				emit(&jrec{T: jDone, Camp: key, Job: id, Log: wl})
			}
			if n := c.fails[id]; n > 0 {
				emit(&jrec{T: jFail, Camp: key, Job: id, N: n})
			}
		}
	}
	if err != nil {
		return err
	}
	if err = rw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, snapshotPath(dir)); err != nil {
		return err
	}
	// Rename alone is not durable across power loss: the parent
	// directory's entry table must hit the disk too.
	return fsys.SyncDir(dir)
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	if err := j.rw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

func (j *journal) spoolDir() string {
	return filepath.Join(j.dir, "spool")
}

func (j *journal) spoolPath(jobID string) string {
	return filepath.Join(j.spoolDir(), jobID+".ckpt")
}

// spoolCheckpoint atomically replaces the job's spooled checkpoint:
// the new snapshot is written CRC-framed to a temp file, fsynced, and
// renamed over the old one with a parent-directory fsync, so the spool
// always holds a complete checkpoint — at worst one generation stale,
// never torn, and durable across power loss.
//
// ckpt is always a COMPLETE image: the coordinator folds wire deltas
// against the lease's base before calling here (fold-before-spool), so
// journal replay and hedged re-execution never need a delta chain — a
// spool file alone is a valid resume image regardless of which wire
// version produced it.
func (j *journal) spoolCheckpoint(jobID string, ckpt []byte) error {
	final := j.spoolPath(jobID)
	tmp := final + ".tmp"
	f, err := j.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	rw := trace.NewRecordWriter(f, false)
	if err := rw.Append(ckpt); err == nil {
		err = rw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		_ = j.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = j.fs.Remove(tmp)
		return err
	}
	if err := j.fs.Rename(tmp, final); err != nil {
		_ = j.fs.Remove(tmp)
		return err
	}
	return j.fs.SyncDir(j.spoolDir())
}

// loadSpool returns the job's spooled checkpoint, or nil if there is
// none (or the file is unreadable/torn — the job then restarts from
// its last journaled state instead, losing progress but not safety).
func (j *journal) loadSpool(jobID string) []byte {
	data, err := j.fs.ReadFile(j.spoolPath(jobID))
	if err != nil {
		return nil
	}
	scan, err := trace.ScanRecords(bytes.NewReader(data))
	if err != nil || scan.TailErr != nil || len(scan.Records) == 0 {
		return nil
	}
	return scan.Records[len(scan.Records)-1]
}

func (j *journal) removeSpool(jobID string) {
	_ = j.fs.Remove(j.spoolPath(jobID))
}

// spooledJobs lists job IDs with a spooled checkpoint on disk.
func (j *journal) spooledJobs() []string {
	ents, err := j.fs.ReadDir(j.spoolDir())
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".ckpt" {
			out = append(out, name[:len(name)-len(".ckpt")])
		}
	}
	return out
}
