package dist

// Tests for the federation-resilience layer: per-site circuit breakers,
// deterministic retry jitter, straggler detection, and speculative
// hedged re-execution — including the invariant everything else leans
// on, that a speculation race merges bit-identically to a local run
// because both attempts compute the same bytes.

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/trace"
)

// TestBreakerStateMachine drives siteHealth through the full
// closed → open → half-open → closed circuit, plus the probe-failure
// re-open edge.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Now()
	cooldown := 50 * time.Millisecond
	sh := &siteHealth{name: "s"}

	// Closed: strikes below threshold neither trip nor quarantine.
	if sh.strike(now, 3) {
		t.Fatal("first strike tripped a threshold-3 breaker")
	}
	if sh.strike(now, 3) {
		t.Fatal("second strike tripped a threshold-3 breaker")
	}
	if !sh.admissible(now, cooldown) {
		t.Fatal("closed breaker not admissible")
	}

	// A success resets the consecutive count; the next strike starts over.
	if sh.success() {
		t.Fatal("success on a closed breaker reported a close transition")
	}
	if sh.strikes != 0 {
		t.Fatalf("strikes = %d after success, want 0", sh.strikes)
	}

	// Threshold consecutive strikes open it.
	sh.strike(now, 3)
	sh.strike(now, 3)
	if !sh.strike(now, 3) {
		t.Fatal("third consecutive strike did not trip")
	}
	if sh.state != breakerOpen || sh.trips != 1 {
		t.Fatalf("state = %v trips = %d after trip", sh.state, sh.trips)
	}

	// Open: quarantined until the cooldown elapses.
	if sh.admissible(now, cooldown) {
		t.Fatal("open breaker admissible before cooldown")
	}
	later := now.Add(cooldown)
	if !sh.admissible(later, cooldown) {
		t.Fatal("open breaker not admissible after cooldown")
	}

	// Grant-time transition (grantLocked's logic): open → half-open with
	// a probe job; a second grant is refused while the probe is out.
	sh.state = breakerHalfOpen
	sh.probeJob = "j1"
	if sh.admissible(later, cooldown) {
		t.Fatal("half-open breaker admissible with a probe in flight")
	}

	// Probe failure re-opens immediately, at any strike count.
	if !sh.strike(later, 3) {
		t.Fatal("strike during half-open did not re-open")
	}
	if sh.state != breakerOpen || sh.trips != 2 || sh.probeJob != "" {
		t.Fatalf("after probe failure: state = %v trips = %d probe = %q", sh.state, sh.trips, sh.probeJob)
	}

	// Probe success closes and resets.
	sh.state = breakerHalfOpen
	sh.probeJob = "j2"
	sh.strikes = 5
	if !sh.success() {
		t.Fatal("success on half-open did not report a close")
	}
	if sh.state != breakerClosed || sh.strikes != 0 || sh.probeJob != "" {
		t.Fatalf("after probe success: state = %v strikes = %d probe = %q", sh.state, sh.strikes, sh.probeJob)
	}

	// clearProbe only forgets its own job.
	sh.state = breakerHalfOpen
	sh.probeJob = "j3"
	sh.clearProbe("other")
	if sh.probeJob != "j3" {
		t.Fatal("clearProbe(other) cleared the wrong probe")
	}
	sh.clearProbe("j3")
	if sh.probeJob != "" {
		t.Fatal("clearProbe(j3) did not clear")
	}
}

// TestBackoffDeterministicJitter pins the requeue delay contract: the
// jittered delay stays inside [d/2, d) of the exponential base, is a
// pure function of (job, attempt), and decorrelates different jobs.
func TestBackoffDeterministicJitter(t *testing.T) {
	co := &Coordinator{RetryBase: 100 * time.Millisecond, RetryMax: 2 * time.Second}

	base := func(attempts int) time.Duration {
		d := co.retryBase()
		for i := 1; i < attempts; i++ {
			d *= 2
			if d >= co.retryMax() {
				return co.retryMax()
			}
		}
		return d
	}
	for attempts := 1; attempts <= 10; attempts++ {
		d := base(attempts)
		got := co.backoff("smdje-k100v800-r0", attempts)
		if got < d/2 || got >= d {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempts, got, d/2, d)
		}
		if again := co.backoff("smdje-k100v800-r0", attempts); again != got {
			t.Fatalf("attempt %d: backoff not deterministic: %v then %v", attempts, got, again)
		}
	}

	// Different jobs at the same attempt must not retry in lockstep.
	seen := map[time.Duration]bool{}
	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		seen[co.backoff(id, 1)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 jobs share one jittered delay: %v", seen)
	}
}

// TestFleetMedianRate checks the straggler baseline: no median below
// two observed sites, upper median above.
func TestFleetMedianRate(t *testing.T) {
	co := &Coordinator{}
	if _, ok := co.fleetMedianRate(); ok {
		t.Fatal("median reported with zero sites")
	}
	co.siteLocked("a").observeRate(100)
	if _, ok := co.fleetMedianRate(); ok {
		t.Fatal("median reported with one site")
	}
	co.siteLocked("b").observeRate(10)
	if m, ok := co.fleetMedianRate(); !ok || m != 100 {
		t.Fatalf("median of {10, 100} = %v, %v; want upper median 100", m, ok)
	}
	co.siteLocked("c").observeRate(50)
	if m, ok := co.fleetMedianRate(); !ok || m != 50 {
		t.Fatalf("median of {10, 50, 100} = %v, %v; want 50", m, ok)
	}
}

// TestStragglerScanTriggers exercises both hedge triggers against a
// synthetic job table: a lease crawling below the fleet-median fraction
// and a lease whose steps stalled outright.
func TestStragglerScanTriggers(t *testing.T) {
	now := time.Now()
	mkCamp := func(l *lease) (*campaignRun, *job) {
		j := &job{id: "j", state: stateLeased, leases: []*lease{l}}
		return &campaignRun{jobs: []*job{j}}, j
	}

	// Rate trigger: lease at 1 step/s against a fleet median of 100.
	co := &Coordinator{HedgeFraction: 0.3, HedgeAfter: 10 * time.Millisecond}
	co.siteLocked("fast1").observeRate(100)
	co.siteLocked("fast2").observeRate(100)
	camp, j := mkCamp(&lease{site: "slow", granted: now.Add(-time.Second), stepsAt: now, rate: 1, haveRate: true})
	co.stragglerScanLocked(camp, now)
	if !j.straggler || co.stats.StragglersDetected != 1 {
		t.Fatalf("rate trigger did not flag: straggler=%v detected=%d", j.straggler, co.stats.StragglersDetected)
	}

	// Below HedgeAfter the same lease is left alone — short jobs are
	// never hedged.
	co2 := &Coordinator{HedgeFraction: 0.3, HedgeAfter: 10 * time.Second}
	co2.siteLocked("fast1").observeRate(100)
	co2.siteLocked("fast2").observeRate(100)
	camp2, j2 := mkCamp(&lease{site: "slow", granted: now.Add(-time.Second), stepsAt: now, rate: 1, haveRate: true})
	co2.stragglerScanLocked(camp2, now)
	if j2.straggler {
		t.Fatal("lease younger than HedgeAfter was flagged")
	}

	// Stall trigger: steps frozen longer than HedgeStall, no rates at all.
	co3 := &Coordinator{HedgeStall: 100 * time.Millisecond, HedgeAfter: 10 * time.Millisecond}
	camp3, j3 := mkCamp(&lease{site: "s", granted: now.Add(-time.Second), stepsAt: now.Add(-200 * time.Millisecond)})
	co3.stragglerScanLocked(camp3, now)
	if !j3.straggler {
		t.Fatal("stall trigger did not flag")
	}

	// Zero-value coordinator: hedging disabled, nothing flagged.
	co4 := &Coordinator{}
	camp4, j4 := mkCamp(&lease{site: "s", granted: now.Add(-time.Hour), stepsAt: now.Add(-time.Hour)})
	co4.stragglerScanLocked(camp4, now)
	if j4.straggler || co4.stats.StragglersDetected != 0 {
		t.Fatal("zero-value coordinator hedged a job")
	}
}

// dialSiteClient is dialTestClient with an explicit site identity.
func dialSiteClient(t *testing.T, addr, name, site string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &testClient{t: t, conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
	if resp := c.rt(&request{Type: msgHello, Name: name, Site: site}); resp.Err != "" {
		t.Fatalf("hello rejected: %s", resp.Err)
	}
	return c
}

// pullLog computes the bit-exact result for an assignment the way a
// real worker would.
func pullLog(t *testing.T, assign *response) *trace.WorkLog {
	t.Helper()
	task := campaign.Task{Combo: assign.Job.Combo, Seed: assign.Job.Seed, Index: assign.Job.Index}
	log, err := campaign.ExecutePull(*assign.Spec, task, func(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
		return localBuild(c, seed)
	}, smd.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestSpeculativeHedgeRace pins the hedge protocol end to end with
// hand-rolled clients: a lease that heartbeats but never progresses is
// flagged as a straggler, a second site is granted a speculative lease
// on the same job, the hedge's result wins, the original's late result
// is dropped as a duplicate, and the merged campaign output is
// bit-identical to a LocalRunner run — duplicated execution is
// invisible in the science.
func TestSpeculativeHedgeRace(t *testing.T) {
	spec := campaign.Spec{
		Kappas:     []float64{100},
		Velocities: []float64{800},
		Replicas:   1,
		Distance:   3,
		Seed:       21,
	}
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	co.HedgeStall = 40 * time.Millisecond
	co.HedgeAfter = 20 * time.Millisecond
	resCh := make(chan map[campaign.Combo][]*trace.WorkLog, 1)
	errCh := make(chan error, 1)
	go func() {
		logs, err := co.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- logs
	}()
	addr := co.Listener.Addr().String()

	// The straggler: holds the only job, beats dutifully, advances
	// nothing — alive but stuck, the shape a congested site has.
	stuck := dialSiteClient(t, addr, "stuck-0", "congested")
	assign1 := stuck.next()
	jobID, attempt1 := assign1.Job.ID, assign1.Job.Attempt

	deadline := time.Now().Add(10 * time.Second)
	for co.Stats().StragglersDetected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled lease never flagged as straggler")
		}
		if resp := stuck.rt(&request{Type: msgBeat, JobID: jobID, Attempt: attempt1}); resp.Type != msgOK {
			t.Fatalf("beat got %q", resp.Type)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A healthy second site asks for work: the only job is leased, so
	// the grant it gets must be the speculative hedge.
	healthy := dialSiteClient(t, addr, "healthy-0", "healthy")
	assign2 := healthy.next()
	if assign2.Job.ID != jobID {
		t.Fatalf("hedge leased %s, want straggling job %s", assign2.Job.ID, jobID)
	}
	if assign2.Job.Attempt != attempt1+1 {
		t.Fatalf("hedge attempt = %d, want %d", assign2.Job.Attempt, attempt1+1)
	}
	if st := co.Stats(); st.SpeculationsLaunched != 1 {
		t.Fatalf("SpeculationsLaunched = %d, want 1", st.SpeculationsLaunched)
	}

	// The hedge computes and delivers first; same-site determinism means
	// its bytes equal whatever the straggler would eventually produce.
	log := pullLog(t, assign2)
	if resp := healthy.rt(&request{Type: msgResult, JobID: jobID, Attempt: assign2.Job.Attempt, Log: log}); resp.Type != msgOK || resp.Err != "" {
		t.Fatalf("hedge result rejected: %+v", resp)
	}
	// The loser reports late: acked, dropped, not merged.
	if resp := stuck.rt(&request{Type: msgResult, JobID: jobID, Attempt: attempt1, Log: log}); resp.Type != msgOK {
		t.Fatalf("losing result not acked: %+v", resp)
	}
	// And a loser heartbeat is told to abandon.
	if resp := stuck.rt(&request{Type: msgBeat, JobID: jobID, Attempt: attempt1}); resp.Type != msgAbandon {
		t.Fatalf("losing beat got %q, want abandon", resp.Type)
	}

	select {
	case logs := <-resCh:
		requireBitIdentical(t, want, logs)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish")
	}

	st := co.Stats()
	if st.SpeculationsWon != 1 || st.SpeculationsWasted != 1 {
		t.Fatalf("speculation settlement: won = %d wasted = %d, want 1/1", st.SpeculationsWon, st.SpeculationsWasted)
	}
	if st.DuplicateResultsDropped != 1 {
		t.Fatalf("DuplicateResultsDropped = %d, want 1", st.DuplicateResultsDropped)
	}
	js := co.JobStats()[jobID]
	if js.Speculations != 1 || js.Assignments != 2 {
		t.Fatalf("job stats: %+v, want 1 speculation over 2 assignments", js)
	}
	sites := co.SiteStats()
	if s := sites["healthy"]; s.SpecWon != 1 || s.Completions != 1 {
		t.Fatalf("winner site stats: %+v", s)
	}
	if s := sites["congested"]; s.SpecLost != 1 {
		t.Fatalf("loser site stats: %+v", s)
	}
	// The stuck lease streamed no steps, so losing the race is not held
	// against its breaker.
	if s := sites["congested"]; s.Breaker != "closed" || s.Strikes != 0 {
		t.Fatalf("loser site struck without evidence: %+v", sites["congested"])
	}
}

// TestBreakerQuarantinesFailingSite drives the breaker through the wire
// protocol: consecutive failures from one site open its breaker (next
// gets wait, not work, while the queue is non-empty), the cooldown
// admits a single probe, and the probe's success closes the breaker and
// lets the campaign finish bit-identically.
func TestBreakerQuarantinesFailingSite(t *testing.T) {
	spec := campaign.Spec{
		Kappas:     []float64{100},
		Velocities: []float64{800},
		Replicas:   1,
		Distance:   3,
		Seed:       21,
	}
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	co.BreakerThreshold = 2
	co.BreakerCooldown = 60 * time.Millisecond
	co.RetryBase = time.Millisecond
	co.RetryMax = 2 * time.Millisecond
	resCh := make(chan map[campaign.Combo][]*trace.WorkLog, 1)
	errCh := make(chan error, 1)
	go func() {
		logs, err := co.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- logs
	}()

	flaky := dialSiteClient(t, co.Listener.Addr().String(), "flaky-0", "flaky")
	for i := 0; i < 2; i++ {
		assign := flaky.next()
		if resp := flaky.rt(&request{Type: msgFail, JobID: assign.Job.ID, Attempt: assign.Job.Attempt, Err: "induced"}); resp.Type != msgOK {
			t.Fatalf("fail %d not acked: %+v", i, resp)
		}
	}
	st := co.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d after 2 failures at threshold 2, want 1", st.BreakerTrips)
	}
	if s := co.SiteStats()["flaky"]; s.Breaker != "open" || s.Failures != 2 {
		t.Fatalf("site not quarantined: %+v", s)
	}
	// Quarantined: the job is pending (its 2ms backoff long past) but
	// the site gets wait, not work.
	time.Sleep(10 * time.Millisecond)
	if resp := flaky.rt(&request{Type: msgNext}); resp.Type != msgWait {
		t.Fatalf("quarantined site got %q, want wait", resp.Type)
	}

	// After the cooldown the breaker half-opens for exactly one probe.
	probe := flaky.next()
	st = co.Stats()
	if st.BreakerProbes != 1 {
		t.Fatalf("BreakerProbes = %d, want 1", st.BreakerProbes)
	}
	if s := co.SiteStats()["flaky"]; s.Breaker != "half-open" {
		t.Fatalf("site not half-open during probe: %+v", s)
	}

	// The probe succeeds: breaker closes, campaign completes, output
	// still bit-identical despite the failures.
	if resp := flaky.rt(&request{Type: msgResult, JobID: probe.Job.ID, Attempt: probe.Job.Attempt, Log: pullLog(t, probe)}); resp.Type != msgOK || resp.Err != "" {
		t.Fatalf("probe result rejected: %+v", resp)
	}
	select {
	case logs := <-resCh:
		requireBitIdentical(t, want, logs)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish")
	}
	st = co.Stats()
	if st.BreakerCloses != 1 {
		t.Fatalf("BreakerCloses = %d, want 1", st.BreakerCloses)
	}
	if s := co.SiteStats()["flaky"]; s.Breaker != "closed" || s.Strikes != 0 || s.Completions != 1 {
		t.Fatalf("site not rehabilitated: %+v", s)
	}
}

// TestJournalReplaySpeculativeLeasePair crashes a coordinator while a
// job holds both its original lease and a speculative hedge, then
// replays the journal: the pair must collapse to one pending job whose
// attempt counter sits above both leases, so any post-crash result
// passes the idempotency check, and the re-run campaign must stay
// bit-identical.
func TestJournalReplaySpeculativeLeasePair(t *testing.T) {
	spec := campaign.Spec{
		Kappas:     []float64{100},
		Velocities: []float64{800},
		Replicas:   1,
		Distance:   3,
		Seed:       21,
	}
	want := localBaseline(t, spec)
	stateDir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co1 := &Coordinator{
		Listener:   ln,
		System:     json.RawMessage(`{"beads":3}`),
		LeaseTTL:   2 * time.Second,
		HedgeStall: 40 * time.Millisecond,
		HedgeAfter: 20 * time.Millisecond,
		StateDir:   stateDir,
	}
	go func() {
		// Dies with the simulated crash; only the journal matters.
		_, _ = co1.Run(spec)
	}()
	addr := ln.Addr().String()

	// Original lease stalls until a hedge is granted on a second site.
	stuck := dialSiteClient(t, addr, "stuck-0", "congested")
	assign1 := stuck.next()
	jobID := assign1.Job.ID
	deadline := time.Now().Add(10 * time.Second)
	for co1.Stats().StragglersDetected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled lease never flagged")
		}
		stuck.rt(&request{Type: msgBeat, JobID: jobID, Attempt: assign1.Job.Attempt})
		time.Sleep(5 * time.Millisecond)
	}
	healthy := dialSiteClient(t, addr, "healthy-0", "healthy")
	assign2 := healthy.next()
	if assign2.Job.ID != jobID {
		t.Fatalf("hedge leased %s, want %s", assign2.Job.ID, jobID)
	}

	// Crash with the speculative pair in flight: listener closed, conns
	// severed, no shutdown path runs.
	ln.Close()
	stuck.conn.Close()
	healthy.conn.Close()

	// The journal must carry both lease records, the hedge marked as such.
	data, err := os.ReadFile(filepath.Join(stateDir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	scan, err := trace.ScanRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var leases, hedges int
	for _, raw := range scan.Records {
		var r jrec
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		if r.T != jLease {
			continue
		}
		leases++
		if r.Hedge {
			hedges++
			if r.Site != "healthy" {
				t.Fatalf("hedge lease journaled for site %q, want healthy", r.Site)
			}
		}
	}
	if leases != 2 || hedges != 1 {
		t.Fatalf("journal has %d lease records (%d hedges), want 2 (1)", leases, hedges)
	}

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co2 := &Coordinator{
		Listener:  ln2,
		System:    json.RawMessage(`{"beads":3}`),
		LeaseTTL:  2 * time.Second,
		RetryBase: 5 * time.Millisecond,
		StateDir:  stateDir,
	}
	t.Cleanup(func() { _ = co2.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co2, 1, nil)

	got, err := co2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	st := co2.Stats()
	if st.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", st.Restarts)
	}
	js := co2.JobStats()[jobID]
	// Replayed history (original + hedge) plus the live post-crash lease.
	if js.Assignments != 3 || len(js.Workers) != 3 {
		t.Fatalf("job stats after replay: %+v, want 3 assignments", js)
	}
}
