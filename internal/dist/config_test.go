package dist

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/md"
	"spice/internal/obs"
)

// stubBuild satisfies BuildFunc for constructor tests that never run a job.
func stubBuild(json.RawMessage, campaign.Combo, uint64) (*md.Engine, []int, error) {
	panic("stubBuild must not run")
}

func TestDefaultsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("Defaults() must validate: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error
	}{
		{"zero lease TTL", func(c *Config) { c.LeaseTTL = 0 }, "LeaseTTL"},
		{"zero retry base", func(c *Config) { c.RetryBase = 0 }, "RetryBase"},
		{"retry max below base", func(c *Config) { c.RetryMax = c.RetryBase / 2 }, "RetryMax"},
		{"zero max attempts", func(c *Config) { c.MaxAttempts = 0 }, "MaxAttempts"},
		{"negative breaker threshold", func(c *Config) { c.BreakerThreshold = -1 }, "BreakerThreshold"},
		{"negative breaker cooldown", func(c *Config) { c.BreakerCooldown = -time.Second }, "BreakerCooldown"},
		{"hedge fraction one", func(c *Config) { c.HedgeFraction = 1 }, "HedgeFraction"},
		{"negative hedge fraction", func(c *Config) { c.HedgeFraction = -0.1 }, "HedgeFraction"},
		{"negative hedge stall", func(c *Config) { c.HedgeStall = -time.Second }, "HedgeStall"},
		{"negative io timeout", func(c *Config) { c.IOTimeout = -1 }, "IOTimeout"},
		{"zero slots", func(c *Config) { c.Slots = 0 }, "Slots"},
		{"zero beat", func(c *Config) { c.BeatInterval = 0 }, "BeatInterval"},
		{"beat at lease TTL", func(c *Config) { c.BeatInterval = c.LeaseTTL }, "BeatInterval"},
		{"zero checkpoint every", func(c *Config) { c.CheckpointEvery = 0 }, "CheckpointEvery"},
		{"negative throttle", func(c *Config) { c.Throttle = -time.Second }, "Throttle"},
		{"zero reconnect window", func(c *Config) { c.ReconnectWindow = 0 }, "ReconnectWindow"},
		{"zero reconnect backoff", func(c *Config) { c.ReconnectBackoffMax = 0 }, "ReconnectBackoffMax"},
	}
	for _, tc := range cases {
		cfg := Defaults()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %s", tc.name, err, tc.want)
		}
	}
}

// TestConfigZeroDisables checks the "0 disables" flag semantics survive
// the translation onto the legacy field conventions (where zero means
// "use the default" and a negative value disables).
func TestConfigZeroDisables(t *testing.T) {
	cfg := Defaults()
	cfg.BreakerThreshold = 0
	cfg.IOTimeout = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("disabling breaker and io-timeout must validate: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	co, err := NewCoordinator(ln, json.RawMessage(`{}`), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if co.BreakerThreshold >= 0 {
		t.Fatalf("BreakerThreshold 0 must map to the negative disable sentinel, got %d", co.BreakerThreshold)
	}
	if co.IOTimeout >= 0 {
		t.Fatalf("IOTimeout 0 must map to the negative disable sentinel, got %v", co.IOTimeout)
	}

	w, err := NewWorker("w0", "site", "127.0.0.1:1", stubBuild, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.IOTimeout >= 0 {
		t.Fatalf("worker IOTimeout 0 must map to the negative disable sentinel, got %v", w.IOTimeout)
	}
}

func TestNewCoordinatorRejects(t *testing.T) {
	if _, err := NewCoordinator(nil, nil, Defaults()); err == nil {
		t.Fatal("nil listener accepted")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	bad := Defaults()
	bad.LeaseTTL = 0
	if _, err := NewCoordinator(ln, nil, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNewWorkerRejects(t *testing.T) {
	if _, err := NewWorker("w0", "", "", stubBuild, Defaults()); err == nil {
		t.Fatal("empty coordinator address accepted")
	}
	if _, err := NewWorker("w0", "", "127.0.0.1:1", nil, Defaults()); err == nil {
		t.Fatal("nil build function accepted")
	}
}

// TestNewWorkerWiresMetrics: the constructor must both register the
// worker's collector and retain the registry so engines built later get
// the md-layer observers.
func TestNewWorkerWiresMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Defaults()
	cfg.Metrics = reg
	w, err := NewWorker("w0", "", "127.0.0.1:1", stubBuild, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.reg != reg {
		t.Fatal("worker did not retain the metrics registry for engine instrumentation")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `spice_worker_jobs_started_total{worker="w0"} 0`) {
		t.Fatalf("worker collector not registered; scrape:\n%s", sb.String())
	}
}
