package dist

// Per-site health: the coordinator's live model of the paper's §V grid
// pathologies. Every worker carries a site identity (spiced -site; the
// worker name if unset), and the coordinator folds each site's
// scheduling outcomes into a health record — consecutive-failure
// strikes, a circuit breaker, and EWMAs of job latency and
// checkpoint-derived progress rate. The breaker turns the §V.C.4
// security-quarantine outage from a post-mortem anecdote into a live
// scheduling decision: a site that keeps failing or blackholing stops
// receiving work, is re-probed with a single job after a cooldown, and
// re-enters the fleet only when the probe succeeds.

import (
	"sort"
	"time"
)

// breaker states, the classic three-state circuit.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy: work flows freely
	breakerOpen                         // quarantined: no work until cooldown
	breakerHalfOpen                     // probing: exactly one job in flight
)

func (b breakerState) String() string {
	switch b {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// ewmaAlpha weights new latency/rate observations; ~the last four
// observations dominate.
const ewmaAlpha = 0.25

// siteHealth is the coordinator's record for one site. All access is
// under the coordinator's mutex.
type siteHealth struct {
	name string

	// breaker
	strikes  int // consecutive failures since the last success
	state    breakerState
	openedAt time.Time
	trips    int    // closed/half-open → open transitions
	probeJob string // job ID of the in-flight half-open probe, if any

	// counters
	assignments   int
	completions   int
	failures      int // explicit fail messages
	leaseExpiries int
	disconnects   int
	specWon       int // speculations this site won
	specLost      int // leases this site lost to a hedge elsewhere

	// EWMAs
	latEWMA  time.Duration // lease grant → accepted result
	haveLat  bool
	rateEWMA float64 // checkpoint-derived steps/sec
	haveRate bool
}

func (sh *siteHealth) observeLatency(d time.Duration) {
	if !sh.haveLat {
		sh.latEWMA, sh.haveLat = d, true
		return
	}
	sh.latEWMA = time.Duration((1-ewmaAlpha)*float64(sh.latEWMA) + ewmaAlpha*float64(d))
}

func (sh *siteHealth) observeRate(r float64) {
	if !sh.haveRate {
		sh.rateEWMA, sh.haveRate = r, true
		return
	}
	sh.rateEWMA = (1-ewmaAlpha)*sh.rateEWMA + ewmaAlpha*r
}

// admissible reports whether the breaker lets this site take a new
// lease right now. An open breaker past its cooldown admits exactly one
// probe job (the open → half-open transition happens at grant time, in
// grantLocked); a half-open breaker admits nothing while its probe is
// in flight.
func (sh *siteHealth) admissible(now time.Time, cooldown time.Duration) bool {
	switch sh.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return now.Sub(sh.openedAt) >= cooldown
	default: // half-open
		return sh.probeJob == ""
	}
}

// strike records one failure signal (explicit fail, lease expiry,
// disconnect with an active lease, or a demonstrably-crawling lease
// losing a speculation race). Threshold consecutive strikes open the
// breaker; any strike while half-open re-opens it — the probe failed.
func (sh *siteHealth) strike(now time.Time, threshold int) (tripped bool) {
	sh.strikes++
	switch sh.state {
	case breakerClosed:
		if threshold > 0 && sh.strikes >= threshold {
			sh.state = breakerOpen
			sh.openedAt = now
			sh.trips++
			return true
		}
	case breakerHalfOpen:
		sh.state = breakerOpen
		sh.openedAt = now
		sh.trips++
		sh.probeJob = ""
		return true
	}
	return false
}

// success records an accepted result from the site: strikes reset and
// the breaker closes (a half-open probe that completes is the proof of
// recovery the paper's quarantined site never got to give).
func (sh *siteHealth) success() (closed bool) {
	sh.strikes = 0
	sh.probeJob = ""
	if sh.state != breakerClosed {
		sh.state = breakerClosed
		return true
	}
	return false
}

// clearProbe forgets the in-flight probe if it was job id (the probe's
// lease ended without a verdict, e.g. its conn died — strike handles
// the verdict cases).
func (sh *siteHealth) clearProbe(id string) {
	if sh.probeJob == id {
		sh.probeJob = ""
	}
}

// SiteStats is the exported per-site health snapshot.
type SiteStats struct {
	Site          string
	Assignments   int
	Completions   int
	Failures      int // explicit fail messages from this site's workers
	LeaseExpiries int
	Disconnects   int
	SpecWon       int // speculation races this site won
	SpecLost      int // leases this site lost to a hedge elsewhere
	// Breaker is the current state: "closed", "open" or "half-open".
	Breaker string
	// BreakerTrips counts transitions into open (quarantine events).
	BreakerTrips int
	// Strikes is the current consecutive-failure count.
	Strikes int
	// RateEWMA is the site's smoothed checkpoint-derived progress rate
	// in steps/sec (0 until the first checkpoint delta is observed).
	RateEWMA float64
	// LatencyEWMA is the smoothed lease-grant → result latency.
	LatencyEWMA time.Duration
}

// SiteStats returns the per-site health table keyed by site name.
func (co *Coordinator) SiteStats() map[string]SiteStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.siteStatsLocked()
}

func (co *Coordinator) siteStatsLocked() map[string]SiteStats {
	out := make(map[string]SiteStats, len(co.sites))
	for name, sh := range co.sites {
		st := SiteStats{
			Site:          name,
			Assignments:   sh.assignments,
			Completions:   sh.completions,
			Failures:      sh.failures,
			LeaseExpiries: sh.leaseExpiries,
			Disconnects:   sh.disconnects,
			SpecWon:       sh.specWon,
			SpecLost:      sh.specLost,
			Breaker:       sh.state.String(),
			BreakerTrips:  sh.trips,
			Strikes:       sh.strikes,
		}
		if sh.haveRate {
			st.RateEWMA = sh.rateEWMA
		}
		if sh.haveLat {
			st.LatencyEWMA = sh.latEWMA
		}
		out[name] = st
	}
	return out
}

// siteLocked returns (creating if needed) the health record for a site.
// Caller holds mu.
func (co *Coordinator) siteLocked(name string) *siteHealth {
	if name == "" {
		name = "?"
	}
	if co.sites == nil {
		co.sites = make(map[string]*siteHealth)
	}
	sh := co.sites[name]
	if sh == nil {
		sh = &siteHealth{name: name}
		co.sites[name] = sh
	}
	return sh
}

// fleetMedianRate returns the upper median of all sites' progress-rate
// EWMAs, and whether at least two sites have one — the comparison basis
// for rate-based straggler detection. Using site EWMAs rather than only
// live leases keeps the baseline meaningful after fast sites drain the
// queue and idle. Caller holds mu.
func (co *Coordinator) fleetMedianRate() (float64, bool) {
	rates := make([]float64, 0, len(co.sites))
	for _, sh := range co.sites {
		if sh.haveRate {
			rates = append(rates, sh.rateEWMA)
		}
	}
	if len(rates) < 2 {
		return 0, false
	}
	sort.Float64s(rates)
	return rates[len(rates)/2], true
}
