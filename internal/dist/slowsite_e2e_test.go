package dist_test

// The slow-site chaos scenario: a federated sweep where one site is
// degraded but alive — its compute throttled roughly 10× and its link
// shaped with latency and a bandwidth cap (netsim.Gate) — while a
// healthy site runs at full speed. Nothing ever times out a lease: the
// slow worker heartbeats on schedule the whole way. Recovery has to
// come from the resilience layer instead: the coordinator must notice
// the crawling checkpoint rate, hedge the job speculatively onto the
// healthy site, accept whichever attempt finishes first, and strike the
// slow site's breaker for losing a race it was demonstrably crawling
// through. The merged PMF must be bit-identical to an unhindered run —
// duplicated execution may never show up in the science.

import (
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/netsim"
	"spice/internal/obs"
)

// siteWorker declares one in-process worker for startSiteWorkers.
type siteWorker struct {
	name, site string
	throttle   time.Duration
	dial       func(string) (net.Conn, error)
}

// startSiteWorkers launches in-process workers carrying explicit site
// identities; the returned stop cancels them all.
func startSiteWorkers(t *testing.T, addr string, defs []siteWorker) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	for _, d := range defs {
		w := &dist.Worker{
			Name:            d.name,
			Site:            d.site,
			Addr:            addr,
			Build:           core.BuildFromJSON,
			BeatInterval:    20 * time.Millisecond,
			CheckpointEvery: 1,
			Throttle:        d.throttle,
			Dial:            d.dial,
		}
		go w.Run(ctx)
	}
	return cancel
}

func TestChaosSlowSiteSpeculation(t *testing.T) {
	cfg := chaosSweepConfig()
	// Slower pulls than the kill-recovery scenario: more samples per job
	// means both sites stream enough checkpoints for the coordinator to
	// learn per-site progress rates, and the straggling job is still in
	// flight when the hedge window opens.
	cfg.Velocities = []float64{100}
	sysJSON, err := json.Marshal(cfg.System)
	if err != nil {
		t.Fatal(err)
	}

	// Unhindered single-process baseline.
	localCfg := cfg
	localCfg.Workers = 1
	want, err := core.RunSweep(localCfg)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The full observability surface rides along: a registry scraped
	// over real HTTP and an event log whose per-name counts must agree
	// with the final Stats — the drift check the obs layer is built for.
	reg := obs.NewRegistry()
	events := obs.NewEventLog(nil, 4096)
	co := &dist.Coordinator{
		Listener: ln,
		System:   sysJSON,
		// A generous TTL so lease expiry cannot be the recovery path:
		// the slow site beats faithfully, and if the job comes back it
		// must be because speculation raced it home.
		LeaseTTL:         10 * time.Second,
		RetryBase:        10 * time.Millisecond,
		HedgeFraction:    0.3,
		HedgeAfter:       150 * time.Millisecond,
		BreakerThreshold: 1,
		IOTimeout:        10 * time.Second,
		Events:           events,
	}
	t.Cleanup(func() { _ = co.Close() })
	dist.RegisterMetrics(reg, co)
	srv, err := obs.Serve("127.0.0.1:0", reg, events, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	addr := ln.Addr().String()

	// The slow site: compute throttled ~10× relative to the healthy
	// workers' pace, dialing through a gate that adds 25ms of latency
	// and caps the link at 256 KB/s in each direction.
	slowLink := netsim.NewGate()
	slowLink.SetShape(
		netsim.Shape{Latency: 25 * time.Millisecond, KBps: 256},
		netsim.Shape{Latency: 25 * time.Millisecond, KBps: 256},
	)
	// Both sites nap at every checkpoint so both stream measurable
	// progress rates; the tarpit naps ~60× longer — degraded but alive.
	stopWorkers := startSiteWorkers(t, addr, []siteWorker{
		{name: "tarpit-0", site: "tarpit", throttle: 300 * time.Millisecond, dial: slowLink.Dial(nil)},
		{name: "quick-0", site: "quick", throttle: 5 * time.Millisecond},
		{name: "quick-1", site: "quick", throttle: 5 * time.Millisecond},
	})
	defer stopWorkers()

	distCfg := cfg
	distCfg.Runner = co
	type sweepOut struct {
		res *core.SweepResult
		err error
	}
	resCh := make(chan sweepOut, 1)
	go func() {
		res, err := core.RunSweep(distCfg)
		resCh <- sweepOut{res, err}
	}()

	// The hard timeout doubles as the connection-hygiene assertion: with
	// per-I/O deadlines armed everywhere, a shaped, saturated link can
	// slow the campaign but never wedge a read forever.
	var got *core.SweepResult
	select {
	case out := <-resCh:
		if out.err != nil {
			t.Fatal(out.err)
		}
		got = out.res
	case <-time.After(120 * time.Second):
		t.Fatal("sweep wedged: a read outlived every deadline")
	}

	requireBitIdenticalLogs(t, want.Logs, got.Logs)
	for i := range want.Reference {
		if got.Reference[i] != want.Reference[i] {
			t.Fatalf("reference PMF diverges at %d: %v != %v", i, got.Reference[i], want.Reference[i])
		}
	}
	for i := range want.Best.PMF {
		if got.Best.PMF[i] != want.Best.PMF[i] {
			t.Fatalf("merged PMF diverges at %d: %v != %v", i, got.Best.PMF[i], want.Best.PMF[i])
		}
	}

	st := co.Stats()
	if st.StragglersDetected < 1 {
		t.Fatalf("slow site was never flagged as a straggler: %+v", st)
	}
	if st.SpeculationsLaunched < 1 || st.SpeculationsWon < 1 {
		t.Fatalf("speculation did not launch and win: launched=%d won=%d",
			st.SpeculationsLaunched, st.SpeculationsWon)
	}
	if st.LeaseExpiries != 0 {
		t.Fatalf("recovery leaked into lease expiry (TTL should never fire here): %+v", st)
	}
	if st.Failures != 0 {
		t.Fatalf("unexpected worker failures: %+v", st)
	}

	sites := co.SiteStats()
	slow, ok := sites["tarpit"]
	if !ok {
		t.Fatalf("slow site missing from site stats: %v", sites)
	}
	if slow.SpecLost < 1 {
		t.Fatalf("slow site never lost a speculation race: %+v", slow)
	}
	// Losing while demonstrably crawling is a strike, and at threshold 1
	// a strike is a quarantine: the breaker must have recorded the trip.
	if slow.BreakerTrips < 1 {
		t.Fatalf("slow site's breaker never tripped: %+v", slow)
	}
	quick, ok := sites["quick"]
	if !ok || quick.SpecWon < 1 {
		t.Fatalf("healthy site never won a speculation: %+v", quick)
	}
	if quick.Breaker != "closed" || quick.BreakerTrips != 0 {
		t.Fatalf("healthy site's breaker disturbed: %+v", quick)
	}

	// The scraped /metrics view must equal the final Stats exactly —
	// the collector renders the same snapshot, so any divergence means
	// a second set of counters has crept in. The campaign is over and
	// every counter below is settled, so exact equality is fair.
	base := "http://" + srv.Addr()
	requireHealthy(t, base)
	m := scrapeProm(t, base+"/metrics")
	requireMetric(t, m, "spice_dist_jobs_total", float64(st.Jobs))
	requireMetric(t, m, "spice_dist_assignments_total", float64(st.Assignments))
	requireMetric(t, m, "spice_dist_retries_total", float64(st.Retries))
	requireMetric(t, m, "spice_dist_stragglers_detected_total", float64(st.StragglersDetected))
	requireMetric(t, m, "spice_dist_speculations_launched_total", float64(st.SpeculationsLaunched))
	requireMetric(t, m, "spice_dist_speculations_won_total", float64(st.SpeculationsWon))
	requireMetric(t, m, "spice_dist_speculations_wasted_total", float64(st.SpeculationsWasted))
	requireMetric(t, m, "spice_dist_breaker_trips_total", float64(st.BreakerTrips))
	requireMetric(t, m, "spice_dist_lease_expiries_total", 0)
	requireMetric(t, m, "spice_dist_failures_total", 0)
	requireMetric(t, m, `spice_dist_site_spec_won{site="quick"}`, float64(quick.SpecWon))
	requireMetric(t, m, `spice_dist_site_breaker_trips{site="tarpit"}`, float64(slow.BreakerTrips))

	// The event log is the third view of the same run: its per-name
	// counts must agree with the counters, and its span keys must line
	// up with the jobs the coordinator actually leased.
	if n := events.Count("lease_granted"); n != int64(st.Assignments) {
		t.Fatalf("event log saw %d lease_granted, stats say %d assignments", n, st.Assignments)
	}
	if n := events.Count("straggler_flagged"); n != int64(st.StragglersDetected) {
		t.Fatalf("event log saw %d straggler_flagged, stats say %d", n, st.StragglersDetected)
	}
	if n := events.Count("breaker_open"); n != int64(st.BreakerTrips) {
		t.Fatalf("event log saw %d breaker_open, stats say %d trips", n, st.BreakerTrips)
	}
	hedges := int64(0)
	jobIDs := map[string]bool{}
	for _, js := range co.JobStats() {
		jobIDs[js.ID] = true
	}
	for _, ev := range events.Recent(4096) {
		if ev.Name == "lease_granted" {
			if h, _ := ev.Fields["hedge"].(bool); h {
				hedges++
			}
			if !jobIDs[ev.Job] {
				t.Fatalf("event %d leases unknown job %q", ev.Seq, ev.Job)
			}
		}
	}
	if hedges != int64(st.SpeculationsLaunched) {
		t.Fatalf("event log saw %d hedged grants, stats say %d speculations", hedges, st.SpeculationsLaunched)
	}
}
