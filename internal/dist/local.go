package dist

// LocalRunner executes campaigns in-process with the same stats surface
// as the Coordinator. campaign.LocalRunner is the minimal pool the
// model layers use; this wrapper runs the identical execution path
// (campaign.ExecutePull with default RunOpts, so results are
// bit-identical by construction) while accounting jobs, per-job
// history and a synthetic "local" site — so a spice run without
// -coordinator still prints the same tables and serves the same
// /metrics families as a federated one.

import (
	"fmt"
	"runtime"
	"sync"

	"spice/internal/campaign"
	"spice/internal/obs"
	"spice/internal/smd"
	"spice/internal/trace"
)

// localSite is the site identity LocalRunner books all work under.
const localSite = "local"

// LocalRunner is an in-process campaign.Runner with the dist stats
// surface. The zero value needs only Build.
type LocalRunner struct {
	// Build constructs a fresh simulation per pull. Required.
	Build campaign.BuildFunc
	// Workers caps concurrency (default NumCPU).
	Workers int
	// Events, if set, receives job_started/job_done events mirroring the
	// worker-side stream.
	Events *obs.EventLog

	mu       sync.Mutex
	stats    Stats
	done     int // pulls completed successfully
	jobStats map[string]*JobStats
}

var (
	_ campaign.Runner = (*LocalRunner)(nil)
	_ StatsSource     = (*LocalRunner)(nil)
)

// Run executes all pulls of spec and returns the work logs grouped by
// combo, bit-identical to campaign.LocalRunner (same tasks, same seeds,
// same ExecutePull path).
func (lr *LocalRunner) Run(spec campaign.Spec) (map[campaign.Combo][]*trace.WorkLog, error) {
	if lr.Build == nil {
		return nil, fmt.Errorf("dist: LocalRunner needs a Build function")
	}
	workers := lr.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	tasks := spec.Tasks()
	lr.mu.Lock()
	if lr.jobStats == nil {
		lr.jobStats = make(map[string]*JobStats)
	}
	lr.stats.Jobs += len(tasks)
	lr.mu.Unlock()

	logs := make([]*trace.WorkLog, len(tasks))
	errs := make([]error, len(tasks))
	taskCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := fmt.Sprintf("%s/%d", localSite, w)
			for i := range taskCh {
				t := tasks[i]
				id := fmt.Sprintf("smdje-%s-r%d", t.Combo, t.Index)
				lr.startJob(id, worker)
				logs[i], errs[i] = campaign.ExecutePull(spec, t, lr.Build, smd.RunOpts{})
				lr.finishJob(id, worker, errs[i])
			}
		}(w)
	}
	for i := range tasks {
		taskCh <- i
	}
	close(taskCh)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dist: pull %s replica %d: %w", tasks[i].Combo, tasks[i].Index, err)
		}
	}
	return campaign.Collate(tasks, logs), nil
}

func (lr *LocalRunner) startJob(id, worker string) {
	lr.mu.Lock()
	lr.stats.Assignments++
	js := lr.jobStats[id]
	if js == nil {
		js = &JobStats{ID: id}
		lr.jobStats[id] = js
	}
	js.Assignments++
	js.Workers = append(js.Workers, worker)
	lr.mu.Unlock()
	lr.Events.Emit(obs.Event{Name: "job_started", Job: id, Site: localSite, Worker: worker})
}

func (lr *LocalRunner) finishJob(id, worker string, err error) {
	lr.mu.Lock()
	name := "job_done"
	var fields map[string]any
	if err != nil {
		lr.stats.Failures++
		name = "job_failed"
		fields = map[string]any{"error": err.Error()}
	} else {
		lr.done++
	}
	lr.mu.Unlock()
	lr.Events.Emit(obs.Event{Name: name, Job: id, Site: localSite, Worker: worker, Fields: fields})
}

// StatsSnapshot implements StatsSource. The site table carries the one
// synthetic "local" site so site-keyed consumers (statsfmt, /metrics)
// work unchanged.
func (lr *LocalRunner) StatsSnapshot() Snapshot {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	jobs := make(map[string]JobStats, len(lr.jobStats))
	for id, js := range lr.jobStats {
		cp := *js
		cp.Workers = append([]string(nil), js.Workers...)
		jobs[id] = cp
	}
	return Snapshot{
		Stats: lr.stats,
		Jobs:  jobs,
		Sites: map[string]SiteStats{localSite: {
			Site:        localSite,
			Assignments: lr.stats.Assignments,
			Completions: lr.done,
			Failures:    lr.stats.Failures,
			Breaker:     breakerClosed.String(),
		}},
	}
}
