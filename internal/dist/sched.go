package dist

// Multi-campaign scheduling surface. The coordinator holds a *set* of
// active campaigns (each installed by a RunTagged call, typically from
// the control plane's queue) and, every time an idle worker asks for
// work, decides which campaign's jobs to offer first. That decision is
// delegated to a Scheduler so the policy — priority, tenant fair share,
// quotas, backfill — lives outside the lease machinery and can be
// shared with the discrete-event simulator (internal/grid) and the
// control plane (internal/controlplane).
//
// Scheduling order never affects results: every job is bit-exact
// deterministic given its (combo, seed, index), so any interleaving of
// campaigns merges to byte-identical PMFs. The Scheduler decides only
// *when* work runs, never *what* it computes.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"spice/internal/campaign"
)

// CampaignTag is submitter-side identity attached to a campaign: the
// tenant it is accounted to, its base scheduling priority, and an
// optional name distinguishing otherwise-identical submissions. The
// zero tag is the legacy single-tenant Run behavior.
type CampaignTag struct {
	// Tenant is the fair-share/quota accounting identity ("" = the
	// anonymous shared tenant).
	Tenant string `json:"tenant,omitempty"`
	// Priority is the base scheduling priority (higher first, 0 default).
	Priority int `json:"priority,omitempty"`
	// Name distinguishes submissions with identical specs — without it
	// two identical specs from the same tenant are one campaign.
	Name string `json:"name,omitempty"`
}

// CampaignView is the read-only scheduling view of one active campaign,
// handed to the Scheduler on every offer and returned by Campaigns().
type CampaignView struct {
	// Key is the campaign's stable identity (see SpecKey).
	Key string
	// Tenant and Priority echo the submission tag.
	Tenant   string
	Priority int
	// Seq is the install order within this coordinator process — the
	// FCFS tiebreak.
	Seq int
	// Submitted is when this process installed the campaign.
	Submitted time.Time
	// Job counts: Pending are runnable-or-backing-off, Leased are in
	// flight on workers, Done are completed. Total = Pending+Leased+Done.
	Pending int
	Leased  int
	Done    int
	Total   int
}

// Scheduler orders the active campaigns each time a worker asks for
// work. Offer returns indices into camps in offer order; campaigns
// whose index is omitted are offered nothing this round — which is how
// a policy enforces quotas (omit a tenant over its running-job limit)
// and backfill discipline. A nil Scheduler offers campaigns in install
// order (the legacy behavior, and plain FCFS across tenants).
type Scheduler interface {
	Offer(now time.Time, camps []CampaignView) []int
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(now time.Time, camps []CampaignView) []int

// Offer implements Scheduler.
func (f SchedulerFunc) Offer(now time.Time, camps []CampaignView) []int { return f(now, camps) }

// SpecKey returns the stable identity of a (spec, tag) submission: a
// short hash of the tag and the spec's canonical JSON. It is the same
// key the journal uses for replay attribution and the control plane
// uses for job-ID scoping, so it survives coordinator restarts.
func SpecKey(spec campaign.Spec, tag CampaignTag) (string, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("dist: encoding spec: %w", err)
	}
	return campaignKeyTagged(tag, specJSON), nil
}

// campaignKeyTagged derives the campaign key from a tag plus the spec
// JSON. A zero tag hashes the spec bytes alone, which keeps the key of
// legacy untagged Runs identical to the historical campaignKey — and
// with it the journal replay keys of pre-tag state directories.
func campaignKeyTagged(tag CampaignTag, specJSON []byte) string {
	h := fnv.New64a()
	if tag != (CampaignTag{}) {
		fmt.Fprintf(h, "%s|%d|%s|", tag.Tenant, tag.Priority, tag.Name)
	}
	h.Write(specJSON)
	return fmt.Sprintf("c-%08x", uint32(h.Sum64()))
}
