package dist

// End-to-end tests for the versioned wire transport: every cell of the
// version matrix (old↔new in both directions, mixed fleets) must merge
// campaign output bit-identical to a single-process LocalRunner, the
// delta-checkpoint fold must survive worker loss and coordinator
// crashes, and a hand-rolled v1 client pins the NeedFull healing
// protocol byte by byte.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/netsim"
	"spice/internal/trace"
	"spice/internal/wire"
)

// v1Worker turns a startWorkers-spawned worker into a full v1 client:
// binary framing, compression, delta checkpoints, and a checkpoint per
// sample (throttled so several heartbeats fit inside one job).
func v1Worker(w *Worker) {
	w.WireVersion = wire.V1
	w.Compression = true
	w.DeltaCheckpoints = true
	w.CheckpointEvery = 1
	w.Throttle = 10 * time.Millisecond
}

// TestWireMatrixBitIdentical runs the cross-version matrix. Whatever
// the two sides negotiate — legacy JSON on either end, full v1 with
// deltas and compression, or a mixed fleet speaking both at once — the
// merged PMF inputs must be bit-identical to the LocalRunner baseline.
func TestWireMatrixBitIdentical(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	cells := []struct {
		name    string
		coV1    bool // coordinator grants v1 + delta + compression
		workers int
		mutate  func(i int, w *Worker)
		check   func(t *testing.T, st Stats, ws []*Worker)
	}{
		{
			// New coordinator, old fleet: every hello offers 0, every
			// connection stays on JSON lines.
			name: "v1-coordinator-v0-workers", coV1: true, workers: 3,
			check: func(t *testing.T, st Stats, ws []*Worker) {
				if st.WireV0Conns < 3 || st.WireV1Conns != 0 {
					t.Fatalf("wire conns v0=%d v1=%d, want all v0", st.WireV0Conns, st.WireV1Conns)
				}
			},
		},
		{
			// Old coordinator, new fleet: workers offer v1, the grant
			// caps them at v0. No downgrade event — v0 is a known version.
			name: "v0-coordinator-v1-workers", coV1: false, workers: 3,
			mutate: func(i int, w *Worker) { v1Worker(w) },
			check: func(t *testing.T, st Stats, ws []*Worker) {
				if st.WireV0Conns < 3 || st.WireV1Conns != 0 || st.WireDowngrades != 0 {
					t.Fatalf("wire conns v0=%d v1=%d downgrades=%d, want all v0 without downgrades",
						st.WireV0Conns, st.WireV1Conns, st.WireDowngrades)
				}
			},
		},
		{
			// Full v1: deltas must actually fold, and the raw/wire byte
			// ratio must show the transport doing work.
			name: "v1-delta-compression", coV1: true, workers: 3,
			mutate: func(i int, w *Worker) { v1Worker(w) },
			check: func(t *testing.T, st Stats, ws []*Worker) {
				if st.WireV1Conns < 3 {
					t.Fatalf("WireV1Conns = %d, want >= 3", st.WireV1Conns)
				}
				if st.DeltasFolded < 1 {
					t.Fatalf("no deltas folded: %+v", st)
				}
				var raw, sent int64
				for _, w := range ws {
					ws := w.WorkerStats()
					raw += ws.CheckpointRawBytes
					sent += ws.CheckpointBytes
				}
				if raw == 0 || sent >= raw {
					t.Fatalf("checkpoint bytes: %d on the wire for %d raw, want a reduction", sent, raw)
				}
			},
		},
		{
			// Mixed fleet: v0 and v1 workers on one coordinator at once.
			name: "mixed-fleet", coV1: true, workers: 4,
			mutate: func(i int, w *Worker) {
				if i%2 == 0 {
					v1Worker(w)
				}
			},
			check: func(t *testing.T, st Stats, ws []*Worker) {
				if st.WireV0Conns < 1 || st.WireV1Conns < 1 {
					t.Fatalf("wire conns v0=%d v1=%d, want both present", st.WireV0Conns, st.WireV1Conns)
				}
				if st.DeltasFolded < 1 {
					t.Fatalf("no deltas folded in the mixed fleet: %+v", st)
				}
			},
		},
	}

	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			co := newCoordinator(t)
			if cell.coV1 {
				co.WireVersion = wire.V1
				co.Compression = true
				co.DeltaCheckpoints = true
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var ws []*Worker
			startWorkers(ctx, co, cell.workers, func(i int, w *Worker) {
				if cell.mutate != nil {
					cell.mutate(i, w)
				}
				ws = append(ws, w)
			})
			got, err := co.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, want, got)
			cell.check(t, co.Stats(), ws)
		})
	}
}

// TestWireV1ClientFoldAndNeedFull drives the delta protocol with a
// hand-rolled v1 client, pinning the healing handshake: a delta against
// a base the coordinator does not hold is answered OK+NeedFull (never
// an error), a full image re-seeds the base, and a well-formed delta is
// folded so the coordinator's stored image equals the client's
// post-delta document byte for byte. A second client offering an
// unknown future version must be downgraded to v0 and still served.
func TestWireV1ClientFoldAndNeedFull(t *testing.T) {
	spec := testSpec()
	co := newCoordinator(t)
	co.WireVersion = wire.V1
	co.Compression = true
	co.DeltaCheckpoints = true

	errCh := make(chan error, 1)
	go func() {
		_, err := co.Run(spec)
		errCh <- err
	}()
	addr := co.Listener.Addr().String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The hello exchange is one JSON line per direction in every
	// version; the negotiated codec takes over at the byte after it.
	hb, err := json.Marshal(&request{Type: msgHello, Name: "hand-v1", Wire: wire.V1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(append(hb, '\n')); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var hello response
	if err := json.Unmarshal(line, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Type != msgOK || hello.Wire != wire.V1 || !hello.Delta || !hello.Comp {
		t.Fatalf("hello grant = %+v, want v1 with delta and compression", hello)
	}
	codec := wire.NewCodec(hello.Wire, br, conn, hello.Comp)
	rt := func(req *request) *response {
		t.Helper()
		if err := codec.Encode(req); err != nil {
			t.Fatal(err)
		}
		var resp response
		if err := codec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return &resp
	}

	assign := rt(&request{Type: msgNext})
	if assign.Type != msgAssign {
		t.Fatalf("next got %q, want assign", assign.Type)
	}
	jobID, attempt := assign.Job.ID, assign.Job.Attempt

	// Synthetic checkpoint documents with advancing step counters, so
	// every fold passes the coordinator's farthest-wins gate.
	ck := func(steps int) []byte {
		return []byte(fmt.Sprintf(`{"steps":%d,"positions":[1.5,2.5,3.5,%d.0]}`, steps, steps))
	}
	progress := func(p *wire.Payload) *response {
		t.Helper()
		return rt(&request{Type: msgProgress, JobID: jobID, Attempt: attempt, Ckpt: p})
	}

	// 1. First checkpoint travels complete (compressed): plain fold.
	ck1 := ck(4)
	if resp := progress(wire.Compress(ck1)); resp.Type != msgOK || resp.NeedFull || resp.Err != "" {
		t.Fatalf("full checkpoint rejected: %+v", resp)
	}
	// 2. A delta against a base the coordinator never held: OK+NeedFull,
	// counted as a base miss, never an error or a torn fold.
	ck2 := ck(8)
	if resp := progress(wire.Delta([]byte(`{"steps":0}`), ck2)); resp.Type != msgOK || !resp.NeedFull {
		t.Fatalf("bogus-base delta: %+v, want OK+NeedFull", resp)
	}
	if st := co.Stats(); st.DeltaBaseMisses != 1 {
		t.Fatalf("DeltaBaseMisses = %d, want 1", st.DeltaBaseMisses)
	}
	// 3. The client obeys NeedFull and re-seeds with a complete image.
	if resp := progress(wire.Compress(ck2)); resp.Type != msgOK || resp.NeedFull {
		t.Fatalf("re-seeding full checkpoint: %+v", resp)
	}
	// 4. A well-formed delta folds cleanly.
	ck3 := ck(12)
	if resp := progress(wire.Delta(ck2, ck3)); resp.Type != msgOK || resp.NeedFull {
		t.Fatalf("valid delta: %+v, want plain OK", resp)
	}
	if st := co.Stats(); st.DeltasFolded < 1 {
		t.Fatalf("DeltasFolded = %d, want >= 1", st.DeltasFolded)
	}
	// The folded image the coordinator would hand a resuming worker must
	// equal the client's post-delta document exactly.
	co.mu.Lock()
	var folded []byte
	if j := co.jobsByID[jobID]; j != nil {
		folded = append([]byte(nil), j.ckpt...)
	}
	co.mu.Unlock()
	if !bytes.Equal(folded, ck3) {
		t.Fatalf("folded image %q, want %q", folded, ck3)
	}

	// A peer from the future: its hello offers a version this build does
	// not know, so it is downgraded to v0 — served, logged, counted.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	hb2, _ := json.Marshal(&request{Type: msgHello, Name: "futuristic", Wire: 99})
	if _, err := conn2.Write(append(hb2, '\n')); err != nil {
		t.Fatal(err)
	}
	line2, err := bufio.NewReader(conn2).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var hello2 response
	if err := json.Unmarshal(line2, &hello2); err != nil {
		t.Fatal(err)
	}
	if hello2.Type != msgOK || hello2.Wire != wire.V0 || hello2.Delta || hello2.Comp {
		t.Fatalf("future hello grant = %+v, want plain v0", hello2)
	}
	if st := co.Stats(); st.WireDowngrades != 1 {
		t.Fatalf("WireDowngrades = %d, want 1", st.WireDowngrades)
	}

	// The checkpoints were synthetic, so the job must not be re-executed
	// from them: cancel the campaign instead of letting it finish.
	key, err := SpecKey(spec, CampaignTag{})
	if err != nil {
		t.Fatal(err)
	}
	if !co.CancelCampaign(key) {
		t.Fatal("CancelCampaign found no campaign")
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCampaignCanceled) {
			t.Fatalf("Run returned %v, want ErrCampaignCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled campaign never returned")
	}
}

// TestDeltaFoldResumeOnWorkerLoss kills a v1 delta-checkpointing worker
// after its deltas have folded, then lets fresh v1 workers resume from
// the folded images. Bit-identical output proves fold-before-spool
// reconstructs exact resume state — the delta path never ships a
// checkpoint the scheduler could not hand to a different worker.
func TestDeltaFoldResumeOnWorkerLoss(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)

	co := newCoordinator(t)
	co.WireVersion = wire.V1
	co.Compression = true
	co.DeltaCheckpoints = true
	co.RetryBase = 5 * time.Millisecond

	resCh := make(chan map[campaign.Combo][]*trace.WorkLog, 1)
	errCh := make(chan error, 1)
	go func() {
		logs, err := co.Run(spec)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- logs
	}()

	doomedCtx, killDoomed := context.WithCancel(context.Background())
	defer killDoomed()
	startWorkers(doomedCtx, co, 1, func(i int, w *Worker) {
		w.Name = "doomed-v1"
		v1Worker(w)
		w.Throttle = 30 * time.Millisecond
	})

	// Only kill once at least one delta has folded, so the checkpoint a
	// successor resumes from was reconstructed, not received whole.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := co.Stats(); st.DeltasFolded > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no delta ever folded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	killDoomed()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startWorkers(ctx, co, 2, func(i int, w *Worker) { v1Worker(w) })

	select {
	case logs := <-resCh:
		requireBitIdentical(t, want, logs)
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(60 * time.Second):
		t.Fatal("campaign did not finish after v1 worker loss")
	}
	st := co.Stats()
	if st.Resumes < 1 {
		t.Fatalf("expected a resume from a folded checkpoint, stats = %+v", st)
	}
	if st.DeltasFolded < 1 {
		t.Fatalf("expected folded deltas, stats = %+v", st)
	}
}

// TestDeltaFoldCrashRestart is the journal-recovery test on the v1
// transport: the coordinator is crashed (SIGKILL-shaped: listener gone,
// connections black-holed) after delta checkpoints have folded into the
// spool, and a fresh coordinator over the same state directory must
// finish the campaign bit-identically from those folded images. Workers
// reconnect mid-delta-chain; the CRC check on their next delta either
// matches the replayed base or heals through OK+NeedFull.
func TestDeltaFoldCrashRestart(t *testing.T) {
	spec := testSpec()
	want := localBaseline(t, spec)
	stateDir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	gate := netsim.NewGate()
	co1 := &Coordinator{
		Listener:         ln,
		System:           json.RawMessage(`{"beads":3}`),
		LeaseTTL:         2 * time.Second,
		StateDir:         stateDir,
		WrapConn:         gate.Wrap,
		WireVersion:      wire.V1,
		Compression:      true,
		DeltaCheckpoints: true,
	}
	go func() {
		// Dies with the simulated crash; only its journal and spool
		// survive into the second act.
		_, _ = co1.Run(spec)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		w := &Worker{
			Name:             fmt.Sprintf("survivor-v1-%d", i),
			Addr:             addr,
			Build:            testBuild,
			BeatInterval:     20 * time.Millisecond,
			CheckpointEvery:  1,
			Throttle:         20 * time.Millisecond,
			Reconnect:        true,
			ReconnectWindow:  30 * time.Second,
			WireVersion:      wire.V1,
			Compression:      true,
			DeltaCheckpoints: true,
		}
		go w.Run(ctx)
	}

	// Crash only after both jobs have spooled checkpoints AND at least
	// one spooled image came out of a delta fold.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if len(spooledCheckpoints(t, stateDir)) >= 2 && co1.Stats().DeltasFolded > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("folded checkpoints never reached the spool (stats %+v)", co1.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ln.Close()
	gate.Blackhole(0)

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	co2 := &Coordinator{
		Listener:         ln2,
		System:           json.RawMessage(`{"beads":3}`),
		LeaseTTL:         2 * time.Second,
		RetryBase:        10 * time.Millisecond,
		StateDir:         stateDir,
		WireVersion:      wire.V1,
		Compression:      true,
		DeltaCheckpoints: true,
	}
	t.Cleanup(func() { _ = co2.Close() })

	got, err := co2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	st := co2.Stats()
	if st.Restarts != 1 {
		t.Fatalf("stats.Restarts = %d, want 1", st.Restarts)
	}
	if st.Resumes+st.Adoptions < 1 {
		t.Fatalf("nothing resumed or adopted after the crash, stats = %+v", st)
	}
}
