// Package dist is a TCP coordinator/worker runtime that executes SMD-JE
// campaigns across OS processes — the working stand-in for the paper's
// federated grid execution (§III: jobs farmed out to whichever sites
// have free cycles, surviving node loss mid-campaign).
//
// The coordinator shards a campaign.Spec into its deterministic task
// list and hands tasks out under leases: a worker must heartbeat within
// the lease TTL or the job is revoked and requeued (with exponential
// backoff) for another worker. Workers stream periodic checkpoints back
// with their heartbeats, so a revoked or failed job resumes on its next
// worker from the last checkpoint rather than from scratch — and
// because engine checkpoints are bit-exact (RNG streams, neighbor-list
// reference positions, cached forces), the merged campaign output is
// bit-identical to a single-process campaign.LocalRunner run no matter
// how many workers ran it, in what order, or how many died.
//
// The wire format is JSON-lines over TCP, one request and one response
// object per line, exactly like the steering remote bridge: the
// transport stays debuggable with netcat and needs nothing beyond the
// standard library.
package dist

import (
	"encoding/json"

	"spice/internal/campaign"
	"spice/internal/trace"
)

// Wire message types. The conversation is strictly request/response,
// worker-initiated: every worker line gets exactly one coordinator line
// back, so framing never needs message IDs.
const (
	// worker → coordinator
	msgHello    = "hello"    // register; reply carries the system payload
	msgNext     = "next"     // request a job; reply assign/wait/drained
	msgBeat     = "beat"     // lease heartbeat, no new checkpoint
	msgProgress = "progress" // heartbeat carrying a fresh checkpoint
	msgResult   = "result"   // job finished, log attached
	msgFail     = "fail"     // job failed on this worker

	// coordinator → worker
	msgOK      = "ok"      // ack; hello's ok carries the system payload
	msgAssign  = "assign"  // here is a job (spec + maybe a resume checkpoint)
	msgWait    = "wait"    // nothing runnable right now, retry in DelayMs
	msgDrained = "drained" // coordinator is closing for good, disconnect
	msgAbandon = "abandon" // lease was revoked; stop working on the job
	// msgRetry answers a result the coordinator cannot durably record
	// right now (degraded storage): the worker keeps the line in its
	// outbox and retransmits after DelayMs. Unlike ok-with-err this is
	// NOT an acknowledgment — the result is neither merged nor dropped,
	// so a storage outage never turns into an acked-but-lost result.
	msgRetry = "retry"
)

// request is a worker → coordinator line.
type request struct {
	Type string `json:"type"`
	Name string `json:"name,omitempty"` // hello: worker name
	// Site is the worker's site identity on hello (spiced -site) — the
	// grain at which the coordinator tracks health, runs circuit
	// breakers, and places speculative hedges (never on the site already
	// holding the lease). Empty falls back to the worker name, so every
	// unconfigured worker is its own one-machine site.
	Site  string `json:"site,omitempty"`
	JobID string `json:"jobId,omitempty"` // beat/progress/result/fail
	// Attempt echoes the lease attempt the worker was assigned, making
	// result/fail handling idempotent by (job, attempt): a line from a
	// lease the coordinator already retired is acked and dropped rather
	// than applied twice. 0 (old workers) is treated as a wildcard.
	Attempt int `json:"attempt,omitempty"`
	// Ckpt is the JSON-encoded smd.PullCheckpoint on progress lines. It
	// stays opaque to the coordinator, which only stores and forwards it.
	Ckpt json.RawMessage `json:"ckpt,omitempty"`
	// Log is the result payload. Go's encoding/json prints float64
	// values with enough digits to round-trip exactly, so shipping work
	// samples as JSON preserves bit-identity.
	Log *trace.WorkLog `json:"log,omitempty"`
	Err string         `json:"err,omitempty"` // fail reason
}

// response is a coordinator → worker line.
type response struct {
	Type    string          `json:"type"`
	Job     *wireJob        `json:"job,omitempty"`     // assign
	Resume  json.RawMessage `json:"resume,omitempty"`  // assign: last checkpoint
	DelayMs int             `json:"delayMs,omitempty"` // wait
	// Spec rides on assign lines (campaigns change between jobs on a
	// long-lived coordinator); System rides on the hello reply.
	Spec   *campaign.Spec  `json:"spec,omitempty"`
	System json.RawMessage `json:"system,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// wireJob identifies one pull assignment.
type wireJob struct {
	ID      string         `json:"id"`
	Combo   campaign.Combo `json:"combo"`
	Seed    uint64         `json:"seed"`
	Index   int            `json:"index"`
	Attempt int            `json:"attempt,omitempty"` // lease attempt to echo back
}
