// Package dist is a TCP coordinator/worker runtime that executes SMD-JE
// campaigns across OS processes — the working stand-in for the paper's
// federated grid execution (§III: jobs farmed out to whichever sites
// have free cycles, surviving node loss mid-campaign).
//
// The coordinator shards a campaign.Spec into its deterministic task
// list and hands tasks out under leases: a worker must heartbeat within
// the lease TTL or the job is revoked and requeued (with exponential
// backoff) for another worker. Workers stream periodic checkpoints back
// with their heartbeats, so a revoked or failed job resumes on its next
// worker from the last checkpoint rather than from scratch — and
// because engine checkpoints are bit-exact (RNG streams, neighbor-list
// reference positions, cached forces), the merged campaign output is
// bit-identical to a single-process campaign.LocalRunner run no matter
// how many workers ran it, in what order, or how many died.
//
// The transport is versioned and negotiated per connection by
// internal/wire. v0 is JSON-lines over TCP, one request and one
// response object per line, exactly like the steering remote bridge —
// debuggable with netcat, spoken by every worker ever built. v1 frames
// messages as CRC-checked binary records with compressed payloads and
// delta-encoded checkpoints; see the wire package for the format and
// DESIGN.md §15 for the negotiation and fold invariants.
package dist

import (
	"spice/internal/wire"
)

// The message vocabulary lives in internal/wire (the codec layer owns
// the wire contract); dist keeps its historical short names as aliases.
const (
	msgHello    = wire.MsgHello
	msgNext     = wire.MsgNext
	msgBeat     = wire.MsgBeat
	msgProgress = wire.MsgProgress
	msgResult   = wire.MsgResult
	msgFail     = wire.MsgFail

	msgOK      = wire.MsgOK
	msgAssign  = wire.MsgAssign
	msgWait    = wire.MsgWait
	msgDrained = wire.MsgDrained
	msgAbandon = wire.MsgAbandon
	msgRetry   = wire.MsgRetry
)

type (
	request  = wire.Request
	response = wire.Response
	wireJob  = wire.Job
)
