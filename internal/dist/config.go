package dist

// Config is the one knob surface for the dist runtime. The Coordinator
// and Worker structs grew a field per PR — lease TTL, retry backoff,
// breaker, hedging, io-timeout, state dir, reconnect policy, and now
// observability hooks — each with its own zero-value convention
// ("0 means default" here, "0 disables, negative sentinel" there,
// mapped by hand in every flag parser). Config collapses them into one
// validated struct with flag semantics throughout: what you set is what
// runs, 0 disables the optional machinery, and Defaults() is the single
// statement of production defaults. cmd/spice and cmd/spiced build a
// Config from flags in one place and hand it to NewCoordinator /
// NewWorker, which translate to the legacy field conventions.
//
// Direct struct construction (&Coordinator{...}, &Worker{...}) keeps
// its historical zero-value behavior — nothing is silently deprecated;
// DESIGN.md §10 documents the field mapping.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"spice/internal/backoff"
	"spice/internal/faultfs"
	"spice/internal/obs"
	"spice/internal/wire"
)

// Config carries every dist runtime knob. Semantics are uniform flag
// semantics: the value set is the value used, and 0 disables optional
// subsystems (breaker, hedging, io-timeout, reconnect window has no
// disable — it bounds a retry loop). Start from Defaults() and override.
type Config struct {
	// --- Scheduling (coordinator) ---

	// LeaseTTL is how long a job survives without a heartbeat before it
	// is revoked and requeued.
	LeaseTTL time.Duration
	// RetryBase and RetryMax bound the exponential, deterministically
	// jittered backoff before a revoked or failed job is re-leased.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxAttempts caps lease grants per job before the campaign fails.
	MaxAttempts int
	// StateDir, if non-empty, makes campaigns crash-safe (write-ahead
	// journal + checkpoint spool under this directory).
	StateDir string
	// CompactBytes compacts the write-ahead journal (fold into a
	// snapshot, truncate the log) when journal.log grows past this size.
	// 0 disables compaction.
	CompactBytes int64
	// StorageRetries is how many times a failed journal append is
	// retried with short capped backoff before the coordinator enters
	// the degraded storage state. 0 degrades on the first failure.
	StorageRetries int
	// FS routes every journal and spool operation through an injectable
	// filesystem (faultfs.Injector — the disk-fault chaos hook). Nil
	// uses the real OS filesystem.
	FS faultfs.FS
	// Scheduler, if set, orders the active campaigns each time a worker
	// asks for work — the multi-tenant priority/fair-share/quota hook.
	// Nil offers campaigns in install order.
	Scheduler Scheduler

	// --- Resilience (coordinator) ---

	// BreakerThreshold is the consecutive-failure strike count that
	// opens a site's circuit breaker. 0 disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is the quarantine before an open site is re-probed
	// with a single job. 0 means 2×LeaseTTL.
	BreakerCooldown time.Duration
	// HedgeFraction hedges a job speculatively onto a second site when
	// its checkpoint rate falls below this fraction of the fleet median.
	// 0 disables rate hedging.
	HedgeFraction float64
	// HedgeStall also hedges a job whose step counter has not advanced
	// for this long while still heartbeating. 0 disables stall hedging.
	HedgeStall time.Duration
	// HedgeAfter is the minimum lease age before either hedge trigger
	// may fire. 0 means LeaseTTL/2.
	HedgeAfter time.Duration

	// --- Overload protection (coordinator) ---

	// MaxInflight caps worker requests in processing at once; excess
	// work polls are shed with an immediate jittered wait hint, and
	// heartbeat coalescing arms past half the cap. 0 disables shedding.
	MaxInflight int
	// SendQueue bounds each connection's outgoing-response queue; a peer
	// that fills it (a slow consumer) is evicted with its leases kept
	// alive for re-attach. 0 disables the queue (synchronous writes).
	SendQueue int

	// --- Transport (both sides) ---

	// WireVersion is the newest wire protocol version this side speaks:
	// 0 pins the legacy JSON-lines transport, 1 enables binary framing.
	// Each connection negotiates min(coordinator, worker) on hello, so a
	// mixed-version fleet always interoperates; an unknown (future)
	// version offered by a peer downgrades to 0 with a logged event.
	WireVersion int
	// Compression enables lz block compression on bulk payloads
	// (checkpoints, resume images, system configs) on v1+ connections.
	// Ignored on v0 — JSON lines have nowhere to carry the flags.
	Compression bool
	// DeltaCheckpoints makes workers send each progress checkpoint as a
	// delta against the last acknowledged one on v1+ connections; the
	// coordinator folds deltas back into complete images before
	// spooling, so resume and journal replay never see a partial state.
	DeltaCheckpoints bool
	// IOTimeout arms a fresh read/write deadline before every I/O on
	// every dist connection. 0 disables the deadlines.
	IOTimeout time.Duration
	// WrapConn, if set, wraps every connection the coordinator accepts
	// (test QoS shims).
	WrapConn func(net.Conn) net.Conn
	// Dial overrides the worker's transport (test QoS shims). Default
	// net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)

	// --- Execution (worker) ---

	// Slots is the number of jobs a worker runs concurrently (min 1).
	Slots int
	// BeatInterval is the worker heartbeat period. Keep well under
	// LeaseTTL.
	BeatInterval time.Duration
	// CheckpointEvery is the number of recorded samples between
	// checkpoints streamed to the coordinator (min 1).
	CheckpointEvery int
	// Throttle sleeps this long at every checkpoint (test/demo hook).
	Throttle time.Duration
	// Reconnect makes the worker transport self-healing (daemon
	// semantics): re-dial with backoff, retransmit unacked results.
	Reconnect bool
	// ReconnectWindow bounds consecutive reconnect failures before a
	// worker session gives up.
	ReconnectWindow time.Duration
	// ReconnectBackoffMax caps the exponential re-dial backoff.
	ReconnectBackoffMax time.Duration
	// RetryBudget, if set, is a shared token-bucket retry budget for the
	// reconnect loop: when a fleet-wide outage heals, each re-dial spends
	// one token, and sessions that find the bucket empty stretch to the
	// maximum backoff instead of joining the reconnect wave. Share one
	// budget across every worker in a process to bound its aggregate
	// retry rate. Nil means unlimited (every retry on schedule).
	RetryBudget *backoff.Budget

	// --- Observability (both sides) ---

	// Metrics, if set, gets the dist collectors registered on it: the
	// coordinator contributes its full Snapshot (campaign counters +
	// per-site gauges), the worker its execution counters. Serve it with
	// obs.Serve.
	Metrics *obs.Registry
	// Events, if set, receives the structured scheduling event stream
	// (lease grants/expiries, breaker transitions, speculation
	// settlements) with monotonic sequence numbers and the same
	// (job, attempt) keys as the journal.
	Events *obs.EventLog
}

// Defaults returns the production default Config — the same values the
// legacy zero-valued Coordinator/Worker structs resolve to, with the
// resilience layer (breaker + rate hedging) switched on.
func Defaults() Config {
	return Config{
		LeaseTTL:            5 * time.Second,
		RetryBase:           50 * time.Millisecond,
		RetryMax:            2 * time.Second,
		MaxAttempts:         8,
		CompactBytes:        8 << 20,
		StorageRetries:      2,
		BreakerThreshold:    3,
		HedgeFraction:       0.3,
		MaxInflight:         256,
		SendQueue:           32,
		WireVersion:         wire.MaxVersion,
		Compression:         true,
		DeltaCheckpoints:    true,
		IOTimeout:           30 * time.Second,
		Slots:               1,
		BeatInterval:        200 * time.Millisecond,
		CheckpointEvery:     8,
		Reconnect:           true,
		ReconnectWindow:     10 * time.Second,
		ReconnectBackoffMax: time.Second,
	}
}

// Validate checks the Config for values that cannot run. It returns the
// first problem found; a nil error means NewCoordinator/NewWorker will
// accept the Config as-is.
func (c Config) Validate() error {
	switch {
	case c.LeaseTTL <= 0:
		return errors.New("dist: Config.LeaseTTL must be positive")
	case c.RetryBase <= 0:
		return errors.New("dist: Config.RetryBase must be positive")
	case c.RetryMax < c.RetryBase:
		return fmt.Errorf("dist: Config.RetryMax (%v) below RetryBase (%v)", c.RetryMax, c.RetryBase)
	case c.MaxAttempts < 1:
		return errors.New("dist: Config.MaxAttempts must be at least 1")
	case c.CompactBytes < 0:
		return errors.New("dist: Config.CompactBytes must be >= 0 (0 disables)")
	case c.StorageRetries < 0:
		return errors.New("dist: Config.StorageRetries must be >= 0")
	case c.BreakerThreshold < 0:
		return errors.New("dist: Config.BreakerThreshold must be >= 0 (0 disables)")
	case c.BreakerCooldown < 0:
		return errors.New("dist: Config.BreakerCooldown must be >= 0")
	case c.HedgeFraction < 0 || c.HedgeFraction >= 1:
		return fmt.Errorf("dist: Config.HedgeFraction %g outside [0, 1)", c.HedgeFraction)
	case c.HedgeStall < 0:
		return errors.New("dist: Config.HedgeStall must be >= 0")
	case c.HedgeAfter < 0:
		return errors.New("dist: Config.HedgeAfter must be >= 0")
	case c.MaxInflight < 0:
		return errors.New("dist: Config.MaxInflight must be >= 0 (0 disables)")
	case c.SendQueue < 0:
		return errors.New("dist: Config.SendQueue must be >= 0 (0 disables)")
	case c.WireVersion < 0 || c.WireVersion > wire.MaxVersion:
		return fmt.Errorf("dist: Config.WireVersion %d outside [0, %d]", c.WireVersion, wire.MaxVersion)
	case c.IOTimeout < 0:
		return errors.New("dist: Config.IOTimeout must be >= 0 (0 disables)")
	case c.Slots < 1:
		return errors.New("dist: Config.Slots must be at least 1")
	case c.BeatInterval <= 0:
		return errors.New("dist: Config.BeatInterval must be positive")
	case c.BeatInterval >= c.LeaseTTL:
		return fmt.Errorf("dist: Config.BeatInterval (%v) must be below LeaseTTL (%v) or every lease expires",
			c.BeatInterval, c.LeaseTTL)
	case c.CheckpointEvery < 1:
		return errors.New("dist: Config.CheckpointEvery must be at least 1")
	case c.Throttle < 0:
		return errors.New("dist: Config.Throttle must be >= 0")
	case c.ReconnectWindow <= 0:
		return errors.New("dist: Config.ReconnectWindow must be positive")
	case c.ReconnectBackoffMax <= 0:
		return errors.New("dist: Config.ReconnectBackoffMax must be positive")
	}
	return nil
}

// disabledOr maps Config flag semantics ("0 disables") onto the legacy
// field convention ("zero value means default, negative disables").
func disabledOrDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return -1
	}
	return d
}

func disabledOrInt(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

func disabledOrInt64(n int64) int64 {
	if n <= 0 {
		return -1
	}
	return n
}

// NewCoordinator validates cfg and builds a Coordinator listening on
// ln, distributing the opaque system payload to workers. The obs hooks
// are wired: cfg.Metrics gets the Snapshot collector registered,
// cfg.Events receives the scheduling event stream.
func NewCoordinator(ln net.Listener, system json.RawMessage, cfg Config) (*Coordinator, error) {
	if ln == nil {
		return nil, errors.New("dist: NewCoordinator needs a listener")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	co := &Coordinator{
		Listener:         ln,
		System:           system,
		LeaseTTL:         cfg.LeaseTTL,
		RetryBase:        cfg.RetryBase,
		RetryMax:         cfg.RetryMax,
		MaxAttempts:      cfg.MaxAttempts,
		WrapConn:         cfg.WrapConn,
		StateDir:         cfg.StateDir,
		CompactBytes:     disabledOrInt64(cfg.CompactBytes),
		StorageRetries:   disabledOrInt(cfg.StorageRetries),
		FS:               cfg.FS,
		Scheduler:        cfg.Scheduler,
		BreakerThreshold: disabledOrInt(cfg.BreakerThreshold),
		BreakerCooldown:  cfg.BreakerCooldown,
		HedgeFraction:    cfg.HedgeFraction,
		HedgeStall:       cfg.HedgeStall,
		HedgeAfter:       cfg.HedgeAfter,
		MaxInflight:      disabledOrInt(cfg.MaxInflight),
		SendQueue:        disabledOrInt(cfg.SendQueue),
		WireVersion:      cfg.WireVersion,
		Compression:      cfg.Compression,
		DeltaCheckpoints: cfg.DeltaCheckpoints,
		IOTimeout:        disabledOrDuration(cfg.IOTimeout),
		Events:           cfg.Events,
	}
	if cfg.Metrics != nil {
		RegisterMetrics(cfg.Metrics, co)
	}
	return co, nil
}

// NewWorker validates cfg and builds a Worker that pulls jobs from the
// coordinator at addr, building each job's simulation with build. The
// worker's execution counters register on cfg.Metrics when set.
func NewWorker(name, site, addr string, build BuildFunc, cfg Config) (*Worker, error) {
	if addr == "" {
		return nil, errors.New("dist: NewWorker needs a coordinator address")
	}
	if build == nil {
		return nil, errors.New("dist: NewWorker needs a Build function")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Worker{
		Name:                name,
		Site:                site,
		Addr:                addr,
		Slots:               cfg.Slots,
		Build:               build,
		BeatInterval:        cfg.BeatInterval,
		CheckpointEvery:     cfg.CheckpointEvery,
		Throttle:            cfg.Throttle,
		Reconnect:           cfg.Reconnect,
		ReconnectWindow:     cfg.ReconnectWindow,
		ReconnectBackoffMax: cfg.ReconnectBackoffMax,
		RetryBudget:         cfg.RetryBudget,
		Dial:                cfg.Dial,
		WireVersion:         cfg.WireVersion,
		Compression:         cfg.Compression,
		DeltaCheckpoints:    cfg.DeltaCheckpoints,
		IOTimeout:           disabledOrDuration(cfg.IOTimeout),
		Events:              cfg.Events,
	}
	if cfg.Metrics != nil {
		w.RegisterMetrics(cfg.Metrics)
	}
	return w, nil
}
