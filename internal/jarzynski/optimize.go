package jarzynski

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ParamPoint is the analyzed outcome of one (κ, v) parameter combination —
// one curve of the paper's Fig. 4.
type ParamPoint struct {
	// KappaPaper is the spring constant in pN/Å; VPaper the pulling
	// velocity in Å/ns (the paper's units).
	KappaPaper float64
	VPaper     float64

	Grid []float64 // displacement grid, Å
	PMF  []float64 // anchored free energy profile, kcal/mol

	// SigmaStat is the cost-normalized statistical error (kcal/mol).
	SigmaStat float64
	// SigmaSys is the systematic error vs the reference profile.
	SigmaSys float64
	// Samples is the number of trajectories the estimate used.
	Samples int
}

// CombinedError is the quadrature sum of statistical and systematic error.
func (p ParamPoint) CombinedError() float64 {
	return math.Sqrt(p.SigmaStat*p.SigmaStat + p.SigmaSys*p.SigmaSys)
}

// String implements fmt.Stringer.
func (p ParamPoint) String() string {
	return fmt.Sprintf("κ=%g pN/Å v=%g Å/ns (σ_stat=%.3g σ_sys=%.3g, n=%d)",
		p.KappaPaper, p.VPaper, p.SigmaStat, p.SigmaSys, p.Samples)
}

// Optimize implements the paper's §IV parameter selection over a sweep of
// (κ, v) combinations:
//
//  1. rank by combined error;
//  2. among candidates within tol (kcal/mol) of the best combined error,
//     prefer the slowest pulling velocity (slower pulls sample phase space
//     more faithfully — "in general the slower the v, the more accurate
//     the sampling");
//  3. break remaining ties by smaller systematic error, then smaller κ.
//
// It returns an error for an empty sweep.
func Optimize(points []ParamPoint, tol float64) (ParamPoint, error) {
	if len(points) == 0 {
		return ParamPoint{}, errors.New("jarzynski: empty parameter sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		if p.CombinedError() < best.CombinedError() {
			best = p
		}
	}
	candidates := make([]ParamPoint, 0, len(points))
	for _, p := range points {
		if p.CombinedError() <= best.CombinedError()+tol {
			candidates = append(candidates, p)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.VPaper != b.VPaper {
			return a.VPaper < b.VPaper
		}
		if a.SigmaSys != b.SigmaSys {
			return a.SigmaSys < b.SigmaSys
		}
		return a.KappaPaper < b.KappaPaper
	})
	return candidates[0], nil
}

// SpreadAcrossVelocities measures, for a fixed κ, how much the PMFs for
// different velocities disagree: the grid-averaged standard deviation
// across curves. Large spread at low κ is the paper's signature of the
// SMD atoms being "almost un-coupled to the pulling atoms which results
// in a large variation in the ... resulting PMFs for the different v
// values".
func SpreadAcrossVelocities(points []ParamPoint) (float64, error) {
	if len(points) < 2 {
		return 0, errors.New("jarzynski: need >= 2 velocity curves")
	}
	n := len(points[0].PMF)
	for _, p := range points[1:] {
		if len(p.PMF) != n {
			return 0, errors.New("jarzynski: curves have different lengths")
		}
	}
	total := 0.0
	for g := 0; g < n; g++ {
		mean := 0.0
		for _, p := range points {
			mean += p.PMF[g]
		}
		mean /= float64(len(points))
		varsum := 0.0
		for _, p := range points {
			d := p.PMF[g] - mean
			varsum += d * d
		}
		total += math.Sqrt(varsum / float64(len(points)-1))
	}
	return total / float64(n), nil
}

// ReductionFactor estimates the paper's §II claim that SMD-JE reduces the
// net computational requirement by 50-100x. vanillaSteps is the MD steps a
// brute-force equilibrium simulation of the full translocation needs;
// smdSteps the total steps across the SMD-JE ensemble that achieved the
// target accuracy.
func ReductionFactor(vanillaSteps, smdSteps float64) float64 {
	if smdSteps <= 0 {
		return math.Inf(1)
	}
	return vanillaSteps / smdSteps
}
