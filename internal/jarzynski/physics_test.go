package jarzynski_test

// End-to-end physics test: pull a Langevin bead through a known axial
// potential with the SMD protocol and verify Jarzynski's equality recovers
// the true free energy profile. This is the scientific core of the paper
// reproduced in miniature.

import (
	"math"
	"testing"

	"spice/internal/forcefield"
	"spice/internal/jarzynski"
	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/topology"
	"spice/internal/trace"
	"spice/internal/units"
	"spice/internal/vec"
)

// pullThroughWell runs n pulls of a single bead through a Gaussian well
// centered mid-pull and returns the work logs.
func pullThroughWell(t *testing.T, n int, kappaPN, vAns float64, depth float64) []*trace.WorkLog {
	t.Helper()
	logs := make([]*trace.WorkLog, 0, n)
	for i := 0; i < n; i++ {
		top := topology.New()
		top.AddAtom(topology.Atom{Kind: topology.KindDNA, Mass: 325, Radius: 3})
		well := &forcefield.BindingSites{
			Sites: []forcefield.BindingSite{{Z: 5, Depth: depth, Width: 1.5}},
			Atoms: []int{0},
		}
		eng, err := md.New(md.Config{
			Top:   top,
			Init:  []vec.V{{}},
			Terms: []forcefield.Term{well},
			Seed:  uint64(1000 + i),
			DT:    0.02, // single smooth dof: a large step is fine
		})
		if err != nil {
			t.Fatal(err)
		}
		p := smd.Protocol{
			Kappa:       units.SpringFromPaper(kappaPN),
			Velocity:    units.VelocityFromPaper(vAns),
			Axis:        vec.V{Z: 1},
			Atoms:       []int{0},
			Distance:    10,
			SampleEvery: 0.5,
		}
		pl, err := smd.Attach(eng, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pl.Run(eng, p, uint64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, res.Log)
	}
	return logs
}

func wellProfile(grid []float64, depth float64) []float64 {
	ref := make([]float64, len(grid))
	for i, g := range grid {
		dz := g - 5
		ref[i] = -depth * math.Exp(-dz*dz/(2*1.5*1.5))
	}
	// Anchor like the estimators do.
	r0 := ref[0]
	for i := range ref {
		ref[i] -= r0
	}
	return ref
}

func TestJarzynskiRecoversGaussianWell(t *testing.T) {
	if testing.Short() {
		t.Skip("physics integration test")
	}
	const depth = 1.5
	// Stiff spring, slow pull: dissipation mγv·d ≈ 0.2 kcal/mol at
	// v = 25 Å/ns, small against the well depth; 16 samples.
	logs := pullThroughWell(t, 16, 300, 25, depth)
	e, err := jarzynski.NewEnsemble(300, logs)
	if err != nil {
		t.Fatal(err)
	}
	pmf, err := e.PMF(jarzynski.Cumulant2)
	if err != nil {
		t.Fatal(err)
	}
	ref := wellProfile(e.Grid, depth)
	rmsd, err := jarzynski.SystematicError(pmf, ref)
	if err != nil {
		t.Fatal(err)
	}
	if rmsd > 0.45 {
		t.Fatalf("PMF deviates from true profile by %v kcal/mol RMSD (pmf=%v ref=%v)", rmsd, pmf, ref)
	}
	// The well must actually be resolved: minimum within the right
	// depth range near z=5.
	minV, minAt := math.Inf(1), -1.0
	for i, v := range pmf {
		if v < minV {
			minV, minAt = v, e.Grid[i]
		}
	}
	if math.Abs(minAt-5) > 1.5 {
		t.Fatalf("well located at %v, want ~5", minAt)
	}
	if minV > -0.5*depth || minV < -1.6*depth {
		t.Fatalf("well depth = %v, want ~-%v", minV, depth)
	}
}

func TestFastPullOverestimatesBarrier(t *testing.T) {
	if testing.Short() {
		t.Skip("physics integration test")
	}
	// Mean work (Cumulant1) at a fast velocity dissipates: <W> at the
	// end of the pull must exceed the slow-pull estimate.
	fast := pullThroughWell(t, 6, 300, 3200, 1.0)
	slow := pullThroughWell(t, 6, 300, 200, 1.0)
	ef, err := jarzynski.NewEnsemble(300, fast)
	if err != nil {
		t.Fatal(err)
	}
	es, err := jarzynski.NewEnsemble(300, slow)
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := ef.PMF(jarzynski.Cumulant1)
	ws, _ := es.PMF(jarzynski.Cumulant1)
	if wf[len(wf)-1] <= ws[len(ws)-1] {
		t.Fatalf("fast pull dissipated less than slow pull: %v vs %v",
			wf[len(wf)-1], ws[len(ws)-1])
	}
}
