// Package jarzynski is SPICE's core algorithmic contribution: it converts
// ensembles of non-equilibrium SMD work profiles into equilibrium free
// energy profiles (the PMF Φ along the pore axis) via Jarzynski's equality
//
//	exp(-βΔF) = ⟨exp(-βW)⟩,
//
// together with the error analysis the paper's Fig. 4 is built on —
// bootstrap statistical errors normalized for computational cost, and
// systematic errors measured against a reference profile — and the
// (κ, v) parameter optimization of §IV.
package jarzynski

import (
	"errors"
	"fmt"
	"math"

	"spice/internal/analysis"
	"spice/internal/trace"
	"spice/internal/units"
	"spice/internal/xrand"
)

// Estimator selects how ΔF is extracted from the work ensemble.
type Estimator int

// Estimators.
const (
	// Exponential is the exact Jarzynski average. Unbiased for
	// infinitely many samples but dominated by rare low-work
	// trajectories at finite N.
	Exponential Estimator = iota
	// Cumulant1 is the mean work ⟨W⟩ — an upper bound on ΔF by the
	// second law; exact only in the adiabatic limit.
	Cumulant1
	// Cumulant2 is the second-order cumulant expansion
	// ⟨W⟩ - β·Var(W)/2 — exact for Gaussian work distributions (the
	// stiff-spring regime) and far lower variance than Exponential.
	Cumulant2
)

// String implements fmt.Stringer.
func (e Estimator) String() string {
	switch e {
	case Exponential:
		return "exponential"
	case Cumulant1:
		return "cumulant1"
	case Cumulant2:
		return "cumulant2"
	default:
		return fmt.Sprintf("estimator(%d)", int(e))
	}
}

// Ensemble is a set of work profiles from repeated pulls with identical
// protocol parameters, interpolated onto a common displacement grid.
type Ensemble struct {
	Temp float64 // K
	// Grid holds the COM displacements (Å) the profiles are sampled at.
	Grid []float64
	// Work[t][g] is trajectory t's accumulated work at Grid[g], kcal/mol.
	Work [][]float64
	// Kappa/Velocity tag the protocol (internal units).
	Kappa    float64
	Velocity float64
}

// NewEnsemble builds an ensemble from work logs, interpolating every log
// onto the displacement grid of the first. All logs must share protocol
// parameters within tolerance.
func NewEnsemble(temp float64, logs []*trace.WorkLog) (*Ensemble, error) {
	if len(logs) == 0 {
		return nil, errors.New("jarzynski: empty ensemble")
	}
	first := logs[0]
	if len(first.Samples) < 2 {
		return nil, errors.New("jarzynski: work log has fewer than 2 samples")
	}
	grid := make([]float64, len(first.Samples))
	for i, s := range first.Samples {
		grid[i] = s.Lambda
	}
	e := &Ensemble{Temp: temp, Grid: grid, Kappa: first.Kappa, Velocity: first.Velocity}
	const tol = 1e-9
	for t, wl := range logs {
		if math.Abs(wl.Kappa-first.Kappa) > tol*math.Abs(first.Kappa) ||
			math.Abs(wl.Velocity-first.Velocity) > tol*math.Abs(first.Velocity) {
			return nil, fmt.Errorf("jarzynski: log %d has protocol (κ=%g, v=%g), ensemble has (κ=%g, v=%g)",
				t, wl.Kappa, wl.Velocity, first.Kappa, first.Velocity)
		}
		w, err := interpolateWork(wl, grid)
		if err != nil {
			return nil, fmt.Errorf("jarzynski: log %d: %w", t, err)
		}
		e.Work = append(e.Work, w)
	}
	return e, nil
}

// interpolateWork linearly interpolates a log's work onto grid.
func interpolateWork(wl *trace.WorkLog, grid []float64) ([]float64, error) {
	n := len(wl.Samples)
	if n < 2 {
		return nil, errors.New("fewer than 2 samples")
	}
	out := make([]float64, len(grid))
	j := 0
	for i, g := range grid {
		for j+1 < n && wl.Samples[j+1].Lambda < g {
			j++
		}
		if j+1 >= n {
			last := wl.Samples[n-1]
			if g > last.Lambda+1e-6 {
				return nil, fmt.Errorf("grid point %g beyond log end %g", g, last.Lambda)
			}
			out[i] = last.Work
			continue
		}
		a, b := wl.Samples[j], wl.Samples[j+1]
		if g <= a.Lambda {
			out[i] = a.Work
			continue
		}
		frac := (g - a.Lambda) / (b.Lambda - a.Lambda)
		out[i] = a.Work + frac*(b.Work-a.Work)
	}
	return out, nil
}

// N returns the number of trajectories.
func (e *Ensemble) N() int { return len(e.Work) }

// beta returns 1/kT.
func (e *Ensemble) beta() float64 { return units.Beta(e.Temp) }

// PMF computes the free energy profile with the chosen estimator. The
// profile is anchored at Φ(Grid[0]) = 0.
func (e *Ensemble) PMF(est Estimator) ([]float64, error) {
	if e.N() == 0 {
		return nil, errors.New("jarzynski: no trajectories")
	}
	out := make([]float64, len(e.Grid))
	ws := make([]float64, e.N())
	for g := range e.Grid {
		for t := range e.Work {
			ws[t] = e.Work[t][g]
		}
		out[g] = freeEnergy(ws, e.beta(), est)
	}
	anchor(out)
	return out, nil
}

// freeEnergy reduces one column of work values to ΔF.
func freeEnergy(ws []float64, beta float64, est Estimator) float64 {
	switch est {
	case Exponential:
		// Log-sum-exp for numerical stability: the average is
		// dominated by the smallest work values.
		minW := ws[0]
		for _, w := range ws {
			if w < minW {
				minW = w
			}
		}
		s := 0.0
		for _, w := range ws {
			s += math.Exp(-beta * (w - minW))
		}
		return minW - math.Log(s/float64(len(ws)))/beta
	case Cumulant1:
		return analysis.Mean(ws)
	case Cumulant2:
		return analysis.Mean(ws) - beta*analysis.Variance(ws)/2
	default:
		return math.NaN()
	}
}

// anchor shifts a profile so its first point is zero.
func anchor(p []float64) {
	if len(p) == 0 {
		return
	}
	p0 := p[0]
	for i := range p {
		p[i] -= p0
	}
}

// StatError bootstraps the per-grid-point statistical error of the PMF by
// resampling whole trajectories (work values along one trajectory are
// strongly correlated, so resampling columns independently would
// underestimate σ). The returned profile has one σ per grid point.
func (e *Ensemble) StatError(est Estimator, resamples int, rng *xrand.Source) ([]float64, error) {
	if e.N() < 2 {
		return nil, errors.New("jarzynski: need >= 2 trajectories for error estimate")
	}
	if resamples < 2 {
		return nil, errors.New("jarzynski: need >= 2 resamples")
	}
	n := e.N()
	prof := make([][]float64, resamples)
	idx := make([]int, n)
	ws := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		p := make([]float64, len(e.Grid))
		for g := range e.Grid {
			for i, t := range idx {
				ws[i] = e.Work[t][g]
			}
			p[g] = freeEnergy(ws, e.beta(), est)
		}
		anchor(p)
		prof[r] = p
	}
	out := make([]float64, len(e.Grid))
	col := make([]float64, resamples)
	for g := range e.Grid {
		for r := range prof {
			col[r] = prof[r][g]
		}
		out[g] = analysis.StdDev(col)
	}
	return out, nil
}

// MeanStatError is the grid-averaged statistical error.
func (e *Ensemble) MeanStatError(est Estimator, resamples int, rng *xrand.Source) (float64, error) {
	sig, err := e.StatError(est, resamples, rng)
	if err != nil {
		return 0, err
	}
	return analysis.Mean(sig), nil
}

// CostNormalizedStatError rescales the grid-averaged statistical error to
// a common computational budget (the paper's normalization across pulling
// velocities: per-sample cost ∝ 1/v). refVelocity sets the budget: the
// cost of ONE sample at refVelocity.
func (e *Ensemble) CostNormalizedStatError(est Estimator, resamples int, rng *xrand.Source, refVelocity float64) (float64, error) {
	sigma, err := e.MeanStatError(est, resamples, rng)
	if err != nil {
		return 0, err
	}
	perSample := 1 / e.Velocity
	budget := 1 / refVelocity
	return analysis.CostNormalizedError(sigma, e.N(), perSample, budget), nil
}

// SystematicError measures the deviation of pmf from a reference profile
// (typically the adiabatic/exact PMF, or the slowest-pull stiff-spring
// estimate): RMSD after both are anchored at their first point.
func SystematicError(pmf, ref []float64) (float64, error) {
	if len(pmf) != len(ref) {
		return 0, fmt.Errorf("jarzynski: profile length %d != reference %d", len(pmf), len(ref))
	}
	a := append([]float64(nil), pmf...)
	b := append([]float64(nil), ref...)
	anchor(a)
	anchor(b)
	return analysis.RMSD(a, b)
}

// DissipatedWork returns ⟨W⟩ - ΔF_JE per grid point: the irreversible work
// that grows with pulling velocity (the paper's "too large a velocity
// produces irreversible work" systematic-error mechanism).
func (e *Ensemble) DissipatedWork() ([]float64, error) {
	je, err := e.PMF(Exponential)
	if err != nil {
		return nil, err
	}
	mean, err := e.PMF(Cumulant1)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(je))
	for i := range out {
		out[i] = mean[i] - je[i]
	}
	return out, nil
}

// Stitch concatenates PMFs of consecutive sub-trajectories into one
// profile by shifting each segment so it starts where the previous one
// ended (the paper's §V.A decomposition of a long trajectory into 10 Å
// sub-trajectories). Segments must be anchored profiles over their own
// local grids; offsets holds each segment's starting displacement.
func Stitch(segments [][]float64, grids [][]float64, offsets []float64) (grid, pmf []float64, err error) {
	if len(segments) == 0 || len(segments) != len(grids) || len(segments) != len(offsets) {
		return nil, nil, errors.New("jarzynski: stitch input mismatch")
	}
	shift := 0.0
	for s, seg := range segments {
		if len(seg) != len(grids[s]) {
			return nil, nil, fmt.Errorf("jarzynski: segment %d length mismatch", s)
		}
		for i, v := range seg {
			if s > 0 && i == 0 {
				continue // segment start coincides with previous end
			}
			grid = append(grid, offsets[s]+grids[s][i])
			pmf = append(pmf, shift+v)
		}
		if len(seg) > 0 {
			shift += seg[len(seg)-1]
		}
	}
	return grid, pmf, nil
}
