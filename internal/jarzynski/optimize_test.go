package jarzynski

import (
	"math"
	"testing"
)

func TestOptimizePicksLowestCombinedError(t *testing.T) {
	points := []ParamPoint{
		{KappaPaper: 10, VPaper: 100, SigmaStat: 0.2, SigmaSys: 3.0},
		{KappaPaper: 100, VPaper: 12.5, SigmaStat: 0.5, SigmaSys: 0.4},
		{KappaPaper: 1000, VPaper: 12.5, SigmaStat: 2.5, SigmaSys: 0.3},
	}
	best, err := Optimize(points, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if best.KappaPaper != 100 {
		t.Fatalf("best = %v", best)
	}
}

func TestOptimizePrefersSlowerVelocityOnTies(t *testing.T) {
	// The paper's exact situation: κ=100 at v=12.5 and v=25 are
	// statistically indistinguishable; pick v=12.5.
	points := []ParamPoint{
		{KappaPaper: 100, VPaper: 25, SigmaStat: 0.50, SigmaSys: 0.40},
		{KappaPaper: 100, VPaper: 12.5, SigmaStat: 0.52, SigmaSys: 0.41},
		{KappaPaper: 100, VPaper: 100, SigmaStat: 0.3, SigmaSys: 2.5},
	}
	best, err := Optimize(points, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if best.VPaper != 12.5 {
		t.Fatalf("tie-break failed: %v", best)
	}
}

func TestOptimizeEmpty(t *testing.T) {
	if _, err := Optimize(nil, 0.1); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestCombinedError(t *testing.T) {
	p := ParamPoint{SigmaStat: 3, SigmaSys: 4}
	if math.Abs(p.CombinedError()-5) > 1e-12 {
		t.Fatalf("combined = %v", p.CombinedError())
	}
}

func TestSpreadAcrossVelocities(t *testing.T) {
	a := ParamPoint{PMF: []float64{0, 1, 2}}
	b := ParamPoint{PMF: []float64{0, 1, 2}}
	s, err := SpreadAcrossVelocities([]ParamPoint{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("identical curves spread = %v", s)
	}
	c := ParamPoint{PMF: []float64{0, 3, 6}}
	s2, err := SpreadAcrossVelocities([]ParamPoint{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= 0 {
		t.Fatal("diverging curves not detected")
	}
	if _, err := SpreadAcrossVelocities([]ParamPoint{a}); err == nil {
		t.Fatal("single curve accepted")
	}
	if _, err := SpreadAcrossVelocities([]ParamPoint{a, {PMF: []float64{0}}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestReductionFactor(t *testing.T) {
	if got := ReductionFactor(100, 2); got != 50 {
		t.Fatalf("reduction = %v", got)
	}
	if !math.IsInf(ReductionFactor(100, 0), 1) {
		t.Fatal("zero smd steps should be +Inf")
	}
}

func TestParamPointString(t *testing.T) {
	p := ParamPoint{KappaPaper: 100, VPaper: 12.5, SigmaStat: 0.1, SigmaSys: 0.2, Samples: 16}
	s := p.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
