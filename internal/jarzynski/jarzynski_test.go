package jarzynski

import (
	"math"
	"testing"

	"spice/internal/trace"
	"spice/internal/units"
	"spice/internal/xrand"
)

// syntheticLogs builds work logs where W(λ) is Gaussian with mean mu(λ)
// and stddev sd(λ) — the analytically solvable case.
func syntheticLogs(n int, grid []float64, mu, sd func(float64) float64, rng *xrand.Source) []*trace.WorkLog {
	logs := make([]*trace.WorkLog, n)
	for t := 0; t < n; t++ {
		wl := &trace.WorkLog{Kappa: 1.44, Velocity: 0.0125, Seed: uint64(t)}
		// One Gaussian draw per trajectory, scaled along the grid, so the
		// trajectory is internally correlated like real SMD work curves.
		z := rng.NormFloat64()
		for _, g := range grid {
			wl.Samples = append(wl.Samples, trace.WorkSample{
				Lambda: g,
				Z:      g,
				Work:   mu(g) + sd(g)*z,
			})
		}
		logs[t] = wl
	}
	return logs
}

func uniformGrid(lo, hi float64, n int) []float64 {
	g := make([]float64, n)
	for i := range g {
		g[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return g
}

func TestNewEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(300, nil); err == nil {
		t.Fatal("empty ensemble accepted")
	}
	short := &trace.WorkLog{Samples: []trace.WorkSample{{}}}
	if _, err := NewEnsemble(300, []*trace.WorkLog{short}); err == nil {
		t.Fatal("single-sample log accepted")
	}
	// Mismatched protocols rejected.
	grid := uniformGrid(0, 10, 11)
	rng := xrand.New(1)
	logs := syntheticLogs(2, grid, func(float64) float64 { return 0 }, func(float64) float64 { return 1 }, rng)
	logs[1].Kappa *= 2
	if _, err := NewEnsemble(300, logs); err == nil {
		t.Fatal("mixed-protocol ensemble accepted")
	}
}

func TestGaussianWorkExponentialEstimator(t *testing.T) {
	// For W ~ N(μ, σ²): ΔF = μ - βσ²/2 exactly.
	beta := units.Beta(300)
	mu := func(g float64) float64 { return 2 * g }
	sd := func(g float64) float64 { return 0.3 * math.Sqrt(g) } // grows along pull
	grid := uniformGrid(0, 10, 21)
	rng := xrand.New(2)
	logs := syntheticLogs(20000, grid, mu, sd, rng)
	e, err := NewEnsemble(300, logs)
	if err != nil {
		t.Fatal(err)
	}
	pmf, err := e.PMF(Exponential)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grid {
		want := mu(g) - beta*sd(g)*sd(g)/2 // anchored: mu(0)=0
		if math.Abs(pmf[i]-want) > 0.05 {
			t.Fatalf("grid %v: JE = %v, want %v", g, pmf[i], want)
		}
	}
}

func TestGaussianWorkCumulant2Exact(t *testing.T) {
	beta := units.Beta(300)
	mu := func(g float64) float64 { return -1.5 * g }
	sd := func(g float64) float64 { return 0.5 * g }
	grid := uniformGrid(0, 8, 17)
	rng := xrand.New(3)
	logs := syntheticLogs(5000, grid, mu, sd, rng)
	e, err := NewEnsemble(300, logs)
	if err != nil {
		t.Fatal(err)
	}
	pmf, err := e.PMF(Cumulant2)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range grid {
		want := mu(g) - beta*sd(g)*sd(g)/2
		// Variance estimation error with 5000 samples dominates the
		// tolerance: Var·sqrt(2/n)·β/2 ≈ 0.1 at the largest g.
		if math.Abs(pmf[i]-want) > 0.3 {
			t.Fatalf("grid %v: C2 = %v, want %v", g, pmf[i], want)
		}
	}
}

func TestCumulant1IsMeanWorkAndUpperBound(t *testing.T) {
	grid := uniformGrid(0, 5, 6)
	rng := xrand.New(4)
	logs := syntheticLogs(2000, grid, func(g float64) float64 { return g }, func(g float64) float64 { return 0.4 * g }, rng)
	e, _ := NewEnsemble(300, logs)
	c1, _ := e.PMF(Cumulant1)
	je, _ := e.PMF(Exponential)
	for i := range grid {
		if c1[i] < je[i]-1e-9 {
			t.Fatalf("second law violated: <W>=%v < ΔF_JE=%v at %v", c1[i], je[i], grid[i])
		}
	}
}

func TestZeroVarianceAllEstimatorsAgree(t *testing.T) {
	grid := uniformGrid(0, 5, 11)
	rng := xrand.New(5)
	logs := syntheticLogs(50, grid, func(g float64) float64 { return 3 * g }, func(float64) float64 { return 0 }, rng)
	e, _ := NewEnsemble(300, logs)
	for _, est := range []Estimator{Exponential, Cumulant1, Cumulant2} {
		pmf, err := e.PMF(est)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range grid {
			if math.Abs(pmf[i]-3*g) > 1e-9 {
				t.Fatalf("%v: pmf(%v) = %v, want %v", est, g, pmf[i], 3*g)
			}
		}
	}
}

func TestPMFAnchoredAtZero(t *testing.T) {
	grid := uniformGrid(0, 5, 6)
	rng := xrand.New(6)
	logs := syntheticLogs(100, grid, func(g float64) float64 { return 7 + g }, func(float64) float64 { return 0.1 }, rng)
	e, _ := NewEnsemble(300, logs)
	pmf, _ := e.PMF(Exponential)
	if pmf[0] != 0 {
		t.Fatalf("PMF not anchored: %v", pmf[0])
	}
}

func TestStatErrorShrinksWithSamples(t *testing.T) {
	grid := uniformGrid(0, 5, 11)
	mu := func(g float64) float64 { return g }
	// sd must vary along the grid: the profile anchor at grid[0] cancels
	// any noise that is constant along a trajectory.
	sd := func(g float64) float64 { return 0.3 * g }
	small, _ := NewEnsemble(300, syntheticLogs(8, grid, mu, sd, xrand.New(7)))
	large, _ := NewEnsemble(300, syntheticLogs(128, grid, mu, sd, xrand.New(8)))
	sSmall, err := small.MeanStatError(Cumulant2, 200, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	sLarge, err := large.MeanStatError(Cumulant2, 200, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if sLarge >= sSmall {
		t.Fatalf("error did not shrink: n=8 σ=%v, n=128 σ=%v", sSmall, sLarge)
	}
	// Rough 1/sqrt(n) scaling: ratio ~ 4, accept [2, 8].
	ratio := sSmall / sLarge
	if ratio < 2 || ratio > 8 {
		t.Fatalf("σ ratio = %v, want ~4", ratio)
	}
}

func TestStatErrorRequiresData(t *testing.T) {
	grid := uniformGrid(0, 5, 6)
	one, _ := NewEnsemble(300, syntheticLogs(1, grid, func(g float64) float64 { return g }, func(float64) float64 { return 1 }, xrand.New(11)))
	if _, err := one.StatError(Exponential, 100, xrand.New(12)); err == nil {
		t.Fatal("single-trajectory error estimate accepted")
	}
	two, _ := NewEnsemble(300, syntheticLogs(2, grid, func(g float64) float64 { return g }, func(float64) float64 { return 1 }, xrand.New(13)))
	if _, err := two.StatError(Exponential, 1, xrand.New(14)); err == nil {
		t.Fatal("single resample accepted")
	}
}

func TestCostNormalizedStatError(t *testing.T) {
	grid := uniformGrid(0, 5, 6)
	mu := func(g float64) float64 { return g }
	sd := func(float64) float64 { return 0.5 }
	// Same data, but a fast-pull ensemble (v=0.1) normalized to the
	// budget of one slow sample (v=0.0125): 1 fast sample costs 1/8 of a
	// slow one, so its error must be scaled up by sqrt(n/8) when n
	// samples were used.
	e, _ := NewEnsemble(300, syntheticLogs(8, grid, mu, sd, xrand.New(15)))
	e.Velocity = 0.1
	raw, err := e.MeanStatError(Cumulant2, 400, xrand.New(16))
	if err != nil {
		t.Fatal(err)
	}
	norm, err := e.CostNormalizedStatError(Cumulant2, 400, xrand.New(16), 0.0125)
	if err != nil {
		t.Fatal(err)
	}
	// Budget = 1 slow sample = 8 fast samples; n = 8 → factor 1.
	if math.Abs(norm-raw)/raw > 0.2 {
		t.Fatalf("normalization at equal budget changed σ: raw=%v norm=%v", raw, norm)
	}
	// Slow ensemble with 8 samples vs budget of 1 slow sample: ×sqrt(8).
	e2, _ := NewEnsemble(300, syntheticLogs(8, grid, mu, sd, xrand.New(17)))
	e2.Velocity = 0.0125
	raw2, _ := e2.MeanStatError(Cumulant2, 400, xrand.New(18))
	norm2, _ := e2.CostNormalizedStatError(Cumulant2, 400, xrand.New(18), 0.0125)
	if math.Abs(norm2-raw2*math.Sqrt(8))/norm2 > 0.1 {
		t.Fatalf("slow ensemble: raw=%v norm=%v, want ×sqrt(8)", raw2, norm2)
	}
}

func TestSystematicError(t *testing.T) {
	pmf := []float64{0, 1, 2, 3}
	ref := []float64{5, 6, 7, 8} // same shape, different offset
	s, err := SystematicError(pmf, ref)
	if err != nil {
		t.Fatal(err)
	}
	if s > 1e-12 {
		t.Fatalf("offset-only deviation should anchor away: %v", s)
	}
	ref2 := []float64{0, 2, 4, 6}
	s2, err := SystematicError(pmf, ref2)
	if err != nil {
		t.Fatal(err)
	}
	if s2 <= 0 {
		t.Fatal("real deviation not detected")
	}
	if _, err := SystematicError(pmf, ref2[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDissipatedWorkGrowsWithNoise(t *testing.T) {
	grid := uniformGrid(0, 5, 6)
	mu := func(g float64) float64 { return g }
	quiet, _ := NewEnsemble(300, syntheticLogs(3000, grid, mu, func(float64) float64 { return 0.1 }, xrand.New(19)))
	noisy, _ := NewEnsemble(300, syntheticLogs(3000, grid, mu, func(float64) float64 { return 1.0 }, xrand.New(20)))
	dq, err := quiet.DissipatedWork()
	if err != nil {
		t.Fatal(err)
	}
	dn, err := noisy.DissipatedWork()
	if err != nil {
		t.Fatal(err)
	}
	if dn[len(dn)-1] <= dq[len(dq)-1] {
		t.Fatalf("dissipation should grow with work variance: %v vs %v", dn[len(dn)-1], dq[len(dq)-1])
	}
}

func TestInterpolationOntoGrid(t *testing.T) {
	// Second log has twice the sampling rate; ensemble uses first's grid.
	coarse := &trace.WorkLog{Kappa: 1, Velocity: 1}
	fine := &trace.WorkLog{Kappa: 1, Velocity: 1}
	for i := 0; i <= 4; i++ {
		coarse.Samples = append(coarse.Samples, trace.WorkSample{Lambda: float64(i), Work: float64(i) * 2})
	}
	for i := 0; i <= 8; i++ {
		fine.Samples = append(fine.Samples, trace.WorkSample{Lambda: float64(i) / 2, Work: float64(i)})
	}
	e, err := NewEnsemble(300, []*trace.WorkLog{coarse, fine})
	if err != nil {
		t.Fatal(err)
	}
	// Both logs represent W = 2λ; columns must agree.
	for g := range e.Grid {
		if math.Abs(e.Work[0][g]-e.Work[1][g]) > 1e-9 {
			t.Fatalf("interpolation mismatch at %v: %v vs %v", e.Grid[g], e.Work[0][g], e.Work[1][g])
		}
	}
	// A log that ends early must be rejected.
	short := &trace.WorkLog{Kappa: 1, Velocity: 1}
	for i := 0; i <= 2; i++ {
		short.Samples = append(short.Samples, trace.WorkSample{Lambda: float64(i), Work: 0})
	}
	if _, err := NewEnsemble(300, []*trace.WorkLog{coarse, short}); err == nil {
		t.Fatal("short log accepted")
	}
}

func TestStitch(t *testing.T) {
	// Two 2-Å segments with local grids [0,1,2].
	seg1 := []float64{0, 1, 2}
	seg2 := []float64{0, -1, -2}
	grids := [][]float64{{0, 1, 2}, {0, 1, 2}}
	offsets := []float64{0, 2}
	grid, pmf, err := Stitch([][]float64{seg1, seg2}, grids, offsets)
	if err != nil {
		t.Fatal(err)
	}
	wantGrid := []float64{0, 1, 2, 3, 4}
	wantPMF := []float64{0, 1, 2, 1, 0}
	if len(grid) != len(wantGrid) {
		t.Fatalf("grid = %v", grid)
	}
	for i := range grid {
		if math.Abs(grid[i]-wantGrid[i]) > 1e-12 || math.Abs(pmf[i]-wantPMF[i]) > 1e-12 {
			t.Fatalf("stitched (%v, %v), want (%v, %v)", grid[i], pmf[i], wantGrid[i], wantPMF[i])
		}
	}
	if _, _, err := Stitch(nil, nil, nil); err == nil {
		t.Fatal("empty stitch accepted")
	}
	if _, _, err := Stitch([][]float64{seg1}, grids, offsets); err == nil {
		t.Fatal("mismatched stitch accepted")
	}
}

func TestEstimatorString(t *testing.T) {
	if Exponential.String() != "exponential" || Cumulant1.String() != "cumulant1" || Cumulant2.String() != "cumulant2" {
		t.Fatal("estimator labels wrong")
	}
}
