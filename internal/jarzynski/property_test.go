package jarzynski

import (
	"math"
	"testing"
	"testing/quick"

	"spice/internal/trace"
	"spice/internal/xrand"
)

// ensembleFrom builds a small ensemble from a quick-generated work matrix.
// Rows with non-finite values are rejected by returning nil.
func ensembleFrom(rows [][]float64) *Ensemble {
	if len(rows) < 2 {
		return nil
	}
	width := len(rows[0])
	if width < 2 || width > 64 {
		return nil
	}
	var logs []*trace.WorkLog
	for _, r := range rows {
		if len(r) != width {
			return nil
		}
		wl := &trace.WorkLog{Kappa: 1, Velocity: 1}
		for i, w := range r {
			if math.IsNaN(w) || math.IsInf(w, 0) || math.Abs(w) > 100 {
				return nil
			}
			wl.Samples = append(wl.Samples, trace.WorkSample{Lambda: float64(i), Z: float64(i), Work: w})
		}
		logs = append(logs, wl)
	}
	e, err := NewEnsemble(300, logs)
	if err != nil {
		return nil
	}
	return e
}

// randomRows draws an n×m work matrix from rng with bounded values. Work
// accumulates from exactly zero at the first grid point, as in real SMD
// logs — the anchored-profile invariants below rely on W(0) = 0.
func randomRows(rng *xrand.Source, n, m int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, m)
		for j := 1; j < m; j++ {
			rows[i][j] = rows[i][j-1] + rng.NormFloat64()
		}
	}
	return rows
}

// TestPropertySecondLaw: for every ensemble and every grid point,
// ⟨W⟩ ≥ ΔF_JE (Jensen's inequality).
func TestPropertySecondLaw(t *testing.T) {
	rng := xrand.New(101)
	for trial := 0; trial < 200; trial++ {
		e := ensembleFrom(randomRows(rng, 2+rng.Intn(10), 2+rng.Intn(10)))
		if e == nil {
			t.Fatal("generator produced invalid ensemble")
		}
		c1, err := e.PMF(Cumulant1)
		if err != nil {
			t.Fatal(err)
		}
		je, err := e.PMF(Exponential)
		if err != nil {
			t.Fatal(err)
		}
		for g := range c1 {
			if c1[g] < je[g]-1e-9 {
				t.Fatalf("trial %d grid %d: <W>=%v < ΔF=%v", trial, g, c1[g], je[g])
			}
		}
	}
}

// TestPropertyShiftInvariance: adding a trajectory-independent offset
// profile to every trajectory shifts the anchored PMF by the anchored
// offset — for every estimator.
func TestPropertyShiftInvariance(t *testing.T) {
	rng := xrand.New(102)
	for trial := 0; trial < 100; trial++ {
		n, m := 3+rng.Intn(6), 3+rng.Intn(8)
		rows := randomRows(rng, n, m)
		offset := make([]float64, m)
		for j := range offset {
			offset[j] = 5 * rng.NormFloat64()
		}
		shifted := make([][]float64, n)
		for i := range rows {
			shifted[i] = make([]float64, m)
			for j := range rows[i] {
				shifted[i][j] = rows[i][j] + offset[j]
			}
		}
		a, b := ensembleFrom(rows), ensembleFrom(shifted)
		if a == nil || b == nil {
			t.Fatal("invalid ensemble")
		}
		for _, est := range []Estimator{Exponential, Cumulant1, Cumulant2} {
			pa, err := a.PMF(est)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := b.PMF(est)
			if err != nil {
				t.Fatal(err)
			}
			for g := range pa {
				want := pa[g] + offset[g] - offset[0]
				if math.Abs(pb[g]-want) > 1e-6 {
					t.Fatalf("%v: shift broke at grid %d: %v vs %v", est, g, pb[g], want)
				}
			}
		}
	}
}

// TestPropertyPermutationInvariance: trajectory order must not matter.
func TestPropertyPermutationInvariance(t *testing.T) {
	rng := xrand.New(103)
	for trial := 0; trial < 50; trial++ {
		n, m := 4+rng.Intn(6), 3+rng.Intn(6)
		rows := randomRows(rng, n, m)
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, p := range perm {
			shuffled[i] = rows[p]
		}
		a, b := ensembleFrom(rows), ensembleFrom(shuffled)
		for _, est := range []Estimator{Exponential, Cumulant2} {
			pa, _ := a.PMF(est)
			pb, _ := b.PMF(est)
			for g := range pa {
				if math.Abs(pa[g]-pb[g]) > 1e-9 {
					t.Fatalf("%v: permutation changed PMF", est)
				}
			}
		}
	}
}

// TestPropertyEstimatorOrderingQuick uses testing/quick to probe the
// Exponential ≤ Cumulant1 ordering with arbitrary bounded inputs.
func TestPropertyEstimatorOrderingQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		e := ensembleFrom(randomRows(rng, 2+rng.Intn(8), 2+rng.Intn(8)))
		if e == nil {
			return false
		}
		je, err1 := e.PMF(Exponential)
		c1, err2 := e.PMF(Cumulant1)
		if err1 != nil || err2 != nil {
			return false
		}
		for g := range je {
			if je[g] > c1[g]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStatErrorNonNegative: bootstrap errors are never negative
// and are zero for identical trajectories.
func TestPropertyStatErrorNonNegative(t *testing.T) {
	rng := xrand.New(104)
	for trial := 0; trial < 30; trial++ {
		e := ensembleFrom(randomRows(rng, 3+rng.Intn(5), 3+rng.Intn(5)))
		sig, err := e.StatError(Cumulant2, 50, xrand.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sig {
			if s < 0 || math.IsNaN(s) {
				t.Fatalf("bad σ %v", s)
			}
		}
	}
	// Identical trajectories → zero error everywhere.
	row := []float64{0, 1, 2, 3}
	rows := [][]float64{row, row, row, row}
	e := ensembleFrom(rows)
	sig, err := e.StatError(Exponential, 50, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sig {
		if s != 0 {
			t.Fatalf("identical trajectories have σ=%v", s)
		}
	}
}

// TestPropertyStitchContinuity: stitched profiles are continuous at the
// segment boundaries by construction.
func TestPropertyStitchContinuity(t *testing.T) {
	rng := xrand.New(105)
	for trial := 0; trial < 50; trial++ {
		nseg := 2 + rng.Intn(4)
		var segs, grids [][]float64
		var offsets []float64
		pos := 0.0
		for s := 0; s < nseg; s++ {
			pts := 3 + rng.Intn(5)
			grid := make([]float64, pts)
			seg := make([]float64, pts)
			for i := range grid {
				grid[i] = float64(i)
				if i > 0 {
					seg[i] = seg[i-1] + rng.NormFloat64()
				}
			}
			segs = append(segs, seg)
			grids = append(grids, grid)
			offsets = append(offsets, pos)
			pos += grid[pts-1]
		}
		grid, pmf, err := Stitch(segs, grids, offsets)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(grid); i++ {
			if grid[i] < grid[i-1]-1e-9 {
				t.Fatalf("stitched grid not monotone at %d", i)
			}
		}
		_ = pmf
	}
}
