package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestEventLogJSONL checks JSON-lines output, monotonic sequence
// numbers, and per-name counts.
func TestEventLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 8)
	l.Emit(Event{Name: "lease_granted", Job: "j1", Attempt: 1, Site: "a"})
	l.Emit(Event{Name: "lease_granted", Job: "j2", Attempt: 1, Site: "b"})
	l.Emit(Event{Name: "result_accepted", Job: "j1", Attempt: 1,
		Fields: map[string]any{"bytes": 42}})

	sc := bufio.NewScanner(&buf)
	var seqs []int64
	n := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		seqs = append(seqs, ev.Seq)
		if ev.Time.IsZero() {
			t.Fatalf("line %d missing timestamp", n)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("wrote %d lines, want 3", n)
	}
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	if l.Count("lease_granted") != 2 || l.Count("result_accepted") != 1 {
		t.Fatalf("counts wrong: %v", l.Counts())
	}
	if l.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", l.Seq())
	}
}

// TestEventScope checks scoped views fill zero fields without clobbering
// explicit ones, and share sequence/counts with the root.
func TestEventScope(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 8)
	camp := l.Scope(Event{Campaign: "c1"})
	job := camp.Scope(Event{Job: "j1", Site: "alpha"})
	job.Emit(Event{Name: "checkpoint", Attempt: 2})
	job.Emit(Event{Name: "checkpoint", Site: "beta"}) // explicit wins

	evs := l.Recent(0)
	if len(evs) != 2 {
		t.Fatalf("ring has %d events, want 2", len(evs))
	}
	e0 := evs[0]
	if e0.Campaign != "c1" || e0.Job != "j1" || e0.Site != "alpha" || e0.Attempt != 2 {
		t.Fatalf("scope not applied: %+v", e0)
	}
	if evs[1].Site != "beta" {
		t.Fatalf("explicit field clobbered by scope: %+v", evs[1])
	}
	if !strings.Contains(buf.String(), `"campaign":"c1"`) {
		t.Fatalf("scoped emit did not reach root writer:\n%s", buf.String())
	}
}

// TestEventRing checks the bounded ring keeps the most recent events.
func TestEventRing(t *testing.T) {
	l := NewEventLog(nil, 4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Name: "tick"})
	}
	evs := l.Recent(0)
	if len(evs) != 4 {
		t.Fatalf("ring has %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
	if got := l.Recent(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

// TestEventLogNil pins that a nil log is inert — instrumented code
// carries no per-call-site nil guards.
func TestEventLogNil(t *testing.T) {
	var l *EventLog
	l.Emit(Event{Name: "x"})
	if l.Scope(Event{Job: "j"}) != nil {
		t.Fatal("nil Scope should stay nil")
	}
	if l.Count("x") != 0 || l.Counts() != nil || l.Recent(5) != nil || l.Seq() != 0 {
		t.Fatal("nil accessors should be zero-valued")
	}
}

// TestEventLogConcurrency hammers Emit from many goroutines (the -race
// check) and verifies no sequence numbers are lost or duplicated.
func TestEventLogConcurrency(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 32)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scoped := l.Scope(Event{Site: string(rune('a' + w))})
			for i := 0; i < per; i++ {
				scoped.Emit(Event{Name: "tick"})
			}
		}(w)
	}
	wg.Wait()
	if l.Seq() != workers*per {
		t.Fatalf("Seq = %d, want %d", l.Seq(), workers*per)
	}
	if l.Count("tick") != workers*per {
		t.Fatalf("Count = %d, want %d", l.Count("tick"), workers*per)
	}
	seen := make(map[int64]bool)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line: %v", err)
		}
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("wrote %d lines, want %d", len(seen), workers*per)
	}
}
