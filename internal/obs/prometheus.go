package obs

// Prometheus text exposition format (version 0.0.4) rendering. Rendered
// at scrape time from a point-in-time gather: registered instruments
// first, then collector output, families sorted by name so the output
// is deterministic and diffable in tests.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeLabel escapes a label value: backslash, double-quote, newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"} (empty string for no labels).
func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus renders every registered instrument plus all
// collector output in the Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams, snaps := r.gather()
	var b strings.Builder
	for _, f := range fams {
		writeFamily(&b, f)
	}
	for _, f := range snaps {
		writeSnapFamily(&b, f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help string, typ metricType) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// writeFamily renders one registered family: every child, label tuples
// sorted for stable output.
func writeFamily(b *strings.Builder, f *family) {
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	children := make([]any, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}
	writeHeader(b, f.name, f.help, f.typ)
	for i, c := range children {
		labels := splitKey(f.labels, keys[i])
		switch inst := c.(type) {
		case *Counter:
			b.WriteString(f.name)
			writeLabels(b, labels)
			fmt.Fprintf(b, " %d\n", inst.Value())
		case *Gauge:
			b.WriteString(f.name)
			writeLabels(b, labels)
			fmt.Fprintf(b, " %s\n", formatValue(inst.Value()))
		case *Histogram:
			writeHistogram(b, f.name, labels, inst)
		}
	}
}

// writeHistogram renders _bucket/_sum/_count lines for one histogram.
func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	bounds, cum := h.Buckets()
	bl := make([]Label, len(labels)+1)
	copy(bl, labels)
	for i, bound := range bounds {
		bl[len(labels)] = Label{"le", formatValue(bound)}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, bl)
		fmt.Fprintf(b, " %d\n", cum[i])
	}
	bl[len(labels)] = Label{"le", "+Inf"}
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, bl)
	fmt.Fprintf(b, " %d\n", cum[len(cum)-1])

	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, labels)
	fmt.Fprintf(b, " %s\n", formatValue(h.Sum()))
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, labels)
	fmt.Fprintf(b, " %d\n", h.Count())
}

// writeSnapFamily renders one collector-produced family, samples in
// emission order (collectors iterate sorted maps themselves when order
// matters; tests compare parsed values, not line order).
func writeSnapFamily(b *strings.Builder, f *snapFamily) {
	writeHeader(b, f.name, f.help, f.typ)
	for _, s := range f.samples {
		b.WriteString(f.name)
		writeLabels(b, s.labels)
		fmt.Fprintf(b, " %s\n", formatValue(s.value))
	}
}

// splitKey reconstructs the Label slice from a child key.
func splitKey(names []string, key string) []Label {
	if len(names) == 0 {
		return nil
	}
	var values []string
	if len(names) == 1 {
		values = []string{key}
	} else {
		values = strings.Split(key, "\xff")
	}
	labels := make([]Label, len(names))
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		labels[i] = Label{n, v}
	}
	return labels
}
