package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics exercises the scalar instruments.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spice_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("spice_test_gauge", "help")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	// Re-registration with the same shape returns the same instrument.
	if r.Counter("spice_test_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

// TestRegistryConcurrency hammers one counter, one gauge, one histogram
// and one vec from many goroutines; run under -race this is the data
// race check, and the final counter value checks no lost updates.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_hist", "", []float64{1, 10, 100})
	vec := r.CounterVec("conc_vec_total", "", "site")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			site := string(rune('a' + w%3))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 200))
				vec.With(site).Inc()
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	var total int64
	for _, s := range []string{"a", "b", "c"} {
		total += vec.With(s).Value()
	}
	if total != workers*per {
		t.Fatalf("vec total = %d, want %d", total, workers*per)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: a value equal to
// an upper bound lands in that bucket (le is inclusive), cumulative
// counts are monotonic, and +Inf equals the total count.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 1.0001, 5, 7, 10, 10.5, 1e9} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("buckets: %v / %v", bounds, cum)
	}
	// le=1: {0.5, 1}; le=5: +{1.0001, 5}; le=10: +{7, 10}; +Inf: +{10.5, 1e9}
	want := []int64{2, 4, 6, 8}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0001 + 5 + 7 + 10 + 10.5 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramRendering checks the _bucket/_sum/_count exposition.
func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "step latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusEscaping pins the text-format escaping rules: label
// values escape backslash, double-quote and newline; HELP escapes
// backslash and newline.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	vec := r.GaugeVec("esc_gauge", "help with \\ and\nnewline", "path")
	vec.With("a\\b\"c\nd").Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if want := `# HELP esc_gauge help with \\ and\nnewline`; !strings.Contains(out, want) {
		t.Errorf("HELP not escaped, missing %q:\n%s", want, out)
	}
	if want := `esc_gauge{path="a\\b\"c\nd"} 1`; !strings.Contains(out, want) {
		t.Errorf("label value not escaped, missing %q:\n%s", want, out)
	}
}

// TestCollector checks scrape-time collectors merge into the output and
// run fresh at every scrape.
func TestCollector(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.RegisterCollector(func(e *Emitter) {
		n++
		e.Counter("coll_total", "from collector", n, Label{"site", "x"})
		e.Gauge("coll_gauge", "", n*2)
	})
	var sb strings.Builder
	r.WritePrometheus(&sb)
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE coll_total counter",
		`coll_total{site="x"} 2`,
		"coll_gauge 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestVecLabelKeying checks multi-label tuples can't collide and render
// with sorted, stable ordering.
func TestVecLabelKeying(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("multi_total", "", "a", "b")
	vec.With("x", "yz").Inc()
	vec.With("xy", "z").Add(2)
	if vec.With("x", "yz").Value() != 1 || vec.With("xy", "z").Value() != 2 {
		t.Fatal("label tuples collided")
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `multi_total{a="x",b="yz"} 1`) ||
		!strings.Contains(out, `multi_total{a="xy",b="z"} 2`) {
		t.Errorf("vec rendering wrong:\n%s", out)
	}
}

// TestInvalidNamePanics pins that misregistration is loud.
func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, func() { r.Counter("bad-name", "") })
	r.Counter("ok_total", "")
	mustPanic(t, func() { r.Gauge("ok_total", "") }) // type clash
	mustPanic(t, func() { NewHistogram([]float64{5, 1}) })
	vec := r.CounterVec("v_total", "", "a")
	mustPanic(t, func() { vec.With("x", "y") }) // arity clash
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
