// Package obs is the live-observability layer: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket
// histograms) rendered in the Prometheus text exposition format, a
// structured JSON-lines event log with campaign/job/site span scoping,
// and an HTTP debug server exposing /metrics, /healthz and
// /debug/pprof/*.
//
// The paper's interactive and batch phases both hinge on watching the
// grid: RealityGrid steering exposes live simulation state, and the §V
// federation pathologies (stragglers, co-scheduling failures, lightpath
// QoS) were diagnosed by monitoring, not post-mortems. This package is
// that monitoring surface for the Go reproduction — everything the dist
// runtime knows (breaker states, site EWMAs, speculation races) becomes
// scrapeable while the campaign runs, instead of only printable after
// it.
//
// Design rules:
//
//   - Standard library only, so every layer down to internal/md can
//     depend on it without dragging model code upward.
//   - Instruments are lock-free on the update path (atomics only, zero
//     allocations), so the MD force loop can be sampled without
//     perturbing the benchmarks the regression harness gates on.
//   - Point-in-time values (the dist Stats snapshot, neighbor-list
//     statistics) are exported through Collectors evaluated at scrape
//     time, so /metrics and the programmatic snapshot can never drift.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// metricType is the Prometheus family type.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing metric. The zero value is ready
// to use; updates are a single atomic add.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use; Set is a single atomic store.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value (CAS loop; fine off the hot path).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is atomics-only and allocation-free, so it is safe to call
// from sampled hot paths like the MD step loop.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, cumulative at render time
	sum    Gauge
	count  atomic.Int64
}

// NewHistogram builds a standalone histogram (use Registry.Histogram to
// register one for scraping). bounds must be ascending.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the upper bounds and the cumulative count at each
// (the last entry is the +Inf bucket, equal to Count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// ExpBuckets returns n ascending histogram bounds starting at start and
// multiplying by factor: the usual shape for latency histograms, where
// the interesting structure spans orders of magnitude. start must be
// positive and factor > 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Label is one name="value" pair on a metric sample.
type Label struct{ Name, Value string }

// family is one named metric family and its children keyed by label
// values.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string // label names, fixed per family

	mu       sync.Mutex
	children map[string]any // key: joined label values → *Counter/*Gauge/*Histogram
	keys     []string       // sorted lazily at render
	bounds   []float64      // histogram families share bounds
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func validName(s string) bool { return nameRE.MatchString(s) }

// Registry holds registered instruments and scrape-time collectors.
// All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	order      []string
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family registers (or fetches) a family, enforcing name/type/label
// consistency. Misregistration is a programming error → panic.
func (r *Registry) family(name, help string, typ metricType, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with different type or labels", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: append([]string(nil), labels...),
		children: make(map[string]any)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// child fetches or creates the instrument for one label-value tuple.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	f.keys = append(f.keys, key)
	return c
}

// labelKey joins label values with an unprintable separator so distinct
// tuples can never collide.
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\xff')
		}
		b = append(b, v...)
	}
	return string(b)
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil)
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil)
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram registers (or returns) an unlabeled histogram with the
// given ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil)
	h := f.child(nil, func() any {
		f.bounds = append([]float64(nil), bounds...)
		return NewHistogram(bounds)
	}).(*Histogram)
	return h
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, typeCounter, labelNames)}
}

// With returns the counter for one label-value tuple.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, typeGauge, labelNames)}
}

// With returns the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// Collector emits point-in-time samples at scrape. Collectors run with
// no registry lock held beyond registration order, so they may call
// into arbitrary snapshot code (e.g. the dist coordinator's mutex).
type Collector func(e *Emitter)

// RegisterCollector adds a scrape-time collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// sample is one collected (labels, value) point.
type sample struct {
	labels []Label
	value  float64
}

// snapFamily is a collector-produced family for one scrape.
type snapFamily struct {
	name    string
	help    string
	typ     metricType
	samples []sample
}

// Emitter accumulates collector output during one scrape.
type Emitter struct {
	fams  map[string]*snapFamily
	order []string
}

func (e *Emitter) emit(name, help string, typ metricType, v float64, labels []Label) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f := e.fams[name]
	if f == nil {
		f = &snapFamily{name: name, help: help, typ: typ}
		e.fams[name] = f
		e.order = append(e.order, name)
	}
	f.samples = append(f.samples, sample{labels: labels, value: v})
}

// Counter emits one counter sample.
func (e *Emitter) Counter(name, help string, v float64, labels ...Label) {
	e.emit(name, help, typeCounter, v, labels)
}

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name, help string, v float64, labels ...Label) {
	e.emit(name, help, typeGauge, v, labels)
}

// gather snapshots registered families and runs the collectors.
func (r *Registry) gather() ([]*family, []*snapFamily) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	em := &Emitter{fams: make(map[string]*snapFamily)}
	for _, c := range collectors {
		c(em)
	}
	snaps := make([]*snapFamily, 0, len(em.order))
	for _, name := range em.order {
		snaps = append(snaps, em.fams[name])
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })
	return fams, snaps
}
