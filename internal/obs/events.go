package obs

// Structured JSON-lines event log. Where metrics answer "how many",
// events answer "in what order": every scheduling decision the dist
// runtime makes (lease granted, breaker opened, speculation settled)
// becomes one JSON object on a stream, stamped with a monotonic
// sequence number and scoped by the same (campaign, job, attempt, site,
// worker) keys the journal uses — so a chaos run's event log can be
// cross-checked line-by-line against the final Stats snapshot.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured log record. Zero-valued scope fields are
// omitted from the JSON, so unscoped events stay small.
type Event struct {
	Seq      int64          `json:"seq"`
	Time     time.Time      `json:"time"`
	Name     string         `json:"event"`
	Campaign string         `json:"campaign,omitempty"`
	Job      string         `json:"job,omitempty"`
	Attempt  int            `json:"attempt,omitempty"`
	Site     string         `json:"site,omitempty"`
	Worker   string         `json:"worker,omitempty"`
	Fields   map[string]any `json:"fields,omitempty"`
}

// EventLog writes events as JSON lines and keeps a bounded ring of
// recent events plus per-name counts for test cross-checks. A nil
// *EventLog is valid: Emit and Scope become no-ops, so instrumented
// code never needs a nil guard at each call site.
type EventLog struct {
	mu     sync.Mutex
	w      io.Writer // may be nil (ring + counts only)
	seq    int64
	ring   []Event
	next   int // ring write cursor
	filled bool
	counts map[string]int64

	scope  Event     // inherited by Emit via Scope chains
	parent *EventLog // non-nil on scoped views; root holds the state
}

// NewEventLog builds a log writing JSONL to w (nil for ring-only) and
// retaining the last ringSize events for /debug/events and tests.
func NewEventLog(w io.Writer, ringSize int) *EventLog {
	if ringSize <= 0 {
		ringSize = 256
	}
	return &EventLog{w: w, ring: make([]Event, ringSize), counts: make(map[string]int64)}
}

// Scope returns a view of the log that fills each emitted event's
// zero-valued scope fields from base. Scopes chain: a campaign-scoped
// log can hand out job-scoped views. The view shares the sequence
// counter, ring and writer with its parent. Nil-safe.
func (l *EventLog) Scope(base Event) *EventLog {
	if l == nil {
		return nil
	}
	merged := l.scope
	applyScope(&merged, base)
	return &EventLog{w: nil, scope: merged, parent: l}
}

func applyScope(dst *Event, src Event) {
	if dst.Campaign == "" {
		dst.Campaign = src.Campaign
	}
	if dst.Job == "" {
		dst.Job = src.Job
	}
	if dst.Attempt == 0 {
		dst.Attempt = src.Attempt
	}
	if dst.Site == "" {
		dst.Site = src.Site
	}
	if dst.Worker == "" {
		dst.Worker = src.Worker
	}
}

// root walks to the log owning the sequence counter and writer.
func (l *EventLog) root() *EventLog {
	r := l
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Emit stamps ev with the next sequence number and the current time,
// fills empty scope fields from the log's scope, appends the JSON line
// to the writer, and records it in the ring. Nil-safe. Write errors
// are dropped: observability must never fail the campaign.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	applyScope(&ev, l.scope)
	r := l.root()
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now().UTC()
	}
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next, r.filled = 0, true
	}
	r.counts[ev.Name]++
	var line []byte
	if r.w != nil {
		line, _ = json.Marshal(ev)
	}
	if line != nil {
		line = append(line, '\n')
		r.w.Write(line)
	}
	r.mu.Unlock()
}

// Seq returns the last assigned sequence number.
func (l *EventLog) Seq() int64 {
	if l == nil {
		return 0
	}
	r := l.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Count returns how many events with this name have been emitted.
func (l *EventLog) Count(name string) int64 {
	if l == nil {
		return 0
	}
	r := l.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// Counts returns a copy of the per-name emission counts.
func (l *EventLog) Counts() map[string]int64 {
	if l == nil {
		return nil
	}
	r := l.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Recent returns up to n most-recent events, oldest first.
func (l *EventLog) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	r := l.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.filled {
		size = len(r.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}
