package obs

// HTTP debug server: /metrics (Prometheus text), /healthz, /readyz,
// /debug/pprof/* (net/http/pprof) and /debug/events (recent event ring
// as JSON). One server mounts on the coordinator (spice -obs-addr) and
// one on each worker (spiced -obs-addr) — the RealityGrid idea of
// attaching to a live simulation, recast as scrape endpoints.
//
// Liveness and readiness are distinct probes: /healthz answers "is the
// process up" and /readyz answers "may traffic be routed here" — a
// control plane replaying its journal is alive but not yet ready, and a
// load balancer that conflates the two would route submissions into a
// queue that still has ghosts.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is a running debug endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewMux builds the debug mux for a registry, event log, liveness probe
// and readiness probe. Any of the four may be nil; the matching
// endpoints degrade gracefully (empty metrics, empty events,
// always-healthy, ready-iff-healthy).
func NewMux(reg *Registry, events *EventLog, healthy, ready func() error) *http.ServeMux {
	probe := func(check func() error) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if check != nil {
				if err := check(); err != nil {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", probe(healthy))
	// Readiness implies liveness: a nil ready probe falls back to the
	// health check, so servers without a warm-up phase stay ready exactly
	// while they are healthy.
	if ready == nil {
		ready = healthy
	}
	mux.HandleFunc("/readyz", probe(ready))
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		n, _ := strconv.Atoi(req.URL.Query().Get("n"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		for _, ev := range events.Recent(n) {
			enc.Encode(ev)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound, so Addr() is immediately valid.
// healthy backs /healthz (liveness), ready backs /readyz (readiness —
// nil falls back to healthy).
func Serve(addr string, reg *Registry, events *EventLog, healthy, ready func() error) (*Server, error) {
	return ServeHandler(addr, NewMux(reg, events, healthy, ready))
}

// ServeHandler starts a debug server on addr with a caller-built
// handler — typically a NewMux with extra routes mounted on it (the
// control plane API rides the same listener as /metrics and /readyz).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		// A stalled or malicious scraper must not pin a connection (and
		// its goroutine) forever. WriteTimeout is generous because
		// /debug/pprof/profile and /debug/pprof/trace stream for their
		// requested duration — profiles longer than ~2 minutes are cut.
		srv: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down and waits for the serve loop to exit.
// Nil-safe, so deferred cleanup works whether or not -obs-addr was set.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
