package obs

// HTTP debug server: /metrics (Prometheus text), /healthz, /debug/pprof/*
// (net/http/pprof) and /debug/events (recent event ring as JSON). One
// server mounts on the coordinator (spice -obs-addr) and one on each
// worker (spiced -obs-addr) — the RealityGrid idea of attaching to a
// live simulation, recast as scrape endpoints.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is a running debug endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewMux builds the debug mux for a registry, event log and health
// probe. Any of the three may be nil; the matching endpoints degrade
// gracefully (empty metrics, empty events, always-healthy).
func NewMux(reg *Registry, events *EventLog, healthy func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		n, _ := strconv.Atoi(req.URL.Query().Get("n"))
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		for _, ev := range events.Recent(n) {
			enc.Encode(ev)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound, so Addr() is immediately valid.
func Serve(addr string, reg *Registry, events *EventLog, healthy func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: NewMux(reg, events, healthy), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down and waits for the serve loop to exit.
// Nil-safe, so deferred cleanup works whether or not -obs-addr was set.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Close()
	<-s.done
	return err
}
