package obs

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServerEndpoints boots the debug server on an ephemeral port and
// checks /metrics, /healthz, /debug/pprof/ and /debug/events.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "demo").Add(7)
	log := NewEventLog(nil, 8)
	log.Emit(Event{Name: "boot"})
	healthyErr := error(nil)
	readyErr := errors.New("journal replay in progress")
	s, err := Serve("127.0.0.1:0", reg, log,
		func() error { return healthyErr },
		func() error { return readyErr })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 7") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: code=%d body=%q", code, body)
	}
	// Alive but not ready: /healthz green, /readyz 503 — the warm-up
	// window (journal replay) a load balancer must respect.
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "replay") {
		t.Fatalf("/readyz while warming: code=%d body=%q, want 503", code, body)
	}
	readyErr = nil
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz ready: code=%d body=%q", code, body)
	}
	healthyErr = errors.New("draining")
	if code, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz unhealthy: code=%d, want 503", code)
	}
	healthyErr = nil
	if code, body := get("/debug/events"); code != 200 || !strings.Contains(body, `"event":"boot"`) {
		t.Fatalf("/debug/events: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d body-len=%d", code, len(body))
	}
}

// TestServerNilParts checks the mux degrades gracefully with nil
// registry/log/health, and that a nil *Server closes without panic.
func TestServerNilParts(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics with nil registry: %d", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err = http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s with nil probes: %d", path, resp.StatusCode)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var nilS *Server
	if nilS.Addr() != "" || nilS.Close() != nil {
		t.Fatal("nil Server should be inert")
	}
}
