package grid

// Priority + fair-share ordering, factored out of any one queue so the
// discrete-event simulator (Queue.ScheduleBatch) and the live control
// plane's lease-path scheduler (internal/controlplane) run the *same*
// policy implementation — the SPICE federation-scheduling story
// (paper §IV) needs the modeled policies and the served ones to agree,
// or capacity planning done against the simulator lies about the
// service.
//
// The policy is three-keyed and deterministic:
//
//  1. effective priority, descending — the submitter's Priority plus
//     Aging points per hour waited. Aging is the starvation-freedom
//     mechanism: any waiting candidate's effective priority grows
//     without bound, so a stream of fresh high-priority work can delay
//     a low-priority candidate only for a bounded time.
//  2. tenant fair-share usage, ascending — tenants that have consumed
//     less service go first within a priority band. Usage is whatever
//     the caller charges (CPU-hours in the simulator, completed jobs in
//     the live scheduler); only the ordering matters.
//  3. submission sequence, ascending — FCFS settles exact ties, which
//     also makes the whole order deterministic for a given input.

import "sort"

// Candidate is one schedulable item competing under a Policy: a batch
// job in the simulator, a campaign in the live control plane.
type Candidate struct {
	// Tenant is the fair-share accounting identity.
	Tenant string
	// Priority is the submitter-assigned base priority (higher first).
	Priority int
	// WaitHours is how long the candidate has been waiting; Aging
	// converts it into effective-priority points.
	WaitHours float64
	// Seq is the submission sequence number, the FCFS tiebreak.
	Seq int
}

// Policy orders candidates by priority, fair share, and age, and keeps
// the per-tenant usage ledger the fair-share key reads. The zero value
// is a pure priority+FCFS policy (no aging, no usage charged yet).
type Policy struct {
	// Aging is effective-priority points granted per hour waited.
	// 0 disables aging (and with it the starvation-freedom guarantee
	// across priority bands).
	Aging float64

	usage map[string]float64
}

// NewPolicy returns a policy with the given aging rate.
func NewPolicy(aging float64) *Policy { return &Policy{Aging: aging} }

// Charge adds amount to tenant's fair-share usage.
func (p *Policy) Charge(tenant string, amount float64) {
	if p.usage == nil {
		p.usage = make(map[string]float64)
	}
	p.usage[tenant] += amount
}

// Usage returns tenant's accumulated fair-share usage.
func (p *Policy) Usage(tenant string) float64 { return p.usage[tenant] }

// Effective returns c's aged priority under p.
func (p *Policy) Effective(c Candidate) float64 {
	return float64(c.Priority) + p.Aging*c.WaitHours
}

// Rank returns the indices of cands in scheduling order. extra, if
// non-nil, is added to the ledger's usage per tenant — the live
// scheduler passes currently-leased work so a tenant saturating the
// fleet right now ranks behind one that is idle, without the ledger
// being permanently charged for unfinished jobs.
func (p *Policy) Rank(cands []Candidate, extra map[string]float64) []int {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	use := func(tenant string) float64 {
		u := p.usage[tenant]
		if extra != nil {
			u += extra[tenant]
		}
		return u
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		ea, eb := p.Effective(ca), p.Effective(cb)
		if ea != eb {
			return ea > eb
		}
		if ua, ub := use(ca.Tenant), use(cb.Tenant); ua != ub {
			return ua < ub
		}
		return ca.Seq < cb.Seq
	})
	return order
}
