// Package grid is a discrete-event model of the HPC resources SPICE ran
// on: machines with processor counts, space-shared batch queues with
// FCFS/backfill scheduling, and the advance reservations that cross-site
// runs required. Time is measured in hours (float64) from the simulation
// epoch — the natural unit for a campaign that consumed 75,000 CPU-hours.
//
// The model is deliberately deterministic: given the same job stream it
// always produces the same schedule, which the campaign and federation
// layers rely on for reproducible experiments.
package grid

import (
	"errors"
	"fmt"
	"sort"
)

// Job is one batch submission.
type Job struct {
	ID    string
	Procs int
	// Hours is the wall-clock runtime once started.
	Hours float64
	// Submit is the queue entry time.
	Submit float64
	// Tenant is the fair-share accounting identity (empty: one shared
	// anonymous tenant). Only consulted by policy-ordered scheduling.
	Tenant string
	// Priority is the base scheduling priority (higher first; 0 default).
	Priority int
	// Tags carry application metadata (e.g. the SMD parameters).
	Tags map[string]string
}

// CPUHours returns Procs·Hours.
func (j *Job) CPUHours() float64 { return float64(j.Procs) * j.Hours }

// Placement records where and when a job ran.
type Placement struct {
	Job     *Job
	Machine *Machine
	Start   float64
	// Backfilled marks jobs that jumped the FCFS order into a hole.
	Backfilled bool
}

// End returns Start + Hours.
func (p Placement) End() float64 { return p.Start + p.Job.Hours }

// WaitTime returns Start - Submit.
func (p Placement) WaitTime() float64 { return p.Start - p.Job.Submit }

// interval is a scheduled allocation of procs on a machine.
type interval struct {
	start, end float64
	procs      int
}

// Machine is a space-shared HPC resource.
type Machine struct {
	Name  string
	Procs int
	// Site backlink (set by federation topologies; may be empty).
	Site string

	sched []interval
	// cands is EarliestStart's reusable candidate-time scratch: campaign
	// scheduling calls it for every (job, machine) probe, and rebuilding
	// the slice each call dominated the T3 benchmark's allocation profile.
	cands []float64
}

// NewMachine returns a machine with the given processor count.
func NewMachine(name string, procs int) *Machine {
	return &Machine{Name: name, Procs: procs}
}

// usedAt returns processors in use at time t (start-inclusive).
func (m *Machine) usedAt(t float64) int {
	used := 0
	for _, iv := range m.sched {
		if t >= iv.start && t < iv.end {
			used += iv.procs
		}
	}
	return used
}

// fits reports whether procs processors are free during [start, start+hours).
func (m *Machine) fits(start, hours float64, procs int) bool {
	if procs > m.Procs {
		return false
	}
	// Check at every boundary inside the window (piecewise-constant usage).
	// Usage only changes at interval starts, so probing `start` plus each
	// interval start inside the window is exhaustive; probing them directly
	// avoids materializing a boundary slice per call.
	if m.usedAt(start)+procs > m.Procs {
		return false
	}
	for _, iv := range m.sched {
		if iv.start > start && iv.start < start+hours && m.usedAt(iv.start)+procs > m.Procs {
			return false
		}
	}
	return true
}

// EarliestStart returns the earliest time >= after at which procs
// processors are simultaneously free for hours. It returns an error if the
// machine is too small.
func (m *Machine) EarliestStart(after, hours float64, procs int) (float64, error) {
	if procs <= 0 {
		return 0, fmt.Errorf("grid: job needs %d procs", procs)
	}
	if procs > m.Procs {
		return 0, fmt.Errorf("grid: %s has %d procs, job needs %d", m.Name, m.Procs, procs)
	}
	// Candidate starts: `after` and every interval end after it.
	cands := append(m.cands[:0], after)
	for _, iv := range m.sched {
		if iv.end > after {
			cands = append(cands, iv.end)
		}
	}
	m.cands = cands
	sort.Float64s(cands)
	for _, c := range cands {
		if m.fits(c, hours, procs) {
			return c, nil
		}
	}
	// Unreachable: the last interval end always fits.
	return 0, errors.New("grid: no feasible start found")
}

// Reserve books procs processors during [start, start+hours). It fails if
// capacity is unavailable — the advance-reservation conflict case.
func (m *Machine) Reserve(start, hours float64, procs int) error {
	if !m.fits(start, hours, procs) {
		return fmt.Errorf("grid: %s cannot fit %d procs at t=%.2f for %.2f h", m.Name, procs, start, hours)
	}
	m.sched = append(m.sched, interval{start: start, end: start + hours, procs: procs})
	return nil
}

// Utilization returns the fraction of proc-hours used in [0, horizon).
func (m *Machine) Utilization(horizon float64) float64 {
	if horizon <= 0 || m.Procs == 0 {
		return 0
	}
	used := 0.0
	for _, iv := range m.sched {
		lo, hi := iv.start, iv.end
		if lo < 0 {
			lo = 0
		}
		if hi > horizon {
			hi = horizon
		}
		if hi > lo {
			used += (hi - lo) * float64(iv.procs)
		}
	}
	return used / (horizon * float64(m.Procs))
}

// Outage blocks the whole machine during [start, start+hours) — used for
// failure injection (hardware failure, security quarantine §V.C.4). It
// overrides capacity checks: running jobs are preempted in the sense that
// the window is simply unavailable to later placements.
func (m *Machine) Outage(start, hours float64) {
	m.sched = append(m.sched, interval{start: start, end: start + hours, procs: m.Procs})
}

// Queue is a batch queue over one machine.
type Queue struct {
	M *Machine
	// Backfill enables conservative backfill: a job may start earlier
	// than a previously queued job if it fits in an existing hole.
	// Without it, starts are forced to be monotone in submit order
	// (strict FCFS).
	Backfill bool
	// Policy, if set, orders ScheduleBatch submissions by priority,
	// fair share and age instead of arrival order. One-at-a-time Submit
	// ignores it (arrival order IS the policy there).
	Policy *Policy

	lastStart float64
	placed    []Placement
}

// NewQueue wraps a machine.
func NewQueue(m *Machine, backfill bool) *Queue { return &Queue{M: m, Backfill: backfill} }

// Submit schedules j and returns its placement.
func (q *Queue) Submit(j *Job) (Placement, error) {
	after := j.Submit
	if !q.Backfill && q.lastStart > after {
		after = q.lastStart
	}
	start, err := q.M.EarliestStart(after, j.Hours, j.Procs)
	if err != nil {
		return Placement{}, err
	}
	if err := q.M.Reserve(start, j.Hours, j.Procs); err != nil {
		return Placement{}, err
	}
	p := Placement{Job: j, Machine: q.M, Start: start, Backfilled: q.Backfill && start < q.lastStart}
	if start > q.lastStart {
		q.lastStart = start
	}
	q.placed = append(q.placed, p)
	return p, nil
}

// ScheduleBatch schedules a set of competing jobs through the queue's
// Policy: at each step the policy ranks the not-yet-placed jobs (aged
// priority, then tenant fair share, then submit sequence), the winner
// is placed with Submit, and its CPU-hours are charged to its tenant —
// so a tenant burning through the machine sinks in the order as the
// batch drains, which is what makes the share "fair" rather than a
// static quota. With a nil Policy the batch degrades to submit order
// (the historical FCFS behavior). Placements are returned in the order
// jobs were placed.
func (q *Queue) ScheduleBatch(jobs []*Job) ([]Placement, error) {
	pol := q.Policy
	if pol == nil {
		// No policy: plain arrival order, exactly as repeated Submit calls.
		placed := make([]Placement, 0, len(jobs))
		for _, j := range jobs {
			p, err := q.Submit(j)
			if err != nil {
				return placed, err
			}
			placed = append(placed, p)
		}
		return placed, nil
	}
	// The decision clock: the batch is scheduled once the whole batch is
	// known, so every job's wait is measured to the latest submission.
	clock := 0.0
	for _, j := range jobs {
		if j.Submit > clock {
			clock = j.Submit
		}
	}
	cands := make([]Candidate, len(jobs))
	for i, j := range jobs {
		cands[i] = Candidate{Tenant: j.Tenant, Priority: j.Priority, WaitHours: clock - j.Submit, Seq: i}
	}
	placed := make([]Placement, 0, len(jobs))
	remaining := make([]int, len(jobs))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		sub := make([]Candidate, len(remaining))
		for k, i := range remaining {
			sub[k] = cands[i]
		}
		// Re-rank every round: the previous placement charged usage, and
		// fair share is exactly the property that the order reacts to it.
		next := remaining[pol.Rank(sub, nil)[0]]
		p, err := q.Submit(jobs[next])
		if err != nil {
			return placed, err
		}
		placed = append(placed, p)
		pol.Charge(jobs[next].Tenant, jobs[next].CPUHours())
		keep := remaining[:0]
		for _, i := range remaining {
			if i != next {
				keep = append(keep, i)
			}
		}
		remaining = keep
	}
	return placed, nil
}

// Placements returns all jobs scheduled through this queue.
func (q *Queue) Placements() []Placement { return append([]Placement(nil), q.placed...) }

// Makespan returns the latest end time across placements (0 if none).
func Makespan(ps []Placement) float64 {
	end := 0.0
	for _, p := range ps {
		if e := p.End(); e > end {
			end = e
		}
	}
	return end
}

// TotalCPUHours sums Procs·Hours over placements.
func TotalCPUHours(ps []Placement) float64 {
	s := 0.0
	for _, p := range ps {
		s += p.Job.CPUHours()
	}
	return s
}
