package grid

import (
	"math"
	"testing"
)

func TestEarliestStartEmptyMachine(t *testing.T) {
	m := NewMachine("m", 128)
	start, err := m.EarliestStart(5, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if start != 5 {
		t.Fatalf("start = %v, want 5 (submit time)", start)
	}
}

func TestEarliestStartTooBig(t *testing.T) {
	m := NewMachine("m", 128)
	if _, err := m.EarliestStart(0, 1, 256); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := m.EarliestStart(0, 1, 0); err == nil {
		t.Fatal("zero-proc job accepted")
	}
}

func TestReserveAndConflict(t *testing.T) {
	m := NewMachine("m", 100)
	if err := m.Reserve(0, 10, 60); err != nil {
		t.Fatal(err)
	}
	// 40 free: another 60 won't fit concurrently.
	if err := m.Reserve(5, 10, 60); err == nil {
		t.Fatal("overcommit accepted")
	}
	if err := m.Reserve(5, 10, 40); err != nil {
		t.Fatalf("fitting reservation rejected: %v", err)
	}
	// After the first ends, plenty of room.
	if err := m.Reserve(10, 10, 100); err == nil {
		// 40-proc job still running until t=15.
		t.Fatal("conflict with tail of second reservation accepted")
	}
	if err := m.Reserve(15, 10, 100); err != nil {
		t.Fatalf("post-drain reservation rejected: %v", err)
	}
}

func TestEarliestStartSkipsBusyWindow(t *testing.T) {
	m := NewMachine("m", 100)
	if err := m.Reserve(0, 10, 80); err != nil {
		t.Fatal(err)
	}
	// 50-proc job must wait until t=10.
	start, err := m.EarliestStart(0, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if start != 10 {
		t.Fatalf("start = %v, want 10", start)
	}
	// 20-proc job fits immediately alongside.
	start, err = m.EarliestStart(0, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("small job start = %v, want 0", start)
	}
}

func TestEarliestStartWindowSpanningTwoJobs(t *testing.T) {
	m := NewMachine("m", 100)
	_ = m.Reserve(0, 4, 60)
	_ = m.Reserve(6, 4, 60)
	// A 50-proc 10-hour job cannot fit in the t=4..6 gap; must start at 10.
	start, err := m.EarliestStart(0, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if start != 10 {
		t.Fatalf("start = %v, want 10", start)
	}
	// A 40-proc job fits any time (60+40 = 100).
	start, _ = m.EarliestStart(0, 10, 40)
	if start != 0 {
		t.Fatalf("40-proc start = %v, want 0", start)
	}
}

func TestFCFSMonotoneStarts(t *testing.T) {
	m := NewMachine("m", 100)
	q := NewQueue(m, false)
	// Big job first, then a tiny one that *could* run immediately but
	// must not overtake under strict FCFS.
	p1, err := q.Submit(&Job{ID: "big", Procs: 100, Hours: 10, Submit: 0})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := q.Submit(&Job{ID: "small", Procs: 1, Hours: 1, Submit: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Start < p1.Start {
		t.Fatalf("FCFS violated: small starts %v before big %v", p2.Start, p1.Start)
	}
}

func TestBackfillFillsHoles(t *testing.T) {
	mk := func(backfill bool) (Placement, Placement, Placement) {
		m := NewMachine("m", 100)
		q := NewQueue(m, backfill)
		a, _ := q.Submit(&Job{ID: "a", Procs: 60, Hours: 10, Submit: 0})
		b, _ := q.Submit(&Job{ID: "b", Procs: 60, Hours: 10, Submit: 0}) // must wait
		c, _ := q.Submit(&Job{ID: "c", Procs: 30, Hours: 5, Submit: 0})  // fits beside a
		return a, b, c
	}
	_, bNo, cNo := mk(false)
	_, bYes, cYes := mk(true)
	if cNo.Start < bNo.Start {
		t.Fatal("no-backfill queue let c overtake")
	}
	if cYes.Start >= bYes.Start {
		t.Fatalf("backfill did not let c fill the hole: c=%v b=%v", cYes.Start, bYes.Start)
	}
	if !cYes.Backfilled {
		t.Fatal("backfilled placement not marked")
	}
}

func TestBackfillImprovesMakespan(t *testing.T) {
	run := func(backfill bool) float64 {
		m := NewMachine("m", 128)
		q := NewQueue(m, backfill)
		var ps []Placement
		// Alternating wide and narrow jobs create holes.
		for i := 0; i < 20; i++ {
			procs := 100
			hours := 4.0
			if i%2 == 1 {
				procs = 20
				hours = 2
			}
			p, err := q.Submit(&Job{ID: "j", Procs: procs, Hours: hours, Submit: 0})
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, p)
		}
		return Makespan(ps)
	}
	if run(true) > run(false) {
		t.Fatalf("backfill worsened makespan: %v vs %v", run(true), run(false))
	}
}

func TestUtilization(t *testing.T) {
	m := NewMachine("m", 100)
	_ = m.Reserve(0, 10, 50)
	u := m.Utilization(10)
	if math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	// Beyond horizon clipped.
	_ = m.Reserve(5, 100, 10)
	u2 := m.Utilization(10)
	want := (10*50 + 5*10) / 1000.0
	if math.Abs(u2-want) > 1e-12 {
		t.Fatalf("clipped utilization = %v, want %v", u2, want)
	}
	if NewMachine("x", 0).Utilization(10) != 0 {
		t.Fatal("zero-proc machine utilization")
	}
}

func TestOutageBlocksPlacement(t *testing.T) {
	m := NewMachine("m", 100)
	m.Outage(0, 24)
	start, err := m.EarliestStart(0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if start != 24 {
		t.Fatalf("job starts at %v during outage", start)
	}
}

func TestJobHelpers(t *testing.T) {
	j := &Job{Procs: 128, Hours: 8.125}
	if j.CPUHours() != 1040 {
		t.Fatalf("CPUHours = %v", j.CPUHours())
	}
	p := Placement{Job: &Job{Hours: 3, Submit: 2}, Start: 7}
	if p.End() != 10 || p.WaitTime() != 5 {
		t.Fatalf("End=%v Wait=%v", p.End(), p.WaitTime())
	}
}

func TestMakespanAndTotals(t *testing.T) {
	ps := []Placement{
		{Job: &Job{Procs: 10, Hours: 5}, Start: 0},
		{Job: &Job{Procs: 20, Hours: 2}, Start: 10},
	}
	if Makespan(ps) != 12 {
		t.Fatalf("makespan = %v", Makespan(ps))
	}
	if TotalCPUHours(ps) != 90 {
		t.Fatalf("cpu-hours = %v", TotalCPUHours(ps))
	}
	if Makespan(nil) != 0 {
		t.Fatal("empty makespan")
	}
}

func TestQueuePlacementsCopy(t *testing.T) {
	m := NewMachine("m", 10)
	q := NewQueue(m, true)
	_, _ = q.Submit(&Job{ID: "a", Procs: 1, Hours: 1})
	ps := q.Placements()
	if len(ps) != 1 {
		t.Fatalf("placements = %d", len(ps))
	}
	ps[0].Start = 999
	if q.Placements()[0].Start == 999 {
		t.Fatal("Placements returned internal slice")
	}
}
