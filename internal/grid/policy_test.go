package grid

import (
	"fmt"
	"reflect"
	"testing"
)

func TestPolicyPriorityThenFairShareThenSeq(t *testing.T) {
	p := NewPolicy(0)
	p.Charge("greedy", 100)
	cands := []Candidate{
		{Tenant: "greedy", Priority: 0, Seq: 0},
		{Tenant: "idle", Priority: 0, Seq: 1},
		{Tenant: "idle", Priority: 5, Seq: 2},
		{Tenant: "idle", Priority: 0, Seq: 3},
	}
	got := p.Rank(cands, nil)
	// Priority 5 first; then the idle tenant's two zero-priority entries
	// in seq order (less usage than greedy); greedy last.
	want := []int{2, 1, 3, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank = %v, want %v", got, want)
	}

	// The extra ledger (live leased work) reorders without a permanent
	// charge: load "idle" up and it sinks below "greedy".
	got = p.Rank(cands, map[string]float64{"idle": 1000})
	want = []int{2, 0, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Rank with extra = %v, want %v", got, want)
	}
	if u := p.Usage("idle"); u != 0 {
		t.Fatalf("extra charged the ledger: usage(idle) = %v", u)
	}
}

func TestPolicyAgingOvertakesPriority(t *testing.T) {
	p := NewPolicy(2) // 2 effective points per hour waited
	fresh := Candidate{Tenant: "hi", Priority: 10, WaitHours: 0, Seq: 1}
	for _, tc := range []struct {
		wait  float64
		first int // index expected to rank first
	}{
		{wait: 0, first: 1},
		{wait: 4, first: 1},   // 0 + 2·4 = 8 < 10
		{wait: 5.5, first: 0}, // 0 + 2·5.5 = 11 > 10
	} {
		aged := Candidate{Tenant: "lo", Priority: 0, WaitHours: tc.wait, Seq: 0}
		got := p.Rank([]Candidate{aged, fresh}, nil)[0]
		if got != tc.first {
			t.Fatalf("wait %.1f h: first = %d, want %d", tc.wait, got, tc.first)
		}
	}
}

// TestStarvationFreedom submits an unbounded-looking stream of fresh
// high-priority jobs alongside one old low-priority job and requires
// the aged job to be scheduled within the bound aging implies: once its
// wait exceeds (priority gap)/Aging hours, no fresh job outranks it.
func TestStarvationFreedom(t *testing.T) {
	p := NewPolicy(1) // 1 point per hour: gap of 10 → overtakes after 10 h
	starved := Candidate{Tenant: "lo", Priority: 0, Seq: 0}
	for round := 0; round < 30; round++ {
		starved.WaitHours = float64(round)
		fresh := make([]Candidate, 0, 8)
		for i := 0; i < 8; i++ {
			fresh = append(fresh, Candidate{Tenant: "hi", Priority: 10, WaitHours: 0, Seq: 1 + round*8 + i})
		}
		order := p.Rank(append([]Candidate{starved}, fresh...), nil)
		if order[0] == 0 {
			// At round 10 the priorities tie and FCFS breaks it for the
			// older job; before that a win would be a bug.
			if round < 10 {
				t.Fatalf("aged job won too early, round %d", round)
			}
			return // scheduled: not starved
		}
		if round > 10 {
			t.Fatalf("aged job still starved at wait %d h (aging bound is 10 h)", round)
		}
	}
	t.Fatal("aged job never scheduled: starvation")
}

func TestScheduleBatchFairShareInterleaves(t *testing.T) {
	m := NewMachine("hpcx", 128)
	q := NewQueue(m, true)
	q.Policy = NewPolicy(0)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		jobs = append(jobs, &Job{ID: fmt.Sprintf("a%d", i), Tenant: "alice", Procs: 128, Hours: 1})
		jobs = append(jobs, &Job{ID: fmt.Sprintf("b%d", i), Tenant: "bob", Procs: 128, Hours: 1})
	}
	ps, err := q.ScheduleBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Equal priority, equal cost: fair share alternates tenants — each
	// placement charges its tenant, pushing it behind the other.
	wantOrder := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	for i, p := range ps {
		if p.Job.ID != wantOrder[i] {
			t.Fatalf("placement %d = %s, want %s (full order %v)", i, p.Job.ID, wantOrder[i], ids(ps))
		}
	}
	if u := q.Policy.Usage("alice"); u != 3*128 {
		t.Fatalf("alice usage = %v, want %v", u, 3*128)
	}
}

func TestScheduleBatchPriorityBeatsArrival(t *testing.T) {
	m := NewMachine("hpcx", 128)
	q := NewQueue(m, true)
	q.Policy = NewPolicy(0)
	jobs := []*Job{
		{ID: "routine", Tenant: "a", Procs: 128, Hours: 2, Priority: 0},
		{ID: "urgent", Tenant: "b", Procs: 128, Hours: 1, Priority: 9},
	}
	ps, err := q.ScheduleBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Job.ID != "urgent" || ps[0].Start != 0 {
		t.Fatalf("urgent not scheduled first: %v", ids(ps))
	}
	if ps[1].Start != 1 {
		t.Fatalf("routine start = %v, want 1 (after urgent)", ps[1].Start)
	}
}

// TestScheduleBatchNilPolicyIsFCFS pins the compatibility contract: no
// policy means the historical arrival-order behavior.
func TestScheduleBatchNilPolicyIsFCFS(t *testing.T) {
	m := NewMachine("hpcx", 128)
	q := NewQueue(m, false)
	jobs := []*Job{
		{ID: "first", Procs: 128, Hours: 1, Priority: 0},
		{ID: "second", Procs: 128, Hours: 1, Priority: 99},
	}
	ps, err := q.ScheduleBatch(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Job.ID != "first" {
		t.Fatalf("nil policy reordered the batch: %v", ids(ps))
	}
}

func TestScheduleBatchDeterministic(t *testing.T) {
	run := func() []string {
		m := NewMachine("hpcx", 256)
		q := NewQueue(m, true)
		q.Policy = NewPolicy(0.5)
		var jobs []*Job
		for i := 0; i < 12; i++ {
			jobs = append(jobs, &Job{
				ID:       fmt.Sprintf("j%d", i),
				Tenant:   []string{"a", "b", "c"}[i%3],
				Priority: i % 2,
				Procs:    128,
				Hours:    float64(1 + i%4),
				Submit:   float64(i) * 0.25,
			})
		}
		ps, err := q.ScheduleBatch(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return ids(ps)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic batch order: %v vs %v", a, b)
	}
}

func ids(ps []Placement) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Job.ID
	}
	return out
}
