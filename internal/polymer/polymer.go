// Package polymer provides the chain-statistics observables used to
// analyze the translocating ssDNA: end-to-end distance and radius of
// gyration, persistence-length estimation from bond-vector correlations,
// and the Marko–Siggia worm-like-chain force-extension relation that the
// haptic-exploration phase compares measured pulling forces against.
//
// The paper's analysis layer studies "details of the interaction of a
// pore with a translocating biomolecule"; these are the standard polymer
// measures that quantify the Fig. 3 stretching observation.
package polymer

import (
	"errors"
	"fmt"
	"math"

	"spice/internal/units"
	"spice/internal/vec"
)

// EndToEnd returns |r_N - r_0| for the chain conformation.
func EndToEnd(pos []vec.V) float64 {
	if len(pos) < 2 {
		return 0
	}
	return vec.Dist(pos[len(pos)-1], pos[0])
}

// ContourLength returns the sum of bond lengths.
func ContourLength(pos []vec.V) float64 {
	l := 0.0
	for i := 1; i < len(pos); i++ {
		l += vec.Dist(pos[i], pos[i-1])
	}
	return l
}

// RadiusOfGyration returns sqrt(⟨(r_i - r_cm)²⟩) with equal masses.
func RadiusOfGyration(pos []vec.V) float64 {
	if len(pos) == 0 {
		return 0
	}
	cm := vec.Mean(pos)
	s := 0.0
	for _, p := range pos {
		s += vec.Dist2(p, cm)
	}
	return math.Sqrt(s / float64(len(pos)))
}

// BondVectors returns the normalized bond vectors of a conformation.
func BondVectors(pos []vec.V) []vec.V {
	if len(pos) < 2 {
		return nil
	}
	out := make([]vec.V, 0, len(pos)-1)
	for i := 1; i < len(pos); i++ {
		out = append(out, pos[i].Sub(pos[i-1]).Unit())
	}
	return out
}

// BondCorrelation returns C(k) = ⟨u_i · u_{i+k}⟩ averaged over i and over
// the supplied conformations, for k = 0..maxLag.
func BondCorrelation(confs [][]vec.V, maxLag int) ([]float64, error) {
	if len(confs) == 0 {
		return nil, errors.New("polymer: no conformations")
	}
	sums := make([]float64, maxLag+1)
	counts := make([]int, maxLag+1)
	for _, pos := range confs {
		us := BondVectors(pos)
		for k := 0; k <= maxLag && k < len(us); k++ {
			for i := 0; i+k < len(us); i++ {
				sums[k] += us[i].Dot(us[i+k])
				counts[k]++
			}
		}
	}
	out := make([]float64, maxLag+1)
	for k := range out {
		if counts[k] == 0 {
			return nil, fmt.Errorf("polymer: no bond pairs at lag %d (chains too short)", k)
		}
		out[k] = sums[k] / float64(counts[k])
	}
	return out, nil
}

// PersistenceLength estimates l_p from the exponential decay of the bond
// correlation function C(k) ≈ exp(-k·b/l_p), using a log-linear fit over
// the lags where C(k) > floor. b is the mean bond length.
func PersistenceLength(confs [][]vec.V, maxLag int) (float64, error) {
	c, err := BondCorrelation(confs, maxLag)
	if err != nil {
		return 0, err
	}
	b := 0.0
	nb := 0
	for _, pos := range confs {
		for i := 1; i < len(pos); i++ {
			b += vec.Dist(pos[i], pos[i-1])
			nb++
		}
	}
	if nb == 0 {
		return 0, errors.New("polymer: no bonds")
	}
	b /= float64(nb)

	// Log-linear fit of ln C(k) vs k over usable lags.
	const floor = 0.05
	var xs, ys []float64
	for k := 1; k < len(c); k++ {
		if c[k] <= floor {
			break
		}
		xs = append(xs, float64(k))
		ys = append(ys, math.Log(c[k]))
	}
	if len(xs) < 2 {
		return 0, errors.New("polymer: correlation decays too fast to fit")
	}
	// slope = -b/l_p.
	mx, my := mean(xs), mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, errors.New("polymer: degenerate fit")
	}
	slope := sxy / sxx
	if slope >= 0 {
		return 0, errors.New("polymer: correlation does not decay")
	}
	return -b / slope, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// WLCForce returns the Marko–Siggia interpolation for the force (pN)
// needed to hold a worm-like chain of persistence length lp (Å) at
// fractional extension x = R/L ∈ [0, 1) at temperature t (K):
//
//	F = (kT/lp)·(1/(4(1-x)²) - 1/4 + x)
func WLCForce(x, lp, t float64) (float64, error) {
	if x < 0 || x >= 1 {
		return 0, fmt.Errorf("polymer: extension fraction %g out of [0,1)", x)
	}
	if lp <= 0 {
		return 0, fmt.Errorf("polymer: persistence length %g", lp)
	}
	kT := units.KT(t) // kcal/mol
	f := kT / lp * (1/(4*(1-x)*(1-x)) - 0.25 + x)
	return units.PNFromKcalMolA(f), nil
}

// WLCExtension inverts WLCForce numerically (bisection): the fractional
// extension at force fPN.
func WLCExtension(fPN, lp, t float64) (float64, error) {
	if fPN < 0 {
		return 0, fmt.Errorf("polymer: negative force %g", fPN)
	}
	lo, hi := 0.0, 1-1e-9
	for iter := 0; iter < 200; iter++ {
		mid := 0.5 * (lo + hi)
		f, err := WLCForce(mid, lp, t)
		if err != nil {
			return 0, err
		}
		if f < fPN {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// IdealChainR2 returns the freely-jointed-chain prediction ⟨R²⟩ = N·b²
// for N bonds of length b — the baseline the persistence-length estimate
// is validated against.
func IdealChainR2(nBonds int, b float64) float64 {
	return float64(nBonds) * b * b
}

// StretchProfile bins per-bond strain (len/b0 - 1) by the bond midpoint's
// z coordinate over a set of conformations — the Fig. 3 analysis as a
// reusable observable. Bins span [zlo, zhi) uniformly.
type StretchProfile struct {
	ZLo, ZHi float64
	Bins     int
	b0       float64
	sum      []float64
	count    []int
}

// NewStretchProfile builds an empty profile for bonds of rest length b0.
func NewStretchProfile(zlo, zhi float64, bins int, b0 float64) (*StretchProfile, error) {
	if bins < 1 || zhi <= zlo || b0 <= 0 {
		return nil, fmt.Errorf("polymer: bad stretch profile spec [%g,%g) x%d b0=%g", zlo, zhi, bins, b0)
	}
	return &StretchProfile{
		ZLo: zlo, ZHi: zhi, Bins: bins, b0: b0,
		sum: make([]float64, bins), count: make([]int, bins),
	}, nil
}

// Add accumulates one conformation.
func (sp *StretchProfile) Add(pos []vec.V) {
	for i := 1; i < len(pos); i++ {
		mid := (pos[i].Z + pos[i-1].Z) / 2
		if mid < sp.ZLo || mid >= sp.ZHi {
			continue
		}
		b := int((mid - sp.ZLo) / (sp.ZHi - sp.ZLo) * float64(sp.Bins))
		if b >= sp.Bins {
			b = sp.Bins - 1
		}
		sp.sum[b] += vec.Dist(pos[i], pos[i-1])/sp.b0 - 1
		sp.count[b]++
	}
}

// Strain returns the mean strain in bin b and whether it has samples.
func (sp *StretchProfile) Strain(b int) (float64, bool) {
	if b < 0 || b >= sp.Bins || sp.count[b] == 0 {
		return 0, false
	}
	return sp.sum[b] / float64(sp.count[b]), true
}

// BinCenter returns the z coordinate of bin b's center.
func (sp *StretchProfile) BinCenter(b int) float64 {
	w := (sp.ZHi - sp.ZLo) / float64(sp.Bins)
	return sp.ZLo + (float64(b)+0.5)*w
}
