package polymer

import (
	"math"
	"testing"

	"spice/internal/units"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// straightChain returns n beads spaced b apart along +z.
func straightChain(n int, b float64) []vec.V {
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.V{Z: float64(i) * b}
	}
	return pos
}

// freelyJointed draws a random-walk chain with bond length b.
func freelyJointed(rng *xrand.Source, n int, b float64) []vec.V {
	pos := make([]vec.V, n)
	for i := 1; i < n; i++ {
		dir := vec.V{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Unit()
		pos[i] = pos[i-1].Add(dir.Scale(b))
	}
	return pos
}

// wormlike draws a chain whose bond direction decorrelates with
// per-bond angle noise, giving persistence length lp = b/(1-⟨cosθ⟩).
func wormlike(rng *xrand.Source, n int, b, sigma float64) []vec.V {
	pos := make([]vec.V, n)
	dir := vec.V{Z: 1}
	for i := 1; i < n; i++ {
		// Small random rotation: add Gaussian noise and renormalize.
		dir = dir.Add(vec.V{
			X: sigma * rng.NormFloat64(),
			Y: sigma * rng.NormFloat64(),
			Z: sigma * rng.NormFloat64(),
		}).Unit()
		pos[i] = pos[i-1].Add(dir.Scale(b))
	}
	return pos
}

func TestEndToEndAndContour(t *testing.T) {
	pos := straightChain(11, 6.5)
	if got := EndToEnd(pos); math.Abs(got-65) > 1e-9 {
		t.Fatalf("end-to-end = %v", got)
	}
	if got := ContourLength(pos); math.Abs(got-65) > 1e-9 {
		t.Fatalf("contour = %v", got)
	}
	if EndToEnd(nil) != 0 || ContourLength(pos[:1]) != 0 {
		t.Fatal("degenerate chains")
	}
}

func TestRadiusOfGyrationRod(t *testing.T) {
	// Rod of length L (continuum): Rg = L/sqrt(12). Discrete beads are
	// close for many beads.
	n, b := 101, 1.0
	pos := straightChain(n, b)
	L := float64(n-1) * b
	want := L / math.Sqrt(12)
	if got := RadiusOfGyration(pos); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("rod Rg = %v, want ~%v", got, want)
	}
	if RadiusOfGyration(nil) != 0 {
		t.Fatal("empty Rg")
	}
}

func TestFJCEndToEndStatistics(t *testing.T) {
	// ⟨R²⟩ = N·b² for a freely-jointed chain.
	rng := xrand.New(1)
	const n, b = 51, 6.5
	const trials = 3000
	sum := 0.0
	for i := 0; i < trials; i++ {
		r := EndToEnd(freelyJointed(rng, n, b))
		sum += r * r
	}
	got := sum / trials
	want := IdealChainR2(n-1, b)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("FJC <R²> = %v, want %v", got, want)
	}
}

func TestBondCorrelationLimits(t *testing.T) {
	// Straight chain: C(k) = 1 for all k. FJC: C(k>0) ~ 0.
	straight := [][]vec.V{straightChain(20, 1)}
	c, err := BondCorrelation(straight, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range c {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("straight C(%d) = %v", k, v)
		}
	}
	rng := xrand.New(2)
	var confs [][]vec.V
	for i := 0; i < 200; i++ {
		confs = append(confs, freelyJointed(rng, 30, 1))
	}
	c2, err := BondCorrelation(confs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c2[0] < 0.999 {
		t.Fatalf("C(0) = %v", c2[0])
	}
	if math.Abs(c2[1]) > 0.05 {
		t.Fatalf("FJC C(1) = %v, want ~0", c2[1])
	}
	if _, err := BondCorrelation(nil, 3); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestPersistenceLengthWormlike(t *testing.T) {
	// Generate wormlike chains with a known decay and recover lp.
	rng := xrand.New(3)
	const b = 1.0
	const sigma = 0.25
	var confs [][]vec.V
	for i := 0; i < 400; i++ {
		confs = append(confs, wormlike(rng, 80, b, sigma))
	}
	// Empirical ⟨cosθ⟩ between consecutive bonds gives the expected lp
	// via C(k) = ⟨cosθ⟩^k → lp = -b/ln⟨cosθ⟩.
	c, err := BondCorrelation(confs, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantLp := -b / math.Log(c[1])
	lp, err := PersistenceLength(confs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lp-wantLp)/wantLp > 0.15 {
		t.Fatalf("lp = %v, want ~%v", lp, wantLp)
	}
	// FJC decays too fast to fit.
	rng2 := xrand.New(4)
	var fjc [][]vec.V
	for i := 0; i < 50; i++ {
		fjc = append(fjc, freelyJointed(rng2, 30, 1))
	}
	if _, err := PersistenceLength(fjc, 10); err == nil {
		t.Fatal("FJC fit should fail (immediate decay)")
	}
}

func TestWLCForceLimits(t *testing.T) {
	lp := 10.0
	// Low extension: linear response F ≈ (3kT/2... ) actually Marko-Siggia
	// at x→0: F = (kT/lp)·x·(3/2)... expanding: 1/(4(1-x)²)-1/4+x ≈ 3x/2.
	f1, err := WLCForce(0.01, lp, 300)
	if err != nil {
		t.Fatal(err)
	}
	kT := units.KTRoom
	wantLinear := units.PNFromKcalMolA(kT / lp * 1.5 * 0.01)
	if math.Abs(f1-wantLinear)/wantLinear > 0.05 {
		t.Fatalf("low-extension force %v, want ~%v", f1, wantLinear)
	}
	// Divergence near full extension.
	f9, _ := WLCForce(0.9, lp, 300)
	f99, _ := WLCForce(0.99, lp, 300)
	if f99 < 50*f9/10 {
		t.Fatalf("no divergence: F(0.9)=%v F(0.99)=%v", f9, f99)
	}
	// Monotonicity.
	prev := -1.0
	for x := 0.0; x < 0.99; x += 0.01 {
		f, err := WLCForce(x, lp, 300)
		if err != nil {
			t.Fatal(err)
		}
		if f <= prev {
			t.Fatalf("WLC force not monotone at x=%v", x)
		}
		prev = f
	}
	// Domain errors.
	if _, err := WLCForce(1.0, lp, 300); err == nil {
		t.Fatal("x=1 accepted")
	}
	if _, err := WLCForce(0.5, 0, 300); err == nil {
		t.Fatal("lp=0 accepted")
	}
}

func TestWLCExtensionInvertsForce(t *testing.T) {
	lp := 7.0
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		f, err := WLCForce(x, lp, 300)
		if err != nil {
			t.Fatal(err)
		}
		got, err := WLCExtension(f, lp, 300)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-x) > 1e-6 {
			t.Fatalf("inversion at x=%v gave %v", x, got)
		}
	}
	if _, err := WLCExtension(-1, lp, 300); err == nil {
		t.Fatal("negative force accepted")
	}
}

func TestStretchProfile(t *testing.T) {
	sp, err := NewStretchProfile(-10, 10, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// A chain stretched 10% below z=0, relaxed above.
	pos := []vec.V{
		{Z: -6}, {Z: -4.9}, {Z: -3.8}, // two bonds of 1.1 at z<0
		{Z: -2.8}, {Z: -1.8}, // relaxed bonds approaching 0
		{Z: 2}, {Z: 3}, // relaxed bonds above (gap bond spans bins)
	}
	sp.Add(pos)
	s0, ok := sp.Strain(0) // bin [-10,-5): one bond midpoint -5.45
	if !ok || math.Abs(s0-0.1) > 1e-9 {
		t.Fatalf("bin0 strain = %v ok=%v", s0, ok)
	}
	s3, ok := sp.Strain(3) // bin [5,10): nothing
	if ok {
		t.Fatalf("empty bin reported %v", s3)
	}
	if c := sp.BinCenter(0); math.Abs(c+7.5) > 1e-9 {
		t.Fatalf("bin center = %v", c)
	}
	if _, err := NewStretchProfile(0, 0, 4, 1); err == nil {
		t.Fatal("bad spec accepted")
	}
}
