package neighbor

import (
	"sort"
	"testing"

	"spice/internal/vec"
	"spice/internal/xrand"
)

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].I != ps[j].I {
			return ps[i].I < ps[j].I
		}
		return ps[i].J < ps[j].J
	})
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	sortPairs(a)
	sortPairs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomPositions(rng *xrand.Source, n int, span float64) []vec.V {
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.V{X: span * rng.Float64(), Y: span * rng.Float64(), Z: span * rng.Float64()}
	}
	return pos
}

func TestCellListMatchesBruteForceOpen(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{3, 30, 64, 65, 200, 500} {
		pos := randomPositions(rng, n, 40)
		l := NewList(5, 0, vec.Zero)
		l.ForceRebuild(pos)
		want := BruteForcePairs(pos, 5, vec.Zero, nil)
		got := append([]Pair(nil), l.Pairs...)
		if !pairsEqual(got, want) {
			t.Fatalf("n=%d: cell list %d pairs, brute force %d", n, len(got), len(want))
		}
	}
}

func TestCellListMatchesBruteForcePeriodic(t *testing.T) {
	rng := xrand.New(2)
	box := vec.V{X: 30, Y: 30, Z: 30}
	for _, n := range []int{10, 100, 400} {
		pos := randomPositions(rng, n, 30)
		l := NewList(4, 0, box)
		l.ForceRebuild(pos)
		want := BruteForcePairs(pos, 4, box, nil)
		got := append([]Pair(nil), l.Pairs...)
		if !pairsEqual(got, want) {
			t.Fatalf("n=%d periodic: cell list %d pairs, brute force %d", n, len(got), len(want))
		}
	}
}

func TestCellListPartialPeriodic(t *testing.T) {
	rng := xrand.New(3)
	box := vec.V{X: 25, Y: 25, Z: 0} // slab geometry: open in z
	pos := randomPositions(rng, 300, 25)
	for i := range pos {
		pos[i].Z = rng.NormFloat64() * 20
	}
	l := NewList(4, 0, box)
	l.ForceRebuild(pos)
	want := BruteForcePairs(pos, 4, box, nil)
	got := append([]Pair(nil), l.Pairs...)
	if !pairsEqual(got, want) {
		t.Fatalf("slab: cell list %d pairs, brute force %d", len(got), len(want))
	}
}

func TestSkinIncludesNearMisses(t *testing.T) {
	// With skin, pairs slightly beyond the cutoff must be listed.
	pos := []vec.V{{}, {X: 5.5}}
	l := NewList(5, 1, vec.Zero)
	l.ForceRebuild(pos)
	if len(l.Pairs) != 1 {
		t.Fatalf("skin miss: %d pairs", len(l.Pairs))
	}
	// Without skin it must not be.
	l2 := NewList(5, 0, vec.Zero)
	l2.ForceRebuild(pos)
	if len(l2.Pairs) != 0 {
		t.Fatalf("no-skin: %d pairs", len(l2.Pairs))
	}
}

func TestUpdateRebuildPolicy(t *testing.T) {
	rng := xrand.New(4)
	pos := randomPositions(rng, 100, 20)
	l := NewList(4, 2, vec.Zero)
	if !l.Update(pos) {
		t.Fatal("first Update must rebuild")
	}
	n := l.Rebuilds()
	// Tiny move: no rebuild.
	pos[0].X += 0.1
	if l.Update(pos) || l.Rebuilds() != n {
		t.Fatal("tiny move triggered rebuild")
	}
	// Move beyond skin/2: rebuild.
	pos[0].X += 2
	if !l.Update(pos) || l.Rebuilds() != n+1 {
		t.Fatal("large move did not trigger rebuild")
	}
}

func TestExclusions(t *testing.T) {
	pos := []vec.V{{}, {X: 1}, {X: 2}}
	l := NewList(5, 0, vec.Zero)
	l.Exclude = func(i, j int) bool { return i == 0 && j == 1 || i == 1 && j == 0 }
	l.ForceRebuild(pos)
	for _, p := range l.Pairs {
		if p.I == 0 && p.J == 1 {
			t.Fatal("excluded pair listed")
		}
	}
	if len(l.Pairs) != 2 { // (0,2) and (1,2)
		t.Fatalf("pairs = %v", l.Pairs)
	}
}

func TestPairOrderingInvariant(t *testing.T) {
	rng := xrand.New(5)
	pos := randomPositions(rng, 300, 30)
	l := NewList(5, 1, vec.Zero)
	l.ForceRebuild(pos)
	for _, p := range l.Pairs {
		if p.I >= p.J {
			t.Fatalf("unordered pair %v", p)
		}
	}
}

func TestNoDuplicatePairs(t *testing.T) {
	rng := xrand.New(6)
	box := vec.V{X: 12, Y: 12, Z: 12} // small box stresses cell wrapping
	pos := randomPositions(rng, 200, 12)
	l := NewList(4, 0.5, box)
	l.ForceRebuild(pos)
	seen := make(map[Pair]bool)
	for _, p := range l.Pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestSmallBoxPeriodicCorrectness(t *testing.T) {
	// Box barely larger than cutoff: n=1..2 cells per axis, the wrap
	// suppression path.
	rng := xrand.New(7)
	box := vec.V{X: 9, Y: 9, Z: 9}
	pos := randomPositions(rng, 150, 9)
	l := NewList(4, 0, box)
	l.ForceRebuild(pos)
	want := BruteForcePairs(pos, 4, box, nil)
	got := append([]Pair(nil), l.Pairs...)
	if !pairsEqual(got, want) {
		t.Fatalf("small box: %d vs %d pairs", len(got), len(want))
	}
}

func TestEmptyAndSingle(t *testing.T) {
	l := NewList(5, 1, vec.Zero)
	l.ForceRebuild(nil)
	if len(l.Pairs) != 0 {
		t.Fatal("pairs from empty input")
	}
	l.ForceRebuild([]vec.V{{X: 1}})
	if len(l.Pairs) != 0 {
		t.Fatal("pairs from single atom")
	}
}

func BenchmarkCellList1000(b *testing.B) {
	rng := xrand.New(8)
	pos := randomPositions(rng, 1000, 50)
	l := NewList(5, 1, vec.Zero)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ForceRebuild(pos)
	}
}

func BenchmarkBruteForce1000(b *testing.B) {
	rng := xrand.New(8)
	pos := randomPositions(rng, 1000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForcePairs(pos, 5, vec.Zero, nil)
	}
}
