package neighbor

import (
	"sort"
	"testing"

	"spice/internal/vec"
	"spice/internal/xrand"
)

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].I != ps[j].I {
			return ps[i].I < ps[j].I
		}
		return ps[i].J < ps[j].J
	})
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	sortPairs(a)
	sortPairs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomPositions(rng *xrand.Source, n int, span float64) []vec.V {
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.V{X: span * rng.Float64(), Y: span * rng.Float64(), Z: span * rng.Float64()}
	}
	return pos
}

func TestCellListMatchesBruteForceOpen(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{3, 30, 64, 65, 200, 500} {
		pos := randomPositions(rng, n, 40)
		l := NewList(5, 0, vec.Zero)
		l.ForceRebuild(pos)
		want := BruteForcePairs(pos, 5, vec.Zero, nil)
		got := append([]Pair(nil), l.Pairs...)
		if !pairsEqual(got, want) {
			t.Fatalf("n=%d: cell list %d pairs, brute force %d", n, len(got), len(want))
		}
	}
}

func TestCellListMatchesBruteForcePeriodic(t *testing.T) {
	rng := xrand.New(2)
	box := vec.V{X: 30, Y: 30, Z: 30}
	for _, n := range []int{10, 100, 400} {
		pos := randomPositions(rng, n, 30)
		l := NewList(4, 0, box)
		l.ForceRebuild(pos)
		want := BruteForcePairs(pos, 4, box, nil)
		got := append([]Pair(nil), l.Pairs...)
		if !pairsEqual(got, want) {
			t.Fatalf("n=%d periodic: cell list %d pairs, brute force %d", n, len(got), len(want))
		}
	}
}

func TestCellListPartialPeriodic(t *testing.T) {
	rng := xrand.New(3)
	box := vec.V{X: 25, Y: 25, Z: 0} // slab geometry: open in z
	pos := randomPositions(rng, 300, 25)
	for i := range pos {
		pos[i].Z = rng.NormFloat64() * 20
	}
	l := NewList(4, 0, box)
	l.ForceRebuild(pos)
	want := BruteForcePairs(pos, 4, box, nil)
	got := append([]Pair(nil), l.Pairs...)
	if !pairsEqual(got, want) {
		t.Fatalf("slab: cell list %d pairs, brute force %d", len(got), len(want))
	}
}

func TestSkinIncludesNearMisses(t *testing.T) {
	// With skin, pairs slightly beyond the cutoff must be listed.
	pos := []vec.V{{}, {X: 5.5}}
	l := NewList(5, 1, vec.Zero)
	l.ForceRebuild(pos)
	if len(l.Pairs) != 1 {
		t.Fatalf("skin miss: %d pairs", len(l.Pairs))
	}
	// Without skin it must not be.
	l2 := NewList(5, 0, vec.Zero)
	l2.ForceRebuild(pos)
	if len(l2.Pairs) != 0 {
		t.Fatalf("no-skin: %d pairs", len(l2.Pairs))
	}
}

func TestUpdateRebuildPolicy(t *testing.T) {
	rng := xrand.New(4)
	pos := randomPositions(rng, 100, 20)
	l := NewList(4, 2, vec.Zero)
	if !l.Update(pos) {
		t.Fatal("first Update must rebuild")
	}
	n := l.Rebuilds()
	// Tiny move: no rebuild.
	pos[0].X += 0.1
	if l.Update(pos) || l.Rebuilds() != n {
		t.Fatal("tiny move triggered rebuild")
	}
	// Move beyond skin/2: rebuild.
	pos[0].X += 2
	if !l.Update(pos) || l.Rebuilds() != n+1 {
		t.Fatal("large move did not trigger rebuild")
	}
}

func TestExclusions(t *testing.T) {
	pos := []vec.V{{}, {X: 1}, {X: 2}}
	l := NewList(5, 0, vec.Zero)
	l.SetExclusions([][]int32{{1}, {0}, nil})
	l.ForceRebuild(pos)
	for _, p := range l.Pairs {
		if p.I == 0 && p.J == 1 {
			t.Fatal("excluded pair listed")
		}
	}
	if len(l.Pairs) != 2 { // (0,2) and (1,2)
		t.Fatalf("pairs = %v", l.Pairs)
	}
}

func TestBakedExclusionsMatchClosureReference(t *testing.T) {
	// The baked sorted-list check must agree with the closure-driven
	// brute-force reference on a chain-like exclusion pattern, above and
	// below the grid threshold.
	rng := xrand.New(11)
	for _, n := range []int{40, 300} {
		pos := randomPositions(rng, n, 25)
		excl := make([][]int32, n)
		isExcl := func(i, j int) bool { d := i - j; return d == 1 || d == -1 || d == 2 || d == -2 }
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && isExcl(i, j) {
					excl[i] = append(excl[i], int32(j))
				}
			}
		}
		l := NewList(5, 0.5, vec.Zero)
		l.SetExclusions(excl)
		l.ForceRebuild(pos)
		want := BruteForcePairs(pos, 5.5, vec.Zero, isExcl)
		got := append([]Pair(nil), l.Pairs...)
		if !pairsEqual(got, want) {
			t.Fatalf("n=%d: baked %d pairs, closure reference %d", n, len(got), len(want))
		}
	}
}

func TestInactivePairsSkipped(t *testing.T) {
	pos := []vec.V{{}, {X: 1}, {X: 2}}
	l := NewList(5, 0, vec.Zero)
	l.SetInactive([]bool{true, true, false})
	l.ForceRebuild(pos)
	if len(l.Pairs) != 2 { // (0,1) dropped; (0,2), (1,2) kept
		t.Fatalf("pairs = %v", l.Pairs)
	}
	for _, p := range l.Pairs {
		if p.I == 0 && p.J == 1 {
			t.Fatal("inactive-inactive pair listed")
		}
	}
}

func TestPairsSortedByI(t *testing.T) {
	rng := xrand.New(12)
	for _, n := range []int{50, 400} {
		pos := randomPositions(rng, n, 30)
		l := NewList(5, 1, vec.Zero)
		l.ForceRebuild(pos)
		for k := 1; k < len(l.Pairs); k++ {
			if l.Pairs[k].I < l.Pairs[k-1].I {
				t.Fatalf("n=%d: pairs not sorted by I at %d: %v after %v", n, k, l.Pairs[k], l.Pairs[k-1])
			}
		}
	}
}

func TestParallelScanMatchesSerial(t *testing.T) {
	rng := xrand.New(13)
	box := vec.V{X: 40, Y: 40, Z: 40}
	pos := randomPositions(rng, 2000, 40) // above parallelScanMinAtoms
	serial := NewList(4, 0.5, box)
	serial.ForceRebuild(pos)
	for _, workers := range []int{2, 3, 8} {
		par := NewList(4, 0.5, box)
		par.Workers = workers
		par.ForceRebuild(pos)
		if len(par.Pairs) != len(serial.Pairs) {
			t.Fatalf("workers=%d: %d pairs vs serial %d", workers, len(par.Pairs), len(serial.Pairs))
		}
		for k := range par.Pairs {
			if par.Pairs[k] != serial.Pairs[k] {
				t.Fatalf("workers=%d: pair %d = %v, serial %v (order must be deterministic)",
					workers, k, par.Pairs[k], serial.Pairs[k])
			}
		}
	}
}

func TestRebuildAllocFreeInSteadyState(t *testing.T) {
	rng := xrand.New(14)
	box := vec.V{X: 35, Y: 35, Z: 35}
	pos := randomPositions(rng, 800, 35)
	l := NewList(4, 1, box)
	l.ForceRebuild(pos) // warm-up sizes every retained buffer
	l.ForceRebuild(pos)
	allocs := testing.AllocsPerRun(10, func() { l.ForceRebuild(pos) })
	if allocs > 0 {
		t.Fatalf("steady-state rebuild allocates %.1f times", allocs)
	}
}

func TestStatistics(t *testing.T) {
	rng := xrand.New(15)
	pos := randomPositions(rng, 100, 20)
	l := NewList(4, 2, vec.Zero)
	for i := 0; i < 5; i++ {
		l.Update(pos) // only the first call rebuilds
	}
	st := l.Statistics()
	if st.Rebuilds != 1 || st.Updates != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Pairs != len(l.Pairs) || st.AvgPairs != float64(len(l.Pairs)) {
		t.Fatalf("pair stats = %+v, list has %d", st, len(l.Pairs))
	}
	// Force a second rebuild: interval bookkeeping must cover both.
	pos[0].X += 3
	if !l.Update(pos) {
		t.Fatal("large move did not rebuild")
	}
	st = l.Statistics()
	if st.Rebuilds != 2 {
		t.Fatalf("stats after move = %+v", st)
	}
	if got := st.AvgInterval; got != 3 { // rebuilds at update 1 and 6 -> (1+5)/2
		t.Fatalf("avg interval = %v, want 3", got)
	}
}

func TestPairOrderingInvariant(t *testing.T) {
	rng := xrand.New(5)
	pos := randomPositions(rng, 300, 30)
	l := NewList(5, 1, vec.Zero)
	l.ForceRebuild(pos)
	for _, p := range l.Pairs {
		if p.I >= p.J {
			t.Fatalf("unordered pair %v", p)
		}
	}
}

func TestNoDuplicatePairs(t *testing.T) {
	rng := xrand.New(6)
	box := vec.V{X: 12, Y: 12, Z: 12} // small box stresses cell wrapping
	pos := randomPositions(rng, 200, 12)
	l := NewList(4, 0.5, box)
	l.ForceRebuild(pos)
	seen := make(map[Pair]bool)
	for _, p := range l.Pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestSmallBoxPeriodicCorrectness(t *testing.T) {
	// Box barely larger than cutoff: n=1..2 cells per axis, the wrap
	// suppression path.
	rng := xrand.New(7)
	box := vec.V{X: 9, Y: 9, Z: 9}
	pos := randomPositions(rng, 150, 9)
	l := NewList(4, 0, box)
	l.ForceRebuild(pos)
	want := BruteForcePairs(pos, 4, box, nil)
	got := append([]Pair(nil), l.Pairs...)
	if !pairsEqual(got, want) {
		t.Fatalf("small box: %d vs %d pairs", len(got), len(want))
	}
}

func TestEmptyAndSingle(t *testing.T) {
	l := NewList(5, 1, vec.Zero)
	l.ForceRebuild(nil)
	if len(l.Pairs) != 0 {
		t.Fatal("pairs from empty input")
	}
	l.ForceRebuild([]vec.V{{X: 1}})
	if len(l.Pairs) != 0 {
		t.Fatal("pairs from single atom")
	}
}

func BenchmarkCellList1000(b *testing.B) {
	rng := xrand.New(8)
	pos := randomPositions(rng, 1000, 50)
	l := NewList(5, 1, vec.Zero)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ForceRebuild(pos)
	}
}

func BenchmarkBruteForce1000(b *testing.B) {
	rng := xrand.New(8)
	pos := randomPositions(rng, 1000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForcePairs(pos, 5, vec.Zero, nil)
	}
}
