package neighbor

import (
	"sync"
	"testing"

	"spice/internal/vec"
	"spice/internal/xrand"
)

// staticSystem builds nm mobile atoms followed by ns static atoms inside
// a periodic box, with the flags an engine would set: every static atom
// inactive, bonded-style exclusions among the first mobiles.
func staticSystem(rng *xrand.Source, nm, ns int, box vec.V) (pos []vec.V, fixed []bool, excl [][]int32) {
	n := nm + ns
	pos = make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.V{X: box.X * rng.Float64(), Y: box.Y * rng.Float64(), Z: box.Z * rng.Float64()}
	}
	fixed = make([]bool, n)
	for i := nm; i < n; i++ {
		fixed[i] = true
	}
	excl = make([][]int32, n)
	for i := 0; i+1 < nm; i++ {
		excl[i] = append(excl[i], int32(i+1))
	}
	return pos, fixed, excl
}

func jitterMobiles(rng *xrand.Source, pos []vec.V, nm int, amp float64) {
	for i := 0; i < nm; i++ {
		pos[i].X += amp * (rng.Float64() - 0.5)
		pos[i].Y += amp * (rng.Float64() - 0.5)
		pos[i].Z += amp * (rng.Float64() - 0.5)
	}
}

// exactPairsEqual demands the same pairs in the same order — the
// bit-identity contract, stronger than the set equality other tests use.
func exactPairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStaticGridPairsBitIdentical drives a plain list and a static-grid
// list through the same mobile trajectory and requires byte-identical
// pair lists after every Update — in both the brute-force (n<=64) and
// grid (n>64) regimes, with exclusions and inactive flags in play.
func TestStaticGridPairsBitIdentical(t *testing.T) {
	box := vec.V{X: 60, Y: 60, Z: 45}
	for _, sizes := range []struct{ nm, ns int }{{10, 30}, {20, 400}, {64, 200}} {
		rng := xrand.New(99)
		pos, fixed, excl := staticSystem(rng, sizes.nm, sizes.ns, box)

		plain := NewList(10, 2, box)
		plain.SetExclusions(excl)
		plain.SetInactive(fixed)

		shared := NewList(10, 2, box)
		shared.SetExclusions(excl)
		shared.SetInactive(fixed)
		sg, err := NewStaticGrid(10, 2, box, pos, fixed)
		if err != nil {
			t.Fatal(err)
		}
		if err := shared.AttachStatic(sg); err != nil {
			t.Fatal(err)
		}
		if !sg.MatchesStatic(pos) {
			t.Fatal("grid does not match the positions it was built from")
		}

		posA := append([]vec.V(nil), pos...)
		posB := append([]vec.V(nil), pos...)
		rebuilds := 0
		for step := 0; step < 200; step++ {
			ra := plain.Update(posA)
			rb := shared.Update(posB)
			if ra != rb {
				t.Fatalf("nm=%d ns=%d step %d: rebuild schedule diverged (plain=%v shared=%v)",
					sizes.nm, sizes.ns, step, ra, rb)
			}
			if ra {
				rebuilds++
			}
			if !exactPairsEqual(plain.Pairs, shared.Pairs) {
				t.Fatalf("nm=%d ns=%d step %d: pair lists differ (%d vs %d pairs)",
					sizes.nm, sizes.ns, step, len(plain.Pairs), len(shared.Pairs))
			}
			jitterMobiles(rng, posA, sizes.nm, 0.6)
			copy(posB[:sizes.nm], posA[:sizes.nm])
		}
		if rebuilds < 3 {
			t.Fatalf("nm=%d ns=%d: only %d rebuilds exercised", sizes.nm, sizes.ns, rebuilds)
		}
		if shared.Pairs == nil || len(shared.Pairs) == 0 {
			t.Fatalf("nm=%d ns=%d: no pairs emitted", sizes.nm, sizes.ns)
		}
	}
}

// TestStaticGridParallelScanMatchesSerial pins the Workers>1 static scan
// to the serial static scan (and hence to the plain list).
func TestStaticGridParallelScanMatchesSerial(t *testing.T) {
	box := vec.V{X: 70, Y: 70, Z: 70}
	rng := xrand.New(7)
	pos, fixed, excl := staticSystem(rng, 300, 1200, box)

	serial := NewList(6, 1, box)
	serial.SetExclusions(excl)
	serial.SetInactive(fixed)
	sgA, err := NewStaticGrid(6, 1, box, pos, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.AttachStatic(sgA); err != nil {
		t.Fatal(err)
	}
	serial.ForceRebuild(pos)

	par := NewList(6, 1, box)
	par.Workers = 4
	par.SetExclusions(excl)
	par.SetInactive(fixed)
	if err := par.AttachStatic(sgA); err != nil {
		t.Fatal(err)
	}
	par.ForceRebuild(pos)

	if len(serial.Pairs) == 0 {
		t.Fatal("no pairs emitted")
	}
	got := append([]Pair(nil), par.Pairs...)
	want := append([]Pair(nil), serial.Pairs...)
	if !pairsEqual(got, want) {
		t.Fatalf("parallel static scan: %d pairs, serial %d", len(got), len(want))
	}
}

// TestStaticGridEligibility checks the fallback conditions: open boxes,
// systems without static atoms, and interleaved fixed atoms are rejected,
// as is attaching before the statics are marked inactive.
func TestStaticGridEligibility(t *testing.T) {
	box := vec.V{X: 30, Y: 30, Z: 30}
	rng := xrand.New(5)
	pos, fixed, _ := staticSystem(rng, 10, 20, box)

	if _, err := NewStaticGrid(5, 1, vec.V{X: 30, Y: 30}, pos, fixed); err == nil {
		t.Fatal("open box accepted")
	}
	if _, err := NewStaticGrid(5, 1, box, pos, make([]bool, len(pos))); err == nil {
		t.Fatal("system without static atoms accepted")
	}
	inter := append([]bool(nil), fixed...)
	inter[3] = true // fixed atom inside the mobile prefix
	if _, err := NewStaticGrid(5, 1, box, pos, inter); err == nil {
		t.Fatal("interleaved fixed atoms accepted")
	}

	sg, err := NewStaticGrid(5, 1, box, pos, fixed)
	if err != nil {
		t.Fatal(err)
	}
	l := NewList(5, 1, box)
	if err := l.AttachStatic(sg); err == nil {
		t.Fatal("attach without inactive flags accepted")
	}
	l.SetInactive(fixed)
	if err := l.AttachStatic(sg); err != nil {
		t.Fatal(err)
	}
	bad := NewList(4, 1, box)
	bad.SetInactive(fixed)
	if err := bad.AttachStatic(sg); err == nil {
		t.Fatal("cutoff mismatch accepted")
	}
}

// TestSharedGridConcurrentReplicas rebuilds many lists attached to one
// StaticGrid from concurrent goroutines (run under -race in CI): the grid
// must be safely shareable, and every replica must match its own plain
// reference list exactly.
func TestSharedGridConcurrentReplicas(t *testing.T) {
	box := vec.V{X: 50, Y: 50, Z: 50}
	rng := xrand.New(21)
	pos, fixed, excl := staticSystem(rng, 24, 300, box)
	sg, err := NewStaticGrid(8, 2, box, pos, fixed)
	if err != nil {
		t.Fatal(err)
	}

	const replicas = 8
	var wg sync.WaitGroup
	errs := make([]error, replicas)
	failed := make([]bool, replicas)
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := xrand.New(uint64(1000 + r))
			mine := append([]vec.V(nil), pos...)
			jitterMobiles(rrng, mine, 24, 2.0)

			shared := NewList(8, 2, box)
			shared.SetExclusions(excl)
			shared.SetInactive(fixed)
			if err := shared.AttachStatic(sg); err != nil {
				errs[r] = err
				return
			}
			plain := NewList(8, 2, box)
			plain.SetExclusions(excl)
			plain.SetInactive(fixed)

			for step := 0; step < 50; step++ {
				shared.Update(mine)
				plain.Update(mine)
				if !exactPairsEqual(shared.Pairs, plain.Pairs) {
					failed[r] = true
					return
				}
				jitterMobiles(rrng, mine, 24, 0.8)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < replicas; r++ {
		if errs[r] != nil {
			t.Fatalf("replica %d: %v", r, errs[r])
		}
		if failed[r] {
			t.Fatalf("replica %d: pair list diverged from plain reference", r)
		}
	}
}

// TestStaticGridRebuildAllocFree mirrors the plain list's steady-state
// allocation guarantee for the static path.
func TestStaticGridRebuildAllocFree(t *testing.T) {
	box := vec.V{X: 50, Y: 50, Z: 50}
	rng := xrand.New(31)
	pos, fixed, excl := staticSystem(rng, 30, 400, box)
	sg, err := NewStaticGrid(8, 2, box, pos, fixed)
	if err != nil {
		t.Fatal(err)
	}
	l := NewList(8, 2, box)
	l.SetExclusions(excl)
	l.SetInactive(fixed)
	if err := l.AttachStatic(sg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.ForceRebuild(pos)
	}
	allocs := testing.AllocsPerRun(20, func() {
		jitterMobiles(rng, pos, 30, 0.1)
		l.ForceRebuild(pos)
	})
	if allocs != 0 {
		t.Fatalf("steady-state static rebuild allocates %.1f/op", allocs)
	}
}
