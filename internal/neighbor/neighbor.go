// Package neighbor builds the pair lists that make nonbonded force
// evaluation O(N) instead of O(N²): a uniform cell (linked-cell) grid over
// the bounding box, from which a Verlet list with a skin margin is drawn.
// The list is reused across steps until any particle has moved more than
// half the skin since the last rebuild.
//
// The box may be non-periodic (zero box vector components); the grid then
// adapts to the instantaneous bounding box of the particles.
package neighbor

import (
	"math"

	"spice/internal/vec"
)

// Pair is an unordered particle pair (I < J).
type Pair struct{ I, J int32 }

// List is a reusable Verlet neighbor list.
type List struct {
	Cutoff float64 // interaction cutoff, Å
	Skin   float64 // extra margin, Å
	Box    vec.V   // periodic box (zero components = open)

	// Exclude reports pairs to omit (bonded exclusions); may be nil.
	Exclude func(i, j int) bool

	Pairs []Pair

	ref       []vec.V // positions at last rebuild
	nRebuilds int
}

// NewList returns a list with the given cutoff and skin.
func NewList(cutoff, skin float64, box vec.V) *List {
	return &List{Cutoff: cutoff, Skin: skin, Box: box}
}

// Rebuilds returns how many times the list has been rebuilt (diagnostics).
func (l *List) Rebuilds() int { return l.nRebuilds }

// Update rebuilds the pair list if any particle moved more than skin/2
// since the last rebuild (or if the list has never been built). It returns
// true when a rebuild happened.
func (l *List) Update(pos []vec.V) bool {
	if l.ref != nil && len(l.ref) == len(pos) {
		lim2 := (l.Skin / 2) * (l.Skin / 2)
		moved := false
		for i := range pos {
			d := vec.MinImage(pos[i].Sub(l.ref[i]), l.Box)
			if d.Norm2() > lim2 {
				moved = true
				break
			}
		}
		if !moved {
			return false
		}
	}
	l.build(pos)
	return true
}

// ForceRebuild unconditionally rebuilds the list.
func (l *List) ForceRebuild(pos []vec.V) { l.build(pos) }

func (l *List) build(pos []vec.V) {
	l.nRebuilds++
	if l.ref == nil || len(l.ref) != len(pos) {
		l.ref = make([]vec.V, len(pos))
	}
	copy(l.ref, pos)
	l.Pairs = l.Pairs[:0]

	n := len(pos)
	if n < 2 {
		return
	}
	r := l.Cutoff + l.Skin
	r2 := r * r

	// For small systems brute force beats grid overhead.
	if n <= 64 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.Exclude != nil && l.Exclude(i, j) {
					continue
				}
				d := vec.MinImage(pos[i].Sub(pos[j]), l.Box)
				if d.Norm2() <= r2 {
					l.Pairs = append(l.Pairs, Pair{int32(i), int32(j)})
				}
			}
		}
		return
	}

	// Grid bounds: the periodic box where defined, else the bounding box.
	lo, hi := bounds(pos, l.Box)
	ext := hi.Sub(lo)
	nx := gridDim(ext.X, r)
	ny := gridDim(ext.Y, r)
	nz := gridDim(ext.Z, r)
	ncell := nx * ny * nz

	cellOf := func(p vec.V) int {
		p = vec.Wrap(p, l.Box)
		cx := clampCell(int(math.Floor((p.X-lo.X)/ext.X*float64(nx))), nx)
		cy := clampCell(int(math.Floor((p.Y-lo.Y)/ext.Y*float64(ny))), ny)
		cz := clampCell(int(math.Floor((p.Z-lo.Z)/ext.Z*float64(nz))), nz)
		return (cz*ny+cy)*nx + cx
	}

	// Linked-cell: head/next arrays.
	head := make([]int32, ncell)
	for i := range head {
		head[i] = -1
	}
	next := make([]int32, n)
	cell := make([]int32, n)
	for i := 0; i < n; i++ {
		c := cellOf(pos[i])
		cell[i] = int32(c)
		next[i] = head[c]
		head[c] = int32(i)
	}

	periodicX := l.Box.X > 0
	periodicY := l.Box.Y > 0
	periodicZ := l.Box.Z > 0

	for cz := 0; cz < nz; cz++ {
		for cy := 0; cy < ny; cy++ {
			for cx := 0; cx < nx; cx++ {
				c := (cz*ny+cy)*nx + cx
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							ncx, okx := wrapCell(cx+dx, nx, periodicX)
							ncy, oky := wrapCell(cy+dy, ny, periodicY)
							ncz, okz := wrapCell(cz+dz, nz, periodicZ)
							if !okx || !oky || !okz {
								continue
							}
							nc := (ncz*ny+ncy)*nx + ncx
							if nc < c {
								continue // visit each cell pair once
							}
							l.scanCells(pos, head, next, c, nc, r2)
						}
					}
				}
			}
		}
	}
}

// scanCells appends in-range pairs between cells a and b (a == b allowed).
func (l *List) scanCells(pos []vec.V, head, next []int32, a, b int, r2 float64) {
	for i := head[a]; i >= 0; i = next[i] {
		var jStart int32
		if a == b {
			jStart = next[i]
		} else {
			jStart = head[b]
		}
		for j := jStart; j >= 0; j = next[j] {
			ii, jj := int(i), int(j)
			if l.Exclude != nil && l.Exclude(ii, jj) {
				continue
			}
			d := vec.MinImage(pos[ii].Sub(pos[jj]), l.Box)
			if d.Norm2() <= r2 {
				p := Pair{int32(ii), int32(jj)}
				if p.I > p.J {
					p.I, p.J = p.J, p.I
				}
				l.Pairs = append(l.Pairs, p)
			}
		}
	}
}

// bounds returns the grid origin and far corner.
func bounds(pos []vec.V, box vec.V) (lo, hi vec.V) {
	lo = vec.V{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi = lo.Neg()
	for _, p := range pos {
		p = vec.Wrap(p, box)
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	if box.X > 0 {
		lo.X, hi.X = 0, box.X
	}
	if box.Y > 0 {
		lo.Y, hi.Y = 0, box.Y
	}
	if box.Z > 0 {
		lo.Z, hi.Z = 0, box.Z
	}
	// Avoid zero-extent axes.
	const eps = 1e-9
	if hi.X-lo.X < eps {
		hi.X = lo.X + 1
	}
	if hi.Y-lo.Y < eps {
		hi.Y = lo.Y + 1
	}
	if hi.Z-lo.Z < eps {
		hi.Z = lo.Z + 1
	}
	return lo, hi
}

func gridDim(extent, r float64) int {
	n := int(extent / r)
	if n < 1 {
		n = 1
	}
	if n > 1024 {
		n = 1024
	}
	return n
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// wrapCell maps a possibly out-of-range cell index into the grid; for
// non-periodic axes out-of-range neighbours are skipped. With fewer than
// three cells along a periodic axis, wrapping would visit the same cell
// twice, so wrapping is suppressed (the cell still spans the cutoff).
func wrapCell(c, n int, periodic bool) (int, bool) {
	if c >= 0 && c < n {
		return c, true
	}
	if !periodic || n < 3 {
		if n == 1 {
			return 0, c == 0 // degenerate single cell: neighbours collapse
		}
		return 0, false
	}
	return (c + n) % n, true
}

// BruteForcePairs returns all in-range non-excluded pairs by O(N²) scan.
// It is the reference implementation used by tests and the ablation bench.
func BruteForcePairs(pos []vec.V, cutoff float64, box vec.V, exclude func(i, j int) bool) []Pair {
	var out []Pair
	c2 := cutoff * cutoff
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if exclude != nil && exclude(i, j) {
				continue
			}
			d := vec.MinImage(pos[i].Sub(pos[j]), box)
			if d.Norm2() <= c2 {
				out = append(out, Pair{int32(i), int32(j)})
			}
		}
	}
	return out
}
