// Package neighbor builds the pair lists that make nonbonded force
// evaluation O(N) instead of O(N²): a uniform cell (linked-cell) grid over
// the bounding box, from which a Verlet list with a skin margin is drawn.
// The list is reused across steps until any particle has moved more than
// half the skin since the last rebuild.
//
// The list is built for steady-state reuse: the linked-cell arrays, the
// wrapped-position scratch and the pair buffers are all retained across
// rebuilds, so after warm-up a rebuild allocates nothing. Exclusions are
// baked in at construction as per-atom sorted index lists (no closure, no
// map lookup on the candidate-pair path), and the emitted pairs are
// counting-sorted by their lower index so the force loop walks positions
// in cache order.
//
// The box may be non-periodic (zero box vector components); the grid then
// adapts to the instantaneous bounding box of the particles.
package neighbor

import (
	"math"
	"sync"

	"spice/internal/vec"
)

// Pair is an unordered particle pair (I < J).
type Pair struct{ I, J int32 }

// Stats summarizes rebuild behaviour for skin tuning and regression
// tracking: how often the list rebuilds and how many pairs each rebuild
// emits.
type Stats struct {
	Rebuilds    int     // total rebuilds since creation
	Updates     int     // Update() calls since creation
	Pairs       int     // pairs in the current list
	AvgPairs    float64 // mean pairs per rebuild
	AvgInterval float64 // mean Update() calls between rebuilds
}

// List is a reusable Verlet neighbor list.
type List struct {
	Cutoff float64 // interaction cutoff, Å
	Skin   float64 // extra margin, Å
	Box    vec.V   // periodic box (zero components = open)

	// Workers bounds the parallelism of the cell-pair scan; 0 or 1
	// keeps the scan serial. Parallelism only engages above
	// parallelScanMinAtoms atoms (per-worker buffers are merged in
	// worker order, so the result is deterministic either way).
	Workers int

	// OnRebuild, when set, is invoked with the new pair count after
	// every rebuild, on the goroutine driving Update/ForceRebuild. The
	// call itself allocates nothing, so observers that only touch atomic
	// instruments keep the force loop allocation-free.
	OnRebuild func(pairs int)

	Pairs []Pair

	excl     [][]int32 // per-atom sorted exclusion lists; nil = none
	inactive []bool    // pairs with both atoms inactive are skipped

	ref     []vec.V // positions at last rebuild
	wrapped []vec.V // positions wrapped into the primary cell (scratch)
	head    []int32 // linked-cell heads, one per cell
	next    []int32 // linked-cell chains, one per atom
	offs    []int32 // counting-sort offsets, one per atom
	sorted  []Pair  // counting-sort double buffer
	bufs    [][]Pair

	// static, when attached, carries the shared pre-binned grid of fixed
	// atoms; rebuilds then touch only the mobile prefix (see shared.go).
	static       *StaticGrid
	mobileHead   []int32 // linked-cell heads for the mobile prefix
	staticFilled bool    // ref/wrapped static suffix already populated

	nRebuilds   int
	updates     int
	lastRebuild int // updates count when the list was last rebuilt
	intervalSum int
	pairsSum    int64
}

// NewList returns a list with the given cutoff and skin.
func NewList(cutoff, skin float64, box vec.V) *List {
	return &List{Cutoff: cutoff, Skin: skin, Box: box}
}

// SetExclusions bakes per-atom sorted exclusion lists (as produced by
// topology.ExclusionLists) into the list. The slice is retained, not
// copied; it must stay valid and sorted for the lifetime of the list.
func (l *List) SetExclusions(lists [][]int32) { l.excl = lists }

// SetInactive marks atoms whose mutual pairs never matter (e.g. fixed
// wall beads): a candidate pair is skipped when both atoms are inactive.
// The slice is retained, not copied.
func (l *List) SetInactive(inactive []bool) { l.inactive = inactive }

// Rebuilds returns how many times the list has been rebuilt (diagnostics).
func (l *List) Rebuilds() int { return l.nRebuilds }

// Statistics returns rebuild-cadence and pair-count metrics.
func (l *List) Statistics() Stats {
	s := Stats{
		Rebuilds: l.nRebuilds,
		Updates:  l.updates,
		Pairs:    len(l.Pairs),
	}
	if l.nRebuilds > 0 {
		s.AvgPairs = float64(l.pairsSum) / float64(l.nRebuilds)
		s.AvgInterval = float64(l.intervalSum) / float64(l.nRebuilds)
	}
	return s
}

// excluded reports whether pair (i, j) is baked out of the list. The
// per-atom lists are short (bonded 1-2/1-3 partners), so a bounded linear
// scan over the sorted list beats binary search and never allocates.
func (l *List) excluded(i, j int32) bool {
	if l.inactive != nil && l.inactive[i] && l.inactive[j] {
		return true
	}
	if l.excl == nil {
		return false
	}
	for _, k := range l.excl[i] {
		if k >= j {
			return k == j
		}
	}
	return false
}

// Update rebuilds the pair list if any particle moved more than skin/2
// since the last rebuild (or if the list has never been built). It returns
// true when a rebuild happened.
func (l *List) Update(pos []vec.V) bool {
	l.updates++
	if l.ref != nil && len(l.ref) == len(pos) {
		lim2 := (l.Skin / 2) * (l.Skin / 2)
		moved := false
		// Static atoms are bit-identical to their rebuild reference
		// (they never move), so with a shared grid attached the check
		// covers only the mobile prefix — same rebuild schedule, less
		// work per step.
		end := len(pos)
		if l.static != nil {
			end = l.static.nMobile
		}
		for i := 0; i < end; i++ {
			d := vec.MinImage(pos[i].Sub(l.ref[i]), l.Box)
			if d.Norm2() > lim2 {
				moved = true
				break
			}
		}
		if !moved {
			return false
		}
	}
	l.build(pos)
	return true
}

// ForceRebuild unconditionally rebuilds the list.
func (l *List) ForceRebuild(pos []vec.V) { l.build(pos) }

// Ref returns a copy of the positions the current pair list was built from
// (nil before the first build). Checkpoints carry these so a restored
// simulation rebuilds the exact pair list — same set, same order — that the
// uninterrupted run was using, keeping resumed trajectories bit-identical
// despite the order-sensitivity of floating-point force accumulation.
func (l *List) Ref() []vec.V {
	if l.ref == nil {
		return nil
	}
	return append([]vec.V(nil), l.ref...)
}

// parallelScanMinAtoms gates the parallel cell scan: below this the
// fan-out overhead exceeds the scan itself.
const parallelScanMinAtoms = 1024

func (l *List) build(pos []vec.V) {
	if l.static != nil {
		l.buildStatic(pos)
		return
	}
	l.nRebuilds++
	l.intervalSum += l.updates - l.lastRebuild
	l.lastRebuild = l.updates

	n := len(pos)
	if cap(l.ref) < n {
		l.ref = make([]vec.V, n)
		l.wrapped = make([]vec.V, n)
	}
	l.ref = l.ref[:n]
	l.wrapped = l.wrapped[:n]
	copy(l.ref, pos)
	// Wrap once into the scratch slice; every later distance and cell
	// computation works on wrapped coordinates (minimum-image distances
	// are invariant under wrapping).
	for i, p := range pos {
		l.wrapped[i] = vec.Wrap(p, l.Box)
	}
	l.Pairs = l.Pairs[:0]
	defer func() {
		l.pairsSum += int64(len(l.Pairs))
		if l.OnRebuild != nil {
			l.OnRebuild(len(l.Pairs))
		}
	}()

	if n < 2 {
		return
	}
	r := l.Cutoff + l.Skin
	r2 := r * r

	// For small systems brute force beats grid overhead; the i-major
	// double loop already emits pairs sorted by I.
	if n <= 64 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.excluded(int32(i), int32(j)) {
					continue
				}
				d := vec.MinImageWrapped(l.wrapped[i].Sub(l.wrapped[j]), l.Box)
				if d.Norm2() <= r2 {
					l.Pairs = append(l.Pairs, Pair{int32(i), int32(j)})
				}
			}
		}
		return
	}

	// Grid bounds: the periodic box where defined, else the bounding box.
	lo, hi := bounds(l.wrapped, l.Box)
	ext := hi.Sub(lo)
	nx := gridDim(ext.X, r)
	ny := gridDim(ext.Y, r)
	nz := gridDim(ext.Z, r)
	ncell := nx * ny * nz
	g := gridDesc{lo: lo, ext: ext, nx: nx, ny: ny, nz: nz,
		periodicX: l.Box.X > 0, periodicY: l.Box.Y > 0, periodicZ: l.Box.Z > 0}

	// Linked-cell head/next arrays, retained across rebuilds.
	if cap(l.head) < ncell {
		l.head = make([]int32, ncell)
	}
	l.head = l.head[:ncell]
	for i := range l.head {
		l.head[i] = -1
	}
	if cap(l.next) < n {
		l.next = make([]int32, n)
	}
	l.next = l.next[:n]
	for i := 0; i < n; i++ {
		c := g.cellOf(l.wrapped[i])
		l.next[i] = l.head[c]
		l.head[c] = int32(i)
	}

	if l.Workers > 1 && n >= parallelScanMinAtoms {
		l.scanParallel(g, ncell, r2)
	} else {
		l.Pairs = l.scanCellRange(g, 0, ncell, r2, l.Pairs)
	}
	l.sortByI(n)
}

// gridDesc carries the cell-grid geometry through the scan.
type gridDesc struct {
	lo, ext                         vec.V
	nx, ny, nz                      int
	periodicX, periodicY, periodicZ bool
}

func (g *gridDesc) cellOf(p vec.V) int {
	cx := clampCell(int(math.Floor((p.X-g.lo.X)/g.ext.X*float64(g.nx))), g.nx)
	cy := clampCell(int(math.Floor((p.Y-g.lo.Y)/g.ext.Y*float64(g.ny))), g.ny)
	cz := clampCell(int(math.Floor((p.Z-g.lo.Z)/g.ext.Z*float64(g.nz))), g.nz)
	return (cz*g.ny+cy)*g.nx + cx
}

// scanCellRange scans cells [c0, c1) against their half-neighborhoods,
// appending in-range pairs to out. Each cell pair is visited exactly once
// because a cell only scans neighbours nc >= c.
func (l *List) scanCellRange(g gridDesc, c0, c1 int, r2 float64, out []Pair) []Pair {
	nxy := g.nx * g.ny
	for c := c0; c < c1; c++ {
		if l.head[c] < 0 {
			continue
		}
		cz := c / nxy
		cy := (c - cz*nxy) / g.nx
		cx := c - cz*nxy - cy*g.nx
		for dz := -1; dz <= 1; dz++ {
			ncz, okz := wrapCell(cz+dz, g.nz, g.periodicZ)
			if !okz {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				ncy, oky := wrapCell(cy+dy, g.ny, g.periodicY)
				if !oky {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					ncx, okx := wrapCell(cx+dx, g.nx, g.periodicX)
					if !okx {
						continue
					}
					nc := (ncz*g.ny+ncy)*g.nx + ncx
					if nc < c {
						continue // visit each cell pair once
					}
					out = l.scanCells(c, nc, r2, out)
				}
			}
		}
	}
	return out
}

// scanParallel partitions the cell range across workers, each appending
// into its own retained buffer, then concatenates the buffers in worker
// order — deterministic regardless of scheduling.
func (l *List) scanParallel(g gridDesc, ncell int, r2 float64) {
	nw := l.Workers
	if nw > ncell {
		nw = ncell
	}
	if len(l.bufs) < nw {
		l.bufs = append(l.bufs, make([][]Pair, nw-len(l.bufs))...)
	}
	var wg sync.WaitGroup
	chunk := (ncell + nw - 1) / nw
	for w := 0; w < nw; w++ {
		c0 := w * chunk
		c1 := c0 + chunk
		if c1 > ncell {
			c1 = ncell
		}
		wg.Add(1)
		go func(w, c0, c1 int) {
			defer wg.Done()
			l.bufs[w] = l.scanCellRange(g, c0, c1, r2, l.bufs[w][:0])
		}(w, c0, c1)
	}
	wg.Wait()
	for _, b := range l.bufs[:nw] {
		l.Pairs = append(l.Pairs, b...)
	}
}

// scanCells appends in-range pairs between cells a and b (a == b allowed).
func (l *List) scanCells(a, b int, r2 float64, out []Pair) []Pair {
	head, next := l.head, l.next
	pos := l.wrapped
	for i := head[a]; i >= 0; i = next[i] {
		var jStart int32
		if a == b {
			jStart = next[i]
		} else {
			jStart = head[b]
		}
		pi := pos[i]
		for j := jStart; j >= 0; j = next[j] {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			if l.excluded(lo, hi) {
				continue
			}
			d := vec.MinImageWrapped(pi.Sub(pos[j]), l.Box)
			if d.Norm2() <= r2 {
				out = append(out, Pair{lo, hi})
			}
		}
	}
	return out
}

// sortByI counting-sorts Pairs by their lower index (stable), so the
// force loop's accesses to pos[I]/f[I] are sequential. O(P + N), no
// allocation in steady state.
func (l *List) sortByI(n int) {
	if cap(l.offs) < n+1 {
		l.offs = make([]int32, n+1)
	}
	offs := l.offs[:n+1]
	for i := range offs {
		offs[i] = 0
	}
	for _, p := range l.Pairs {
		offs[p.I+1]++
	}
	for i := 1; i <= n; i++ {
		offs[i] += offs[i-1]
	}
	if cap(l.sorted) < len(l.Pairs) {
		l.sorted = make([]Pair, len(l.Pairs))
	}
	l.sorted = l.sorted[:len(l.Pairs)]
	for _, p := range l.Pairs {
		l.sorted[offs[p.I]] = p
		offs[p.I]++
	}
	l.Pairs, l.sorted = l.sorted, l.Pairs
}

// bounds returns the grid origin and far corner for already-wrapped
// positions.
func bounds(pos []vec.V, box vec.V) (lo, hi vec.V) {
	lo = vec.V{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi = lo.Neg()
	for _, p := range pos {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	if box.X > 0 {
		lo.X, hi.X = 0, box.X
	}
	if box.Y > 0 {
		lo.Y, hi.Y = 0, box.Y
	}
	if box.Z > 0 {
		lo.Z, hi.Z = 0, box.Z
	}
	// Avoid zero-extent axes.
	const eps = 1e-9
	if hi.X-lo.X < eps {
		hi.X = lo.X + 1
	}
	if hi.Y-lo.Y < eps {
		hi.Y = lo.Y + 1
	}
	if hi.Z-lo.Z < eps {
		hi.Z = lo.Z + 1
	}
	return lo, hi
}

func gridDim(extent, r float64) int {
	n := int(extent / r)
	if n < 1 {
		n = 1
	}
	if n > 1024 {
		n = 1024
	}
	return n
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// wrapCell maps a possibly out-of-range cell index into the grid; for
// non-periodic axes out-of-range neighbours are skipped. With fewer than
// three cells along a periodic axis, wrapping would visit the same cell
// twice, so wrapping is suppressed (the cell still spans the cutoff).
func wrapCell(c, n int, periodic bool) (int, bool) {
	if c >= 0 && c < n {
		return c, true
	}
	if !periodic || n < 3 {
		if n == 1 {
			return 0, c == 0 // degenerate single cell: neighbours collapse
		}
		return 0, false
	}
	return (c + n) % n, true
}

// BruteForcePairs returns all in-range non-excluded pairs by O(N²) scan.
// It is the reference implementation used by tests and the ablation bench.
func BruteForcePairs(pos []vec.V, cutoff float64, box vec.V, exclude func(i, j int) bool) []Pair {
	var out []Pair
	c2 := cutoff * cutoff
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if exclude != nil && exclude(i, j) {
				continue
			}
			d := vec.MinImage(pos[i].Sub(pos[j]), box)
			if d.Norm2() <= c2 {
				out = append(out, Pair{int32(i), int32(j)})
			}
		}
	}
	return out
}
