// Shared static grids: ensemble replicas of the same pore system differ
// only in their mobile atoms — the wall and membrane beads are fixed,
// identical across replicas, and never move. A StaticGrid bins those
// static atoms into the cell grid once; every attached List then rebuilds
// only its mobile side (mobile displacement checks, mobile wrapping,
// mobile binning, and a scan that never iterates static–static cell
// pairs), amortizing the dominant per-replica rebuild cost across the
// whole batch.
//
// The optimization is exact, not approximate: an attached list emits the
// byte-identical Pairs slice, in the same order, as an unattached one.
// That holds because (a) the grid geometry is pinned by the fully
// periodic box, so it never depends on instantaneous positions, (b) the
// linked-cell chains are built by prepending atoms 0..n-1, so every
// per-cell chain runs in descending index order — and with static atoms
// required to be a contiguous high-index suffix, each chain is exactly
// "statics descending, then mobiles descending", which the static-aware
// scan walks in the same order while skipping the static–static inner
// iterations (those pairs are structurally excluded anyway: both atoms
// inactive), and (c) wrapped static coordinates are computed once with
// the same vec.Wrap the plain build uses, so every distance sees
// bit-identical operands.
package neighbor

import (
	"fmt"
	"sync"

	"spice/internal/vec"
)

// StaticGrid holds the immutable, shareable half of a neighbor search:
// cell-grid geometry pinned to a fully periodic box plus the pre-binned
// chains and pre-wrapped coordinates of the static (fixed) atom suffix.
// It is read-only after construction and safe to share across lists and
// goroutines.
type StaticGrid struct {
	cutoff, skin float64
	box          vec.V
	n, nMobile   int

	g     gridDesc
	ncell int

	head    []int32 // per-cell static chain heads, descending index order
	next    []int32 // static chain links; entries below nMobile are unused
	refPos  []vec.V // original static positions (suffix of length n-nMobile)
	wrapped []vec.V // wrapped static positions (suffix of length n-nMobile)
}

// NewStaticGrid builds a shared grid for a system of n atoms whose fixed
// atoms form a contiguous index suffix, inside a fully periodic box. pos
// and fixed describe the full system; only the static suffix is retained.
// It returns an error when the system is ineligible (open box, no static
// atoms, or fixed atoms interleaved with mobile ones) — callers fall back
// to plain per-list builds.
func NewStaticGrid(cutoff, skin float64, box vec.V, pos []vec.V, fixed []bool) (*StaticGrid, error) {
	n := len(pos)
	if len(fixed) != n {
		return nil, fmt.Errorf("neighbor: fixed flags (%d) do not match positions (%d)", len(fixed), n)
	}
	if box.X <= 0 || box.Y <= 0 || box.Z <= 0 {
		return nil, fmt.Errorf("neighbor: static grid needs a fully periodic box, got %v", box)
	}
	nMobile := n
	for i, f := range fixed {
		if f {
			nMobile = i
			break
		}
	}
	if nMobile == n {
		return nil, fmt.Errorf("neighbor: no static atoms")
	}
	for i := nMobile; i < n; i++ {
		if !fixed[i] {
			return nil, fmt.Errorf("neighbor: fixed atoms are not a contiguous suffix (atom %d mobile after %d fixed)", i, nMobile)
		}
	}

	sg := &StaticGrid{
		cutoff:  cutoff,
		skin:    skin,
		box:     box,
		n:       n,
		nMobile: nMobile,
		refPos:  make([]vec.V, n-nMobile),
		wrapped: make([]vec.V, n-nMobile),
	}
	copy(sg.refPos, pos[nMobile:])
	for i, p := range sg.refPos {
		sg.wrapped[i] = vec.Wrap(p, box)
	}

	// The geometry the plain build would derive: with every axis periodic,
	// bounds() pins lo=0, hi=box regardless of positions, so the grid is
	// constant across rebuilds — the property that makes pre-binning sound.
	r := cutoff + skin
	nx := gridDim(box.X, r)
	ny := gridDim(box.Y, r)
	nz := gridDim(box.Z, r)
	sg.ncell = nx * ny * nz
	sg.g = gridDesc{lo: vec.V{}, ext: box, nx: nx, ny: ny, nz: nz,
		periodicX: true, periodicY: true, periodicZ: true}

	sg.head = make([]int32, sg.ncell)
	for i := range sg.head {
		sg.head[i] = -1
	}
	sg.next = make([]int32, n)
	// Prepend ascending, exactly as the plain build bins: chains come out
	// in descending index order, matching the unattached scan.
	for i := nMobile; i < n; i++ {
		c := sg.g.cellOf(sg.wrapped[i-nMobile])
		sg.next[i] = sg.head[c]
		sg.head[c] = int32(i)
	}
	return sg, nil
}

// N returns the total atom count the grid was built for.
func (sg *StaticGrid) N() int { return sg.n }

// NMobile returns the count of mobile atoms (indices [0, NMobile)).
func (sg *StaticGrid) NMobile() int { return sg.nMobile }

// MatchesStatic reports whether the static suffix of pos is bit-identical
// to the positions the grid was built from. Batch adoption uses it to
// verify that replicas really share the substrate before sharing the grid.
func (sg *StaticGrid) MatchesStatic(pos []vec.V) bool {
	if len(pos) != sg.n {
		return false
	}
	for i, p := range sg.refPos {
		if p != pos[sg.nMobile+i] {
			return false
		}
	}
	return true
}

// AttachStatic binds the list to a shared static grid. Subsequent rebuilds
// bin and scan only the mobile prefix; the emitted pair list is
// bit-identical (same pairs, same order) to an unattached rebuild. The
// list's cutoff, skin and box must match the grid's, and every static atom
// must already be marked inactive (SetInactive), since the static-aware
// scan never visits static–static candidates.
func (l *List) AttachStatic(sg *StaticGrid) error {
	if l.Cutoff != sg.cutoff || l.Skin != sg.skin {
		return fmt.Errorf("neighbor: static grid cutoff/skin (%g/%g) do not match list (%g/%g)",
			sg.cutoff, sg.skin, l.Cutoff, l.Skin)
	}
	if l.Box != sg.box {
		return fmt.Errorf("neighbor: static grid box %v does not match list box %v", sg.box, l.Box)
	}
	if l.inactive == nil {
		return fmt.Errorf("neighbor: static atoms must be marked inactive before AttachStatic")
	}
	if len(l.inactive) != sg.n {
		return fmt.Errorf("neighbor: inactive flags (%d) do not match grid atoms (%d)", len(l.inactive), sg.n)
	}
	for i := sg.nMobile; i < sg.n; i++ {
		if !l.inactive[i] {
			return fmt.Errorf("neighbor: static atom %d not marked inactive", i)
		}
	}
	l.static = sg
	// If the list was already built, its ref/wrapped arrays hold the static
	// suffix from the last plain rebuild — identical values to the grid's —
	// so they need no refill.
	l.staticFilled = l.ref != nil && len(l.ref) == sg.n
	return nil
}

// Static returns the attached shared grid, or nil.
func (l *List) Static() *StaticGrid { return l.static }

// buildStatic is the static-grid counterpart of build: it refreshes only
// the mobile prefix (copy, wrap, bin) and scans with the static chains
// taken from the shared grid. See the package comment in this file for
// why the output is bit-identical to build's.
func (l *List) buildStatic(pos []vec.V) {
	sg := l.static
	n := len(pos)
	if n != sg.n {
		panic(fmt.Sprintf("neighbor: list with static grid for %d atoms rebuilt with %d positions", sg.n, n))
	}
	nm := sg.nMobile

	l.nRebuilds++
	l.intervalSum += l.updates - l.lastRebuild
	l.lastRebuild = l.updates

	if cap(l.ref) < n {
		l.ref = make([]vec.V, n)
		l.wrapped = make([]vec.V, n)
		l.staticFilled = false
	}
	l.ref = l.ref[:n]
	l.wrapped = l.wrapped[:n]
	if !l.staticFilled {
		copy(l.ref[nm:], sg.refPos)
		copy(l.wrapped[nm:], sg.wrapped)
		l.staticFilled = true
	}
	copy(l.ref[:nm], pos[:nm])
	for i := 0; i < nm; i++ {
		l.wrapped[i] = vec.Wrap(pos[i], l.Box)
	}

	l.Pairs = l.Pairs[:0]
	defer func() {
		l.pairsSum += int64(len(l.Pairs))
		if l.OnRebuild != nil {
			l.OnRebuild(len(l.Pairs))
		}
	}()

	if n < 2 {
		return
	}
	r := l.Cutoff + l.Skin
	r2 := r * r

	// Brute-force regime: the plain build's i-major double loop never
	// emits for a static outer atom (all j > i are static too), so the
	// outer loop legitimately stops at the mobile prefix.
	if n <= 64 {
		for i := 0; i < nm; i++ {
			for j := i + 1; j < n; j++ {
				if l.excluded(int32(i), int32(j)) {
					continue
				}
				d := vec.MinImageWrapped(l.wrapped[i].Sub(l.wrapped[j]), l.Box)
				if d.Norm2() <= r2 {
					l.Pairs = append(l.Pairs, Pair{int32(i), int32(j)})
				}
			}
		}
		return
	}

	ncell := sg.ncell
	if cap(l.mobileHead) < ncell {
		l.mobileHead = make([]int32, ncell)
	}
	l.mobileHead = l.mobileHead[:ncell]
	for i := range l.mobileHead {
		l.mobileHead[i] = -1
	}
	if cap(l.next) < n {
		l.next = make([]int32, n)
	}
	l.next = l.next[:n]
	for i := 0; i < nm; i++ {
		c := sg.g.cellOf(l.wrapped[i])
		l.next[i] = l.mobileHead[c]
		l.mobileHead[c] = int32(i)
	}

	if l.Workers > 1 && n >= parallelScanMinAtoms {
		l.scanParallelStatic(r2)
	} else {
		l.Pairs = l.scanCellRangeStatic(0, ncell, r2, l.Pairs)
	}
	l.sortByI(n)
}

// scanCellRangeStatic mirrors scanCellRange over the shared grid's
// geometry, treating a cell as occupied when either its static or its
// mobile chain is non-empty.
func (l *List) scanCellRangeStatic(c0, c1 int, r2 float64, out []Pair) []Pair {
	sg := l.static
	g := sg.g
	nxy := g.nx * g.ny
	for c := c0; c < c1; c++ {
		if sg.head[c] < 0 && l.mobileHead[c] < 0 {
			continue
		}
		cz := c / nxy
		cy := (c - cz*nxy) / g.nx
		cx := c - cz*nxy - cy*g.nx
		for dz := -1; dz <= 1; dz++ {
			ncz, okz := wrapCell(cz+dz, g.nz, g.periodicZ)
			if !okz {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				ncy, oky := wrapCell(cy+dy, g.ny, g.periodicY)
				if !oky {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					ncx, okx := wrapCell(cx+dx, g.nx, g.periodicX)
					if !okx {
						continue
					}
					nc := (ncz*g.ny+ncy)*g.nx + ncx
					if nc < c {
						continue // visit each cell pair once
					}
					out = l.scanCellsStatic(c, nc, r2, out)
				}
			}
		}
	}
	return out
}

// scanCellsStatic emits the same pairs in the same order as scanCells
// would over the merged chains ("statics descending, then mobiles
// descending" per cell), but never iterates a static×static candidate.
func (l *List) scanCellsStatic(a, b int, r2 float64, out []Pair) []Pair {
	sg := l.static
	mnext := l.next
	pos := l.wrapped

	// Static outer atoms of a. In the merged chain their inner walk skips
	// the remaining statics (both inactive) and lands on b's mobile chain
	// — for a == b that is a's own full mobile chain, since every mobile
	// follows every static in the merged order.
	mb := l.mobileHead[b]
	for i := sg.head[a]; i >= 0; i = sg.next[i] {
		pi := pos[i]
		for j := mb; j >= 0; j = mnext[j] {
			// j mobile < i static, so (lo, hi) = (j, i).
			if l.excluded(j, i) {
				continue
			}
			d := vec.MinImageWrapped(pi.Sub(pos[j]), l.Box)
			if d.Norm2() <= r2 {
				out = append(out, Pair{j, i})
			}
		}
	}

	// Mobile outer atoms of a.
	for i := l.mobileHead[a]; i >= 0; i = mnext[i] {
		pi := pos[i]
		if a == b {
			// Chain runs descending, so every successor j is < i.
			for j := mnext[i]; j >= 0; j = mnext[j] {
				if l.excluded(j, i) {
					continue
				}
				d := vec.MinImageWrapped(pi.Sub(pos[j]), l.Box)
				if d.Norm2() <= r2 {
					out = append(out, Pair{j, i})
				}
			}
			continue
		}
		// b's merged chain: statics first, then mobiles.
		for j := sg.head[b]; j >= 0; j = sg.next[j] {
			// i mobile < j static, so (lo, hi) = (i, j).
			if l.excluded(i, j) {
				continue
			}
			d := vec.MinImageWrapped(pi.Sub(pos[j]), l.Box)
			if d.Norm2() <= r2 {
				out = append(out, Pair{i, j})
			}
		}
		for j := l.mobileHead[b]; j >= 0; j = mnext[j] {
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			if l.excluded(lo, hi) {
				continue
			}
			d := vec.MinImageWrapped(pi.Sub(pos[j]), l.Box)
			if d.Norm2() <= r2 {
				out = append(out, Pair{lo, hi})
			}
		}
	}
	return out
}

// scanParallelStatic partitions the cell range across workers like
// scanParallel, with per-worker buffers merged in worker order.
func (l *List) scanParallelStatic(r2 float64) {
	ncell := l.static.ncell
	nw := l.Workers
	if nw > ncell {
		nw = ncell
	}
	if len(l.bufs) < nw {
		l.bufs = append(l.bufs, make([][]Pair, nw-len(l.bufs))...)
	}
	var wg sync.WaitGroup
	chunk := (ncell + nw - 1) / nw
	for w := 0; w < nw; w++ {
		c0 := w * chunk
		c1 := c0 + chunk
		if c1 > ncell {
			c1 = ncell
		}
		wg.Add(1)
		go func(w, c0, c1 int) {
			defer wg.Done()
			l.bufs[w] = l.scanCellRangeStatic(c0, c1, r2, l.bufs[w][:0])
		}(w, c0, c1)
	}
	wg.Wait()
	for _, b := range l.bufs[:nw] {
		l.Pairs = append(l.Pairs, b...)
	}
}
