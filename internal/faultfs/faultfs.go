// Package faultfs is the storage-side sibling of netsim.Gate: a small
// injectable filesystem abstraction that every durable artifact in the
// repo — the dist write-ahead journal, the checkpoint spool, the
// control plane's queue journal — performs its I/O through, plus a
// fault-injecting implementation that delivers deterministic EIO /
// ENOSPC errors, torn (partial) writes, sync failures and rename
// failures per operation.
//
// The paper's grid argument assumes campaigns survive the messy real
// world. PRs 3-4 proved the network half (SIGKILL replay, partitions,
// breakers); faultfs makes the disk half provable too: chaos tests
// count the mutating operations of a protocol (journal compaction, the
// tmp+rename+dir-fsync dance) and then re-run it with a fault injected
// at every single step boundary, asserting that replayed state is
// identical no matter where the disk gave out.
//
// The interface is deliberately tiny — exactly the operations the
// journals need, nothing more — so the OS implementation is a
// transparent passthrough and the injector's operation count maps 1:1
// onto durability-relevant syscalls.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable handle the journals use. Reads go through
// FS.ReadFile instead (the journals always scan whole files), which
// keeps the fault surface focused on the mutating path.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size — the torn-tail repair operation.
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem the durable layers are written against. Every
// method mirrors the os package function of the same name; SyncDir is
// the one addition — fsync on a directory, the step that makes a
// rename durable across power loss (rename alone only becomes
// persistent once the parent directory's entry table is flushed).
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory at name, making previously renamed
	// or created entries durable.
	SyncDir(name string) error
}

// OS is the passthrough implementation backed by the real os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Or returns fsys unless it is nil, in which case the real OS
// filesystem is returned — the "nil means no injection" convention
// every config surface uses.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
