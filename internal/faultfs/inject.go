package faultfs

// The fault-injecting FS. Faults are deterministic — scheduled at an
// exact operation index, wedged from an index onward (the crash model:
// after the disk dies nothing succeeds), or FNV-seeded (a reproducible
// pseudo-random sprinkle keyed by seed and operation count) — so every
// chaos run replays exactly and a failing seed is a complete bug
// report.

import (
	"fmt"
	"hash/fnv"
	"io/fs"
	"sync"
	"syscall"
)

// Op classifies one mutating filesystem operation.
type Op uint8

const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpMkdir
	OpSyncDir
	opCount
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpMkdir:
		return "mkdir"
	case OpSyncDir:
		return "syncdir"
	}
	return "unknown"
}

// Convenient fault errors. ErrInjected wraps every delivered fault so
// tests can tell an injected failure from a real one.
var (
	ErrInjected = fmt.Errorf("faultfs: injected fault")
	EIO         = syscall.EIO
	ENOSPC      = syscall.ENOSPC
)

// fault is one scheduled failure.
type fault struct {
	op    Op      // which operation kind it applies to (opCount = any)
	at    int64   // fires when the mutating-op counter reaches this value
	err   error   // error delivered
	torn  float64 // OpWrite only: fraction of the payload written before failing
	wedge bool    // once fired, every later mutating op fails too
}

// Injector wraps an FS and delivers scheduled or seeded faults on
// mutating operations. Reads are never faulted: recovery code must be
// able to scan what survived. The zero Injector is not usable; call
// NewInjector.
type Injector struct {
	base FS

	mu      sync.Mutex
	ops     int64 // mutating operations attempted so far
	perOp   [opCount]int64
	faults  int64 // faults delivered
	sched   []fault
	stuck   error   // non-nil: every mutating op fails (persistent ENOSPC mode)
	seed    uint64  // FNV-seeded faults when rate > 0
	rate    float64 // probability per op in [0,1)
	seedErr error
}

// NewInjector wraps base (nil = the real OS filesystem).
func NewInjector(base FS) *Injector {
	return &Injector{base: Or(base)}
}

// FailAt schedules a one-shot fault: the n-th mutating operation from
// now (1-based) fails with err (nil = EIO). Operations after it
// succeed again — the transient-fault model.
func (in *Injector) FailAt(n int64, err error) {
	in.schedule(fault{op: opCount, at: in.opsNow() + n, err: err})
}

// FailOpAt schedules a one-shot fault on the n-th future operation of
// kind op specifically (1-based), counting from now.
func (in *Injector) FailOpAt(op Op, n int64, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sched = append(in.sched, fault{op: op, at: in.perOp[op] + n, err: err})
}

// TornWriteAt schedules the n-th mutating operation from now to be a
// torn write: if it is a write, only frac of the payload reaches the
// file before the error; any other operation kind just fails.
func (in *Injector) TornWriteAt(n int64, frac float64, err error) {
	in.schedule(fault{op: opCount, at: in.opsNow() + n, err: err, torn: frac})
}

// WedgeAt schedules the crash model: the n-th mutating operation from
// now fails, and so does every one after it, until Clear. WedgeAt(1,
// err) is "the disk is gone as of now".
func (in *Injector) WedgeAt(n int64, err error) {
	in.schedule(fault{op: opCount, at: in.opsNow() + n, err: err, wedge: true})
}

// SetStuck makes every mutating operation fail with err immediately —
// the persistent-ENOSPC degradation model. Clear lifts it.
func (in *Injector) SetStuck(err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if err == nil {
		err = EIO
	}
	in.stuck = err
}

// SeedFaults arms FNV-seeded faults: each mutating operation fails
// with probability rate, keyed deterministically by (seed, operation
// index) so a run replays identically. rate 0 disables.
func (in *Injector) SeedFaults(seed uint64, rate float64, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seed, in.rate, in.seedErr = seed, rate, err
}

// Clear removes every armed fault: scheduled, wedged, stuck, seeded.
// Counters are preserved.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sched = nil
	in.stuck = nil
	in.rate = 0
}

// Ops returns the total mutating operations attempted — the step count
// a kill-point sweep enumerates.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Faults returns how many faults have been delivered.
func (in *Injector) Faults() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

func (in *Injector) opsNow() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

func (in *Injector) schedule(f fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sched = append(in.sched, f)
}

// check counts one mutating operation of kind op and decides its fate:
// a nil error means proceed; otherwise the error to deliver, and for
// writes a torn fraction (negative = not torn, fail outright).
func (in *Injector) check(op Op) (error, float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	in.perOp[op]++
	if in.stuck != nil {
		in.faults++
		return fmt.Errorf("%w: %s: %w", ErrInjected, op, in.stuck), -1
	}
	for i, f := range in.sched {
		match := (f.op == opCount && in.ops == f.at) || (f.op == op && in.perOp[op] == f.at)
		if f.wedge {
			match = f.op == opCount && in.ops >= f.at
		}
		if !match {
			continue
		}
		err := f.err
		if err == nil {
			err = EIO
		}
		torn := -1.0
		if f.torn > 0 {
			torn = f.torn
		}
		if !f.wedge {
			in.sched = append(in.sched[:i], in.sched[i+1:]...)
		}
		in.faults++
		return fmt.Errorf("%w: %s: %w", ErrInjected, op, err), torn
	}
	if in.rate > 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d#%d", in.seed, in.ops)
		// FNV-1a's low bits correlate across inputs differing only in
		// their final digits; a Murmur-style finalizer decorrelates them.
		v := h.Sum64()
		v ^= v >> 33
		v *= 0xff51afd7ed558ccd
		v ^= v >> 33
		if float64(v&0xffff)/65536 < in.rate {
			err := in.seedErr
			if err == nil {
				err = EIO
			}
			in.faults++
			return fmt.Errorf("%w: %s: %w", ErrInjected, op, err), -1
		}
	}
	return nil, -1
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err, _ := in.check(OpOpen); err != nil {
		return nil, err
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err, _ := in.check(OpRename); err != nil {
		return err
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err, _ := in.check(OpRemove); err != nil {
		return err
	}
	return in.base.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if err, _ := in.check(OpTruncate); err != nil {
		return err
	}
	return in.base.Truncate(name, size)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := in.check(OpMkdir); err != nil {
		return err
	}
	return in.base.MkdirAll(path, perm)
}

// ReadFile and ReadDir are never faulted: recovery must always be able
// to read whatever the faults left behind.
func (in *Injector) ReadFile(name string) ([]byte, error)       { return in.base.ReadFile(name) }
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return in.base.ReadDir(name) }

func (in *Injector) SyncDir(name string) error {
	if err, _ := in.check(OpSyncDir); err != nil {
		return err
	}
	return in.base.SyncDir(name)
}

// injFile routes a File's mutating calls through the injector.
type injFile struct {
	in *Injector
	f  File
}

func (jf *injFile) Write(p []byte) (int, error) {
	err, torn := jf.in.check(OpWrite)
	if err == nil {
		return jf.f.Write(p)
	}
	if torn >= 0 {
		// Torn write: part of the payload reaches the file, then the
		// error — the on-disk signature of a crash mid-write.
		n := int(torn * float64(len(p)))
		if n > 0 {
			if wn, werr := jf.f.Write(p[:n]); werr != nil {
				return wn, werr
			}
		}
		return n, err
	}
	return 0, err
}

func (jf *injFile) Sync() error {
	if err, _ := jf.in.check(OpSync); err != nil {
		return err
	}
	return jf.f.Sync()
}

func (jf *injFile) Truncate(size int64) error {
	if err, _ := jf.in.check(OpTruncate); err != nil {
		return err
	}
	return jf.f.Truncate(size)
}

// Close is never faulted: the journals' error paths close handles they
// are abandoning, and a faulted close would leak them.
func (jf *injFile) Close() error { return jf.f.Close() }
