package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthroughAndSyncDir(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "f.txt")
	f, err := OS.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v; want \"hello\"", data, err)
	}
	moved := filepath.Join(sub, "g.txt")
	if err := OS.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir after rename = %v, %v", ents, err)
	}
	if err := OS.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if err := OS.Truncate(moved, 0); err == nil {
		t.Fatal("Truncate on a removed file should fail")
	}
}

func TestInjectorScheduledFault(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	path := filepath.Join(dir, "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	in.FailAt(2, ENOSPC) // second mutating op from now
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err) // op 2 overall, 1 after arming
	}
	_, err = f.Write([]byte("boom"))
	if !errors.Is(err, ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	// One-shot: the next op succeeds again.
	if _, err := f.Write([]byte("fine")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, _ := in.ReadFile(path)
	if string(data) != "okfine" {
		t.Fatalf("file = %q, want okfine", data)
	}
	if in.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", in.Faults())
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	path := filepath.Join(dir, "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	in.TornWriteAt(1, 0.5, EIO)
	n, err := f.Write([]byte("abcdefgh"))
	if n != 4 || !errors.Is(err, EIO) {
		t.Fatalf("torn write = (%d, %v), want (4, EIO)", n, err)
	}
	f.Close()
	data, _ := in.ReadFile(path)
	if string(data) != "abcd" {
		t.Fatalf("file after torn write = %q, want abcd", data)
	}
}

func TestInjectorWedge(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	in.WedgeAt(1, EIO)
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); err == nil {
			t.Fatalf("write %d succeeded after wedge", i)
		}
	}
	if err := in.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); err == nil {
		t.Fatal("rename succeeded after wedge")
	}
	// Reads still work: recovery can scan what survived.
	if _, err := in.ReadFile(filepath.Join(dir, "f")); err != nil {
		t.Fatal(err)
	}
	in.Clear()
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
	f.Close()
}

func TestInjectorStuckAndClear(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.SetStuck(ENOSPC)
	if _, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ENOSPC) {
		t.Fatalf("want stuck ENOSPC, got %v", err)
	}
	if err := in.SyncDir(dir); !errors.Is(err, ENOSPC) {
		t.Fatalf("want stuck ENOSPC on syncdir, got %v", err)
	}
	in.Clear()
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestInjectorSeededDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		dir := t.TempDir()
		in := NewInjector(nil)
		in.SeedFaults(42, 0.3, EIO)
		f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			// Even the open may be seeded-faulted; retry without the file.
			return in.Ops(), in.Faults()
		}
		for i := 0; i < 50; i++ {
			_, _ = f.Write([]byte("x"))
		}
		f.Close()
		return in.Ops(), in.Faults()
	}
	ops1, faults1 := run()
	ops2, faults2 := run()
	if ops1 != ops2 || faults1 != faults2 {
		t.Fatalf("seeded runs diverged: (%d,%d) vs (%d,%d)", ops1, faults1, ops2, faults2)
	}
	if faults1 == 0 {
		t.Fatal("rate 0.3 over 51 ops delivered no faults")
	}
	if faults1 == ops1 {
		t.Fatal("rate 0.3 faulted every op")
	}
}

func TestInjectorFailOpAt(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.FailOpAt(OpRename, 2, EIO)
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	f, _ := in.OpenFile(a, os.O_CREATE|os.O_WRONLY, 0o644)
	f.Close()
	if err := in.Rename(a, b); err != nil { // rename #1: fine
		t.Fatal(err)
	}
	if err := in.Rename(b, a); err == nil { // rename #2: faulted
		t.Fatal("second rename should fail")
	}
	if err := in.Rename(b, a); err != nil { // rename #3: fine again
		t.Fatal(err)
	}
}
