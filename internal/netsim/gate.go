package netsim

// Gate models hard network partitions — the failure mode the paper's
// §V catalogue keeps returning to (site quarantines, firewall cutovers,
// operator error on manual reservations) and the one QoS shims cannot
// express: not a slow path, a *dead* one. During a blackhole window
// every wrapped connection is severed, every gated dial is refused, and
// after the window (or an explicit Heal) fresh connections flow again.
// The dist chaos tests drive worker links through Gates to prove the
// outbox/reconnect machinery rides out coordinator-side downtime.

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrPartitioned is returned by reads, writes and dials attempted while
// the gate's blackhole window is open.
var ErrPartitioned = errors.New("netsim: partitioned")

// Gate injects partition windows onto the connections and dialers it
// wraps. The zero value is an open (healthy) gate; all methods are
// safe for concurrent use.
type Gate struct {
	mu      sync.Mutex
	until   time.Time // end of the current window; zero = no window
	forever bool      // window open until Heal
	conns   map[*gatedConn]struct{}
}

// NewGate returns a healthy gate.
func NewGate() *Gate { return &Gate{} }

// Blackhole opens a partition window: every live gated connection is
// severed immediately and every read, write or dial through the gate
// fails with ErrPartitioned until the window ends. d > 0 heals
// automatically after d; d <= 0 keeps the partition up until Heal.
func (g *Gate) Blackhole(d time.Duration) {
	g.mu.Lock()
	if d > 0 {
		g.until = time.Now().Add(d)
		g.forever = false
	} else {
		g.forever = true
	}
	sever := make([]*gatedConn, 0, len(g.conns))
	for c := range g.conns {
		sever = append(sever, c)
	}
	g.conns = nil
	g.mu.Unlock()
	// Close outside the lock: Close unblocks reads parked in c.Conn.
	for _, c := range sever {
		c.sever()
	}
}

// Heal closes the window early (or ends an indefinite one). New
// connections succeed immediately; severed ones stay dead — partition
// recovery is a reconnect, exactly like the real network.
func (g *Gate) Heal() {
	g.mu.Lock()
	g.until = time.Time{}
	g.forever = false
	g.mu.Unlock()
}

// Partitioned reports whether the blackhole window is currently open.
func (g *Gate) Partitioned() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.partitionedLocked()
}

func (g *Gate) partitionedLocked() bool {
	return g.forever || (!g.until.IsZero() && time.Now().Before(g.until))
}

// Wrap gates conn. A connection wrapped while the window is open is
// severed on first use.
func (g *Gate) Wrap(conn net.Conn) net.Conn {
	gc := &gatedConn{Conn: conn, g: g}
	g.mu.Lock()
	if g.conns == nil {
		g.conns = make(map[*gatedConn]struct{})
	}
	g.conns[gc] = struct{}{}
	g.mu.Unlock()
	return gc
}

// Dial wraps a dialer so dials fail with ErrPartitioned while the
// window is open and successful connections are gated thereafter. A nil
// dial uses net.Dial("tcp", addr).
func (g *Gate) Dial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		if g.Partitioned() {
			return nil, ErrPartitioned
		}
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return g.Wrap(conn), nil
	}
}

func (g *Gate) drop(gc *gatedConn) {
	g.mu.Lock()
	delete(g.conns, gc)
	g.mu.Unlock()
}

// gatedConn is one partition-aware connection.
type gatedConn struct {
	net.Conn
	g      *Gate
	mu     sync.Mutex
	severd bool
}

// sever marks the conn dead and closes the transport so blocked I/O
// unparks with an error.
func (gc *gatedConn) sever() {
	gc.mu.Lock()
	gc.severd = true
	gc.mu.Unlock()
	_ = gc.Conn.Close()
}

func (gc *gatedConn) dead() bool {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.severd {
		return true
	}
	if gc.g.Partitioned() {
		gc.severd = true
		// Unpark any blocked peer I/O, then report the partition.
		_ = gc.Conn.Close()
		return true
	}
	return false
}

func (gc *gatedConn) Read(p []byte) (int, error) {
	if gc.dead() {
		return 0, ErrPartitioned
	}
	n, err := gc.Conn.Read(p)
	if err != nil && gc.dead() {
		return n, ErrPartitioned
	}
	return n, err
}

func (gc *gatedConn) Write(p []byte) (int, error) {
	if gc.dead() {
		return 0, ErrPartitioned
	}
	n, err := gc.Conn.Write(p)
	if err != nil && gc.dead() {
		return n, ErrPartitioned
	}
	return n, err
}

func (gc *gatedConn) Close() error {
	gc.g.drop(gc)
	return gc.Conn.Close()
}
