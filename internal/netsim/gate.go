package netsim

// Gate models degraded networks — the failure modes the paper's §V
// catalogue keeps returning to (site quarantines, firewall cutovers,
// operator error on manual reservations, and sites that stay reachable
// but slow). Two injectors compose on the same wrapped connections:
//
//   - Blackhole/Heal: a hard partition window — not a slow path, a
//     *dead* one. Every wrapped connection is severed, every gated dial
//     refused, and after the window fresh connections flow again.
//   - SetShape: per-direction latency/bandwidth shaping — a congested
//     or throttled link that still delivers every byte, just late. The
//     dist slow-site chaos scenario uses it to stretch one worker's
//     checkpoint and result transfers until the coordinator's straggler
//     detector hedges its jobs elsewhere.
//
// The dist chaos tests drive worker links through Gates to prove the
// outbox/reconnect machinery rides out coordinator-side downtime.

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrPartitioned is returned by reads, writes and dials attempted while
// the gate's blackhole window is open.
var ErrPartitioned = errors.New("netsim: partitioned")

// Shape describes one direction of a gated link. The zero value is an
// unshaped (ideal) direction.
type Shape struct {
	// Latency is added to every I/O operation crossing the direction —
	// propagation delay, paid once per message.
	Latency time.Duration
	// KBps caps throughput at this many kilobytes per second; the
	// serialization delay len/KBps queues behind earlier traffic like a
	// single in-order link. 0 = unbounded.
	KBps float64
}

func (s Shape) active() bool { return s.Latency > 0 || s.KBps > 0 }

// delay returns the link occupancy of an n-byte transfer.
func (s Shape) delay(n int) time.Duration {
	d := s.Latency
	if s.KBps > 0 && n > 0 {
		d += time.Duration(float64(n) / (s.KBps * 1024) * float64(time.Second))
	}
	return d
}

// Gate injects partition windows and link shaping onto the connections
// and dialers it wraps. The zero value is an open (healthy) gate with
// ideal links; all methods are safe for concurrent use.
type Gate struct {
	mu      sync.Mutex
	until   time.Time // end of the current window; zero = no window
	forever bool      // window open until Heal
	conns   map[*gatedConn]struct{}
	wshape  Shape // applied to Writes on gated conns
	rshape  Shape // applied to Reads on gated conns
}

// NewGate returns a healthy gate.
func NewGate() *Gate { return &Gate{} }

// Blackhole opens a partition window: every live gated connection is
// severed immediately and every read, write or dial through the gate
// fails with ErrPartitioned until the window ends. d > 0 heals
// automatically after d; d <= 0 keeps the partition up until Heal.
func (g *Gate) Blackhole(d time.Duration) {
	g.mu.Lock()
	if d > 0 {
		g.until = time.Now().Add(d)
		g.forever = false
	} else {
		g.forever = true
	}
	sever := make([]*gatedConn, 0, len(g.conns))
	for c := range g.conns {
		sever = append(sever, c)
	}
	g.conns = nil
	g.mu.Unlock()
	// Close outside the lock: Close unblocks reads parked in c.Conn.
	for _, c := range sever {
		c.sever()
	}
}

// Heal closes the window early (or ends an indefinite one). New
// connections succeed immediately; severed ones stay dead — partition
// recovery is a reconnect, exactly like the real network.
func (g *Gate) Heal() {
	g.mu.Lock()
	g.until = time.Time{}
	g.forever = false
	g.mu.Unlock()
}

// SetShape installs per-direction latency/bandwidth shaping on every
// current and future gated connection: write applies to Writes (the
// wrapped endpoint's uplink), read to Reads (its downlink). Shaping is
// live — traffic already in flight pays the new price on its next
// operation — and zero Shapes restore the ideal link. Unlike Blackhole
// it never severs anything: every byte is delivered, just late, which
// is exactly the §V "reachable but slow" pathology a partition cannot
// express.
func (g *Gate) SetShape(write, read Shape) {
	g.mu.Lock()
	g.wshape, g.rshape = write, read
	g.mu.Unlock()
}

func (g *Gate) shapes() (write, read Shape) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.wshape, g.rshape
}

// Partitioned reports whether the blackhole window is currently open.
func (g *Gate) Partitioned() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.partitionedLocked()
}

func (g *Gate) partitionedLocked() bool {
	return g.forever || (!g.until.IsZero() && time.Now().Before(g.until))
}

// Wrap gates conn. A connection wrapped while the window is open is
// severed on first use.
func (g *Gate) Wrap(conn net.Conn) net.Conn {
	gc := &gatedConn{Conn: conn, g: g}
	g.mu.Lock()
	if g.conns == nil {
		g.conns = make(map[*gatedConn]struct{})
	}
	g.conns[gc] = struct{}{}
	g.mu.Unlock()
	return gc
}

// Dial wraps a dialer so dials fail with ErrPartitioned while the
// window is open and successful connections are gated thereafter. A nil
// dial uses net.Dial("tcp", addr).
func (g *Gate) Dial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		if g.Partitioned() {
			return nil, ErrPartitioned
		}
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return g.Wrap(conn), nil
	}
}

func (g *Gate) drop(gc *gatedConn) {
	g.mu.Lock()
	delete(g.conns, gc)
	g.mu.Unlock()
}

// pacer serializes shaped transfers in one direction: each transfer
// occupies the link for its delay, and later transfers queue behind it
// exactly like frames on a real in-order pipe.
type pacer struct {
	mu       sync.Mutex
	nextFree time.Time
}

// pace blocks until an n-byte transfer under s would have cleared the
// link.
func (pc *pacer) pace(s Shape, n int) {
	if !s.active() {
		return
	}
	d := s.delay(n)
	pc.mu.Lock()
	now := time.Now()
	start := pc.nextFree
	if start.Before(now) {
		start = now
	}
	done := start.Add(d)
	pc.nextFree = done
	pc.mu.Unlock()
	time.Sleep(done.Sub(now))
}

// gatedConn is one partition-aware, shape-aware connection.
type gatedConn struct {
	net.Conn
	g      *Gate
	rpace  pacer
	wpace  pacer
	mu     sync.Mutex
	severd bool
}

// sever marks the conn dead and closes the transport so blocked I/O
// unparks with an error.
func (gc *gatedConn) sever() {
	gc.mu.Lock()
	gc.severd = true
	gc.mu.Unlock()
	_ = gc.Conn.Close()
}

func (gc *gatedConn) dead() bool {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.severd {
		return true
	}
	if gc.g.Partitioned() {
		gc.severd = true
		// Unpark any blocked peer I/O, then report the partition.
		_ = gc.Conn.Close()
		return true
	}
	return false
}

func (gc *gatedConn) Read(p []byte) (int, error) {
	if gc.dead() {
		return 0, ErrPartitioned
	}
	n, err := gc.Conn.Read(p)
	if err != nil && gc.dead() {
		return n, ErrPartitioned
	}
	if n > 0 {
		// Receiver-pays shaping: the bytes exist but have not "arrived"
		// until the shaped link would have delivered them.
		_, rs := gc.g.shapes()
		gc.rpace.pace(rs, n)
	}
	return n, err
}

func (gc *gatedConn) Write(p []byte) (int, error) {
	if gc.dead() {
		return 0, ErrPartitioned
	}
	// Sender-pays shaping: the message occupies the uplink before it is
	// handed to the transport, serializing behind earlier writes.
	ws, _ := gc.g.shapes()
	gc.wpace.pace(ws, len(p))
	n, err := gc.Conn.Write(p)
	if err != nil && gc.dead() {
		return n, ErrPartitioned
	}
	return n, err
}

func (gc *gatedConn) Close() error {
	gc.g.drop(gc)
	return gc.Conn.Close()
}
