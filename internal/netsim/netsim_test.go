package netsim

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"spice/internal/xrand"
)

func TestSampleDelayNonNegativeAndAtLeastLatency(t *testing.T) {
	rng := xrand.New(1)
	for _, p := range Profiles() {
		for i := 0; i < 1000; i++ {
			d := p.SampleDelay(rng, 1000)
			if d < p.Latency {
				t.Fatalf("%s: delay %v below latency %v", p.Name, d, p.Latency)
			}
		}
	}
}

func TestProfileOrdering(t *testing.T) {
	// Mean delay must rank LAN < Lightpath < SharedWAN < Congested for a
	// typical steering message.
	rng := xrand.New(2)
	var prev time.Duration
	for i, p := range Profiles() {
		m := p.MeanDelay(rng, 4096, 3000)
		if i > 0 && m <= prev {
			t.Fatalf("profile %s mean delay %v not worse than previous %v", p.Name, m, prev)
		}
		prev = m
	}
}

func TestJitterSpreadsDelays(t *testing.T) {
	rng := xrand.New(3)
	spread := func(p Profile) time.Duration {
		lo, hi := time.Duration(1<<62), time.Duration(0)
		for i := 0; i < 2000; i++ {
			d := p.SampleDelay(rng, 100)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		return hi - lo
	}
	if spread(Congested) <= spread(Lightpath) {
		t.Fatal("congested spread should exceed lightpath spread")
	}
}

func TestLossAddsRTOPenalties(t *testing.T) {
	rng := xrand.New(4)
	lossy := Profile{Name: "lossy", Latency: time.Millisecond, Loss: 0.5, RTO: 100 * time.Millisecond}
	clean := Profile{Name: "clean", Latency: time.Millisecond}
	// Expected penalty: p/(1-p)·RTO = 100 ms.
	ml := lossy.MeanDelay(rng, 100, 5000)
	mc := clean.MeanDelay(rng, 100, 5000)
	penalty := ml - mc
	if penalty < 80*time.Millisecond || penalty > 120*time.Millisecond {
		t.Fatalf("loss penalty = %v, want ~100ms", penalty)
	}
}

func TestSerializationDelay(t *testing.T) {
	rng := xrand.New(5)
	p := Profile{Name: "slow", Latency: 0, BandwidthMbps: 8} // 1 byte/µs
	d := p.SampleDelay(rng, 1000000)                         // 1 MB -> 1 s
	if d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("serialization of 1MB at 8Mbps = %v, want ~1s", d)
	}
	// Zero-size messages pay no serialization.
	if d := p.SampleDelay(rng, 0); d != 0 {
		t.Fatalf("empty message delay = %v", d)
	}
}

func TestSampleDelayDeterministic(t *testing.T) {
	a, b := xrand.New(6), xrand.New(6)
	for i := 0; i < 100; i++ {
		if Congested.SampleDelay(a, 512) != Congested.SampleDelay(b, 512) {
			t.Fatal("delay sampling not deterministic")
		}
	}
}

func TestShimDelaysWrites(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	// 10 ms fixed latency at full scale.
	shim := NewShim(c, Profile{Latency: 10 * time.Millisecond}, 1, 1)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 5)
		if _, err := io.ReadFull(s, buf); err != nil {
			done <- nil
			return
		}
		done <- buf
	}()
	t0 := time.Now()
	if _, err := shim.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := <-done
	elapsed := time.Since(t0)
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("payload corrupted: %q", got)
	}
	if elapsed < 9*time.Millisecond {
		t.Fatalf("write returned in %v, expected >= 10ms delay", elapsed)
	}
}

func TestShimScale(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	// 100 ms latency at scale 0.01 → ~1 ms.
	shim := NewShim(c, Profile{Latency: 100 * time.Millisecond}, 0.01, 2)
	go func() {
		buf := make([]byte, 1)
		_, _ = io.ReadFull(s, buf)
	}()
	t0 := time.Now()
	if _, err := shim.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 50*time.Millisecond {
		t.Fatalf("scaled write took %v, scale not applied", elapsed)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	client, server := Pipe(Profile{Latency: time.Millisecond}, 1, 3)
	defer client.Close()
	defer server.Close()
	go func() {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(server, buf); err == nil {
			_, _ = server.Write(buf)
		}
	}()
	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestSupportsUDP(t *testing.T) {
	if !Lightpath.SupportsUDP() {
		t.Fatal("direct paths forward UDP")
	}
}

func TestTCPThroughputMathis(t *testing.T) {
	// Loss-free paths run at line rate.
	if got := Lightpath.TCPThroughputMbps(1460); got != Lightpath.BandwidthMbps {
		t.Fatalf("lightpath TCP throughput = %v", got)
	}
	// Congested trans-Atlantic path: MSS 1460B, RTT 120 ms, p=1%:
	// 1460·8/(0.12·0.1)/1e6 ≈ 0.97 Mb/s — collapse well below the
	// 20 Mb/s link rate.
	got := Congested.TCPThroughputMbps(1460)
	if got < 0.5 || got > 2 {
		t.Fatalf("congested Mathis throughput = %v Mb/s, want ~1", got)
	}
	if got >= Congested.BandwidthMbps {
		t.Fatal("loss should collapse throughput below line rate")
	}
	// Shared WAN sits between.
	mid := SharedWAN.TCPThroughputMbps(1460)
	if mid <= got {
		t.Fatalf("shared WAN (%v) should beat congested (%v)", mid, got)
	}
	// Default MSS and degenerate RTT.
	if Congested.TCPThroughputMbps(0) != got {
		t.Fatal("default MSS mismatch")
	}
	zero := Profile{Loss: 0.01}
	if zero.TCPThroughputMbps(1460) != 0 {
		t.Fatal("zero-latency lossy profile should fall back to bandwidth")
	}
}
