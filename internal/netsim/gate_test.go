package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestGateHealthyPassesTraffic(t *testing.T) {
	g := NewGate()
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)
	defer gc.Close()
	go func() {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(s, buf); err == nil {
			_, _ = s.Write(buf)
		}
	}()
	if _, err := gc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(gc, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestGateBlackholeSeversLiveConns(t *testing.T) {
	g := NewGate()
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)

	// Park a reader on the gated side; severing must unblock it.
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := gc.Read(buf)
		readErr <- err
	}()

	g.Blackhole(0) // indefinite

	select {
	case err := <-readErr:
		if !errors.Is(err, ErrPartitioned) {
			t.Fatalf("blocked read err = %v, want ErrPartitioned", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read not severed by blackhole")
	}
	if _, err := gc.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write during partition err = %v, want ErrPartitioned", err)
	}
}

func TestGateBlackholeRefusesDials(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()

	g := NewGate()
	dial := g.Dial(nil)
	g.Blackhole(0)
	if _, err := dial(ln.Addr().String()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition err = %v, want ErrPartitioned", err)
	}
	g.Heal()
	conn, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn.Close()
}

func TestGateWindowHealsAutomatically(t *testing.T) {
	g := NewGate()
	g.Blackhole(30 * time.Millisecond)
	if !g.Partitioned() {
		t.Fatal("window did not open")
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("window never healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fresh traffic flows after the heal.
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)
	defer gc.Close()
	go func() {
		buf := make([]byte, 2)
		_, _ = io.ReadFull(s, buf)
	}()
	if _, err := gc.Write([]byte("ok")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

// TestGateSeveredConnStaysDead matches real partitions: a connection
// cut by the window does not spring back to life on heal — recovery
// means reconnecting.
func TestGateSeveredConnStaysDead(t *testing.T) {
	g := NewGate()
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)
	g.Blackhole(time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	if g.Partitioned() {
		t.Fatal("window should have closed")
	}
	if _, err := gc.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("severed conn write err = %v, want ErrPartitioned", err)
	}
}

func TestGateComposesWithShim(t *testing.T) {
	// A gated QoS shim: the dist tests stack both, so the pair must
	// interoperate.
	g := NewGate()
	c, s := net.Pipe()
	defer s.Close()
	conn := g.Wrap(NewShim(c, Profile{Latency: time.Millisecond}, 0.01, 7))
	defer conn.Close()
	go func() {
		buf := make([]byte, 5)
		_, _ = io.ReadFull(s, buf)
	}()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
}

func TestGateShapeLatencyDelaysWrites(t *testing.T) {
	g := NewGate()
	g.SetShape(Shape{Latency: 60 * time.Millisecond}, Shape{})
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)
	defer gc.Close()

	go func() {
		buf := make([]byte, 4)
		_, _ = io.ReadFull(s, buf)
	}()
	start := time.Now()
	if _, err := gc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 55*time.Millisecond {
		t.Fatalf("shaped write took %v, want >= latency", el)
	}
}

func TestGateShapeBandwidthSerializesTransfers(t *testing.T) {
	g := NewGate()
	// 100 KB/s: a 4 KiB message occupies the link for 40 ms; two
	// back-to-back messages must queue to >= 80 ms total.
	g.SetShape(Shape{KBps: 100}, Shape{})
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)
	defer gc.Close()

	go func() { _, _ = io.Copy(io.Discard, s) }()
	msg := make([]byte, 4096)
	start := time.Now()
	for i := 0; i < 2; i++ {
		if _, err := gc.Write(msg); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 75*time.Millisecond {
		t.Fatalf("two shaped 4 KiB writes took %v, want >= ~80ms serialization", el)
	}
}

func TestGateShapeReadDirectionIndependent(t *testing.T) {
	g := NewGate()
	// Only the read (downlink) direction is shaped; writes stay ideal.
	g.SetShape(Shape{}, Shape{Latency: 60 * time.Millisecond})
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)
	defer gc.Close()

	go func() {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(s, buf); err == nil {
			_, _ = s.Write(buf)
		}
	}()
	start := time.Now()
	if _, err := gc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("unshaped write took %v", el)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(gc, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 55*time.Millisecond {
		t.Fatalf("shaped read completed in %v, want >= latency", el)
	}
}

func TestGateShapeClearsAndComposesWithBlackhole(t *testing.T) {
	g := NewGate()
	g.SetShape(Shape{Latency: 50 * time.Millisecond}, Shape{Latency: 50 * time.Millisecond})
	g.SetShape(Shape{}, Shape{}) // back to ideal
	c, s := net.Pipe()
	defer s.Close()
	gc := g.Wrap(c)
	defer gc.Close()
	go func() { _, _ = io.Copy(io.Discard, s) }()
	start := time.Now()
	if _, err := gc.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("cleared shape still delaying: %v", el)
	}
	// A shaped gate still partitions: severing wins over shaping.
	g.SetShape(Shape{Latency: 5 * time.Millisecond}, Shape{})
	g.Blackhole(0)
	if _, err := gc.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write during partition err = %v, want ErrPartitioned", err)
	}
}

// TestGateShapeConcurrentConnsPaceIndependently pins the pacer's
// granularity: shaping models each connection as its own link, so a
// fleet of conns through one gate pays the latency once each, in
// parallel — not serialized behind a single shared pipe.
func TestGateShapeConcurrentConnsPaceIndependently(t *testing.T) {
	const conns = 8
	const lat = 60 * time.Millisecond
	g := NewGate()
	g.SetShape(Shape{Latency: lat}, Shape{})

	elapsed := make([]time.Duration, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conns; i++ {
		c, s := net.Pipe()
		defer s.Close()
		gc := g.Wrap(c)
		defer gc.Close()
		go func() {
			buf := make([]byte, 4)
			_, _ = io.ReadFull(s, buf)
		}()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			if _, err := gc.Write([]byte("ping")); err != nil {
				t.Error(err)
			}
			elapsed[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	for i, el := range elapsed {
		if el < lat-5*time.Millisecond {
			t.Fatalf("conn %d shaped write took %v, want >= %v", i, el, lat)
		}
	}
	// Serialized across connections this would take conns*lat = 480 ms;
	// independent pacers overlap the sleeps.
	if wall > 3*lat {
		t.Fatalf("%d concurrent shaped writes took %v total — pacing is serialized across conns", conns, wall)
	}
}

// TestGateShapeBandwidthConcurrentConns drives the serialization-delay
// model under fan-out: back-to-back transfers queue on their own conn
// (second write waits for the first to clear), while other conns'
// queues drain in parallel.
func TestGateShapeBandwidthConcurrentConns(t *testing.T) {
	const conns = 4
	g := NewGate()
	// 100 KB/s: each 4 KiB message occupies its link for 40 ms, so two
	// back-to-back messages per conn queue to >= ~80 ms.
	g.SetShape(Shape{KBps: 100}, Shape{})

	elapsed := make([]time.Duration, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conns; i++ {
		c, s := net.Pipe()
		defer s.Close()
		gc := g.Wrap(c)
		defer gc.Close()
		go func() { _, _ = io.Copy(io.Discard, s) }()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := make([]byte, 4096)
			t0 := time.Now()
			for j := 0; j < 2; j++ {
				if _, err := gc.Write(msg); err != nil {
					t.Error(err)
					return
				}
			}
			elapsed[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	for i, el := range elapsed {
		if el < 75*time.Millisecond {
			t.Fatalf("conn %d: two 4 KiB writes took %v, want >= ~80ms per-conn queueing", i, el)
		}
	}
	// Serialized across connections this would take >= conns*80 ms.
	if wall >= conns*80*time.Millisecond {
		t.Fatalf("%d conns' transfers took %v total — bandwidth queue is shared across conns", conns, wall)
	}
}

// TestGateSetShapeLiveUnderConcurrentTraffic flips shaping while a
// fleet of connections is mid-traffic: no data may be lost or
// reordered, and once the shape is cleared new writes run at full
// speed. (Under -race this also pins SetShape/shapes as properly
// synchronized against concurrent I/O.)
func TestGateSetShapeLiveUnderConcurrentTraffic(t *testing.T) {
	const conns = 4
	g := NewGate()

	type pipe struct {
		gc net.Conn
		s  net.Conn
	}
	pipes := make([]pipe, conns)
	for i := range pipes {
		c, s := net.Pipe()
		pipes[i] = pipe{gc: g.Wrap(c), s: s}
		defer s.Close()
		defer pipes[i].gc.Close()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	reshaperDone := make(chan struct{})
	go func() { // reshaper: toggles latency while traffic flows
		defer close(reshaperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			g.SetShape(Shape{Latency: time.Millisecond}, Shape{Latency: time.Millisecond})
			g.SetShape(Shape{}, Shape{})
		}
	}()
	for i := range pipes {
		p := pipes[i]
		go func() { // echo server on the raw side
			buf := make([]byte, 1)
			for {
				if _, err := io.ReadFull(p.s, buf); err != nil {
					return
				}
				if _, err := p.s.Write(buf); err != nil {
					return
				}
			}
		}()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 1)
			for seq := 0; seq < 20; seq++ {
				if _, err := p.gc.Write([]byte{byte(i<<4 | seq%16)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := io.ReadFull(p.gc, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(i<<4|seq%16) {
					t.Errorf("conn %d echo %d: got %#x", i, seq, buf[0])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-reshaperDone

	g.SetShape(Shape{}, Shape{})
	p := pipes[0]
	start := time.Now()
	if _, err := p.gc.Write([]byte{0xff}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(p.gc, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("cleared shape still delaying after live reshaping: %v", el)
	}
}
