// Package netsim models the networks that connect SPICE's distributed
// components. The paper's central networking claim is that interactive MD
// needs high quality-of-service — low latency, jitter and packet loss — as
// provided by dedicated optical lightpaths (UKLight/GLIF), because on a
// general-purpose network the synchronous, bi-directional simulation ↔
// visualizer exchange stalls the simulation.
//
// Two complementary facilities are provided:
//
//   - Profile.SampleDelay: a discrete-event delay model (propagation +
//     jitter + serialization + loss-retransmission penalties) used by the
//     campaign and QoS benches without any real sleeping;
//   - Shim: a net.Conn wrapper that imposes (scaled-down) profile delays
//     on real loopback sockets, used by the IMD integration tests and the
//     interactive example.
package netsim

import (
	"math"
	"net"
	"sync"
	"time"

	"spice/internal/xrand"
)

// Profile characterizes one network path.
type Profile struct {
	Name string
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter is the standard deviation of the queueing-delay component
	// (half-normal, added to Latency).
	Jitter time.Duration
	// Loss is the packet loss probability per message. For the
	// TCP-like flows SPICE uses, each loss costs a retransmission
	// timeout rather than a dropped message.
	Loss float64
	// RTO is the retransmission timeout paid per lost packet.
	RTO time.Duration
	// BandwidthMbps bounds throughput; 0 = unbounded.
	BandwidthMbps float64
}

// The paper's network tiers. Propagation reflects the trans-Atlantic
// UCL ↔ TeraGrid path (~40 ms one way); what distinguishes the tiers is
// jitter and loss, not distance.
var (
	// Lightpath is a dedicated optical path (UKLight/GLIF): fixed
	// latency, negligible jitter, no loss, 10 Gb/s.
	Lightpath = Profile{Name: "lightpath", Latency: 40 * time.Millisecond, Jitter: 50 * time.Microsecond, Loss: 0, RTO: 200 * time.Millisecond, BandwidthMbps: 10000}
	// LAN is a local visualization engine co-located with the compute.
	LAN = Profile{Name: "lan", Latency: 200 * time.Microsecond, Jitter: 50 * time.Microsecond, Loss: 0, RTO: 200 * time.Millisecond, BandwidthMbps: 1000}
	// SharedWAN is the production internet between the same endpoints.
	SharedWAN = Profile{Name: "shared-wan", Latency: 45 * time.Millisecond, Jitter: 8 * time.Millisecond, Loss: 0.001, RTO: 200 * time.Millisecond, BandwidthMbps: 100}
	// Congested is the same path under cross-traffic.
	Congested = Profile{Name: "congested", Latency: 60 * time.Millisecond, Jitter: 25 * time.Millisecond, Loss: 0.01, RTO: 200 * time.Millisecond, BandwidthMbps: 20}
)

// Profiles lists the standard tiers, best first.
func Profiles() []Profile { return []Profile{LAN, Lightpath, SharedWAN, Congested} }

// SampleDelay draws the one-way delivery delay for a message of size
// bytes. It is deterministic given the rng stream.
func (p Profile) SampleDelay(rng *xrand.Source, bytes int) time.Duration {
	d := p.Latency
	if p.Jitter > 0 {
		j := rng.NormFloat64()
		if j < 0 {
			j = -j
		}
		d += time.Duration(j * float64(p.Jitter))
	}
	if p.BandwidthMbps > 0 && bytes > 0 {
		// serialization: bytes*8 bits / (Mbps * 1e6) seconds
		sec := float64(bytes) * 8 / (p.BandwidthMbps * 1e6)
		d += time.Duration(sec * float64(time.Second))
	}
	// Each lost transmission costs one RTO before the retry succeeds.
	for p.Loss > 0 && rng.Float64() < p.Loss {
		d += p.RTO
	}
	return d
}

// MeanDelay estimates the expected one-way delay for a message size by
// Monte Carlo (n samples).
func (p Profile) MeanDelay(rng *xrand.Source, bytes, n int) time.Duration {
	if n <= 0 {
		n = 1000
	}
	var total time.Duration
	for i := 0; i < n; i++ {
		total += p.SampleDelay(rng, bytes)
	}
	return total / time.Duration(n)
}

// SupportsUDP reports whether the path forwards UDP traffic. Gateway-
// relayed paths (the PSC qsocket/Access Gateway solution to hidden IP
// addresses) do not — §V.C.1 of the paper.
func (p Profile) SupportsUDP() bool { return true }

// Shim wraps a net.Conn, delaying every Write by the profile's sampled
// one-way delay multiplied by Scale (use Scale << 1 in tests to keep
// wall-clock time down while preserving delay ratios between profiles).
type Shim struct {
	net.Conn
	Profile Profile
	Scale   float64

	mu  sync.Mutex
	rng *xrand.Source
}

// NewShim wraps conn with QoS behaviour. Scale 0 defaults to 1.
func NewShim(conn net.Conn, p Profile, scale float64, seed uint64) *Shim {
	if scale == 0 {
		scale = 1
	}
	return &Shim{Conn: conn, Profile: p, Scale: scale, rng: xrand.New(seed)}
}

// Write implements net.Conn with injected delay. The delay is paid by the
// sender, which serializes the path like a single in-order TCP stream.
func (s *Shim) Write(b []byte) (int, error) {
	s.mu.Lock()
	d := s.Profile.SampleDelay(s.rng, len(b))
	s.mu.Unlock()
	if s.Scale > 0 && d > 0 {
		time.Sleep(time.Duration(float64(d) * s.Scale))
	}
	return s.Conn.Write(b)
}

// Pipe returns the two ends of an in-memory duplex connection with the
// profile applied independently in each direction.
func Pipe(p Profile, scale float64, seed uint64) (client, server net.Conn) {
	c, s := net.Pipe()
	return NewShim(c, p, scale, seed), NewShim(s, p, scale, seed+1)
}

// TCPThroughputMbps estimates the sustainable TCP throughput of the path
// using the Mathis relation T = MSS/(RTT·sqrt(p)) for loss probability
// p > 0, capped by the path bandwidth. For loss-free paths the link
// bandwidth is returned. This is the high-bandwidth-delay-product effect
// that made 2005-era trans-Atlantic TCP transfers collapse on shared
// networks while lightpaths sustained line rate.
func (p Profile) TCPThroughputMbps(mssBytes int) float64 {
	if mssBytes <= 0 {
		mssBytes = 1460
	}
	if p.Loss <= 0 {
		return p.BandwidthMbps
	}
	rtt := 2 * p.Latency.Seconds()
	if rtt <= 0 {
		return p.BandwidthMbps
	}
	mathis := float64(mssBytes) * 8 / (rtt * math.Sqrt(p.Loss)) / 1e6
	if p.BandwidthMbps > 0 && mathis > p.BandwidthMbps {
		return p.BandwidthMbps
	}
	return mathis
}
