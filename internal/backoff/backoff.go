// Package backoff is the single retry-delay implementation shared by
// every reconnect/retry loop in the repo: the coordinator's per-job
// retry schedule, the journal repair loop, the worker reconnect
// transport, and the control-plane HTTP client. Keeping one
// implementation means a fleet under stress backs off with one set of
// well-understood semantics instead of three hand-rolled ones.
//
// Three delay shapes are provided:
//
//   - Policy.Exp: pure capped exponential growth (deterministic — used
//     where the caller holds a lock and the schedule must be replayable,
//     e.g. journal repair).
//   - Policy.Keyed: exponential growth scaled by a deterministic FNV
//     jitter fraction in [0.5, 1). The same key and attempt always yield
//     the same delay, so journal replay reproduces the exact schedule.
//   - Policy.Decorrelated: AWS-style decorrelated jitter — each delay is
//     uniform in [Base, 3·prev), capped at Max. Used by reconnect loops
//     where the goal is to spread a thundering herd, not to be
//     replayable.
//
// Budget is a fleet-safe token-bucket retry budget: spend one token per
// retry, refill at a bounded rate. When the budget runs dry the caller
// should stretch to its maximum delay (or give up) instead of adding
// another synchronized wave to a retry storm.
package backoff

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds a retry-delay schedule: delays start at Base and never
// exceed Max. The zero value is unusable; both fields must be positive.
type Policy struct {
	Base time.Duration
	Max  time.Duration
}

// Exp returns the delay before the attempt-th try (attempt >= 1):
// Base·2^(attempt-1), capped at Max. attempt <= 1 returns Base.
func (p Policy) Exp(attempt int) time.Duration {
	d := p.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.Max {
			return p.Max
		}
	}
	if d > p.Max {
		d = p.Max
	}
	return d
}

// Frac returns a deterministic jitter fraction in [0.5, 1) keyed by an
// arbitrary string: the FNV-64a hash of the key selects one of 4096
// evenly spaced fractions. The same key always yields the same
// fraction, so schedules built from Frac are stable across restarts and
// journal replays while still spreading distinct keys apart.
func Frac(key string) float64 {
	h := fnv.New64a()
	fmt.Fprint(h, key)
	return 0.5 + 0.5*float64(h.Sum64()&0xfff)/4096
}

// Keyed returns Exp(attempt) scaled by the deterministic jitter
// fraction Frac("key#attempt"). Two jobs retrying the same attempt
// number get different delays; the same (key, attempt) pair always gets
// the same delay.
func (p Policy) Keyed(key string, attempt int) time.Duration {
	d := p.Exp(attempt)
	return time.Duration(float64(d) * Frac(fmt.Sprintf("%s#%d", key, attempt)))
}

// Decorrelated is one retry sequence's mutable state using decorrelated
// jitter: each Next is uniform in [Base, 3·prev), capped at Max. It is
// not safe for concurrent use; each retry loop owns its own instance.
type Decorrelated struct {
	policy Policy
	prev   time.Duration
	rng    *rand.Rand
}

// Decorrelated builds a sequence seeded deterministically: the same
// seed replays the same delays (useful in tests), while distinct seeds
// — e.g. Seed(workerName) — de-synchronize a fleet that fails at the
// same instant.
func (p Policy) Decorrelated(seed uint64) *Decorrelated {
	return &Decorrelated{policy: p, rng: rand.New(rand.NewSource(int64(seed)))}
}

// Seed hashes an arbitrary name into a Decorrelated seed.
func Seed(name string) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, name)
	return h.Sum64()
}

// Next returns the next delay in the sequence.
func (d *Decorrelated) Next() time.Duration {
	if d.prev <= 0 {
		d.prev = d.policy.Base
	}
	lo := d.policy.Base
	if lo <= 0 {
		lo = time.Millisecond
	}
	hi := 3 * d.prev
	if hi <= lo {
		hi = lo + 1
	}
	n := lo + time.Duration(d.rng.Int63n(int64(hi-lo)))
	if max := d.policy.Max; max > 0 && n > max {
		n = max
	}
	d.prev = n
	return n
}

// Max returns the policy cap — the delay a caller should stretch to
// when its retry Budget is exhausted.
func (d *Decorrelated) Max() time.Duration { return d.policy.Max }

// Reset restarts the sequence (call after a successful attempt).
func (d *Decorrelated) Reset() { d.prev = 0 }

// Budget is a token-bucket retry budget shared by any number of
// goroutines: each retry spends one token, and tokens refill at Rate
// per second up to Burst. A nil *Budget is an unlimited budget (Spend
// always succeeds), so callers can treat "no budget configured" and "a
// budget with tokens" identically.
type Budget struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test seam; nil means time.Now
}

// NewBudget returns a budget that starts full at burst tokens and
// refills at rate tokens per second. rate <= 0 or burst <= 0 returns
// nil (an unlimited budget).
func NewBudget(rate float64, burst int) *Budget {
	if rate <= 0 || burst <= 0 {
		return nil
	}
	return &Budget{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

func (b *Budget) refillLocked() {
	nowf := b.now
	if nowf == nil {
		nowf = time.Now
	}
	now := nowf()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Spend takes one token if available and reports whether it did. A
// false return means the fleet's aggregate retry rate is at its cap:
// the caller should stretch to its maximum delay (or give up) rather
// than retry on schedule.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the current token count (refilled to now). An
// unlimited (nil) budget reports -1.
func (b *Budget) Tokens() float64 {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}
