package backoff

import (
	"testing"
	"time"
)

func TestExpGrowthAndCap(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond}
	want := []time.Duration{
		2 * time.Millisecond,  // attempt 1
		4 * time.Millisecond,  // attempt 2
		8 * time.Millisecond,  // attempt 3
		16 * time.Millisecond, // attempt 4
		32 * time.Millisecond, // attempt 5
		50 * time.Millisecond, // attempt 6 (capped)
		50 * time.Millisecond, // attempt 7 (stays capped)
	}
	for i, w := range want {
		if got := p.Exp(i + 1); got != w {
			t.Fatalf("Exp(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Exp(0); got != p.Base {
		t.Fatalf("Exp(0) = %v, want Base %v", got, p.Base)
	}
	// Exp must never overflow into negative delays for huge attempts.
	if got := p.Exp(200); got != p.Max {
		t.Fatalf("Exp(200) = %v, want Max %v", got, p.Max)
	}
}

func TestKeyedDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := p.Keyed("job-a", attempt)
		d2 := p.Keyed("job-a", attempt)
		if d1 != d2 {
			t.Fatalf("Keyed not deterministic: %v vs %v", d1, d2)
		}
		exp := p.Exp(attempt)
		if d1 < exp/2 || d1 >= exp {
			t.Fatalf("Keyed(%d) = %v outside [%v, %v)", attempt, d1, exp/2, exp)
		}
	}
	// Distinct keys at the same attempt should mostly disagree.
	distinct := map[time.Duration]bool{}
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		distinct[p.Keyed(key, 3)] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("keyed jitter too clumped: %d distinct delays of 8 keys", len(distinct))
	}
}

func TestFracRange(t *testing.T) {
	for _, key := range []string{"", "x", "worker/0#17", "a-very-long-key"} {
		f := Frac(key)
		if f < 0.5 || f >= 1.0 {
			t.Fatalf("Frac(%q) = %v outside [0.5, 1)", key, f)
		}
		if f != Frac(key) {
			t.Fatalf("Frac(%q) not deterministic", key)
		}
	}
}

func TestDecorrelatedBoundsAndSpread(t *testing.T) {
	p := Policy{Base: 25 * time.Millisecond, Max: time.Second}
	d := p.Decorrelated(Seed("w/0"))
	prev := time.Duration(0)
	for i := 0; i < 50; i++ {
		n := d.Next()
		if n < p.Base || n > p.Max {
			t.Fatalf("Next() = %v outside [%v, %v]", n, p.Base, p.Max)
		}
		_ = prev
		prev = n
	}
	// Same seed replays the same sequence.
	a, b := p.Decorrelated(7), p.Decorrelated(7)
	for i := 0; i < 10; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, x, y)
		}
	}
	// Distinct seeds de-synchronize: first delays across a fleet spread out.
	first := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		w := p.Decorrelated(Seed("worker/" + string(rune('a'+i))))
		first[w.Next()] = true
	}
	if len(first) < 8 {
		t.Fatalf("decorrelated first delays too clumped: %d distinct of 32", len(first))
	}
	// Reset restarts from Base-range delays.
	d.Reset()
	if n := d.Next(); n < p.Base || n >= 3*p.Base {
		t.Fatalf("post-Reset Next() = %v outside [%v, %v)", n, p.Base, 3*p.Base)
	}
}

func TestBudgetSpendAndRefill(t *testing.T) {
	b := NewBudget(10, 3) // 10 tokens/sec, burst 3
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Spend() {
			t.Fatalf("spend %d failed with a full bucket", i)
		}
	}
	if b.Spend() {
		t.Fatal("spend succeeded on an empty bucket")
	}
	now = now.Add(100 * time.Millisecond) // refills exactly 1 token
	if !b.Spend() {
		t.Fatal("spend failed after refill")
	}
	if b.Spend() {
		t.Fatal("second spend succeeded after a single-token refill")
	}
	now = now.Add(time.Hour) // refill caps at burst
	if got := b.Tokens(); got != 3 {
		t.Fatalf("Tokens() = %v after long idle, want burst 3", got)
	}
}

func TestBudgetNilUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 100; i++ {
		if !b.Spend() {
			t.Fatal("nil budget must always allow retries")
		}
	}
	if b.Tokens() != -1 {
		t.Fatal("nil budget Tokens() sentinel changed")
	}
	if NewBudget(0, 5) != nil || NewBudget(1, 0) != nil {
		t.Fatal("degenerate budgets must collapse to nil (unlimited)")
	}
}
