package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"spice/internal/xrand"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	// Unbiased variance of that classic set is 32/7.
	if got, want := Variance(xs), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty inputs should yield 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("singleton variance should be 0")
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanShiftInvariance(t *testing.T) {
	f := func(xs []float64, c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e6 || len(xs) == 0 {
			return true
		}
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
			clean = append(clean, x+c)
		}
		return math.Abs(Mean(clean)-(Mean(xs)+c)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestBlockAverage(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3}
	blocks := BlockAverage(xs, 3)
	want := []float64{1, 2, 3}
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range blocks {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v", blocks)
		}
	}
	// Remainder folds into last block.
	blocks = BlockAverage([]float64{1, 2, 3, 4, 5}, 2)
	if len(blocks) != 2 || blocks[0] != 1.5 || blocks[1] != 4 {
		t.Fatalf("remainder blocks = %v", blocks)
	}
	// Degenerate cases.
	if BlockAverage(nil, 3) != nil || BlockAverage(xs, 0) != nil {
		t.Fatal("degenerate block average should be nil")
	}
}

func TestBlockAveragePreservesMean(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, nb := range []int{1, 2, 4, 8, 16, 32} {
		blocks := BlockAverage(xs, nb)
		if math.Abs(Mean(blocks)-Mean(xs)) > 1e-10 {
			t.Fatalf("nb=%d: block mean %v != sample mean %v", nb, Mean(blocks), Mean(xs))
		}
	}
}

func TestBootstrapMatchesStdErr(t *testing.T) {
	// For the sample mean, bootstrap SE should approximate StdErr.
	rng := xrand.New(2)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	se := StdErr(xs)
	boot := Bootstrap(xs, 500, xrand.New(3), Mean)
	if math.Abs(boot-se)/se > 0.2 {
		t.Fatalf("bootstrap SE %v vs analytic %v", boot, se)
	}
}

func TestJackknifeMatchesStdErr(t *testing.T) {
	rng := xrand.New(4)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 5 + 2*rng.NormFloat64()
	}
	se := StdErr(xs)
	jk := Jackknife(xs, Mean)
	if math.Abs(jk-se)/se > 0.05 {
		t.Fatalf("jackknife SE %v vs analytic %v", jk, se)
	}
}

func TestCostNormalizedError(t *testing.T) {
	// Paper scenario: 8 samples at v=100 cost the same as 1 at v=12.5.
	// A σ measured from n=8 cheap samples, normalized to the budget of
	// 8 cheap samples, is unchanged.
	if got := CostNormalizedError(1.0, 8, 1, 8); got != 1.0 {
		t.Fatalf("identity normalization = %v", got)
	}
	// n=8 samples at cost 1 normalized to a budget that affords only 1
	// sample: error grows by sqrt(8).
	got := CostNormalizedError(1.0, 8, 1, 1)
	if math.Abs(got-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("sqrt(8) normalization = %v", got)
	}
	// Degenerate inputs pass through.
	if CostNormalizedError(2.5, 0, 1, 1) != 2.5 || CostNormalizedError(2.5, 8, 0, 1) != 2.5 {
		t.Fatal("degenerate inputs should pass through")
	}
}

func TestRMSD(t *testing.T) {
	got, err := RMSD([]float64{1, 2, 3}, []float64{1, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(16.0 / 3.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSD = %v, want %v", got, want)
	}
	if _, err := RMSD([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := RMSD(nil, nil); err == nil {
		t.Fatal("empty should error")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("fit = %v + %v x", a, b)
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("degenerate x should error")
	}
}

func TestAutoCorrTime(t *testing.T) {
	// White noise: tau ~ 0.5.
	rng := xrand.New(6)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	tau := AutoCorrTime(xs)
	if tau < 0.3 || tau > 1.5 {
		t.Fatalf("white-noise tau = %v, want ~0.5", tau)
	}
	// AR(1) with phi=0.9: tau ≈ 0.5·(1+phi)/(1-phi) = 9.5.
	ar := make([]float64, 65536)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.9*ar[i-1] + rng.NormFloat64()
	}
	tauAR := AutoCorrTime(ar)
	if tauAR < 5 || tauAR > 20 {
		t.Fatalf("AR(1) tau = %v, want ~9.5", tauAR)
	}
	if tauAR < 2*tau {
		t.Fatalf("correlated series should have much larger tau (%v vs %v)", tauAR, tau)
	}
}
