package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"spice/internal/xrand"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.NBins() != 10 || h.BinWidth() != 1 {
		t.Fatalf("NBins=%d width=%v", h.NBins(), h.BinWidth())
	}
	h.Add(0.5)
	h.Add(9.999)
	h.Add(-1)  // under
	h.Add(10)  // over (Hi is exclusive)
	h.Add(5.0) // bin 5
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Fatalf("outliers = %v, %v", under, over)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %v", h.Total())
	}
}

func TestHistogramBinCenters(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	want := []float64{1, 3, 5, 7, 9}
	for i, w := range want {
		if got := h.BinCenter(i); math.Abs(got-w) > 1e-12 {
			t.Fatalf("center %d = %v, want %v", i, got, w)
		}
	}
}

func TestHistogramBinIndexProperty(t *testing.T) {
	h := NewHistogram(-5, 5, 37)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		i, ok := h.BinIndex(x)
		if x < -5 || x >= 5 {
			return !ok
		}
		if !ok || i < 0 || i >= 37 {
			return false
		}
		// x must lie inside bin i's interval.
		lo := -5 + float64(i)*h.BinWidth()
		return x >= lo-1e-9 && x < lo+h.BinWidth()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramWeightedMean(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddWeighted(2.5, 1, 10)
	h.AddWeighted(2.7, 3, 20)
	m, ok := h.MeanIn(2)
	if !ok {
		t.Fatal("bin 2 should be non-empty")
	}
	if want := (10.0 + 3*20) / 4; math.Abs(m-want) > 1e-12 {
		t.Fatalf("weighted mean = %v, want %v", m, want)
	}
	if _, ok := h.MeanIn(0); ok {
		t.Fatal("empty bin should report !ok")
	}
}

func TestHistogramNormalize(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%4)/4 + 0.1)
	}
	dens, err := h.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	integral := 0.0
	for _, d := range dens {
		integral += d * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Fatalf("density integrates to %v", integral)
	}
	empty := NewHistogram(0, 1, 4)
	if _, err := empty.Normalize(); err == nil {
		t.Fatal("normalizing empty histogram should error")
	}
}

func TestHistogramUniformEntropy(t *testing.T) {
	h := NewHistogram(0, 1, 8)
	rng := xrand.New(8)
	for i := 0; i < 100000; i++ {
		h.Add(rng.Float64())
	}
	// Uniform over 8 bins: entropy ~ ln 8.
	if got, want := h.Entropy(), math.Log(8); math.Abs(got-want) > 0.01 {
		t.Fatalf("entropy = %v, want ~%v", got, want)
	}
}

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad histogram spec did not panic")
				}
			}()
			fn()
		}()
	}
}
