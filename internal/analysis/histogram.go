package analysis

import (
	"errors"
	"fmt"
	"math"
)

// Histogram accumulates weighted samples into uniform bins over [Lo, Hi).
// It is used to bin SMD work samples along the reaction coordinate and to
// summarize grid-simulation latency distributions.
type Histogram struct {
	Lo, Hi float64
	Counts []float64
	Sum    []float64 // per-bin weighted sum of an auxiliary value
	under  float64
	over   float64
}

// NewHistogram returns a histogram with nbins uniform bins spanning
// [lo, hi). It panics if nbins <= 0 or hi <= lo, which indicates a
// programming error in the caller.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("analysis: bad histogram spec [%g,%g) nbins=%d", lo, hi, nbins))
	}
	return &Histogram{
		Lo:     lo,
		Hi:     hi,
		Counts: make([]float64, nbins),
		Sum:    make([]float64, nbins),
	}
}

// NBins returns the number of bins.
func (h *Histogram) NBins() int { return len(h.Counts) }

// BinWidth returns the uniform bin width.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinIndex returns the bin index for x and whether x lies inside the range.
func (h *Histogram) BinIndex(x float64) (int, bool) {
	if x < h.Lo || x >= h.Hi {
		return 0, false
	}
	i := int((x - h.Lo) / h.BinWidth())
	if i >= len(h.Counts) { // guard against FP edge at Hi
		i = len(h.Counts) - 1
	}
	return i, true
}

// BinCenter returns the center coordinate of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Add records sample x with unit weight.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1, 0) }

// AddWeighted records sample x with weight w and auxiliary value v
// (accumulated into Sum, weighted).
func (h *Histogram) AddWeighted(x, w, v float64) {
	i, ok := h.BinIndex(x)
	if !ok {
		if x < h.Lo {
			h.under += w
		} else {
			h.over += w
		}
		return
	}
	h.Counts[i] += w
	h.Sum[i] += w * v
}

// Total returns the in-range weight.
func (h *Histogram) Total() float64 {
	t := 0.0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Outliers returns the weight that fell below Lo and at-or-above Hi.
func (h *Histogram) Outliers() (under, over float64) { return h.under, h.over }

// MeanIn returns the weighted mean of the auxiliary value in bin i, and
// false if the bin is empty.
func (h *Histogram) MeanIn(i int) (float64, bool) {
	if h.Counts[i] == 0 {
		return 0, false
	}
	return h.Sum[i] / h.Counts[i], true
}

// Normalize returns the probability density per bin (counts / (total·width)).
func (h *Histogram) Normalize() ([]float64, error) {
	t := h.Total()
	if t == 0 {
		return nil, errors.New("analysis: normalizing empty histogram")
	}
	w := h.BinWidth()
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = c / (t * w)
	}
	return out, nil
}

// Entropy returns the Shannon entropy (nats) of the normalized histogram.
func (h *Histogram) Entropy() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	e := 0.0
	for _, c := range h.Counts {
		if c > 0 {
			p := c / t
			e -= p * math.Log(p)
		}
	}
	return e
}
