// Package analysis provides the statistical machinery used by the SMD-JE
// free-energy pipeline: moments, block averaging, bootstrap and jackknife
// resampling, histograms and simple regression.
//
// The paper's Fig. 4 analysis hinges on comparing statistical errors
// (σ_stat, estimated by resampling the work ensemble) against systematic
// errors (σ_sys, deviation from a slow-pulling reference), with σ_stat
// normalized for computational cost across pulling velocities. The
// cost-normalization helper lives here too.
package analysis

import (
	"errors"
	"math"
	"sort"

	"spice/internal/xrand"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("analysis: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance; 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean, StdDev/sqrt(n).
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the extrema of xs. It returns (0, 0) for empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if q <= 0 {
		return ys[0]
	}
	if q >= 1 {
		return ys[len(ys)-1]
	}
	pos := q * float64(len(ys)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(ys) {
		return ys[len(ys)-1]
	}
	return ys[i]*(1-frac) + ys[i+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BlockAverage partitions xs into nblocks contiguous blocks, averages each,
// and returns the block means. Trailing samples that do not fill a block
// are folded into the final block. Used to decorrelate time series before
// error estimation.
func BlockAverage(xs []float64, nblocks int) []float64 {
	if nblocks <= 0 || len(xs) == 0 {
		return nil
	}
	if nblocks > len(xs) {
		nblocks = len(xs)
	}
	size := len(xs) / nblocks
	out := make([]float64, 0, nblocks)
	for b := 0; b < nblocks; b++ {
		lo := b * size
		hi := lo + size
		if b == nblocks-1 {
			hi = len(xs)
		}
		out = append(out, Mean(xs[lo:hi]))
	}
	return out
}

// Bootstrap computes the bootstrap standard error of statistic f over xs
// using resamples drawn with rng. It returns the standard deviation of the
// resampled statistic.
func Bootstrap(xs []float64, resamples int, rng *xrand.Source, f func([]float64) float64) float64 {
	if len(xs) == 0 || resamples <= 1 {
		return 0
	}
	stats := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		stats[r] = f(buf)
	}
	return StdDev(stats)
}

// Jackknife returns the jackknife standard error of statistic f over xs.
func Jackknife(xs []float64, f func([]float64) float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	loo := make([]float64, n)
	buf := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		buf = append(buf, xs[:i]...)
		buf = append(buf, xs[i+1:]...)
		loo[i] = f(buf)
	}
	m := Mean(loo)
	s := 0.0
	for _, v := range loo {
		d := v - m
		s += d * d
	}
	return math.Sqrt(float64(n-1) / float64(n) * s)
}

// CostNormalizedError rescales a statistical error measured with n samples
// at per-sample cost c to the error expected at reference budget refBudget:
// the affordable sample count is refBudget/c, and σ ∝ 1/sqrt(samples).
//
// This implements the paper's §IV normalization: "in the computational time
// that one sample at v of 12.5 Å/ns can be generated, eight samples at
// 100 Å/ns can be generated; thus the statistical error of the former should
// be set to sqrt(8) of the latter".
func CostNormalizedError(sigma float64, n int, perSampleCost, refBudget float64) float64 {
	if n <= 0 || perSampleCost <= 0 || refBudget <= 0 {
		return sigma
	}
	affordable := refBudget / perSampleCost
	if affordable <= 0 {
		return sigma
	}
	return sigma * math.Sqrt(float64(n)/affordable)
}

// RMSD returns the root-mean-square deviation between two equal-length
// series. It returns an error if the lengths differ or are zero.
func RMSD(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("analysis: RMSD length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// LinearFit fits y = a + b·x by least squares and returns intercept a,
// slope b. It returns an error for fewer than two points or degenerate x.
func LinearFit(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, errors.New("analysis: LinearFit needs >= 2 paired points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("analysis: LinearFit degenerate x")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// AutoCorrTime estimates the integrated autocorrelation time of xs in units
// of the sampling interval, by summing the normalized autocorrelation
// function until it first drops below zero (initial positive sequence).
// Returns 0.5 (uncorrelated) as the floor.
func AutoCorrTime(xs []float64) float64 {
	n := len(xs)
	if n < 4 {
		return 0.5
	}
	m := Mean(xs)
	var c0 float64
	for _, x := range xs {
		d := x - m
		c0 += d * d
	}
	c0 /= float64(n)
	if c0 == 0 {
		return 0.5
	}
	tau := 0.5
	for lag := 1; lag < n/2; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (xs[i] - m) * (xs[i+lag] - m)
		}
		c /= float64(n - lag)
		rho := c / c0
		if rho <= 0 {
			break
		}
		tau += rho
	}
	return tau
}
