// Ensemble batching: a Jarzynski campaign steps dozens of replicas of
// the same pore system, and per-engine execution leaves easy money on
// the table — every replica re-checks, re-wraps and re-scans the frozen
// wall/membrane substrate every step, every engine owns a private worker
// pool, and replica state is scattered across independent allocations.
//
// Batch adopts N already-built engines that share a topology and box and
// restructures them for ensemble throughput:
//
//   - Replica state is re-backed into flat SoA arrays (positions,
//     velocities, forces) with replica striding, and the per-atom
//     pair-potential parameter tables (charges, radii) are shared.
//   - One neighbor.StaticGrid is built from the substrate and attached
//     to every replica's list: the grid geometry, the static cell
//     chains and the wrapped static coordinates are computed once for
//     the whole ensemble, and each replica's rebuild bins and scans
//     only its mobile atoms.
//   - Integrator loops iterate a dense mobile-index list instead of
//     branching on Fixed across the (mostly static) atom array.
//   - Step schedules one work item per active replica onto a persistent
//     pool, and the engines' own force pools are funneled into a single
//     shared pool, so a replica's nonbonded chunks and other replicas'
//     steps interleave on the same worker set (replica × chunk).
//
// None of this changes any trajectory: each replica keeps its own RNG
// streams, its own serial-or-chunked force summation order, and a pair
// list that is bit-identical to the unbatched one (see neighbor's
// shared.go). Batched and per-engine execution of the same replica
// produce byte-identical positions and velocities — the determinism
// tests pin this at 1, 8 and 32 replicas.
package md

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spice/internal/neighbor"
	"spice/internal/vec"
)

// BatchConfig tunes a Batch.
type BatchConfig struct {
	// Workers sizes the replica-step pool and the shared force pool
	// (default GOMAXPROCS). Replica-level parallelism dominates when
	// replicas >= Workers; engines built with Workers > 1 additionally
	// split their pair lists into chunks on the shared force pool.
	Workers int
}

// Batch owns a set of replica engines stepped as one ensemble.
type Batch struct {
	engines []*Engine
	sg      *neighbor.StaticGrid // nil when the substrate is ineligible

	// Flat SoA state backing, replica-strided: replica r's positions are
	// posBase[r*n : (r+1)*n], and likewise for velocities and forces.
	posBase, velBase, forceBase []vec.V

	active  []bool
	post    func(r int)
	tasks   chan int32
	wg      sync.WaitGroup
	quit    chan struct{}
	once    sync.Once
	fpool   *forcePool // shared chunk pool; nil when no engine needs one
	workers int
}

// NewBatch adopts engines into an ensemble batch. The engines must be
// freshly built or otherwise exclusively owned by the caller (the batch
// re-backs their state arrays), share an atom count and box, and not
// already belong to another batch. Engines keep working through their
// own methods (Step, Checkpoint, Restore, Clone) after adoption.
//
// When the shared system is substrate-eligible — fully periodic box,
// fixed atoms forming a contiguous index suffix, identical static
// positions across replicas — one StaticGrid is built and attached to
// every replica. Otherwise the batch still provides SoA state, shared
// pools and parallel stepping, and SubstrateShared reports false.
func NewBatch(engines []*Engine, bc BatchConfig) (*Batch, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("md: empty batch")
	}
	e0 := engines[0]
	n := e0.top.N()
	for r, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("md: nil engine at replica %d", r)
		}
		if e.adopted {
			return nil, fmt.Errorf("md: replica %d already belongs to a batch", r)
		}
		if e.top.N() != n {
			return nil, fmt.Errorf("md: replica %d has %d atoms, replica 0 has %d", r, e.top.N(), n)
		}
		if e.cfg.Box != e0.cfg.Box {
			return nil, fmt.Errorf("md: replica %d box %v differs from replica 0 box %v", r, e.cfg.Box, e0.cfg.Box)
		}
	}
	if bc.Workers <= 0 {
		bc.Workers = runtime.GOMAXPROCS(0)
	}

	b := &Batch{
		engines:   append([]*Engine(nil), engines...),
		posBase:   make([]vec.V, len(engines)*n),
		velBase:   make([]vec.V, len(engines)*n),
		forceBase: make([]vec.V, len(engines)*n),
		active:    make([]bool, len(engines)),
		tasks:     make(chan int32, len(engines)),
		quit:      make(chan struct{}),
		workers:   bc.Workers,
	}

	// Re-back every replica's dynamical state into the strided SoA
	// arrays (three-index slicing so an append on one replica's view can
	// never bleed into the next) and switch the integrators to dense
	// mobile iteration.
	for r, e := range engines {
		st := e.state
		lo, hi := r*n, (r+1)*n
		copy(b.posBase[lo:hi], st.Pos)
		copy(b.velBase[lo:hi], st.Vel)
		copy(b.forceBase[lo:hi], st.Force)
		st.Pos = b.posBase[lo:hi:hi]
		st.Vel = b.velBase[lo:hi:hi]
		st.Force = b.forceBase[lo:hi:hi]
		st.SetMobileIndex()
		e.adopted = true
		b.active[r] = true
	}

	// Share the immutable per-atom parameter tables when they really are
	// identical across replicas (same builder, same topology values).
	if e0.charges != nil {
		shareable := true
		for _, e := range engines[1:] {
			if !float64sEqual(e.charges, e0.charges) || !float64sEqual(e.radii, e0.radii) {
				shareable = false
				break
			}
		}
		if shareable {
			for _, e := range engines[1:] {
				e.charges = e0.charges
				e.radii = e0.radii
			}
		}
	}

	// One substrate grid for the whole ensemble.
	if sg, err := e0.BuildSubstrate(); err == nil {
		ok := true
		for _, e := range engines {
			if !sg.MatchesStatic(e.state.Pos) {
				ok = false
				break
			}
		}
		if ok {
			for _, e := range engines {
				if err := e.AttachSubstrate(sg); err != nil {
					ok = false
					break
				}
			}
		}
		if ok {
			b.sg = sg
		}
	}

	// Funnel per-engine force pools into one shared pool so nonbonded
	// chunks from every replica land on the same workers as the replica
	// step items.
	needPool := false
	for _, e := range engines {
		if e.pool != nil {
			needPool = true
			break
		}
	}
	if needPool {
		b.fpool = newForcePool(bc.Workers)
		for _, e := range engines {
			if e.pool == nil {
				continue
			}
			e.pool.close()
			runtime.SetFinalizer(e, nil)
			e.pool = b.fpool
			e.poolShared = true
		}
	}

	for w := 0; w < bc.Workers; w++ {
		go b.runStepWorker()
	}
	runtime.SetFinalizer(b, func(b *Batch) { b.shutdown() })
	return b, nil
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Len returns the replica count.
func (b *Batch) Len() int { return len(b.engines) }

// Engine returns replica r's engine.
func (b *Batch) Engine(r int) *Engine { return b.engines[r] }

// SubstrateShared reports whether the replicas share one static grid.
func (b *Batch) SubstrateShared() bool { return b.sg != nil }

// SetActive includes or excludes replica r from subsequent Steps —
// ensemble drivers retire replicas as their pulls finish. Not safe to
// call concurrently with Step.
func (b *Batch) SetActive(r int, on bool) { b.active[r] = on }

// Active reports whether replica r is stepped.
func (b *Batch) Active(r int) bool { return b.active[r] }

// NumActive returns the number of replicas currently stepped.
func (b *Batch) NumActive() int {
	n := 0
	for _, on := range b.active {
		if on {
			n++
		}
	}
	return n
}

// SetPostStep installs fn to run after each replica's step, on the
// worker that stepped it — replicas run concurrently, so fn must touch
// only replica-r data (the ensemble pull driver advances pullers and
// records samples here). Not safe to call concurrently with Step.
func (b *Batch) SetPostStep(fn func(r int)) { b.post = fn }

// Step advances every active replica by one timestep, scheduling one
// work item per replica onto the batch pool and waiting for all of them.
// Steady-state cost is allocation-free.
func (b *Batch) Step() {
	njobs := 0
	for _, on := range b.active {
		if on {
			njobs++
		}
	}
	if njobs == 0 {
		return
	}
	b.wg.Add(njobs)
	for r, on := range b.active {
		if on {
			b.tasks <- int32(r)
		}
	}
	b.wg.Wait()
}

// StepN advances all active replicas n timesteps.
func (b *Batch) StepN(n int) {
	for i := 0; i < n; i++ {
		b.Step()
	}
}

func (b *Batch) runStepWorker() {
	for {
		select {
		case r := <-b.tasks:
			b.engines[r].Step()
			if b.post != nil {
				b.post(int(r))
			}
			b.wg.Done()
		case <-b.quit:
			return
		}
	}
}

// SetStepObserver installs a sampled per-replica step-latency observer
// (see Engine.SetStepObserver); fn receives the replica index so
// instruments can label per-replica series. nil removes it.
func (b *Batch) SetStepObserver(every int, fn func(r int, d time.Duration)) {
	for r, e := range b.engines {
		if fn == nil {
			e.SetStepObserver(0, nil)
			continue
		}
		r := r
		e.SetStepObserver(every, func(d time.Duration) { fn(r, d) })
	}
}

// SetNeighborObserver installs a per-replica rebuild observer (see
// Engine.SetNeighborObserver). nil removes it.
func (b *Batch) SetNeighborObserver(fn func(r, pairs int)) {
	for r, e := range b.engines {
		if fn == nil {
			e.SetNeighborObserver(nil)
			continue
		}
		r := r
		e.SetNeighborObserver(func(pairs int) { fn(r, pairs) })
	}
}

func (b *Batch) shutdown() {
	b.once.Do(func() {
		close(b.quit)
		if b.fpool != nil {
			b.fpool.close()
		}
	})
}

// Close stops the batch's worker pools. The batch and its engines must
// not step afterwards. Optional — a collected Batch is shut down by a
// finalizer.
func (b *Batch) Close() {
	b.shutdown()
	runtime.SetFinalizer(b, nil)
}

// BuildSubstrate constructs the shareable static grid for this engine's
// system, or reports why the system is ineligible (no nonbonded pair
// potential, open box, no fixed atoms, interleaved fixed atoms).
func (e *Engine) BuildSubstrate() (*neighbor.StaticGrid, error) {
	if e.nlist == nil {
		return nil, fmt.Errorf("md: no neighbor list (nonbonded disabled)")
	}
	return neighbor.NewStaticGrid(e.cfg.Pair.Cutoff(), e.cfg.Skin, e.cfg.Box, e.state.Pos, e.state.Fixed)
}

// AttachSubstrate binds a shared static grid to this engine: the
// neighbor list rebuilds only its mobile side, the per-evaluation wrap
// pass covers only mobile atoms, and the integrator iterates the dense
// mobile index. The trajectory is bit-identical to an unattached engine;
// only the work per step changes. The grid must describe this engine's
// system exactly.
func (e *Engine) AttachSubstrate(sg *neighbor.StaticGrid) error {
	if e.nlist == nil {
		return fmt.Errorf("md: no neighbor list (nonbonded disabled)")
	}
	if cur := e.nlist.Static(); cur != nil && cur != sg {
		return fmt.Errorf("md: engine already attached to a different substrate")
	}
	if !sg.MatchesStatic(e.state.Pos) {
		return fmt.Errorf("md: substrate grid does not match this engine's static atoms")
	}
	if err := e.nlist.AttachStatic(sg); err != nil {
		return err
	}
	e.nMobileWrap = sg.NMobile()
	e.wrapFilled = false
	e.state.SetMobileIndex()
	return nil
}

// SubstrateShare caches substrate grids by system key so independently
// built engines of the same system — e.g. a dist worker's concurrently
// leased jobs that share a spec payload — share one grid instead of
// each paying the static build and scan. Safe for concurrent use. An
// ineligible system is cached as a miss and never retried.
type SubstrateShare struct {
	mu    sync.Mutex
	grids map[string]*neighbor.StaticGrid
}

// Attach tries to share a substrate grid with e under key, building it
// from e on first use. It reports whether e now shares a grid; failures
// (ineligible system, mismatched substrate) leave e untouched on its
// plain path.
func (s *SubstrateShare) Attach(key string, e *Engine) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.grids == nil {
		s.grids = make(map[string]*neighbor.StaticGrid)
	}
	sg, seen := s.grids[key]
	if !seen {
		g, err := e.BuildSubstrate()
		if err != nil {
			s.grids[key] = nil // negative cache
			return false
		}
		s.grids[key] = g
		sg = g
	}
	if sg == nil {
		return false
	}
	return e.AttachSubstrate(sg) == nil
}

// Shared reports whether key resolved to a shareable grid. An unknown
// key and a negative-cached ineligible system both report false.
func (s *SubstrateShare) Shared(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.grids[key] != nil
}
