package md

import (
	"fmt"

	"spice/internal/forcefield"
	"spice/internal/topology"
	"spice/internal/vec"
)

// TranslocationSpec assembles the paper's full system: an ssDNA strand
// threaded at the mouth of an alpha-hemolysin-like pore embedded in a
// membrane slab (Fig. 1 of the paper).
type TranslocationSpec struct {
	DNA      topology.DNAParams
	Pore     topology.PoreParams
	Membrane topology.MembraneParams
	Binding  []forcefield.BindingSite // nil = DefaultBindingSites
	NoWalls  bool                     // analytic pore only (faster)
	// Box, when fully set, runs the system under periodic boundaries
	// instead of open ones. A walled periodic system is
	// substrate-eligible: ensemble batches then share one static grid
	// across replicas (see Batch).
	Box vec.V

	DT      float64
	Gamma   float64
	Temp    float64
	Seed    uint64
	Workers int
	// PoreFriction multiplies the Langevin friction for beads inside
	// the pore lumen — the coarse-grained stand-in for the high
	// effective viscosity of single-file water in the barrel, which is
	// what makes the strand stretch as it is dragged through the
	// constriction (Fig. 3). 1 (or 0) disables the enhancement.
	PoreFriction float64
}

// DefaultTranslocation returns the spec used across the experiments:
// an n-nucleotide strand starting above the vestibule mouth.
func DefaultTranslocation(n int) TranslocationSpec {
	dna := topology.DefaultDNA(n)
	pore := topology.DefaultPore()
	dna.StartZ = pore.VestibuleLength + 4 // leading bead just above the mouth
	return TranslocationSpec{
		DNA:          dna,
		Pore:         pore,
		Membrane:     topology.DefaultMembrane(),
		NoWalls:      true,
		DT:           0.01,
		Gamma:        1,
		Temp:         300,
		Seed:         1,
		PoreFriction: 5,
	}
}

// TranslocationSystem is the assembled engine plus the indices needed by
// the SMD and analysis layers.
type TranslocationSystem struct {
	Engine *Engine
	// DNA holds the nucleotide bead indices; DNA[0] is the leading bead
	// (the paper steers the C3' atom of the leading nucleotide).
	DNA []int
	// Walls holds the fixed pore-wall bead indices (empty with NoWalls).
	Walls []int
	Spec  TranslocationSpec
}

// BuildTranslocation constructs the full system.
func BuildTranslocation(spec TranslocationSpec) (*TranslocationSystem, error) {
	top := topology.New()
	dnaIdx, dnaPos, err := topology.BuildDNA(top, spec.DNA)
	if err != nil {
		return nil, fmt.Errorf("md: building DNA: %w", err)
	}
	var wallIdx []int
	var wallPos []vec.V
	if !spec.NoWalls {
		p := spec.Pore
		wallIdx, wallPos = topology.BuildPoreWalls(top, p)
		// Explicit lipid head beads on the slab faces (Fig. 1's membrane)
		// when the spec asks for them; like the pore walls they are fixed
		// and appended after the DNA, so the static atoms stay a
		// contiguous suffix — the layout the shared substrate grid needs.
		if spec.Membrane.BeadSpacing > 0 {
			mIdx, mPos := topology.BuildMembrane(top, spec.Membrane, spec.Pore)
			wallIdx = append(wallIdx, mIdx...)
			wallPos = append(wallPos, mPos...)
		}
	}
	pos := make([]vec.V, 0, top.N())
	pos = append(pos, dnaPos...)
	pos = append(pos, wallPos...)

	pore := forcefield.NewPoreField(top, spec.Pore, spec.Membrane)
	binding := spec.Binding
	var bindTerm forcefield.Term
	if binding == nil {
		bindTerm = forcefield.DefaultBindingSites(dnaIdx)
	} else {
		bindTerm = &forcefield.BindingSites{Sites: binding, Atoms: dnaIdx}
	}

	pair := forcefield.Combined{
		Core: forcefield.WCA{Epsilon: 0.3, MaxCut: 12},
		Elec: forcefield.DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24},
	}

	var gammaFor func(i int, p vec.V) float64
	if spec.PoreFriction > 1 {
		base := spec.Gamma
		if base == 0 {
			base = 1
		}
		scaled := base * spec.PoreFriction
		pp := spec.Pore
		gammaFor = func(_ int, p vec.V) float64 {
			if p.Z > pp.VestibuleLength || p.Z < -pp.BarrelLength {
				return base
			}
			r := pp.AxialRadius(p.Z)
			if p.X*p.X+p.Y*p.Y > (r+2)*(r+2) {
				return base
			}
			return scaled
		}
	}

	eng, err := New(Config{
		Top:  top,
		Init: pos,
		Terms: []forcefield.Term{
			forcefield.Bonds{Top: top},
			forcefield.Angles{Top: top},
			pore,
			bindTerm,
		},
		Pair:     pair,
		Box:      spec.Box,
		DT:       spec.DT,
		Gamma:    spec.Gamma,
		Temp:     spec.Temp,
		Seed:     spec.Seed,
		Workers:  spec.Workers,
		GammaFor: gammaFor,
	})
	if err != nil {
		return nil, err
	}
	return &TranslocationSystem{Engine: eng, DNA: dnaIdx, Walls: wallIdx, Spec: spec}, nil
}

// StrandExtension returns the end-to-end distance of the DNA strand in Å —
// the observable behind Fig. 3's "the strand stretches as it nears the
// constriction".
func (ts *TranslocationSystem) StrandExtension() float64 {
	if len(ts.DNA) < 2 {
		return 0
	}
	st := ts.Engine.State()
	first := st.Pos[ts.DNA[0]]
	last := st.Pos[ts.DNA[len(ts.DNA)-1]]
	return vec.Dist(first, last)
}

// LeadZ returns the z coordinate of the leading bead.
func (ts *TranslocationSystem) LeadZ() float64 {
	return ts.Engine.State().Pos[ts.DNA[0]].Z
}
