package md

import (
	"bytes"
	"math"
	"testing"

	"spice/internal/forcefield"
	"spice/internal/topology"
	"spice/internal/trace"
	"spice/internal/vec"
)

// smallChain builds a free 8-bead chain with bonds and nonbonded terms.
func smallChain(t *testing.T, workers int, seed uint64) *Engine {
	t.Helper()
	top := topology.New()
	p := topology.DefaultDNA(8)
	_, pos, err := topology.BuildDNA(top, p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Top:  top,
		Init: pos,
		Terms: []forcefield.Term{
			forcefield.Bonds{Top: top},
			forcefield.Angles{Top: top},
		},
		Pair: forcefield.Combined{
			Core: forcefield.WCA{Epsilon: 0.3, MaxCut: 12},
			Elec: forcefield.DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24},
		},
		Seed:    seed,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	top := topology.New()
	top.AddAtom(topology.Atom{Mass: 1})
	if _, err := New(Config{Top: top}); err == nil {
		t.Fatal("missing positions accepted")
	}
	if _, err := New(Config{Top: top, Init: make([]vec.V, 1), DT: -1}); err == nil {
		t.Fatal("negative dt accepted")
	}
}

func TestEngineRunAdvances(t *testing.T) {
	eng := smallChain(t, 1, 1)
	eng.Run(50)
	st := eng.State()
	if st.Step != 50 {
		t.Fatalf("step = %d", st.Step)
	}
	if math.Abs(st.Time-0.5) > 1e-9 {
		t.Fatalf("time = %v", st.Time)
	}
	for i, p := range st.Pos {
		if !p.IsFinite() {
			t.Fatalf("atom %d at non-finite position %v", i, p)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	a := smallChain(t, 1, 42)
	b := smallChain(t, 1, 42)
	a.Run(200)
	b.Run(200)
	for i := range a.State().Pos {
		if a.State().Pos[i] != b.State().Pos[i] {
			t.Fatalf("same-seed runs diverged at atom %d", i)
		}
	}
	c := smallChain(t, 1, 43)
	c.Run(200)
	same := true
	for i := range a.State().Pos {
		if a.State().Pos[i] != c.State().Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestParallelForcesMatchSerial(t *testing.T) {
	// Build a big enough cluster to cross the parallel threshold.
	top := topology.New()
	p := topology.DefaultDNA(200)
	p.AngleK = 0
	_, pos, err := topology.BuildDNA(top, p)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *Engine {
		eng, err := New(Config{
			Top:   top,
			Init:  pos,
			Terms: []forcefield.Term{forcefield.Bonds{Top: top}},
			Pair: forcefield.Combined{
				Core: forcefield.WCA{Epsilon: 0.3, MaxCut: 12},
				Elec: forcefield.DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24},
			},
			Seed:    7,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	serial, parallel := mk(1), mk(8)
	fs := make([]vec.V, top.N())
	fp := make([]vec.V, top.N())
	es := serial.forces(pos, fs)
	ep := parallel.forces(pos, fp)
	if math.Abs(es-ep) > 1e-9*math.Abs(es) {
		t.Fatalf("energies differ: %v vs %v", es, ep)
	}
	for i := range fs {
		if vec.Dist(fs[i], fp[i]) > 1e-9*(1+fs[i].Norm()) {
			t.Fatalf("forces differ at %d: %v vs %v", i, fs[i], fp[i])
		}
	}
}

// TestParallelForcesMatchSerialTranslocation pins pooled-parallel vs
// serial agreement on the realistic system: a ~500-atom translocation
// build (200 DNA beads + fixed pore walls) with baked exclusions and the
// wall-wall inactive mask in play.
func TestParallelForcesMatchSerialTranslocation(t *testing.T) {
	mk := func(workers int) *Engine {
		spec := DefaultTranslocation(200)
		spec.NoWalls = false
		spec.Seed = 5
		spec.Workers = workers
		ts, err := BuildTranslocation(spec)
		if err != nil {
			t.Fatal(err)
		}
		return ts.Engine
	}
	serial := mk(1)
	n := serial.Topology().N()
	if n < 450 {
		t.Fatalf("system too small to be representative: %d atoms", n)
	}
	pos := serial.State().Pos
	fs := make([]vec.V, n)
	es := serial.forces(pos, fs)
	serial.nlist.Update(pos)
	if len(serial.nlist.Pairs) < parallelPairThreshold {
		t.Fatalf("only %d pairs; parallel path never engages", len(serial.nlist.Pairs))
	}
	for _, workers := range []int{2, 4, 7} {
		par := mk(workers)
		fp := make([]vec.V, n)
		ep := par.forces(pos, fp)
		if math.Abs(es-ep) > 1e-9*math.Max(1, math.Abs(es)) {
			t.Fatalf("workers=%d: energies differ: %v vs %v", workers, es, ep)
		}
		for i := range fs {
			if vec.Dist(fs[i], fp[i]) > 1e-9*(1+fs[i].Norm()) {
				t.Fatalf("workers=%d: forces differ at %d: %v vs %v", workers, i, fs[i], fp[i])
			}
		}
	}
}

// TestConcurrentStepCheckpointFrame stresses the public concurrency
// contract (Step vs Checkpoint vs Frame from other goroutines) with the
// worker pool active; run under -race it pins the pooled nonbonded path
// data-race free.
func TestConcurrentStepCheckpointFrame(t *testing.T) {
	top := topology.New()
	p := topology.DefaultDNA(200)
	p.AngleK = 0
	_, pos, err := topology.BuildDNA(top, p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Top:   top,
		Init:  pos,
		Terms: []forcefield.Term{forcefield.Bonds{Top: top}},
		Pair: forcefield.Combined{
			Core: forcefield.WCA{Epsilon: 0.3, MaxCut: 12},
			Elec: forcefield.DebyeHuckel{Lambda: 7.9, EpsR: 78.5, Cut: 24},
		},
		Seed:    3,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Run(100)
	}()
	for i := 0; ; i++ {
		select {
		case <-done:
			if eng.State().Step != 100 {
				t.Fatalf("step = %d", eng.State().Step)
			}
			return
		default:
			ck := eng.Checkpoint()
			fr := eng.Frame()
			if len(ck.Pos) != top.N() || len(fr.Pos) != top.N() {
				t.Fatal("snapshot wrong size")
			}
		}
	}
}

// TestCloneTermsNotAliased is the regression test for the Clone aliasing
// bug: parent and clone appending terms concurrently used to write the
// same backing-array slot.
func TestCloneTermsNotAliased(t *testing.T) {
	a := smallChain(t, 1, 77)
	a.Run(10)
	clone, err := a.Clone(78)
	if err != nil {
		t.Fatal(err)
	}
	parentTerm := forcefield.Bonds{Top: a.Topology()}
	cloneTerm := forcefield.Angles{Top: clone.Topology()}
	a.AddTerm(parentTerm)
	clone.AddTerm(cloneTerm)
	if got := a.cfg.Terms[len(a.cfg.Terms)-1]; got != forcefield.Term(parentTerm) {
		t.Fatalf("clone's AddTerm overwrote parent's term slot: %T", got)
	}
	if got := clone.cfg.Terms[len(clone.cfg.Terms)-1]; got != forcefield.Term(cloneTerm) {
		t.Fatalf("parent's AddTerm overwrote clone's term slot: %T", got)
	}
	// Both engines must still step cleanly with their own term sets.
	a.Step()
	clone.Step()
}

func TestMomentumConservationOfInternalForces(t *testing.T) {
	eng := smallChain(t, 4, 5)
	f := make([]vec.V, eng.Topology().N())
	eng.forces(eng.State().Pos, f)
	sum := vec.Sum(f)
	if sum.Norm() > 1e-9 {
		t.Fatalf("internal forces sum to %v", sum)
	}
}

func TestCheckpointRestoreResumesIdentically(t *testing.T) {
	a := smallChain(t, 1, 11)
	a.Run(100)
	ck := a.Checkpoint()

	// Continue original.
	a.Run(100)

	// Restore into a fresh engine with the same seed: the integrator RNG
	// stream differs (it has advanced in a), so compare restart-vs-
	// restart instead.
	b := smallChain(t, 1, 11)
	if err := b.Restore(ck); err != nil {
		t.Fatal(err)
	}
	c := smallChain(t, 1, 11)
	if err := c.Restore(ck); err != nil {
		t.Fatal(err)
	}
	b.Run(100)
	c.Run(100)
	for i := range b.State().Pos {
		if b.State().Pos[i] != c.State().Pos[i] {
			t.Fatalf("restored twins diverged at atom %d", i)
		}
	}
	if b.State().Step != 200 {
		t.Fatalf("restored step = %d", b.State().Step)
	}
}

func TestRestoreRejectsWrongSize(t *testing.T) {
	a := smallChain(t, 1, 1)
	ck := a.Checkpoint()
	ck.Pos = ck.Pos[:3]
	ck.Vel = ck.Vel[:3]
	if err := a.Restore(ck); err == nil {
		t.Fatal("wrong-size checkpoint accepted")
	}
}

func TestCloneDoesNotPerturbOriginal(t *testing.T) {
	a := smallChain(t, 1, 21)
	a.Run(50)
	ref := a.Checkpoint()

	clone, err := a.Clone(99)
	if err != nil {
		t.Fatal(err)
	}
	clone.Run(200)

	// Original state untouched by the clone's run.
	now := a.Checkpoint()
	for i := range ref.Pos {
		if ref.Pos[i] != now.Pos[i] || ref.Vel[i] != now.Vel[i] {
			t.Fatalf("clone perturbed original at atom %d", i)
		}
	}
	// Clone starts from the same state...
	if clone.State().Step != ref.Step+200 {
		t.Fatalf("clone step = %d", clone.State().Step)
	}
	// ...but with a different RNG stream diverges from the original's
	// future.
	a.Run(200)
	same := true
	for i := range a.State().Pos {
		if a.State().Pos[i] != clone.State().Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clone with different seed tracked the original exactly")
	}
}

func TestRunWithEarlyStop(t *testing.T) {
	eng := smallChain(t, 1, 1)
	calls := 0
	eng.RunWith(100, func(step int) bool {
		calls++
		return step < 9
	})
	if calls != 10 {
		t.Fatalf("callback ran %d times, want 10", calls)
	}
	if eng.State().Step != 10 {
		t.Fatalf("step = %d, want 10", eng.State().Step)
	}
}

func TestEnergiesBreakdown(t *testing.T) {
	eng := smallChain(t, 1, 1)
	eng.Step()
	en := eng.Energies()
	for _, key := range []string{"bond", "angle", "nonbonded"} {
		if _, ok := en[key]; !ok {
			t.Fatalf("missing energy term %q in %v", key, en)
		}
	}
}

func TestExternalForceAffectsDynamics(t *testing.T) {
	a := smallChain(t, 1, 31)
	b := smallChain(t, 1, 31)
	b.External.Set(0, vec.V{Z: 50})
	a.Run(200)
	b.Run(200)
	// The pushed bead should end up displaced along +z relative to twin.
	dz := b.State().Pos[0].Z - a.State().Pos[0].Z
	if dz <= 0 {
		t.Fatalf("external +z force displaced bead by %v", dz)
	}
}

func TestBuildTranslocation(t *testing.T) {
	spec := DefaultTranslocation(12)
	spec.Seed = 3
	ts, err := BuildTranslocation(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.DNA) != 12 {
		t.Fatalf("DNA beads = %d", len(ts.DNA))
	}
	// Leading bead starts above the vestibule mouth.
	if ts.LeadZ() <= spec.Pore.VestibuleLength {
		t.Fatalf("lead z = %v", ts.LeadZ())
	}
	if ext := ts.StrandExtension(); math.Abs(ext-11*spec.DNA.BondR0) > 1e-6 {
		t.Fatalf("initial extension = %v", ext)
	}
	// Short run stays finite and thermalizes.
	ts.Engine.Run(200)
	for _, p := range ts.Engine.State().Pos {
		if !p.IsFinite() {
			t.Fatal("non-finite position after run")
		}
	}
}

func TestBuildTranslocationWithWalls(t *testing.T) {
	spec := DefaultTranslocation(6)
	spec.NoWalls = false
	ts, err := BuildTranslocation(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Walls) == 0 {
		t.Fatal("no wall beads with NoWalls=false")
	}
	ts.Engine.Run(20)
	// Wall beads must not move.
	st := ts.Engine.State()
	for _, w := range ts.Walls {
		if st.Vel[w] != vec.Zero {
			t.Fatalf("wall bead %d moving", w)
		}
	}
}

func TestNVEEngineConservesEnergy(t *testing.T) {
	top := topology.New()
	p := topology.DefaultDNA(6)
	p.AngleK = 0
	_, pos, err := topology.BuildDNA(top, p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Top:   top,
		Init:  pos,
		Terms: []forcefield.Term{forcefield.Bonds{Top: top}},
		DT:    0.001,
		NVE:   true,
		Seed:  13,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	e0 := eng.TotalEnergy()
	eng.Run(5000)
	e1 := eng.TotalEnergy()
	if math.Abs(e1-e0) > 1e-3*math.Max(1, math.Abs(e0)) {
		t.Fatalf("NVE drift: %v -> %v", e0, e1)
	}
}

func TestPoreFrictionIncreasesDrag(t *testing.T) {
	// Pulling the strand through the pore must cost more work with the
	// confined-water friction enhancement on.
	work := func(scale float64) float64 {
		spec := DefaultTranslocation(6)
		spec.Seed = 99
		spec.PoreFriction = scale
		ts, err := BuildTranslocation(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts.Engine.Run(500)
		ext := forcefield.NewExternalForces()
		_ = ext
		// Drag the lead bead down with a constant strong force and
		// measure how far it gets in fixed time: more friction, less
		// progress.
		ts.Engine.External.Set(ts.DNA[0], vec.V{Z: -20})
		ts.Engine.Run(4000)
		return ts.LeadZ()
	}
	zLow, zHigh := work(1), work(10)
	if zHigh <= zLow {
		t.Fatalf("pore friction should slow descent: scale1 z=%v scale10 z=%v", zLow, zHigh)
	}
}

// buildResumeEngine builds the small translocation engine used by the
// checkpoint-resume tests (fixed worker count: chunk boundaries are part of
// the floating-point accumulation order).
func buildResumeEngine(t *testing.T) *Engine {
	t.Helper()
	spec := DefaultTranslocation(6)
	spec.Seed = 11
	spec.DT = 0.02
	spec.Workers = 2
	ts, err := BuildTranslocation(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ts.Engine
}

// TestCheckpointResumeBitExact pins the property the dist runtime's
// checkpoint-resume depends on: restoring a serialized checkpoint into a
// fresh engine and continuing produces bit-identical state to the
// uninterrupted run — thermostat RNG stream and neighbor-list rebuild
// schedule included.
func TestCheckpointResumeBitExact(t *testing.T) {
	const total, cut = 400, 150

	ref := buildResumeEngine(t)
	ref.Run(total)

	a := buildResumeEngine(t)
	a.Run(cut)
	ck := a.Checkpoint()
	if len(ck.RNG) == 0 {
		t.Fatal("checkpoint carries no RNG state")
	}
	if len(ck.NeighborRef) != a.Topology().N() {
		t.Fatalf("checkpoint carries %d neighbor-ref positions, want %d", len(ck.NeighborRef), a.Topology().N())
	}

	// Round-trip through the wire format, as dist does.
	var buf bytes.Buffer
	if err := trace.WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	ck2, err := trace.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Resume on a fresh engine whose own history is deliberately desynced.
	b := buildResumeEngine(t)
	b.Run(37)
	if err := b.Restore(ck2); err != nil {
		t.Fatal(err)
	}
	b.Run(total - cut)

	rs, bs := ref.State(), b.State()
	if rs.Step != bs.Step {
		t.Fatalf("step = %d, want %d", bs.Step, rs.Step)
	}
	for i := range rs.Pos {
		if rs.Pos[i] != bs.Pos[i] {
			t.Fatalf("atom %d position diverged after resume: %v != %v", i, bs.Pos[i], rs.Pos[i])
		}
		if rs.Vel[i] != bs.Vel[i] {
			t.Fatalf("atom %d velocity diverged after resume: %v != %v", i, bs.Vel[i], rs.Vel[i])
		}
	}
}

// TestCloneIndependentOfParentRNG pins that Clone still derives its stream
// from the given seed (not the parent's checkpointed stream).
func TestCloneRNGIndependent(t *testing.T) {
	a := buildResumeEngine(t)
	a.Run(20)
	c1, err := a.Clone(123)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := a.Clone(456)
	if err != nil {
		t.Fatal(err)
	}
	c1.Run(50)
	c2.Run(50)
	same := true
	for i := range c1.State().Pos {
		if c1.State().Pos[i] != c2.State().Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clones with different seeds produced identical trajectories")
	}
}
