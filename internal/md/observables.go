package md

import (
	"fmt"
	"math"

	"spice/internal/units"
	"spice/internal/vec"
)

// Recorder accumulates time-series observables from a running engine —
// the monitoring stream the steering framework exposes to visualizers
// (instantaneous temperature, energies) plus the transport diagnostics
// (mean-squared displacement) used to validate the Langevin substrate.
type Recorder struct {
	eng *Engine
	// Every controls the sampling stride in steps.
	Every int

	ref      []vec.V // positions at attach time (for MSD)
	refSet   bool
	times    []float64
	temps    []float64
	epots    []float64
	msds     []float64
	msdAtoms []int
}

// NewRecorder attaches a recorder to eng, tracking MSD over atoms (nil =
// all mobile atoms).
func NewRecorder(eng *Engine, every int, atoms []int) *Recorder {
	if every <= 0 {
		every = 10
	}
	r := &Recorder{eng: eng, Every: every}
	if atoms == nil {
		for i, a := range eng.Topology().Atoms {
			if !a.Fixed {
				atoms = append(atoms, i)
			}
		}
	}
	r.msdAtoms = atoms
	return r
}

// Sample records the current state if the step lines up with Every.
// Call it after each engine step (or drive it via Engine.RunWith).
func (r *Recorder) Sample() {
	st := r.eng.State()
	if !r.refSet {
		r.ref = append([]vec.V(nil), st.Pos...)
		r.refSet = true
	}
	if st.Step%int64(r.Every) != 0 {
		return
	}
	r.times = append(r.times, st.Time)
	r.temps = append(r.temps, st.Temperature())
	r.epots = append(r.epots, st.Epot)
	msd := 0.0
	for _, i := range r.msdAtoms {
		msd += vec.Dist2(st.Pos[i], r.ref[i])
	}
	if len(r.msdAtoms) > 0 {
		msd /= float64(len(r.msdAtoms))
	}
	r.msds = append(r.msds, msd)
}

// Run advances the engine n steps, sampling as it goes.
func (r *Recorder) Run(n int) {
	for i := 0; i < n; i++ {
		r.eng.Step()
		r.Sample()
	}
}

// N returns the number of recorded samples.
func (r *Recorder) N() int { return len(r.times) }

// Times, Temperatures, PotentialEnergies and MSDs expose the series.
func (r *Recorder) Times() []float64             { return r.times }
func (r *Recorder) Temperatures() []float64      { return r.temps }
func (r *Recorder) PotentialEnergies() []float64 { return r.epots }
func (r *Recorder) MSDs() []float64              { return r.msds }

// MeanTemperature averages the recorded kinetic temperature.
func (r *Recorder) MeanTemperature() float64 {
	if len(r.temps) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range r.temps {
		s += t
	}
	return s / float64(len(r.temps))
}

// DiffusionCoefficient fits MSD(t) = 6·D·t over the second half of the
// recorded series (the ballistic-to-diffusive crossover is excluded) and
// returns D in Å²/ps.
func (r *Recorder) DiffusionCoefficient() (float64, error) {
	n := len(r.times)
	if n < 8 {
		return 0, fmt.Errorf("md: need >= 8 samples for a diffusion fit, have %d", n)
	}
	lo := n / 2
	var sxx, sxy float64
	t0, m0 := meanOf(r.times[lo:]), meanOf(r.msds[lo:])
	for i := lo; i < n; i++ {
		dt := r.times[i] - t0
		sxx += dt * dt
		sxy += dt * (r.msds[i] - m0)
	}
	if sxx == 0 {
		return 0, fmt.Errorf("md: degenerate time axis")
	}
	slope := sxy / sxx
	if slope <= 0 || math.IsNaN(slope) {
		return 0, fmt.Errorf("md: non-diffusive MSD (slope %g)", slope)
	}
	return slope / 6, nil
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// EinsteinD returns the Langevin prediction D = kT/(m·γ) in Å²/ps for a
// free particle — the reference the engine's transport is validated
// against.
func EinsteinD(temp, mass, gamma float64) float64 {
	return units.KT(temp) / (mass * gamma) * units.AccelUnit
}
