package md

import (
	"testing"
	"time"
)

func TestStepObserverSampling(t *testing.T) {
	eng := smallChain(t, 1, 7)
	defer eng.Close()

	var n int
	var total time.Duration
	eng.SetStepObserver(4, func(d time.Duration) {
		n++
		total += d
		if d < 0 {
			t.Fatalf("negative step latency %v", d)
		}
	})
	eng.Run(16)
	if n != 4 {
		t.Fatalf("every=4 over 16 steps observed %d samples, want 4", n)
	}
	if total <= 0 {
		t.Fatalf("observed zero total latency over %d samples", n)
	}

	// Removing the observer stops sampling; the engine keeps stepping.
	eng.SetStepObserver(0, nil)
	eng.Run(8)
	if n != 4 {
		t.Fatalf("observer fired %d times after removal, want still 4", n)
	}
}

// TestStepObserverDeterminism: instrumentation may never perturb the
// trajectory — the whole dist layer's bit-identical story rides on it.
func TestStepObserverDeterminism(t *testing.T) {
	plain := smallChain(t, 1, 11)
	defer plain.Close()
	sampled := smallChain(t, 1, 11)
	defer sampled.Close()
	sampled.SetStepObserver(2, func(time.Duration) {})

	plain.Run(50)
	sampled.Run(50)
	for i := range plain.state.Pos {
		if plain.state.Pos[i] != sampled.state.Pos[i] {
			t.Fatalf("observer perturbed trajectory at atom %d: %v != %v",
				i, plain.state.Pos[i], sampled.state.Pos[i])
		}
	}
}

func TestNeighborObserver(t *testing.T) {
	eng := smallChain(t, 1, 13)
	defer eng.Close()

	rebuilds, lastPairs := 0, -1
	eng.SetNeighborObserver(func(pairs int) {
		rebuilds++
		lastPairs = pairs
	})
	eng.Run(25)
	if rebuilds < 1 {
		t.Fatal("neighbor observer never fired over 25 steps")
	}
	if lastPairs != eng.NeighborStats().Pairs {
		t.Fatalf("observer saw %d pairs, list holds %d", lastPairs, eng.NeighborStats().Pairs)
	}
	if got := eng.NeighborStats().Rebuilds; got != rebuilds {
		t.Fatalf("observer counted %d rebuilds, list stats say %d", rebuilds, got)
	}
}
