// Package md is the molecular-dynamics engine at the bottom of the SPICE
// stack — the stand-in for NAMD in the paper's architecture. It combines a
// topology, force-field terms, a neighbor-listed nonbonded potential and a
// Langevin (or NVE) integrator, evaluates nonbonded forces in parallel
// across a goroutine worker pool, and supports the checkpoint/clone
// operations the RealityGrid steering layer relies on.
package md

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spice/internal/forcefield"
	"spice/internal/integrate"
	"spice/internal/neighbor"
	"spice/internal/topology"
	"spice/internal/trace"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// parallelPairThreshold is the pair count below which the serial
// nonbonded path is always faster than dispatching to the pool.
const parallelPairThreshold = 256

// Config assembles an Engine.
type Config struct {
	Top  *topology.Topology
	Init []vec.V // initial positions, one per atom

	// Terms are the bonded/field contributions (bonds, angles, pore
	// field, binding sites...). The engine adds nonbonded itself.
	Terms []forcefield.Term
	// Pair is the nonbonded potential; nil disables nonbonded forces.
	Pair forcefield.PairPotential

	Box  vec.V   // periodic box; zero components = open boundaries
	Skin float64 // neighbor-list skin, Å (default 2)

	DT    float64 // timestep, ps (default 0.01 = 10 fs)
	Gamma float64 // Langevin friction, 1/ps (default 1)
	Temp  float64 // K (default 300)
	NVE   bool    // use velocity Verlet instead of Langevin
	// GammaFor optionally makes the Langevin friction position-
	// dependent (e.g. higher inside the pore lumen, where confined
	// water is effectively more viscous). Ignored under NVE.
	GammaFor func(i int, p vec.V) float64

	Seed    uint64 // RNG seed (default 1)
	Workers int    // parallel force workers (default NumCPU)
}

// Engine is a runnable simulation.
type Engine struct {
	cfg   Config
	top   *topology.Topology
	state *integrate.State
	integ interface {
		integrate.Integrator
		Reprime()
		Prime()
	}
	nlist *neighbor.List
	rng   *xrand.Source
	// ff is e.forces bound once: a method value allocates at every
	// bind, and Step is the hottest call site in the repo.
	ff integrate.ForceFunc

	// External receives steering forces from the IMD/steering layer.
	External *forcefield.ExternalForces

	workers int
	pool    *forcePool
	eval    nbEval

	// charges/radii are the per-atom pair-potential parameters, kept as
	// flat slices so the pair loop never loads whole Atom structs.
	charges []float64
	radii   []float64
	// wrapPos is the scratch for positions wrapped into the primary
	// cell, refreshed once per nonbonded evaluation so the pair kernels
	// can use the branch-based minimum image instead of math.Round.
	wrapPos []vec.V
	// nMobileWrap, when > 0, limits the per-evaluation wrap pass to the
	// mobile prefix: a shared substrate grid guarantees atoms from
	// nMobileWrap on never move, so their wrapped coordinates are filled
	// once (wrapFilled) and reused — identical values, O(mobile) per step.
	nMobileWrap int
	wrapFilled  bool
	// poolShared marks a pool owned by a Batch rather than this engine;
	// Close/finalizer must then leave it running.
	poolShared bool
	// adopted guards against an engine joining two Batches.
	adopted bool

	energies map[string]float64
	mu       sync.Mutex // guards checkpoint vs step from other goroutines

	// Sampled step-latency observer (SetStepObserver). The counter is a
	// plain int because Step is only ever driven from one goroutine; the
	// nil check is the only cost an uninstrumented engine pays.
	obsEvery int
	obsLeft  int
	obsFn    func(d time.Duration)
}

// forcePool is the persistent nonbonded worker pool: long-lived goroutines
// started once in New and reused by every Step. Workers reference only the
// pool, never the Engine, so an abandoned Engine stays collectable; its
// finalizer (or an explicit Close) shuts the goroutines down.
type forcePool struct {
	tasks chan poolTask
	quit  chan struct{}
	once  sync.Once
}

type poolTask struct {
	ev *nbEval
	w  int
}

func newForcePool(workers int) *forcePool {
	p := &forcePool{
		tasks: make(chan poolTask, workers),
		quit:  make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *forcePool) run() {
	for {
		select {
		case t := <-p.tasks:
			t.ev.runChunk(t.w)
			t.ev.wg.Done()
		case <-p.quit:
			return
		}
	}
}

func (p *forcePool) close() { p.once.Do(func() { close(p.quit) }) }

// nbEval is the state of one parallel nonbonded evaluation. It lives in
// the Engine and is reused every step; only the pos/pairs slices change.
type nbEval struct {
	e        *Engine
	pos      []vec.V
	pairs    []neighbor.Pair
	chunk    int
	energies []float64
	bufs     []workerBuf
	wg       sync.WaitGroup
}

// workerBuf is a sparsely-zeroed per-worker force accumulator: instead of
// clearing all N entries per evaluation (O(N·workers) per step), each
// entry is lazily reset the first time the current epoch touches it, and
// only touched entries are merged back.
type workerBuf struct {
	f       []vec.V
	stamp   []uint32
	epoch   uint32
	touched []int32
}

func (b *workerBuf) reset(n int) {
	if cap(b.f) < n {
		b.f = make([]vec.V, n)
		b.stamp = make([]uint32, n)
		b.epoch = 0
	}
	b.f = b.f[:n]
	b.stamp = b.stamp[:n]
	b.touched = b.touched[:0]
	b.epoch++
	if b.epoch == 0 { // wrapped: stamps are stale, clear them once
		for i := range b.stamp {
			b.stamp[i] = 0
		}
		b.epoch = 1
	}
}

// add accumulates df into slot i, zeroing the slot on first touch.
func (b *workerBuf) add(i int32, s float64, d vec.V) {
	if b.stamp[i] != b.epoch {
		b.stamp[i] = b.epoch
		b.f[i] = vec.Zero
		b.touched = append(b.touched, i)
	}
	b.f[i].AddScaled(s, d)
}

// runChunk evaluates the w-th contiguous slice of the pair list into the
// w-th worker buffer. Chunk 0 is always run by the caller directly into
// the shared force array, so worker buffers exist only for chunks >= 1.
func (ev *nbEval) runChunk(w int) {
	lo := w * ev.chunk
	hi := lo + ev.chunk
	if hi > len(ev.pairs) {
		hi = len(ev.pairs)
	}
	ev.energies[w] = ev.e.pairRangeSparse(ev.pos, &ev.bufs[w], ev.pairs[lo:hi])
}

// New validates cfg and builds an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Top == nil {
		return nil, fmt.Errorf("md: nil topology")
	}
	if err := cfg.Top.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Init) != cfg.Top.N() {
		return nil, fmt.Errorf("md: %d initial positions for %d atoms", len(cfg.Init), cfg.Top.N())
	}
	if cfg.DT == 0 {
		cfg.DT = 0.01
	}
	if cfg.DT < 0 {
		return nil, fmt.Errorf("md: negative timestep %g", cfg.DT)
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1
	}
	if cfg.Temp == 0 {
		cfg.Temp = 300
	}
	if cfg.Skin == 0 {
		cfg.Skin = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	// The Terms slice is configuration shared with the caller (and, via
	// Clone, with a parent engine); copy it so a later AddTerm on either
	// side cannot overwrite a slot in a shared backing array.
	cfg.Terms = append([]forcefield.Term(nil), cfg.Terms...)

	e := &Engine{
		cfg:      cfg,
		top:      cfg.Top,
		rng:      xrand.New(cfg.Seed),
		External: forcefield.NewExternalForces(),
		workers:  cfg.Workers,
		energies: make(map[string]float64),
	}

	n := cfg.Top.N()
	e.state = integrate.NewState(n)
	copy(e.state.Pos, cfg.Init)
	for i, a := range cfg.Top.Atoms {
		e.state.Mass[i] = a.Mass
		e.state.Fixed[i] = a.Fixed
	}
	e.state.InitVelocities(cfg.Temp, e.rng)

	if cfg.Pair != nil {
		e.nlist = neighbor.NewList(cfg.Pair.Cutoff(), cfg.Skin, cfg.Box)
		e.nlist.Workers = e.workers
		// Bake exclusions into the list: bonded 1-2/1-3 partners from
		// the topology, plus wall-wall pairs (both atoms fixed), which
		// never matter.
		e.nlist.SetExclusions(cfg.Top.ExclusionLists())
		fixed := make([]bool, n)
		for i, a := range cfg.Top.Atoms {
			fixed[i] = a.Fixed
		}
		e.nlist.SetInactive(fixed)

		e.charges = make([]float64, n)
		e.radii = make([]float64, n)
		for i, a := range cfg.Top.Atoms {
			e.charges[i] = a.Charge
			e.radii[i] = a.Radius
		}
	}

	if cfg.NVE {
		e.integ = &integrate.VelocityVerlet{DT: cfg.DT}
	} else {
		lg := integrate.NewLangevin(cfg.DT, cfg.Gamma, cfg.Temp, e.rng.Split())
		lg.GammaFor = cfg.GammaFor
		e.integ = lg
	}

	e.ff = e.forces
	if cfg.Pair != nil && e.workers > 1 {
		// Persistent worker pool, started once and reused by every
		// Step. Chunk 0 runs on the calling goroutine, so only
		// workers-1 pool goroutines and buffers are needed.
		e.pool = newForcePool(e.workers - 1)
		e.eval.e = e
		e.eval.energies = make([]float64, e.workers)
		e.eval.bufs = make([]workerBuf, e.workers)
		// Engines are routinely created in bulk (sweeps, campaigns,
		// clones) and rarely Closed explicitly; tie pool shutdown to
		// collection. Workers hold no reference back to the Engine, so
		// the finalizer can run.
		runtime.SetFinalizer(e, func(e *Engine) { e.pool.close() })
	}
	return e, nil
}

// Close stops the engine's worker pool. Optional: an unreachable Engine's
// pool is also shut down by a finalizer. The engine must not Step after
// Close.
func (e *Engine) Close() {
	if e.pool != nil && !e.poolShared {
		e.pool.close()
		runtime.SetFinalizer(e, nil)
	}
}

// State exposes the dynamical state (read it between steps only).
func (e *Engine) State() *integrate.State { return e.state }

// Topology returns the engine's topology.
func (e *Engine) Topology() *topology.Topology { return e.top }

// Temperature returns the configured thermostat temperature (K).
func (e *Engine) Temperature() float64 { return e.cfg.Temp }

// Timestep returns dt in ps.
func (e *Engine) Timestep() float64 { return e.cfg.DT }

// AddTerm appends a force-field term at runtime (used by SMD and IMD).
func (e *Engine) AddTerm(t forcefield.Term) { e.cfg.Terms = append(e.cfg.Terms, t) }

// Energies returns the per-term potential-energy breakdown from the most
// recent force evaluation (term name -> kcal/mol).
func (e *Engine) Energies() map[string]float64 {
	out := make(map[string]float64, len(e.energies))
	for k, v := range e.energies {
		out[k] = v
	}
	return out
}

// forces is the integrate.ForceFunc: bonded/field terms serially (cheap),
// nonbonded pairs across the worker pool, external steering forces last.
func (e *Engine) forces(pos []vec.V, f []vec.V) float64 {
	total := 0.0
	for _, t := range e.cfg.Terms {
		en := t.AddForces(pos, f)
		e.energies[t.Name()] = en
		total += en
	}
	if en := e.External.AddForces(pos, f); en != 0 {
		total += en
	}
	if e.nlist != nil {
		e.nlist.Update(pos)
		en := e.nonbonded(pos, f)
		e.energies["nonbonded"] = en
		total += en
	}
	return total
}

// nonbonded evaluates the pair potential over the neighbor list. Large
// lists are split into contiguous chunks: chunk 0 runs on the calling
// goroutine straight into f, the rest are dispatched to the persistent
// worker pool with sparsely-zeroed per-worker buffers that are merged
// (touched indices only) afterwards. Chunk boundaries depend only on the
// pair count and worker count, so trajectories stay deterministic.
func (e *Engine) nonbonded(pos []vec.V, f []vec.V) float64 {
	pairs := e.nlist.Pairs
	if len(pairs) == 0 {
		return 0
	}
	// Wrap positions once (O(N)) so every per-pair minimum image
	// (O(pairs)) is a compare instead of a math.Round. With a substrate
	// attached, the static suffix is wrapped once and reused.
	wp := pos
	if e.cfg.Box != vec.Zero {
		if cap(e.wrapPos) < len(pos) {
			e.wrapPos = make([]vec.V, len(pos))
			e.wrapFilled = false
		}
		wp = e.wrapPos[:len(pos)]
		lim := len(pos)
		if e.nMobileWrap > 0 {
			if !e.wrapFilled {
				for i := e.nMobileWrap; i < len(pos); i++ {
					wp[i] = vec.Wrap(pos[i], e.cfg.Box)
				}
				e.wrapFilled = true
			}
			lim = e.nMobileWrap
		}
		for i := 0; i < lim; i++ {
			wp[i] = vec.Wrap(pos[i], e.cfg.Box)
		}
	}
	nw := e.workers
	if nw == 1 || e.pool == nil || len(pairs) < parallelPairThreshold {
		return e.pairRange(wp, f, pairs)
	}

	ev := &e.eval
	ev.pos, ev.pairs = wp, pairs
	ev.chunk = (len(pairs) + nw - 1) / nw
	nchunks := (len(pairs) + ev.chunk - 1) / ev.chunk
	n := len(pos)
	for w := 1; w < nchunks; w++ {
		ev.bufs[w].reset(n)
	}
	ev.wg.Add(nchunks - 1)
	for w := 1; w < nchunks; w++ {
		e.pool.tasks <- poolTask{ev, w}
	}
	total := e.pairRange(wp, f, pairs[:ev.chunk])
	ev.wg.Wait()
	ev.pos, ev.pairs = nil, nil

	for w := 1; w < nchunks; w++ {
		total += ev.energies[w]
		buf := &ev.bufs[w]
		for _, i := range buf.touched {
			f[i].AddInPlace(buf.f[i])
		}
	}
	return total
}

// pairRange evaluates pairs into f. pos must be wrapped into the primary
// cell (see nonbonded). The standard Combined potential is dispatched as
// a concrete type so the per-pair EnergyForce call is static and
// inlinable; anything else goes through the interface.
func (e *Engine) pairRange(pos []vec.V, f []vec.V, pairs []neighbor.Pair) float64 {
	if pot, ok := e.cfg.Pair.(forcefield.Combined); ok {
		return pairKernel(pot, e.charges, e.radii, e.cfg.Box, pos, f, pairs)
	}
	return pairKernel(e.cfg.Pair, e.charges, e.radii, e.cfg.Box, pos, f, pairs)
}

// pairRangeSparse is pairRange accumulating into a sparse worker buffer.
func (e *Engine) pairRangeSparse(pos []vec.V, buf *workerBuf, pairs []neighbor.Pair) float64 {
	if pot, ok := e.cfg.Pair.(forcefield.Combined); ok {
		return pairKernelSparse(pot, e.charges, e.radii, e.cfg.Box, pos, buf, pairs)
	}
	return pairKernelSparse(e.cfg.Pair, e.charges, e.radii, e.cfg.Box, pos, buf, pairs)
}

func pairKernel[P forcefield.PairPotential](pot P, q, s []float64, box vec.V, pos []vec.V, f []vec.V, pairs []neighbor.Pair) float64 {
	total := 0.0
	for _, p := range pairs {
		i, j := int(p.I), int(p.J)
		d := vec.MinImageWrapped(pos[i].Sub(pos[j]), box)
		r2 := d.Norm2()
		en, g := pot.EnergyForce(r2, q[i], q[j], s[i], s[j])
		if en == 0 && g == 0 {
			continue
		}
		total += en
		f[i].AddScaled(g, d)
		f[j].AddScaled(-g, d)
	}
	return total
}

func pairKernelSparse[P forcefield.PairPotential](pot P, q, s []float64, box vec.V, pos []vec.V, buf *workerBuf, pairs []neighbor.Pair) float64 {
	total := 0.0
	for _, p := range pairs {
		i, j := int(p.I), int(p.J)
		d := vec.MinImageWrapped(pos[i].Sub(pos[j]), box)
		r2 := d.Norm2()
		en, g := pot.EnergyForce(r2, q[i], q[j], s[i], s[j])
		if en == 0 && g == 0 {
			continue
		}
		total += en
		buf.add(p.I, g, d)
		buf.add(p.J, -g, d)
	}
	return total
}

// NeighborStats returns rebuild-cadence and pair-count metrics from the
// engine's neighbor list (zero Stats when nonbonded forces are disabled).
func (e *Engine) NeighborStats() neighbor.Stats {
	if e.nlist == nil {
		return neighbor.Stats{}
	}
	return e.nlist.Statistics()
}

// SetStepObserver installs a sampled step-latency observer: one Step in
// every is timed with the wall clock and fn invoked with the duration.
// fn runs on the stepping goroutine after the engine lock is released —
// it may read NeighborStats or publish into atomic instruments, but must
// not call back into Step/Run. Sampling keeps the uninstrumented steps
// on the exact hot path (a single nil check); every <= 0 or a nil fn
// removes the observer.
func (e *Engine) SetStepObserver(every int, fn func(d time.Duration)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if every <= 0 || fn == nil {
		e.obsEvery, e.obsLeft, e.obsFn = 0, 0, nil
		return
	}
	e.obsEvery, e.obsLeft, e.obsFn = every, every, fn
}

// SetNeighborObserver installs fn as the neighbor-list rebuild hook: it
// is invoked with the new pair count after every rebuild, on the
// goroutine driving the force evaluation, with no allocations. A no-op
// when nonbonded forces are disabled; nil removes the hook.
func (e *Engine) SetNeighborObserver(fn func(pairs int)) {
	if e.nlist != nil {
		e.nlist.OnRebuild = fn
	}
}

// Step advances the simulation by one timestep.
func (e *Engine) Step() {
	if e.obsFn != nil {
		e.obsLeft--
		if e.obsLeft <= 0 {
			e.obsLeft = e.obsEvery
			t0 := time.Now()
			e.mu.Lock()
			e.integ.Step(e.state, e.ff)
			e.mu.Unlock()
			e.obsFn(time.Since(t0))
			return
		}
	}
	e.mu.Lock()
	e.integ.Step(e.state, e.ff)
	e.mu.Unlock()
}

// Run advances n timesteps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunWith advances n timesteps, invoking cb after every step; cb may
// inspect state and mutate External forces. Returning false stops early.
func (e *Engine) RunWith(n int, cb func(step int) bool) {
	for i := 0; i < n; i++ {
		e.Step()
		if cb != nil && !cb(i) {
			return
		}
	}
}

// PotentialEnergy returns the potential energy from the last step.
func (e *Engine) PotentialEnergy() float64 { return e.state.Epot }

// TotalEnergy returns kinetic + potential (kcal/mol).
func (e *Engine) TotalEnergy() float64 { return e.state.Epot + e.state.KineticEnergy() }

// Checkpoint snapshots the dynamical state. Safe to call between steps.
//
// Beyond positions and velocities, the snapshot carries the engine's live
// RNG streams and the neighbor-list reference positions, so a Restore of
// the same checkpoint resumes the trajectory bit-exactly: the thermostat
// continues the same random sequence, and the pair list is rebuilt from
// the same reference configuration (same pair set, same accumulation
// order). This is what lets the dist runtime migrate a half-finished SMD
// pull to another worker without perturbing the result.
func (e *Engine) Checkpoint() *trace.Checkpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &trace.Checkpoint{
		Step: e.state.Step,
		Time: e.state.Time,
		Pos:  append([]vec.V(nil), e.state.Pos...),
		Vel:  append([]vec.V(nil), e.state.Vel...),
		Seed: e.cfg.Seed,
	}
	c.RNG = e.rng.Snapshot()
	if lg, ok := e.integ.(*integrate.Langevin); ok {
		c.RNG = append(c.RNG, lg.RNG.Snapshot()...)
	}
	if e.nlist != nil {
		c.NeighborRef = e.nlist.Ref()
	}
	c.Force = append([]vec.V(nil), e.state.Force...)
	return c
}

// Restore loads a checkpoint into the engine. When the checkpoint carries
// RNG state (trace SPCKP2) the engine's random streams are restored too —
// exact-resume semantics; otherwise the current streams continue (clone
// semantics). When it carries neighbor-list reference positions, the pair
// list is rebuilt from those instead of the restored positions, so the
// rebuild schedule and pair ordering match the run that wrote it.
func (e *Engine) Restore(c *trace.Checkpoint) error {
	if len(c.Pos) != e.top.N() || len(c.Vel) != e.top.N() {
		return fmt.Errorf("md: checkpoint has %d atoms, engine has %d", len(c.Pos), e.top.N())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	copy(e.state.Pos, c.Pos)
	copy(e.state.Vel, c.Vel)
	e.state.Step = c.Step
	e.state.Time = c.Time
	if len(c.RNG) > 0 {
		if len(c.RNG)%xrand.SnapshotLen != 0 {
			return fmt.Errorf("md: checkpoint RNG block has %d words, want a multiple of %d", len(c.RNG), xrand.SnapshotLen)
		}
		if err := e.rng.RestoreSnapshot(c.RNG[:xrand.SnapshotLen]); err != nil {
			return fmt.Errorf("md: restoring engine RNG: %w", err)
		}
		if lg, ok := e.integ.(*integrate.Langevin); ok {
			if len(c.RNG) < 2*xrand.SnapshotLen {
				return fmt.Errorf("md: checkpoint RNG block lacks the thermostat stream")
			}
			if err := lg.RNG.RestoreSnapshot(c.RNG[xrand.SnapshotLen : 2*xrand.SnapshotLen]); err != nil {
				return fmt.Errorf("md: restoring thermostat RNG: %w", err)
			}
		}
	}
	if len(c.Force) == e.top.N() {
		// The checkpoint carries the integrator's cached force array.
		// Restore it verbatim and skip the re-priming evaluation:
		// steering terms (the SMD spring's λ) may have advanced since
		// that evaluation, so recomputing here would feed the first
		// B-half kick a different force than the uninterrupted run.
		copy(e.state.Force, c.Force)
		e.integ.Prime()
	} else {
		e.integ.Reprime()
	}
	if e.nlist != nil {
		if len(c.NeighborRef) == e.top.N() {
			e.nlist.ForceRebuild(c.NeighborRef)
		} else {
			e.nlist.ForceRebuild(e.state.Pos)
		}
	}
	return nil
}

// Clone builds a new Engine with identical configuration and current
// state, but an independent RNG stream seeded with seed. This implements
// the paper's "checkpoint and cloning of simulations... for verification
// and validation tests without perturbing the original simulation".
func (e *Engine) Clone(seed uint64) (*Engine, error) {
	cfg := e.cfg
	cfg.Seed = seed
	cfg.Init = append([]vec.V(nil), e.state.Pos...)
	// Terms added at runtime (SMD springs, IMD forces) are configuration
	// too; the copied cfg.Terms slice already includes them.
	clone, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ck := e.Checkpoint()
	ck.Seed = seed
	ck.RNG = nil // the clone gets a fresh stream from seed, not the parent's
	if err := clone.Restore(ck); err != nil {
		return nil, err
	}
	copy(clone.state.Vel, e.state.Vel)
	return clone, nil
}

// Frame returns the current positions as a trajectory frame.
func (e *Engine) Frame() trace.Frame {
	e.mu.Lock()
	defer e.mu.Unlock()
	return trace.Frame{
		Step: e.state.Step,
		Time: e.state.Time,
		Pos:  append([]vec.V(nil), e.state.Pos...),
	}
}
