// Package md is the molecular-dynamics engine at the bottom of the SPICE
// stack — the stand-in for NAMD in the paper's architecture. It combines a
// topology, force-field terms, a neighbor-listed nonbonded potential and a
// Langevin (or NVE) integrator, evaluates nonbonded forces in parallel
// across a goroutine worker pool, and supports the checkpoint/clone
// operations the RealityGrid steering layer relies on.
package md

import (
	"fmt"
	"runtime"
	"sync"

	"spice/internal/forcefield"
	"spice/internal/integrate"
	"spice/internal/neighbor"
	"spice/internal/topology"
	"spice/internal/trace"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// Config assembles an Engine.
type Config struct {
	Top  *topology.Topology
	Init []vec.V // initial positions, one per atom

	// Terms are the bonded/field contributions (bonds, angles, pore
	// field, binding sites...). The engine adds nonbonded itself.
	Terms []forcefield.Term
	// Pair is the nonbonded potential; nil disables nonbonded forces.
	Pair forcefield.PairPotential

	Box  vec.V   // periodic box; zero components = open boundaries
	Skin float64 // neighbor-list skin, Å (default 2)

	DT    float64 // timestep, ps (default 0.01 = 10 fs)
	Gamma float64 // Langevin friction, 1/ps (default 1)
	Temp  float64 // K (default 300)
	NVE   bool    // use velocity Verlet instead of Langevin
	// GammaFor optionally makes the Langevin friction position-
	// dependent (e.g. higher inside the pore lumen, where confined
	// water is effectively more viscous). Ignored under NVE.
	GammaFor func(i int, p vec.V) float64

	Seed    uint64 // RNG seed (default 1)
	Workers int    // parallel force workers (default NumCPU)
}

// Engine is a runnable simulation.
type Engine struct {
	cfg   Config
	top   *topology.Topology
	state *integrate.State
	integ interface {
		integrate.Integrator
		Reprime()
	}
	nlist *neighbor.List
	rng   *xrand.Source

	// External receives steering forces from the IMD/steering layer.
	External *forcefield.ExternalForces

	workers int
	buffers [][]vec.V // per-worker force accumulators

	energies map[string]float64
	mu       sync.Mutex // guards checkpoint vs step from other goroutines
}

// New validates cfg and builds an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Top == nil {
		return nil, fmt.Errorf("md: nil topology")
	}
	if err := cfg.Top.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Init) != cfg.Top.N() {
		return nil, fmt.Errorf("md: %d initial positions for %d atoms", len(cfg.Init), cfg.Top.N())
	}
	if cfg.DT == 0 {
		cfg.DT = 0.01
	}
	if cfg.DT < 0 {
		return nil, fmt.Errorf("md: negative timestep %g", cfg.DT)
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1
	}
	if cfg.Temp == 0 {
		cfg.Temp = 300
	}
	if cfg.Skin == 0 {
		cfg.Skin = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}

	e := &Engine{
		cfg:      cfg,
		top:      cfg.Top,
		rng:      xrand.New(cfg.Seed),
		External: forcefield.NewExternalForces(),
		workers:  cfg.Workers,
		energies: make(map[string]float64),
	}

	n := cfg.Top.N()
	e.state = integrate.NewState(n)
	copy(e.state.Pos, cfg.Init)
	for i, a := range cfg.Top.Atoms {
		e.state.Mass[i] = a.Mass
		e.state.Fixed[i] = a.Fixed
	}
	e.state.InitVelocities(cfg.Temp, e.rng)

	if cfg.Pair != nil {
		e.nlist = neighbor.NewList(cfg.Pair.Cutoff(), cfg.Skin, cfg.Box)
		e.nlist.Exclude = func(i, j int) bool {
			ai, aj := cfg.Top.Atoms[i], cfg.Top.Atoms[j]
			if ai.Fixed && aj.Fixed {
				return true // wall-wall pairs never matter
			}
			return cfg.Top.Excluded(i, j)
		}
	}

	if cfg.NVE {
		e.integ = &integrate.VelocityVerlet{DT: cfg.DT}
	} else {
		lg := integrate.NewLangevin(cfg.DT, cfg.Gamma, cfg.Temp, e.rng.Split())
		lg.GammaFor = cfg.GammaFor
		e.integ = lg
	}

	e.buffers = make([][]vec.V, e.workers)
	for w := range e.buffers {
		e.buffers[w] = make([]vec.V, n)
	}
	return e, nil
}

// State exposes the dynamical state (read it between steps only).
func (e *Engine) State() *integrate.State { return e.state }

// Topology returns the engine's topology.
func (e *Engine) Topology() *topology.Topology { return e.top }

// Temperature returns the configured thermostat temperature (K).
func (e *Engine) Temperature() float64 { return e.cfg.Temp }

// Timestep returns dt in ps.
func (e *Engine) Timestep() float64 { return e.cfg.DT }

// AddTerm appends a force-field term at runtime (used by SMD and IMD).
func (e *Engine) AddTerm(t forcefield.Term) { e.cfg.Terms = append(e.cfg.Terms, t) }

// Energies returns the per-term potential-energy breakdown from the most
// recent force evaluation (term name -> kcal/mol).
func (e *Engine) Energies() map[string]float64 {
	out := make(map[string]float64, len(e.energies))
	for k, v := range e.energies {
		out[k] = v
	}
	return out
}

// forces is the integrate.ForceFunc: bonded/field terms serially (cheap),
// nonbonded pairs across the worker pool, external steering forces last.
func (e *Engine) forces(pos []vec.V, f []vec.V) float64 {
	total := 0.0
	for _, t := range e.cfg.Terms {
		en := t.AddForces(pos, f)
		e.energies[t.Name()] = en
		total += en
	}
	if en := e.External.AddForces(pos, f); en != 0 {
		total += en
	}
	if e.nlist != nil {
		e.nlist.Update(pos)
		en := e.nonbonded(pos, f)
		e.energies["nonbonded"] = en
		total += en
	}
	return total
}

// nonbonded evaluates the pair potential over the neighbor list in
// parallel, with per-worker force buffers merged afterwards.
func (e *Engine) nonbonded(pos []vec.V, f []vec.V) float64 {
	pairs := e.nlist.Pairs
	if len(pairs) == 0 {
		return 0
	}
	nw := e.workers
	if len(pairs) < 256 || nw == 1 {
		return e.pairRange(pos, f, pairs)
	}

	energies := make([]float64, nw)
	var wg sync.WaitGroup
	chunk := (len(pairs) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := e.buffers[w]
			for i := range buf {
				buf[i] = vec.Zero
			}
			energies[w] = e.pairRange(pos, buf, pairs[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()

	total := 0.0
	for w := 0; w < nw; w++ {
		total += energies[w]
		buf := e.buffers[w]
		for i := range f {
			f[i].AddInPlace(buf[i])
		}
	}
	return total
}

func (e *Engine) pairRange(pos []vec.V, f []vec.V, pairs []neighbor.Pair) float64 {
	atoms := e.top.Atoms
	pot := e.cfg.Pair
	box := e.cfg.Box
	total := 0.0
	for _, p := range pairs {
		i, j := int(p.I), int(p.J)
		d := vec.MinImage(pos[i].Sub(pos[j]), box)
		r2 := d.Norm2()
		en, g := pot.EnergyForce(r2, atoms[i].Charge, atoms[j].Charge, atoms[i].Radius, atoms[j].Radius)
		if en == 0 && g == 0 {
			continue
		}
		total += en
		f[i].AddScaled(g, d)
		f[j].AddScaled(-g, d)
	}
	return total
}

// Step advances the simulation by one timestep.
func (e *Engine) Step() {
	e.mu.Lock()
	e.integ.Step(e.state, e.forces)
	e.mu.Unlock()
}

// Run advances n timesteps.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Step()
	}
}

// RunWith advances n timesteps, invoking cb after every step; cb may
// inspect state and mutate External forces. Returning false stops early.
func (e *Engine) RunWith(n int, cb func(step int) bool) {
	for i := 0; i < n; i++ {
		e.Step()
		if cb != nil && !cb(i) {
			return
		}
	}
}

// PotentialEnergy returns the potential energy from the last step.
func (e *Engine) PotentialEnergy() float64 { return e.state.Epot }

// TotalEnergy returns kinetic + potential (kcal/mol).
func (e *Engine) TotalEnergy() float64 { return e.state.Epot + e.state.KineticEnergy() }

// Checkpoint snapshots the dynamical state. Safe to call between steps.
func (e *Engine) Checkpoint() *trace.Checkpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := &trace.Checkpoint{
		Step: e.state.Step,
		Time: e.state.Time,
		Pos:  append([]vec.V(nil), e.state.Pos...),
		Vel:  append([]vec.V(nil), e.state.Vel...),
		Seed: e.cfg.Seed,
	}
	return c
}

// Restore loads a checkpoint into the engine.
func (e *Engine) Restore(c *trace.Checkpoint) error {
	if len(c.Pos) != e.top.N() || len(c.Vel) != e.top.N() {
		return fmt.Errorf("md: checkpoint has %d atoms, engine has %d", len(c.Pos), e.top.N())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	copy(e.state.Pos, c.Pos)
	copy(e.state.Vel, c.Vel)
	e.state.Step = c.Step
	e.state.Time = c.Time
	e.integ.Reprime()
	if e.nlist != nil {
		e.nlist.ForceRebuild(e.state.Pos)
	}
	return nil
}

// Clone builds a new Engine with identical configuration and current
// state, but an independent RNG stream seeded with seed. This implements
// the paper's "checkpoint and cloning of simulations... for verification
// and validation tests without perturbing the original simulation".
func (e *Engine) Clone(seed uint64) (*Engine, error) {
	cfg := e.cfg
	cfg.Seed = seed
	cfg.Init = append([]vec.V(nil), e.state.Pos...)
	// Terms added at runtime (SMD springs, IMD forces) are configuration
	// too; the copied cfg.Terms slice already includes them.
	clone, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ck := e.Checkpoint()
	ck.Seed = seed
	if err := clone.Restore(ck); err != nil {
		return nil, err
	}
	copy(clone.state.Vel, e.state.Vel)
	return clone, nil
}

// Frame returns the current positions as a trajectory frame.
func (e *Engine) Frame() trace.Frame {
	e.mu.Lock()
	defer e.mu.Unlock()
	return trace.Frame{
		Step: e.state.Step,
		Time: e.state.Time,
		Pos:  append([]vec.V(nil), e.state.Pos...),
	}
}
