package md

import (
	"math"
	"testing"

	"spice/internal/topology"
	"spice/internal/vec"
)

// freeGas builds n non-interacting beads (no terms, no pair potential).
func freeGas(t *testing.T, n int, mass, gamma float64, seed uint64) *Engine {
	t.Helper()
	top := topology.New()
	pos := make([]vec.V, n)
	for i := 0; i < n; i++ {
		top.AddAtom(topology.Atom{Kind: topology.KindIon, Mass: mass, Radius: 1})
		pos[i] = vec.V{X: float64(i) * 10}
	}
	eng, err := New(Config{Top: top, Init: pos, Seed: seed, Gamma: gamma, DT: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestRecorderSeries(t *testing.T) {
	eng := freeGas(t, 10, 100, 1, 1)
	rec := NewRecorder(eng, 5, nil)
	rec.Run(100)
	if rec.N() != 20 {
		t.Fatalf("samples = %d, want 20", rec.N())
	}
	if len(rec.Times()) != rec.N() || len(rec.Temperatures()) != rec.N() ||
		len(rec.MSDs()) != rec.N() || len(rec.PotentialEnergies()) != rec.N() {
		t.Fatal("series lengths disagree")
	}
	// Times strictly increase; MSD non-negative.
	for i := 1; i < rec.N(); i++ {
		if rec.Times()[i] <= rec.Times()[i-1] {
			t.Fatal("times not increasing")
		}
		if rec.MSDs()[i] < 0 {
			t.Fatal("negative MSD")
		}
	}
}

func TestRecorderMeanTemperature(t *testing.T) {
	eng := freeGas(t, 200, 325, 2, 2)
	eng.Run(500) // equilibrate
	rec := NewRecorder(eng, 10, nil)
	rec.Run(3000)
	if got := rec.MeanTemperature(); math.Abs(got-300)/300 > 0.05 {
		t.Fatalf("mean T = %v, want 300±5%%", got)
	}
	empty := NewRecorder(freeGas(t, 1, 1, 1, 3), 10, nil)
	if empty.MeanTemperature() != 0 {
		t.Fatal("empty recorder temperature")
	}
}

func TestDiffusionMatchesEinstein(t *testing.T) {
	// Free Langevin particles: D = kT/(mγ).
	const mass, gamma = 325.0, 1.0
	eng := freeGas(t, 400, mass, gamma, 4)
	eng.Run(1000) // thermalize velocities
	rec := NewRecorder(eng, 20, nil)
	rec.Run(8000) // 80 ps: well past the 1/γ = 1 ps crossover
	got, err := rec.DiffusionCoefficient()
	if err != nil {
		t.Fatal(err)
	}
	want := EinsteinD(300, mass, gamma)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("D = %v Å²/ps, Einstein predicts %v (±15%%)", got, want)
	}
}

func TestDiffusionScalesWithFriction(t *testing.T) {
	run := func(gamma float64) float64 {
		eng := freeGas(t, 200, 100, gamma, 5)
		eng.Run(500)
		rec := NewRecorder(eng, 20, nil)
		rec.Run(6000)
		d, err := rec.DiffusionCoefficient()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1, d4 := run(1), run(4)
	ratio := d1 / d4
	if ratio < 3 || ratio > 5.5 {
		t.Fatalf("D(γ=1)/D(γ=4) = %v, want ~4", ratio)
	}
}

func TestDiffusionFitErrors(t *testing.T) {
	eng := freeGas(t, 2, 100, 1, 6)
	rec := NewRecorder(eng, 10, nil)
	rec.Run(30) // only 3 samples
	if _, err := rec.DiffusionCoefficient(); err == nil {
		t.Fatal("too-short series accepted")
	}
}

func TestEinsteinD(t *testing.T) {
	// kT/(mγ)·AccelUnit: 0.5961/325 × 418.4 ≈ 0.767 Å²/ps.
	if got := EinsteinD(300, 325, 1); math.Abs(got-0.767) > 0.01 {
		t.Fatalf("EinsteinD = %v", got)
	}
	// Halving mass doubles D.
	if math.Abs(EinsteinD(300, 162.5, 1)/EinsteinD(300, 325, 1)-2) > 1e-9 {
		t.Fatal("mass scaling wrong")
	}
}

func TestRecorderSubsetAtoms(t *testing.T) {
	eng := freeGas(t, 10, 100, 1, 7)
	rec := NewRecorder(eng, 5, []int{0, 1})
	rec.Run(50)
	if rec.N() == 0 {
		t.Fatal("no samples")
	}
	// The subset recorder must not panic and must produce MSDs.
	if rec.MSDs()[rec.N()-1] <= 0 {
		t.Fatal("subset MSD not accumulating")
	}
}
