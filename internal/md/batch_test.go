package md

import (
	"testing"
	"time"

	"spice/internal/vec"
)

// walledPeriodicSpec is the substrate-eligible system the batch tests
// run on: explicit pore walls in a fully periodic box, sized so no
// periodic image comes within the cutoff of the real geometry.
func walledPeriodicSpec(n int, seed uint64) TranslocationSpec {
	spec := DefaultTranslocation(n)
	spec.NoWalls = false
	spec.Seed = seed
	spec.Workers = 1
	spec.Box = vec.V{X: 100, Y: 100, Z: 170}
	return spec
}

func buildReplicas(t *testing.T, n, replicas int, baseSeed uint64, spec func(int, uint64) TranslocationSpec) []*Engine {
	t.Helper()
	engines := make([]*Engine, replicas)
	for r := range engines {
		sys, err := BuildTranslocation(spec(n, baseSeed+uint64(r)))
		if err != nil {
			t.Fatal(err)
		}
		engines[r] = sys.Engine
	}
	return engines
}

func requireStatesEqual(t *testing.T, label string, r int, a, b *Engine) {
	t.Helper()
	sa, sb := a.State(), b.State()
	if sa.Step != sb.Step {
		t.Fatalf("%s replica %d: step %d vs %d", label, r, sa.Step, sb.Step)
	}
	for i := range sa.Pos {
		if sa.Pos[i] != sb.Pos[i] {
			t.Fatalf("%s replica %d: position of atom %d diverged at step %d: %v vs %v",
				label, r, i, sa.Step, sa.Pos[i], sb.Pos[i])
		}
		if sa.Vel[i] != sb.Vel[i] {
			t.Fatalf("%s replica %d: velocity of atom %d diverged at step %d: %v vs %v",
				label, r, i, sa.Step, sa.Vel[i], sb.Vel[i])
		}
	}
}

// TestBatchBitIdenticalTrajectories is the tentpole determinism proof:
// for 1, 8 and 32 replicas, stepping a batch must produce positions and
// velocities byte-identical to stepping identically seeded solo engines
// — including when the batch adopts engines mid-trajectory.
func TestBatchBitIdenticalTrajectories(t *testing.T) {
	for _, replicas := range []int{1, 8, 32} {
		solo := buildReplicas(t, 4, replicas, 100, walledPeriodicSpec)
		batched := buildReplicas(t, 4, replicas, 100, walledPeriodicSpec)

		// Adoption happens mid-trajectory: both sides step solo first.
		const preSteps, postSteps = 25, 120
		for _, e := range solo {
			e.Run(preSteps)
		}
		for _, e := range batched {
			e.Run(preSteps)
		}

		b, err := NewBatch(batched, BatchConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !b.SubstrateShared() {
			t.Fatalf("replicas=%d: walled periodic system should share a substrate grid", replicas)
		}
		for chunk := 0; chunk < postSteps/40; chunk++ {
			b.StepN(40)
			for _, e := range solo {
				e.Run(40)
			}
			for r := range solo {
				requireStatesEqual(t, "mid", r, solo[r], b.Engine(r))
			}
		}
		b.Close()
	}
}

// TestBatchOpenBoxFallback: an open-boundary system is not
// substrate-eligible, but batching must still work — and still match
// per-engine stepping exactly.
func TestBatchOpenBoxFallback(t *testing.T) {
	openSpec := func(n int, seed uint64) TranslocationSpec {
		spec := DefaultTranslocation(n)
		spec.NoWalls = false
		spec.Seed = seed
		spec.Workers = 1
		return spec
	}
	solo := buildReplicas(t, 4, 4, 300, openSpec)
	batched := buildReplicas(t, 4, 4, 300, openSpec)
	b, err := NewBatch(batched, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.SubstrateShared() {
		t.Fatal("open box must not be substrate-eligible")
	}
	b.StepN(80)
	for _, e := range solo {
		e.Run(80)
	}
	for r := range solo {
		requireStatesEqual(t, "open", r, solo[r], b.Engine(r))
	}
}

// TestCloneIntoBatchRestore covers the checkpoint path on a batch
// member: a mid-run checkpoint from a solo engine is restored onto a
// cloned engine after that clone was adopted into a batch. Continuing
// the batch member must reproduce the solo continuation bit-exactly.
func TestCloneIntoBatchRestore(t *testing.T) {
	sys, err := BuildTranslocation(walledPeriodicSpec(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	orig := sys.Engine
	orig.Run(60)
	ck := orig.Checkpoint()

	clone, err := orig.Clone(991)
	if err != nil {
		t.Fatal(err)
	}
	other, err := BuildTranslocation(walledPeriodicSpec(4, 992))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch([]*Engine{clone, other.Engine}, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !b.SubstrateShared() {
		t.Fatal("expected shared substrate")
	}

	// Exact-resume restore (checkpoint carries RNG streams) on the batch
	// member, then step the batch; the member must shadow the original.
	if err := b.Engine(0).Restore(ck); err != nil {
		t.Fatal(err)
	}
	b.StepN(90)
	orig.Run(90)
	requireStatesEqual(t, "restore", 0, orig, b.Engine(0))
}

// TestBatchStepZeroAllocs pins the 0 allocs/op acceptance criterion for
// steady-state ensemble stepping.
func TestBatchStepZeroAllocs(t *testing.T) {
	engines := buildReplicas(t, 4, 4, 500, walledPeriodicSpec)
	b, err := NewBatch(engines, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.StepN(30) // warm up: neighbor buffers, wrap scratch, force chunks
	allocs := testing.AllocsPerRun(50, func() { b.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state batch step allocates %.1f/op", allocs)
	}
}

// TestBatchRetireReplica: retired replicas stop advancing, the rest
// keep stepping.
func TestBatchRetireReplica(t *testing.T) {
	engines := buildReplicas(t, 4, 3, 700, walledPeriodicSpec)
	b, err := NewBatch(engines, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.StepN(5)
	frozen := b.Engine(1).State().Step
	b.SetActive(1, false)
	if b.NumActive() != 2 {
		t.Fatalf("NumActive = %d, want 2", b.NumActive())
	}
	b.StepN(7)
	if got := b.Engine(1).State().Step; got != frozen {
		t.Fatalf("retired replica advanced from %d to %d", frozen, got)
	}
	if got := b.Engine(0).State().Step; got != frozen+7 {
		t.Fatalf("active replica at step %d, want %d", got, frozen+7)
	}
}

// TestBatchObservers: per-replica step and neighbor observers fire with
// the right replica indices and reasonable counts.
func TestBatchObservers(t *testing.T) {
	engines := buildReplicas(t, 4, 3, 900, walledPeriodicSpec)
	b, err := NewBatch(engines, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	stepHits := make([]int64, b.Len())
	rebuildHits := make([]int64, b.Len())
	var pairsSeen int64
	b.SetStepObserver(10, func(r int, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for replica %d", r)
		}
		stepHits[r]++
	})
	b.SetNeighborObserver(func(r, pairs int) {
		rebuildHits[r]++
		pairsSeen += int64(pairs)
	})

	b.StepN(40)
	for r := range stepHits {
		if stepHits[r] != 4 {
			t.Fatalf("replica %d: %d sampled steps, want 4", r, stepHits[r])
		}
		if rebuildHits[r] == 0 {
			t.Fatalf("replica %d: no rebuild observations", r)
		}
	}
	if pairsSeen == 0 {
		t.Fatal("neighbor observer never saw pairs")
	}

	b.SetStepObserver(0, nil)
	b.SetNeighborObserver(nil)
	before := append([]int64(nil), stepHits...)
	b.StepN(20)
	for r := range stepHits {
		if stepHits[r] != before[r] {
			t.Fatalf("replica %d: observer fired after removal", r)
		}
	}
}

// TestBatchRejectsDoubleAdoption: an engine cannot join two batches.
func TestBatchRejectsDoubleAdoption(t *testing.T) {
	engines := buildReplicas(t, 4, 2, 1100, walledPeriodicSpec)
	b, err := NewBatch(engines, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := NewBatch([]*Engine{engines[0]}, BatchConfig{}); err == nil {
		t.Fatal("double adoption accepted")
	}
}

// TestSubstrateShare: independently built engines of the same system
// share one grid through the cache; a different system gets its own
// entry; an ineligible system is a cached miss.
func TestSubstrateShare(t *testing.T) {
	var share SubstrateShare
	a, err := BuildTranslocation(walledPeriodicSpec(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	bsys, err := BuildTranslocation(walledPeriodicSpec(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !share.Attach("sysA", a.Engine) {
		t.Fatal("first attach failed")
	}
	if !share.Attach("sysA", bsys.Engine) {
		t.Fatal("second attach failed")
	}
	if a.Engine.nlist.Static() != bsys.Engine.nlist.Static() {
		t.Fatal("engines do not share one grid")
	}

	open := DefaultTranslocation(4)
	open.Seed = 3
	osys, err := BuildTranslocation(open)
	if err != nil {
		t.Fatal(err)
	}
	if share.Attach("sysOpen", osys.Engine) {
		t.Fatal("open system attached")
	}
	if share.Attach("sysOpen", osys.Engine) {
		t.Fatal("negative cache did not hold")
	}

	// Trajectory with a shared substrate still matches a plain engine.
	ref, err := BuildTranslocation(walledPeriodicSpec(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	bsys.Engine.Run(60)
	ref.Engine.Run(60)
	requireStatesEqual(t, "share", 0, ref.Engine, bsys.Engine)
}
