package federation

import (
	"spice/internal/xrand"
)

// ReservationWorkflow models how an advance reservation request travels
// from the scientist to the site scheduler. §V.C.3 of the paper: "with
// advanced reservations made by hand, schedulers did not always work and
// required last minute corrections and tweaking ... one of the authors had
// to exchange about a dozen emails correcting three distinct errors
// introduced by two different administrators for one reservation request."
type ReservationWorkflow int

// Workflows, in increasing order of automation. TeraGrid's web interface
// (§V.C.5) "does not completely automate the process, but it does remove
// the need for human intervention at one more level".
const (
	Manual ReservationWorkflow = iota
	WebInterface
	Automated
)

// String implements fmt.Stringer.
func (w ReservationWorkflow) String() string {
	switch w {
	case Manual:
		return "manual"
	case WebInterface:
		return "web"
	case Automated:
		return "automated"
	default:
		return "workflow(?)"
	}
}

// errorRate returns the probability that a single handling step introduces
// an error that must be corrected by email round-trips. The manual rate is
// calibrated to the paper's anecdote: ~3 errors for 1 request handled by 2
// administrators.
func (w ReservationWorkflow) errorRate() float64 {
	switch w {
	case Manual:
		return 0.6 // per admin handling step
	case WebInterface:
		return 0.15
	default:
		return 0.01
	}
}

// humanSteps is the number of human handling steps per reservation.
func (w ReservationWorkflow) humanSteps() int {
	switch w {
	case Manual:
		return 2 // scientist -> admin(s), per the anecdote
	case WebInterface:
		return 1
	default:
		return 0
	}
}

// ReservationOutcome summarizes processing one reservation request.
type ReservationOutcome struct {
	Errors        int
	Emails        int     // correction round-trips (≈4 emails per error)
	DelayHours    float64 // human latency added before the reservation holds
	Interventions int     // total human touches
}

// ProcessReservation simulates one reservation request through the given
// workflow. Deterministic given the rng stream.
func ProcessReservation(w ReservationWorkflow, rng *xrand.Source) ReservationOutcome {
	out := ReservationOutcome{Interventions: w.humanSteps()}
	for s := 0; s < w.humanSteps(); s++ {
		// Each human step may introduce multiple errors before getting
		// it right; each error costs an email exchange and hours of
		// latency (admin time zones differ by 5-8 hours trans-Atlantic).
		for rng.Float64() < w.errorRate() {
			out.Errors++
			out.Emails += 4
			out.DelayHours += 4 + 8*rng.Float64()
			out.Interventions++
		}
	}
	if w != Automated && out.Errors == 0 {
		// Even a clean manual/web request costs one human latency.
		out.DelayHours += 1 + 2*rng.Float64()
	}
	return out
}

// CampaignReservationCost aggregates the workflow cost over n reservation
// requests (the paper's campaign needed one per cross-site run).
func CampaignReservationCost(w ReservationWorkflow, n int, rng *xrand.Source) ReservationOutcome {
	var total ReservationOutcome
	for i := 0; i < n; i++ {
		o := ProcessReservation(w, rng)
		total.Errors += o.Errors
		total.Emails += o.Emails
		total.DelayHours += o.DelayHours
		total.Interventions += o.Interventions
	}
	return total
}

// Outage describes a site failure window (hardware failure or security
// quarantine, §V.C.4).
type Outage struct {
	Site  string
	Start float64 // hours
	Hours float64
}

// SecurityBreach returns the paper's worst case: the one usable UK node
// quarantined for weeks. Start is in hours; the sanitization took "several
// weeks" — three weeks here.
func SecurityBreach(site string, start float64) Outage {
	return Outage{Site: site, Start: start, Hours: 21 * 24}
}

// Apply injects the outages into the federation's machines.
func (f *Federation) Apply(outages []Outage) {
	for _, o := range outages {
		for _, s := range f.Sites() {
			if s.Name == o.Site {
				s.Machine.Outage(o.Start, o.Hours)
			}
		}
	}
}
