package federation

import (
	"errors"
	"fmt"

	"spice/internal/grid"
)

// LightpathLink is a dedicated optical circuit between two sites (a
// UKLight/GLIF lambda). Unlike packet networks it is circuit-switched: a
// session books the whole circuit for its duration, so lightpaths must be
// co-scheduled with the compute and visualization resources they connect —
// the coordination problem the paper's §V.C.6 flags as the open issue
// ("sooner or later, demand for lightpaths will increase and we will be
// faced with ... coordinating and co-scheduling lightpaths with compute
// resources").
type LightpathLink struct {
	A, B string // site names (order-insensitive)
	Mbps float64
	// calendar reuses the machine scheduler with capacity 1 — one
	// session at a time on a circuit.
	calendar *grid.Machine
}

// NewLightpathLink returns a circuit between sites a and b.
func NewLightpathLink(a, b string, mbps float64) *LightpathLink {
	return &LightpathLink{A: a, B: b, Mbps: mbps, calendar: grid.NewMachine(a+"<->"+b, 1)}
}

// Connects reports whether the link joins sites a and b (either order).
func (l *LightpathLink) Connects(a, b string) bool {
	return (l.A == a && l.B == b) || (l.A == b && l.B == a)
}

// LightpathFabric is the set of provisioned circuits.
type LightpathFabric struct {
	Links []*LightpathLink
}

// SPICEFabric provisions the circuits the project had: UCL's UKLight
// connections to the lightpath-enabled TeraGrid sites via the GLIF
// exchange, plus the Manchester leg on the UK side.
func SPICEFabric() *LightpathFabric {
	return &LightpathFabric{Links: []*LightpathLink{
		NewLightpathLink("UCL", "NCSA", 10000),
		NewLightpathLink("UCL", "SDSC", 10000),
		NewLightpathLink("UCL", "PSC", 10000),
		NewLightpathLink("UCL", "Manchester", 10000),
	}}
}

// Find returns the circuit joining a and b, if provisioned.
func (f *LightpathFabric) Find(a, b string) (*LightpathLink, bool) {
	for _, l := range f.Links {
		if l.Connects(a, b) {
			return l, true
		}
	}
	return nil, false
}

// InteractiveSession is a co-scheduled interactive run: compute at the
// simulation site, a visualization host at the viz site, and the lightpath
// between them, all reserved for the same window.
type InteractiveSession struct {
	SimSite *Site
	VizSite string
	Procs   int
	Hours   float64
	Start   float64
	Link    *LightpathLink
}

// CoScheduleInteractive books an interactive session: it finds the
// earliest window at which the simulation site can provide procs
// processors AND the circuit to the visualization site is free, then
// reserves both. It fails when the site has no lightpath, no circuit is
// provisioned, or (hidden-IP without relay) the site cannot reach the
// visualizer at all.
func CoScheduleInteractive(fabric *LightpathFabric, sim *Site, vizSite string, procs int, hours, after float64) (*InteractiveSession, error) {
	if fabric == nil {
		return nil, errors.New("federation: nil lightpath fabric")
	}
	if !sim.Lightpath {
		return nil, fmt.Errorf("federation: %s has no functional lightpath deployment (§V.C.2)", sim.Name)
	}
	if !sim.SupportsCrossSite() {
		return nil, fmt.Errorf("federation: %s cannot host cross-site sessions (hidden IPs, no gateway)", sim.Name)
	}
	link, ok := fabric.Find(sim.Name, vizSite)
	if !ok {
		return nil, fmt.Errorf("federation: no circuit provisioned between %s and %s", sim.Name, vizSite)
	}
	t := after
	for iter := 0; iter < 10000; iter++ {
		next := t
		converged := true
		cs, err := sim.Machine.EarliestStart(t, hours, procs)
		if err != nil {
			return nil, err
		}
		if cs > next {
			next, converged = cs, false
		}
		ls, err := link.calendar.EarliestStart(t, hours, 1)
		if err != nil {
			return nil, err
		}
		if ls > next {
			next, converged = ls, false
		}
		if converged {
			if err := sim.Machine.Reserve(t, hours, procs); err != nil {
				return nil, err
			}
			if err := link.calendar.Reserve(t, hours, 1); err != nil {
				return nil, err
			}
			return &InteractiveSession{
				SimSite: sim, VizSite: vizSite, Procs: procs,
				Hours: hours, Start: t, Link: link,
			}, nil
		}
		t = next
	}
	return nil, errors.New("federation: lightpath co-scheduling did not converge")
}

// CircuitUtilization reports the booked fraction of a circuit over the
// horizon — the capacity-planning number behind "demand for lightpaths
// will increase".
func (l *LightpathLink) CircuitUtilization(horizon float64) float64 {
	return l.calendar.Utilization(horizon)
}
