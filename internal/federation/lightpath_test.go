package federation

import (
	"testing"
)

func siteByName(f *Federation, name string) *Site {
	for _, s := range f.Sites() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func TestSPICEFabric(t *testing.T) {
	fab := SPICEFabric()
	if len(fab.Links) != 4 {
		t.Fatalf("links = %d", len(fab.Links))
	}
	if _, ok := fab.Find("UCL", "NCSA"); !ok {
		t.Fatal("UCL-NCSA circuit missing")
	}
	if _, ok := fab.Find("NCSA", "UCL"); !ok {
		t.Fatal("circuit lookup should be order-insensitive")
	}
	if _, ok := fab.Find("UCL", "Oxford"); ok {
		t.Fatal("phantom circuit")
	}
}

func TestCoScheduleInteractiveHappyPath(t *testing.T) {
	fed := SPICEFederation()
	fab := SPICEFabric()
	ncsa := siteByName(fed, "NCSA")
	sess, err := CoScheduleInteractive(fab, ncsa, "UCL", 256, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Start != 0 || sess.Procs != 256 {
		t.Fatalf("session = %+v", sess)
	}
	// The circuit is booked: a second simultaneous session must shift.
	sess2, err := CoScheduleInteractive(fab, ncsa, "UCL", 256, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.Start < 4 {
		t.Fatalf("second session overlaps the circuit: start %v", sess2.Start)
	}
	if u := sess.Link.CircuitUtilization(8); u != 1 {
		t.Fatalf("circuit utilization = %v, want 1 over the booked horizon", u)
	}
}

func TestCoScheduleWaitsForCompute(t *testing.T) {
	fed := SPICEFederation()
	fab := SPICEFabric()
	sdsc := siteByName(fed, "SDSC")
	// Fill SDSC for 10 h.
	if err := sdsc.Machine.Reserve(0, 10, 512); err != nil {
		t.Fatal(err)
	}
	sess, err := CoScheduleInteractive(fab, sdsc, "UCL", 256, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Start != 10 {
		t.Fatalf("session start = %v, want 10 (after compute drains)", sess.Start)
	}
}

func TestCoScheduleCircuitContentionAcrossSites(t *testing.T) {
	// Different circuits do not contend: NCSA-UCL and SDSC-UCL sessions
	// can overlap even though both involve UCL (separate lambdas).
	fed := SPICEFederation()
	fab := SPICEFabric()
	a, err := CoScheduleInteractive(fab, siteByName(fed, "NCSA"), "UCL", 128, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoScheduleInteractive(fab, siteByName(fed, "SDSC"), "UCL", 128, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || b.Start != 0 {
		t.Fatalf("independent circuits contended: %v, %v", a.Start, b.Start)
	}
}

func TestCoScheduleRejections(t *testing.T) {
	fed := SPICEFederation()
	fab := SPICEFabric()
	// Oxford: no lightpath deployment (§V.C.2).
	if _, err := CoScheduleInteractive(fab, siteByName(fed, "Oxford"), "UCL", 64, 1, 0); err == nil {
		t.Fatal("lightpath-less site accepted")
	}
	// HPCx: hidden IP without gateways.
	if _, err := CoScheduleInteractive(fab, siteByName(fed, "HPCx"), "UCL", 64, 1, 0); err == nil {
		t.Fatal("unreachable site accepted")
	}
	// RAL: cross-site OK but no circuit provisioned and no lightpath.
	if _, err := CoScheduleInteractive(fab, siteByName(fed, "RAL"), "UCL", 64, 1, 0); err == nil {
		t.Fatal("circuit-less site accepted")
	}
	// Nil fabric.
	if _, err := CoScheduleInteractive(nil, siteByName(fed, "NCSA"), "UCL", 64, 1, 0); err == nil {
		t.Fatal("nil fabric accepted")
	}
	// Oversized compute.
	if _, err := CoScheduleInteractive(fab, siteByName(fed, "NCSA"), "UCL", 99999, 1, 0); err == nil {
		t.Fatal("oversized session accepted")
	}
}

func TestCircuitUtilizationGrowsWithDemand(t *testing.T) {
	fed := SPICEFederation()
	fab := SPICEFabric()
	psc := siteByName(fed, "PSC")
	link, _ := fab.Find("UCL", "PSC")
	if link.CircuitUtilization(24) != 0 {
		t.Fatal("fresh circuit not idle")
	}
	for i := 0; i < 3; i++ {
		if _, err := CoScheduleInteractive(fab, psc, "UCL", 256, 4, 0); err != nil {
			t.Fatal(err)
		}
	}
	if u := link.CircuitUtilization(24); u != 0.5 {
		t.Fatalf("utilization = %v, want 12h/24h = 0.5", u)
	}
}
