package federation

import (
	"testing"

	"spice/internal/grid"
	"spice/internal/xrand"
)

func TestSPICEFederationTopology(t *testing.T) {
	f := SPICEFederation()
	if len(f.Grids) != 2 {
		t.Fatalf("grids = %d", len(f.Grids))
	}
	sites := f.Sites()
	if len(sites) != 8 {
		t.Fatalf("sites = %d, want 8 (3 TeraGrid + 5 NGS)", len(sites))
	}
	byName := make(map[string]*Site)
	for _, s := range sites {
		byName[s.Name] = s
	}
	// PSC: hidden IP but usable through gateways.
	psc := byName["PSC"]
	if psc == nil || !psc.HiddenIP || !psc.SupportsCrossSite() {
		t.Fatalf("PSC config wrong: %+v", psc)
	}
	if mbps, relayed := psc.RelayBandwidth(); !relayed || mbps != 1000 {
		t.Fatalf("PSC relay bandwidth = %v, %v", mbps, relayed)
	}
	// HPCx: hidden IP, no gateways → unusable for cross-site work.
	hpcx := byName["HPCx"]
	if hpcx == nil || hpcx.SupportsCrossSite() {
		t.Fatal("HPCx should be unusable cross-site")
	}
	// Direct sites report no relay.
	if _, relayed := byName["NCSA"].RelayBandwidth(); relayed {
		t.Fatal("NCSA should be direct")
	}
	if f.TotalProcs() <= 0 {
		t.Fatal("no processors")
	}
}

func TestDialects(t *testing.T) {
	f := SPICEFederation()
	d := f.Dialects()
	if len(d) != 1 || d[0] != GT2 {
		t.Fatalf("dialects = %v (GT2 was the common ground)", d)
	}
	f.Grids[1].Middleware = Unicore
	if len(f.Dialects()) != 2 {
		t.Fatal("second dialect not reported")
	}
}

func TestJobConstraintEligibility(t *testing.T) {
	f := SPICEFederation()
	byName := make(map[string]*Site)
	for _, s := range f.Sites() {
		byName[s.Name] = s
	}
	cross := JobConstraint{NeedsCrossSite: true}
	if !cross.Eligible(byName["PSC"]) {
		t.Fatal("PSC with gateways should be eligible for cross-site")
	}
	if cross.Eligible(byName["HPCx"]) {
		t.Fatal("HPCx should be ineligible for cross-site")
	}
	udp := JobConstraint{NeedsCrossSite: true, NeedsUDP: true}
	if udp.Eligible(byName["PSC"]) {
		t.Fatal("gateway relays do not forward UDP (§V.C.1)")
	}
	light := JobConstraint{NeedsLightpath: true}
	if light.Eligible(byName["Oxford"]) {
		t.Fatal("Oxford has no lightpath in the model")
	}
	if !light.Eligible(byName["Manchester"]) {
		t.Fatal("Manchester had the lightpath")
	}
}

func TestSchedulerSpreadsLoad(t *testing.T) {
	f := SPICEFederation()
	s := NewScheduler(f, true)
	var jobs []*grid.Job
	for i := 0; i < 24; i++ {
		jobs = append(jobs, &grid.Job{ID: "j", Procs: 128, Hours: 8})
	}
	ps, err := s.SubmitAll(jobs, JobConstraint{NeedsCrossSite: true})
	if err != nil {
		t.Fatal(err)
	}
	machines := make(map[string]int)
	for _, p := range ps {
		machines[p.Machine.Name]++
	}
	if len(machines) < 3 {
		t.Fatalf("federated scheduler used only %d machines: %v", len(machines), machines)
	}
	// Nothing lands on HPCx.
	if machines["hpcx"] > 0 {
		t.Fatal("cross-site jobs placed on HPCx")
	}
}

func TestSchedulerRejectsImpossibleJob(t *testing.T) {
	f := SPICEFederation()
	s := NewScheduler(f, true)
	// Needs more procs than any single machine has.
	if _, _, err := s.Submit(&grid.Job{ID: "huge", Procs: 4096, Hours: 1}, JobConstraint{}); err == nil {
		t.Fatal("oversized job placed")
	}
	// Lightpath + UDP + cross-site: only direct lightpath sites remain.
	p, site, err := s.Submit(&grid.Job{ID: "imd", Procs: 256, Hours: 1},
		JobConstraint{NeedsCrossSite: true, NeedsLightpath: true, NeedsUDP: true})
	if err != nil {
		t.Fatal(err)
	}
	if site.HiddenIP || !site.Lightpath {
		t.Fatalf("IMD job landed on %s", site.Name)
	}
	_ = p
}

func TestCoAllocate(t *testing.T) {
	f := SPICEFederation()
	sites := f.Sites()[:3] // NCSA, SDSC, PSC
	// Pre-load NCSA so the common window moves later.
	if err := sites[0].Machine.Reserve(0, 10, 1024); err != nil {
		t.Fatal(err)
	}
	start, err := CoAllocate(sites, []int{512, 256, 256}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if start != 10 {
		t.Fatalf("co-allocation start = %v, want 10 (after NCSA drains)", start)
	}
	// The reservations are actually booked.
	for i, s := range sites {
		procs := []int{512, 256, 256}[i]
		if s.Machine.Utilization(start+4) == 0 {
			t.Fatalf("%s not reserved (procs=%d)", s.Name, procs)
		}
	}
	// Degenerate input.
	if _, err := CoAllocate(nil, nil, 1, 0); err == nil {
		t.Fatal("empty co-allocation accepted")
	}
	if _, err := CoAllocate(sites, []int{1}, 1, 0); err == nil {
		t.Fatal("mismatched co-allocation accepted")
	}
	// Impossible demand.
	if _, err := CoAllocate(sites, []int{99999, 1, 1}, 1, 0); err == nil {
		t.Fatal("oversized co-allocation accepted")
	}
}

func TestReservationWorkflows(t *testing.T) {
	rng := xrand.New(42)
	const n = 500
	manual := CampaignReservationCost(Manual, n, rng)
	web := CampaignReservationCost(WebInterface, n, rng)
	auto := CampaignReservationCost(Automated, n, rng)
	// Strict ordering of human cost.
	if !(manual.Errors > web.Errors && web.Errors > auto.Errors) {
		t.Fatalf("error ordering wrong: manual=%d web=%d auto=%d", manual.Errors, web.Errors, auto.Errors)
	}
	if !(manual.Interventions > web.Interventions && web.Interventions >= auto.Interventions) {
		t.Fatalf("intervention ordering wrong")
	}
	if !(manual.DelayHours > web.DelayHours && web.DelayHours > auto.DelayHours) {
		t.Fatalf("delay ordering wrong")
	}
	// Calibration: the paper's anecdote is ~3 errors and ~a dozen emails
	// per manual request.
	perReq := float64(manual.Errors) / n
	if perReq < 1.5 || perReq > 4.5 {
		t.Fatalf("manual errors/request = %v, want ~3", perReq)
	}
	emails := float64(manual.Emails) / n
	if emails < 6 || emails > 18 {
		t.Fatalf("manual emails/request = %v, want ~12", emails)
	}
	// Automated workflow processes cleanly almost always.
	if float64(auto.Errors)/n > 0.05 {
		t.Fatalf("automated error rate too high: %d/%d", auto.Errors, n)
	}
}

func TestOutageApplication(t *testing.T) {
	f := SPICEFederation()
	breach := SecurityBreach("Manchester", 48)
	if breach.Hours != 21*24 {
		t.Fatalf("breach duration = %v", breach.Hours)
	}
	f.Apply([]Outage{breach})
	var man *Site
	for _, s := range f.Sites() {
		if s.Name == "Manchester" {
			man = s
		}
	}
	start, err := man.Machine.EarliestStart(48, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if start != 48+21*24 {
		t.Fatalf("job during quarantine starts at %v", start)
	}
}

func TestWorkflowStrings(t *testing.T) {
	if Manual.String() != "manual" || WebInterface.String() != "web" || Automated.String() != "automated" {
		t.Fatal("workflow labels")
	}
}
