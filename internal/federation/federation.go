// Package federation models the grid-of-grids SPICE ran on (Fig. 5 of the
// paper): the US TeraGrid (NCSA, SDSC, PSC) federated with the UK National
// Grid Service, including the pathologies §V documents — hidden-IP
// compute nodes reachable only through gateway relays, heterogeneous
// middleware dialects, manual advance-reservation workflows with human
// error, and single-point-of-failure outages.
package federation

import (
	"errors"
	"fmt"
	"sort"

	"spice/internal/grid"
)

// Middleware labels a grid's software stack dialect. The paper's barrier
// to federation is "the varying levels of evolution and maturity of the
// constituent grids"; a job prepared for one dialect needs per-grid
// adaptation work.
type Middleware string

// Middleware dialects of the 2005-era stacks.
const (
	GT2     Middleware = "globus-2"     // TeraGrid and NGS common ground
	GT4     Middleware = "globus-4"     // partially deployed
	Unicore Middleware = "unicore"      // continental European stacks
	Bespoke Middleware = "bespoke-site" // one-off site configurations
)

// Site is one resource provider within a grid.
type Site struct {
	Name    string
	Machine *grid.Machine
	// HiddenIP marks compute nodes that are not externally addressable
	// (§V.C.1). Cross-site communication from such a site requires a
	// gateway relay.
	HiddenIP bool
	// Gateways is the number of access-gateway relay nodes available
	// (PSC's qsocket/Access Gateway solution); 0 with HiddenIP means
	// cross-site jobs simply cannot run here.
	Gateways int
	// GatewayMbps is the per-gateway relay bandwidth.
	GatewayMbps float64
	// Lightpath reports whether the optical lightpath (UKLight/GLIF)
	// is deployed and functional at this site (§V.C.2).
	Lightpath bool
}

// SupportsCrossSite reports whether a job needing external connectivity
// can run at the site.
func (s *Site) SupportsCrossSite() bool { return !s.HiddenIP || s.Gateways > 0 }

// RelayBandwidth returns the aggregate gateway bandwidth in Mbps for
// hidden-IP sites (direct sites return +Inf semantics via ok=false).
func (s *Site) RelayBandwidth() (mbps float64, relayed bool) {
	if !s.HiddenIP {
		return 0, false
	}
	return float64(s.Gateways) * s.GatewayMbps, true
}

// Grid is one administrative grid (TeraGrid, NGS).
type Grid struct {
	Name       string
	Middleware Middleware
	Sites      []*Site
}

// Federation is the grid-of-grids.
type Federation struct {
	Grids []*Grid
}

// Sites returns every site in every grid, in declaration order.
func (f *Federation) Sites() []*Site {
	var out []*Site
	for _, g := range f.Grids {
		out = append(out, g.Sites...)
	}
	return out
}

// TotalProcs sums processors across the federation.
func (f *Federation) TotalProcs() int {
	n := 0
	for _, s := range f.Sites() {
		n += s.Machine.Procs
	}
	return n
}

// Dialects returns the distinct middleware stacks in the federation — each
// one is an adaptation cost for the application (§V.C.6: "a bespoke
// solution is required for every different grid used").
func (f *Federation) Dialects() []Middleware {
	seen := make(map[Middleware]bool)
	var out []Middleware
	for _, g := range f.Grids {
		if !seen[g.Middleware] {
			seen[g.Middleware] = true
			out = append(out, g.Middleware)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SPICEFederation builds the Fig. 5 topology: the TeraGrid subset SPICE
// used (NCSA, SDSC, PSC) plus the UK NGS high-end nodes. Processor counts
// follow the 2005-era allocations (order-of-magnitude faithful); PSC runs
// hidden IPs with its Access Gateway solution; HPCx is present but
// unusable (hidden IP without relay + no lightpath), as the paper reports.
func SPICEFederation() *Federation {
	mk := func(name string, procs int, site string) *grid.Machine {
		m := grid.NewMachine(name, procs)
		m.Site = site
		return m
	}
	teragrid := &Grid{
		Name:       "US TeraGrid",
		Middleware: GT2,
		Sites: []*Site{
			{Name: "NCSA", Machine: mk("ncsa-ia64", 1024, "NCSA"), Lightpath: true},
			{Name: "SDSC", Machine: mk("sdsc-ia64", 512, "SDSC"), Lightpath: true},
			{Name: "PSC", Machine: mk("psc-alpha", 768, "PSC"), HiddenIP: true, Gateways: 4, GatewayMbps: 250, Lightpath: true},
		},
	}
	ngs := &Grid{
		Name:       "UK NGS",
		Middleware: GT2,
		Sites: []*Site{
			{Name: "Manchester", Machine: mk("ngs-man", 256, "Manchester"), Lightpath: true},
			{Name: "Oxford", Machine: mk("ngs-ox", 128, "Oxford"), Lightpath: false},
			{Name: "Leeds", Machine: mk("ngs-leeds", 128, "Leeds"), Lightpath: false},
			{Name: "RAL", Machine: mk("ngs-ral", 256, "RAL"), Lightpath: false},
			// HPCx: "there were additional problems which contributed
			// to its not being usable (e.g., the hidden IP address
			// problem)".
			{Name: "HPCx", Machine: mk("hpcx", 1024, "HPCx"), HiddenIP: true, Gateways: 0, Lightpath: false},
		},
	}
	return &Federation{Grids: []*Grid{teragrid, ngs}}
}

// JobConstraint filters which sites may host a job.
type JobConstraint struct {
	// NeedsCrossSite requires external connectivity (steering,
	// MPICH-G2 spanning, visualization coupling).
	NeedsCrossSite bool
	// NeedsLightpath requires the optical path (interactive sessions).
	NeedsLightpath bool
	// NeedsUDP excludes gateway-relayed sites: the PSC relay "does not
	// support UDP-based traffic".
	NeedsUDP bool
}

// Eligible reports whether site s satisfies the constraint.
func (c JobConstraint) Eligible(s *Site) bool {
	if c.NeedsCrossSite && !s.SupportsCrossSite() {
		return false
	}
	if c.NeedsLightpath && !s.Lightpath {
		return false
	}
	if c.NeedsUDP && s.HiddenIP {
		return false
	}
	return true
}

// Scheduler places jobs across the federation, greedily choosing the site
// with the earliest completion time among eligible sites.
type Scheduler struct {
	Fed      *Federation
	Backfill bool

	queues map[*Site]*grid.Queue
}

// NewScheduler builds a federated scheduler.
func NewScheduler(f *Federation, backfill bool) *Scheduler {
	s := &Scheduler{Fed: f, Backfill: backfill, queues: make(map[*Site]*grid.Queue)}
	for _, site := range f.Sites() {
		s.queues[site] = grid.NewQueue(site.Machine, backfill)
	}
	return s
}

// Submit places one job and returns its placement and the hosting site.
func (s *Scheduler) Submit(j *grid.Job, c JobConstraint) (grid.Placement, *Site, error) {
	var bestSite *Site
	bestEnd := 0.0
	for _, site := range s.Fed.Sites() {
		if !c.Eligible(site) {
			continue
		}
		start, err := site.Machine.EarliestStart(j.Submit, j.Hours, j.Procs)
		if err != nil {
			continue
		}
		end := start + j.Hours
		if bestSite == nil || end < bestEnd {
			bestSite, bestEnd = site, end
		}
	}
	if bestSite == nil {
		return grid.Placement{}, nil, fmt.Errorf("federation: no eligible site for job %s (%d procs)", j.ID, j.Procs)
	}
	p, err := s.queues[bestSite].Submit(j)
	if err != nil {
		return grid.Placement{}, nil, err
	}
	return p, bestSite, nil
}

// SubmitAll places a job set in order and returns the placements.
func (s *Scheduler) SubmitAll(jobs []*grid.Job, c JobConstraint) ([]grid.Placement, error) {
	out := make([]grid.Placement, 0, len(jobs))
	for _, j := range jobs {
		p, _, err := s.Submit(j, c)
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// CoAllocate finds the earliest common start at which every listed site
// can simultaneously reserve procs[i] processors for hours, then books all
// reservations. This is the cross-site reservation primitive the paper
// says was handled "by hand" with error-prone email exchanges.
func CoAllocate(sites []*Site, procs []int, hours, after float64) (float64, error) {
	if len(sites) == 0 || len(sites) != len(procs) {
		return 0, errors.New("federation: co-allocation input mismatch")
	}
	t := after
	for iter := 0; iter < 10000; iter++ {
		// Ask each site for its earliest start at or after t; converge
		// on the max.
		next := t
		feasible := true
		for i, s := range sites {
			st, err := s.Machine.EarliestStart(t, hours, procs[i])
			if err != nil {
				return 0, fmt.Errorf("federation: co-allocation at %s: %w", s.Name, err)
			}
			if st > next {
				next = st
				feasible = false
			}
		}
		if feasible {
			for i, s := range sites {
				if err := s.Machine.Reserve(t, hours, procs[i]); err != nil {
					return 0, err
				}
			}
			return t, nil
		}
		t = next
	}
	return 0, errors.New("federation: co-allocation did not converge")
}
