package imd

import (
	"time"

	"spice/internal/netsim"
	"spice/internal/xrand"
)

// ModelConfig parameterizes the discrete-event session-timing model used
// to study QoS requirements at the paper's production scale (300,000
// atoms on 256 processors) without running a 300k-atom simulation.
type ModelConfig struct {
	// ComputePerFrame is the simulation time to produce one frame
	// (Stride MD steps) on the allocated processors.
	ComputePerFrame time.Duration
	// RenderTime is the visualizer's per-frame processing time.
	RenderTime time.Duration
	// NAtoms sets the frame wire size.
	NAtoms int
	// Frames is the session length.
	Frames int
	// Profile is the network path between simulation and visualizer.
	Profile netsim.Profile
	// Sync selects interactive (blocking) mode.
	Sync bool
	// Seed drives the delay sampling.
	Seed uint64
}

// ModelStats is the simulated session outcome.
type ModelStats struct {
	Wall    time.Duration
	Compute time.Duration
	Stall   time.Duration
	// FPS is achieved frames per wall-clock second.
	FPS float64
	// StallFraction is Stall/Wall; Slowdown is Wall/Compute.
	StallFraction float64
	Slowdown      float64
}

// SimulateSession runs the timing model: in interactive (Sync) mode every
// frame costs compute + frame delivery + render + force return, because
// the simulation blocks for the user's response (the stall mechanism of
// the paper's §II–III). In async mode delivery is pipelined with compute
// and only serialization backpressure can stall the simulation.
func SimulateSession(cfg ModelConfig) ModelStats {
	rng := xrand.New(cfg.Seed + 7)
	frameBytes := FrameBytes(cfg.NAtoms)
	var stats ModelStats
	for f := 0; f < cfg.Frames; f++ {
		stats.Compute += cfg.ComputePerFrame
		down := cfg.Profile.SampleDelay(rng, frameBytes)
		up := cfg.Profile.SampleDelay(rng, ForceBytes)
		if cfg.Sync {
			stats.Stall += down + cfg.RenderTime + up
		} else {
			// Pipelined: the socket absorbs latency; only the part of
			// the serialization that exceeds the compute window blocks
			// the writer (TCP backpressure).
			excess := down - cfg.Profile.Latency - cfg.ComputePerFrame
			if excess > 0 {
				stats.Stall += excess
			}
		}
	}
	stats.Wall = stats.Compute + stats.Stall
	if stats.Wall > 0 {
		stats.FPS = float64(cfg.Frames) / stats.Wall.Seconds()
		stats.StallFraction = float64(stats.Stall) / float64(stats.Wall)
	}
	if stats.Compute > 0 {
		stats.Slowdown = float64(stats.Wall) / float64(stats.Compute)
	} else {
		stats.Slowdown = 1
	}
	return stats
}

// PaperComputePerFrame estimates the per-frame compute time for the
// paper's production system from its in-text cost model: 1 ns of a
// 300,000-atom system takes 24 h on 128 processors (§I), i.e. each 1 fs
// MD step costs 86.4 ms · (128/procs) — assuming the near-ideal scaling
// NAMD achieves at these processor counts. A frame is stride steps.
func PaperComputePerFrame(procs, stride int) time.Duration {
	if procs <= 0 {
		procs = 128
	}
	perStep := 86.4 * 128 / float64(procs) // ms per MD step
	return time.Duration(perStep * float64(stride) * float64(time.Millisecond))
}
