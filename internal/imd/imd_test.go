package imd

import (
	"bytes"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"spice/internal/forcefield"
	"spice/internal/md"
	"spice/internal/netsim"
	"spice/internal/topology"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Type: MsgHandshake, NAtoms: 42},
		{Type: MsgFrame, Step: 100, Time: 1.5, Coords: []float32{1, 2, 3, 4, 5, 6}},
		{Type: MsgForce, Atom: 7, FX: 0.1, FY: -0.2, FZ: 3.5},
		{Type: MsgAck},
		{Type: MsgPause},
		{Type: MsgResume},
		{Type: MsgDetach},
		{Type: MsgEnergy, Time: 2.5, FX: -100.25},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write %v: %v", m.Type, err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("read %v: %v", want.Type, err)
		}
		if got.Type != want.Type || got.NAtoms != want.NAtoms || got.Step != want.Step ||
			got.Time != want.Time || got.Atom != want.Atom ||
			got.FX != want.FX || got.FY != want.FY || got.FZ != want.FZ {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
		}
		if len(got.Coords) != len(want.Coords) {
			t.Fatalf("coords length: %d vs %d", len(got.Coords), len(want.Coords))
		}
		for i := range got.Coords {
			if got.Coords[i] != want.Coords[i] {
				t.Fatal("coords corrupted")
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{0xFF})); err == nil {
		t.Fatal("unknown type accepted")
	}
	// Implausible frame size.
	var buf bytes.Buffer
	_ = Write(&buf, &Message{Type: MsgFrame, Coords: []float32{1, 2, 3}})
	b := buf.Bytes()
	// Corrupt the coord count (bytes 17..20 after type+step+time).
	b[17], b[18], b[19], b[20] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("implausible coord count accepted")
	}
	// Truncated stream.
	if _, err := Read(bytes.NewReader(buf.Bytes()[:5])); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated read err = %v", err)
	}
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty read err = %v", err)
	}
}

func TestFrameBytes(t *testing.T) {
	if FrameBytes(0) != 21 {
		t.Fatalf("empty frame = %d bytes", FrameBytes(0))
	}
	if FrameBytes(100)-FrameBytes(0) != 1200 {
		t.Fatal("12 bytes per atom expected")
	}
}

func TestPackCoords(t *testing.T) {
	cs := PackCoords([]float64{1, 4}, []float64{2, 5}, []float64{3, 6})
	want := []float32{1, 2, 3, 4, 5, 6}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("packed = %v", cs)
		}
	}
	if !CoordsFinite(cs) {
		t.Fatal("finite coords reported non-finite")
	}
	inf := float32(math.Inf(1))
	if CoordsFinite([]float32{inf}) {
		t.Fatal("inf coords reported finite")
	}
}

// testEngine builds a tiny chain engine for session tests.
func testEngine(t *testing.T, seed uint64) *md.Engine {
	t.Helper()
	top := topology.New()
	p := topology.DefaultDNA(4)
	_, pos, err := topology.BuildDNA(top, p)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := md.New(md.Config{
		Top:   top,
		Init:  pos,
		Terms: []forcefield.Term{forcefield.Bonds{Top: top}},
		Seed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestSyncSessionExchangesFramesAndForces(t *testing.T) {
	eng := testEngine(t, 1)
	simConn, visConn := net.Pipe()
	defer simConn.Close()
	defer visConn.Close()

	var wg sync.WaitGroup
	var stats *Stats
	var serveErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, serveErr = Serve(eng, simConn, SessionConfig{Stride: 5, Frames: 10, Sync: true})
	}()

	client, err := Connect(visConn)
	if err != nil {
		t.Fatal(err)
	}
	if client.NAtoms != 4 {
		t.Fatalf("handshake atoms = %d", client.NAtoms)
	}
	forcesSent := 0
	client.OnFrame = func(step int64, _ float64, coords []float32) *Message {
		if len(coords) != 12 {
			t.Errorf("frame has %d coords", len(coords))
		}
		// Steer atom 0 upward on every other frame.
		if client.FramesSeen%2 == 0 {
			forcesSent++
			return &Message{Type: MsgForce, Atom: 0, FZ: 2}
		}
		return nil
	}
	if err := client.Run(); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		t.Fatalf("client: %v", err)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
	if stats.Frames != 10 {
		t.Fatalf("frames = %d", stats.Frames)
	}
	if stats.Steps != 50 {
		t.Fatalf("steps = %d", stats.Steps)
	}
	if stats.ForcesReceived != forcesSent {
		t.Fatalf("forces received %d, sent %d", stats.ForcesReceived, forcesSent)
	}
	if client.FramesSeen != 10 {
		t.Fatalf("client saw %d frames", client.FramesSeen)
	}
}

func TestSessionPauseResume(t *testing.T) {
	eng := testEngine(t, 2)
	simConn, visConn := net.Pipe()
	defer simConn.Close()
	defer visConn.Close()

	var stats *Stats
	done := make(chan error, 1)
	go func() {
		var err error
		stats, err = Serve(eng, simConn, SessionConfig{Stride: 2, Frames: 6, Sync: true})
		done <- err
	}()
	client, err := Connect(visConn)
	if err != nil {
		t.Fatal(err)
	}
	// Pause after frame 2, resume after frame 4.
	client.OnFrame = func(int64, float64, []float32) *Message {
		switch client.FramesSeen {
		case 2:
			return &Message{Type: MsgPause}
		case 4:
			return &Message{Type: MsgResume}
		}
		return nil
	}
	if err := client.Run(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Frames 4 and 5 are produced while paused (no stepping): 6 frames
	// but fewer than 12 steps.
	if stats.Steps >= 12 {
		t.Fatalf("pause did not stop stepping: %d steps", stats.Steps)
	}
}

func TestSessionClientDetach(t *testing.T) {
	eng := testEngine(t, 3)
	simConn, visConn := net.Pipe()
	defer simConn.Close()
	defer visConn.Close()
	done := make(chan error, 1)
	go func() {
		_, err := Serve(eng, simConn, SessionConfig{Stride: 1, Frames: 1000, Sync: true})
		done <- err
	}()
	client, err := Connect(visConn)
	if err != nil {
		t.Fatal(err)
	}
	client.OnFrame = func(int64, float64, []float32) *Message {
		if client.FramesSeen >= 3 {
			return &Message{Type: MsgDetach}
		}
		return nil
	}
	_ = client.Run()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after detach: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop on detach")
	}
}

func TestSyncSessionStallsOnSlowNetwork(t *testing.T) {
	run := func(p netsim.Profile) *Stats {
		eng := testEngine(t, 4)
		simConn, visConn := netsim.Pipe(p, 0.02, 9) // 2% scale keeps test fast
		defer simConn.Close()
		defer visConn.Close()
		statsCh := make(chan *Stats, 1)
		go func() {
			s, _ := Serve(eng, simConn, SessionConfig{Stride: 3, Frames: 15, Sync: true})
			statsCh <- s
		}()
		client, err := Connect(visConn)
		if err != nil {
			t.Fatal(err)
		}
		_ = client.Run()
		return <-statsCh
	}
	fast := run(netsim.LAN)
	slow := run(netsim.Congested)
	if slow.Stall <= fast.Stall {
		t.Fatalf("congested stall %v not worse than LAN %v", slow.Stall, fast.Stall)
	}
	if slow.StallFraction() <= fast.StallFraction() {
		t.Fatalf("stall fractions: congested %v vs LAN %v", slow.StallFraction(), fast.StallFraction())
	}
}

func TestHapticSteersAtomToTarget(t *testing.T) {
	eng := testEngine(t, 5)
	startZ := eng.State().Pos[0].Z
	target := startZ + 15
	simConn, visConn := net.Pipe()
	defer simConn.Close()
	defer visConn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Serve(eng, simConn, SessionConfig{Stride: 20, Frames: 120, Sync: true})
	}()
	client, err := Connect(visConn)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHaptic(0, target, 10)
	client.OnFrame = h.OnFrame
	_ = client.Run()
	<-done
	endZ := eng.State().Pos[0].Z
	if endZ-startZ < 5 {
		t.Fatalf("haptic steering moved atom by %v Å, want > 5", endZ-startZ)
	}
	if h.PeakForcePN() <= 0 {
		t.Fatal("no haptic force recorded")
	}
	if len(h.ForceLog) != 120 {
		t.Fatalf("force log has %d entries", len(h.ForceLog))
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	s := Stats{Compute: 3 * time.Second, Stall: time.Second}
	if sf := s.StallFraction(); sf != 0.25 {
		t.Fatalf("stall fraction = %v", sf)
	}
	if sl := s.Slowdown(); sl != 4.0/3 {
		t.Fatalf("slowdown = %v", sl)
	}
	var zero Stats
	if zero.StallFraction() != 0 || zero.Slowdown() != 1 {
		t.Fatal("zero stats metrics wrong")
	}
}

func TestModelSyncLightpathVsCongested(t *testing.T) {
	base := ModelConfig{
		ComputePerFrame: time.Second,
		RenderTime:      30 * time.Millisecond,
		NAtoms:          300000,
		Frames:          50,
		Sync:            true,
		Seed:            1,
	}
	light := base
	light.Profile = netsim.Lightpath
	cong := base
	cong.Profile = netsim.Congested
	ls := SimulateSession(light)
	cs := SimulateSession(cong)
	// Lightpath: ~80 ms RTT + render on 1 s compute → slowdown < 1.2.
	if ls.Slowdown > 1.25 {
		t.Fatalf("lightpath slowdown = %v", ls.Slowdown)
	}
	// Congested: 3.6 MB frames at 20 Mbps ≈ +1.4 s/frame → slowdown > 2.
	if cs.Slowdown < 2 {
		t.Fatalf("congested slowdown = %v", cs.Slowdown)
	}
	if cs.FPS >= ls.FPS {
		t.Fatal("congested should achieve lower FPS")
	}
}

func TestModelAsyncHidesLatency(t *testing.T) {
	cfg := ModelConfig{
		ComputePerFrame: 500 * time.Millisecond,
		RenderTime:      30 * time.Millisecond,
		NAtoms:          300000,
		Frames:          50,
		Profile:         netsim.SharedWAN,
		Seed:            2,
	}
	sync := cfg
	sync.Sync = true
	asyncStats := SimulateSession(cfg)
	syncStats := SimulateSession(sync)
	if asyncStats.Slowdown >= syncStats.Slowdown {
		t.Fatalf("async %v should beat sync %v", asyncStats.Slowdown, syncStats.Slowdown)
	}
}

func TestPaperComputePerFrame(t *testing.T) {
	// 128 procs, 1 step: the paper's 86.4 ms.
	if d := PaperComputePerFrame(128, 1); d != time.Duration(86.4*float64(time.Millisecond)) {
		t.Fatalf("128-proc step = %v", d)
	}
	// Doubling processors halves the time.
	if PaperComputePerFrame(256, 100) != PaperComputePerFrame(128, 100)/2 {
		t.Fatal("scaling not linear")
	}
	if PaperComputePerFrame(0, 1) != PaperComputePerFrame(128, 1) {
		t.Fatal("default procs should be 128")
	}
}
