package imd

import (
	"math"

	"spice/internal/units"
	"spice/internal/xrand"
)

// Haptic is a synthetic haptic device + human operator. The paper (§II)
// treats haptic devices "as if they were just additional computing
// resources" inside the steering framework: the device receives frames
// like any visualizer and sends back forces.
//
// The synthetic operator steers a chosen atom toward a target z with a
// proportional controller, updating the applied force only at a human
// reaction cadence, with motor noise — enough to exercise the same
// protocol path a real Phantom device would.
type Haptic struct {
	// Atom is the steered atom index.
	Atom int
	// TargetZ is where the operator is trying to move the atom, Å.
	TargetZ float64
	// MaxForcePN caps the applied force in pN (device limit).
	MaxForcePN float64
	// Gain is the proportional gain in pN/Å.
	Gain float64
	// ReactionFrames is how many frames pass between force updates
	// (human reaction time expressed in frame counts).
	ReactionFrames int
	// NoisePN is the motor-noise standard deviation in pN.
	NoisePN float64

	rng       *xrand.Source
	lastForce float64 // pN, along z
	frames    int

	// ForceLog records the z-force (pN) sent after each frame.
	ForceLog []float64
}

// NewHaptic returns a device steering atom toward targetZ.
func NewHaptic(atom int, targetZ float64, seed uint64) *Haptic {
	return &Haptic{
		Atom:           atom,
		TargetZ:        targetZ,
		MaxForcePN:     300,
		Gain:           15,
		ReactionFrames: 5,
		NoisePN:        8,
		rng:            xrand.New(seed),
	}
}

// OnFrame implements the Client.OnFrame hook.
func (h *Haptic) OnFrame(_ int64, _ float64, coords []float32) *Message {
	h.frames++
	if 3*h.Atom+2 < len(coords) && (h.ReactionFrames <= 1 || h.frames%h.ReactionFrames == 1 || h.lastForce == 0) {
		z := float64(coords[3*h.Atom+2])
		f := h.Gain * (h.TargetZ - z)
		f += h.NoisePN * h.rng.NormFloat64()
		if f > h.MaxForcePN {
			f = h.MaxForcePN
		}
		if f < -h.MaxForcePN {
			f = -h.MaxForcePN
		}
		h.lastForce = f
	}
	h.ForceLog = append(h.ForceLog, h.lastForce)
	if h.lastForce == 0 {
		return &Message{Type: MsgAck}
	}
	return &Message{
		Type: MsgForce,
		Atom: int32(h.Atom),
		FZ:   units.KcalMolAFromPN(h.lastForce),
	}
}

// PeakForcePN returns the largest absolute force the operator applied —
// the paper uses haptic exploration "to get an estimate of force values".
func (h *Haptic) PeakForcePN() float64 {
	peak := 0.0
	for _, f := range h.ForceLog {
		if a := math.Abs(f); a > peak {
			peak = a
		}
	}
	return peak
}
