package imd

import (
	"fmt"
	"net"
	"time"

	"spice/internal/md"
	"spice/internal/vec"
)

// SessionConfig controls the simulation-side IMD loop.
type SessionConfig struct {
	// Stride is the number of MD steps between frames (default 10).
	Stride int
	// Frames is the number of frames to exchange before detaching.
	Frames int
	// Sync selects interactive mode: after each frame the simulation
	// blocks until the client responds (force or ack). This is the mode
	// whose stall time the paper's QoS argument is about. With Sync
	// false the simulation free-runs and applies whatever forces have
	// arrived (batch visualization / monitoring mode).
	Sync bool
}

// Stats summarizes a completed session from the simulation side.
type Stats struct {
	Frames         int
	ForcesReceived int
	Steps          int
	// Compute is wall time spent stepping the engine; Stall is wall
	// time blocked on the network (send + wait for response).
	Compute time.Duration
	Stall   time.Duration
}

// StallFraction is Stall/(Stall+Compute).
func (s Stats) StallFraction() float64 {
	total := s.Stall + s.Compute
	if total == 0 {
		return 0
	}
	return float64(s.Stall) / float64(total)
}

// Slowdown is the ratio of achieved wall time to pure-compute time: 1.0
// means the network is free.
func (s Stats) Slowdown() float64 {
	if s.Compute == 0 {
		return 1
	}
	return float64(s.Stall+s.Compute) / float64(s.Compute)
}

// Serve runs the simulation side of an IMD session over conn: handshake,
// then Frames iterations of [step Stride times, send frame, (Sync) await
// response, apply received forces]. It returns session statistics.
func Serve(eng *md.Engine, conn net.Conn, cfg SessionConfig) (*Stats, error) {
	if cfg.Stride <= 0 {
		cfg.Stride = 10
	}
	if cfg.Frames <= 0 {
		cfg.Frames = 1
	}
	n := eng.Topology().N()
	if err := Write(conn, &Message{Type: MsgHandshake, NAtoms: int32(n)}); err != nil {
		return nil, fmt.Errorf("imd: handshake: %w", err)
	}

	// Reader goroutine: decouples the socket from the MD loop so that in
	// async mode force messages are applied as they arrive.
	incoming := make(chan *Message, 64)
	readErr := make(chan error, 1)
	go func() {
		defer close(incoming)
		for {
			m, err := Read(conn)
			if err != nil {
				readErr <- err
				return
			}
			incoming <- m
			if m.Type == MsgDetach {
				return
			}
		}
	}()

	st := &Stats{}
	paused := false
	applyMsg := func(m *Message) bool {
		switch m.Type {
		case MsgForce:
			eng.External.Set(int(m.Atom), vec.V{X: m.FX, Y: m.FY, Z: m.FZ})
			st.ForcesReceived++
		case MsgPause:
			paused = true
		case MsgResume:
			paused = false
		case MsgDetach:
			return false
		}
		return true
	}

	// clientLost reports the reader goroutine's error, if any, when the
	// incoming channel closes (a detach closes it without error).
	clientLost := func() error {
		select {
		case err := <-readErr:
			return fmt.Errorf("imd: client lost: %w", err)
		default:
			return nil
		}
	}

	for f := 0; f < cfg.Frames; f++ {
		// Drain any pending client messages (async input path).
	drain:
		for {
			select {
			case m, ok := <-incoming:
				if !ok {
					return st, clientLost()
				}
				if !applyMsg(m) {
					return st, nil
				}
			default:
				break drain
			}
		}
		if !paused {
			t0 := time.Now()
			eng.Run(cfg.Stride)
			st.Steps += cfg.Stride
			st.Compute += time.Since(t0)
		}

		frame := eng.Frame()
		coords := make([]float32, 0, 3*n)
		for _, p := range frame.Pos {
			coords = append(coords, float32(p.X), float32(p.Y), float32(p.Z))
		}
		t1 := time.Now()
		if err := Write(conn, &Message{Type: MsgFrame, Step: frame.Step, Time: frame.Time, Coords: coords}); err != nil {
			return st, fmt.Errorf("imd: frame send: %w", err)
		}
		st.Frames++
		if cfg.Sync {
			// Interactive mode: block for the client's response. This
			// wait is the stall the paper attributes to low-QoS paths.
			m, ok := <-incoming
			st.Stall += time.Since(t1)
			if !ok {
				return st, clientLost()
			}
			if !applyMsg(m) {
				return st, nil
			}
		} else {
			st.Stall += time.Since(t1) // send cost only
		}
	}
	_ = Write(conn, &Message{Type: MsgDetach})
	return st, nil
}

// Client is the visualizer/instrument side of a session.
type Client struct {
	conn   net.Conn
	NAtoms int
	// OnFrame, if set, inspects each received frame and returns the
	// force message to send back (nil → plain ack). This is where a
	// visualizer hangs its steering UI and a haptic device its force
	// feedback loop.
	OnFrame func(step int64, time float64, coords []float32) *Message

	FramesSeen int
}

// Connect performs the client handshake.
func Connect(conn net.Conn) (*Client, error) {
	m, err := Read(conn)
	if err != nil {
		return nil, fmt.Errorf("imd: awaiting handshake: %w", err)
	}
	if m.Type != MsgHandshake {
		return nil, fmt.Errorf("imd: expected handshake, got %v", m.Type)
	}
	return &Client{conn: conn, NAtoms: int(m.NAtoms)}, nil
}

// Run processes frames until detach or error. In sync sessions it must
// respond to every frame (it does).
func (c *Client) Run() error {
	for {
		m, err := Read(c.conn)
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgFrame:
			c.FramesSeen++
			var reply *Message
			if c.OnFrame != nil {
				reply = c.OnFrame(m.Step, m.Time, m.Coords)
			}
			if reply == nil {
				reply = &Message{Type: MsgAck}
			}
			if err := Write(c.conn, reply); err != nil {
				return err
			}
			if reply.Type == MsgDetach {
				return nil
			}
		case MsgDetach:
			return nil
		}
	}
}

// Detach asks the simulation to end the session.
func (c *Client) Detach() error { return Write(c.conn, &Message{Type: MsgDetach}) }
