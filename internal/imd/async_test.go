package imd

import (
	"io"
	"net"
	"testing"
	"time"

	"spice/internal/netsim"
)

func TestAsyncSessionFreeRuns(t *testing.T) {
	eng := testEngine(t, 20)
	simConn, visConn := net.Pipe()
	defer simConn.Close()
	defer visConn.Close()

	statsCh := make(chan *Stats, 1)
	errCh := make(chan error, 1)
	go func() {
		s, err := Serve(eng, simConn, SessionConfig{Stride: 2, Frames: 20, Sync: false})
		statsCh <- s
		errCh <- err
	}()
	client, err := Connect(visConn)
	if err != nil {
		t.Fatal(err)
	}
	// Async client: consume frames, occasionally push a force.
	client.OnFrame = func(int64, float64, []float32) *Message {
		if client.FramesSeen == 5 {
			return &Message{Type: MsgForce, Atom: 1, FZ: 1}
		}
		return nil
	}
	if err := client.Run(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	stats := <-statsCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if stats.Frames != 20 {
		t.Fatalf("frames = %d", stats.Frames)
	}
	if stats.Steps != 40 {
		t.Fatalf("steps = %d", stats.Steps)
	}
	// In async mode the force may land after the loop drained its last
	// messages; at least the session must complete without stalling on
	// every frame.
	if stats.Stall > stats.Compute*100 {
		t.Fatalf("async session stalled excessively: %v vs %v", stats.Stall, stats.Compute)
	}
}

func TestServeDefaults(t *testing.T) {
	eng := testEngine(t, 21)
	simConn, visConn := net.Pipe()
	defer simConn.Close()
	defer visConn.Close()
	done := make(chan *Stats, 1)
	go func() {
		s, _ := Serve(eng, simConn, SessionConfig{}) // all defaults
		done <- s
	}()
	client, err := Connect(visConn)
	if err != nil {
		t.Fatal(err)
	}
	_ = client.Run()
	s := <-done
	if s.Frames != 1 || s.Steps != 10 {
		t.Fatalf("defaults: frames=%d steps=%d, want 1/10", s.Frames, s.Steps)
	}
}

func TestServeClientVanishes(t *testing.T) {
	eng := testEngine(t, 22)
	simConn, visConn := net.Pipe()
	defer simConn.Close()
	done := make(chan error, 1)
	go func() {
		_, err := Serve(eng, simConn, SessionConfig{Stride: 1, Frames: 100, Sync: true})
		done <- err
	}()
	client, err := Connect(visConn)
	if err != nil {
		t.Fatal(err)
	}
	// Read two frames, then slam the connection shut.
	for i := 0; i < 2; i++ {
		m, err := Read(visConn)
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != MsgFrame {
			t.Fatalf("got %v", m.Type)
		}
		if err := Write(visConn, &Message{Type: MsgAck}); err != nil {
			t.Fatal(err)
		}
	}
	visConn.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("vanished client not reported")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung after client loss")
	}
	_ = client
}

func TestModelZeroFrames(t *testing.T) {
	m := SimulateSession(ModelConfig{Profile: netsim.LAN, Sync: true})
	if m.Wall != 0 || m.FPS != 0 || m.Slowdown != 1 {
		t.Fatalf("zero-frame session stats: %+v", m)
	}
}

func TestModelStallFractionBounds(t *testing.T) {
	for _, p := range netsim.Profiles() {
		for _, sync := range []bool{true, false} {
			m := SimulateSession(ModelConfig{
				ComputePerFrame: 100 * time.Millisecond,
				RenderTime:      10 * time.Millisecond,
				NAtoms:          1000,
				Frames:          20,
				Profile:         p,
				Sync:            sync,
				Seed:            5,
			})
			if m.StallFraction < 0 || m.StallFraction > 1 {
				t.Fatalf("%s sync=%v: stall fraction %v", p.Name, sync, m.StallFraction)
			}
			if m.Slowdown < 1 {
				t.Fatalf("%s sync=%v: slowdown %v < 1", p.Name, sync, m.Slowdown)
			}
			if m.Wall != m.Compute+m.Stall {
				t.Fatal("wall != compute + stall")
			}
		}
	}
}

func TestModelMoreAtomsMoreStall(t *testing.T) {
	mk := func(atoms int) ModelStats {
		return SimulateSession(ModelConfig{
			ComputePerFrame: 500 * time.Millisecond,
			RenderTime:      10 * time.Millisecond,
			NAtoms:          atoms,
			Frames:          50,
			Profile:         netsim.Congested,
			Sync:            true,
			Seed:            6,
		})
	}
	small, large := mk(1000), mk(300000)
	if large.Stall <= small.Stall {
		t.Fatalf("larger frames should stall more on a thin pipe: %v vs %v", large.Stall, small.Stall)
	}
}

func TestHapticReactionCadence(t *testing.T) {
	h := NewHaptic(0, 100, 1)
	h.ReactionFrames = 4
	coords := []float32{0, 0, 0}
	var forces []float64
	for i := 0; i < 12; i++ {
		m := h.OnFrame(int64(i), 0, coords)
		if m.Type != MsgForce {
			t.Fatalf("frame %d: %v", i, m.Type)
		}
		forces = append(forces, m.FZ)
	}
	// The force only changes every ReactionFrames frames.
	changes := 0
	for i := 1; i < len(forces); i++ {
		if forces[i] != forces[i-1] {
			changes++
		}
	}
	if changes > 3 {
		t.Fatalf("force changed %d times in 12 frames with cadence 4", changes)
	}
}

func TestHapticForceClamp(t *testing.T) {
	h := NewHaptic(0, 1e6, 2) // absurd target: force must clamp
	h.NoisePN = 0
	m := h.OnFrame(0, 0, []float32{0, 0, 0})
	if m.Type != MsgForce {
		t.Fatal("no force emitted")
	}
	if h.PeakForcePN() > h.MaxForcePN+1e-9 {
		t.Fatalf("force %v exceeds device limit %v", h.PeakForcePN(), h.MaxForcePN)
	}
}

func TestHapticAtomOutOfFrame(t *testing.T) {
	h := NewHaptic(5, 10, 3) // atom 5 not present in a 1-atom frame
	m := h.OnFrame(0, 0, []float32{0, 0, 0})
	if m.Type != MsgAck {
		t.Fatalf("expected ack for out-of-frame atom, got %v", m.Type)
	}
}
