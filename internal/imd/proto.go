// Package imd implements Interactive Molecular Dynamics: the bi-directional
// wire protocol between a running simulation and a visualizer (or haptic
// device), the simulation- and client-side session drivers, and a
// discrete-event model of session timing under different network QoS
// profiles.
//
// The paper's §III describes the interaction pattern: the simulation
// streams coordinate frames to the visualizer; the user, via the
// visualizer or a haptic device, sends forces back that the simulation
// applies on the next step. The exchange is synchronous in interactive
// mode — which is exactly why "a general purpose network is not
// acceptable": time the simulation spends waiting on the network is time
// 256 processors of a supercomputer sit idle.
package imd

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MsgType discriminates protocol messages.
type MsgType byte

// Protocol message types.
const (
	// MsgHandshake opens a session: sim → client, carries atom count.
	MsgHandshake MsgType = iota + 1
	// MsgFrame carries one coordinate frame: sim → client.
	MsgFrame
	// MsgForce applies a force to one atom: client → sim.
	MsgForce
	// MsgAck acknowledges a frame with no force input: client → sim.
	MsgAck
	// MsgPause suspends stepping: client → sim.
	MsgPause
	// MsgResume resumes stepping: client → sim.
	MsgResume
	// MsgDetach ends the session: either direction.
	MsgDetach
	// MsgEnergy carries the energy readout: sim → client.
	MsgEnergy
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	switch m {
	case MsgHandshake:
		return "handshake"
	case MsgFrame:
		return "frame"
	case MsgForce:
		return "force"
	case MsgAck:
		return "ack"
	case MsgPause:
		return "pause"
	case MsgResume:
		return "resume"
	case MsgDetach:
		return "detach"
	case MsgEnergy:
		return "energy"
	default:
		return fmt.Sprintf("msgtype(%d)", byte(m))
	}
}

// Message is one protocol message. Fields are used according to Type:
// Handshake uses NAtoms; Frame uses Step/Time/Coords; Force uses
// Atom/FX/FY/FZ; Energy uses Time and FX (as the energy value).
type Message struct {
	Type   MsgType
	NAtoms int32
	Step   int64
	Time   float64
	Coords []float32 // xyz triplets; len = 3·natoms
	Atom   int32
	FX     float64
	FY     float64
	FZ     float64
}

// maxAtoms bounds decodable frame sizes (defends against corrupt streams).
const maxAtoms = 1 << 24

// Write encodes m to w. The encoding is little-endian with a one-byte
// type tag, mirroring the lean custom protocol the RealityGrid steering
// library used in place of heavyweight grid service calls on the fast
// path.
func Write(w io.Writer, m *Message) error {
	if err := binary.Write(w, binary.LittleEndian, m.Type); err != nil {
		return err
	}
	switch m.Type {
	case MsgHandshake:
		return binary.Write(w, binary.LittleEndian, m.NAtoms)
	case MsgFrame:
		if err := binary.Write(w, binary.LittleEndian, m.Step); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, m.Time); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, int32(len(m.Coords))); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, m.Coords)
	case MsgForce:
		for _, v := range []any{m.Atom, m.FX, m.FY, m.FZ} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	case MsgEnergy:
		if err := binary.Write(w, binary.LittleEndian, m.Time); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, m.FX)
	case MsgAck, MsgPause, MsgResume, MsgDetach:
		return nil
	default:
		return fmt.Errorf("imd: cannot encode message type %v", m.Type)
	}
}

// Read decodes the next message from r.
func Read(r io.Reader) (*Message, error) {
	var t MsgType
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return nil, err
	}
	m := &Message{Type: t}
	switch t {
	case MsgHandshake:
		if err := binary.Read(r, binary.LittleEndian, &m.NAtoms); err != nil {
			return nil, unexpected(err)
		}
		if m.NAtoms < 0 || m.NAtoms > maxAtoms {
			return nil, fmt.Errorf("imd: implausible atom count %d", m.NAtoms)
		}
		return m, nil
	case MsgFrame:
		if err := binary.Read(r, binary.LittleEndian, &m.Step); err != nil {
			return nil, unexpected(err)
		}
		if err := binary.Read(r, binary.LittleEndian, &m.Time); err != nil {
			return nil, unexpected(err)
		}
		var n int32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, unexpected(err)
		}
		if n < 0 || n > 3*maxAtoms {
			return nil, fmt.Errorf("imd: implausible coord count %d", n)
		}
		m.Coords = make([]float32, n)
		if err := binary.Read(r, binary.LittleEndian, m.Coords); err != nil {
			return nil, unexpected(err)
		}
		return m, nil
	case MsgForce:
		if err := binary.Read(r, binary.LittleEndian, &m.Atom); err != nil {
			return nil, unexpected(err)
		}
		for _, p := range []*float64{&m.FX, &m.FY, &m.FZ} {
			if err := binary.Read(r, binary.LittleEndian, p); err != nil {
				return nil, unexpected(err)
			}
		}
		return m, nil
	case MsgEnergy:
		if err := binary.Read(r, binary.LittleEndian, &m.Time); err != nil {
			return nil, unexpected(err)
		}
		if err := binary.Read(r, binary.LittleEndian, &m.FX); err != nil {
			return nil, unexpected(err)
		}
		return m, nil
	case MsgAck, MsgPause, MsgResume, MsgDetach:
		return m, nil
	default:
		return nil, fmt.Errorf("imd: unknown message type %d", byte(t))
	}
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// FrameBytes returns the wire size of a frame for natoms atoms — used by
// the QoS delay model to account for serialization time.
func FrameBytes(natoms int) int { return 1 + 8 + 8 + 4 + 12*natoms }

// ForceBytes is the wire size of a force message.
const ForceBytes = 1 + 4 + 24

// PackCoords converts float64 xyz positions to the float32 wire layout.
func PackCoords(xs, ys, zs []float64) []float32 {
	out := make([]float32, 0, 3*len(xs))
	for i := range xs {
		out = append(out, float32(xs[i]), float32(ys[i]), float32(zs[i]))
	}
	return out
}

// CoordsFinite reports whether all packed coordinates are finite.
func CoordsFinite(cs []float32) bool {
	for _, c := range cs {
		f := float64(c)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
