// Package ti implements grid-based steered Thermodynamic Integration —
// the extension the paper's conclusion names explicitly: "the grid
// computing infrastructure used here for computing free energies by
// SMD-JE can be easily extended to compute free energies using different
// approaches (e.g., thermodynamic integration)" (§VI, citing Fowler, Jha
// & Coveney 2005).
//
// The method holds the pulling atom fixed at a sequence of λ windows
// along the reaction coordinate; at each window the system equilibrates
// and the mean constraint force ⟨κ(λ - s)⟩ estimates dF/dλ (stiff-spring
// approximation). Integrating the mean-force profile yields the PMF. Like
// the SMD-JE ensemble, the windows are embarrassingly parallel — each is
// one grid job, which is why the same federated infrastructure applies.
package ti

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"spice/internal/analysis"
	"spice/internal/md"
	"spice/internal/smd"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// Config drives one TI free-energy calculation.
type Config struct {
	// Build constructs a fresh simulation per window (window index and
	// seed supplied); it returns the engine and steered atom indices.
	Build func(window int, seed uint64) (*md.Engine, []int, error)
	// Kappa is the restraint spring constant in kcal/mol/Å². Stiffer
	// springs localize the window better but need shorter timesteps;
	// 300 pN/Å-equivalent is a good default.
	Kappa float64
	// Axis is the reaction coordinate direction.
	Axis vec.V
	// Start is the first window's target displacement (Å, relative to
	// the initial COM projection); Distance the total span; Windows the
	// number of λ points (inclusive of both ends).
	Start    float64
	Distance float64
	Windows  int
	// EquilSteps discards the first steps of each window; SampleSteps
	// are then averaged, sampling the restraint force every
	// SampleEvery steps.
	EquilSteps  int
	SampleSteps int
	SampleEvery int
	// Workers caps parallel windows (0 = NumCPU, serialized by the
	// runtime on smaller hosts).
	Workers int
	Seed    uint64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Build == nil {
		return errors.New("ti: nil Build")
	}
	if c.Kappa <= 0 {
		return fmt.Errorf("ti: spring constant %g", c.Kappa)
	}
	if c.Axis.Norm() == 0 {
		return errors.New("ti: zero axis")
	}
	if c.Windows < 2 {
		return fmt.Errorf("ti: need >= 2 windows, got %d", c.Windows)
	}
	if c.Distance == 0 {
		return errors.New("ti: zero distance")
	}
	if c.SampleSteps <= 0 {
		return errors.New("ti: no sampling steps")
	}
	return nil
}

// Window is the analyzed outcome of one λ point.
type Window struct {
	Lambda    float64 // target displacement, Å
	MeanForce float64 // ⟨dF/dλ⟩ estimate, kcal/mol/Å
	StdErr    float64 // standard error of the mean force
	Samples   int
	// MeanS is the average COM projection relative to the start —
	// diagnostics for restraint slippage.
	MeanS float64
}

// Result is a complete TI profile.
type Result struct {
	Windows []Window
	// Grid/PMF is the integrated free energy profile (trapezoid rule),
	// anchored at the first window.
	Grid []float64
	PMF  []float64
	// SigmaPMF propagates the per-window force errors through the
	// integration.
	SigmaPMF []float64
}

// Run executes the TI calculation: all windows, in parallel, then the
// integration.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10
	}
	root := xrand.New(cfg.Seed)
	seeds := make([]uint64, cfg.Windows)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}

	windows := make([]Window, cfg.Windows)
	errs := make([]error, cfg.Windows)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workerCount(cfg.Workers))
	for w := 0; w < cfg.Windows; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			windows[w], errs[w] = runWindow(cfg, w, seeds[w])
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("ti: window %d: %w", w, err)
		}
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i].Lambda < windows[j].Lambda })

	res := &Result{Windows: windows}
	res.Grid = make([]float64, len(windows))
	res.PMF = make([]float64, len(windows))
	res.SigmaPMF = make([]float64, len(windows))
	var acc, varAcc float64
	for i, win := range windows {
		res.Grid[i] = win.Lambda
		if i > 0 {
			h := win.Lambda - windows[i-1].Lambda
			acc += 0.5 * h * (win.MeanForce + windows[i-1].MeanForce)
			se := 0.5 * h * (win.StdErr + windows[i-1].StdErr)
			varAcc += se * se
		}
		res.PMF[i] = acc
		res.SigmaPMF[i] = math.Sqrt(varAcc)
	}
	return res, nil
}

func workerCount(w int) int {
	if w > 0 {
		return w
	}
	return 8
}

// runWindow runs one λ point to completion.
func runWindow(cfg Config, w int, seed uint64) (Window, error) {
	eng, atoms, err := cfg.Build(w, seed)
	if err != nil {
		return Window{}, err
	}
	lambda := cfg.Start + cfg.Distance*float64(w)/float64(cfg.Windows-1)

	// A puller with zero velocity is a static restraint; we advance λ
	// once to the window target, then never again.
	proto := smd.Protocol{
		Kappa:    cfg.Kappa,
		Velocity: 1, // unused: we position λ manually and never Advance
		Axis:     cfg.Axis,
		Atoms:    atoms,
		Distance: 1,
	}
	pl, err := smd.NewPuller(eng, proto)
	if err != nil {
		return Window{}, err
	}
	eng.AddTerm(pl)
	pl.SetLambda(lambda)

	for s := 0; s < cfg.EquilSteps; s++ {
		eng.Step()
	}
	var forces []float64
	var sSum float64
	for s := 0; s < cfg.SampleSteps; s++ {
		eng.Step()
		if s%cfg.SampleEvery == 0 {
			// dF/dλ at fixed λ equals the mean restoring force
			// κ(λ - s) (stiff-spring thermodynamic integration).
			forces = append(forces, pl.SpringForce())
			sSum += pl.DisplacementOfCOM()
		}
	}
	if len(forces) == 0 {
		return Window{}, errors.New("no samples collected")
	}
	// Block-average to decorrelate before the error estimate.
	blocks := analysis.BlockAverage(forces, max(4, len(forces)/16))
	return Window{
		Lambda:    lambda,
		MeanForce: analysis.Mean(forces),
		StdErr:    analysis.StdErr(blocks),
		Samples:   len(forces),
		MeanS:     sSum / float64(len(forces)),
	}, nil
}
