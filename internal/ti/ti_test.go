package ti

import (
	"math"
	"testing"

	"spice/internal/forcefield"
	"spice/internal/md"
	"spice/internal/topology"
	"spice/internal/units"
	"spice/internal/vec"
)

// wellBuild returns a Build function for a single bead in a Gaussian well
// centered at z0.
func wellBuild(z0, depth, width float64) func(int, uint64) (*md.Engine, []int, error) {
	return func(_ int, seed uint64) (*md.Engine, []int, error) {
		top := topology.New()
		top.AddAtom(topology.Atom{Kind: topology.KindDNA, Mass: 325, Radius: 3})
		well := &forcefield.BindingSites{
			Sites: []forcefield.BindingSite{{Z: z0, Depth: depth, Width: width}},
			Atoms: []int{0},
		}
		eng, err := md.New(md.Config{
			Top:   top,
			Init:  []vec.V{{}},
			Terms: []forcefield.Term{well},
			Seed:  seed,
			DT:    0.02,
		})
		return eng, []int{0}, err
	}
}

func baseConfig() Config {
	return Config{
		Build:       wellBuild(5, 1.5, 1.5),
		Kappa:       units.SpringFromPaper(300),
		Axis:        vec.V{Z: 1},
		Start:       0,
		Distance:    10,
		Windows:     21,
		EquilSteps:  2000,
		SampleSteps: 12000,
		SampleEvery: 5,
		Workers:     4,
		Seed:        7,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Build = nil },
		func(c *Config) { c.Kappa = 0 },
		func(c *Config) { c.Axis = vec.Zero },
		func(c *Config) { c.Windows = 1 },
		func(c *Config) { c.Distance = 0 },
		func(c *Config) { c.SampleSteps = 0 },
	}
	for i, m := range mutations {
		c := baseConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTIRecoversGaussianWell(t *testing.T) {
	if testing.Short() {
		t.Skip("physics integration test")
	}
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != cfg.Windows || len(res.PMF) != cfg.Windows {
		t.Fatalf("result shape: %d windows", len(res.Windows))
	}
	// Compare to the true profile (anchored at z=0).
	rmsd := 0.0
	for i, z := range res.Grid {
		truth := -1.5 * math.Exp(-(z-5)*(z-5)/(2*1.5*1.5))
		d := res.PMF[i] - truth
		rmsd += d * d
	}
	rmsd = math.Sqrt(rmsd / float64(len(res.Grid)))
	if rmsd > 0.25 {
		t.Fatalf("TI PMF RMSD %.3f kcal/mol (pmf=%v)", rmsd, res.PMF)
	}
	// The well must be located and roughly the right depth.
	minV, minAt := math.Inf(1), 0.0
	for i, v := range res.PMF {
		if v < minV {
			minV, minAt = v, res.Grid[i]
		}
	}
	if math.Abs(minAt-5) > 1.0 {
		t.Fatalf("well found at %v", minAt)
	}
	if minV > -1.0 || minV < -2.0 {
		t.Fatalf("well depth %v, want ~-1.5", minV)
	}
	// Errors are finite, positive past the first window, and grow along
	// the integration.
	if res.SigmaPMF[0] != 0 {
		t.Fatal("anchored window should have zero error")
	}
	if res.SigmaPMF[len(res.SigmaPMF)-1] <= res.SigmaPMF[1] {
		t.Fatal("integrated error should grow")
	}
}

func TestTIWindowsSortedAndDiagnosed(t *testing.T) {
	cfg := baseConfig()
	cfg.Windows = 5
	cfg.EquilSteps = 200
	cfg.SampleSteps = 500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Windows); i++ {
		if res.Windows[i].Lambda <= res.Windows[i-1].Lambda {
			t.Fatal("windows not sorted")
		}
	}
	for _, w := range res.Windows {
		if w.Samples == 0 {
			t.Fatal("window without samples")
		}
		// The restrained COM must sit near its window target.
		if math.Abs(w.MeanS-w.Lambda) > 1.5 {
			t.Fatalf("window at λ=%v has COM at %v", w.Lambda, w.MeanS)
		}
	}
}

func TestTIDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.Windows = 4
	cfg.EquilSteps = 100
	cfg.SampleSteps = 300
	run := func(workers int) []float64 {
		c := cfg
		c.Workers = workers
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.PMF
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TI results depend on worker count")
		}
	}
}

func TestTIBuildErrorPropagates(t *testing.T) {
	cfg := baseConfig()
	cfg.Build = func(int, uint64) (*md.Engine, []int, error) {
		return nil, nil, errTest
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("build error swallowed")
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "boom" }
