package topology

import (
	"math"
	"testing"

	"spice/internal/vec"
)

func TestAddAtomBondAngle(t *testing.T) {
	top := New()
	a := top.AddAtom(Atom{Mass: 1})
	b := top.AddAtom(Atom{Mass: 1})
	c := top.AddAtom(Atom{Mass: 1})
	if err := top.AddBond(Bond{I: a, J: b, R0: 1, K: 1}); err != nil {
		t.Fatal(err)
	}
	if err := top.AddAngle(Angle{I: a, J: b, K: c, Theta0: math.Pi, KTheta: 1}); err != nil {
		t.Fatal(err)
	}
	if !top.Excluded(a, b) || !top.Excluded(b, a) {
		t.Fatal("1-2 exclusion missing")
	}
	if !top.Excluded(a, c) {
		t.Fatal("1-3 exclusion missing")
	}
	if top.Excluded(b, c) {
		// b-c share the angle but are 1-2 via no bond; only i-k excluded
		// by AddAngle. They are not bonded here, so not excluded.
		t.Fatal("b-c should not be excluded")
	}
}

func TestBondValidation(t *testing.T) {
	top := New()
	a := top.AddAtom(Atom{Mass: 1})
	if err := top.AddBond(Bond{I: a, J: a}); err == nil {
		t.Fatal("self bond accepted")
	}
	if err := top.AddBond(Bond{I: a, J: 99}); err == nil {
		t.Fatal("out-of-range bond accepted")
	}
	b := top.AddAtom(Atom{Mass: 1})
	if err := top.AddAngle(Angle{I: a, J: b, K: a}); err == nil {
		t.Fatal("degenerate angle accepted")
	}
}

func TestValidateDuplicateBond(t *testing.T) {
	top := New()
	a := top.AddAtom(Atom{Mass: 1})
	b := top.AddAtom(Atom{Mass: 1})
	_ = top.AddBond(Bond{I: a, J: b, R0: 1, K: 1})
	_ = top.AddBond(Bond{I: b, J: a, R0: 1, K: 1}) // same pair reversed
	if err := top.Validate(); err == nil {
		t.Fatal("duplicate bond not caught")
	}
}

func TestValidateMassAndKind(t *testing.T) {
	top := New()
	top.AddAtom(Atom{Mass: 0}) // mobile, zero mass
	if err := top.Validate(); err == nil {
		t.Fatal("zero-mass mobile atom not caught")
	}
	top2 := New()
	top2.AddAtom(Atom{Mass: 0, Fixed: true}) // fixed atoms may be massless
	if err := top2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDNA(t *testing.T) {
	top := New()
	p := DefaultDNA(10)
	idx, pos, err := BuildDNA(top, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 10 || len(pos) != 10 {
		t.Fatalf("got %d beads", len(idx))
	}
	if len(top.Bonds) != 9 {
		t.Fatalf("bonds = %d, want 9", len(top.Bonds))
	}
	if len(top.Angles) != 8 {
		t.Fatalf("angles = %d, want 8", len(top.Angles))
	}
	// Beads spaced at BondR0 along -z.
	for i := 1; i < 10; i++ {
		d := vec.Dist(pos[i], pos[i-1])
		if math.Abs(d-p.BondR0) > 1e-9 {
			t.Fatalf("spacing %d = %v", i, d)
		}
		if pos[i].Z >= pos[i-1].Z {
			t.Fatalf("chain should descend in z")
		}
	}
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	// Charges and kinds.
	for _, id := range idx {
		a := top.Atoms[id]
		if a.Kind != KindDNA || a.Charge != -1 || a.Fixed {
			t.Fatalf("bad DNA atom: %+v", a)
		}
	}
}

func TestBuildDNAErrors(t *testing.T) {
	top := New()
	if _, _, err := BuildDNA(top, DNAParams{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	p := DefaultDNA(3)
	p.Backbone = vec.Zero
	if _, _, err := BuildDNA(top, p); err == nil {
		t.Fatal("zero backbone accepted")
	}
}

func TestPoreRadiusProfile(t *testing.T) {
	p := DefaultPore()
	// Constriction is the global minimum of the axisymmetric profile.
	rc := p.AxialRadius(0)
	if math.Abs(rc-p.ConstrictionRadius) > 1e-9 {
		t.Fatalf("constriction radius = %v", rc)
	}
	for _, z := range []float64{-40, -20, -5, 5, 15, 30} {
		if r := p.AxialRadius(z); r < rc-1e-9 {
			t.Fatalf("radius at z=%v is %v < constriction %v", z, r, rc)
		}
	}
	// Mouth approaches the vestibule radius; deep barrel the barrel radius.
	if r := p.AxialRadius(p.VestibuleLength); math.Abs(r-p.VestibuleRadius) > 1e-6 {
		t.Fatalf("mouth radius = %v", r)
	}
	if r := p.AxialRadius(-p.BarrelLength); math.Abs(r-p.BarrelRadius) > 1e-6 {
		t.Fatalf("barrel radius = %v", r)
	}
	// Outside the pore: infinite.
	if !math.IsInf(p.AxialRadius(p.VestibuleLength+1), 1) || !math.IsInf(p.AxialRadius(-p.BarrelLength-1), 1) {
		t.Fatal("radius should be +Inf outside the pore")
	}
}

func TestPoreSevenFoldSymmetry(t *testing.T) {
	p := DefaultPore()
	// R(z, θ) must be invariant under θ -> θ + 2π/7 (Fig. 1b).
	for _, z := range []float64{-30, 0, 10} {
		for k := 1; k < 7; k++ {
			base := p.Radius(z, 0.3)
			rot := p.Radius(z, 0.3+2*math.Pi*float64(k)/7)
			if math.Abs(base-rot) > 1e-9 {
				t.Fatalf("seven-fold symmetry broken at z=%v k=%d: %v vs %v", z, k, base, rot)
			}
		}
	}
	if p.SevenFold() != 7 {
		t.Fatal("hemolysin is a heptamer")
	}
	// Corrugation actually modulates the radius at other angles.
	if p.Radius(0, 0) == p.Radius(0, math.Pi/7) {
		t.Fatal("corrugation has no effect")
	}
}

func TestBuildPoreWalls(t *testing.T) {
	top := New()
	p := DefaultPore()
	idx, pos := BuildPoreWalls(top, p)
	if len(idx) == 0 {
		t.Fatal("no wall beads built")
	}
	if len(idx) != len(pos) {
		t.Fatal("index/position mismatch")
	}
	for k, id := range idx {
		a := top.Atoms[id]
		if !a.Fixed || a.Kind != KindWall {
			t.Fatalf("wall bead %d not fixed/wall: %+v", id, a)
		}
		// Beads sit at or slightly outside the inner surface.
		pz := pos[k]
		r := math.Hypot(pz.X, pz.Y)
		inner := p.Radius(pz.Z, math.Atan2(pz.Y, pz.X))
		if r < inner-1e-6 {
			t.Fatalf("wall bead %d inside the lumen: r=%v inner=%v", id, r, inner)
		}
	}
	// No walls with spacing 0.
	top2 := New()
	p.WallBeadSpacing = 0
	if idx2, _ := BuildPoreWalls(top2, p); idx2 != nil {
		t.Fatal("expected no beads with zero spacing")
	}
}

func TestMembrane(t *testing.T) {
	m := DefaultMembrane()
	if !m.Contains((m.ZMin + m.ZMax) / 2) {
		t.Fatal("midpoint not contained")
	}
	if m.Contains(m.ZMax+1) || m.Contains(m.ZMin-1) {
		t.Fatal("outside points contained")
	}
}

func TestBuildMembraneBeads(t *testing.T) {
	top := New()
	m := DefaultMembrane()
	m.BeadSpacing = 8
	pore := DefaultPore()
	idx, pos := BuildMembrane(top, m, pore)
	if len(idx) == 0 {
		t.Fatal("no membrane beads")
	}
	for k := range idx {
		p := pos[k]
		if p.Z != m.ZMin && p.Z != m.ZMax {
			t.Fatalf("membrane bead off-face at z=%v", p.Z)
		}
		// The pore mouth must stay clear.
		rp := pore.AxialRadius(p.Z)
		if !math.IsInf(rp, 1) && math.Hypot(p.X, p.Y) < rp {
			t.Fatalf("membrane bead blocks the pore at %v", p)
		}
	}
}

func TestAtomsOfKindAndMobileCount(t *testing.T) {
	top := New()
	top.AddAtom(Atom{Kind: KindDNA, Mass: 1})
	top.AddAtom(Atom{Kind: KindWall, Mass: 1, Fixed: true})
	top.AddAtom(Atom{Kind: KindDNA, Mass: 1})
	if got := top.AtomsOfKind(KindDNA); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("AtomsOfKind = %v", got)
	}
	if top.MobileCount() != 2 {
		t.Fatalf("MobileCount = %d", top.MobileCount())
	}
	if KindDNA.String() != "dna" || KindWall.String() != "wall" {
		t.Fatal("Kind string labels wrong")
	}
}

func TestMasses(t *testing.T) {
	top := New()
	top.AddAtom(Atom{Mass: 2})
	top.AddAtom(Atom{Mass: 5})
	m := top.Masses()
	if len(m) != 2 || m[0] != 2 || m[1] != 5 {
		t.Fatalf("Masses = %v", m)
	}
}
