// Package topology describes the chemical structure of a SPICE simulation
// system: atoms (coarse-grained beads), bonded terms and exclusions, plus
// builders for the paper's translocation system — a single-stranded DNA
// chain, an alpha-hemolysin-like pore and a lipid-membrane slab.
//
// The paper's production system is a 300,000-atom all-atom model; we build
// the coarse-grained equivalent (one bead per nucleotide, explicit wall
// beads for the pore rim, analytic potentials for the rest) which preserves
// the statistical behaviour the SMD-JE method probes. See DESIGN.md §1.
package topology

import (
	"fmt"
	"math"
	"sort"

	"spice/internal/vec"
)

// Kind labels the coarse-grained bead species.
type Kind uint8

// Bead species.
const (
	KindDNA  Kind = iota // ssDNA nucleotide bead
	KindWall             // fixed pore-wall bead
	KindLipid
	KindIon
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDNA:
		return "dna"
	case KindWall:
		return "wall"
	case KindLipid:
		return "lipid"
	case KindIon:
		return "ion"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Atom is one coarse-grained bead.
type Atom struct {
	Kind   Kind
	Mass   float64 // amu
	Charge float64 // elementary charges
	Radius float64 // excluded-volume radius, Å
	Fixed  bool    // true for wall/scaffold beads that never move
}

// Bond is a harmonic bond between atoms I and J:
// E = K·(r - R0)².
type Bond struct {
	I, J int
	R0   float64 // Å
	K    float64 // kcal/mol/Å²
}

// Angle is a harmonic angle i-j-k: E = K·(θ - Theta0)².
type Angle struct {
	I, J, K int
	Theta0  float64 // radians
	KTheta  float64 // kcal/mol/rad²
}

// Topology is the complete static description of a system.
type Topology struct {
	Atoms  []Atom
	Bonds  []Bond
	Angles []Angle

	// excl[i] lists atom indices excluded from nonbonded interaction
	// with i (bonded 1-2 and 1-3 neighbours).
	excl map[int]map[int]bool

	// exclLists is the flat, per-atom sorted form of excl consumed by
	// the neighbor list's baked-exclusion check; rebuilt lazily.
	exclLists   [][]int32
	exclListsOK bool
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{excl: make(map[int]map[int]bool)}
}

// N returns the number of atoms.
func (t *Topology) N() int { return len(t.Atoms) }

// AddAtom appends an atom and returns its index.
func (t *Topology) AddAtom(a Atom) int {
	t.Atoms = append(t.Atoms, a)
	return len(t.Atoms) - 1
}

// AddBond appends a bond and records the 1-2 exclusion.
func (t *Topology) AddBond(b Bond) error {
	if err := t.checkIndex(b.I, b.J); err != nil {
		return err
	}
	if b.I == b.J {
		return fmt.Errorf("topology: self bond on atom %d", b.I)
	}
	t.Bonds = append(t.Bonds, b)
	t.exclude(b.I, b.J)
	return nil
}

// AddAngle appends an angle and records the 1-3 exclusion.
func (t *Topology) AddAngle(a Angle) error {
	if err := t.checkIndex(a.I, a.J, a.K); err != nil {
		return err
	}
	if a.I == a.J || a.J == a.K || a.I == a.K {
		return fmt.Errorf("topology: degenerate angle %d-%d-%d", a.I, a.J, a.K)
	}
	t.Angles = append(t.Angles, a)
	t.exclude(a.I, a.K)
	return nil
}

func (t *Topology) checkIndex(idx ...int) error {
	for _, i := range idx {
		if i < 0 || i >= len(t.Atoms) {
			return fmt.Errorf("topology: atom index %d out of range [0,%d)", i, len(t.Atoms))
		}
	}
	return nil
}

func (t *Topology) exclude(i, j int) {
	if t.excl[i] == nil {
		t.excl[i] = make(map[int]bool)
	}
	if t.excl[j] == nil {
		t.excl[j] = make(map[int]bool)
	}
	t.excl[i][j] = true
	t.excl[j][i] = true
	t.exclListsOK = false
}

// Excluded reports whether the nonbonded interaction between i and j is
// excluded (they share a bond or an angle).
func (t *Topology) Excluded(i, j int) bool { return t.excl[i][j] }

// ExclusionLists returns, for every atom, the sorted indices of its
// excluded nonbonded partners. The result is cached until the next
// AddBond/AddAngle and must not be mutated: the neighbor list bakes it in
// at build time so the hot pair scan never goes through a map or closure.
func (t *Topology) ExclusionLists() [][]int32 {
	if t.exclListsOK && len(t.exclLists) == len(t.Atoms) {
		return t.exclLists
	}
	lists := make([][]int32, len(t.Atoms))
	for i, m := range t.excl {
		if i < 0 || i >= len(t.Atoms) || len(m) == 0 {
			continue
		}
		l := make([]int32, 0, len(m))
		for j := range m {
			l = append(l, int32(j))
		}
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		lists[i] = l
	}
	t.exclLists = lists
	t.exclListsOK = true
	return lists
}

// Masses returns a slice of atom masses.
func (t *Topology) Masses() []float64 {
	m := make([]float64, len(t.Atoms))
	for i, a := range t.Atoms {
		m[i] = a.Mass
	}
	return m
}

// AtomsOfKind returns the indices of all atoms with kind k.
func (t *Topology) AtomsOfKind(k Kind) []int {
	var out []int
	for i, a := range t.Atoms {
		if a.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// MobileCount returns the number of non-fixed atoms.
func (t *Topology) MobileCount() int {
	n := 0
	for _, a := range t.Atoms {
		if !a.Fixed {
			n++
		}
	}
	return n
}

// Validate checks internal consistency: indices in range, positive masses
// on mobile atoms, no duplicate bonds.
func (t *Topology) Validate() error {
	for i, a := range t.Atoms {
		if !a.Fixed && a.Mass <= 0 {
			return fmt.Errorf("topology: mobile atom %d has non-positive mass %g", i, a.Mass)
		}
	}
	seen := make(map[[2]int]bool, len(t.Bonds))
	for _, b := range t.Bonds {
		if err := t.checkIndex(b.I, b.J); err != nil {
			return err
		}
		key := [2]int{min(b.I, b.J), max(b.I, b.J)}
		if seen[key] {
			return fmt.Errorf("topology: duplicate bond %d-%d", b.I, b.J)
		}
		seen[key] = true
	}
	for _, a := range t.Angles {
		if err := t.checkIndex(a.I, a.J, a.K); err != nil {
			return err
		}
	}
	return nil
}

// --- Builders -------------------------------------------------------------

// DNAParams sets the coarse-grained ssDNA model. The defaults follow the
// standard one-bead-per-nucleotide CG mapping.
type DNAParams struct {
	N        int     // number of nucleotides
	Mass     float64 // amu per bead
	Charge   float64 // e per bead (phosphate backbone)
	Radius   float64 // excluded-volume radius, Å
	BondR0   float64 // equilibrium backbone spacing, Å
	BondK    float64 // backbone stiffness, kcal/mol/Å²
	AngleK   float64 // bending stiffness, kcal/mol/rad²
	Theta0   float64 // equilibrium angle, rad
	StartZ   float64 // z of the first (leading) bead, Å
	Backbone vec.V   // initial chain direction (unit vector applied to BondR0)
}

// DefaultDNA returns the standard parameterization for an n-nucleotide
// strand: 325 amu/bead, -1e, 6.5 Å rise, moderately stiff backbone.
func DefaultDNA(n int) DNAParams {
	return DNAParams{
		N:        n,
		Mass:     325,
		Charge:   -1,
		Radius:   3.0,
		BondR0:   6.5,
		BondK:    30,
		AngleK:   5,
		Theta0:   math.Pi,
		StartZ:   0,
		Backbone: vec.V{X: 0, Y: 0, Z: -1},
	}
}

// BuildDNA appends an ssDNA chain to t and returns the bead indices (index
// 0 is the leading bead, the one the SMD spring pulls — the paper pulls
// the C3' atom of the leading nucleotide) and their initial positions.
func BuildDNA(t *Topology, p DNAParams) (idx []int, pos []vec.V, err error) {
	if p.N < 1 {
		return nil, nil, fmt.Errorf("topology: DNA needs at least 1 bead, got %d", p.N)
	}
	dir := p.Backbone.Unit()
	if dir == vec.Zero {
		return nil, nil, fmt.Errorf("topology: DNA backbone direction is zero")
	}
	start := vec.V{X: 0, Y: 0, Z: p.StartZ}
	for i := 0; i < p.N; i++ {
		id := t.AddAtom(Atom{Kind: KindDNA, Mass: p.Mass, Charge: p.Charge, Radius: p.Radius})
		idx = append(idx, id)
		pos = append(pos, start.Add(dir.Scale(float64(i)*p.BondR0)))
	}
	for i := 0; i+1 < p.N; i++ {
		if err := t.AddBond(Bond{I: idx[i], J: idx[i+1], R0: p.BondR0, K: p.BondK}); err != nil {
			return nil, nil, err
		}
	}
	if p.AngleK > 0 {
		for i := 0; i+2 < p.N; i++ {
			if err := t.AddAngle(Angle{I: idx[i], J: idx[i+1], K: idx[i+2], Theta0: p.Theta0, KTheta: p.AngleK}); err != nil {
				return nil, nil, err
			}
		}
	}
	return idx, pos, nil
}

// PoreParams describes the alpha-hemolysin-like pore geometry. The pore
// axis is z; z = 0 is the constriction between the cap vestibule (z > 0)
// and the transmembrane beta barrel (z < 0).
type PoreParams struct {
	VestibuleRadius    float64 // Å, wide cap entrance
	ConstrictionRadius float64 // Å, narrowest point
	BarrelRadius       float64 // Å, beta barrel stem
	VestibuleLength    float64 // Å, extent of cap above z=0
	BarrelLength       float64 // Å, extent of barrel below z=0
	Corrugation        float64 // Å, amplitude of the cos(7θ) seven-fold term
	WallBeadSpacing    float64 // Å, arc spacing of explicit wall beads (0 = none)
	WallBeadRadius     float64 // Å
}

// DefaultPore returns hemolysin-like dimensions (cap vestibule ~46 Å wide
// narrowing to a ~14 Å constriction, ~52 Å barrel; Song et al. 1996 scaled
// to our CG bead sizes).
func DefaultPore() PoreParams {
	return PoreParams{
		VestibuleRadius:    13,
		ConstrictionRadius: 4.5,
		BarrelRadius:       8,
		VestibuleLength:    35,
		BarrelLength:       50,
		Corrugation:        0.6,
		WallBeadSpacing:    4.0,
		WallBeadRadius:     2.0,
	}
}

// Radius returns the pore's inner radius at height z and azimuth theta,
// including the seven-fold corrugation. Outside the pore extent it returns
// +Inf (no confinement).
func (p PoreParams) Radius(z, theta float64) float64 {
	base := p.AxialRadius(z)
	if math.IsInf(base, 1) {
		return base
	}
	return base + p.Corrugation*math.Cos(7*theta)
}

// AxialRadius returns the axisymmetric part of the radius profile using
// smooth cosine blends between the three sections.
func (p PoreParams) AxialRadius(z float64) float64 {
	switch {
	case z > p.VestibuleLength || z < -p.BarrelLength:
		return math.Inf(1)
	case z >= 0:
		// Blend constriction -> vestibule over the cap height.
		t := z / p.VestibuleLength // 0 at constriction, 1 at mouth
		s := 0.5 - 0.5*math.Cos(math.Pi*t)
		return p.ConstrictionRadius + (p.VestibuleRadius-p.ConstrictionRadius)*s
	default:
		// Blend constriction -> barrel over the first quarter of the stem.
		rise := p.BarrelLength / 4
		t := math.Min(-z/rise, 1)
		s := 0.5 - 0.5*math.Cos(math.Pi*t)
		return p.ConstrictionRadius + (p.BarrelRadius-p.ConstrictionRadius)*s
	}
}

// SevenFold reports the rotational symmetry order of the pore (hemolysin
// is a heptamer; Fig. 1b of the paper shows the seven-fold symmetry).
func (p PoreParams) SevenFold() int { return 7 }

// BuildPoreWalls appends fixed wall beads tracing the pore surface and
// returns their indices and positions. Beads are placed on rings spaced
// WallBeadSpacing apart along z, each ring holding enough beads to keep
// the arc spacing near WallBeadSpacing. With WallBeadSpacing == 0 no beads
// are created (analytic confinement only).
func BuildPoreWalls(t *Topology, p PoreParams) (idx []int, pos []vec.V) {
	if p.WallBeadSpacing <= 0 {
		return nil, nil
	}
	for z := -p.BarrelLength; z <= p.VestibuleLength; z += p.WallBeadSpacing {
		r := p.AxialRadius(z)
		if math.IsInf(r, 1) {
			continue
		}
		circumference := 2 * math.Pi * r
		nring := int(math.Max(4, math.Round(circumference/p.WallBeadSpacing)))
		for k := 0; k < nring; k++ {
			theta := 2 * math.Pi * float64(k) / float64(nring)
			rr := p.Radius(z, theta) + p.WallBeadRadius
			id := t.AddAtom(Atom{Kind: KindWall, Mass: 100, Radius: p.WallBeadRadius, Fixed: true})
			idx = append(idx, id)
			pos = append(pos, vec.V{X: rr * math.Cos(theta), Y: rr * math.Sin(theta), Z: z})
		}
	}
	return idx, pos
}

// MembraneParams describes the lipid slab the pore is embedded in.
type MembraneParams struct {
	ZMin, ZMax  float64 // slab extent along z, Å
	HalfWidth   float64 // lateral half-extent for explicit beads, Å
	BeadSpacing float64 // 0 = analytic slab only
	BeadRadius  float64
}

// DefaultMembrane places the slab around the beta barrel.
func DefaultMembrane() MembraneParams {
	return MembraneParams{ZMin: -45, ZMax: -15, HalfWidth: 40, BeadSpacing: 0, BeadRadius: 3}
}

// Contains reports whether z lies inside the membrane slab.
func (m MembraneParams) Contains(z float64) bool { return z >= m.ZMin && z <= m.ZMax }

// BuildMembrane appends explicit lipid head beads on the two slab faces
// (outside the pore radius rPore) when BeadSpacing > 0.
func BuildMembrane(t *Topology, m MembraneParams, pore PoreParams) (idx []int, pos []vec.V) {
	if m.BeadSpacing <= 0 {
		return nil, nil
	}
	for _, z := range []float64{m.ZMin, m.ZMax} {
		rp := pore.AxialRadius(z)
		for x := -m.HalfWidth; x <= m.HalfWidth; x += m.BeadSpacing {
			for y := -m.HalfWidth; y <= m.HalfWidth; y += m.BeadSpacing {
				r := math.Hypot(x, y)
				if !math.IsInf(rp, 1) && r < rp+2*m.BeadRadius {
					continue // keep the pore mouth clear
				}
				id := t.AddAtom(Atom{Kind: KindLipid, Mass: 200, Radius: m.BeadRadius, Fixed: true})
				idx = append(idx, id)
				pos = append(pos, vec.V{X: x, Y: y, Z: z})
			}
		}
	}
	return idx, pos
}
