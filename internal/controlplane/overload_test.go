package controlplane

// Overload-protection drills: the tenant rate-limit 429 drill over the
// real HTTP surface (mirroring the storage-degradation 503 drill), the
// queue-depth admission shed, the HTTP concurrency limiter, and the
// client's Retry-After-driven retry loop with its fleet retry budget.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spice/internal/backoff"
	"spice/internal/campaign"
	"spice/internal/dist"
)

// TestTenantRateLimit429Drill is the acceptance drill: one tenant
// hammers submissions past its TenantRPS bucket and gets 429 +
// Retry-After, while another tenant's already-admitted campaign keeps
// draining to completion. A client with retries then pushes the
// refused submission through once the bucket refills.
func TestTenantRateLimit429Drill(t *testing.T) {
	s, _ := newHarness(t, Config{
		TenantRPS:   5,
		TenantBurst: 2,
	}, 1)
	s.Start()
	mux := http.NewServeMux()
	s.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	post := func(spec campaign.Spec, tenant, name string) *http.Response {
		t.Helper()
		body, err := json.Marshal(SubmitRequest{Tenant: tenant, Name: name, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := post(specA(), "alice", "drain-me")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice's submit returned %d, want 202", resp.StatusCode)
	}
	var acc SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}

	// Bob burns his burst and keeps going: the bucket must refuse with
	// 429 + Retry-After, never a 5xx, and never touch the queue.
	limited := 0
	for i := 0; i < 10; i++ {
		r := post(specB(), "bob", fmt.Sprintf("burst-%d", i))
		switch r.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			limited++
			if r.Header.Get("Retry-After") == "" {
				t.Fatal("429 response missing Retry-After header")
			}
			var body map[string]string
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body["error"] == "" {
				t.Fatal("429 response missing error body")
			}
		default:
			t.Fatalf("burst submit %d returned %d, want 202 or 429", i, r.StatusCode)
		}
	}
	if limited == 0 {
		t.Fatal("10 instant submissions against a burst of 2 never hit the rate limit")
	}

	// Overload on bob's control-plane calls must not stall alice's
	// admitted campaign: it drains to done on its worker leases.
	waitState(t, s, acc.ID, StateDone)

	// A retrying client shoulders through: the bucket refills at 5/s,
	// so a few Retry-After-paced attempts land the submission.
	cl := &Client{Base: srv.URL, RetryMax: 8}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	id, err := cl.Submit(ctx, specB(), dist.CampaignTag{Tenant: "bob", Name: "retried"})
	if err != nil {
		t.Fatalf("retrying submit never landed: %v", err)
	}
	waitState(t, s, id, StateDone)
}

// TestMaxQueueDepthAdmission pins the admission-control shed: past
// MaxQueueDepth non-terminal campaigns, submissions are refused with
// ErrOverloaded before anything is journaled.
func TestMaxQueueDepthAdmission(t *testing.T) {
	s, _ := newHarness(t, Config{MaxQueueDepth: 1}, 0) // no workers: first campaign stays queued
	s.Start()
	if _, err := s.Submit(specA(), dist.CampaignTag{Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(specB(), dist.CampaignTag{Tenant: "bob"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit over MaxQueueDepth returned %v, want ErrOverloaded", err)
	}
	if got := len(s.List("")); got != 1 {
		t.Fatalf("shed submission reached the queue: %d campaigns", got)
	}
}

// TestHTTPConcurrencyShed drives the request-concurrency limiter: with
// the semaphore held full, any API call is shed with 503 + Retry-After
// immediately; once a slot frees the same call succeeds.
func TestHTTPConcurrencyShed(t *testing.T) {
	s, _ := newHarness(t, Config{MaxConcurrent: 1}, 0)
	s.Start()
	mux := http.NewServeMux()
	s.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	s.httpSem <- struct{}{} // occupy the only slot
	resp, err := http.Get(srv.URL + "/api/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated GET returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	if s.httpSheds.Load() == 0 {
		t.Fatal("shed counter not incremented")
	}

	<-s.httpSem
	resp, err = http.Get(srv.URL + "/api/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after slot freed returned %d, want 200", resp.StatusCode)
	}
}

// TestClientRetryHonorsRetryAfter exercises the client retry loop
// against a scripted server: refusals carrying Retry-After are
// retried (spending the budget), refusals without it — the standing
// quota — are surfaced immediately.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": ErrRateLimited.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: "ok", State: StateQueued})
	}))
	t.Cleanup(srv.Close)

	cl := &Client{Base: srv.URL, RetryMax: 5}
	id, err := cl.Submit(context.Background(), specA(), dist.CampaignTag{Tenant: "t"})
	if err != nil {
		t.Fatalf("retried submit failed: %v", err)
	}
	if id != "ok" || hits != 3 {
		t.Fatalf("got id %q after %d hits, want ok after 3", id, hits)
	}

	// A bare 429 (quota, no Retry-After) must not be retried even with
	// retries enabled.
	hits = 0
	quota := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": ErrQuotaExceeded.Error()})
	}))
	t.Cleanup(quota.Close)
	cl = &Client{Base: quota.URL, RetryMax: 5}
	if _, err := cl.Submit(context.Background(), specA(), dist.CampaignTag{Tenant: "t"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("quota refusal returned %v, want ErrQuotaExceeded", err)
	}
	if hits != 1 {
		t.Fatalf("bare 429 was retried: %d hits", hits)
	}
}

// TestClientRetryBudgetExhaustion pins the fleet-safety valve: with an
// empty retry budget the client surfaces the refusal instead of
// retrying, no matter what RetryMax allows.
func TestClientRetryBudgetExhaustion(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Retry-After", "0")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": ErrOverloaded.Error()})
	}))
	t.Cleanup(srv.Close)

	budget := backoff.NewBudget(0.001, 1) // one retry, then dry for ~17min
	cl := &Client{Base: srv.URL, RetryMax: 10, RetryBudget: budget}
	_, err := cl.Submit(context.Background(), specA(), dist.CampaignTag{Tenant: "t"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted-budget submit returned %v, want ErrOverloaded", err)
	}
	if hits != 2 { // first attempt + the single budgeted retry
		t.Fatalf("server saw %d hits, want 2 (budget allows one retry)", hits)
	}
}

// TestCancelRateLimited covers the other mutating path: cancels spend
// from the same per-tenant bucket.
func TestCancelRateLimited(t *testing.T) {
	s, _ := newHarness(t, Config{TenantRPS: 0.001, TenantBurst: 1}, 0)
	s.Start()
	id, err := s.Submit(specA(), dist.CampaignTag{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	// The submit drained the burst of 1; the cancel must be refused.
	if _, err := s.Cancel(id); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("cancel over the rate limit returned %v, want ErrRateLimited", err)
	}
}
