package controlplane

// The campaign queue's durable side: an append-only record stream of
// queue transitions (submit / start / done / fail / cancel) in the same
// CRC-framed trace record format as the dist job journal, living at
// <state>/queue.log. The two journals split the durability work by
// blast radius: queue.log remembers *which* campaigns were accepted and
// where each stood in its lifecycle; the dist journal remembers the
// per-job progress inside a running campaign. Killing the control plane
// at any instant loses neither — a torn tail is detected by the record
// CRCs, truncated away on reopen, and everything before it replays.
//
// Durability policy: every record is fsynced before the state change it
// describes is acknowledged. Submissions are the contract with the
// tenant ("202 means your campaign survives anything short of disk
// loss"), and the transition rate is human-scale, so the sync cost is
// irrelevant. The ack-ordering discipline is strict: append() returns
// only after frame+flush+fsync all succeeded, and on any failure it
// truncates the log back to the last clean record boundary before
// reporting the error — so a rejected submission leaves no trace on
// disk, a torn record never shadows later appends, and nothing is ever
// applied in memory that the journal did not accept first.
//
// Compaction mirrors the dist journal's protocol: when queue.log grows
// past its threshold the folded state is rewritten to queue.snapshot
// (tmp + fsync + rename + parent-dir fsync) and the log truncated.
// Records carry monotone sequence numbers and the snapshot records the
// highest one it folded, so replay after a crash anywhere between the
// steps applies each transition exactly once.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spice/internal/faultfs"
	"spice/internal/trace"
)

// queue record types.
const (
	qSubmit = "submit" // a campaign was accepted into the queue
	qStart  = "start"  // the campaign was handed to the coordinator
	qDone   = "done"   // the campaign completed
	qFail   = "fail"   // the campaign failed (record carries the error)
	qCancel = "cancel" // the campaign was canceled by the tenant
	qSnap   = "snap"   // snapshot meta record: highest folded seq
	qNoop   = "noop"   // storage probe; carries no state
)

// qrec is one queue journal record.
type qrec struct {
	T        string          `json:"t"`
	Seq      uint64          `json:"seq,omitempty"` // monotone append sequence (snap: highest folded)
	ID       string          `json:"id,omitempty"`
	Tenant   string          `json:"tenant,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Name     string          `json:"name,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"` // submit only
	Err      string          `json:"err,omitempty"`  // fail only
	At       time.Time       `json:"at,omitzero"`
}

// queueJournal is the open write side of queue.log.
type queueJournal struct {
	dir string
	fs  faultfs.FS
	f   faultfs.File
	rw  *trace.RecordWriter

	goodLen       int64  // last known clean length of queue.log (incl. magic)
	nextSeq       uint64 // last sequence number successfully appended
	pendingRepair bool   // a failed append left bytes past goodLen

	compactBytes   int64 // compaction threshold; 0 disables
	retries        int   // append retries before the error surfaces
	compactRetryAt int64 // after a failed compaction, wait for this size

	compactions    int
	storageErrors  int
	storageRetries int
}

// queueReplay is one campaign's recovered lifecycle (last record wins).
type queueReplay struct {
	rec   qrec // the submit record (identity + spec)
	state State
	err   string
}

func queueLogPath(dir string) string  { return filepath.Join(dir, "queue.log") }
func queueSnapPath(dir string) string { return filepath.Join(dir, "queue.snapshot") }

// queueScan is the folded on-disk state: snapshot + log replayed with
// sequence-number dedup, exactly like the dist journal.
type queueScan struct {
	order    []*queueReplay
	byID     map[string]*queueReplay
	maxSeq   uint64
	snapSeq  uint64
	cleanLen int64
	torn     int64
}

func (qs *queueScan) apply(r *qrec) {
	if r.Seq > qs.maxSeq {
		qs.maxSeq = r.Seq
	}
	switch r.T {
	case qSubmit:
		if qs.byID[r.ID] == nil {
			qr := &queueReplay{rec: *r, state: StateQueued}
			qs.byID[r.ID] = qr
			qs.order = append(qs.order, qr)
		}
	case qStart:
		if qr := qs.byID[r.ID]; qr != nil {
			qr.state = StateRunning
		}
	case qDone:
		if qr := qs.byID[r.ID]; qr != nil {
			qr.state = StateDone
		}
	case qFail:
		if qr := qs.byID[r.ID]; qr != nil {
			qr.state = StateFailed
			qr.err = r.Err
		}
	case qCancel:
		if qr := qs.byID[r.ID]; qr != nil {
			qr.state = StateCanceled
		}
	case qSnap, qNoop:
		// snap carries only its Seq (folded above); noop is a probe.
	default:
		// Unknown record types from a newer writer are tolerated.
	}
}

// scanQueueState folds queue.snapshot + queue.log under dir.
func scanQueueState(fsys faultfs.FS, dir string) (*queueScan, error) {
	fsys = faultfs.Or(fsys)
	qs := &queueScan{byID: make(map[string]*queueReplay)}

	snap, err := trace.ScanFileFS(fsys, queueSnapPath(dir))
	if err != nil {
		return nil, fmt.Errorf("controlplane: %s: %w", queueSnapPath(dir), err)
	}
	if snap.TailErr != nil {
		// Snapshots are fsynced before the rename; a torn one is bit rot.
		return nil, fmt.Errorf("controlplane: %s: damaged snapshot: %w", queueSnapPath(dir), snap.TailErr)
	}
	for _, raw := range snap.Records {
		var r qrec
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("controlplane: undecodable snapshot record (CRC valid): %w", err)
		}
		if r.T == qSnap && r.Seq > qs.snapSeq {
			qs.snapSeq = r.Seq
		}
		qs.apply(&r)
	}

	scan, err := trace.ScanFileFS(fsys, queueLogPath(dir))
	if err != nil {
		return nil, fmt.Errorf("controlplane: %s: %w", queueLogPath(dir), err)
	}
	qs.cleanLen = scan.CleanLen
	qs.torn = scan.TornBytes
	for _, raw := range scan.Records {
		var r qrec
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("controlplane: undecodable queue record (CRC valid): %w", err)
		}
		if r.Seq != 0 && r.Seq <= qs.snapSeq {
			continue // already folded into the snapshot
		}
		qs.apply(&r)
	}
	if qs.snapSeq > qs.maxSeq {
		qs.maxSeq = qs.snapSeq
	}
	return qs, nil
}

// openQueueJournal opens (creating if needed) the queue journal under
// dir, replays snapshot + log, truncates a torn tail, and positions the
// writer for appending. The replayed campaigns come back in submission
// order.
func openQueueJournal(fsys faultfs.FS, dir string) (*queueJournal, []*queueReplay, int64, error) {
	fsys = faultfs.Or(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("controlplane: state dir: %w", err)
	}
	qs, err := scanQueueState(fsys, dir)
	if err != nil {
		return nil, nil, 0, err
	}
	path := queueLogPath(dir)
	if qs.torn > 0 {
		if err := fsys.Truncate(path, qs.cleanLen); err != nil {
			return nil, nil, 0, fmt.Errorf("controlplane: truncating torn queue tail: %w", err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("controlplane: opening queue journal: %w", err)
	}
	j := &queueJournal{
		dir:     dir,
		fs:      fsys,
		f:       f,
		rw:      trace.NewRecordWriter(f, qs.cleanLen > 0),
		goodLen: qs.cleanLen,
		nextSeq: qs.maxSeq,
	}
	return j, qs.order, qs.torn, nil
}

// append frames, writes, flushes and fsyncs one record — every queue
// transition is synced (see the durability policy above). A failure is
// repaired (truncate back to the last clean boundary) and retried up to
// j.retries times before surfacing; either way the log never holds a
// partial record in front of the append point, so the caller can safely
// decline the state change and try again later.
func (j *queueJournal) append(r *qrec) error {
	r.Seq = j.nextSeq + 1
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		err = j.tryAppend(payload)
		if err == nil {
			j.nextSeq++
			j.maybeCompact()
			return nil
		}
		j.storageErrors++
		j.pendingRepair = true
		if attempt >= j.retries {
			return err
		}
		j.storageRetries++
		d := time.Duration(1<<uint(attempt)) * 2 * time.Millisecond
		if d > 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
		time.Sleep(d)
	}
}

func (j *queueJournal) tryAppend(payload []byte) error {
	if j.pendingRepair {
		if err := j.f.Truncate(j.goodLen); err != nil {
			return err
		}
		j.rw.Reset(j.f, j.goodLen > 0)
		j.pendingRepair = false
	}
	n := trace.FramedLen(len(payload))
	if j.goodLen == 0 {
		n += trace.MagicLen
	}
	if err := j.rw.Append(payload); err != nil {
		return err
	}
	if err := j.rw.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.goodLen += n
	return nil
}

// maybeCompact compacts once the log outgrows its threshold, backing
// off after a failure until the log doubles again.
func (j *queueJournal) maybeCompact() {
	if j.compactBytes <= 0 || j.goodLen < j.compactBytes || j.pendingRepair {
		return
	}
	if j.compactRetryAt > 0 && j.goodLen < j.compactRetryAt {
		return
	}
	if err := j.compact(); err != nil {
		j.storageErrors++
		j.compactRetryAt = j.goodLen * 2
		return
	}
	j.compactRetryAt = 0
}

// compact folds snapshot + log into a fresh queue.snapshot (tmp, fsync,
// rename, parent-dir fsync) and truncates the log. Crash-safe at every
// step boundary: before the rename the old pair is untouched; after it,
// superseded log records are skipped by sequence number on replay.
func (j *queueJournal) compact() error {
	if err := j.rw.Flush(); err != nil {
		j.pendingRepair = true
		return err
	}
	qs, err := scanQueueState(j.fs, j.dir)
	if err != nil {
		return err
	}
	if err := writeQueueSnapshot(j.fs, j.dir, qs); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	j.rw.Reset(j.f, false)
	j.goodLen = 0
	j.compactions++
	return nil
}

// writeQueueSnapshot serializes the folded queue state: a qSnap meta
// record, then per campaign (in submission order) its submit record and
// — if it has left the queued state — one closing state record.
func writeQueueSnapshot(fsys faultfs.FS, dir string, qs *queueScan) (err error) {
	tmp := queueSnapPath(dir) + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			_ = fsys.Remove(tmp)
		}
	}()
	rw := trace.NewRecordWriter(f, false)
	emit := func(r *qrec) {
		if err != nil {
			return
		}
		var payload []byte
		if payload, err = json.Marshal(r); err == nil {
			err = rw.Append(payload)
		}
	}
	emit(&qrec{T: qSnap, Seq: qs.maxSeq})
	for _, qr := range qs.order {
		sub := qr.rec
		sub.Seq = 0
		emit(&sub)
		switch qr.state {
		case StateRunning:
			emit(&qrec{T: qStart, ID: sub.ID, Tenant: sub.Tenant})
		case StateDone:
			emit(&qrec{T: qDone, ID: sub.ID, Tenant: sub.Tenant})
		case StateFailed:
			emit(&qrec{T: qFail, ID: sub.ID, Tenant: sub.Tenant, Err: qr.err})
		case StateCanceled:
			emit(&qrec{T: qCancel, ID: sub.ID, Tenant: sub.Tenant})
		}
	}
	if err != nil {
		return err
	}
	if err = rw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, queueSnapPath(dir)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

func (j *queueJournal) close() error {
	if j == nil {
		return nil
	}
	if err := j.rw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
