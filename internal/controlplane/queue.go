package controlplane

// The campaign queue's durable side: an append-only record stream of
// queue transitions (submit / start / done / fail / cancel) in the same
// CRC-framed trace record format as the dist job journal, living at
// <state>/queue.log. The two journals split the durability work by
// blast radius: queue.log remembers *which* campaigns were accepted and
// where each stood in its lifecycle; the dist journal remembers the
// per-job progress inside a running campaign. Killing the control plane
// at any instant loses neither — a torn tail is detected by the record
// CRCs, truncated away on reopen, and everything before it replays.
//
// Durability policy: every record is fsynced before the state change it
// describes is acknowledged. Submissions are the contract with the
// tenant ("202 means your campaign survives anything short of disk
// loss"), and the transition rate is human-scale, so the sync cost is
// irrelevant.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spice/internal/trace"
)

// queue record types.
const (
	qSubmit = "submit" // a campaign was accepted into the queue
	qStart  = "start"  // the campaign was handed to the coordinator
	qDone   = "done"   // the campaign completed
	qFail   = "fail"   // the campaign failed (record carries the error)
	qCancel = "cancel" // the campaign was canceled by the tenant
)

// qrec is one queue journal record.
type qrec struct {
	T        string          `json:"t"`
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Name     string          `json:"name,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"` // submit only
	Err      string          `json:"err,omitempty"`  // fail only
	At       time.Time       `json:"at"`
}

// queueJournal is the open write side of queue.log.
type queueJournal struct {
	f  *os.File
	rw *trace.RecordWriter
}

// queueReplay is one campaign's recovered lifecycle (last record wins).
type queueReplay struct {
	rec   qrec // the submit record (identity + spec)
	state State
	err   string
}

// openQueueJournal opens (creating if needed) queue.log under dir,
// replays it, truncates a torn tail, and positions the writer for
// appending. The replayed campaigns come back in submission order.
func openQueueJournal(dir string) (*queueJournal, []*queueReplay, int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("controlplane: state dir: %w", err)
	}
	path := filepath.Join(dir, "queue.log")
	scan, err := trace.ScanFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("controlplane: %s: %w", path, err)
	}
	byID := make(map[string]*queueReplay)
	var order []*queueReplay
	for _, raw := range scan.Records {
		var r qrec
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, nil, 0, fmt.Errorf("controlplane: undecodable queue record (CRC valid): %w", err)
		}
		switch r.T {
		case qSubmit:
			if byID[r.ID] == nil {
				qr := &queueReplay{rec: r, state: StateQueued}
				byID[r.ID] = qr
				order = append(order, qr)
			}
		case qStart:
			if qr := byID[r.ID]; qr != nil {
				qr.state = StateRunning
			}
		case qDone:
			if qr := byID[r.ID]; qr != nil {
				qr.state = StateDone
			}
		case qFail:
			if qr := byID[r.ID]; qr != nil {
				qr.state = StateFailed
				qr.err = r.Err
			}
		case qCancel:
			if qr := byID[r.ID]; qr != nil {
				qr.state = StateCanceled
			}
		default:
			// Unknown record types from a newer writer are tolerated.
		}
	}
	if scan.TailErr != nil {
		if err := os.Truncate(path, scan.CleanLen); err != nil {
			return nil, nil, 0, fmt.Errorf("controlplane: truncating torn queue tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("controlplane: opening queue journal: %w", err)
	}
	j := &queueJournal{f: f, rw: trace.NewRecordWriter(f, scan.CleanLen > 0)}
	return j, order, scan.TornBytes, nil
}

// append frames, writes, flushes and fsyncs one record. Every queue
// transition is synced — see the durability policy above.
func (j *queueJournal) append(r *qrec) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := j.rw.Append(payload); err != nil {
		return err
	}
	if err := j.rw.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *queueJournal) close() error {
	if j == nil {
		return nil
	}
	if err := j.rw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
