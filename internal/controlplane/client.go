package controlplane

// Client is the Go-side consumer of the control plane API — what
// `spice -server ...` speaks. It is deliberately thin: JSON in, JSON
// out, package errors reconstructed from status codes so callers can
// errors.Is against the same sentinels the server uses.
//
// Retries are opt-in (RetryMax) and deliberately narrow: only
// responses that carry a Retry-After header are retried — the
// server's explicit "this is transient, come back" signal (rate
// limit, shed load, degraded storage). A bare 429 (standing quota) or
// any other error returns immediately; waiting would not help. The
// delay is the larger of the server's hint and a decorrelated-jitter
// backoff from the shared internal/backoff policy, and every retry
// spends from the optional RetryBudget so a stuck fleet of clients
// cannot grind a recovering server.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"spice/internal/backoff"
	"spice/internal/campaign"
	"spice/internal/dist"
	"spice/internal/trace"
)

// clientRetryPolicy paces client retries between the server's
// Retry-After hints: fast enough to catch a 1-second recovery, slow
// enough that a refused fleet thins out instead of hammering.
var clientRetryPolicy = backoff.Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second}

// Client talks to a control plane over HTTP.
type Client struct {
	// Base is the server address, host:port or a full http:// URL.
	Base string
	// HTTP is the client to use (nil = http.DefaultClient).
	HTTP *http.Client
	// RetryMax is how many times a request refused with a Retry-After
	// header (429 rate limit, 503 shed/degraded) is retried before the
	// error is surfaced. 0 disables retries.
	RetryMax int
	// RetryBudget, when set, is spent once per retry; an empty budget
	// surfaces the error instead of retrying. Share one budget across
	// the process so concurrent calls respect a single fleet-wide
	// retry rate. Nil = unlimited.
	RetryBudget *backoff.Budget

	mu sync.Mutex
	bo *backoff.Decorrelated
}

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return base + path
}

// nextDelay draws the client-side retry delay. The decorrelated
// generator is seeded per client instance from the wall clock, so a
// herd of clients refused together spreads back out.
func (c *Client) nextDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bo == nil {
		seed := backoff.Seed(c.Base) ^ uint64(time.Now().UnixNano())
		c.bo = clientRetryPolicy.Decorrelated(seed)
	}
	return c.bo.Next()
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		hint, err := c.doOnce(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		if hint < 0 || attempt >= c.RetryMax {
			return err
		}
		if !c.RetryBudget.Spend() {
			return fmt.Errorf("%w (retry budget exhausted)", err)
		}
		d := c.nextDelay()
		if hint > d {
			d = hint
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(d):
		}
	}
}

// doOnce performs one HTTP exchange. The returned hint is the
// server's Retry-After as a duration when the response is retryable,
// or -1 when it is not (success, hard error, or no header).
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) (time.Duration, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return -1, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return -1, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		// The server's message already spells out the sentinel's own
		// text, so strip it before re-wrapping to keep errors.Is working
		// without doubling the prefix.
		wrap := func(sentinel error) error {
			return fmt.Errorf("%w: %s", sentinel, strings.TrimPrefix(msg, sentinel.Error()+": "))
		}
		hint := retryAfter(resp)
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			if hint >= 0 {
				return hint, wrap(ErrRateLimited)
			}
			return -1, wrap(ErrQuotaExceeded)
		case http.StatusNotFound:
			return -1, wrap(ErrNotFound)
		case http.StatusConflict:
			return -1, fmt.Errorf("controlplane: %s", msg)
		case http.StatusServiceUnavailable:
			// Three conditions share the status; the body's sentinel
			// prefix tells them apart so errors.Is keeps working.
			for _, sentinel := range []error{ErrStorageDegraded, ErrOverloaded} {
				if strings.HasPrefix(msg, sentinel.Error()) {
					return hint, wrap(sentinel)
				}
			}
			return hint, wrap(ErrClosed)
		}
		return -1, fmt.Errorf("controlplane: %s %s: %s", method, path, msg)
	}
	if out == nil {
		return -1, nil
	}
	return -1, json.NewDecoder(resp.Body).Decode(out)
}

// retryAfter parses the Retry-After header (delay-seconds form) into
// a duration, or -1 when absent/unparseable — absence is the signal
// that the refusal is not transient.
func retryAfter(resp *http.Response) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return -1
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return -1
	}
	return time.Duration(secs) * time.Second
}

// Submit submits a campaign and returns its ID.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec, tag dist.CampaignTag) (string, error) {
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/campaigns", SubmitRequest{
		Tenant: tag.Tenant, Priority: tag.Priority, Name: tag.Name, Spec: spec,
	}, &resp)
	return resp.ID, err
}

// List returns campaigns, optionally filtered by tenant ("" = all).
func (c *Client) List(ctx context.Context, tenant string) ([]Campaign, error) {
	path := "/api/v1/campaigns"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var out []Campaign
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Get returns one campaign's state.
func (c *Client) Get(ctx context.Context, id string) (Campaign, error) {
	var out Campaign
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &out)
	return out, err
}

// Cancel cancels a campaign.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/campaigns/"+id, nil, nil)
}

// Result fetches a completed campaign's collated work logs.
func (c *Client) Result(ctx context.Context, id string) (map[campaign.Combo][]*trace.WorkLog, error) {
	var list []ComboLogs
	if err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/result", nil, &list); err != nil {
		return nil, err
	}
	return UnflattenResult(list), nil
}

// Stats fetches the unified stats view: queue depths per tenant plus
// the embedded coordinator's dist.Snapshot.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &out)
	return out, err
}

// WaitDone polls until the campaign reaches a terminal state or ctx
// ends, returning the final view. A campaign that failed or was
// canceled is not an error here — inspect State.
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (Campaign, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		camp, err := c.Get(ctx, id)
		if err != nil {
			return Campaign{}, err
		}
		if camp.State.terminal() {
			return camp, nil
		}
		select {
		case <-ctx.Done():
			return camp, ctx.Err()
		case <-t.C:
		}
	}
}
