package controlplane

// Client is the Go-side consumer of the control plane API — what
// `spice -server ...` speaks. It is deliberately thin: JSON in, JSON
// out, package errors reconstructed from status codes so callers can
// errors.Is against the same sentinels the server uses.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spice/internal/campaign"
	"spice/internal/dist"
	"spice/internal/trace"
)

// Client talks to a control plane over HTTP.
type Client struct {
	// Base is the server address, host:port or a full http:// URL.
	Base string
	// HTTP is the client to use (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return base + path
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		// The server's message already spells out the sentinel's own
		// text, so strip it before re-wrapping to keep errors.Is working
		// without doubling the prefix.
		wrap := func(sentinel error) error {
			return fmt.Errorf("%w: %s", sentinel, strings.TrimPrefix(msg, sentinel.Error()+": "))
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			return wrap(ErrQuotaExceeded)
		case http.StatusNotFound:
			return wrap(ErrNotFound)
		case http.StatusConflict:
			return fmt.Errorf("controlplane: %s", msg)
		case http.StatusServiceUnavailable:
			return wrap(ErrClosed)
		}
		return fmt.Errorf("controlplane: %s %s: %s", method, path, msg)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit submits a campaign and returns its ID.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec, tag dist.CampaignTag) (string, error) {
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/campaigns", SubmitRequest{
		Tenant: tag.Tenant, Priority: tag.Priority, Name: tag.Name, Spec: spec,
	}, &resp)
	return resp.ID, err
}

// List returns campaigns, optionally filtered by tenant ("" = all).
func (c *Client) List(ctx context.Context, tenant string) ([]Campaign, error) {
	path := "/api/v1/campaigns"
	if tenant != "" {
		path += "?tenant=" + tenant
	}
	var out []Campaign
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Get returns one campaign's state.
func (c *Client) Get(ctx context.Context, id string) (Campaign, error) {
	var out Campaign
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &out)
	return out, err
}

// Cancel cancels a campaign.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/campaigns/"+id, nil, nil)
}

// Result fetches a completed campaign's collated work logs.
func (c *Client) Result(ctx context.Context, id string) (map[campaign.Combo][]*trace.WorkLog, error) {
	var list []ComboLogs
	if err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/result", nil, &list); err != nil {
		return nil, err
	}
	return UnflattenResult(list), nil
}

// Stats fetches the unified stats view: queue depths per tenant plus
// the embedded coordinator's dist.Snapshot.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &out)
	return out, err
}

// WaitDone polls until the campaign reaches a terminal state or ctx
// ends, returning the final view. A campaign that failed or was
// canceled is not an error here — inspect State.
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration) (Campaign, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		camp, err := c.Get(ctx, id)
		if err != nil {
			return Campaign{}, err
		}
		if camp.State.terminal() {
			return camp, nil
		}
		select {
		case <-ctx.Done():
			return camp, ctx.Err()
		case <-t.C:
		}
	}
}
