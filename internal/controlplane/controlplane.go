// Package controlplane is the multi-tenant campaign control plane: a
// long-lived service that accepts SMD sweep campaigns over HTTP, queues
// them durably, and feeds them to a dist.Coordinator under per-tenant
// quotas and live fair-share scheduling.
//
// The package ties three earlier layers together without changing any
// of their invariants:
//
//   - internal/trace gives the queue its crash-safe journal framing, so
//     an accepted campaign survives SIGKILL and replays on restart;
//   - internal/grid contributes the priority + fair-share + aging
//     ranking policy, promoted from the offline planner into the live
//     lease path via dist.Scheduler;
//   - internal/dist executes the campaigns; the control plane only
//     decides WHEN a campaign starts and WHOSE jobs are offered to an
//     idle worker next. Results therefore stay bit-identical to a
//     single-tenant, single-process run — scheduling moves work in
//     time, never in value.
//
// Two admission/throughput controls exist per tenant (Quota): MaxQueued
// bounds how many campaigns a tenant may have in flight (enforced at
// submission: HTTP 429), and MaxRunning bounds how many of its jobs may
// hold worker leases at once (enforced on every lease offer). A global
// MaxActive bounds how many campaigns the coordinator multiplexes.
package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spice/internal/backoff"
	"spice/internal/campaign"
	"spice/internal/dist"
	"spice/internal/faultfs"
	"spice/internal/grid"
	"spice/internal/obs"
	"spice/internal/trace"
)

// State is a campaign's lifecycle state in the queue.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether s is a final state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Quota bounds one tenant's resource use. Zero fields mean unlimited.
type Quota struct {
	// MaxQueued caps the tenant's campaigns in non-terminal states
	// (queued + running). Submissions beyond it are rejected (HTTP 429).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning caps the tenant's jobs holding worker leases at once.
	// Campaigns of a tenant at this limit are skipped when offering
	// work to idle workers; they resume as soon as a lease frees up.
	MaxRunning int `json:"max_running,omitempty"`
}

// Config parameterizes a control plane Server.
type Config struct {
	// Coordinator executes the campaigns. Required; its Scheduler slot
	// must be free — New installs the fair-share/quota scheduler there.
	Coordinator *dist.Coordinator
	// StateDir holds queue.log, the durable campaign queue. Required.
	StateDir string
	// MaxActive caps campaigns running concurrently on the coordinator
	// (0 = unlimited). Queued campaigns beyond it wait for a slot.
	MaxActive int
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota Quota
	// Quotas maps tenant -> per-tenant quota overrides.
	Quotas map[string]Quota
	// Aging is the fair-share aging rate in priority points per waiting
	// hour (see grid.Policy) — the starvation-freedom knob for both the
	// campaign dispatch order and the live lease path.
	Aging float64
	// Backfill selects the quota-blocked behavior on the lease path.
	// False (conservative) stops the offer round at the first campaign
	// blocked by its tenant's MaxRunning, preserving strict policy
	// order — nothing jumps a blocked head-of-line campaign. True lets
	// lower-ranked campaigns backfill the idle worker instead.
	Backfill bool
	// Metrics, if non-nil, receives spice_cp_* counters and gauges.
	Metrics *obs.Registry
	// Events, if non-nil, receives campaign lifecycle events.
	Events *obs.EventLog

	// CompactBytes compacts queue.log (fold into queue.snapshot,
	// truncate the log) when it grows past this size, keeping the
	// on-disk footprint bounded on long-lived control planes. 0
	// disables compaction.
	CompactBytes int64
	// StorageRetries is how many times a failed journal append is
	// retried (short capped backoff) before the server enters the
	// degraded storage state. 0 degrades on the first failure.
	StorageRetries int
	// StorageProbe is how often a degraded server probes the journal
	// with a no-op record to detect recovery (default 500ms).
	StorageProbe time.Duration
	// FS routes every queue journal operation through an injectable
	// filesystem (faultfs.Injector — the disk-fault chaos hook). Nil
	// uses the real OS filesystem.
	FS faultfs.FS

	// --- Overload protection ---

	// TenantRPS rate-limits each tenant's mutating calls (Submit,
	// Cancel) to this many per second via a per-tenant token bucket.
	// Over-rate calls are refused with ErrRateLimited (HTTP 429 +
	// Retry-After) — unlike ErrQuotaExceeded, waiting and retrying
	// succeeds. 0 disables rate limiting.
	TenantRPS float64
	// TenantBurst is the token-bucket burst for TenantRPS (how many
	// calls a quiet tenant may fire back-to-back). 0 defaults to
	// 2×TenantRPS, minimum 1.
	TenantBurst int
	// MaxConcurrent caps in-flight HTTP requests across the mounted
	// API (0 = unlimited). Excess requests are shed immediately with
	// 503 + Retry-After instead of queueing behind s.mu — under
	// overload a fast refusal beats a slow success.
	MaxConcurrent int
	// MaxQueueDepth caps non-terminal campaigns across all tenants
	// (0 = unlimited). Submissions beyond it are refused with
	// ErrOverloaded (503 + Retry-After) before touching the journal —
	// admission control so the queue cannot grow without bound while
	// workers are behind.
	MaxQueueDepth int
}

// Campaign is the public view of one queued-or-finished campaign.
type Campaign struct {
	ID       string        `json:"id"`
	Tenant   string        `json:"tenant,omitempty"`
	Priority int           `json:"priority,omitempty"`
	Name     string        `json:"name,omitempty"`
	State    State         `json:"state"`
	Error    string        `json:"error,omitempty"`
	Spec     campaign.Spec `json:"spec"`
	// Jobs counts toward completion while running (total / done); both
	// are zero until the campaign reaches the coordinator.
	JobsTotal int       `json:"jobs_total,omitempty"`
	JobsDone  int       `json:"jobs_done,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
}

// entry is the server-side record of one campaign.
type entry struct {
	Campaign
	specJSON json.RawMessage
	seq      int // dispatch FCFS tiebreak (journal replay order, then arrival)
	result   map[campaign.Combo][]*trace.WorkLog
}

// Server is a running control plane.
type Server struct {
	cfg Config

	mu      sync.Mutex
	journal *queueJournal
	entries map[string]*entry
	order   []*entry // submission order
	seq     int
	started bool
	closed  bool

	// Degraded storage state: set when a journal append fails past its
	// retries, cleared when the prober's no-op record (or any later
	// append) succeeds. While degraded, submissions and cancels are
	// refused with ErrStorageDegraded (HTTP 503 + Retry-After) — the
	// 202 contract cannot be honored — but campaigns already running
	// keep draining and reads stay available.
	degraded            bool
	degradedSince       time.Time
	lastStorageErr      string
	storageDegradations int
	storageRecoveries   int

	// Metrics (nil-safe wrappers below when cfg.Metrics is nil).
	mSubmits  *obs.CounterVec // spice_cp_submissions_total{tenant}
	mRejects  *obs.CounterVec // spice_cp_rejections_total{tenant,reason}
	mDefers   *obs.CounterVec // spice_cp_quota_skips_total{tenant}
	mFinished *obs.CounterVec // spice_cp_campaigns_finished_total{tenant,state}

	pol *grid.Policy // fair-share ledger for dispatch ordering (under mu)

	// Overload protection. buckets holds the per-tenant rate-limit
	// token buckets (under mu); httpSem is the request-concurrency
	// semaphore (nil when MaxConcurrent is 0); httpSheds counts
	// requests refused at the semaphore — an atomic because the shed
	// path must not touch mu at all.
	buckets   map[string]*backoff.Budget
	httpSem   chan struct{}
	httpSheds atomic.Int64

	// usageMu guards usageSnap, a read-copy of the fair-share ledger for
	// the lease scheduler. The scheduler runs inside the coordinator's
	// lock and must not take s.mu (Get/List call into the coordinator
	// while holding s.mu, so s.mu -> co.mu is the established order and
	// co.mu -> s.mu would deadlock). usageMu is a leaf lock: nothing is
	// acquired while holding it.
	usageMu   sync.Mutex
	usageSnap map[string]float64
}

// Errors the HTTP layer maps to status codes.
var (
	// ErrQuotaExceeded rejects a submission over the tenant's MaxQueued.
	ErrQuotaExceeded = errors.New("controlplane: tenant queue quota exceeded")
	// ErrDuplicate rejects a submission whose (spec, tag) identity is
	// already queued, running, or finished. Vary Name to resubmit.
	ErrDuplicate = errors.New("controlplane: campaign already submitted")
	// ErrNotFound is returned for unknown campaign IDs.
	ErrNotFound = errors.New("controlplane: no such campaign")
	// ErrNotDone is returned when results are requested early.
	ErrNotDone = errors.New("controlplane: campaign has not completed")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("controlplane: server is closed")
	// ErrStorageDegraded refuses writes while the queue journal cannot
	// take durable appends: a submission the journal did not record
	// must not be acknowledged. The HTTP layer maps it to 503 with a
	// Retry-After header; the prober clears the state when the disk
	// recovers.
	ErrStorageDegraded = errors.New("controlplane: storage degraded, retry later")
	// ErrRateLimited refuses a call over the tenant's TenantRPS token
	// bucket. Maps to HTTP 429 + Retry-After; transient by
	// construction — the bucket refills continuously.
	ErrRateLimited = errors.New("controlplane: tenant rate limit exceeded, retry later")
	// ErrOverloaded sheds load when the control plane is saturated
	// (queue depth or request concurrency over its cap). Maps to 503 +
	// Retry-After. Campaigns already admitted keep draining.
	ErrOverloaded = errors.New("controlplane: overloaded, retry later")
)

// New builds a Server: opens and replays queue.log, installs the
// fair-share scheduler on the coordinator, and registers metrics.
// Campaigns recovered in non-terminal states are re-queued (a campaign
// that was running re-runs through the coordinator's own journal
// replay, so completed jobs are not re-executed). Call Start to begin
// dispatching.
func New(cfg Config) (*Server, error) {
	if cfg.Coordinator == nil {
		return nil, errors.New("controlplane: Config.Coordinator is required")
	}
	if cfg.StateDir == "" {
		return nil, errors.New("controlplane: Config.StateDir is required")
	}
	s := &Server{
		cfg:     cfg,
		entries: make(map[string]*entry),
		pol:     grid.NewPolicy(cfg.Aging),
		buckets: make(map[string]*backoff.Budget),
	}
	if cfg.MaxConcurrent > 0 {
		s.httpSem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if reg := cfg.Metrics; reg != nil {
		s.mSubmits = reg.CounterVec("spice_cp_submissions_total",
			"Campaigns accepted into the control plane queue.", "tenant")
		s.mRejects = reg.CounterVec("spice_cp_rejections_total",
			"Campaign submissions rejected.", "tenant", "reason")
		s.mDefers = reg.CounterVec("spice_cp_quota_skips_total",
			"Lease offers withheld from a tenant at its MaxRunning quota.", "tenant")
		s.mFinished = reg.CounterVec("spice_cp_campaigns_finished_total",
			"Campaigns reaching a terminal state.", "tenant", "state")
		reg.RegisterCollector(s.collect)
	}
	journal, replay, torn, err := openQueueJournal(cfg.FS, cfg.StateDir)
	if err != nil {
		return nil, err
	}
	journal.compactBytes = cfg.CompactBytes
	journal.retries = cfg.StorageRetries
	s.journal = journal
	if torn > 0 {
		s.event("cp_journal_torn_tail", "", map[string]any{"bytes": torn})
	}
	for _, qr := range replay {
		var spec campaign.Spec
		if err := json.Unmarshal(qr.rec.Spec, &spec); err != nil {
			journal.close()
			return nil, fmt.Errorf("controlplane: replaying campaign %s: %w", qr.rec.ID, err)
		}
		s.seq++
		e := &entry{
			Campaign: Campaign{
				ID:        qr.rec.ID,
				Tenant:    qr.rec.Tenant,
				Priority:  qr.rec.Priority,
				Name:      qr.rec.Name,
				State:     qr.state,
				Error:     qr.err,
				Spec:      spec,
				Submitted: qr.rec.At,
			},
			specJSON: qr.rec.Spec,
			seq:      s.seq,
		}
		// A campaign that was running when the process died goes back to
		// queued: dispatch re-runs it and the coordinator's journal replay
		// makes the re-run resume (or complete instantly) rather than
		// redo finished jobs. Fair-share usage for finished campaigns is
		// re-charged so the ledger survives restarts too.
		if e.State == StateRunning {
			e.State = StateQueued
		}
		if e.State == StateDone {
			s.charge(e.Tenant, jobHours(e.Spec))
		}
		s.entries[e.ID] = e
		s.order = append(s.order, e)
	}
	// The live lease path consults the control plane's quotas on every
	// offer. The coordinator reads this field under its own lock; we set
	// it before any worker can connect.
	cfg.Coordinator.Scheduler = s.leaseScheduler()
	return s, nil
}

// Start begins dispatching queued campaigns and marks the server ready.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.dispatchLocked()
}

// Ready reports readiness: nil once the journal has been replayed and
// dispatch is live. Wire it to obs /readyz — a control plane that is up
// but still replaying must not take submissions.
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.started {
		return errors.New("controlplane: journal replay in progress")
	}
	if s.degraded {
		return fmt.Errorf("%w (%s)", ErrStorageDegraded, s.lastStorageErr)
	}
	return nil
}

// storageFaultLocked records a journal failure, enters the degraded
// state, and starts the recovery prober. Requires s.mu.
func (s *Server) storageFaultLocked(op string, err error) {
	s.lastStorageErr = err.Error()
	if s.degraded {
		return
	}
	s.degraded = true
	s.degradedSince = time.Now().UTC()
	s.storageDegradations++
	s.event("cp_storage_degraded", "", map[string]any{"op": op, "error": err.Error()})
	if !s.closed {
		go s.probeStorage()
	}
}

// storageRecoveredLocked leaves the degraded state. Requires s.mu.
func (s *Server) storageRecoveredLocked() {
	if !s.degraded {
		return
	}
	s.degraded = false
	s.storageRecoveries++
	s.event("cp_storage_recovered", "", map[string]any{
		"degraded_for": time.Since(s.degradedSince).String(),
	})
}

func (s *Server) probeInterval() time.Duration {
	if s.cfg.StorageProbe > 0 {
		return s.cfg.StorageProbe
	}
	return 500 * time.Millisecond
}

// probeStorage periodically appends (and fsyncs) a no-op record while
// the server is degraded; the first success flips it back to ready and
// resumes dispatch. One prober runs per degraded spell.
func (s *Server) probeStorage() {
	for {
		time.Sleep(s.probeInterval())
		s.mu.Lock()
		if s.closed || !s.degraded {
			s.mu.Unlock()
			return
		}
		if err := s.journal.append(&qrec{T: qNoop, At: time.Now().UTC()}); err != nil {
			s.lastStorageErr = err.Error()
			s.mu.Unlock()
			continue
		}
		s.storageRecoveredLocked()
		s.dispatchLocked()
		s.mu.Unlock()
		return
	}
}

// Close stops accepting work and closes the queue journal. Campaigns
// already handed to the coordinator keep running until it shuts down;
// their terminal records are lost for this process but re-derived on
// the next restart's re-run (which replays instantly from the dist
// journal).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.journal.close()
}

// allowLocked spends one token from tenant's rate bucket, creating it
// on first sight. Always true when TenantRPS is 0. Requires s.mu.
func (s *Server) allowLocked(tenant string) bool {
	if s.cfg.TenantRPS <= 0 {
		return true
	}
	b, ok := s.buckets[tenant]
	if !ok {
		burst := s.cfg.TenantBurst
		if burst <= 0 {
			burst = int(2 * s.cfg.TenantRPS)
			if burst < 1 {
				burst = 1
			}
		}
		b = backoff.NewBudget(s.cfg.TenantRPS, burst)
		s.buckets[tenant] = b
	}
	return b.Spend()
}

// quotaFor resolves tenant's quota.
func (s *Server) quotaFor(tenant string) Quota {
	if q, ok := s.cfg.Quotas[tenant]; ok {
		return q
	}
	return s.cfg.DefaultQuota
}

// jobHours is the fair-share charge for a completed campaign: its job
// count (every job is one pulling trajectory of the same length, so job
// count is proportional to compute).
func jobHours(spec campaign.Spec) float64 {
	return float64(len(spec.Kappas) * len(spec.Velocities) * spec.Replicas)
}

// Submit accepts a campaign into the queue. It returns the campaign's
// stable ID (dist.SpecKey of spec+tag), having journaled and fsynced
// the submission first — once Submit returns, the campaign survives
// SIGKILL. ErrQuotaExceeded and ErrDuplicate reject without journaling.
func (s *Server) Submit(spec campaign.Spec, tag dist.CampaignTag) (string, error) {
	id, err := dist.SpecKey(spec, tag)
	if err != nil {
		return "", err
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if !s.allowLocked(tag.Tenant) {
		s.reject(tag.Tenant, "rate")
		return "", fmt.Errorf("%w: tenant %q over %g req/s", ErrRateLimited, tag.Tenant, s.cfg.TenantRPS)
	}
	if max := s.cfg.MaxQueueDepth; max > 0 {
		depth := 0
		for _, e := range s.order {
			if !e.State.terminal() {
				depth++
			}
		}
		if depth >= max {
			s.reject(tag.Tenant, "overload")
			return "", fmt.Errorf("%w: %d campaigns in flight (max %d)", ErrOverloaded, depth, max)
		}
	}
	if s.degraded {
		// The 202 contract is "your campaign survives anything short of
		// disk loss"; with the journal refusing writes that promise
		// cannot be made. Refuse cheaply here — the prober re-opens the
		// gate as soon as the disk takes a fsynced record again.
		s.reject(tag.Tenant, "storage")
		return "", fmt.Errorf("%w (%s)", ErrStorageDegraded, s.lastStorageErr)
	}
	if _, ok := s.entries[id]; ok {
		s.reject(tag.Tenant, "duplicate")
		return id, ErrDuplicate
	}
	if q := s.quotaFor(tag.Tenant); q.MaxQueued > 0 {
		active := 0
		for _, e := range s.order {
			if e.Tenant == tag.Tenant && !e.State.terminal() {
				active++
			}
		}
		if active >= q.MaxQueued {
			s.reject(tag.Tenant, "quota")
			return "", fmt.Errorf("%w: tenant %q has %d campaigns in flight (max %d)",
				ErrQuotaExceeded, tag.Tenant, active, q.MaxQueued)
		}
	}
	now := time.Now().UTC()
	rec := &qrec{
		T: qSubmit, ID: id,
		Tenant: tag.Tenant, Priority: tag.Priority, Name: tag.Name,
		Spec: specJSON, At: now,
	}
	if err := s.journal.append(rec); err != nil {
		// append already repaired the log back to its last clean record
		// boundary, so the failed submission leaves nothing on disk. The
		// in-memory queue is untouched for the same reason: journal
		// first, apply second, always.
		s.storageFaultLocked("submit", err)
		return "", fmt.Errorf("%w: journaling submission: %s", ErrStorageDegraded, err)
	}
	s.seq++
	e := &entry{
		Campaign: Campaign{
			ID: id, Tenant: tag.Tenant, Priority: tag.Priority, Name: tag.Name,
			State: StateQueued, Spec: spec, Submitted: now,
		},
		specJSON: specJSON,
		seq:      s.seq,
	}
	s.entries[id] = e
	s.order = append(s.order, e)
	if s.mSubmits != nil {
		s.mSubmits.With(tag.Tenant).Inc()
	}
	s.event("cp_submitted", id, map[string]any{"tenant": tag.Tenant, "priority": tag.Priority})
	if s.started {
		s.dispatchLocked()
	}
	return id, nil
}

func (s *Server) reject(tenant, reason string) {
	if s.mRejects != nil {
		s.mRejects.With(tenant, reason).Inc()
	}
	s.event("cp_rejected", "", map[string]any{"tenant": tenant, "reason": reason})
}

// dispatchLocked promotes queued campaigns to running while MaxActive
// slots are free, in fair-share policy order (effective priority with
// aging, then least accumulated tenant usage, then FCFS). Requires s.mu.
func (s *Server) dispatchLocked() {
	if !s.started || s.closed {
		return
	}
	for {
		if s.cfg.MaxActive > 0 {
			running := 0
			for _, e := range s.order {
				if e.State == StateRunning {
					running++
				}
			}
			if running >= s.cfg.MaxActive {
				return
			}
		}
		e := s.nextQueuedLocked()
		if e == nil {
			return
		}
		s.startLocked(e)
	}
}

// nextQueuedLocked ranks the queued campaigns under the fair-share
// policy and returns the winner (nil if none). Tenants currently
// running campaigns carry their in-flight job counts as provisional
// usage, so a busy tenant's next campaign ranks behind an idle one's.
func (s *Server) nextQueuedLocked() *entry {
	var queued []*entry
	for _, e := range s.order {
		if e.State == StateQueued {
			queued = append(queued, e)
		}
	}
	if len(queued) == 0 {
		return nil
	}
	now := time.Now().UTC()
	cands := make([]grid.Candidate, len(queued))
	for i, e := range queued {
		cands[i] = grid.Candidate{
			Tenant:    e.Tenant,
			Priority:  e.Priority,
			WaitHours: now.Sub(e.Submitted).Hours(),
			Seq:       e.seq,
		}
	}
	extra := make(map[string]float64)
	for _, e := range s.order {
		if e.State == StateRunning {
			extra[e.Tenant] += jobHours(e.Spec)
		}
	}
	return queued[s.pol.Rank(cands, extra)[0]]
}

// startLocked journals the transition and hands e to the coordinator.
func (s *Server) startLocked(e *entry) {
	e.State = StateRunning
	e.Started = time.Now().UTC()
	e.JobsTotal = len(e.Spec.Tasks())
	if err := s.journal.append(&qrec{T: qStart, ID: e.ID, Tenant: e.Tenant, At: e.Started}); err != nil {
		// The start record is an optimization (replay re-queues running
		// campaigns anyway); losing it only costs a redundant re-dispatch.
		// It still flags the disk as sick so submissions stop overpromising.
		s.event("cp_journal_error", e.ID, map[string]any{"err": err.Error()})
		s.storageFaultLocked("start", err)
	}
	s.event("cp_started", e.ID, map[string]any{"tenant": e.Tenant})
	go s.run(e)
}

// run executes one campaign on the coordinator and journals the result.
func (s *Server) run(e *entry) {
	tag := dist.CampaignTag{Tenant: e.Tenant, Priority: e.Priority, Name: e.Name}
	logs, err := s.cfg.Coordinator.RunTagged(e.Spec, tag)

	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now().UTC()
	e.Finished = now
	var rec *qrec
	switch {
	case err == nil:
		e.State = StateDone
		e.JobsDone = e.JobsTotal
		e.result = logs
		s.charge(e.Tenant, jobHours(e.Spec))
		rec = &qrec{T: qDone, ID: e.ID, Tenant: e.Tenant, At: now}
	case errors.Is(err, dist.ErrCampaignCanceled):
		e.State = StateCanceled
		// Cancel already journaled the qCancel record before asking the
		// coordinator to stop; nothing further to persist.
	default:
		e.State = StateFailed
		e.Error = err.Error()
		rec = &qrec{T: qFail, ID: e.ID, Tenant: e.Tenant, Err: e.Error, At: now}
	}
	if rec != nil && !s.closed {
		// A lost terminal record is re-derived on the next restart (the
		// re-run replays instantly from the dist journal), so the state
		// change stands either way — but the failure flags degradation.
		if jerr := s.journal.append(rec); jerr != nil {
			s.event("cp_journal_error", e.ID, map[string]any{"err": jerr.Error()})
			s.storageFaultLocked("finish", jerr)
		} else {
			s.storageRecoveredLocked()
		}
	}
	if s.mFinished != nil {
		s.mFinished.With(e.Tenant, string(e.State)).Inc()
	}
	s.event("cp_finished", e.ID, map[string]any{"tenant": e.Tenant, "state": string(e.State)})
	s.dispatchLocked()
}

// Cancel cancels a campaign by ID. Queued campaigns are simply marked;
// running ones are canceled on the coordinator, which fails their
// remaining jobs with ErrCampaignCanceled. Canceling a terminal
// campaign is a no-op returning its current state.
func (s *Server) Cancel(id string) (State, error) {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		return "", ErrNotFound
	}
	if e.State.terminal() {
		st := e.State
		s.mu.Unlock()
		return st, nil
	}
	if !s.allowLocked(e.Tenant) {
		s.reject(e.Tenant, "rate")
		s.mu.Unlock()
		return "", fmt.Errorf("%w: tenant %q over %g req/s", ErrRateLimited, e.Tenant, s.cfg.TenantRPS)
	}
	if s.degraded {
		s.mu.Unlock()
		return "", fmt.Errorf("%w (%s)", ErrStorageDegraded, s.lastStorageErr)
	}
	wasRunning := e.State == StateRunning
	if err := s.journal.append(&qrec{T: qCancel, ID: id, Tenant: e.Tenant, At: time.Now().UTC()}); err != nil {
		s.storageFaultLocked("cancel", err)
		s.mu.Unlock()
		return "", fmt.Errorf("%w: journaling cancel: %s", ErrStorageDegraded, err)
	}
	if !wasRunning {
		e.State = StateCanceled
		e.Finished = time.Now().UTC()
		if s.mFinished != nil {
			s.mFinished.With(e.Tenant, string(StateCanceled)).Inc()
		}
	}
	s.event("cp_canceled", id, map[string]any{"tenant": e.Tenant, "was_running": wasRunning})
	s.mu.Unlock()
	if wasRunning {
		// The coordinator fails the campaign's jobs; run() observes
		// ErrCampaignCanceled and finishes the state transition.
		s.cfg.Coordinator.CancelCampaign(id)
		return StateRunning, nil
	}
	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
	return StateCanceled, nil
}

// Get returns the public view of one campaign.
func (s *Server) Get(id string) (Campaign, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return Campaign{}, ErrNotFound
	}
	return s.viewLocked(e), nil
}

// List returns all campaigns in submission order, optionally filtered
// by tenant ("" = all).
func (s *Server) List(tenant string) []Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Campaign, 0, len(s.order))
	for _, e := range s.order {
		if tenant != "" && e.Tenant != tenant {
			continue
		}
		out = append(out, s.viewLocked(e))
	}
	return out
}

// viewLocked snapshots e, refreshing live job counts from the
// coordinator for running campaigns. Requires s.mu.
func (s *Server) viewLocked(e *entry) Campaign {
	c := e.Campaign
	if e.State == StateRunning {
		for _, v := range s.cfg.Coordinator.Campaigns() {
			if v.Key == e.ID {
				c.JobsTotal = v.Total
				c.JobsDone = v.Done
				break
			}
		}
	}
	return c
}

// Result returns a completed campaign's collated work logs. If the
// campaign completed in a previous process (state recovered from the
// journal but results not in memory), it is re-run through the
// coordinator — the dist journal replays every finished job, so this
// completes without re-executing work and yields bit-identical logs.
func (s *Server) Result(id string) (map[campaign.Combo][]*trace.WorkLog, error) {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if e.State != StateDone {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: campaign %s is %s", ErrNotDone, id, e.State)
	}
	if e.result != nil {
		r := e.result
		s.mu.Unlock()
		return r, nil
	}
	spec, tag := e.Spec, dist.CampaignTag{Tenant: e.Tenant, Priority: e.Priority, Name: e.Name}
	s.mu.Unlock()

	logs, err := s.cfg.Coordinator.RunTagged(spec, tag)
	if err != nil {
		return nil, fmt.Errorf("controlplane: recovering results for %s: %w", id, err)
	}
	s.mu.Lock()
	e.result = logs
	s.mu.Unlock()
	return logs, nil
}

// leaseScheduler builds the dist.Scheduler enforcing per-tenant
// MaxRunning quotas with fair-share ordering on the live lease path.
// It runs inside the coordinator's lock, so it must not take s.mu (see
// usageMu); it reads only immutable config, atomic metric counters, and
// the usage snapshot.
func (s *Server) leaseScheduler() dist.Scheduler {
	return dist.SchedulerFunc(func(now time.Time, views []dist.CampaignView) []int {
		leased := make(map[string]float64, len(views))
		for _, v := range views {
			leased[v.Tenant] += float64(v.Leased)
		}
		cands := make([]grid.Candidate, len(views))
		for i, v := range views {
			cands[i] = grid.Candidate{
				Tenant:    v.Tenant,
				Priority:  v.Priority,
				WaitHours: now.Sub(v.Submitted).Hours(),
				Seq:       v.Seq,
			}
		}
		order := s.rankForLease(cands, leased)
		out := make([]int, 0, len(order))
		for _, i := range order {
			v := views[i]
			if q := s.quotaFor(v.Tenant); q.MaxRunning > 0 && v.Leased >= q.MaxRunning {
				if s.mDefers != nil {
					s.mDefers.With(v.Tenant).Inc()
				}
				if !s.cfg.Backfill {
					// Conservative: a quota-blocked campaign blocks
					// everything ranked behind it, so strict policy order
					// is never violated by opportunistic jumps.
					break
				}
				continue
			}
			out = append(out, i)
		}
		return out
	})
}

// rankForLease ranks lease candidates under the fair-share ledger
// snapshot plus the instantaneous leased-job load.
func (s *Server) rankForLease(cands []grid.Candidate, leased map[string]float64) []int {
	extra := make(map[string]float64, len(leased))
	s.usageMu.Lock()
	for t, u := range s.usageSnap {
		extra[t] = u
	}
	s.usageMu.Unlock()
	for t, n := range leased {
		extra[t] += n
	}
	return grid.NewPolicy(s.cfg.Aging).Rank(cands, extra)
}

// charge adds to the fair-share ledger and refreshes the lease-path
// snapshot. Requires s.mu (for pol); takes the leaf usageMu.
func (s *Server) charge(tenant string, amount float64) {
	s.pol.Charge(tenant, amount)
	s.usageMu.Lock()
	if s.usageSnap == nil {
		s.usageSnap = make(map[string]float64)
	}
	s.usageSnap[tenant] = s.pol.Usage(tenant)
	s.usageMu.Unlock()
}

// QueueStats is one tenant's queue-depth row.
type QueueStats struct {
	Tenant   string `json:"tenant"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Canceled int    `json:"canceled"`
	// Usage is the tenant's accumulated fair-share charge (job-hours).
	Usage float64 `json:"usage"`
}

// Stats returns per-tenant queue depths sorted by tenant — the queue
// half of the unified stats surface (the coordinator's dist.Snapshot is
// the execution half; /api/v1/stats serves both together).
func (s *Server) Stats() []QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	byTenant := make(map[string]*QueueStats)
	for _, e := range s.order {
		qs := byTenant[e.Tenant]
		if qs == nil {
			qs = &QueueStats{Tenant: e.Tenant, Usage: s.pol.Usage(e.Tenant)}
			byTenant[e.Tenant] = qs
		}
		switch e.State {
		case StateQueued:
			qs.Queued++
		case StateRunning:
			qs.Running++
		case StateDone:
			qs.Done++
		case StateFailed:
			qs.Failed++
		case StateCanceled:
			qs.Canceled++
		}
	}
	out := make([]QueueStats, 0, len(byTenant))
	for _, qs := range byTenant {
		out = append(out, *qs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// StorageHealth is the queue journal's health snapshot.
type StorageHealth struct {
	Degraded       bool   `json:"degraded"`
	LastError      string `json:"last_error,omitempty"`
	Degradations   int    `json:"degradations"`
	Recoveries     int    `json:"recoveries"`
	Compactions    int    `json:"compactions"`
	StorageErrors  int    `json:"storage_errors"`
	StorageRetries int    `json:"storage_retries"`
	JournalBytes   int64  `json:"journal_bytes"`
}

// StorageHealth reports the queue journal's current health — the same
// numbers the spice_storage_*{journal="queue"} metrics export.
func (s *Server) StorageHealth() StorageHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StorageHealth{
		Degraded:       s.degraded,
		LastError:      s.lastStorageErr,
		Degradations:   s.storageDegradations,
		Recoveries:     s.storageRecoveries,
		Compactions:    s.journal.compactions,
		StorageErrors:  s.journal.storageErrors,
		StorageRetries: s.journal.storageRetries,
		JournalBytes:   s.journal.goodLen,
	}
}

// collect emits queue-depth gauges at scrape time.
func (s *Server) collect(e *obs.Emitter) {
	s.mu.Lock()
	depth := make(map[string]map[State]int) // tenant -> state -> n
	for _, ent := range s.order {
		if depth[ent.Tenant] == nil {
			depth[ent.Tenant] = make(map[State]int)
		}
		depth[ent.Tenant][ent.State]++
	}
	sh := StorageHealth{
		Degraded:       s.degraded,
		Degradations:   s.storageDegradations,
		Recoveries:     s.storageRecoveries,
		Compactions:    s.journal.compactions,
		StorageErrors:  s.journal.storageErrors,
		StorageRetries: s.journal.storageRetries,
		JournalBytes:   s.journal.goodLen,
	}
	s.mu.Unlock()
	// Same families as the dist journal exports, told apart by label.
	jl := obs.Label{Name: "journal", Value: "queue"}
	degraded := 0.0
	if sh.Degraded {
		degraded = 1
	}
	e.Counter("spice_storage_errors_total", "Failed journal/spool operations.", float64(sh.StorageErrors), jl)
	e.Counter("spice_storage_retries_total", "Journal appends retried after a transient fault.", float64(sh.StorageRetries), jl)
	e.Counter("spice_storage_compactions_total", "Journal compactions completed.", float64(sh.Compactions), jl)
	e.Counter("spice_storage_degradations_total", "Transitions into the degraded storage state.", float64(sh.Degradations), jl)
	e.Counter("spice_storage_recoveries_total", "Transitions back to healthy storage.", float64(sh.Recoveries), jl)
	e.Gauge("spice_storage_degraded", "1 while the journal is refusing durability promises.", degraded, jl)
	e.Gauge("spice_storage_journal_bytes", "Current clean length of the journal log.", float64(sh.JournalBytes), jl)
	e.Counter("spice_cp_http_shed_total", "HTTP requests shed at the concurrency limiter.", float64(s.httpSheds.Load()))
	tenants := make([]string, 0, len(depth))
	for t := range depth {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
			e.Gauge("spice_cp_campaigns", "Campaigns by tenant and state.",
				float64(depth[t][st]),
				obs.Label{Name: "tenant", Value: t}, obs.Label{Name: "state", Value: string(st)})
		}
	}
}

// event emits a lifecycle event when an event log is configured.
func (s *Server) event(name, id string, fields map[string]any) {
	if s.cfg.Events == nil {
		return
	}
	s.cfg.Events.Emit(obs.Event{Name: name, Campaign: id, Fields: fields})
}
