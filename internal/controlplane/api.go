package controlplane

// HTTP/JSON API, mounted alongside the obs debug endpoints:
//
//	POST   /api/v1/campaigns            submit (202 + {id,state})
//	GET    /api/v1/campaigns[?tenant=]  list
//	GET    /api/v1/campaigns/{id}        inspect one
//	DELETE /api/v1/campaigns/{id}        cancel
//	GET    /api/v1/campaigns/{id}/result collated work logs (done only)
//
// Everything is JSON; errors come back as {"error": "..."} with the
// status carrying the semantics (429 quota, 409 duplicate/not-done,
// 404 unknown, 503 closed).

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"

	"spice/internal/campaign"
	"spice/internal/dist"
	"spice/internal/trace"
)

// SubmitRequest is the POST /api/v1/campaigns body.
type SubmitRequest struct {
	Tenant   string        `json:"tenant,omitempty"`
	Priority int           `json:"priority,omitempty"`
	Name     string        `json:"name,omitempty"`
	Spec     campaign.Spec `json:"spec"`
}

// SubmitResponse acknowledges an accepted submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

// ComboLogs is one (kappa, velocity) cell of a campaign result. The
// wire result is an ordered list rather than a map because the natural
// in-process type, map[campaign.Combo][]*trace.WorkLog, has a struct
// key and cannot JSON-marshal.
type ComboLogs struct {
	Kappa    float64          `json:"kappa"`
	Velocity float64          `json:"velocity"`
	Logs     []*trace.WorkLog `json:"logs"`
}

// FlattenResult converts a collated result map to the ordered wire
// form (kappa-major, velocity-minor, matching campaign.Spec.Tasks).
func FlattenResult(m map[campaign.Combo][]*trace.WorkLog) []ComboLogs {
	out := make([]ComboLogs, 0, len(m))
	for c, logs := range m {
		out = append(out, ComboLogs{Kappa: c.KappaPN, Velocity: c.VAns, Logs: logs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kappa != out[j].Kappa {
			return out[i].Kappa < out[j].Kappa
		}
		return out[i].Velocity < out[j].Velocity
	})
	return out
}

// UnflattenResult is the inverse of FlattenResult, restoring the
// in-process map form on the client side.
func UnflattenResult(list []ComboLogs) map[campaign.Combo][]*trace.WorkLog {
	m := make(map[campaign.Combo][]*trace.WorkLog, len(list))
	for _, cl := range list {
		m[campaign.Combo{KappaPN: cl.Kappa, VAns: cl.Velocity}] = cl.Logs
	}
	return m
}

// StatsResponse is the GET /api/v1/stats body: the control plane's
// per-tenant queue depths plus the embedded coordinator's unified
// dist.Snapshot — one scrape covers both layers, and the client renders
// the dist half through the same statsfmt tables a local run prints.
type StatsResponse struct {
	Queue []QueueStats  `json:"queue"`
	Dist  dist.Snapshot `json:"dist"`
}

// Mount registers the API handlers on mux. Pair it with obs.NewMux so
// one listener serves both the API and /metrics, /healthz, /readyz.
// When Config.MaxConcurrent is set every handler runs behind the
// request-concurrency limiter.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v1/campaigns", s.limited(s.handleSubmit))
	mux.HandleFunc("GET /api/v1/campaigns", s.limited(s.handleList))
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.limited(s.handleGet))
	mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.limited(s.handleCancel))
	mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.limited(s.handleResult))
	mux.HandleFunc("GET /api/v1/stats", s.limited(s.handleStats))
}

// limited wraps h behind the MaxConcurrent semaphore. The acquire is
// non-blocking: a saturated server answers 503 + Retry-After in
// microseconds rather than parking the request goroutine — shed load
// costs almost nothing, queued load costs memory and latency for
// everyone behind it.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	if s.httpSem == nil {
		return h
	}
	return func(w http.ResponseWriter, req *http.Request) {
		select {
		case s.httpSem <- struct{}{}:
			defer func() { <-s.httpSem }()
			h(w, req)
		default:
			s.httpSheds.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": ErrOverloaded.Error()})
		}
	}
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps a package error to its HTTP status.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrNotDone):
		code = http.StatusConflict
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrRateLimited):
		// Over-rate, not over-quota: the bucket refills continuously,
		// so unlike the bare-429 quota rejection this one carries
		// Retry-After — the client's cue that backing off will work.
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrOverloaded):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrStorageDegraded):
		code = http.StatusServiceUnavailable
		// Storage degradation is expected to be transient (the probe
		// goroutine re-checks every StorageProbe); invite a retry.
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var sr SubmitRequest
	if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if len(sr.Spec.Kappas) == 0 || len(sr.Spec.Velocities) == 0 || sr.Spec.Replicas <= 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "spec needs at least one kappa, one velocity, and replicas > 0"})
		return
	}
	tag := dist.CampaignTag{Tenant: sr.Tenant, Priority: sr.Priority, Name: sr.Name}
	id, err := s.Submit(sr.Spec, tag)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued})
}

func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, s.List(req.URL.Query().Get("tenant")))
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	c, err := s.Get(req.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, c)
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	st, err := s.Cancel(req.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]State{"state": st})
}

func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	logs, err := s.Result(req.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FlattenResult(logs))
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Queue: s.Stats(),
		Dist:  s.cfg.Coordinator.StatsSnapshot(),
	})
}
