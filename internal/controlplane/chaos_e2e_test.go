package controlplane

// The control-plane chaos test: a real spiced -serve process is
// SIGKILLed with two tenants' campaigns in flight — one running on the
// embedded coordinator, one queued behind -max-active — and restarted
// on the same state directory. The restart must replay the queue with
// no accepted campaign lost, keep enforcing quotas, and finish both
// campaigns with results bit-identical to in-process LocalRunner
// baselines. SIGKILL (not SIGTERM) is the point: nothing gets to
// flush, so only what the fsynced journals hold survives. The process
// is killed twice — once mid-queue and once mid-replay — because a
// crash while recovering from a crash is the classic journal-corruption
// window.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/core"
	"spice/internal/dist"
	"spice/internal/md"
)

// chaosSystem is the model system, small enough for CI and identical
// on the serve process and the in-process baseline.
func chaosSystem() core.SystemConfig {
	return core.SystemConfig{
		Beads:         3,
		StartZ:        5,
		EquilSteps:    50,
		DT:            0.02,
		Temp:          300,
		PoreFriction:  1,
		EngineWorkers: 1,
	}
}

func buildSpiced(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spiced")
	cmd := exec.Command("go", "build", "-o", bin, "spice/cmd/spiced")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spiced: %v\n%s", err, out)
	}
	return bin
}

// startServe launches spiced -serve on ephemeral ports and returns the
// process and the HTTP API address parsed from its banner line.
func startServe(t *testing.T, bin, stateDir string, workers int) (*exec.Cmd, string) {
	t.Helper()
	sysJSON, err := json.Marshal(chaosSystem())
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-serve",
		"-listen", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-state", stateDir,
		"-workers", fmt.Sprint(workers),
		"-max-active", "1",
		"-quotas", "alice=1:1,bob=1:1",
		"-system", string(sysJSON),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "control plane: http://"); ok {
			addr, _, _ := strings.Cut(rest, "/")
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, addr
		}
	}
	t.Fatalf("spiced -serve exited without printing its banner (scanner err: %v)", sc.Err())
	return nil, ""
}

func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("control plane at %s never became ready", addr)
}

func waitClientState(t *testing.T, cl *Client, id string, want State) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		c, err := cl.Get(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if c.State == want {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
}

// sigkill kills the serve process without any chance to flush.
func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
}

func TestChaosKillControlPlaneMidQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real control-plane processes")
	}
	// In-process baselines with the identical system.
	sys := chaosSystem()
	lr := &campaign.LocalRunner{
		Build: func(_ campaign.Combo, seed uint64) (*md.Engine, []int, error) {
			return sys.Build(seed)
		},
		Workers: 1,
	}
	wantA, err := lr.Run(specA())
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := lr.Run(specB())
	if err != nil {
		t.Fatal(err)
	}

	bin := buildSpiced(t)
	state := t.TempDir()
	ctx := context.Background()
	tagA := dist.CampaignTag{Tenant: "alice"}
	tagB := dist.CampaignTag{Tenant: "bob"}

	// Phase 1 — fill the queue. Zero workers: alice's campaign
	// dispatches (running on the coordinator) but cannot progress, and
	// bob's queues behind -max-active 1. At kill time two tenants have
	// campaigns in flight, one running and one queued.
	cmd1, addr1 := startServe(t, bin, state, 0)
	waitReady(t, addr1)
	cl1 := &Client{Base: addr1}
	idA, err := cl1.Submit(ctx, specA(), tagA)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := cl1.Submit(ctx, specB(), tagB)
	if err != nil {
		t.Fatal(err)
	}
	// Quota enforced live: alice is at MaxQueued=1.
	if _, err := cl1.Submit(ctx, specB(), dist.CampaignTag{Tenant: "alice", Name: "extra"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit pre-kill: %v, want ErrQuotaExceeded", err)
	}
	waitClientState(t, cl1, idA, StateRunning)
	if c, err := cl1.Get(ctx, idB); err != nil || c.State != StateQueued {
		t.Fatalf("campaign B: state=%s err=%v, want queued", c.State, err)
	}
	sigkill(t, cmd1)

	// Phase 2 — restart, still zero workers: both campaigns must be
	// replayed (none lost, the rejected one absent) and quotas must
	// bind against the replayed queue exactly as against the live one.
	cmd2, addr2 := startServe(t, bin, state, 0)
	waitReady(t, addr2)
	cl2 := &Client{Base: addr2}
	list, err := cl2.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("after restart: %d campaigns replayed, want 2 (accepted campaigns lost or ghosts revived)", len(list))
	}
	for _, want := range []struct{ id, tenant string }{{idA, "alice"}, {idB, "bob"}} {
		c, err := cl2.Get(ctx, want.id)
		if err != nil {
			t.Fatalf("campaign %s lost across SIGKILL: %v", want.id, err)
		}
		if c.Tenant != want.tenant || c.State.terminal() {
			t.Fatalf("campaign %s replayed wrong: tenant=%s state=%s", want.id, c.Tenant, c.State)
		}
	}
	if _, err := cl2.Submit(ctx, specB(), dist.CampaignTag{Tenant: "alice", Name: "extra"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit after replay: %v, want ErrQuotaExceeded", err)
	}
	// Kill again mid-replayed-state: recovery must itself be crash-safe.
	sigkill(t, cmd2)

	// Phase 3 — restart with workers and let everything drain.
	_, addr3 := startServe(t, bin, state, 2)
	waitReady(t, addr3)
	cl3 := &Client{Base: addr3}
	for _, id := range []string{idA, idB} {
		wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		c, err := cl3.WaitDone(wctx, id, 100*time.Millisecond)
		cancel()
		if err != nil || c.State != StateDone {
			t.Fatalf("campaign %s after final restart: state=%s err=%v", id, c.State, err)
		}
	}
	gotA, err := cl3.Result(ctx, idA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := cl3.Result(ctx, idB)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, wantA, gotA)
	requireBitIdentical(t, wantB, gotB)
}
