package controlplane

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/dist"
	"spice/internal/md"
	"spice/internal/trace"
)

// --- simulation fixtures (mirror internal/dist's test system) ---

func testBuild(system json.RawMessage, c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
	var sys struct {
		Beads int `json:"beads"`
	}
	if err := json.Unmarshal(system, &sys); err != nil {
		return nil, nil, err
	}
	spec := md.DefaultTranslocation(sys.Beads)
	spec.Seed = seed
	spec.DT = 0.02
	spec.Workers = 1
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		return nil, nil, err
	}
	return ts.Engine, ts.DNA[:1], nil
}

func localBuild(c campaign.Combo, seed uint64) (*md.Engine, []int, error) {
	return testBuild(json.RawMessage(`{"beads":3}`), c, seed)
}

func specA() campaign.Spec {
	return campaign.Spec{Kappas: []float64{100}, Velocities: []float64{800}, Replicas: 2, Distance: 3, Seed: 21}
}

func specB() campaign.Spec {
	return campaign.Spec{Kappas: []float64{300}, Velocities: []float64{1600}, Replicas: 2, Distance: 3, Seed: 77}
}

func localBaseline(t *testing.T, spec campaign.Spec) map[campaign.Combo][]*trace.WorkLog {
	t.Helper()
	lr := &campaign.LocalRunner{Build: localBuild, Workers: 1}
	logs, err := lr.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return logs
}

func requireBitIdentical(t *testing.T, want, got map[campaign.Combo][]*trace.WorkLog) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("combo counts differ: want %d got %d", len(want), len(got))
	}
	for c, reps := range want {
		if len(got[c]) != len(reps) {
			t.Fatalf("combo %s: %d replicas, want %d", c, len(got[c]), len(reps))
		}
		for r := range reps {
			if len(got[c][r].Samples) != len(reps[r].Samples) {
				t.Fatalf("combo %s replica %d: sample counts differ", c, r)
			}
			for i, s := range reps[r].Samples {
				g := got[c][r].Samples[i]
				if g.Work != s.Work || g.Z != s.Z || g.Lambda != s.Lambda {
					t.Fatalf("combo %s replica %d sample %d: not bit-identical", c, r, i)
				}
			}
		}
	}
}

// newHarness builds a coordinator (with its own dist journal), n
// workers, and a control plane server on a fresh state dir.
func newHarness(t *testing.T, cfg Config, workers int) (*Server, *dist.Coordinator) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	co := &dist.Coordinator{
		Listener: ln,
		System:   json.RawMessage(`{"beads":3}`),
		LeaseTTL: 2 * time.Second,
		StateDir: t.TempDir(),
	}
	t.Cleanup(func() { _ = co.Close() })
	startTestWorkers(t, co, workers)
	cfg.Coordinator = co
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, co
}

func startTestWorkers(t *testing.T, co *dist.Coordinator, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		w := &dist.Worker{
			Name:            "w",
			Addr:            co.Listener.Addr().String(),
			Build:           testBuild,
			BeatInterval:    20 * time.Millisecond,
			CheckpointEvery: 2,
		}
		go w.Run(ctx)
	}
}

func waitState(t *testing.T, s *Server, id string, want State) Campaign {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		c, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if c.State == want {
			return c
		}
		if c.State.terminal() && c.State != want {
			t.Fatalf("campaign %s reached %s (error %q), want %s", id, c.State, c.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
	return Campaign{}
}

// --- queue journal ---

func TestQueueJournalLifecycleReplay(t *testing.T) {
	dir := t.TempDir()
	j, replay, torn, err := openQueueJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 || torn != 0 {
		t.Fatalf("fresh journal: replay=%d torn=%d", len(replay), torn)
	}
	spec, _ := json.Marshal(specA())
	now := time.Now().UTC()
	recs := []*qrec{
		{T: qSubmit, ID: "a", Tenant: "alice", Priority: 2, Spec: spec, At: now},
		{T: qSubmit, ID: "b", Tenant: "bob", Spec: spec, At: now},
		{T: qSubmit, ID: "c", Tenant: "bob", Spec: spec, At: now},
		{T: qSubmit, ID: "d", Tenant: "eve", Spec: spec, At: now},
		{T: qStart, ID: "a", At: now},
		{T: qDone, ID: "a", At: now},
		{T: qStart, ID: "b", At: now},
		{T: qFail, ID: "b", Err: "boom", At: now},
		{T: qCancel, ID: "c", At: now},
		{T: qStart, ID: "d", At: now},
	}
	for _, r := range recs {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	_, replay, torn, err = openQueueJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("clean journal reported %d torn bytes", torn)
	}
	want := map[string]State{"a": StateDone, "b": StateFailed, "c": StateCanceled, "d": StateRunning}
	if len(replay) != len(want) {
		t.Fatalf("replayed %d campaigns, want %d", len(replay), len(want))
	}
	for _, qr := range replay {
		if qr.state != want[qr.rec.ID] {
			t.Errorf("campaign %s replayed as %s, want %s", qr.rec.ID, qr.state, want[qr.rec.ID])
		}
	}
	if replay[1].rec.ID != "b" || replay[0].rec.Priority != 2 {
		t.Fatalf("replay order/fields wrong: %+v", replay)
	}
	for _, qr := range replay {
		if qr.rec.ID == "b" && qr.err != "boom" {
			t.Fatalf("fail error not replayed: %q", qr.err)
		}
	}
}

// TestQueueTornTailEveryOffset is the crash-safety sweep: a journal cut
// short at EVERY byte offset inside its final record must replay the
// preceding campaigns intact, truncate the torn tail, and accept new
// appends — no offset may wedge recovery or corrupt earlier records.
func TestQueueTornTailEveryOffset(t *testing.T) {
	// Build a reference journal: two complete submissions, then a third
	// whose record we will shear at every offset.
	ref := t.TempDir()
	j, _, _, err := openQueueJournal(nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(specA())
	now := time.Unix(1700000000, 0).UTC()
	for _, id := range []string{"a", "b"} {
		if err := j.append(&qrec{T: qSubmit, ID: id, Tenant: "t-" + id, Spec: spec, At: now}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(ref, "queue.log")
	cleanLen := fileSize(t, path)
	if err := j.append(&qrec{T: qSubmit, ID: "c", Tenant: "t-c", Spec: spec, At: now}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cleanLen <= 0 || int64(len(full)) <= cleanLen {
		t.Fatalf("bad fixture: clean=%d full=%d", cleanLen, len(full))
	}

	for cut := cleanLen + 1; cut < int64(len(full)); cut++ {
		dir := t.TempDir()
		torn := filepath.Join(dir, "queue.log")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, replay, tornBytes, err := openQueueJournal(nil, dir)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(replay) != 2 || replay[0].rec.ID != "a" || replay[1].rec.ID != "b" {
			t.Fatalf("cut at %d: replayed %d campaigns, want the 2 complete ones", cut, len(replay))
		}
		if tornBytes != cut-cleanLen {
			t.Fatalf("cut at %d: reported %d torn bytes, want %d", cut, tornBytes, cut-cleanLen)
		}
		if got := fileSize(t, torn); got != cleanLen {
			t.Fatalf("cut at %d: truncated to %d, want clean length %d", cut, got, cleanLen)
		}
		// The recovered journal must accept appends that survive reopen.
		if err := j2.append(&qrec{T: qSubmit, ID: "after", Spec: spec, At: now}); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := j2.close(); err != nil {
			t.Fatal(err)
		}
		_, replay, tb, err := openQueueJournal(nil, dir)
		if err != nil || tb != 0 || len(replay) != 3 || replay[2].rec.ID != "after" {
			t.Fatalf("cut at %d: reopen after repair: err=%v torn=%d n=%d", cut, err, tb, len(replay))
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// --- server semantics ---

func TestSubmitQuotaDuplicateAndReadiness(t *testing.T) {
	s, _ := newHarness(t, Config{
		Quotas: map[string]Quota{"bob": {MaxQueued: 2}},
	}, 0)

	if err := s.Ready(); err == nil {
		t.Fatal("server ready before Start — journal replay gate missing")
	}
	s.Start()
	if err := s.Ready(); err != nil {
		t.Fatalf("server not ready after Start: %v", err)
	}

	if _, err := s.Submit(specA(), dist.CampaignTag{Tenant: "bob", Name: "1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(specA(), dist.CampaignTag{Tenant: "bob", Name: "1"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate submission: err=%v, want ErrDuplicate", err)
	}
	if _, err := s.Submit(specA(), dist.CampaignTag{Tenant: "bob", Name: "2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(specA(), dist.CampaignTag{Tenant: "bob", Name: "3"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submission: err=%v, want ErrQuotaExceeded", err)
	}
	// Unlimited default quota: another tenant is unaffected.
	if _, err := s.Submit(specA(), dist.CampaignTag{Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.List("bob")); got != 2 {
		t.Fatalf("List(bob)=%d, want 2", got)
	}
}

func TestCancelQueuedCampaign(t *testing.T) {
	s, _ := newHarness(t, Config{MaxActive: 1}, 0) // no workers: running never finishes
	s.Start()
	idA, err := s.Submit(specA(), dist.CampaignTag{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Submit(specB(), dist.CampaignTag{Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, idA, StateRunning)
	if c, _ := s.Get(idB); c.State != StateQueued {
		t.Fatalf("campaign B is %s, want queued behind MaxActive=1", c.State)
	}
	if st, err := s.Cancel(idB); err != nil || st != StateCanceled {
		t.Fatalf("cancel queued: state=%s err=%v", st, err)
	}
	if _, err := s.Result(idB); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of canceled campaign: %v, want ErrNotDone", err)
	}
	if st, err := s.Cancel(idA); err != nil || st != StateRunning {
		t.Fatalf("cancel running: state=%s err=%v", st, err)
	}
	waitState(t, s, idA, StateCanceled)
	if _, err := s.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
}

// TestTwoTenantsOverHTTPBitIdentical is the package smoke test: two
// tenants submit over the HTTP API, MaxActive=1 forces queueing, and
// both merged results must be bit-identical to single-process
// LocalRunner baselines.
func TestTwoTenantsOverHTTPBitIdentical(t *testing.T) {
	wantA, wantB := localBaseline(t, specA()), localBaseline(t, specB())

	// No workers yet: submissions and the quota rejection are asserted
	// while nothing can complete, so the quota state is deterministic.
	s, co := newHarness(t, Config{
		MaxActive: 1,
		Quotas:    map[string]Quota{"alice": {MaxQueued: 1}, "bob": {MaxQueued: 1, MaxRunning: 1}},
	}, 0)
	s.Start()

	mux := http.NewServeMux()
	s.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	cl := &Client{Base: ts.URL}
	ctx := context.Background()

	idA, err := cl.Submit(ctx, specA(), dist.CampaignTag{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := cl.Submit(ctx, specB(), dist.CampaignTag{Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	// Quota: alice is at MaxQueued=1 while her campaign is in flight.
	if _, err := cl.Submit(ctx, specB(), dist.CampaignTag{Tenant: "alice", Name: "x"}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota HTTP submit: %v, want ErrQuotaExceeded", err)
	}

	startTestWorkers(t, co, 2)
	for _, id := range []string{idA, idB} {
		if c, err := cl.WaitDone(ctx, id, 25*time.Millisecond); err != nil || c.State != StateDone {
			t.Fatalf("campaign %s: state=%s err=%v", id, c.State, err)
		}
	}
	gotA, err := cl.Result(ctx, idA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := cl.Result(ctx, idB)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, wantA, gotA)
	requireBitIdentical(t, wantB, gotB)

	list, err := cl.List(ctx, "")
	if err != nil || len(list) != 2 {
		t.Fatalf("List: n=%d err=%v", len(list), err)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Queue) != 2 || st.Queue[0].Tenant != "alice" || st.Queue[0].Done != 1 ||
		st.Queue[1].Tenant != "bob" || st.Queue[1].Done != 1 {
		t.Fatalf("stats queue rows wrong: %+v", st.Queue)
	}
	if st.Queue[0].Usage <= 0 {
		t.Fatalf("fair-share usage not charged: %+v", st.Queue[0])
	}
	if st.Dist.Stats.Jobs == 0 {
		t.Fatalf("dist snapshot missing from stats response: %+v", st.Dist.Stats)
	}
}

// TestRestartReplaysAcceptedCampaigns closes a control plane with
// campaigns still queued (never started: no workers) and reopens it on
// the same state dir — every accepted campaign must come back and then
// run to completion with bit-identical results.
func TestRestartReplaysAcceptedCampaigns(t *testing.T) {
	stateDir := t.TempDir()
	wantA, wantB := localBaseline(t, specA()), localBaseline(t, specB())

	s1, _ := newHarness(t, Config{StateDir: stateDir}, 0)
	// Deliberately no Start: both campaigns are accepted-but-not-started,
	// the pure queue-replay case.
	idA, err := s1.Submit(specA(), dist.CampaignTag{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s1.Submit(specB(), dist.CampaignTag{Tenant: "bob", Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := newHarness(t, Config{StateDir: stateDir}, 2)
	for _, want := range []struct {
		id     string
		tenant string
		prio   int
	}{{idA, "alice", 0}, {idB, "bob", 1}} {
		c, err := s2.Get(want.id)
		if err != nil {
			t.Fatalf("campaign %s lost across restart: %v", want.id, err)
		}
		if c.State != StateQueued || c.Tenant != want.tenant || c.Priority != want.prio {
			t.Fatalf("campaign %s replayed wrong: %+v", want.id, c)
		}
	}
	s2.Start()
	waitState(t, s2, idA, StateDone)
	waitState(t, s2, idB, StateDone)
	gotA, err := s2.Result(idA)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := s2.Result(idB)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, wantA, gotA)
	requireBitIdentical(t, wantB, gotB)
}

// TestResultRecoveredAfterRestart finishes a campaign, restarts the
// control plane (results not in memory), and fetches the result again —
// it must be recovered through the coordinator's journal replay without
// re-executing work, and stay bit-identical.
func TestResultRecoveredAfterRestart(t *testing.T) {
	stateDir := t.TempDir()
	coStateDir := t.TempDir()
	want := localBaseline(t, specA())

	mk := func(workers int) (*Server, func() error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		co := &dist.Coordinator{
			Listener: ln,
			System:   json.RawMessage(`{"beads":3}`),
			LeaseTTL: 2 * time.Second,
			StateDir: coStateDir,
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		for i := 0; i < workers; i++ {
			w := &dist.Worker{
				Name: "w", Addr: ln.Addr().String(), Build: testBuild,
				BeatInterval: 20 * time.Millisecond, CheckpointEvery: 2,
			}
			go w.Run(ctx)
		}
		s, err := New(Config{Coordinator: co, StateDir: stateDir})
		if err != nil {
			t.Fatal(err)
		}
		return s, func() error { s.Close(); return co.Close() }
	}

	s1, close1 := mk(2)
	s1.Start()
	id, err := s1.Submit(specA(), dist.CampaignTag{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, id, StateDone)
	if err := close1(); err != nil {
		t.Fatal(err)
	}

	// Second process: campaign replays as done, result not in memory.
	// Zero workers proves recovery replays the dist journal instead of
	// re-running simulations.
	s2, close2 := mk(0)
	defer close2()
	s2.Start()
	c, err := s2.Get(id)
	if err != nil || c.State != StateDone {
		t.Fatalf("done campaign after restart: state=%s err=%v", c.State, err)
	}
	got, err := s2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)
}

// TestFlattenRoundTrip checks the wire form of results is ordered and
// invertible.
func TestFlattenRoundTrip(t *testing.T) {
	m := map[campaign.Combo][]*trace.WorkLog{
		{KappaPN: 300, VAns: 800}:  {{Kappa: 300, Velocity: 800}},
		{KappaPN: 100, VAns: 1600}: {{Kappa: 100, Velocity: 1600}},
		{KappaPN: 100, VAns: 800}:  {{Kappa: 100, Velocity: 800}},
	}
	flat := FlattenResult(m)
	if flat[0].Kappa != 100 || flat[0].Velocity != 800 || flat[2].Kappa != 300 {
		t.Fatalf("flatten not ordered: %+v", flat)
	}
	back := UnflattenResult(flat)
	if len(back) != len(m) {
		t.Fatalf("round trip lost combos: %d vs %d", len(back), len(m))
	}
	for c, logs := range m {
		if back[c][0].Kappa != logs[0].Kappa {
			t.Fatalf("combo %v mismatched after round trip", c)
		}
	}
}
