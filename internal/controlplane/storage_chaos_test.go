package controlplane

// Disk-fault chaos tests for the queue journal: the ack-ordering
// regression (a failed append must leave neither memory nor disk
// changed, and must never be acknowledged), the ENOSPC degradation /
// 503 / recovery drill over the real HTTP surface, the bounded-log
// guarantee under a monotonic workload, and the compaction kill-point
// sweep mirroring the dist journal's.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spice/internal/campaign"
	"spice/internal/dist"
	"spice/internal/faultfs"
)

// TestQueueSubmitAckOrdering is the satellite regression for the
// journal-first discipline: when the append fails mid-record, the
// submission is refused with ErrStorageDegraded, the in-memory queue is
// untouched, and the log on disk replays without any trace of it.
func TestQueueSubmitAckOrdering(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	dir := t.TempDir()
	s, _ := newHarness(t, Config{
		StateDir:     dir,
		FS:           inj,
		StorageProbe: 20 * time.Millisecond,
	}, 0)

	id1, err := s.Submit(specA(), dist.CampaignTag{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}

	// The very next mutating operation — the append's write — fails.
	inj.FailAt(1, faultfs.EIO)
	_, err = s.Submit(specB(), dist.CampaignTag{Tenant: "bob"})
	if !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("failed-append submit returned %v, want ErrStorageDegraded", err)
	}
	if got := len(s.List("")); got != 1 {
		t.Fatalf("rejected submission reached the in-memory queue: %d campaigns", got)
	}
	if !s.StorageHealth().Degraded {
		t.Fatal("server not degraded after append failure")
	}
	qs, err := scanQueueState(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.order) != 1 || qs.order[0].rec.ID != id1 {
		t.Fatalf("disk state after failed append: %d campaigns, want only %s", len(qs.order), id1)
	}

	// The prober recovers the moment faults clear, and the same
	// submission then succeeds and is durably journaled.
	deadline := time.Now().Add(10 * time.Second)
	for s.StorageHealth().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("server never recovered after faults cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	id2, err := s.Submit(specB(), dist.CampaignTag{Tenant: "bob"})
	if err != nil {
		t.Fatalf("resubmission after recovery: %v", err)
	}
	qs, err = scanQueueState(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.order) != 2 || qs.order[1].rec.ID != id2 {
		t.Fatalf("recovered journal holds %d campaigns, want [%s %s]", len(qs.order), id1, id2)
	}
	h := s.StorageHealth()
	if h.Degradations != 1 || h.Recoveries != 1 || h.StorageErrors < 1 {
		t.Fatalf("health counters after one fault cycle: %+v", h)
	}
}

// TestStorageDegradedHTTP503AndRecovery drives the acceptance drill
// over the real HTTP API: persistent ENOSPC makes submissions return
// 503 with Retry-After (never a dropped-but-acked campaign), /readyz
// semantics (Ready) fail, campaigns already running keep draining to
// completion, and service recovers once the faults clear.
func TestStorageDegradedHTTP503AndRecovery(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	s, _ := newHarness(t, Config{
		StateDir:     t.TempDir(),
		FS:           inj,
		StorageProbe: 20 * time.Millisecond,
	}, 1)
	s.Start()
	mux := http.NewServeMux()
	s.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	post := func(spec campaign.Spec, tenant, name string) *http.Response {
		t.Helper()
		body, err := json.Marshal(SubmitRequest{Tenant: tenant, Name: name, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := post(specA(), "alice", "healthy")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy submit returned %d, want 202", resp.StatusCode)
	}
	var acc SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}

	inj.SetStuck(faultfs.ENOSPC)
	resp = post(specB(), "bob", "enospc")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit under ENOSPC returned %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Fatal("503 response missing error body")
	}
	if err := s.Ready(); !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("Ready() under ENOSPC = %v, want ErrStorageDegraded", err)
	}
	if got := len(s.List("")); got != 1 {
		t.Fatalf("rejected submission visible in queue: %d campaigns", got)
	}

	// Graceful degradation, not a stall: the campaign accepted before
	// the disk died still runs to completion on its worker leases.
	waitState(t, s, acc.ID, StateDone)

	inj.Clear()
	deadline := time.Now().Add(10 * time.Second)
	for s.Ready() != nil {
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready after faults cleared: %v", s.Ready())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = post(specB(), "bob", "after-recovery")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery returned %d, want 202", resp.StatusCode)
	}
	var acc2 SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&acc2); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, acc2.ID, StateDone)
}

// TestQueueCompactionBoundsLog pins the tentpole's size guarantee on a
// workload that grew the log monotonically before compaction existed:
// many short-lived campaigns. The log must stay near the threshold
// while every campaign's terminal state survives replay.
func TestQueueCompactionBoundsLog(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := openQueueJournal(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 4096
	j.compactBytes = threshold
	spec, _ := json.Marshal(specA())
	now := time.Unix(1700000000, 0).UTC()
	const n = 200
	var maxLen int64
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("c-%03d", i)
		for _, r := range []*qrec{
			{T: qSubmit, ID: id, Tenant: "t", Spec: spec, At: now},
			{T: qStart, ID: id, At: now},
			{T: qDone, ID: id, At: now},
		} {
			if err := j.append(r); err != nil {
				t.Fatal(err)
			}
			if j.goodLen > maxLen {
				maxLen = j.goodLen
			}
		}
	}
	if j.compactions < 2 {
		t.Fatalf("compactions = %d, want several over %d campaigns", j.compactions, n)
	}
	// One record may overshoot the threshold before the next check; the
	// whole history (n × 3 records) must not.
	if maxLen > threshold+1024 {
		t.Fatalf("queue.log peaked at %d bytes, not bounded near %d", maxLen, threshold)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	_, replay, torn, err := openQueueJournal(nil, dir)
	if err != nil || torn != 0 {
		t.Fatalf("reopen: err=%v torn=%d", err, torn)
	}
	if len(replay) != n {
		t.Fatalf("replayed %d campaigns, want %d", len(replay), n)
	}
	for i, qr := range replay {
		if qr.rec.ID != fmt.Sprintf("c-%03d", i) || qr.state != StateDone {
			t.Fatalf("campaign %d replayed as %s/%s", i, qr.rec.ID, qr.state)
		}
	}
}

// queueFingerprint folds the on-disk queue state into a deterministic
// string, ignoring sequence numbers (compaction renumbers them).
func queueFingerprint(t *testing.T, dir string) string {
	t.Helper()
	qs, err := scanQueueState(nil, dir)
	if err != nil {
		t.Fatalf("scan of %s: %v", dir, err)
	}
	type row struct {
		ID       string          `json:"id"`
		Tenant   string          `json:"tenant"`
		Priority int             `json:"priority"`
		Name     string          `json:"name"`
		Spec     json.RawMessage `json:"spec"`
		At       time.Time       `json:"at"`
		State    State           `json:"state"`
		Err      string          `json:"err"`
	}
	rows := make([]row, 0, len(qs.order))
	for _, qr := range qs.order {
		rows = append(rows, row{
			ID: qr.rec.ID, Tenant: qr.rec.Tenant, Priority: qr.rec.Priority,
			Name: qr.rec.Name, Spec: qr.rec.Spec, At: qr.rec.At,
			State: qr.state, Err: qr.err,
		})
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestQueueCompactionKillPointSweep mirrors the dist journal's sweep:
// a fault at every mutating operation inside compact() must leave the
// folded queue state identical and the journal appendable.
func TestQueueCompactionKillPointSweep(t *testing.T) {
	ref := t.TempDir()
	j, _, _, err := openQueueJournal(nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(specA())
	now := time.Unix(1700000000, 0).UTC()
	for i, recs := range [][]*qrec{
		{{T: qSubmit, ID: "a", Tenant: "alice", Priority: 2, Spec: spec, At: now}, {T: qStart, ID: "a"}, {T: qDone, ID: "a"}},
		{{T: qSubmit, ID: "b", Tenant: "bob", Spec: spec, At: now}, {T: qStart, ID: "b"}, {T: qFail, ID: "b", Err: "boom"}},
		{{T: qSubmit, ID: "c", Tenant: "bob", Spec: spec, At: now}, {T: qCancel, ID: "c"}},
		{{T: qSubmit, ID: "d", Tenant: "eve", Spec: spec, At: now}, {T: qStart, ID: "d"}},
	} {
		for _, r := range recs {
			if err := j.append(r); err != nil {
				t.Fatal(err)
			}
		}
		if i == 1 {
			// A mid-stream compaction so the sweep replaces an existing
			// snapshot rather than creating the first one.
			if err := j.compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	want := queueFingerprint(t, ref)

	// Dry run to count the mutating ops of one compaction.
	probe := t.TempDir()
	copyQueueDir(t, ref, probe)
	inj := faultfs.NewInjector(nil)
	jp, _, _, err := openQueueJournal(inj, probe)
	if err != nil {
		t.Fatal(err)
	}
	before := inj.Ops()
	if err := jp.compact(); err != nil {
		t.Fatal(err)
	}
	steps := inj.Ops() - before
	_ = jp.close()
	if got := queueFingerprint(t, probe); got != want {
		t.Fatal("fault-free compaction changed the folded state")
	}
	if steps < 5 {
		t.Fatalf("compaction took only %d mutating ops", steps)
	}

	for k := int64(1); k <= steps; k++ {
		dir := t.TempDir()
		copyQueueDir(t, ref, dir)
		inj := faultfs.NewInjector(nil)
		jk, _, _, err := openQueueJournal(inj, dir)
		if err != nil {
			t.Fatalf("kill point %d: open: %v", k, err)
		}
		inj.FailAt(k, faultfs.EIO)
		cerr := jk.compact()
		_ = jk.close()
		if got := queueFingerprint(t, dir); got != want {
			t.Fatalf("kill point %d (compact err %v): replayed state diverged", k, cerr)
		}
		jk2, _, _, err := openQueueJournal(nil, dir)
		if err != nil {
			t.Fatalf("kill point %d: reopen: %v", k, err)
		}
		if err := jk2.append(&qrec{T: qNoop, At: now}); err != nil {
			t.Fatalf("kill point %d: append after recovery: %v", k, err)
		}
		if err := jk2.close(); err != nil {
			t.Fatal(err)
		}
	}
}

func copyQueueDir(t *testing.T, src, dst string) {
	t.Helper()
	for _, name := range []string{"queue.log", "queue.snapshot"} {
		data, err := os.ReadFile(filepath.Join(src, name))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
