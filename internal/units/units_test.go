package units

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestKTRoom(t *testing.T) {
	// kT at 300 K should be ~0.5962 kcal/mol.
	if !close(KTRoom, 0.59616, 1e-3) {
		t.Fatalf("KTRoom = %v, want ~0.5962", KTRoom)
	}
}

func TestBetaInverse(t *testing.T) {
	for _, temp := range []float64{1, 77, 300, 310, 1000} {
		if got := Beta(temp) * KT(temp); !close(got, 1, 1e-12) {
			t.Errorf("Beta(%v)*KT(%v) = %v, want 1", temp, temp, got)
		}
	}
}

func TestForceConversionRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return close(PNFromKcalMolA(KcalMolAFromPN(x)), x, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpringConversionPaperValues(t *testing.T) {
	// The paper's κ = 100 pN/Å is ~1.439 kcal/mol/Å².
	k := SpringFromPaper(100)
	if !close(k, 1.4393, 1e-3) {
		t.Fatalf("SpringFromPaper(100) = %v, want ~1.439", k)
	}
	if !close(SpringToPaper(k), 100, 1e-12) {
		t.Fatalf("round trip failed: %v", SpringToPaper(k))
	}
}

func TestVelocityConversion(t *testing.T) {
	// v = 12.5 Å/ns = 0.0125 Å/ps
	if got := VelocityFromPaper(12.5); !close(got, 0.0125, 1e-12) {
		t.Fatalf("VelocityFromPaper(12.5) = %v", got)
	}
	if got := VelocityToPaper(0.0125); !close(got, 12.5, 1e-12) {
		t.Fatalf("VelocityToPaper(0.0125) = %v", got)
	}
}

func TestAccelUnitConsistentWithTimeFactor(t *testing.T) {
	// The natural AKMA time unit squared must equal 1/AccelUnit (in ps²).
	if got := TimeFactor * TimeFactor * AccelUnit; !close(got, 1, 1e-3) {
		t.Fatalf("TimeFactor²·AccelUnit = %v, want 1", got)
	}
}

func TestThermalVelocityCarbon(t *testing.T) {
	// sqrt(kB·300/m_C) ≈ 455.9 m/s = 4.559 Å/ps for carbon (12 amu).
	v := ThermalVelocity(300, 12.011)
	if !close(v, 4.557, 5e-3) {
		t.Fatalf("ThermalVelocity(300, 12) = %v Å/ps, want ~4.56", v)
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		return close(Degrees(Radians(x)), x, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
