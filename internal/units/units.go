// Package units defines the internal unit system used throughout SPICE and
// conversions to the units the paper reports in.
//
// Internal (simulation) units:
//
//	length  Å (angstrom)
//	time    ps (picosecond)
//	mass    amu (atomic mass unit, g/mol)
//	energy  kcal/mol
//
// These are the AKMA-style units used by CHARMM and NAMD, which SPICE wraps.
// In this system forces are kcal/mol/Å and velocities Å/ps. The paper quotes
// spring constants in pN/Å and pulling velocities in Å/ns; conversion
// helpers are provided so public APIs can speak the paper's language.
package units

import "math"

// Fundamental constants in internal units.
const (
	// Boltzmann is the Boltzmann constant in kcal/(mol·K).
	Boltzmann = 0.0019872041

	// RoomTemperature is the simulation temperature used throughout the
	// paper's experiments, in kelvin.
	RoomTemperature = 300.0

	// KTRoom is kT at RoomTemperature in kcal/mol.
	KTRoom = Boltzmann * RoomTemperature

	// TimeFactor is the "natural" AKMA time unit expressed in ps:
	// sqrt(amu·Å²/(kcal/mol)) = 48.8882 fs. The integrators in this
	// repository work directly in ps via AccelUnit; the factor is kept
	// for reference and tests.
	TimeFactor = 0.0488882

	// AccelUnit converts force/mass from (kcal/mol/Å)/amu into Å/ps².
	// 1 kcal/mol = 4184 J/mol; 1 amu = 1e-3 kg/mol; 1 Å = 1e-10 m, so
	// a = F/m · 4184/(1e-3·1e-10) m/s² = F/m · 4.184e16 m/s²
	//   = F/m · 418.4 Å/ps².
	AccelUnit = 418.4
)

// Force conversions. 1 kcal/mol/Å = 69.4786 pN.
const (
	// PNPerKcalMolA is piconewtons per (kcal/mol/Å).
	PNPerKcalMolA = 69.478578
)

// KcalMolAFromPN converts a force (or a spring constant per Å) expressed in
// pN (pN/Å) to kcal/mol/Å (kcal/mol/Å²).
func KcalMolAFromPN(pn float64) float64 { return pn / PNPerKcalMolA }

// PNFromKcalMolA converts a force in kcal/mol/Å to pN.
func PNFromKcalMolA(f float64) float64 { return f * PNPerKcalMolA }

// SpringFromPaper converts a spring constant quoted in pN/Å (as in the
// paper's Fig. 4) to internal kcal/mol/Å².
func SpringFromPaper(pnPerA float64) float64 { return pnPerA / PNPerKcalMolA }

// SpringToPaper converts an internal spring constant (kcal/mol/Å²) to pN/Å.
func SpringToPaper(k float64) float64 { return k * PNPerKcalMolA }

// Velocity conversions. The paper quotes pulling velocities in Å/ns;
// internal velocities are Å/ps.
const apsPerAns = 1e-3

// VelocityFromPaper converts Å/ns to Å/ps.
func VelocityFromPaper(aPerNs float64) float64 { return aPerNs * apsPerAns }

// VelocityToPaper converts Å/ps to Å/ns.
func VelocityToPaper(aPerPs float64) float64 { return aPerPs / apsPerAns }

// KT returns kT in kcal/mol at temperature t (kelvin).
func KT(t float64) float64 { return Boltzmann * t }

// Beta returns 1/kT in mol/kcal at temperature t (kelvin).
func Beta(t float64) float64 { return 1 / KT(t) }

// ThermalVelocity returns the standard deviation of one Cartesian velocity
// component, in Å/ps, for a particle of mass m (amu) at temperature t (K):
// sqrt(kT/m) with the AKMA acceleration conversion folded in.
func ThermalVelocity(t, m float64) float64 {
	return math.Sqrt(Boltzmann * t / m * AccelUnit)
}

// Degrees and radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }
