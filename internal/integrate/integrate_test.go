package integrate

import (
	"math"
	"testing"

	"spice/internal/units"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// harmonicWell is a simple isotropic well E = ½k|r|² applied to all atoms.
func harmonicWell(k float64) ForceFunc {
	return func(pos []vec.V, f []vec.V) float64 {
		e := 0.0
		for i := range pos {
			e += 0.5 * k * pos[i].Norm2()
			f[i].AddScaled(-k, pos[i])
		}
		return e
	}
}

func newTestState(n int, mass float64) *State {
	st := NewState(n)
	for i := range st.Mass {
		st.Mass[i] = mass
	}
	return st
}

func TestVelocityVerletConservesEnergy(t *testing.T) {
	st := newTestState(10, 12)
	rng := xrand.New(1)
	for i := range st.Pos {
		st.Pos[i] = vec.V{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	st.InitVelocities(300, rng)
	integ := &VelocityVerlet{DT: 0.001}
	ff := harmonicWell(5)

	integ.Step(st, ff)
	e0 := st.Epot + st.KineticEnergy()
	for i := 0; i < 5000; i++ {
		integ.Step(st, ff)
	}
	e1 := st.Epot + st.KineticEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 1e-3 {
		t.Fatalf("NVE energy drift %.3g (E0=%v E1=%v)", drift, e0, e1)
	}
}

func TestVelocityVerletHarmonicPeriod(t *testing.T) {
	// Single particle in a well: x(t) = x0·cos(ωt), ω = sqrt(k·AccelUnit/m).
	st := newTestState(1, 10)
	st.Pos[0] = vec.V{X: 1}
	k := 3.0
	omega := math.Sqrt(k / 10 * units.AccelUnit)
	integ := &VelocityVerlet{DT: 0.0005}
	ff := harmonicWell(k)
	quarter := (math.Pi / 2) / omega
	steps := int(quarter / integ.DT)
	for i := 0; i < steps; i++ {
		integ.Step(st, ff)
	}
	// After a quarter period x ~ 0.
	if math.Abs(st.Pos[0].X) > 0.02 {
		t.Fatalf("quarter-period x = %v, want ~0", st.Pos[0].X)
	}
}

func TestLangevinEquilibratesTemperature(t *testing.T) {
	st := newTestState(200, 325)
	rng := xrand.New(2)
	for i := range st.Pos {
		st.Pos[i] = vec.V{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
	}
	// Start cold: the thermostat must heat the system to 300 K.
	integ := NewLangevin(0.01, 5, 300, xrand.New(3))
	ff := harmonicWell(2)
	for i := 0; i < 2000; i++ {
		integ.Step(st, ff)
	}
	// Average over a window.
	sum := 0.0
	const m = 2000
	for i := 0; i < m; i++ {
		integ.Step(st, ff)
		sum += st.Temperature()
	}
	avg := sum / m
	if math.Abs(avg-300)/300 > 0.05 {
		t.Fatalf("Langevin temperature %v, want 300±5%%", avg)
	}
}

func TestLangevinEquipartitionPositionVariance(t *testing.T) {
	// In a harmonic well at equilibrium, <x²> = kT/k per dof.
	st := newTestState(100, 100)
	k := 2.0
	integ := NewLangevin(0.01, 2, 300, xrand.New(4))
	ff := harmonicWell(k)
	for i := 0; i < 3000; i++ {
		integ.Step(st, ff)
	}
	var sum float64
	var count int
	for i := 0; i < 5000; i++ {
		integ.Step(st, ff)
		if i%10 == 0 {
			for j := range st.Pos {
				sum += st.Pos[j].X * st.Pos[j].X
				count++
			}
		}
	}
	got := sum / float64(count)
	want := units.KTRoom / k
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("<x²> = %v, want %v (±10%%)", got, want)
	}
}

func TestFixedAtomsDoNotMove(t *testing.T) {
	st := newTestState(3, 1)
	st.Fixed[1] = true
	st.Pos[1] = vec.V{X: 5, Y: 5, Z: 5}
	rng := xrand.New(5)
	st.InitVelocities(300, rng)
	if st.Vel[1] != vec.Zero {
		t.Fatal("fixed atom received thermal velocity")
	}
	integ := NewLangevin(0.01, 1, 300, rng)
	ff := harmonicWell(1)
	for i := 0; i < 100; i++ {
		integ.Step(st, ff)
	}
	if st.Pos[1] != (vec.V{X: 5, Y: 5, Z: 5}) {
		t.Fatalf("fixed atom moved to %v", st.Pos[1])
	}
	// NVE too.
	vv := &VelocityVerlet{DT: 0.01}
	for i := 0; i < 100; i++ {
		vv.Step(st, ff)
	}
	if st.Pos[1] != (vec.V{X: 5, Y: 5, Z: 5}) {
		t.Fatalf("fixed atom moved under NVE to %v", st.Pos[1])
	}
}

func TestLangevinDeterminism(t *testing.T) {
	run := func() vec.V {
		st := newTestState(5, 10)
		rng := xrand.New(7)
		for i := range st.Pos {
			st.Pos[i] = vec.V{X: float64(i)}
		}
		st.InitVelocities(300, rng)
		integ := NewLangevin(0.01, 1, 300, xrand.New(8))
		ff := harmonicWell(1)
		for i := 0; i < 500; i++ {
			integ.Step(st, ff)
		}
		return st.Pos[3]
	}
	if run() != run() {
		t.Fatal("same seeds produced different trajectories")
	}
}

func TestTemperatureOfKnownVelocities(t *testing.T) {
	st := newTestState(2, 50)
	// Zero velocities: T = 0.
	if st.Temperature() != 0 {
		t.Fatal("cold system not at 0 K")
	}
	// KE = (3/2)·N·kT with N=2 atoms at exactly thermal speed.
	sd := units.ThermalVelocity(300, 50)
	for i := range st.Vel {
		st.Vel[i] = vec.V{X: sd, Y: sd, Z: sd}
	}
	if got := st.Temperature(); math.Abs(got-300)/300 > 1e-9 {
		t.Fatalf("temperature = %v, want 300", got)
	}
}

func TestCOM(t *testing.T) {
	st := newTestState(3, 1)
	st.Mass[2] = 3
	st.Pos[0] = vec.V{X: 0}
	st.Pos[1] = vec.V{X: 2}
	st.Pos[2] = vec.V{X: 10}
	com := st.COM([]int{0, 1, 2})
	want := (0.0 + 2 + 30) / 5
	if math.Abs(com.X-want) > 1e-12 {
		t.Fatalf("COM = %v, want %v", com.X, want)
	}
	if st.COM(nil) != vec.Zero {
		t.Fatal("empty COM should be zero")
	}
}

func TestStepAndTimeAdvance(t *testing.T) {
	st := newTestState(1, 1)
	integ := &VelocityVerlet{DT: 0.002}
	ff := harmonicWell(1)
	for i := 0; i < 10; i++ {
		integ.Step(st, ff)
	}
	if st.Step != 10 {
		t.Fatalf("step = %d", st.Step)
	}
	if math.Abs(st.Time-0.02) > 1e-12 {
		t.Fatalf("time = %v", st.Time)
	}
}

func TestReprime(t *testing.T) {
	st := newTestState(1, 1)
	integ := NewLangevin(0.01, 1, 300, xrand.New(9))
	ff := harmonicWell(1)
	integ.Step(st, ff)
	// Teleport the particle; without repriming the cached force is stale.
	st.Pos[0] = vec.V{X: 100}
	integ.Reprime()
	integ.Step(st, ff)
	// Force must reflect the new position (pulling back hard).
	if st.Force[0].X >= 0 {
		t.Fatalf("stale force after Reprime: %v", st.Force[0])
	}
}

func TestLangevinPositionDependentFriction(t *testing.T) {
	// A per-atom GammaFor must (a) be applied, (b) preserve the
	// equilibrium temperature (the O-step is exact for any gamma).
	st := newTestState(100, 100)
	integ := NewLangevin(0.01, 1, 300, xrand.New(21))
	integ.GammaFor = func(i int, p vec.V) float64 {
		if p.X < 0 {
			return 10
		}
		return 1
	}
	ff := harmonicWell(2)
	for i := 0; i < 3000; i++ {
		integ.Step(st, ff)
	}
	sum := 0.0
	const m = 3000
	for i := 0; i < m; i++ {
		integ.Step(st, ff)
		sum += st.Temperature()
	}
	if avg := sum / m; math.Abs(avg-300)/300 > 0.05 {
		t.Fatalf("temperature with mixed friction = %v, want 300", avg)
	}
}

func TestHighFrictionSlowsDrift(t *testing.T) {
	// Dragging against friction: higher gamma -> larger lag behind a
	// moving trap. Use a deterministic check via damped mean drift.
	drift := func(gamma float64) float64 {
		st := newTestState(1, 325)
		integ := NewLangevin(0.01, gamma, 300, xrand.New(22))
		// Constant force pulls +x; terminal velocity ~ F/(m·gamma).
		ff := func(pos []vec.V, f []vec.V) float64 {
			f[0] = vec.V{X: 5}
			return 0
		}
		for i := 0; i < 5000; i++ {
			integ.Step(st, ff)
		}
		return st.Pos[0].X
	}
	lo, hi := drift(0.5), drift(5)
	if hi >= lo {
		t.Fatalf("10x friction should slow drift: gamma=0.5 -> %v, gamma=5 -> %v", lo, hi)
	}
}
