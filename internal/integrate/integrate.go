// Package integrate implements the time integrators of the MD engine:
// velocity Verlet for microcanonical (NVE) dynamics and the BAOAB-split
// Langevin integrator for the canonical (NVT) implicit-solvent dynamics
// the SPICE translocation runs use.
//
// Integrators operate on a State through a caller-provided ForceFunc so
// they stay decoupled from the force engine; fixed atoms (mass/pore
// scaffold) are never moved.
package integrate

import (
	"math"

	"spice/internal/units"
	"spice/internal/vec"
	"spice/internal/xrand"
)

// ForceFunc zeroes and fills f with the force on each atom (kcal/mol/Å)
// and returns the potential energy (kcal/mol).
type ForceFunc func(pos []vec.V, f []vec.V) float64

// State is the dynamical state advanced by an integrator.
type State struct {
	Pos   []vec.V // Å
	Vel   []vec.V // Å/ps
	Force []vec.V // kcal/mol/Å (valid after a step)
	Mass  []float64
	Fixed []bool
	Step  int64
	Time  float64 // ps
	// Epot is the potential energy from the last force evaluation.
	Epot float64

	// Mobile, when non-nil, is the ascending list of non-fixed atom
	// indices (see SetMobileIndex). Integrators then iterate it directly
	// instead of branching on Fixed per atom — a large win for wall-heavy
	// systems where most atoms are scaffold. The trajectory is unchanged:
	// the iteration order over mobile atoms (and hence the RNG draw order)
	// is identical, and fixed atoms are never touched either way. One
	// deliberate exception: force evaluation then zeroes only mobile
	// entries, so Force values on fixed atoms go stale between steps —
	// nothing reads them (the B-kicks skip fixed atoms), but byte-level
	// consumers should not interpret them.
	Mobile []int32
}

// NewState allocates a state for n atoms.
func NewState(n int) *State {
	return &State{
		Pos:   make([]vec.V, n),
		Vel:   make([]vec.V, n),
		Force: make([]vec.V, n),
		Mass:  make([]float64, n),
		Fixed: make([]bool, n),
	}
}

// N returns the atom count.
func (s *State) N() int { return len(s.Pos) }

// SetMobileIndex (re)builds the dense Mobile index list from Fixed. Call
// it after Fixed is final; pass-through states that never call it keep
// the branch-per-atom integrator loops.
func (s *State) SetMobileIndex() {
	s.Mobile = s.Mobile[:0]
	for i, f := range s.Fixed {
		if !f {
			s.Mobile = append(s.Mobile, int32(i))
		}
	}
}

// KineticEnergy returns Σ ½mv² in kcal/mol.
func (s *State) KineticEnergy() float64 {
	ke := 0.0
	for i := range s.Vel {
		if s.Fixed[i] {
			continue
		}
		ke += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return ke / units.AccelUnit
}

// Temperature returns the instantaneous kinetic temperature in kelvin
// (3 degrees of freedom per mobile atom).
func (s *State) Temperature() float64 {
	n := 0
	for i := range s.Fixed {
		if !s.Fixed[i] {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / (3 * float64(n) * units.Boltzmann)
}

// COM returns the center of mass of the atoms in idx.
func (s *State) COM(idx []int) vec.V {
	var c vec.V
	m := 0.0
	for _, i := range idx {
		c.AddScaled(s.Mass[i], s.Pos[i])
		m += s.Mass[i]
	}
	if m == 0 {
		return vec.Zero
	}
	return c.Scale(1 / m)
}

// InitVelocities draws Maxwell–Boltzmann velocities at temperature t for
// mobile atoms and zeroes fixed ones.
func (s *State) InitVelocities(t float64, rng *xrand.Source) {
	for i := range s.Vel {
		if s.Fixed[i] {
			s.Vel[i] = vec.Zero
			continue
		}
		sd := units.ThermalVelocity(t, s.Mass[i])
		s.Vel[i] = vec.V{
			X: sd * rng.NormFloat64(),
			Y: sd * rng.NormFloat64(),
			Z: sd * rng.NormFloat64(),
		}
	}
}

// Integrator advances a State by one timestep.
type Integrator interface {
	// Step advances st by one timestep using forces from ff.
	Step(st *State, ff ForceFunc)
	// Timestep returns dt in ps.
	Timestep() float64
}

// VelocityVerlet is the standard NVE integrator.
type VelocityVerlet struct {
	DT     float64 // ps
	primed bool
}

// Timestep implements Integrator.
func (v *VelocityVerlet) Timestep() float64 { return v.DT }

// Step implements Integrator.
func (v *VelocityVerlet) Step(st *State, ff ForceFunc) {
	if !v.primed {
		st.Epot = evalForces(st, ff)
		v.primed = true
	}
	dt := v.DT
	half := 0.5 * dt * units.AccelUnit
	for i := range st.Pos {
		if st.Fixed[i] {
			continue
		}
		st.Vel[i].AddScaled(half/st.Mass[i], st.Force[i])
		st.Pos[i].AddScaled(dt, st.Vel[i])
	}
	st.Epot = evalForces(st, ff)
	for i := range st.Pos {
		if st.Fixed[i] {
			continue
		}
		st.Vel[i].AddScaled(half/st.Mass[i], st.Force[i])
	}
	st.Step++
	st.Time += dt
}

// Langevin is the BAOAB-split Langevin (NVT) integrator: the workhorse for
// the implicit-solvent CG runs. BAOAB gives accurate configurational
// sampling even at the large (10 fs) CG timestep.
type Langevin struct {
	DT    float64 // ps
	Gamma float64 // friction, 1/ps
	Temp  float64 // K
	RNG   *xrand.Source

	// GammaFor, if set, returns a per-atom friction given the atom's
	// current position — used to model the higher effective viscosity
	// of confined water inside the pore lumen. It must return a
	// positive value; the O-step is solved exactly for whatever it
	// returns, so detailed balance holds pointwise.
	GammaFor func(i int, p vec.V) float64

	primed bool
	c1     float64
	kT     float64
}

// NewLangevin returns a BAOAB integrator at temperature t.
func NewLangevin(dt, gamma, t float64, rng *xrand.Source) *Langevin {
	return &Langevin{DT: dt, Gamma: gamma, Temp: t, RNG: rng}
}

// Timestep implements Integrator.
func (l *Langevin) Timestep() float64 { return l.DT }

// Step implements Integrator.
func (l *Langevin) Step(st *State, ff ForceFunc) {
	if !l.primed {
		st.Epot = evalForces(st, ff)
		l.c1 = math.Exp(-l.Gamma * l.DT)
		l.kT = units.KT(l.Temp)
		l.primed = true
	}
	dt := l.DT
	halfB := 0.5 * dt * units.AccelUnit
	halfA := 0.5 * dt
	c1 := l.c1
	if mob := st.Mobile; mob != nil {
		// Dense-index variant: same per-atom arithmetic and RNG order as
		// the branch loops below, minus the Fixed checks.
		for _, i := range mob {
			st.Vel[i].AddScaled(halfB/st.Mass[i], st.Force[i])
			st.Pos[i].AddScaled(halfA, st.Vel[i])
		}
		for _, i := range mob {
			ci := c1
			if l.GammaFor != nil {
				ci = math.Exp(-l.GammaFor(int(i), st.Pos[i]) * dt)
			}
			sd := math.Sqrt(l.kT / st.Mass[i] * units.AccelUnit * (1 - ci*ci))
			st.Vel[i] = st.Vel[i].Scale(ci).Add(vec.V{
				X: sd * l.RNG.NormFloat64(),
				Y: sd * l.RNG.NormFloat64(),
				Z: sd * l.RNG.NormFloat64(),
			})
		}
		for _, i := range mob {
			st.Pos[i].AddScaled(halfA, st.Vel[i])
		}
		st.Epot = evalForces(st, ff)
		for _, i := range mob {
			st.Vel[i].AddScaled(halfB/st.Mass[i], st.Force[i])
		}
		st.Step++
		st.Time += dt
		return
	}
	// B + A halves.
	for i := range st.Pos {
		if st.Fixed[i] {
			continue
		}
		st.Vel[i].AddScaled(halfB/st.Mass[i], st.Force[i])
		st.Pos[i].AddScaled(halfA, st.Vel[i])
	}
	// O: Ornstein-Uhlenbeck exact solve.
	for i := range st.Pos {
		if st.Fixed[i] {
			continue
		}
		ci := c1
		if l.GammaFor != nil {
			ci = math.Exp(-l.GammaFor(i, st.Pos[i]) * dt)
		}
		sd := math.Sqrt(l.kT / st.Mass[i] * units.AccelUnit * (1 - ci*ci))
		st.Vel[i] = st.Vel[i].Scale(ci).Add(vec.V{
			X: sd * l.RNG.NormFloat64(),
			Y: sd * l.RNG.NormFloat64(),
			Z: sd * l.RNG.NormFloat64(),
		})
	}
	// A half, force refresh, B half.
	for i := range st.Pos {
		if st.Fixed[i] {
			continue
		}
		st.Pos[i].AddScaled(halfA, st.Vel[i])
	}
	st.Epot = evalForces(st, ff)
	for i := range st.Pos {
		if st.Fixed[i] {
			continue
		}
		st.Vel[i].AddScaled(halfB/st.Mass[i], st.Force[i])
	}
	st.Step++
	st.Time += dt
}

// Reprime forces the integrator to re-evaluate forces on the next step
// (call after externally mutating positions, e.g. restoring a checkpoint).
func (l *Langevin) Reprime() { l.primed = false }

// Reprime for VelocityVerlet.
func (v *VelocityVerlet) Reprime() { v.primed = false }

// Prime marks the integrator primed without a force evaluation. Use when
// the State's Force array was itself restored from a checkpoint: steering
// terms (the SMD spring's λ) may have advanced since that evaluation, so
// re-evaluating would NOT reproduce the cached forces the uninterrupted
// trajectory carries across the step boundary.
func (l *Langevin) Prime() {
	l.c1 = math.Exp(-l.Gamma * l.DT)
	l.kT = units.KT(l.Temp)
	l.primed = true
}

// Prime for VelocityVerlet.
func (v *VelocityVerlet) Prime() { v.primed = true }

func evalForces(st *State, ff ForceFunc) float64 {
	if mob := st.Mobile; mob != nil {
		// Fixed atoms accumulate stale force contributions (pair kernels
		// write both sides) that nothing ever reads — see State.Mobile.
		for _, i := range mob {
			st.Force[i] = vec.Zero
		}
	} else {
		for i := range st.Force {
			st.Force[i] = vec.Zero
		}
	}
	return ff(st.Pos, st.Force)
}
