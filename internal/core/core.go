// Package core is the top of the SPICE stack: it wires the coarse-grained
// translocation system, the SMD pulling protocol, the Jarzynski analysis
// and the campaign runner into the paper's three-phase pipeline —
//
//  1. exploratory/interactive phase (package imd + steering) to choose the
//     parameter ranges;
//  2. priming sweep over (κ, v) with cost-normalized error analysis,
//     reproducing Fig. 4 and selecting the optimal parameters;
//  3. production campaign computing the PMF with the chosen parameters.
//
// All parameters are expressed in the paper's units (κ in pN/Å, v in
// Å/ns); conversions happen at the boundary.
package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"spice/internal/campaign"
	"spice/internal/jarzynski"
	"spice/internal/md"
	"spice/internal/trace"
	"spice/internal/xrand"
)

// SystemConfig describes the model system pulls run on.
type SystemConfig struct {
	// Beads is the ssDNA length in nucleotides.
	Beads int
	// StartZ places the leading bead; the default positions the
	// sub-trajectory across the pore constriction, the paper's §IV.A
	// choice ("a sub-trajectory of length 10 Å close to the centre of
	// the pore ... most likely to be free of boundary effects").
	StartZ float64
	// EquilSteps is the Langevin equilibration run before the spring
	// attaches.
	EquilSteps int
	// DT is the MD timestep in ps.
	DT float64
	// Temp is the thermostat temperature in K.
	Temp float64
	// PoreFriction scales the Langevin friction inside the pore lumen
	// (see md.TranslocationSpec). The sweep default is 1: the Fig. 4
	// parameter study probes estimator statistics over a 10 Å window,
	// and the paper's dissipation gradation across v is already present
	// at bulk friction — the 5x confined-water enhancement used by the
	// full translocation runs would drown the slow-pull ensembles in
	// dissipation noise at these replica counts.
	PoreFriction float64
	// EngineWorkers pins the engine's intra-simulation force
	// parallelism. Floating-point force sums are chunk-order sensitive,
	// so distributed runs must use the same value on every process for
	// results to be bit-identical; 0 keeps the engine default.
	EngineWorkers int
}

// DefaultSystem returns the standard sweep system: a short strand with its
// leading bead poised just above the constriction.
func DefaultSystem() SystemConfig {
	return SystemConfig{Beads: 8, StartZ: 5, EquilSteps: 1000, DT: 0.01, Temp: 300, PoreFriction: 1}
}

// Build constructs a fresh translocation engine for one pull. Exported
// so dist workers can rebuild the identical system from a SystemConfig
// shipped over the wire.
func (sc SystemConfig) Build(seed uint64) (*md.Engine, []int, error) {
	if sc.Beads < 1 {
		return nil, nil, fmt.Errorf("core: system needs at least 1 bead, got %d", sc.Beads)
	}
	spec := md.DefaultTranslocation(sc.Beads)
	spec.DNA.StartZ = sc.StartZ
	spec.DNA.Backbone.Z = 1 // chain extends upward; lead bead enters first
	spec.Seed = seed
	spec.PoreFriction = sc.PoreFriction
	spec.Workers = sc.EngineWorkers
	if sc.DT > 0 {
		spec.DT = sc.DT
	}
	if sc.Temp > 0 {
		spec.Temp = sc.Temp
	}
	ts, err := md.BuildTranslocation(spec)
	if err != nil {
		return nil, nil, err
	}
	if sc.EquilSteps > 0 {
		ts.Engine.Run(sc.EquilSteps)
	}
	return ts.Engine, ts.DNA[:1], nil
}

// BuildFromJSON decodes a JSON-encoded SystemConfig — the opaque system
// payload a dist coordinator ships to its workers — and builds the pull
// system. Its signature matches dist.BuildFunc, so cmd/spiced and the
// in-process workers of cmd/spice plug it in directly; dist itself
// never needs to know this package exists.
func BuildFromJSON(system json.RawMessage, _ campaign.Combo, seed uint64) (*md.Engine, []int, error) {
	var sc SystemConfig
	if err := json.Unmarshal(system, &sc); err != nil {
		return nil, nil, fmt.Errorf("core: decoding system config: %w", err)
	}
	return sc.Build(seed)
}

// SweepConfig drives the priming phase.
type SweepConfig struct {
	System SystemConfig
	// Kappas (pN/Å) and Velocities (Å/ns) span the sweep.
	Kappas     []float64
	Velocities []float64
	// Replicas at the slowest velocity; faster velocities get
	// proportionally more (equal cost), per the paper's normalization.
	Replicas int
	// Distance is the sub-trajectory length in Å.
	Distance float64
	// Estimator for the PMFs (default Cumulant2).
	Estimator jarzynski.Estimator
	// Resamples for the bootstrap errors (default 200).
	Resamples int
	// Reference overrides the reference PMF used for systematic errors;
	// nil computes one from a dedicated slow stiff-spring run.
	Reference []float64
	// RefVelocity (Å/ns) and RefKappa (pN/Å) parameterize that run.
	RefVelocity float64
	RefKappa    float64
	RefReplicas int

	Workers int
	// Batch > 1 runs local pulls through md.Batch ensembles of at most
	// Batch replicas (shared substrate grid, one step-worker pool)
	// instead of one goroutine per pull. Ignored when Runner is set.
	Batch int
	Seed  uint64
	// Runner overrides how the campaign's pulls are executed (e.g. the
	// dist coordinator fanning out to worker processes). nil runs
	// in-process with a LocalRunner.
	Runner campaign.Runner
}

// PaperSweep is the Fig. 4 configuration.
func PaperSweep() SweepConfig {
	return SweepConfig{
		System:      DefaultSystem(),
		Kappas:      []float64{10, 100, 1000},
		Velocities:  []float64{12.5, 25, 50, 100},
		Replicas:    2,
		Distance:    10,
		Estimator:   jarzynski.Cumulant2,
		Resamples:   200,
		RefVelocity: 6.25,
		RefKappa:    300,
		RefReplicas: 4,
		Seed:        2005,
	}
}

// SweepResult is the priming phase outcome.
type SweepResult struct {
	// Points holds one analyzed curve per (κ, v) combination, in the
	// deterministic sweep order.
	Points []jarzynski.ParamPoint
	// Grid is the common displacement grid.
	Grid []float64
	// Reference is the profile systematic errors were measured against.
	Reference []float64
	// Best is the paper-logic optimum.
	Best jarzynski.ParamPoint
	// Logs retains the raw work logs per combo for archival.
	Logs map[campaign.Combo][]*trace.WorkLog
}

// CurvesForKappa returns the points with the given κ, ordered by velocity
// — one panel of Fig. 4a-c.
func (r *SweepResult) CurvesForKappa(kappaPN float64) []jarzynski.ParamPoint {
	var out []jarzynski.ParamPoint
	for _, p := range r.Points {
		if p.KappaPaper == kappaPN {
			out = append(out, p)
		}
	}
	return out
}

// CurvesForVelocity returns the points with the given v — Fig. 4d.
func (r *SweepResult) CurvesForVelocity(vAns float64) []jarzynski.ParamPoint {
	var out []jarzynski.ParamPoint
	for _, p := range r.Points {
		if p.VPaper == vAns {
			out = append(out, p)
		}
	}
	return out
}

// RunSweep executes the priming sweep: the reference run, then every
// (κ, v) ensemble, each analyzed into a ParamPoint, and the optimum
// selected. This is the computational heart of the reproduction.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Kappas) == 0 || len(cfg.Velocities) == 0 {
		return nil, errors.New("core: empty parameter sweep")
	}
	if cfg.Replicas < 2 {
		return nil, errors.New("core: need at least 2 replicas for error analysis")
	}
	if cfg.Distance <= 0 {
		return nil, errors.New("core: pull distance must be positive")
	}
	if cfg.Resamples == 0 {
		cfg.Resamples = 200
	}
	temp := cfg.System.Temp
	if temp == 0 {
		temp = 300
	}

	runner := cfg.Runner
	if runner == nil {
		runner = &campaign.LocalRunner{
			Build: func(_ campaign.Combo, seed uint64) (*md.Engine, []int, error) {
				return cfg.System.Build(seed)
			},
			Workers: cfg.Workers,
			Batch:   cfg.Batch,
		}
	}

	// Reference: slow, stiff, exponential estimator.
	ref := cfg.Reference
	var grid []float64
	if ref == nil {
		if cfg.RefVelocity <= 0 || cfg.RefKappa <= 0 {
			return nil, errors.New("core: reference run needs RefVelocity and RefKappa")
		}
		n := cfg.RefReplicas
		if n < 2 {
			n = 2
		}
		refSpec := campaign.Spec{
			Kappas:       []float64{cfg.RefKappa},
			Velocities:   []float64{cfg.RefVelocity},
			Replicas:     n,
			EqualSamples: true,
			Distance:     cfg.Distance,
			Seed:         cfg.Seed ^ 0x5eed,
		}
		logs, err := runner.Run(refSpec)
		if err != nil {
			return nil, fmt.Errorf("core: reference run: %w", err)
		}
		ens, err := jarzynski.NewEnsemble(temp, logs[campaign.Combo{KappaPN: cfg.RefKappa, VAns: cfg.RefVelocity}])
		if err != nil {
			return nil, err
		}
		ref, err = ens.PMF(jarzynski.Exponential)
		if err != nil {
			return nil, err
		}
		grid = ens.Grid
	}

	sweepSpec := campaign.Spec{
		Kappas:     cfg.Kappas,
		Velocities: cfg.Velocities,
		Replicas:   cfg.Replicas,
		Distance:   cfg.Distance,
		Seed:       cfg.Seed,
	}
	logs, err := runner.Run(sweepSpec)
	if err != nil {
		return nil, fmt.Errorf("core: sweep: %w", err)
	}

	vmin := cfg.Velocities[0]
	for _, v := range cfg.Velocities[1:] {
		if v < vmin {
			vmin = v
		}
	}

	res := &SweepResult{Reference: ref, Grid: grid, Logs: logs}
	rng := xrand.New(cfg.Seed ^ 0xe44)
	for _, c := range sweepSpec.Combos() {
		ens, err := jarzynski.NewEnsemble(temp, logs[c])
		if err != nil {
			return nil, fmt.Errorf("core: combo %s: %w", c, err)
		}
		pmf, err := ens.PMF(cfg.Estimator)
		if err != nil {
			return nil, err
		}
		sigStat, err := ens.CostNormalizedStatError(cfg.Estimator, cfg.Resamples, rng, vmin/1000)
		if err != nil {
			return nil, err
		}
		point := jarzynski.ParamPoint{
			KappaPaper: c.KappaPN,
			VPaper:     c.VAns,
			Grid:       ens.Grid,
			PMF:        pmf,
			SigmaStat:  sigStat,
			Samples:    ens.N(),
		}
		if len(ref) == len(pmf) {
			sys, err := jarzynski.SystematicError(pmf, ref)
			if err != nil {
				return nil, err
			}
			point.SigmaSys = sys
		}
		if res.Grid == nil {
			res.Grid = ens.Grid
		}
		res.Points = append(res.Points, point)
	}

	best, err := jarzynski.Optimize(res.Points, 0.1)
	if err != nil {
		return nil, err
	}
	res.Best = best
	return res, nil
}

// ProductionConfig drives the final phase: the full PMF at the optimal
// parameters.
type ProductionConfig struct {
	System   SystemConfig
	KappaPN  float64
	VAns     float64
	Replicas int
	Distance float64
	Workers  int
	// Batch mirrors SweepConfig.Batch for the production ensemble.
	Batch int
	Seed  uint64
	// Estimator defaults to Exponential for production.
	Estimator jarzynski.Estimator
	// Runner overrides pull execution like SweepConfig.Runner.
	Runner campaign.Runner
}

// ProductionResult is the final PMF with errors.
type ProductionResult struct {
	Grid      []float64
	PMF       []float64
	SigmaStat []float64
	// TotalSteps is the MD steps actually executed — feeds the
	// SMD-JE-vs-vanilla reduction-factor accounting.
	TotalSteps int
}

// RunProduction computes the production PMF.
func RunProduction(cfg ProductionConfig) (*ProductionResult, error) {
	if cfg.Replicas < 2 {
		return nil, errors.New("core: production needs >= 2 replicas")
	}
	temp := cfg.System.Temp
	if temp == 0 {
		temp = 300
	}
	runner := cfg.Runner
	if runner == nil {
		runner = &campaign.LocalRunner{
			Build: func(_ campaign.Combo, seed uint64) (*md.Engine, []int, error) {
				return cfg.System.Build(seed)
			},
			Workers: cfg.Workers,
			Batch:   cfg.Batch,
		}
	}
	spec := campaign.Spec{
		Kappas:       []float64{cfg.KappaPN},
		Velocities:   []float64{cfg.VAns},
		Replicas:     cfg.Replicas,
		EqualSamples: true,
		Distance:     cfg.Distance,
		Seed:         cfg.Seed,
	}
	logs, err := runner.Run(spec)
	if err != nil {
		return nil, err
	}
	combo := campaign.Combo{KappaPN: cfg.KappaPN, VAns: cfg.VAns}
	ens, err := jarzynski.NewEnsemble(temp, logs[combo])
	if err != nil {
		return nil, err
	}
	pmf, err := ens.PMF(cfg.Estimator)
	if err != nil {
		return nil, err
	}
	sig, err := ens.StatError(cfg.Estimator, 200, xrand.New(cfg.Seed^0xabc))
	if err != nil {
		return nil, err
	}
	steps := 0
	for _, wl := range logs[combo] {
		// Each pull simulated Distance/v ns at the engine timestep.
		dt := cfg.System.DT
		if dt == 0 {
			dt = 0.01
		}
		steps += int(cfg.Distance / (wl.Velocity * dt))
	}
	return &ProductionResult{Grid: ens.Grid, PMF: pmf, SigmaStat: sig, TotalSteps: steps}, nil
}
