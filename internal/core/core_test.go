package core

import (
	"math"
	"testing"

	"spice/internal/jarzynski"
)

// quickSweep is a fast configuration for tests: small system, short
// pulls, high velocities.
func quickSweep() SweepConfig {
	cfg := PaperSweep()
	cfg.System.Beads = 4
	cfg.System.EquilSteps = 200
	cfg.Kappas = []float64{100, 1000}
	cfg.Velocities = []float64{200, 400}
	cfg.Replicas = 2
	cfg.Distance = 3
	cfg.Resamples = 50
	cfg.RefVelocity = 100
	cfg.RefReplicas = 2
	cfg.Seed = 11
	return cfg
}

func TestRunSweepValidation(t *testing.T) {
	cfg := quickSweep()
	cfg.Kappas = nil
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("empty sweep accepted")
	}
	cfg = quickSweep()
	cfg.Replicas = 1
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("single replica accepted")
	}
	cfg = quickSweep()
	cfg.Distance = 0
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("zero distance accepted")
	}
	cfg = quickSweep()
	cfg.Reference = nil
	cfg.RefVelocity = 0
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("missing reference config accepted")
	}
}

func TestRunSweepProducesAnalyzedPoints(t *testing.T) {
	cfg := quickSweep()
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if len(res.Grid) == 0 || len(res.Reference) != len(res.Grid) {
		t.Fatalf("grid/reference sizes: %d vs %d", len(res.Grid), len(res.Reference))
	}
	for _, p := range res.Points {
		if len(p.PMF) != len(res.Grid) {
			t.Fatalf("point %v has %d PMF values", p, len(p.PMF))
		}
		if p.SigmaStat <= 0 {
			t.Fatalf("point %v has zero statistical error", p)
		}
		if p.SigmaSys < 0 {
			t.Fatalf("negative systematic error")
		}
		if p.Samples < 2 {
			t.Fatalf("point %v has %d samples", p, p.Samples)
		}
		if p.PMF[0] != 0 {
			t.Fatal("PMF not anchored")
		}
		for _, v := range p.PMF {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite PMF value")
			}
		}
	}
	// Cost normalization gave faster velocities more samples.
	var n200, n400 int
	for _, p := range res.Points {
		if p.VPaper == 200 {
			n200 = p.Samples
		}
		if p.VPaper == 400 {
			n400 = p.Samples
		}
	}
	if n400 != 2*n200 {
		t.Fatalf("sample scaling: v=400 has %d, v=200 has %d", n400, n200)
	}
	// Best is one of the points.
	found := false
	for _, p := range res.Points {
		if p.KappaPaper == res.Best.KappaPaper && p.VPaper == res.Best.VPaper {
			found = true
		}
	}
	if !found {
		t.Fatal("best point not from the sweep")
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	a, err := RunSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		for g := range a.Points[i].PMF {
			if a.Points[i].PMF[g] != b.Points[i].PMF[g] {
				t.Fatal("sweep not reproducible")
			}
		}
	}
}

func TestCurveSelectors(t *testing.T) {
	res, err := RunSweep(quickSweep())
	if err != nil {
		t.Fatal(err)
	}
	k100 := res.CurvesForKappa(100)
	if len(k100) != 2 {
		t.Fatalf("κ=100 curves = %d", len(k100))
	}
	for _, p := range k100 {
		if p.KappaPaper != 100 {
			t.Fatal("wrong κ in selection")
		}
	}
	v200 := res.CurvesForVelocity(200)
	if len(v200) != 2 {
		t.Fatalf("v=200 curves = %d", len(v200))
	}
	if len(res.CurvesForKappa(9999)) != 0 {
		t.Fatal("phantom curves")
	}
}

func TestExternalReferenceUsed(t *testing.T) {
	cfg := quickSweep()
	// Grid length for Distance=3 at SampleEvery 0.25 is 13.
	ref := make([]float64, 13)
	for i := range ref {
		ref[i] = float64(i)
	}
	cfg.Reference = ref
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if res.Reference[i] != ref[i] {
			t.Fatal("external reference not used")
		}
	}
	// A steep artificial reference should force large σ_sys everywhere.
	for _, p := range res.Points {
		if p.SigmaSys < 0.5 {
			t.Fatalf("σ_sys = %v vs artificial reference", p.SigmaSys)
		}
	}
}

func TestRunProduction(t *testing.T) {
	cfg := ProductionConfig{
		System:    SystemConfig{Beads: 3, EquilSteps: 100, DT: 0.01, Temp: 300},
		KappaPN:   100,
		VAns:      400,
		Replicas:  3,
		Distance:  3,
		Seed:      13,
		Estimator: jarzynski.Cumulant2,
	}
	res, err := RunProduction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PMF) != len(res.Grid) || len(res.SigmaStat) != len(res.Grid) {
		t.Fatal("result shape mismatch")
	}
	if res.TotalSteps <= 0 {
		t.Fatal("no steps accounted")
	}
	if res.PMF[0] != 0 {
		t.Fatal("production PMF not anchored")
	}
	cfg.Replicas = 1
	if _, err := RunProduction(cfg); err == nil {
		t.Fatal("single-replica production accepted")
	}
}

func TestDefaultSystemBuilds(t *testing.T) {
	sc := DefaultSystem()
	eng, atoms, err := sc.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(atoms) != 1 {
		t.Fatalf("steered atoms = %d (paper pulls one atom)", len(atoms))
	}
	if eng.State().Step != int64(sc.EquilSteps) {
		t.Fatalf("equilibration ran %d steps", eng.State().Step)
	}
	// The chain must extend upward from the start position.
	pos := eng.State().Pos
	if pos[atoms[0]].Z > pos[len(pos)-1].Z {
		t.Fatal("lead bead should be lowest")
	}
	bad := sc
	bad.Beads = 0
	if _, _, err := bad.Build(1); err == nil {
		t.Fatal("zero-bead system accepted")
	}
}
