package forcefield

import (
	"math"
	"testing"

	"spice/internal/topology"
	"spice/internal/vec"
	"spice/internal/xrand"
)

func testPoreField() (*PoreField, *topology.Topology) {
	top := topology.New()
	top.AddAtom(topology.Atom{Kind: topology.KindDNA, Mass: 325, Radius: 3})
	pf := NewPoreField(top, topology.DefaultPore(), topology.DefaultMembrane())
	return pf, top
}

func TestPoreFieldZeroOnAxis(t *testing.T) {
	pf, _ := testPoreField()
	f := make([]vec.V, 1)
	// On the axis inside the pore there is no wall contact.
	e := pf.AddForces([]vec.V{{Z: -20}}, f)
	if e != 0 || f[0].Norm() != 0 {
		t.Fatalf("on-axis energy %v force %v", e, f[0])
	}
}

func TestPoreFieldPushesInward(t *testing.T) {
	pf, _ := testPoreField()
	f := make([]vec.V, 1)
	// Deep in the barrel (radius 8, bead radius 3): r=7 penetrates by 2.
	pos := []vec.V{{X: 7, Z: -40}}
	e := pf.AddForces(pos, f)
	if e <= 0 {
		t.Fatalf("penetrating bead has zero energy")
	}
	if f[0].X >= 0 {
		t.Fatalf("wall should push toward the axis, fx=%v", f[0].X)
	}
}

func TestPoreFieldGradient(t *testing.T) {
	pf, _ := testPoreField()
	rng := xrand.New(4)
	for trial := 0; trial < 30; trial++ {
		// Random points in and around the wall region of the barrel and
		// vestibule (avoid the exact pore-extent edges where the
		// analytic profile is only C0).
		z := -45 + 75*rng.Float64()
		if math.Abs(z) < 1 || math.Abs(z-35) < 2 || math.Abs(z+50) < 2 {
			continue
		}
		r := 2 + 10*rng.Float64()
		th := 2 * math.Pi * rng.Float64()
		pos := []vec.V{{X: r * math.Cos(th), Y: r * math.Sin(th), Z: z}}
		checkForces(t, pf, pos, 2e-3)
	}
}

func TestMembraneSlabExpulsion(t *testing.T) {
	pf, _ := testPoreField()
	f := make([]vec.V, 1)
	// Outside the pore extent radially? No: membrane branch triggers only
	// outside pore z-range... the default membrane [-45,-15] lies inside
	// the pore z-range, so use a field without pore overlap.
	pf.Pore = topology.PoreParams{VestibuleLength: 1, BarrelLength: 1,
		VestibuleRadius: 5, ConstrictionRadius: 2, BarrelRadius: 4}
	pf.Membrane = topology.MembraneParams{ZMin: -30, ZMax: -10}
	// Bead inside the slab: expelled through the nearest face (upper).
	pos := []vec.V{{X: 20, Z: -12}}
	e := pf.AddForces(pos, f)
	if e <= 0 {
		t.Fatal("no slab energy")
	}
	if f[0].Z <= 0 {
		t.Fatalf("should push up through near face, fz=%v", f[0].Z)
	}
	// Near the lower face: pushed down.
	f2 := make([]vec.V, 1)
	pf.AddForces([]vec.V{{X: 20, Z: -28}}, f2)
	if f2[0].Z >= 0 {
		t.Fatalf("should push down through near face, fz=%v", f2[0].Z)
	}
}

func TestBulkCylinderConfinement(t *testing.T) {
	pf, _ := testPoreField()
	f := make([]vec.V, 1)
	// Far above the pore, far off axis: the soft cylinder pulls back.
	pos := []vec.V{{X: pf.BulkRadius + 5, Z: 60}}
	e := pf.AddForces(pos, f)
	if e <= 0 || f[0].X >= 0 {
		t.Fatalf("bulk cylinder inactive: e=%v fx=%v", e, f[0].X)
	}
	// Inside the cylinder: inactive.
	f2 := make([]vec.V, 1)
	e2 := pf.AddForces([]vec.V{{X: 10, Z: 60}}, f2)
	if e2 != 0 || f2[0].Norm() != 0 {
		t.Fatal("bulk cylinder active inside radius")
	}
}

func TestPoreFieldSkipsFixedAtoms(t *testing.T) {
	top := topology.New()
	top.AddAtom(topology.Atom{Kind: topology.KindWall, Mass: 1, Radius: 2, Fixed: true})
	pf := NewPoreField(top, topology.DefaultPore(), topology.DefaultMembrane())
	f := make([]vec.V, 1)
	e := pf.AddForces([]vec.V{{X: 50, Z: 0}}, f)
	if e != 0 || f[0].Norm() != 0 {
		t.Fatal("fixed atom felt the pore field")
	}
}

func TestBindingSitesWellAndGradient(t *testing.T) {
	b := &BindingSites{
		Sites: []BindingSite{{Z: -12, Depth: 1.2, Width: 4}},
		Atoms: []int{0},
	}
	// Energy minimum at the well center.
	f := make([]vec.V, 1)
	e := b.AddForces([]vec.V{{Z: -12}}, f)
	if math.Abs(e+1.2) > 1e-12 {
		t.Fatalf("well depth = %v", e)
	}
	if math.Abs(f[0].Z) > 1e-12 {
		t.Fatalf("force at minimum = %v", f[0].Z)
	}
	// Above the well: pulled down; below: pulled up.
	f1 := make([]vec.V, 1)
	b.AddForces([]vec.V{{Z: -8}}, f1)
	if f1[0].Z >= 0 {
		t.Fatalf("above well should pull down: %v", f1[0].Z)
	}
	f2 := make([]vec.V, 1)
	b.AddForces([]vec.V{{Z: -16}}, f2)
	if f2[0].Z <= 0 {
		t.Fatalf("below well should pull up: %v", f2[0].Z)
	}
	// Gradient check across the well.
	rng := xrand.New(5)
	for trial := 0; trial < 20; trial++ {
		pos := []vec.V{{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: -12 + 10*rng.NormFloat64()}}
		checkForces(t, b, pos, 1e-5)
	}
}

func TestDefaultBindingSites(t *testing.T) {
	b := DefaultBindingSites([]int{0, 1})
	if len(b.Sites) == 0 || len(b.Atoms) != 2 {
		t.Fatal("default binding sites malformed")
	}
}

func TestExternalForces(t *testing.T) {
	x := NewExternalForces()
	x.Set(1, vec.V{X: 2})
	f := make([]vec.V, 3)
	if e := x.AddForces(nil, f); e != 0 {
		t.Fatal("external force should report zero energy")
	}
	if f[1].X != 2 || f[0].Norm() != 0 || f[2].Norm() != 0 {
		t.Fatalf("forces = %v", f)
	}
	// Out-of-range indices are ignored.
	x.Set(99, vec.V{X: 1})
	x.AddForces(nil, f)
	x.Clear()
	f2 := make([]vec.V, 3)
	x.AddForces(nil, f2)
	if f2[1].Norm() != 0 {
		t.Fatal("Clear did not remove forces")
	}
}
